(* occamy-sim: command-line driver for the Occamy reproduction.

   Subcommands:
     run        simulate a co-running pair on one or all architectures
     motivating run the Figure 2 motivating example
     list       list workloads, pairs and 4-core groups
     disasm     print the compiled EM-SIMD assembly of a workload
     roofline   print the vector-length-aware roofline for a given phase
     area       print the chip-area model breakdown
*)

open Cmdliner

module Arch = Occamy_core.Arch
module Sim = Occamy_core.Sim
module Config = Occamy_core.Config
module Metrics = Occamy_core.Metrics
module Suite = Occamy_workloads.Suite
module Table = Occamy_util.Table

(* ---------------- shared argument converters ----------------------- *)

let arch_conv =
  let parse s =
    match Arch.of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown architecture %S" s))
  in
  Arg.conv (parse, Arch.pp)

let arch_arg =
  Arg.(
    value
    & opt (some arch_conv) None
    & info [ "a"; "arch" ] ~docv:"ARCH"
        ~doc:"Architecture: private, fts, vls or occamy (default: all four).")

(* A worker count must be a positive integer; reject anything else
   loudly (including via OCCAMY_JOBS) rather than silently running
   sequentially. *)
let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some j when j >= 1 -> Ok j
    | Some j ->
      Error (`Msg (Printf.sprintf "invalid job count %d (must be >= 1)" j))
    | None -> Error (`Msg (Printf.sprintf "invalid job count %S" s))
  in
  Arg.conv (parse, Fmt.int)

let jobs_arg =
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~env:(Cmd.Env.info "OCCAMY_JOBS")
        ~doc:
          "Worker domains for independent simulations (default: the \
           machine's recommended domain count, capped at --max-jobs). \
           1 disables parallelism. Must be >= 1. The pool further caps \
           the effective count at the machine's recommended domain \
           count unless --oversubscribe.")

let max_jobs_arg =
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "max-jobs" ] ~docv:"N"
        ~doc:
          "Cap on the default worker count when -j/--jobs is not given \
           (default 16). Domain.recommended_domain_count already limits \
           the default to the host's usable cores, so this only matters \
           on machines with more cores than the cap — raise it there, \
           or lower it to leave cores free.")

let oversubscribe_arg =
  Arg.(
    value & flag
    & info [ "oversubscribe" ]
        ~doc:
          "Run the full -j request even when it exceeds the machine's \
           recommended domain count (normally capped there: OCaml's \
           stop-the-world minor collections make oversubscribed domains \
           pathologically slow). OCCAMY_OVERSUBSCRIBE=1 does the same.")

(* Resolve the -j/--jobs/OCCAMY_JOBS choice to a usable worker count;
   --max-jobs caps only the default (an explicit -j is the user's call).
   The flag maps to [None] when absent so Domain_pool still honours
   OCCAMY_OVERSUBSCRIBE. *)
let resolve_jobs ?cap = function
  | Some j -> j
  | None -> Occamy_util.Domain_pool.jobs_from_env ?cap ()

let resolve_oversubscribe flag = if flag then Some true else None

let level_conv =
  let parse = function
    | "vc" | "veccache" -> Ok Occamy_mem.Level.Vec_cache
    | "l2" -> Ok Occamy_mem.Level.L2
    | "dram" -> Ok Occamy_mem.Level.Dram
    | s -> Error (`Msg (Printf.sprintf "unknown level %S (vc|l2|dram)" s))
  in
  Arg.conv (parse, Occamy_mem.Level.pp)

(* ---------------- result printing ---------------------------------- *)

let print_result ?baseline (r : Metrics.t) =
  Fmt.pr "%a" Metrics.pp_summary r;
  Array.iter
    (fun c ->
      List.iter
        (fun p ->
          Fmt.pr "    phase %-18s %6d cycles  issue %.2f  lanes %.1f@."
            p.Metrics.ps_name (Metrics.ps_cycles p) (Metrics.ps_issue_rate p)
            (4.0 *. p.Metrics.ps_avg_vl))
        c.Metrics.phases)
    r.Metrics.cores;
  match baseline with
  | Some b when b != r ->
    Array.iteri
      (fun core _ ->
        Fmt.pr "  speedup vs Private on core%d: %.2fx@." core
          (Metrics.speedup_vs ~baseline:b r ~core))
      r.Metrics.cores
  | _ -> ()

(* ---------------- tracing ------------------------------------------ *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome/Perfetto trace-event JSON of the run to $(docv) \
           (open in ui.perfetto.dev or chrome://tracing). With all four \
           architectures, one file per architecture is written with the \
           architecture name suffixed before the extension.")

let trace_csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-csv" ] ~docv:"FILE"
        ~doc:"Write the raw cycle-stamped event log as CSV to $(docv).")

let gantt_arg =
  Arg.(
    value & flag
    & info [ "gantt" ]
        ~doc:"Print an ASCII phase Gantt chart of the run per architecture.")

let perf_arg =
  Arg.(
    value & flag
    & info [ "perf" ]
        ~doc:
          "Instead of printing simulation results, time the workload under \
           both simulation loops (the naive tick loop and event-horizon \
           fast-forwarding), print per-architecture throughput and skip \
           ratios, and write $(b,BENCH_perf.json). The two loops are \
           cross-checked for bit-identical metrics as part of the \
           measurement.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Self-profile the simulator while it runs: attribute its own \
           wall-time to pipeline stages (frontend, rename, dispatch, \
           execute-apply, LSU retire, lane-manager replan, ...) via \
           sampled monotonic-clock scopes and print a per-stage summary \
           table per architecture. Results are bit-identical with or \
           without this flag — the profiler only reads the clock.")

let profile_folded_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-folded" ] ~docv:"FILE"
        ~doc:
          "With --profile, also write the stage breakdown as folded \
           stacks to $(docv) for flamegraph.pl (one file per \
           architecture when running all four, architecture name \
           suffixed before the extension).")

let attrib_arg =
  Arg.(
    value & flag
    & info [ "attrib" ]
        ~doc:
          "Top-down cycle accounting: attribute every simulated cycle of \
           every core to one bottleneck bucket (issuing, lane-starved, \
           reconfig-blocked, LSU levels, MOB conflict, ...) and print a \
           per-core breakdown table plus an ASCII stacked time-series per \
           architecture. The accounting is observational — simulation \
           results are bit-identical with or without this flag.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics (counters plus attribution counts and \
           shares) to $(docv) as OpenMetrics/Prometheus text exposition \
           format, or as a flat JSON object when $(docv) ends in .json. \
           Implies cycle accounting. With all four architectures, one \
           file per architecture is written with the architecture name \
           suffixed before the extension.")

(* --perf mode: time naive vs fast-forward on the selected pair and
   persist the samples. Timings must not contend, so this path is
   sequential and ignores --jobs. *)
let run_perf ~name arch wls_of =
  let module Perf = Occamy_experiments.Perf in
  let wls = wls_of () in
  let samples =
    match arch with
    | Some a -> [ Perf.measure ~repeat:3 ~arch:a wls ]
    | None -> Perf.measure_all ~repeat:3 wls
  in
  List.iter (fun s -> Fmt.pr "%a@." Perf.pp_sample s) samples;
  let path = "BENCH_perf.json" in
  Perf.write_json ~path [ { Perf.sc_name = name; sc_samples = samples } ];
  Fmt.pr "wrote %s@." path

(* Per-arch output path: a single-architecture run writes PATH exactly;
   a multi-arch run writes out.json -> out.occamy.json etc. *)
let arch_path path ~multi a =
  if not multi then path
  else
    let name = Arch.name a in
    match Filename.extension path with
    | "" -> path ^ "." ^ name
    | ext -> Filename.remove_extension path ^ "." ^ name ^ ext

let run_archs ?cfg ?jobs ?oversubscribe ?(trace_json = None)
    ?(trace_csv = None) ?(gantt = false) ?(profile = false)
    ?(profile_folded = None) ?(attrib = false) ?(metrics_out = None) arch
    wls_of =
  let archs = match arch with Some a -> [ a ] | None -> Arch.all in
  let multi = List.length archs > 1 in
  let want_trace = trace_json <> None || trace_csv <> None || gantt in
  let want_prof = profile || profile_folded <> None in
  let want_attrib = attrib || metrics_out <> None in
  let cores =
    (match cfg with Some c -> c | None -> Config.default).Config.cores
  in
  (* Compile once; the simulator treats workloads as read-only, so the
     same compiled value feeds every (possibly concurrent) simulation.
     Each simulation owns its trace, profiler and attribution recorder
     (created inside the worker), so recording stays single-writer even
     under -j N. *)
  let wls = wls_of () in
  let results =
    Occamy_util.Domain_pool.map ?jobs ?oversubscribe
      (fun a ->
        let trace =
          if want_trace then Occamy_obs.Trace.for_sim ~cores ()
          else Occamy_obs.Trace.disabled
        in
        let prof =
          if want_prof then Occamy_obs.Prof.create ()
          else Occamy_obs.Prof.disabled
        in
        let at =
          if want_attrib then Occamy_obs.Attrib.create ~cores ()
          else Occamy_obs.Attrib.disabled
        in
        ( a,
          (Sim.simulate ?cfg ~trace ~prof ~attrib:at ~arch:a wls,
           (trace, prof, at)) ))
      archs
  in
  let baseline =
    if multi then Option.map fst (List.assoc_opt Arch.Private results)
    else None
  in
  List.iter (fun (_, (r, _)) -> print_result ?baseline r) results;
  if attrib then
    List.iter
      (fun (a, (_, (_, _, at))) ->
        Table.print
          (Occamy_obs.Attrib.summary_table
             ~title:(Fmt.str "%a cycle accounting" Arch.pp a)
             at);
        print_string (Occamy_obs.Attrib.render_timeseries at))
      results;
  Option.iter
    (fun path ->
      List.iter
        (fun (a, (r, (_, _, at))) ->
          let path = arch_path path ~multi a in
          let counters = Metrics.counters r in
          let contents =
            if Filename.extension path = ".json" then
              (* The counters registry already carries the attribution
                 counts and shares (Metrics.populate_counters), so only
                 the window metadata is added on top. *)
              Occamy_util.Json.obj_to_string
                (Occamy_obs.Counters.to_json counters
                @ List.filter
                    (fun (k, _) -> String.length k >= 7
                                   && String.sub k 0 7 = "attrib.")
                    (Occamy_obs.Attrib.json_fields at))
            else
              Occamy_obs.Openmetrics.render
                (Occamy_obs.Openmetrics.of_attrib at
                @ Occamy_obs.Openmetrics.of_counters counters)
          in
          Occamy_util.Json.write_file ~path contents;
          Fmt.pr "wrote %s@." path)
        results)
    metrics_out;
  if profile then
    List.iter
      (fun (a, (_, (_, prof, _))) ->
        Table.print
          (Occamy_obs.Prof.summary_table
             ~title:
               (Fmt.str "%a self-profile (%d cycles, %d sampled, 1/%d)"
                  Arch.pp a
                  (Occamy_obs.Prof.cycles prof)
                  (Occamy_obs.Prof.sampled_cycles prof)
                  (Occamy_obs.Prof.sample_every prof))
             prof))
      results;
  Option.iter
    (fun path ->
      List.iter
        (fun (a, (_, (_, prof, _))) ->
          let path = arch_path path ~multi a in
          Occamy_util.Json.write_file ~path (Occamy_obs.Prof.folded prof);
          Fmt.pr "wrote %s@." path)
        results)
    profile_folded;
  List.iter
    (fun (a, (_, (trace, _, at))) ->
      Option.iter
        (fun path ->
          let path = arch_path path ~multi a in
          Occamy_obs.Chrome_trace.write_json ~attrib:at ~path trace;
          Fmt.pr "wrote %s@." path)
        trace_json;
      Option.iter
        (fun path ->
          let path = arch_path path ~multi a in
          Occamy_obs.Chrome_trace.write_csv ~path trace;
          Fmt.pr "wrote %s@." path)
        trace_csv;
      if gantt then begin
        if multi then Fmt.pr "@.== %a ==@." Arch.pp a;
        print_string (Occamy_obs.Gantt.render trace)
      end)
    results

(* ---------------- run ---------------------------------------------- *)

let run_cmd =
  let pair_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "p"; "pair" ] ~docv:"PAIR"
          ~doc:
            "Co-running pair label from Figure 10, e.g. 20+17 (SPEC) — see \
             $(b,occamy-sim list). Prefix with ocv: for the OpenCV pairs, \
             e.g. ocv:6+1.")
  in
  let run pair arch jobs max_jobs osub trace_json trace_csv gantt perf
      profile profile_folded attrib metrics_out =
    let lookup label =
      if String.length label > 4 && String.sub label 0 4 = "ocv:" then
        let l = String.sub label 4 (String.length label - 4) in
        List.find_opt
          (fun p -> p.Suite.label = l)
          Suite.opencv_pairs
      else
        List.find_opt (fun p -> p.Suite.label = pair) Suite.spec_pairs
    in
    match lookup pair with
    | None -> `Error (false, Printf.sprintf "unknown pair %S; try 'list'" pair)
    | Some p ->
      Fmt.pr "pair %s: %s on Core0, %s on Core1@." p.Suite.label
        (Suite.source_name p.Suite.core0)
        (Suite.source_name p.Suite.core1);
      let wls_of () = Suite.compile_pair p in
      if perf then run_perf ~name:pair arch wls_of
      else
        run_archs
          ~jobs:(resolve_jobs ?cap:max_jobs jobs)
          ?oversubscribe:(resolve_oversubscribe osub) ~trace_json ~trace_csv
          ~gantt ~profile ~profile_folded ~attrib ~metrics_out arch wls_of;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a co-running workload pair")
    Term.(
      ret
        (const run $ pair_arg $ arch_arg $ jobs_arg $ max_jobs_arg
       $ oversubscribe_arg $ trace_arg $ trace_csv_arg $ gantt_arg
       $ perf_arg $ profile_arg $ profile_folded_arg $ attrib_arg
       $ metrics_out_arg))

let motivating_cmd =
  let run arch jobs max_jobs osub trace_json trace_csv gantt perf profile
      profile_folded attrib metrics_out =
    let wls_of () = Occamy_workloads.Motivating.pair () in
    if perf then run_perf ~name:"motivating" arch wls_of
    else
      run_archs
        ~jobs:(resolve_jobs ?cap:max_jobs jobs)
        ?oversubscribe:(resolve_oversubscribe osub) ~trace_json ~trace_csv
        ~gantt ~profile ~profile_folded ~attrib ~metrics_out arch wls_of
  in
  Cmd.v
    (Cmd.info "motivating" ~doc:"Run the Figure 2 motivating example")
    Term.(
      const run $ arch_arg $ jobs_arg $ max_jobs_arg $ oversubscribe_arg
      $ trace_arg $ trace_csv_arg $ gantt_arg $ perf_arg $ profile_arg
      $ profile_folded_arg $ attrib_arg $ metrics_out_arg)

(* ---------------- list --------------------------------------------- *)

let list_cmd =
  let run () =
    Fmt.pr "SPEC pairs:   %s@."
      (String.concat " " (List.map (fun p -> p.Suite.label) Suite.spec_pairs));
    Fmt.pr "OpenCV pairs: %s@."
      (String.concat " "
         (List.map (fun p -> "ocv:" ^ p.Suite.label) Suite.opencv_pairs));
    Fmt.pr "4-core groups:@.";
    List.iter
      (fun g -> Fmt.pr "  %s@." g.Suite.g_label)
      Suite.four_core_groups;
    Fmt.pr "SPEC workloads: WL1..WL22 — OpenCV workloads: OCV1..OCV12@."
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List workloads, pairs and groups")
    Term.(const run $ const ())

(* ---------------- disasm ------------------------------------------- *)

let disasm_cmd =
  let wl_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"WL1..WL22 (SPEC) or OCV1..OCV12.")
  in
  let run name =
    let parse s =
      if String.length s > 2 && String.sub s 0 2 = "WL" then
        Option.map (fun i -> Suite.Spec_wl i)
          (int_of_string_opt (String.sub s 2 (String.length s - 2)))
      else if String.length s > 3 && String.sub s 0 3 = "OCV" then
        Option.map (fun i -> Suite.Opencv_wl i)
          (int_of_string_opt (String.sub s 3 (String.length s - 3)))
      else None
    in
    match parse name with
    | None -> `Error (false, "expected WL<n> or OCV<n>")
    | Some src ->
      let wl = Suite.compile src in
      Fmt.pr "%a@." Occamy_isa.Program.pp wl.Occamy_core.Workload.program;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Print the compiled EM-SIMD assembly of a workload (Figure 9)")
    Term.(ret (const run $ wl_arg))

(* ---------------- roofline ----------------------------------------- *)

let roofline_cmd =
  let issue_arg =
    Arg.(
      value & opt float 0.17
      & info [ "oi-issue" ] ~docv:"F" ~doc:"Issue operational intensity.")
  in
  let mem_arg =
    Arg.(
      value & opt float 0.25
      & info [ "oi-mem" ] ~docv:"F" ~doc:"Memory operational intensity.")
  in
  let level_arg =
    Arg.(
      value
      & opt level_conv Occamy_mem.Level.L2
      & info [ "level" ] ~docv:"LEVEL" ~doc:"Footprint level: vc, l2 or dram.")
  in
  let run issue mem level =
    let cfg = Occamy_lanemgr.Roofline.default_cfg in
    let oi = Occamy_isa.Oi.make ~issue ~mem in
    let tbl =
      Table.create
        ~title:(Fmt.str "Roofline for oi=%s at %s"
                  (Occamy_isa.Oi.to_string oi)
                  (Occamy_mem.Level.to_string level))
        ~header:[ "lanes"; "issue"; "mem"; "compute"; "AP"; "binding" ]
        ()
    in
    List.iter
      (fun vl ->
        let i, m, c, p =
          Occamy_lanemgr.Roofline.table5_row cfg ~vl ~oi ~level
        in
        Table.add_row tbl
          [
            Table.icell (4 * vl);
            Table.fcell i;
            Table.fcell m;
            Table.fcell c;
            Table.fcell p;
            Occamy_lanemgr.Roofline.bound_name
              (Occamy_lanemgr.Roofline.binding cfg ~vl ~oi ~level);
          ])
      [ 1; 2; 3; 4; 5; 6; 7; 8 ];
    Table.print tbl
  in
  Cmd.v
    (Cmd.info "roofline"
       ~doc:"Print the vector-length-aware roofline (Equation 4)")
    Term.(const run $ issue_arg $ mem_arg $ level_arg)

(* ---------------- area --------------------------------------------- *)

let area_cmd =
  let cores_arg =
    Arg.(value & opt int 2 & info [ "cores" ] ~docv:"N" ~doc:"Core count.")
  in
  let run cores =
    Table.print (Occamy_experiments.Fig12.area_table ~cores ())
  in
  Cmd.v
    (Cmd.info "area" ~doc:"Print the chip-area model (Figure 12)")
    Term.(const run $ cores_arg)

(* ---------------- export ------------------------------------------- *)

let export_cmd =
  let dir_arg =
    Arg.(
      value & opt string "figures"
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory for the CSVs.")
  in
  let scale_arg =
    Arg.(
      value & opt float 1.0
      & info [ "tc-scale" ] ~docv:"F"
          ~doc:"Trip-count scale for the 25-pair sweep (smaller = faster).")
  in
  let run dir scale jobs max_jobs osub =
    let files =
      Occamy_experiments.Export.write_all ~dir ~tc_scale:scale
        ~jobs:(resolve_jobs ?cap:max_jobs jobs)
        ?oversubscribe:(resolve_oversubscribe osub) ()
    in
    List.iter (Fmt.pr "wrote %s@.") files
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export figure data (timelines, pair series, Table 3) as CSV")
    Term.(
      const run $ dir_arg $ scale_arg $ jobs_arg $ max_jobs_arg
      $ oversubscribe_arg)

(* ---------------- fuzz --------------------------------------------- *)

let corpus_cmd =
  (* Replay the pinned regression corpus through the full differential
     pipeline (reference semantics vs EM-SIMD interpreter vs cycle
     simulator on all four architectures, each simulated twice — naive
     tick loop and event-horizon fast-forwarding — and held bit-identical
     by Invariant.check_equivalent). The nightly workflow runs this
     against the current core representation so a hot-loop rewrite that
     keeps tier-1 tests green but breaks a pinned counterexample still
     surfaces, with the failing seeds written out as a JSONL artifact. *)
  let corpus_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:
            "On failure, write the failing corpus entries (name, seed, \
             stage, message, repro command) as \
             $(docv)/corpus_failures.json for CI artifact upload.")
  in
  let write_corpus_failures dir failures =
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    (* JSONL, one failing entry per line — the harness's flat-object
       JSON fragment has no nested objects. *)
    let path = Filename.concat dir "corpus_failures.json" in
    let oc = open_out path in
    List.iter
      (fun (name, seed, repro, (f : Occamy_check.Diff.failure)) ->
        output_string oc
          (Occamy_util.Json.obj_to_line
             [
               ("name", Occamy_util.Json.Str name);
               (* as a string: replay seeds are 62-bit, beyond exact
                  float range *)
               ("seed", Occamy_util.Json.Str (string_of_int seed));
               ("stage", Occamy_util.Json.Str f.Occamy_check.Diff.stage);
               ("message", Occamy_util.Json.Str f.Occamy_check.Diff.message);
               ("repro", Occamy_util.Json.Str repro);
             ]);
        output_char oc '\n')
      failures;
    close_out oc;
    Fmt.pr "wrote %s@." path
  in
  let run out =
    let entries = Occamy_check.Corpus.entries in
    let failures =
      List.filter_map
        (fun (e : Occamy_check.Corpus.entry) ->
          match Occamy_check.Corpus.replay e with
          | Ok () ->
            Fmt.pr "corpus %-32s ok@." e.Occamy_check.Corpus.name;
            None
          | Error f ->
            Fmt.pr "corpus %-32s FAILED: %a@." e.Occamy_check.Corpus.name
              Occamy_check.Diff.pp_failure f;
            Some
              ( e.Occamy_check.Corpus.name,
                e.Occamy_check.Corpus.seed,
                Occamy_check.Fuzz.repro_command e.Occamy_check.Corpus.seed,
                f ))
        entries
    in
    let inject_entries = Occamy_check.Corpus.inject_entries in
    let inject_failures =
      List.filter_map
        (fun (e : Occamy_check.Corpus.inject_entry) ->
          match Occamy_check.Corpus.replay_inject e with
          | Ok stats ->
            Fmt.pr "corpus %-32s ok (%a)@." e.Occamy_check.Corpus.i_name
              Occamy_check.Inject.pp_stats stats;
            None
          | Error f ->
            Fmt.pr "corpus %-32s FAILED: %a@." e.Occamy_check.Corpus.i_name
              Occamy_check.Diff.pp_failure f;
            Some
              ( e.Occamy_check.Corpus.i_name,
                e.Occamy_check.Corpus.i_seed,
                Occamy_check.Inject.repro_command e.Occamy_check.Corpus.i_seed,
                f ))
        inject_entries
    in
    let failures = failures @ inject_failures in
    let total = List.length entries + List.length inject_entries in
    Fmt.pr "corpus: %d/%d entries passed@." (total - List.length failures)
      total;
    match failures with
    | [] -> `Ok ()
    | _ :: _ ->
      Option.iter (fun dir -> write_corpus_failures dir failures) out;
      `Error (false, "corpus replay found failures")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Replay the pinned regression corpus through the differential \
          pipeline (naive and fast-forwarding simulator loops held \
          bit-identical on every entry)")
    Term.(ret (const run $ corpus_out_arg))

let fuzz_cmd =
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "s"; "seed" ] ~docv:"S"
          ~doc:"Root seed of the campaign; case $(i,i) derives its replay \
                seed purely from (S, i).")
  in
  (* Like --jobs: a nonsensical value must be a usage error, not a
     silently successful zero-case campaign. *)
  let count_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok n
      | Some n ->
        Error (`Msg (Printf.sprintf "invalid case count %d (must be >= 0)" n))
      | None -> Error (`Msg (Printf.sprintf "invalid case count %S" s))
    in
    Arg.conv (parse, Fmt.int)
  in
  let count_arg =
    Arg.(
      value & opt count_conv 200
      & info [ "n"; "count" ] ~docv:"N"
          ~doc:"Number of cases to run. Must be >= 0.")
  in
  let minutes_conv =
    let parse s =
      match float_of_string_opt s with
      | Some m when m > 0.0 -> Ok m
      | Some m ->
        Error (`Msg (Printf.sprintf "invalid duration %g (must be > 0)" m))
      | None -> Error (`Msg (Printf.sprintf "invalid duration %S" s))
    in
    Arg.conv (parse, Fmt.float)
  in
  let minutes_arg =
    Arg.(
      value
      & opt (some minutes_conv) None
      & info [ "minutes" ] ~docv:"M"
          ~doc:
            "Run batches of fresh cases until $(docv) minutes elapse \
             instead of a fixed count (the nightly deep-fuzz mode). \
             Must be > 0.")
  in
  let case_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "case" ] ~docv:"SEED"
          ~doc:
            "Replay a single case by the seed a counterexample printed, \
             skipping the campaign.")
  in
  let inject_arg =
    let names = List.map fst Occamy_check.Fuzz.injections in
    Arg.(
      value
      & opt (some (enum (List.map (fun n -> (n, n)) names))) None
      & info [ "inject" ] ~docv:"BUG"
          ~doc:
            (Printf.sprintf
               "Seed a deliberate compiler bug (%s) into the loops fed to \
                the compiler while the reference runs the originals — for \
                demonstrating that the fuzzer catches and shrinks it."
               (String.concat ", " names)))
  in
  let inject_faults_arg =
    Arg.(
      value & flag
      & info [ "inject-faults" ]
          ~doc:
            "Fault-injection mode: every case compiles both plain and \
             TMR lowerings and runs the differential masking oracle — \
             single-bit lane flips must all be masked by TMR (any escape \
             is silent corruption and fails), plain-mode flips are \
             classified detected/benign, and the simulator's two tick \
             loops must stay bit-identical under rate-driven injection.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:
            "On failure, write the counterexample (JSON summary, pretty \
             loops, repro command) into $(docv) for CI artifact upload.")
  in
  let write_artifacts dir ~root_seed ~repro ~cx_index ~cx_seed
      ~(failure : Occamy_check.Diff.failure) ~steps ~shrunk ~original =
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let json_path = Filename.concat dir "counterexample.json" in
    Occamy_util.Json.write_file ~path:json_path
      (Occamy_util.Json.obj_to_string
      [
        ("root_seed", Occamy_util.Json.Num (float_of_int root_seed));
        ("case_index", Occamy_util.Json.Num (float_of_int cx_index));
        (* as a string: replay seeds are 62-bit, beyond exact float range *)
        ("case_seed", Occamy_util.Json.Str (string_of_int cx_seed));
        ("stage", Occamy_util.Json.Str failure.Occamy_check.Diff.stage);
        ("message", Occamy_util.Json.Str failure.Occamy_check.Diff.message);
        ("shrink_steps", Occamy_util.Json.Num (float_of_int steps));
        ("repro", Occamy_util.Json.Str repro);
      ]);
    let txt_path = Filename.concat dir "counterexample.txt" in
    let oc = open_out txt_path in
    let ppf = Format.formatter_of_out_channel oc in
    Format.fprintf ppf "%a@.@.original:@.%a@.repro: %s@."
      Occamy_check.Diff.pp_case shrunk Occamy_check.Diff.pp_case original
      repro;
    close_out oc;
    Fmt.pr "wrote %s and %s@." json_path txt_path
  in
  let write_fuzz_artifacts dir ~root_seed ?inject_name
      (cx : Occamy_check.Fuzz.counterexample) =
    write_artifacts dir ~root_seed
      ~repro:
        (Occamy_check.Fuzz.repro_command ?inject_name
           cx.Occamy_check.Fuzz.cx_seed)
      ~cx_index:cx.Occamy_check.Fuzz.cx_index
      ~cx_seed:cx.Occamy_check.Fuzz.cx_seed
      ~failure:cx.Occamy_check.Fuzz.cx_failure
      ~steps:cx.Occamy_check.Fuzz.cx_steps
      ~shrunk:cx.Occamy_check.Fuzz.cx_shrunk
      ~original:cx.Occamy_check.Fuzz.cx_original
  in
  let write_inject_artifacts dir ~root_seed
      (cx : Occamy_check.Inject.counterexample) =
    write_artifacts dir ~root_seed
      ~repro:(Occamy_check.Inject.repro_command cx.Occamy_check.Inject.cx_seed)
      ~cx_index:cx.Occamy_check.Inject.cx_index
      ~cx_seed:cx.Occamy_check.Inject.cx_seed
      ~failure:cx.Occamy_check.Inject.cx_failure
      ~steps:cx.Occamy_check.Inject.cx_steps
      ~shrunk:cx.Occamy_check.Inject.cx_shrunk
      ~original:cx.Occamy_check.Inject.cx_original
  in
  let run seed count minutes case inject inject_faults jobs max_jobs osub out
      =
    if inject_faults && inject <> None then
      `Error (true, "--inject-faults and --inject are mutually exclusive")
    else
      match case with
      | Some cs when inject_faults -> (
        match Occamy_check.Inject.check_case cs with
        | Ok stats ->
          Fmt.pr "case %d: ok (%a)@." cs Occamy_check.Inject.pp_stats stats;
          `Ok ()
        | Error f ->
          Fmt.pr "case %d: %a@.%a@." cs Occamy_check.Diff.pp_failure f
            Occamy_check.Diff.pp_case
            (Occamy_check.Inject.case_of_seed cs);
          `Error (false, "case failed"))
      | Some cs -> (
        (* Single-case replay: the repro path a counterexample prints. *)
        match Occamy_check.Fuzz.run_case ?inject_name:inject cs with
        | Ok () ->
          Fmt.pr "case %d: ok@." cs;
          `Ok ()
        | Error f ->
          Fmt.pr "case %d: %a@.%a@." cs Occamy_check.Diff.pp_failure f
            Occamy_check.Diff.pp_case
            (Occamy_check.Diff.case_of_seed cs);
          `Error (false, "case failed"))
      | None when inject_faults ->
        let report =
          Occamy_check.Inject.run ?minutes
            ~on_batch:(fun ~done_ ->
              Fmt.pr "  ... %d cases@." done_;
              Format.pp_print_flush Fmt.stdout ())
            ?oversubscribe:(resolve_oversubscribe osub) ~seed ~count
            ~jobs:(resolve_jobs ?cap:max_jobs jobs)
            ()
        in
        Fmt.pr "%a@." Occamy_check.Inject.pp_report report;
        (match report.Occamy_check.Inject.counterexample with
        | Some cx ->
          Option.iter
            (fun dir -> write_inject_artifacts dir ~root_seed:seed cx)
            out;
          `Error (false, "fault-injection fuzzing found a counterexample")
        | None -> `Ok ())
      | None ->
        let report =
          Occamy_check.Fuzz.run ?inject_name:inject ?minutes
            ~on_batch:(fun ~done_ ->
              Fmt.pr "  ... %d cases@." done_;
              Format.pp_print_flush Fmt.stdout ())
            ?oversubscribe:(resolve_oversubscribe osub) ~seed ~count
            ~jobs:(resolve_jobs ?cap:max_jobs jobs)
            ()
        in
        Fmt.pr "%a@." Occamy_check.Fuzz.pp_report report;
        (match report.Occamy_check.Fuzz.counterexample with
        | Some cx ->
          Option.iter
            (fun dir ->
              write_fuzz_artifacts dir ~root_seed:seed ?inject_name:inject cx)
            out;
          `Error (false, "fuzzing found a counterexample")
        | None -> `Ok ())
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random loop workloads through the \
          reference semantics, the EM-SIMD interpreter under adversarial \
          reconfiguration schedules, and the cycle simulator on all four \
          architectures, with structural invariant checks — \
          counterexamples are shrunk and printed as replayable commands")
    Term.(
      ret
        (const run $ seed_arg $ count_arg $ minutes_arg $ case_arg
       $ inject_arg $ inject_faults_arg $ jobs_arg $ max_jobs_arg
       $ oversubscribe_arg $ out_arg))

(* ---------------- main --------------------------------------------- *)

let () =
  let doc =
    "Occamy: elastically sharing a SIMD co-processor across CPU cores \
     (ASPLOS'23 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "occamy-sim" ~version:"1.0.0" ~doc)
          [ run_cmd; motivating_cmd; list_cmd; disasm_cmd; roofline_cmd;
            area_cmd; export_cmd; fuzz_cmd; corpus_cmd ]))
