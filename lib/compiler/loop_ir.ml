(** The compiler's loop intermediate representation.

    This covers the loop class the Occamy compiler vectorizes (§6): inner
    loops over 32-bit floating-point arrays with unit stride, constant
    small offsets (stencils), loop-invariant scalars, and reductions —
    and no synchronisation inside. A workload (Table 3) is a list of such
    loops, each one becoming a *phase*.

    [outer_reps] models a surrounding outer loop: the phase prologue and
    epilogue can be hoisted out of it (the code-hoisting optimisation of
    §6.3) or left inside (the ablation case). *)

type array_ref = { base : string; offset : int }  (** A[i + offset] *)

type expr =
  | Load of array_ref
  | Const of float
  | Param of string * float  (** loop-invariant scalar, broadcast once *)
  | Op of Occamy_isa.Vop.t * expr list

type stmt =
  | Store of array_ref * expr
  | Reduce of Occamy_isa.Vop.Red.t * string * expr
      (** accumulate [expr] into the named reduction across iterations *)

type t = {
  name : string;
  trip_count : int;
  body : stmt list;
  level : Occamy_mem.Level.t;  (** residence level of the footprint *)
  outer_reps : int;
}

let loop ?(outer_reps = 1) ?(level = Occamy_mem.Level.Vec_cache) ~name
    ~trip_count body =
  { name; trip_count; body; level; outer_reps }

(* Convenience constructors for writing kernels legibly. *)
let ( .%[] ) base offset = Load { base; offset }
let a0 base = Load { base; offset = 0 }
let c x = Const x
let param name v = Param (name, v)
let ( +: ) a b = Op (Occamy_isa.Vop.Add, [ a; b ])
let ( -: ) a b = Op (Occamy_isa.Vop.Sub, [ a; b ])
let ( *: ) a b = Op (Occamy_isa.Vop.Mul, [ a; b ])
let ( /: ) a b = Op (Occamy_isa.Vop.Div, [ a; b ])
let fma a b cc = Op (Occamy_isa.Vop.Fma, [ a; b; cc ])
let sqrt_ a = Op (Occamy_isa.Vop.Sqrt, [ a ])
let abs_ a = Op (Occamy_isa.Vop.Abs, [ a ])
let neg a = Op (Occamy_isa.Vop.Neg, [ a ])
let max_ a b = Op (Occamy_isa.Vop.Max, [ a; b ])
let min_ a b = Op (Occamy_isa.Vop.Min, [ a; b ])
let store base e = Store ({ base; offset = 0 }, e)
let store_at base offset e = Store ({ base; offset }, e)
let reduce_sum name e = Reduce (Occamy_isa.Vop.Red.Sum, name, e)
let reduce_max name e = Reduce (Occamy_isa.Vop.Red.Maxr, name, e)

let rec pp_expr ppf = function
  | Load { base; offset } ->
    if offset = 0 then Fmt.pf ppf "%s[i]" base
    else Fmt.pf ppf "%s[i%+d]" base offset
  | Const v -> Fmt.pf ppf "%g" v
  | Param (n, v) -> Fmt.pf ppf "%s(=%g)" n v
  | Op (op, args) ->
    Fmt.pf ppf "%s(%a)" (Occamy_isa.Vop.name op)
      (Fmt.list ~sep:(Fmt.any ", ") pp_expr)
      args

let pp_stmt ppf = function
  | Store ({ base; offset }, e) ->
    if offset = 0 then Fmt.pf ppf "%s[i] = %a" base pp_expr e
    else Fmt.pf ppf "%s[i%+d] = %a" base offset pp_expr e
  | Reduce (op, name, e) ->
    Fmt.pf ppf "%s %s= %a" name (Occamy_isa.Vop.Red.name op) pp_expr e

let pp ppf t =
  Fmt.pf ppf "loop %s (tc=%d, reps=%d, %a):@." t.name t.trip_count t.outer_reps
    Occamy_mem.Level.pp t.level;
  List.iter (fun s -> Fmt.pf ppf "  %a@." pp_stmt s) t.body

let rec expr_iter f e =
  f e;
  match e with
  | Load _ | Const _ | Param _ -> ()
  | Op (_, args) -> List.iter (expr_iter f) args

let stmt_expr = function Store (_, e) -> e | Reduce (_, _, e) -> e

let iter_exprs f t = List.iter (fun s -> expr_iter f (stmt_expr s)) t.body

(* Distinct array names read / written, in first-appearance order. *)
let arrays_read t =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  iter_exprs
    (function
      | Load { base; _ } ->
        if not (Hashtbl.mem seen base) then begin
          Hashtbl.add seen base ();
          order := base :: !order
        end
      | _ -> ())
    t;
  List.rev !order

let arrays_written t =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (function
      | Store ({ base; _ }, _) ->
        if not (Hashtbl.mem seen base) then begin
          Hashtbl.add seen base ();
          order := base :: !order
        end
      | Reduce _ -> ())
    t.body;
  List.rev !order

let reduction_names t =
  List.filter_map
    (function Reduce (_, name, _) -> Some name | Store _ -> None)
    t.body

let offsets_of_array t arr =
  let offs = ref [] in
  iter_exprs
    (function
      | Load { base; offset } when base = arr -> offs := offset :: !offs
      | _ -> ())
    t;
  List.iter
    (function
      | Store ({ base; offset }, _) when base = arr -> offs := offset :: !offs
      | _ -> ())
    t.body;
  List.sort_uniq compare !offs

let min_offset t =
  List.fold_left
    (fun acc arr ->
      List.fold_left Stdlib.min acc (offsets_of_array t arr))
    0
    (arrays_read t @ arrays_written t)

let max_offset t =
  List.fold_left
    (fun acc arr ->
      List.fold_left Stdlib.max acc (offsets_of_array t arr))
    0
    (arrays_read t @ arrays_written t)

(** Structural size of a loop: statements plus expression nodes, plus the
    trip count's bit length so that shrinking the trip also shrinks the
    measure. The fuzzer's minimiser only accepts rewrites that reduce
    this, which makes greedy shrinking terminate. *)
let size t =
  let rec expr_size = function
    | Load _ | Const _ | Param _ -> 1
    | Op (_, args) -> List.fold_left (fun acc a -> acc + expr_size a) 1 args
  in
  let bits n =
    let rec go acc n = if n <= 0 then acc else go (acc + 1) (n lsr 1) in
    go 0 n
  in
  List.fold_left (fun acc s -> acc + 1 + expr_size (stmt_expr s)) 0 t.body
  + bits t.trip_count + t.outer_reps

(** Structural validation: arity of every operator, positive trip count,
    unique reduction names, bounded offsets. *)
let validate t =
  if t.trip_count <= 0 then invalid_arg (t.name ^ ": trip_count <= 0");
  if t.outer_reps <= 0 then invalid_arg (t.name ^ ": outer_reps <= 0");
  iter_exprs
    (function
      | Op (op, args) ->
        if List.length args <> Occamy_isa.Vop.arity op then
          invalid_arg
            (Printf.sprintf "%s: %s expects %d operands" t.name
               (Occamy_isa.Vop.name op) (Occamy_isa.Vop.arity op))
      | _ -> ())
    t;
  let reds = reduction_names t in
  if List.length reds <> List.length (List.sort_uniq compare reds) then
    invalid_arg (t.name ^ ": duplicate reduction names");
  (* A parameter name must denote one value: the vectorizer broadcasts each
     named invariant into a single register. *)
  let params = Hashtbl.create 4 in
  iter_exprs
    (function
      | Param (name, v) -> (
        match Hashtbl.find_opt params name with
        | Some v' when v' <> v ->
          invalid_arg (t.name ^ ": parameter " ^ name ^ " bound to two values")
        | _ -> Hashtbl.replace params name v)
      | _ -> ())
    t;
  if abs (min_offset t) > 8 || max_offset t > 8 then
    invalid_arg (t.name ^ ": stencil offsets must stay within [-8, 8]");
  t
