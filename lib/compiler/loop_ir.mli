(** The compiler's loop intermediate representation: the loop class the
    Occamy compiler vectorizes (§6) — unit-stride FP array loops with
    constant stencil offsets, loop-invariant scalars and reductions, no
    internal synchronisation. A workload is a list of such loops, each one
    a phase. *)

type array_ref = { base : string; offset : int }  (** A[i + offset] *)

type expr =
  | Load of array_ref
  | Const of float
  | Param of string * float  (** loop-invariant scalar, broadcast once *)
  | Op of Occamy_isa.Vop.t * expr list

type stmt =
  | Store of array_ref * expr
  | Reduce of Occamy_isa.Vop.Red.t * string * expr

type t = {
  name : string;
  trip_count : int;
  body : stmt list;
  level : Occamy_mem.Level.t;  (** residence level of the footprint *)
  outer_reps : int;  (** surrounding outer-loop trip count (§6.3 hoisting) *)
}

val loop :
  ?outer_reps:int -> ?level:Occamy_mem.Level.t -> name:string ->
  trip_count:int -> stmt list -> t

(** {2 Expression-building DSL}

    [ "a".%[1] ] is A[i+1]; [a0 "a"] is A[i]; arithmetic uses the [:]-
    suffixed operators so integer arithmetic stays untouched. [fma a b c]
    is [a + b*c]. *)

val ( .%[] ) : string -> int -> expr
val a0 : string -> expr
val c : float -> expr
val param : string -> float -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val fma : expr -> expr -> expr -> expr
val sqrt_ : expr -> expr
val abs_ : expr -> expr
val neg : expr -> expr
val max_ : expr -> expr -> expr
val min_ : expr -> expr -> expr
val store : string -> expr -> stmt
val store_at : string -> int -> expr -> stmt
val reduce_sum : string -> expr -> stmt
val reduce_max : string -> expr -> stmt

(** {2 Structure queries} *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp : Format.formatter -> t -> unit

val expr_iter : (expr -> unit) -> expr -> unit
val stmt_expr : stmt -> expr
val iter_exprs : (expr -> unit) -> t -> unit
val arrays_read : t -> string list
val arrays_written : t -> string list
val reduction_names : t -> string list
val offsets_of_array : t -> string -> int list
val min_offset : t -> int
val max_offset : t -> int

val size : t -> int
(** Structural size (statements + expression nodes + trip-count bits +
    outer reps) — the measure the fuzzer's shrinker minimises. *)

val validate : t -> t
(** Arity, trip count, unique reductions, bounded offsets, consistent
    parameter bindings. Returns its argument. *)
