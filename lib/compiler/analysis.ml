(** Phase-behaviour analysis — Equation (5) of the paper.

    For a vectorized loop, the operational intensity pair is

      <OI>.issue = comp / sum of bytes over memory-access instructions
      <OI>.mem   = comp / footprint per iteration (with data reuse)

    where [comp] counts the SIMD compute work (FLOPs per element, FMA
    counting 2), the issue denominator counts every load/store instruction
    the vectorizer emits (after CSE — a reused load is issued once), and
    the footprint counts each distinct array once per iteration (unit
    stride: one new element per array per scalar iteration, regardless of
    how many stencil taps read it).

    A kernel with stencil reuse (several offsets into the same array)
    therefore gets [oi_issue < oi_mem] — the Case-4 situation of §7.4. *)

type result = {
  comp_flops : int;        (* per element *)
  comp_instrs : int;       (* vector compute instructions per iteration *)
  load_instrs : int;       (* after CSE *)
  store_instrs : int;
  issue_bytes : int;       (* per element: 4 * (loads + stores) *)
  footprint_bytes : int;   (* per element: 4 * distinct arrays touched *)
  oi : Occamy_isa.Oi.t;
}

let elem_bytes = 4

let analyse ?(tmr = false) (l : Loop_ir.t) =
  let dag = Dag.build l.Loop_ir.body in
  (* Under TMR lowering ({!Vectorize.lower}) every load and every compute
     op is issued three times (one per replica), and each store is
     preceded by a majority vote (one extra compute instruction, one
     FLOP per element). Stores themselves are not replicated — the voted
     value is written once — and the per-iteration footprint is
     unchanged: the three load copies hit the same addresses, so the
     memory-side reuse analysis sees the same distinct arrays. *)
  let reps = if tmr then 3 else 1 in
  let store_instrs = List.length dag.Dag.stores in
  let votes = if tmr then store_instrs else 0 in
  let comp_flops = (reps * Dag.count_flops dag) + votes in
  let comp_instrs = (reps * Dag.count_ops dag) + votes in
  let load_instrs = reps * Dag.count_loads dag in
  let issue_bytes = elem_bytes * (load_instrs + store_instrs) in
  let arrays =
    List.sort_uniq compare
      (Loop_ir.arrays_read l @ Loop_ir.arrays_written l)
  in
  let footprint_bytes = elem_bytes * List.length arrays in
  (* A phase with memory traffic but no FP work (a pure copy) still is a
     phase: <OI> = 0 is the end-of-phase sentinel, so clamp to a tiny
     positive intensity — the lane manager then treats it as maximally
     memory-bound, which is what a copy is. *)
  let ratio flops bytes =
    if bytes = 0 then if flops = 0 then 1e-3 else 1e6
      (* no memory traffic at all: arbitrarily compute-bound, but still a
         phase (a plain 0 would read as the end-of-phase sentinel) *)
    else if flops = 0 then 1e-3
    else float_of_int flops /. float_of_int bytes
  in
  let oi =
    Occamy_isa.Oi.make
      ~issue:(ratio comp_flops issue_bytes)
      ~mem:(ratio comp_flops footprint_bytes)
  in
  {
    comp_flops;
    comp_instrs;
    load_instrs;
    store_instrs;
    issue_bytes;
    footprint_bytes;
    oi;
  }

let oi_of l = (analyse l).oi

(** Does the loop exhibit data reuse (issue and memory intensities
    diverge)? *)
let has_reuse l =
  let r = analyse l in
  r.issue_bytes <> r.footprint_bytes

let pp_result ppf r =
  Fmt.pf ppf
    "flops=%d comp=%d loads=%d stores=%d issue_bytes=%d footprint=%d oi=%a"
    r.comp_flops r.comp_instrs r.load_instrs r.store_instrs r.issue_bytes
    r.footprint_bytes Occamy_isa.Oi.pp r.oi
