(** Phase-behaviour analysis — Equation (5): the operational intensity
    pair a phase's prologue writes into `<OI>`. [issue] divides FLOPs by
    the bytes of every (CSE'd) load/store instruction; [mem] by the
    distinct-array footprint per iteration. Stencil reuse yields
    [oi_issue < oi_mem] — the §7.4 Case-4 shape. *)

type result = {
  comp_flops : int;
  comp_instrs : int;
  load_instrs : int;
  store_instrs : int;
  issue_bytes : int;
  footprint_bytes : int;
  oi : Occamy_isa.Oi.t;
}

val elem_bytes : int

(** With [~tmr:true], account for the triple-modular-redundancy lowering
    of {!Vectorize.lower}: loads and compute ops are issued three times,
    each store gains one majority-vote instruction (one FLOP/element),
    stores themselves stay single, and the per-iteration footprint is
    unchanged — so [oi] reflects the replicated issue stream the lane
    manager actually observes. *)
val analyse : ?tmr:bool -> Loop_ir.t -> result
val oi_of : Loop_ir.t -> Occamy_isa.Oi.t
val has_reuse : Loop_ir.t -> bool
val pp_result : Format.formatter -> result -> unit
