(** Elastic vectorization: lower a loop body DAG to vector-length-agnostic
    EM-SIMD code (§6.2, §6.4).

    The lowered pieces are assembled by {!Codegen} into the Figure-9
    skeleton. What this module guarantees:

    - the per-iteration body only ever touches the first [k = x5] elements
      (loads/stores carry the count register), so it is correct under any
      vector length the lazy-partitioning code switches to;
    - loop-invariant values live in [init], re-executed after every
      reconfiguration (register contents do not survive a `MSR <VL>`);
    - each reduction keeps a scalar *carry* register that survives
      reconfigurations: [save_partials] folds the vector accumulator into
      the carry right before a vector-length change, [init] restarts the
      accumulator at the identity, and [finalize] produces the final value
      and stores it to the reduction's one-element output array. *)

module Instr = Occamy_isa.Instr
module Reg = Occamy_isa.Reg
module Vop = Occamy_isa.Vop

type reduction = {
  red_op : Vop.Red.t;
  red_name : string;
  acc : Reg.v;     (* vector accumulator *)
  carry : Reg.f;   (* scalar partial, survives reconfiguration *)
  out_array : string;
}

type t = {
  init : Instr.t list;           (* invariant init, target of the re-init jump *)
  scalar_init : Instr.t list;    (* param loads for the non-vectorized variant *)
  vbody : Instr.t list;          (* vector body: expects x0 = i, x5 = k *)
  sbody : Instr.t list;          (* scalar body: expects x0 = i *)
  carry_init : Instr.t list;     (* reset carries; once per phase execution *)
  save_partials : Instr.t list;  (* fold accumulators into carries *)
  vfinalize : Instr.t list;      (* vector-path epilogue of the reductions *)
  sfinalize : Instr.t list;      (* scalar-path epilogue *)
  reductions : reduction list;
  vregs_used : int;
}

(* The scalar mirror of a reduction combine. *)
let vop_of_red = function
  | Vop.Red.Sum -> Vop.Add
  | Vop.Red.Maxr -> Vop.Max
  | Vop.Red.Minr -> Vop.Min

let reduction_out_array red_name = red_name ^ ".out"

(* Simple last-use register reuse over the DAG. [alloc] hands out registers
   from a free pool, [free] returns them once the node's last use passed. *)
module Pool = struct
  type t = { mutable free : int list; mutable high : int }

  let create ids = { free = ids; high = 0 }

  let alloc t what =
    match t.free with
    | [] -> invalid_arg (Printf.sprintf "Vectorize: out of %s registers" what)
    | r :: rest ->
      t.free <- rest;
      t.high <- max t.high (r + 1);
      r

  let release t r = t.free <- r :: t.free
end

(* Address temporaries: one per distinct non-zero stencil offset. *)
let offset_slots body =
  let offsets = ref [] in
  let note (r : Loop_ir.array_ref) =
    if r.Loop_ir.offset <> 0 && not (List.mem r.Loop_ir.offset !offsets) then
      offsets := r.Loop_ir.offset :: !offsets
  in
  List.iter
    (fun stmt ->
      Loop_ir.expr_iter
        (function Loop_ir.Load r -> note r | _ -> ())
        (Loop_ir.stmt_expr stmt);
      match stmt with Loop_ir.Store (r, _) -> note r | Loop_ir.Reduce _ -> ())
    body;
  let offsets = List.rev !offsets in
  if List.length offsets > Abi.max_addr_temps then
    invalid_arg "Vectorize: too many distinct stencil offsets";
  List.mapi (fun slot off -> (off, slot)) offsets

let addr_for slots (r : Loop_ir.array_ref) =
  if r.Loop_ir.offset = 0 then Abi.xi
  else Abi.xaddr (List.assoc r.Loop_ir.offset slots)

let addr_setup slots =
  List.map
    (fun (off, slot) ->
      Instr.Iop (Instr.Addi, Abi.xaddr slot, Abi.xi, Instr.Imm off))
    slots

let lower ?(tmr = false) ~lookup (l : Loop_ir.t) =
  let dag = Dag.build l.Loop_ir.body in
  let n = Dag.num_nodes dag in
  let last = Dag.last_uses dag in
  let slots = offset_slots l.Loop_ir.body in
  (* TMR (lane-level triple modular redundancy, Elzar-style): every
     vector value is computed in [reps = 3] independent register copies
     — separate Vloads, separate Vdups, separate ALU ops — and a 2-of-3
     majority vote collapses the copies right before they leave the
     sphere of replication (a store, or a reduction fold). A transient
     single-copy fault is then masked by construction; the voter output
     and store data path are assumed hardened (ECC), the standard TMR
     sphere boundary. *)
  let reps = if tmr then 3 else 1 in

  (* --- static assignments: params and reduction accumulators --- *)
  (* Copies of one value occupy [reps] consecutive vregs from its base. *)
  let params = Dag.params dag in
  let nparams = List.length params in
  let param_vreg =
    List.mapi (fun i (name, v) -> (name, (v, i * reps))) params
  in
  let reductions =
    List.mapi
      (fun i (op, name, _) ->
        {
          red_op = op;
          red_name = name;
          acc = Reg.v ((nparams + i) * reps);
          carry = Abi.fcarry i;
          out_array = reduction_out_array name;
        })
      dag.Dag.reduces
  in
  let nstatic = (nparams + List.length reductions) * reps in
  (* The voter's destination register, outside every replica set. *)
  let vote_reg = nstatic in
  let pool_base = if tmr then nstatic + 1 else nstatic in
  if pool_base >= Reg.num_v then
    invalid_arg "Vectorize: too many invariants";
  let acc_copy r j = Reg.v (Reg.v_index r.acc + j) in

  (* --- invariant init block (re-run after every reconfiguration) --- *)
  (* Parameters are compile-time constants: broadcast them through the
     scratch register rather than pinning a scalar FP register each — a
     kernel like a 3x3 colour matrix has nine of them. The scalar variant
     rematerialises them at use. Under TMR each copy gets its own Vdup,
     so a broadcast fault stays confined to one replica. *)
  let scalar_init = [] in
  let dup_copies base v =
    Instr.Fli (Abi.ffold, v)
    :: List.init reps (fun j -> Instr.Vdup (Reg.v (base + j), Abi.ffold))
  in
  let init =
    List.concat_map (fun (_, (v, base)) -> dup_copies base v) param_vreg
    @ List.concat_map
        (fun r ->
          dup_copies (Reg.v_index r.acc) (Vop.Red.identity r.red_op))
        reductions
  in
  let carry_init =
    List.map
      (fun r -> Instr.Fli (r.carry, Vop.Red.identity r.red_op))
      reductions
  in
  (* Fold a reduction's accumulator into its scalar carry. Under TMR the
     three accumulator copies are voted first, so the folded value is
     the majority view — a single corrupted copy never reaches the
     carry. *)
  let fold_acc r =
    if tmr then
      [
        Instr.Vop
          {
            op = Vop.Vote;
            dst = Reg.v vote_reg;
            srcs = List.init reps (acc_copy r);
            cnt = None;
          };
        Instr.Vred { op = r.red_op; dst = Abi.ffold; src = Reg.v vote_reg };
        Instr.Fvop (vop_of_red r.red_op, r.carry, [ r.carry; Abi.ffold ]);
      ]
    else
      [
        Instr.Vred { op = r.red_op; dst = Abi.ffold; src = r.acc };
        Instr.Fvop (vop_of_red r.red_op, r.carry, [ r.carry; Abi.ffold ]);
      ]
  in
  let save_partials = List.concat_map fold_acc reductions in

  (* --- vector body --- *)
  let vinstrs = ref [] in
  let emit i = vinstrs := i :: !vinstrs in
  let pool =
    Pool.create (List.init (Reg.num_v - pool_base) (fun i -> pool_base + i))
  in
  (* Register of copy [j] of each node's value ([reps] columns). *)
  let node_reg = Array.make_matrix n reps (-1) in
  let release_node id =
    (* Copies were allocated together; release them together. Statics
       (params, accumulators, the voter register) never return to the
       pool. *)
    Array.iter (fun r -> if r >= pool_base then Pool.release pool r)
      node_reg.(id)
  in
  List.iter emit (addr_setup slots);
  Array.iteri
    (fun id node ->
      (match node with
      | Dag.Nload r ->
        (* One Vload per copy: each load's data transfer is its own
           fault opportunity, so a corrupted return hits one replica. *)
        for j = 0 to reps - 1 do
          let zr = Pool.alloc pool "vector" in
          node_reg.(id).(j) <- zr;
          emit
            (Instr.Vload
               {
                 dst = Reg.v zr;
                 arr = lookup r.Loop_ir.base;
                 idx = addr_for slots r;
                 cnt = Some Abi.xk;
               })
        done
      | Dag.Nconst v ->
        emit (Instr.Fli (Abi.ffold, v));
        for j = 0 to reps - 1 do
          let zr = Pool.alloc pool "vector" in
          node_reg.(id).(j) <- zr;
          emit (Instr.Vdup (Reg.v zr, Abi.ffold))
        done
      | Dag.Nparam (name, _) ->
        let _, base = List.assoc name param_vreg in
        for j = 0 to reps - 1 do
          node_reg.(id).(j) <- base + j
        done
      | Dag.Nop (op, args) ->
        (* Free operands whose last use is this node before allocating the
           destination, so chains reuse registers. Only without
           replication: a single instruction may alias its destination
           onto one of its own sources, but with reps > 1 a register
           freed here could be re-allocated as copy j's destination
           while still live as copy j' > j's source — clobbering one
           replica with another's result and silently collapsing the
           triple to 2-of-3 (a fault on either surviving copy then
           defeats the vote). Release after all copies when replicated. *)
        let release_args () =
          List.iter
            (fun a -> if last.(a) = id then release_node a)
            (List.sort_uniq compare args)
        in
        if reps = 1 then release_args ();
        for j = 0 to reps - 1 do
          let srcs = List.map (fun a -> Reg.v node_reg.(a).(j)) args in
          let zr = Pool.alloc pool "vector" in
          node_reg.(id).(j) <- zr;
          emit (Instr.Vop { op; dst = Reg.v zr; srcs; cnt = None })
        done;
        if reps > 1 then release_args ());
      ())
    dag.Dag.nodes;
  (* The voted view of node [id]: itself when plain, the majority of its
     three copies (left in [vote_reg]) under TMR. *)
  let voted_reg id =
    if tmr then begin
      emit
        (Instr.Vop
           {
             op = Vop.Vote;
             dst = Reg.v vote_reg;
             srcs = List.init reps (fun j -> Reg.v node_reg.(id).(j));
             cnt = Some Abi.xk;
           });
      Reg.v vote_reg
    end
    else Reg.v node_reg.(id).(0)
  in
  let pos = ref n in
  List.iter
    (fun (r, id) ->
      let src = voted_reg id in
      emit
        (Instr.Vstore
           {
             src;
             arr = lookup r.Loop_ir.base;
             idx = addr_for slots r;
             cnt = Some Abi.xk;
           });
      if last.(id) = !pos then release_node id;
      incr pos)
    dag.Dag.stores;
  List.iteri
    (fun i (op, _, id) ->
      let r = List.nth reductions i in
      ignore op;
      (* Merging predication: only the first k elements accumulate, so a
         loop tail cannot pollute the reduction with inactive lanes.
         Under TMR each accumulator copy folds its own replica of the
         value — the copies stay independent until [save_partials]
         votes them. *)
      for j = 0 to reps - 1 do
        emit
          (Instr.Vop
             {
               op = vop_of_red r.red_op;
               dst = acc_copy r j;
               srcs = [ acc_copy r j; Reg.v node_reg.(id).(j) ];
               cnt = Some Abi.xk;
             })
      done;
      if last.(id) = !pos then release_node id;
      incr pos)
    dag.Dag.reduces;
  let vbody = List.rev !vinstrs in

  (* --- scalar body (the multi-version non-vectorized variant) --- *)
  let sinstrs = ref [] in
  let semit i = sinstrs := i :: !sinstrs in
  ignore nparams;
  let fpool_ids =
    List.filter
      (fun i -> i >= Abi.first_temp_freg && i < Reg.num_f)
      (List.init Reg.num_f Fun.id)
  in
  let fpool = Pool.create fpool_ids in
  let node_freg = Array.make n (-1) in
  List.iter semit (addr_setup slots);
  Array.iteri
    (fun id node ->
      match node with
      | Dag.Nload r ->
        let fr = Pool.alloc fpool "scalar FP" in
        node_freg.(id) <- fr;
        semit
          (Instr.Flw
             { fdst = Reg.f fr; arr = lookup r.Loop_ir.base; idx = addr_for slots r })
      | Dag.Nconst v ->
        let fr = Pool.alloc fpool "scalar FP" in
        node_freg.(id) <- fr;
        semit (Instr.Fli (Reg.f fr, v))
      | Dag.Nparam (_, v) ->
        (* Rematerialise the invariant: it is a compile-time constant. *)
        let fr = Pool.alloc fpool "scalar FP" in
        node_freg.(id) <- fr;
        semit (Instr.Fli (Reg.f fr, v))
      | Dag.Nop (op, args) ->
        let srcs = List.map (fun a -> Reg.f node_freg.(a)) args in
        List.iter
          (fun a ->
            if last.(a) = id && node_freg.(a) >= Abi.first_temp_freg
            then Pool.release fpool node_freg.(a))
          (List.sort_uniq compare args);
        let fr = Pool.alloc fpool "scalar FP" in
        node_freg.(id) <- fr;
        semit (Instr.Fvop (op, Reg.f fr, srcs)))
    dag.Dag.nodes;
  let spos = ref n in
  List.iter
    (fun (r, id) ->
      semit
        (Instr.Fsw
           { fsrc = Reg.f node_freg.(id); arr = lookup r.Loop_ir.base;
             idx = addr_for slots r });
      if last.(id) = !spos && node_freg.(id) >= Abi.first_temp_freg then
        Pool.release fpool node_freg.(id);
      incr spos)
    dag.Dag.stores;
  List.iteri
    (fun i (_, _, id) ->
      let r = List.nth reductions i in
      semit
        (Instr.Fvop
           (vop_of_red r.red_op, r.carry, [ r.carry; Reg.f node_freg.(id) ]));
      if last.(id) = !spos && node_freg.(id) >= Abi.first_temp_freg then
        Pool.release fpool node_freg.(id);
      incr spos)
    dag.Dag.reduces;
  let sbody = List.rev !sinstrs in

  (* --- reduction finalization --- *)
  let store_carries =
    List.concat_map
      (fun r ->
        [
          Instr.Li (Abi.xred, 0);
          Instr.Fsw { fsrc = r.carry; arr = lookup r.out_array; idx = Abi.xred };
        ])
      reductions
  in
  let vfinalize = save_partials @ store_carries in
  let sfinalize = store_carries in
  {
    init;
    scalar_init;
    vbody;
    sbody;
    carry_init;
    save_partials;
    vfinalize;
    sfinalize;
    reductions;
    vregs_used = max pool_base pool.Pool.high;
  }
