(** Code generation: the lane-partitioning-enabled vectorized code of
    Figure 9 — eager `<OI>` writes in phase prologues/epilogues, the
    status-spin initial configuration, the lazy partition monitor and
    vector-length reconfiguration at iteration heads, a multi-version
    scalar variant for small trip counts, and prologue/epilogue hoisting
    out of outer loops.

    Documented deviations from the paper's Figure 9 (both tested): loop
    tails use `whilelt`-style element counts instead of a remainder loop,
    and the reconfiguration retry loop re-reads `<decision>` each attempt
    so a stale target cannot spin forever. *)

type options = {
  multiversion : bool;
  hoist : bool;
  monitor : bool;
  scalar_threshold : int;
  tmr : bool;
      (** lower every phase with lane-level triple modular redundancy
          (see {!Vectorize.lower}): triple register copies, majority
          votes before stores and reduction folds. Triples the compute
          and load issue streams; a single-copy transient fault is
          masked. Default [false]. *)
}

val default_options : options

val array_plan : Loop_ir.t list -> (string * int) list
(** The arrays a compiled workload declares, with sizes (stencil padding
    included) — for preparing input data. *)

val compile_workload :
  ?options:options -> name:string -> kind:Occamy_core.Workload.kind ->
  Loop_ir.t list -> Occamy_core.Workload.t
(** Compile a list of loops (one phase each) into a runnable, validated
    workload. *)
