(** Elastic vectorization (§6.2, §6.4): lower a loop body to
    vector-length-agnostic pieces that {!Codegen} assembles into the
    Figure-9 skeleton.

    Guarantees: the per-iteration body touches only the first [k = x5]
    elements, so it is correct under any vector length; loop invariants
    live in [init], re-run after every reconfiguration; each reduction's
    scalar carry survives reconfigurations ([save_partials] folds the
    vector accumulator into it, [init] restarts the accumulator,
    [vfinalize]/[sfinalize] store the final value). *)

type reduction = {
  red_op : Occamy_isa.Vop.Red.t;
  red_name : string;
  acc : Occamy_isa.Reg.v;
  carry : Occamy_isa.Reg.f;
  out_array : string;
}

type t = {
  init : Occamy_isa.Instr.t list;
  scalar_init : Occamy_isa.Instr.t list;
  vbody : Occamy_isa.Instr.t list;
  sbody : Occamy_isa.Instr.t list;
  carry_init : Occamy_isa.Instr.t list;
  save_partials : Occamy_isa.Instr.t list;
  vfinalize : Occamy_isa.Instr.t list;
  sfinalize : Occamy_isa.Instr.t list;
  reductions : reduction list;
  vregs_used : int;
}

val vop_of_red : Occamy_isa.Vop.Red.t -> Occamy_isa.Vop.t
val reduction_out_array : string -> string
(** Name of a reduction's one-element output array. *)

val lower : ?tmr:bool -> lookup:(string -> int) -> Loop_ir.t -> t
(** [lookup] maps array names to program array ids. Raises on register
    exhaustion or too many stencil offsets.

    With [~tmr:true] (default false) the body is lowered with lane-level
    triple modular redundancy: every vector value — loads, broadcasts,
    ALU results, reduction accumulators — is computed in three
    independent register copies, and a 2-of-3 majority {!Occamy_isa.Vop.Vote}
    collapses the copies immediately before each store and before each
    reduction fold. A transient fault confined to one copy is masked by
    construction; the voter output and the store data path lie outside
    the sphere of replication (assumed hardened, as in ECC-protected
    memory). Each reduction's [acc] names the first of its three
    consecutive accumulator registers. The scalar (non-vectorized)
    variant is unchanged. *)
