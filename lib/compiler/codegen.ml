(** Code generation: the lane-partitioning-enabled vectorized code of
    Figure 9.

    For every loop (phase) the emitted skeleton is:

    {v
      msr <OI>, (oi_issue, oi_mem)        ; eager partitioning (prologue)
    Lcfg:
      mrs x4, <decision>                  ; initial VL configuration
      msr <VL>, x4
      mrs x3, <status>
      b.ne x3, #1, Lcfg
      mov x2, x4
      ...                                 ; multi-version dispatch
    Linit:                                ; loop invariants (re-run on reconfig)
      dup ... ; acc init ; mrs x6, <ZCR>
    Lhead:
      b.ge x0, x1, Ldone
      mrs x4, <decision>                  ; lazy partition monitor
      b.eq x4, x2, Lbody
      faddv/...                           ; save reduction partials
    Lretry:
      mrs x4, <decision>                  ; re-read: avoids chasing a stale
      msr <VL>, x4                        ;   target (deviation from Fig. 9,
      mrs x3, <status>                    ;   see note below)
      b.ne x3, #1, Lretry
      mov x2, x4
      b Linit                             ; re-init invariants at the new VL
    Lbody:
      sub x7, x1, x0 ; mov x5, x6 ; min x5, x5, x7
      <loads/computes/stores, count x5>
      add x0, x0, x5
      b Lhead
    Ldone:
      <finalize reductions>
      msr <OI>, #0                        ; eager partitioning (epilogue)
    Lrel:
      msr <VL>, #0 ; mrs x3, <status> ; b.ne x3, #1, Lrel
    v}

    Deviations from the paper, both documented and tested:

    - loop tails are handled with `whilelt`-style element counts instead
      of a separate remainder loop, so a reconfiguration is legal at
      *every* iteration head;
    - the retry loop re-reads `<decision>` on every attempt. Figure 9
      latches the target in X2 once; if the lane manager replans between
      the read and the grant, a latched target can exceed what will ever
      become available and the workload would spin forever. Re-reading
      makes the handshake self-correcting.

    The hoisting optimisation (§6.3) moves the prologue/epilogue outside
    the [outer_reps] surrounding loop; [hoist = false] keeps them inside,
    which the overhead ablation benchmark uses. *)

module Instr = Occamy_isa.Instr
module Reg = Occamy_isa.Reg
module Oi = Occamy_isa.Oi
module Sysreg = Occamy_isa.Sysreg
module B = Occamy_isa.Program.Builder
module Workload = Occamy_core.Workload

type options = {
  multiversion : bool;    (** emit the scalar variant for small trip counts *)
  hoist : bool;           (** hoist prologue/epilogue out of outer loops *)
  monitor : bool;         (** emit the lazy-partitioning monitor *)
  scalar_threshold : int; (** trip counts below this run the scalar variant *)
  tmr : bool;             (** lower with lane-level triple modular
                              redundancy (voted stores/reductions) *)
}

let default_options =
  { multiversion = true; hoist = true; monitor = true; scalar_threshold = 64;
    tmr = false }

let profile_of_level = function
  | Occamy_mem.Level.Vec_cache -> Occamy_mem.Profile.cache_resident
  | Occamy_mem.Level.L2 -> Occamy_mem.Profile.l2_resident
  | Occamy_mem.Level.Dram -> Occamy_mem.Profile.streaming

let deeper a b =
  if Occamy_mem.Level.depth a >= Occamy_mem.Level.depth b then a else b

(* Size needed for array [arr] by loop [l]. The loop index starts at the
   loop-global lo (so that the most negative stencil offset of *any* array
   stays in bounds) and runs for trip_count iterations. *)
let size_for l arr =
  let offs = Loop_ir.offsets_of_array l arr in
  let maxoff = List.fold_left max 0 offs in
  let lo = max 0 (-Loop_ir.min_offset l) in
  lo + l.Loop_ir.trip_count + maxoff

(* Collect (array, size, level) over all loops; reduction outputs get a
   one-element cache-resident array each. *)
let collect_arrays loops =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let note name size level =
    match Hashtbl.find_opt tbl name with
    | Some (s, lv) -> Hashtbl.replace tbl name (max s size, deeper lv level)
    | None ->
      Hashtbl.add tbl name (size, level);
      order := name :: !order
  in
  List.iter
    (fun l ->
      List.iter
        (fun arr -> note arr (size_for l arr) l.Loop_ir.level)
        (Loop_ir.arrays_read l @ Loop_ir.arrays_written l);
      List.iter
        (fun red ->
          note (Vectorize.reduction_out_array red) 1 Occamy_mem.Level.Vec_cache)
        (Loop_ir.reduction_names l))
    loops;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order |> List.rev

(** The arrays a compiled workload will declare, with their sizes — used
    by tests and examples to set up input data that matches the compiled
    program's layout. *)
let array_plan loops =
  List.map (fun (name, (size, _)) -> (name, size)) (collect_arrays loops)

(* The <status>-spin handshake requesting vector length from [src]. *)
let emit_vl_request b ~src =
  let retry = B.fresh_label b "retry" in
  B.place_label b retry;
  B.emit b (Instr.Msr (Sysreg.VL, src));
  B.emit b (Instr.Mrs (Abi.xstatus, Sysreg.STATUS));
  B.emit b (Instr.Bc (Instr.Ne, Abi.xstatus, Instr.Imm 1, retry))

let emit_phase b ~options ~lookup (l : Loop_ir.t) =
  let lowered = Vectorize.lower ~tmr:options.tmr ~lookup l in
  let analysis = Analysis.analyse ~tmr:options.tmr l in
  let lo = max 0 (-Loop_ir.min_offset l) in
  let n = lo + l.Loop_ir.trip_count in
  let l_init = B.fresh_label b "init" in
  let l_head = B.fresh_label b "head" in
  let l_body = B.fresh_label b "body" in
  let l_done = B.fresh_label b "done" in
  let l_join = B.fresh_label b "join" in
  let l_scalar = B.fresh_label b "scalar" in
  let l_outer = B.fresh_label b "outer" in

  let prologue () =
    (* Eager partitioning: publish the phase behaviour, then take the
       suggested vector length. *)
    B.emit b (Instr.Msr_oi analysis.Analysis.oi);
    let cfg = B.fresh_label b "cfg" in
    B.place_label b cfg;
    B.emit b (Instr.Mrs (Abi.xdecision, Sysreg.DECISION));
    B.emit b (Instr.Msr (Sysreg.VL, Instr.Reg Abi.xdecision));
    B.emit b (Instr.Mrs (Abi.xstatus, Sysreg.STATUS));
    B.emit b (Instr.Bc (Instr.Ne, Abi.xstatus, Instr.Imm 1, cfg));
    B.emit b (Instr.Mov (Abi.xvl, Abi.xdecision))
  in
  let epilogue () =
    B.emit b (Instr.Msr_oi Oi.zero);
    emit_vl_request b ~src:(Instr.Imm 0)
  in

  if options.hoist then prologue ();
  B.emit b (Instr.Li (Abi.xouter, 0));
  B.place_label b l_outer;
  if not options.hoist then prologue ();

  List.iter (B.emit b) lowered.Vectorize.carry_init;
  B.emit b (Instr.Li (Abi.xi, lo));
  B.emit b (Instr.Li (Abi.xn, n));

  if options.multiversion then begin
    (* Multi-version dispatch (§6.3): small trip counts take the
       non-vectorized variant. *)
    B.emit b (Instr.Li (Abi.xtmp, l.Loop_ir.trip_count));
    B.emit b
      (Instr.Bc (Instr.Lt, Abi.xtmp, Instr.Imm options.scalar_threshold, l_scalar))
  end;

  (* Loop invariants; the lazy-reconfiguration path jumps back here. *)
  B.place_label b l_init;
  List.iter (B.emit b) lowered.Vectorize.init;
  B.emit b (Instr.Mrs (Abi.xelems, Sysreg.ZCR));
  B.emit b
    (Instr.Iop
       (Instr.Muli, Abi.xelems, Abi.xelems,
        Instr.Imm Occamy_isa.Lane.f32_per_granule));

  B.place_label b l_head;
  B.emit b (Instr.Bc (Instr.Ge, Abi.xi, Instr.Reg Abi.xn, l_done));
  if options.monitor then begin
    (* Lazy partitioning: the partition monitor and, when the decision
       moved, the vector-length reconfiguration. *)
    B.emit b (Instr.Mrs (Abi.xdecision, Sysreg.DECISION));
    B.emit b (Instr.Bc (Instr.Eq, Abi.xdecision, Instr.Reg Abi.xvl, l_body));
    List.iter (B.emit b) lowered.Vectorize.save_partials;
    let retry = B.fresh_label b "retry" in
    B.place_label b retry;
    B.emit b (Instr.Mrs (Abi.xdecision, Sysreg.DECISION));
    B.emit b (Instr.Msr (Sysreg.VL, Instr.Reg Abi.xdecision));
    B.emit b (Instr.Mrs (Abi.xstatus, Sysreg.STATUS));
    B.emit b (Instr.Bc (Instr.Ne, Abi.xstatus, Instr.Imm 1, retry));
    B.emit b (Instr.Mov (Abi.xvl, Abi.xdecision));
    B.emit b (Instr.B l_init)
  end;

  B.place_label b l_body;
  B.emit b (Instr.Iop (Instr.Subi, Abi.xtmp, Abi.xn, Instr.Reg Abi.xi));
  B.emit b (Instr.Mov (Abi.xk, Abi.xelems));
  B.emit b (Instr.Iop (Instr.Mini, Abi.xk, Abi.xk, Instr.Reg Abi.xtmp));
  List.iter (B.emit b) lowered.Vectorize.vbody;
  B.emit b (Instr.Iop (Instr.Addi, Abi.xi, Abi.xi, Instr.Reg Abi.xk));
  B.emit b (Instr.B l_head);

  B.place_label b l_done;
  List.iter (B.emit b) lowered.Vectorize.vfinalize;
  B.emit b (Instr.B l_join);

  (* The scalar variant: plain element-at-a-time loop, no SIMD lanes. *)
  B.place_label b l_scalar;
  if options.multiversion then begin
    let s_head = B.fresh_label b "shead" in
    let s_done = B.fresh_label b "sdone" in
    List.iter (B.emit b) lowered.Vectorize.scalar_init;
    B.place_label b s_head;
    B.emit b (Instr.Bc (Instr.Ge, Abi.xi, Instr.Reg Abi.xn, s_done));
    List.iter (B.emit b) lowered.Vectorize.sbody;
    B.emit b (Instr.Iop (Instr.Addi, Abi.xi, Abi.xi, Instr.Imm 1));
    B.emit b (Instr.B s_head);
    B.place_label b s_done;
    List.iter (B.emit b) lowered.Vectorize.sfinalize
  end;

  B.place_label b l_join;
  if not options.hoist then epilogue ();
  B.emit b (Instr.Iop (Instr.Addi, Abi.xouter, Abi.xouter, Instr.Imm 1));
  B.emit b
    (Instr.Bc (Instr.Lt, Abi.xouter, Instr.Imm l.Loop_ir.outer_reps, l_outer));
  if options.hoist then epilogue ();
  analysis

(** Compile a workload (a list of loops, each a phase) into a runnable
    {!Occamy_core.Workload.t}. *)
let compile_workload ?(options = default_options) ~name ~kind loops =
  if loops = [] then invalid_arg "Codegen.compile_workload: no loops";
  let loops = List.map Loop_ir.validate loops in
  let b = B.create name in
  let arrays = collect_arrays loops in
  let ids =
    List.map
      (fun (arr_name, (size, level)) ->
        (arr_name, (B.declare_array b ~name:arr_name ~size, level)))
      arrays
  in
  let lookup arr_name =
    match List.assoc_opt arr_name ids with
    | Some (id, _) -> id
    | None -> invalid_arg ("Codegen: unknown array " ^ arr_name)
  in
  let phases =
    List.map
      (fun l ->
        let analysis = emit_phase b ~options ~lookup l in
        {
          Workload.ph_name = l.Loop_ir.name;
          ph_oi = analysis.Analysis.oi;
          ph_level = l.Loop_ir.level;
          ph_trip_count = l.Loop_ir.trip_count;
          ph_oi_writes = (if options.hoist then 1 else l.Loop_ir.outer_reps);
        })
      loops
  in
  B.emit b Instr.Halt;
  let program = B.finish b in
  let profiles =
    Array.map
      (fun d ->
        let _, level = List.assoc d.Occamy_isa.Program.arr_name ids in
        profile_of_level level)
      program.Occamy_isa.Program.arrays
  in
  Workload.validate
    { Workload.wl_name = name; program; phases; kind; profiles }
