(** Memory-hierarchy levels visible to the co-processor (Figure 4): the
    vector cache, the shared unified L2, and DRAM. *)

type t = Vec_cache | L2 | Dram

val all : t list
val name : t -> string

val to_string : t -> string
(** Alias of [name], mirroring {!Occamy_isa.Oi.to_string} for the trace
    event schema. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val depth : t -> int
(** 0 closest to the register file. *)
