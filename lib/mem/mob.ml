(** Memory Ordering Buffer (§4.1.2).

    The MOB "tracks the memory regions within which at least one SVE ld/st
    instruction has not yet completed". Scalar cores consult it to order
    scalar accesses against in-flight vector accesses (Table 2's
    ⟨SVE, Scalar⟩ row): a younger access overlapping a tracked region must
    wait until the matching entries are deallocated.

    Regions are (array, base element, length) triples; completion
    deallocates. The structure is per-machine (addresses are global).

    Data-oriented layout: entries live in preallocated parallel int
    arrays indexed by slot, with a packed occupancy bitmask driving the
    conflict sweep and a free-slot stack for O(1) allocation — the
    simulator probes [conflicts]/[is_full] on every load/store issue
    attempt, and none of it allocates. The simulator addresses entries
    by slot ([insert_slot]/[remove_slot]); the id-based API remains for
    callers that want stable handles. *)

open Occamy_util

type t = {
  capacity : int;
  mutable next_id : int;
  ids : int array; (* stable external id per slot, -1 = free *)
  cores : int array;
  arrs : int array;
  bases : int array;
  lens : int array;
  stores : bool array;
  occ : Bitset.t;
  free : int array;
  mutable free_n : int;
  (* Per-array-id occupancy counters gating the conflict sweep: a read
     can only conflict with an in-flight store to the same array, and a
     write with any in-flight access to it, so a zero count proves the
     absence of conflicts without scanning. Array ids beyond the fixed
     span (rare) fall back to the full sweep. *)
  arr_stores : int array;
  arr_any : int array;
}

let arr_span = 256

let create ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Mob.create: capacity must be positive";
  {
    capacity;
    next_id = 0;
    ids = Array.make capacity (-1);
    cores = Array.make capacity 0;
    arrs = Array.make capacity 0;
    bases = Array.make capacity 0;
    lens = Array.make capacity 0;
    stores = Array.make capacity false;
    occ = Bitset.create capacity;
    free = Array.init capacity (fun i -> i);
    free_n = capacity;
    arr_stores = Array.make arr_span 0;
    arr_any = Array.make arr_span 0;
  }

let size t = t.capacity - t.free_n
let[@inline] is_full t = t.free_n = 0

(** [insert_slot] registers an in-flight vector access and returns its
    slot handle; allocation-free. Raises when full — the simulator
    checks {!is_full} first. *)
let insert_slot t ~core ~arr ~base ~len ~is_store =
  if len < 0 || base < 0 then invalid_arg "Mob.insert: bad region";
  if t.free_n = 0 then invalid_arg "Mob.insert_slot: full";
  t.free_n <- t.free_n - 1;
  let s = t.free.(t.free_n) in
  t.ids.(s) <- t.next_id;
  t.next_id <- t.next_id + 1;
  t.cores.(s) <- core;
  t.arrs.(s) <- arr;
  t.bases.(s) <- base;
  t.lens.(s) <- len;
  t.stores.(s) <- is_store;
  if arr >= 0 && arr < arr_span then begin
    t.arr_any.(arr) <- t.arr_any.(arr) + 1;
    if is_store then t.arr_stores.(arr) <- t.arr_stores.(arr) + 1
  end;
  Bitset.add t.occ s;
  s

let remove_slot t s =
  if s < 0 || s >= t.capacity || not (Bitset.mem t.occ s) then
    invalid_arg "Mob.remove_slot: not occupied";
  t.ids.(s) <- -1;
  let arr = t.arrs.(s) in
  if arr >= 0 && arr < arr_span then begin
    t.arr_any.(arr) <- t.arr_any.(arr) - 1;
    if t.stores.(s) then t.arr_stores.(arr) <- t.arr_stores.(arr) - 1
  end;
  Bitset.remove t.occ s;
  t.free.(t.free_n) <- s;
  t.free_n <- t.free_n + 1

(** [insert] registers an in-flight vector access; returns its id, or
    [None] when the MOB is full (the LSU must stall the access). *)
let insert t ~core ~arr ~base ~len ~is_store =
  if len < 0 || base < 0 then invalid_arg "Mob.insert: bad region";
  if is_full t then None
  else begin
    let s = insert_slot t ~core ~arr ~base ~len ~is_store in
    Some t.ids.(s)
  end

let rec find_id t id s =
  if s < 0 then -1
  else if t.ids.(s) = id then s
  else find_id t id (Bitset.next_set_from t.occ (s + 1))

let remove t id =
  let s = find_id t id (Bitset.next_set_from t.occ 0) in
  if s >= 0 then remove_slot t s

let[@inline] ranges_overlap b1 l1 b2 l2 = b1 < b2 + l2 && b2 < b1 + l1

let rec conflict_scan t ~arr ~base ~len ~is_store s =
  if s < 0 then false
  else if
    t.arrs.(s) = arr
    && ranges_overlap t.bases.(s) t.lens.(s) base len
    && (is_store || t.stores.(s))
  then true
  else
    conflict_scan t ~arr ~base ~len ~is_store
      (Bitset.next_set_from t.occ (s + 1))

(** Does a (read) access to [arr.[base..base+len)] conflict with any
    in-flight entry? Reads conflict only with in-flight stores; writes
    conflict with everything. *)
let conflicts t ~arr ~base ~len ~is_store =
  (arr < 0 || arr >= arr_span
  || (if is_store then t.arr_any.(arr) else t.arr_stores.(arr)) > 0)
  && conflict_scan t ~arr ~base ~len ~is_store (Bitset.next_set_from t.occ 0)

let rec count_core t ~core acc s =
  if s < 0 then acc
  else
    count_core t ~core
      (if t.cores.(s) = core then acc + 1 else acc)
      (Bitset.next_set_from t.occ (s + 1))

(** Entries belonging to a core, used to decide whether its SIMD ld/st
    pipeline has drained. *)
let outstanding_of t ~core = count_core t ~core 0 (Bitset.next_set_from t.occ 0)

let clear t =
  Bitset.clear t.occ;
  Array.fill t.ids 0 t.capacity (-1);
  Array.fill t.arr_stores 0 arr_span 0;
  Array.fill t.arr_any 0 arr_span 0;
  t.free_n <- t.capacity;
  for i = 0 to t.capacity - 1 do
    t.free.(i) <- i
  done
