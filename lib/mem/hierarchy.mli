(** The co-processor-facing memory hierarchy of Figure 4 / Table 4:
    RegFile <-> VecCache <-> shared L2 <-> DRAM, each level a shared
    bandwidth channel plus a latency. *)

type config = {
  vc_latency : int;
  vc_bytes_per_cycle : float;
  l2_latency : int;
  l2_bytes_per_cycle : float;
  dram_latency : int;
  dram_bytes_per_cycle : float;
}

val default_config : config
(** Table 4: VecCache 5 cycles / 256B per cycle (Figure 5's 4 x 64B), L2
    18 cycles / 64B, DRAM +40 cycles / 32B (64GB/s at 2GHz). *)

type t

val create : ?cfg:config -> unit -> t
val reset : t -> unit

val access : ?prefetched:bool -> t -> now:int -> level:Level.t -> bytes:int -> int
(** Book a transfer served at [level]; returns its completion cycle. A
    [prefetched] access (unit-stride stream) still charges every channel's
    bandwidth but only exposes the vector-cache latency — this is what
    makes streaming phases bandwidth-bound, the premise of §5.1. *)

val book : t -> prefetched:bool -> now:int -> level:Level.t -> bytes:int -> int
(** {!access} with a required [prefetched] flag: the optional argument
    wraps its value in [Some] at every call site, which the simulator's
    zero-allocation issue path cannot afford. Semantics are identical. *)

val latency_to : t -> Level.t -> int
val bandwidth_of : t -> Level.t -> float
val accesses : t -> int
val accesses_at : t -> Level.t -> int

val bytes_at : t -> Level.t -> float
(** Bytes transferred by accesses served at a level — the
    observability counters behind the [mem.*.bytes] gauges. *)

val config : t -> config
val channel : t -> Level.t -> Channel.t
