(** A bandwidth-limited transfer channel.

    Each level of the hierarchy owns one channel shared by all cores; a
    request occupies the channel for [bytes / bytes_per_cycle] cycles
    starting no earlier than both the request time and the end of the
    previous occupancy. This token-bucket model is what makes co-running
    workloads contend for L2/DRAM bandwidth, the effect underlying the
    paper's memory-bandwidth roofline ceilings (§5.1).

    The mutable state lives in an unboxed float array rather than mutable
    float fields: in a mixed record every float-field write allocates a
    fresh box, and [request] runs once per level crossed on every memory
    access of the simulator's zero-allocation hot loop. *)

type t = {
  name : string;
  bytes_per_cycle : float;
  st : float array;
      (* [| next_free; busy_cycles; bytes_moved |]: the cycle at which
         the channel frees up, total occupancy for utilisation stats,
         and total traffic *)
}

let create ~name ~bytes_per_cycle =
  if bytes_per_cycle <= 0.0 then invalid_arg "Channel.create: bandwidth <= 0";
  { name; bytes_per_cycle; st = [| 0.0; 0.0; 0.0 |] }

let reset t =
  t.st.(0) <- 0.0;
  t.st.(1) <- 0.0;
  t.st.(2) <- 0.0

(** [request t ~now ~bytes] books a transfer and returns the cycle at which
    the last byte has moved through the channel. *)
let[@inline] request t ~now ~bytes =
  if bytes < 0.0 then invalid_arg "Channel.request: negative size";
  let next_free = t.st.(0) in
  let start = if next_free > now then next_free else now in
  let occupancy = bytes /. t.bytes_per_cycle in
  let free_at = start +. occupancy in
  t.st.(0) <- free_at;
  t.st.(1) <- t.st.(1) +. occupancy;
  t.st.(2) <- t.st.(2) +. bytes;
  free_at

(** [book t ~io] is {!request} with the floats passed through a caller
    scratch array instead of the argument/return registers: [io.(0)] is
    the request time on entry and the completion cycle on exit; [io.(1)]
    is the byte count (unchanged). Float array cells load and store
    unboxed, so — unlike [request], whose float argument and result box
    at any non-inlined call — this entry point is allocation-free even
    without cross-module inlining (dune's dev profile passes [-opaque]).
    The arithmetic is identical to {!request}. *)
let book t ~io =
  let now = io.(0) in
  let bytes = io.(1) in
  if bytes < 0.0 then invalid_arg "Channel.request: negative size";
  let next_free = t.st.(0) in
  let start = if next_free > now then next_free else now in
  let occupancy = bytes /. t.bytes_per_cycle in
  let free_at = start +. occupancy in
  t.st.(0) <- free_at;
  t.st.(1) <- t.st.(1) +. occupancy;
  t.st.(2) <- t.st.(2) +. bytes;
  io.(0) <- free_at

(** Would a request issued [now] start immediately (no queueing)? *)
let[@inline] is_free t ~now = t.st.(0) <= now

let bytes_per_cycle t = t.bytes_per_cycle
let busy_cycles t = t.st.(1)
let bytes_moved t = t.st.(2)
let name t = t.name

(** Average bandwidth utilisation over [cycles]. *)
let utilisation t ~cycles =
  if cycles <= 0.0 then 0.0 else Float.min 1.0 (t.st.(1) /. cycles)
