(** The co-processor-facing memory hierarchy of Figure 4 / Table 4:

      RegFile <-> VecCache (128KB, 5-cycle) <-> shared L2 (8MB, 18-cycle)
              <-> DRAM (4GB, 64GB/s = 32B/cycle at 2GHz)

    An access served at level L occupies the channels of every level from
    the vector cache down to L (a miss moves the line through each), and
    completes after the levels' summed latencies plus any queueing delay.
    All cores share these channels, which is where inter-core memory
    contention arises. *)

type config = {
  vc_latency : int;
  vc_bytes_per_cycle : float;
  l2_latency : int;
  l2_bytes_per_cycle : float;
  dram_latency : int;
  dram_bytes_per_cycle : float;
}

(** Table 4 parameters (bandwidths are per cycle at 2GHz; DRAM 64GB/s =
    32B/cycle; L2 64B/cycle and VecCache 128B/cycle per Figure 7(b)). *)
let default_config =
  {
    vc_latency = 5;
    (* Figure 5: 4 x 64B/cycle between the register file and VecCache. *)
    vc_bytes_per_cycle = 256.0;
    l2_latency = 18;
    l2_bytes_per_cycle = 64.0;
    dram_latency = 40;
    dram_bytes_per_cycle = 32.0;
  }

type t = {
  cfg : config;
  vc : Channel.t;
  l2 : Channel.t;
  dram : Channel.t;
  mutable accesses : int;
  mutable by_level : int array;  (* indexed by Level.depth *)
  mutable bytes_by_level : float array;  (* bytes *served at* each level *)
  xfer : float array;
      (* [| time; bytes |] scratch threading the request time through the
         per-level {!Channel.book} calls without boxing a float at any
         call boundary (the simulator's issue path is allocation-free) *)
}

let create ?(cfg = default_config) () =
  {
    cfg;
    vc = Channel.create ~name:"VecCache" ~bytes_per_cycle:cfg.vc_bytes_per_cycle;
    l2 = Channel.create ~name:"L2" ~bytes_per_cycle:cfg.l2_bytes_per_cycle;
    dram = Channel.create ~name:"DRAM" ~bytes_per_cycle:cfg.dram_bytes_per_cycle;
    accesses = 0;
    by_level = Array.make 3 0;
    bytes_by_level = Array.make 3 0.0;
    xfer = [| 0.0; 0.0 |];
  }

let reset t =
  Channel.reset t.vc;
  Channel.reset t.l2;
  Channel.reset t.dram;
  t.accesses <- 0;
  t.by_level <- Array.make 3 0;
  t.bytes_by_level <- Array.make 3 0.0

let latency_to t level =
  match level with
  | Level.Vec_cache -> t.cfg.vc_latency
  | Level.L2 -> t.cfg.vc_latency + t.cfg.l2_latency
  | Level.Dram -> t.cfg.vc_latency + t.cfg.l2_latency + t.cfg.dram_latency

(** [access t ~now ~level ~bytes] books the transfer of [bytes] served at
    [level] and returns the completion cycle.

    [prefetched] models a unit-stride stream prefetcher: the line was
    requested ahead of time, so the access still *occupies the bandwidth*
    of every level down to [level] but the consumer only observes the
    vector-cache latency. Streaming vectorized loops are exactly the
    prefetcher's best case; this is what makes memory-intensive phases
    bandwidth-bound rather than latency-bound, the premise of the paper's
    roofline-based lane manager (§5.1). *)
let book t ~prefetched ~now ~level ~bytes =
  t.accesses <- t.accesses + 1;
  t.by_level.(Level.depth level) <- t.by_level.(Level.depth level) + 1;
  t.bytes_by_level.(Level.depth level) <-
    t.bytes_by_level.(Level.depth level) +. float_of_int bytes;
  (* The request time threads through the per-level channel bookings in
     [t.xfer]: each {!Channel.book} reads its start time from [xfer.(0)]
     and leaves its completion there, so no float crosses a call
     boundary (where it would box) on this allocation-free path. Each
     [match] branch completes on an int for the same reason. *)
  let io = t.xfer in
  io.(0) <- float_of_int now;
  io.(1) <- float_of_int bytes;
  Channel.book t.vc ~io;
  match level with
  | Level.Vec_cache -> int_of_float (Float.ceil io.(0)) + t.cfg.vc_latency
  | Level.L2 ->
    Channel.book t.l2 ~io;
    int_of_float (Float.ceil io.(0))
    + (if prefetched then t.cfg.vc_latency
       else t.cfg.vc_latency + t.cfg.l2_latency)
  | Level.Dram ->
    Channel.book t.l2 ~io;
    Channel.book t.dram ~io;
    int_of_float (Float.ceil io.(0))
    + (if prefetched then t.cfg.vc_latency
       else t.cfg.vc_latency + t.cfg.l2_latency + t.cfg.dram_latency)

let access ?(prefetched = false) t ~now ~level ~bytes =
  book t ~prefetched ~now ~level ~bytes

(** Peak bandwidth (bytes/cycle) of a level, for the roofline model. *)
let bandwidth_of t level =
  match level with
  | Level.Vec_cache -> t.cfg.vc_bytes_per_cycle
  | Level.L2 -> t.cfg.l2_bytes_per_cycle
  | Level.Dram -> t.cfg.dram_bytes_per_cycle

let accesses t = t.accesses
let accesses_at t level = t.by_level.(Level.depth level)

(** Bytes transferred by accesses *served at* [level] (each also crossed
    every closer level's channel on the way). *)
let bytes_at t level = t.bytes_by_level.(Level.depth level)
let config t = t.cfg
let channel t level =
  match level with
  | Level.Vec_cache -> t.vc
  | Level.L2 -> t.l2
  | Level.Dram -> t.dram
