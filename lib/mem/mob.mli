(** Memory Ordering Buffer (§4.1.2): tracks the regions of in-flight
    vector memory accesses so younger overlapping accesses can be held
    back (Table 2's ordering rows involving SVE ld/st). *)

type t

val create : ?capacity:int -> unit -> t
val size : t -> int
val is_full : t -> bool

val insert :
  t -> core:int -> arr:int -> base:int -> len:int -> is_store:bool ->
  int option
(** Register an in-flight access; [None] when full (stall). *)

val remove : t -> int -> unit

val insert_slot :
  t -> core:int -> arr:int -> base:int -> len:int -> is_store:bool -> int
(** Allocation-free {!insert}: returns a slot handle for {!remove_slot}.
    Raises when full — check {!is_full} first. The simulator's hot-path
    entry point. *)

val remove_slot : t -> int -> unit
(** Deallocate by slot handle; raises on a slot that is not occupied. *)

val conflicts : t -> arr:int -> base:int -> len:int -> is_store:bool -> bool
(** Reads conflict with in-flight stores; writes with everything. *)

val outstanding_of : t -> core:int -> int
val clear : t -> unit
