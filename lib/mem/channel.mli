(** A bandwidth-limited transfer channel shared by all cores: requests
    occupy it for [bytes / bytes_per_cycle] cycles, serialised. This is
    the mechanism behind the memory-bandwidth roofline ceilings (§5.1) and
    inter-core memory contention. *)

type t

val create : name:string -> bytes_per_cycle:float -> t
val reset : t -> unit

val request : t -> now:float -> bytes:float -> float
(** Book a transfer; returns the cycle its last byte has moved. *)

val book : t -> io:float array -> unit
(** {!request} through a caller scratch array: [io.(0)] holds the
    request time on entry and the completion cycle on exit, [io.(1)] the
    byte count. Float array cells move unboxed across the call, so this
    is allocation-free even without cross-module inlining — the
    simulator's issue path uses it. Arithmetic identical to {!request}. *)

val is_free : t -> now:float -> bool
(** Would a request at [now] start without queueing? *)

val bytes_per_cycle : t -> float
val busy_cycles : t -> float
val bytes_moved : t -> float
val name : t -> string

val utilisation : t -> cycles:float -> float
(** Average occupancy over [cycles], capped at 1. *)
