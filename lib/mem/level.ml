(** Levels of the memory hierarchy seen by the SIMD co-processor
    (Figure 4): the 128KB vector cache, the 8MB shared unified L2, and
    DRAM. *)

type t = Vec_cache | L2 | Dram

let all = [ Vec_cache; L2; Dram ]

let name = function Vec_cache -> "VecCache" | L2 -> "L2" | Dram -> "DRAM"
let to_string = name
let pp ppf t = Fmt.string ppf (name t)
let equal (a : t) b = a = b

(** Hierarchy order: 0 closest to the register file. *)
let depth = function Vec_cache -> 0 | L2 -> 1 | Dram -> 2
