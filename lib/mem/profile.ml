(** Residence profile of a data stream: where its accesses are served from.

    The paper's workloads are characterised as memory- or compute-intensive
    according to whether their footprints stream from DRAM/L2 or stay in
    the vector cache. We attach a profile to each array of a kernel; the
    LSU samples the service level of each access from it (deterministic
    RNG), and the lane manager's roofline uses the *dominant* level's
    bandwidth as its memory ceiling (§5.1: "specific to a chosen level in
    memory hierarchy"). *)

type t = { vc : float; l2 : float; dram : float }

let make ~vc ~l2 ~dram =
  if vc < 0.0 || l2 < 0.0 || dram < 0.0 then
    invalid_arg "Profile.make: negative fraction";
  let s = vc +. l2 +. dram in
  if Float.abs (s -. 1.0) > 1e-6 then
    invalid_arg "Profile.make: fractions must sum to 1";
  { vc; l2; dram }

(** Everything hits in the vector cache: a resident, compute-friendly
    stream. *)
let cache_resident = { vc = 1.0; l2 = 0.0; dram = 0.0 }

(** A large streaming footprint: every access goes to DRAM. The lane
    manager's roofline assumes the footprint's residence level bounds the
    phase (§5.1), so the canonical profiles are pure; mixed profiles are
    available for sensitivity studies. *)
let streaming = { vc = 0.0; l2 = 0.0; dram = 1.0 }

(** An L2-sized working set. *)
let l2_resident = { vc = 0.0; l2 = 1.0; dram = 0.0 }

let dominant t =
  if t.dram >= t.l2 && t.dram >= t.vc then Level.Dram
  else if t.l2 >= t.vc then Level.L2
  else Level.Vec_cache

(** Sample the service level of one access. Draws the RNG's integer bits
    and scales locally so the uniform float never crosses the module
    boundary (a float return boxes at any non-inlined call — this runs on
    the simulator's allocation-free issue path). The value is exactly
    [Rng.float rng]. *)
let classify t rng =
  let x =
    Stdlib.float_of_int (Occamy_util.Rng.bits53 rng)
    *. (1.0 /. 9007199254740992.0)
  in
  if x < t.vc then Level.Vec_cache
  else if x < t.vc +. t.l2 then Level.L2
  else Level.Dram

let pp ppf t = Fmt.pf ppf "{vc=%.2f; l2=%.2f; dram=%.2f}" t.vc t.l2 t.dram
