(** The evaluation suite of §7.1: the 25 co-running pairs of Figure 10
    (memory workload on Core0, compute workload on Core1) and the four
    4-core groups of §7.6. *)

type source = Spec_wl of int | Opencv_wl of int

type pair = {
  label : string;
  core0 : source;
  core1 : source;
  category : [ `Mem_mem | `Comp_comp | `Mem_comp ];
}

val spec_pairs : pair list
val opencv_pairs : pair list
val pairs : pair list

val source_name : source -> string

val compile :
  ?options:Occamy_compiler.Codegen.options -> ?tc_scale:float -> source ->
  Occamy_core.Workload.t

val compile_count : unit -> int
(** Process-wide number of {!compile} calls — a test hook for the
    compile-once guarantee of the experiment runners. *)

val reset_compile_count : unit -> unit

val compile_pair :
  ?options:Occamy_compiler.Codegen.options -> ?tc_scale:float -> pair ->
  Occamy_core.Workload.t list

val find_pair : string -> pair option

type group = { g_label : string; members : source list }

val four_core_groups : group list

val compile_group :
  ?options:Occamy_compiler.Codegen.options -> ?tc_scale:float -> group ->
  Occamy_core.Workload.t list

val table3_rows : unit -> (string * string * float * float) list
(** (workload, phase, paper oi, analysed oi) for every Table 3 row. *)
