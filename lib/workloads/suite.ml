(** The evaluation suite: the 25 co-running pairs of §7.1 and the four
    4-core groups of §7.6.

    "In the case of a pair of memory- and compute-intensive workloads, we
    assign the former to Core0 and the latter to Core1" — the pair labels
    below follow Figure 10's x-axis, with the first workload placed on
    Core0. *)

module Workload = Occamy_core.Workload

type source = Spec_wl of int | Opencv_wl of int

type pair = {
  label : string;
  core0 : source;
  core1 : source;
  category : [ `Mem_mem | `Comp_comp | `Mem_comp ];
}

let spec_pair ?(category = `Mem_comp) a b =
  {
    label = Printf.sprintf "%d+%d" a b;
    core0 = Spec_wl a;
    core1 = Spec_wl b;
    category;
  }

let ocv_pair ?(category = `Mem_comp) a b =
  {
    label = Printf.sprintf "%d+%d" a b;
    core0 = Opencv_wl a;
    core1 = Opencv_wl b;
    category;
  }

(* Figure 10's x-axis: 16 SPEC pairs then 9 OpenCV pairs. §7.1: one
   <memory, memory> (WL12+WL19, §7.4 case 3), two <compute, compute>
   (WL9+WL13, §7.4 case 2, and 4+14). *)
let spec_pairs =
  [
    spec_pair 1 13;
    spec_pair 2 14;
    spec_pair 3 4;
    spec_pair 5 15;
    spec_pair 6 16;
    spec_pair 8 17;
    spec_pair 7 18;
    spec_pair 20 9;
    spec_pair 21 17;
    spec_pair 20 17;
    spec_pair 10 16;
    spec_pair 11 14;
    spec_pair 22 15;
    spec_pair ~category:`Comp_comp 4 14;
    spec_pair ~category:`Comp_comp 9 13;
    spec_pair ~category:`Mem_mem 12 19;
  ]

let opencv_pairs =
  [
    ocv_pair 6 1;
    ocv_pair 2 1;
    ocv_pair 7 3;
    ocv_pair 8 3;
    ocv_pair 9 4;
    ocv_pair 10 4;
    ocv_pair 11 5;
    ocv_pair 12 5;
    ocv_pair 11 1;
  ]

let pairs = spec_pairs @ opencv_pairs

let source_name = function
  | Spec_wl i -> Printf.sprintf "WL%d" i
  | Opencv_wl i -> Printf.sprintf "OCV%d" i

(* Instrumentation: how many workload compilations have run in this
   process. The experiment runners promise to compile each pair/group
   exactly once per run (not once per architecture); the counter lets
   tests enforce that. Atomic because runners compile from worker
   domains. *)
let compiles = Atomic.make 0
let compile_count () = Atomic.get compiles
let reset_compile_count () = Atomic.set compiles 0

(** Compile a workload source. [tc_scale] shrinks trip counts uniformly
    (tests use small scales; the benches run at 1.0). *)
let compile ?options ?tc_scale src =
  Atomic.incr compiles;
  match src with
  | Spec_wl i -> Spec.workload ?options ?tc_scale i
  | Opencv_wl i -> Opencv.workload ?options ?tc_scale i

let compile_pair ?options ?tc_scale p =
  [ compile ?options ?tc_scale p.core0; compile ?options ?tc_scale p.core1 ]

let find_pair label =
  match List.find_opt (fun p -> p.label = label) pairs with
  | Some p -> Some p
  | None -> None

(* §7.6: the four 4-core groups (memory-intensive workloads on Core0/1,
   compute-intensive on Core2/3; the last group runs three memory
   workloads and one compute workload). *)
type group = { g_label : string; members : source list }

let four_core_groups =
  [
    { g_label = "WL15+6+15+16";
      members = [ Spec_wl 15; Spec_wl 6; Spec_wl 15; Spec_wl 16 ] };
    { g_label = "WL21+20+17+17";
      members = [ Spec_wl 21; Spec_wl 20; Spec_wl 17; Spec_wl 17 ] };
    { g_label = "WL10+22+16+15";
      members = [ Spec_wl 10; Spec_wl 22; Spec_wl 16; Spec_wl 15 ] };
    { g_label = "WL7+19+20+14";
      members = [ Spec_wl 7; Spec_wl 19; Spec_wl 20; Spec_wl 14 ] };
  ]

let compile_group ?options ?tc_scale g =
  List.map (compile ?options ?tc_scale) g.members

(** All Table 3 rows as (workload label, phase name, paper oi, analysed
    oi) — the `table3` reproduction. *)
let table3_rows () =
  let spec_rows =
    List.concat_map
      (fun id ->
        List.map
          (fun s ->
            ( Printf.sprintf "WL%d" id,
              s.Synth.k_name,
              s.Synth.k_oi,
              (Synth.analysed_oi s).Occamy_isa.Oi.mem ))
          (Spec.specs_of id))
      Spec.ids
  in
  let paper_ocv_oi =
    [
      ("fitLine2D", 0.92); ("fitLine3D", 0.44); ("addWeight", 0.33);
      ("compare", 0.25); ("rgb2xyz", 0.63); ("rgb2gray", 0.31);
      ("rgb2ycrcb", 0.42); ("rgb2hsv", 1.83); ("calcDist3D", 0.875);
      ("accProd", 0.17); ("dotProd", 0.25); ("normL1", 0.5);
      ("normL2", 0.25); ("blend", 0.3);
    ]
  in
  let ocv_rows =
    List.concat_map
      (fun id ->
        List.map
          (fun (l : Occamy_compiler.Loop_ir.t) ->
            let paper =
              match List.assoc_opt l.Occamy_compiler.Loop_ir.name paper_ocv_oi with
              | Some v -> v
              | None -> 0.0
            in
            ( Printf.sprintf "OCV%d" id,
              l.Occamy_compiler.Loop_ir.name,
              paper,
              (Occamy_compiler.Analysis.oi_of l).Occamy_isa.Oi.mem ))
          (Opencv.loops_of id))
      Opencv.ids
  in
  spec_rows @ ocv_rows
