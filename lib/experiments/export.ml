(** CSV export of the figure data, for external plotting: the
    per-1000-cycle timelines (Figures 2(b-e), 14(b)), the per-pair
    speedup/utilization series (Figures 10, 11, 13), and the Table 3
    cross-check. *)

module Arch = Occamy_core.Arch
module Metrics = Occamy_core.Metrics

let buf_csv rows =
  let b = Buffer.create 4096 in
  List.iter
    (fun cells ->
      Buffer.add_string b (String.concat "," cells);
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

(** One row per (bucket, core): busy lanes and held lanes over time. *)
let timeline_csv (r : Metrics.t) =
  let rows = ref [ [ "kcycle"; "core"; "busy_lanes"; "held_lanes" ] ] in
  Array.iter
    (fun c ->
      let n =
        max
          (Array.length c.Metrics.lanes_timeline)
          (Array.length c.Metrics.vl_timeline)
      in
      for i = 0 to n - 1 do
        let get a = if i < Array.length a then a.(i) else 0.0 in
        rows :=
          [
            string_of_int i;
            string_of_int c.Metrics.core;
            Printf.sprintf "%.2f" (get c.Metrics.lanes_timeline);
            Printf.sprintf "%.2f" (4.0 *. get c.Metrics.vl_timeline);
          ]
          :: !rows
      done)
    r.Metrics.cores;
  buf_csv (List.rev !rows)

(** One row per pair: speedups, utilizations and FTS stall fractions —
    the Figure 10/11/13 series. *)
let pairs_csv (t : Fig10.t) =
  let header =
    [
      "pair"; "fts_s1"; "vls_s1"; "occamy_s1"; "fts_s0"; "vls_s0"; "occamy_s0";
      "util_private"; "util_fts"; "util_vls"; "util_occamy"; "fts_stall_c0";
      "fts_stall_c1";
    ]
  in
  let f = Printf.sprintf "%.4f" in
  let rows =
    List.map
      (fun r ->
        [
          r.Pair_run.pair.Occamy_workloads.Suite.label;
          f (Pair_run.speedup r Arch.Fts ~core:1);
          f (Pair_run.speedup r Arch.Vls ~core:1);
          f (Pair_run.speedup r Arch.Occamy ~core:1);
          f (Pair_run.speedup r Arch.Fts ~core:0);
          f (Pair_run.speedup r Arch.Vls ~core:0);
          f (Pair_run.speedup r Arch.Occamy ~core:0);
          f (Pair_run.util r Arch.Private);
          f (Pair_run.util r Arch.Fts);
          f (Pair_run.util r Arch.Vls);
          f (Pair_run.util r Arch.Occamy);
          f (Pair_run.fts_stall_fraction r ~core:0);
          f (Pair_run.fts_stall_fraction r ~core:1);
        ])
      t.Fig10.runs
  in
  buf_csv (header :: rows)

(** One row per (arch, core, bucket): the top-down cycle-accounting
    breakdown of the motivating pair, for stacked-bar plots. *)
let attrib_csv () =
  let rows = ref [ [ "arch"; "core"; "bucket"; "cycles"; "share_pct" ] ] in
  List.iter
    (fun arch ->
      let r = Attrib_run.run_pair ~arch () in
      let a = r.Attrib_run.ar_attrib in
      for core = 0 to Occamy_obs.Attrib.cores a - 1 do
        List.iter
          (fun b ->
            rows :=
              [
                Arch.name arch;
                string_of_int core;
                Occamy_obs.Attrib.name b;
                string_of_int (Occamy_obs.Attrib.count a ~core b);
                Printf.sprintf "%.2f" (Occamy_obs.Attrib.share a ~core b);
              ]
              :: !rows)
          Occamy_obs.Attrib.all
      done)
    Arch.all;
  buf_csv (List.rev !rows)

let table3_csv () =
  let rows =
    List.map
      (fun (wl, phase, paper, got) ->
        [ wl; phase; Printf.sprintf "%.4f" paper; Printf.sprintf "%.4f" got ])
      (Occamy_workloads.Suite.table3_rows ())
  in
  buf_csv ([ "workload"; "phase"; "paper_oi"; "analysed_oi" ] :: rows)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(** Write the full figure-data set into [dir] (created if missing):
    `fig2_<arch>.csv`, `pairs.csv`, `table3.csv`, `attrib.csv`. Returns
    the file names. *)
let write_all ~dir ?tc_scale ?jobs ?oversubscribe () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let files = ref [] in
  let emit name contents =
    let path = Filename.concat dir name in
    write_file path contents;
    files := path :: !files
  in
  let f2 = Fig2.run () in
  List.iter
    (fun arch ->
      emit
        (Printf.sprintf "fig2_%s.csv"
           (String.lowercase_ascii (Arch.name arch)))
        (timeline_csv (Fig2.result f2 arch)))
    Arch.all;
  emit "pairs.csv" (pairs_csv (Fig10.run ?tc_scale ?jobs ?oversubscribe ()));
  emit "table3.csv" (table3_csv ());
  emit "attrib.csv" (attrib_csv ());
  List.rev !files
