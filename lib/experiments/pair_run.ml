(** Run co-running pairs across the four architectures and derive the
    quantities the paper's evaluation figures report. *)

module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Metrics = Occamy_core.Metrics
module Suite = Occamy_workloads.Suite

type t = {
  pair : Suite.pair;
  results : (Arch.t * Metrics.t) list;
}

(* The pair is compiled exactly once and the same compiled workloads are
   fed to all four architecture simulations (possibly concurrently):
   Sim.simulate treats workloads as read-only, copying everything it
   mutates into per-core state at creation — see the note on
   [Sim.simulate] and the "workload reuse" test. *)
let run_pair ?(cfg = Config.default) ?tc_scale ?jobs ?oversubscribe pair =
  let wls = Suite.compile_pair ?tc_scale pair in
  let results =
    Occamy_util.Domain_pool.map ?jobs ?oversubscribe
      (fun arch -> (arch, Sim.simulate ~cfg ~arch wls))
      Arch.all
  in
  { pair; results }

let result t arch = List.assoc arch t.results
let baseline t = result t Arch.Private

(** Speedup of [arch] over Private on [core] (Figure 10). *)
let speedup t arch ~core =
  Metrics.speedup_vs ~baseline:(baseline t) (result t arch) ~core

(** SIMD utilization of [arch] on the pair (Figure 11). *)
let util t arch = (result t arch).Metrics.simd_util

(** Fraction of cycles stalled waiting for free registers under FTS,
    per core (Figure 13). *)
let fts_stall_fraction t ~core =
  Metrics.rename_stall_fraction (result t Arch.Fts) ~core

(** Occamy runtime overhead (monitoring, reconfiguration) as fractions of
    execution time, averaged over the two cores (Figure 15). *)
let occamy_overhead ?(cfg = Config.default) t =
  let r = result t Arch.Occamy in
  let per_core core =
    Metrics.overhead r ~frontend_width:cfg.Config.frontend_width ~core
  in
  let cores = Array.length r.Metrics.cores in
  let sums =
    List.fold_left
      (fun (m, rc) core ->
        let m', rc' = per_core core in
        (m +. m', rc +. rc'))
      (0.0, 0.0)
      (List.init cores Fun.id)
  in
  (fst sums /. float_of_int cores, snd sums /. float_of_int cores)

(** Run every pair of the suite on [jobs] domains (default:
    {!Occamy_util.Domain_pool.recommended_jobs}; [1] runs sequentially
    on the calling domain). Results are in suite order and bit-identical
    whatever [jobs] is — every simulation seeds its own {!Occamy_util.Rng.t}.
    [progress] is called with each label as its pair starts; under
    [jobs > 1] the calls come from worker domains, possibly out of
    order. [observer] is handed to {!Occamy_util.Domain_pool.map}
    unchanged — pair tasks show up as sweep spans in a
    {!Occamy_obs.Trace.for_sweep} trace via
    {!Occamy_obs.Trace.sweep_observer}. *)
let run_all ?cfg ?tc_scale ?jobs ?oversubscribe ?observer
    ?(progress = fun _ -> ()) () =
  Occamy_util.Domain_pool.map ?jobs ?oversubscribe ?observer
    (fun pair ->
      progress pair.Suite.label;
      (* Parallelism lives at the pair level; each task simulates its
         four architectures sequentially. *)
      run_pair ?cfg ?tc_scale ~jobs:1 pair)
    Suite.pairs

(** Geometric means over a list of pair runs, per architecture/core. *)
let geomean_speedup runs arch ~core =
  Occamy_util.Stats.geomean (List.map (fun r -> speedup r arch ~core) runs)

let geomean_util runs arch =
  Occamy_util.Stats.geomean (List.map (fun r -> util r arch) runs)
