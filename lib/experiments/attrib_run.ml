(* Cycle-accounted simulator runs: drive a scenario with the top-down
   attribution recorder enabled, print and record the per-core bucket
   breakdown, and measure what the recorder costs — the `bench attrib`
   section. Mirrors Prof_run, which does the same for host-time
   profiling. *)

module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Metrics = Occamy_core.Metrics
module Attrib = Occamy_obs.Attrib
module Json = Occamy_util.Json
module Bench_log = Occamy_util.Bench_log

type report = {
  ar_arch : Arch.t;
  ar_attrib : Attrib.t;
  ar_metrics : Metrics.t;
  ar_seconds : float;
}

let run ?(cfg = Config.default) ?context_switches ?window ~arch wls =
  let attrib = Attrib.create ?window ~cores:cfg.Config.cores () in
  let t = Sim.create ~cfg ?context_switches ~attrib ~arch wls in
  let t0 = Unix.gettimeofday () in
  let m = Sim.run t in
  let seconds = Unix.gettimeofday () -. t0 in
  { ar_arch = arch; ar_attrib = attrib; ar_metrics = m; ar_seconds = seconds }

let run_pair ?cfg ?window ~arch () =
  run ?cfg ?window ~arch (Occamy_workloads.Motivating.pair ())

let summary_table r =
  Attrib.summary_table
    ~title:
      (Printf.sprintf "%s cycle accounting: %d cycles, %.3fs wall"
         (Arch.name r.ar_arch) r.ar_metrics.Metrics.total_cycles r.ar_seconds)
    r.ar_attrib

(* The section key carries scenario and architecture so `bench compare`
   (which groups trajectories by section) never mixes architectures. *)
let record ?(path = Bench_log.attrib_path) ~scenario r =
  Bench_log.append_line ~path
    ([
       ( "section",
         Json.Str
           (Printf.sprintf "attrib.%s.%s" scenario (Arch.name r.ar_arch)) );
       ("scenario", Json.Str scenario);
       ("arch", Json.Str (Arch.name r.ar_arch));
       ("seconds", Json.Num r.ar_seconds);
       ("jobs", Json.Num 1.0);
       ("unix_time", Json.Num (Float.round (Unix.time ())));
     ]
    @ Attrib.json_fields r.ar_attrib)

type overhead = {
  av_plain_seconds : float;
  av_enabled_seconds : float;
  av_enabled_ratio : float;
}

(* Best-of-[repeat] with the recorder off vs on; the accounted run must
   reproduce the plain one's metrics exactly (attribution is
   observational), modulo the attribution rows themselves. *)
let measure_overhead ?(cfg = Config.default) ?(repeat = 3) ~arch wls =
  if repeat < 1 then invalid_arg "Attrib_run.measure_overhead: repeat >= 1";
  let best mk_attrib =
    let once () =
      let t = Sim.create ~cfg ?attrib:(mk_attrib ()) ~arch wls in
      let t0 = Unix.gettimeofday () in
      let m = Sim.run t in
      (m, Unix.gettimeofday () -. t0)
    in
    let m0, s0 = once () in
    let s = ref s0 in
    for _ = 2 to repeat do
      let _, si = once () in
      if si < !s then s := si
    done;
    (m0, !s)
  in
  let m_plain, plain = best (fun () -> None) in
  let m_attrib, enabled =
    best (fun () -> Some (Attrib.create ~cores:cfg.Config.cores ()))
  in
  if { m_attrib with Metrics.attrib = [||] } <> m_plain then
    failwith
      "Attrib_run.measure_overhead: accounted run diverged from the plain one";
  {
    av_plain_seconds = plain;
    av_enabled_seconds = enabled;
    av_enabled_ratio = enabled /. Float.max plain 1e-9;
  }
