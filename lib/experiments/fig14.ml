(** Figure 14 + Table 5: the WL20 + WL17 case study (§7.4 Case 1) and the
    roofline attainable-performance table for WL8.p1 (Case 4).

    (a) normalized execution time of each phase when run alone with a
        fixed number of lanes (4..28);
    (b) the lane-partition timeline observed by WL17 under Private, VLS
        and Occamy;
    (c) per-phase SIMD issue rates on all four architectures, plus the
        cycles FTS spends stalled waiting for free registers. *)

module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Metrics = Occamy_core.Metrics
module Codegen = Occamy_compiler.Codegen
module Workload = Occamy_core.Workload
module Spec = Occamy_workloads.Spec
module Synth = Occamy_workloads.Synth
module Suite = Occamy_workloads.Suite
module Table = Occamy_util.Table

(* Compile one phase's solo workload; shared across the lane sweep. *)
let compile_solo spec =
  Codegen.compile_workload
    ~name:(spec.Synth.k_name ^ "_solo")
    ~kind:Workload.Mixed
    [ Synth.loop_of_spec spec ]

(* Run one compiled phase alone on a single-core machine with a fixed
   lane count. The workload is read-only to the simulator (see the
   "workload reuse" test), so the same compiled value can be timed at
   every lane count, on any worker domain. *)
let solo_time ?(cfg = Config.default) wl ~granules =
  let cfg = { cfg with Config.cores = 1 } in
  let r = Sim.simulate ~cfg ~decisions:[| granules |] ~arch:Arch.Vls [ wl ] in
  r.Metrics.total_cycles

let sweep_phases () =
  match (Spec.specs_of 20, Spec.specs_of 17) with
  | [ p1; p2 ], [ p3 ] -> [ ("WL20.p1", p1); ("WL20.p2", p2); ("WL17", p3) ]
  | _ -> invalid_arg "Fig14: unexpected WL20/WL17 shapes"

(* (a): times normalized to the 4-lane (1-granule) run of each phase.
   The 3 phases x 7 lane counts are 21 independent solo simulations; they
   run as one flat task list on the domain pool and are regrouped into
   rows afterwards. *)
let lane_sweep_table ?cfg ?jobs ?oversubscribe () =
  let phases = sweep_phases () in
  let granules = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let times_by_phase =
    (* Compile each phase once on the calling domain (3 compiles, not
       21): the workers then only simulate, keeping compiler allocation
       off the parallel hot path. *)
    let tasks =
      List.concat_map
        (fun (_, spec) ->
          let wl = compile_solo spec in
          List.map (fun g -> (wl, g)) granules)
        phases
    in
    let times =
      Occamy_util.Domain_pool.map ?jobs ?oversubscribe
        (fun (wl, g) -> solo_time ?cfg wl ~granules:g)
        tasks
    in
    (* Regroup the flat results into one row of |granules| per phase. *)
    let per_row = List.length granules in
    let rec rows = function
      | [] -> []
      | ts ->
        let row = List.filteri (fun i _ -> i < per_row) ts in
        let rest = List.filteri (fun i _ -> i >= per_row) ts in
        row :: rows rest
    in
    List.combine (List.map fst phases) (rows times)
  in
  let tbl =
    Table.create
      ~title:
        "Figure 14(a): normalized solo execution time vs lane count [paper: \
         WL20.p1 flat beyond 8 lanes, WL20.p2 beyond 12; WL17 always gains]"
      ~header:
        ("phase" :: List.map (fun g -> Printf.sprintf "%d lanes" (4 * g)) granules)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) granules)
      ()
  in
  List.iter
    (fun (label, times) ->
      let t0 = float_of_int (List.hd times) in
      Table.add_row tbl
        (label
        :: List.map (fun t -> Table.fcell (float_of_int t /. t0)) times))
    times_by_phase;
  tbl

(* The co-run itself. *)
type corun = { results : (Arch.t * Metrics.t) list }

let run_corun ?cfg ?jobs ?oversubscribe () =
  let pair =
    match Suite.find_pair "20+17" with
    | Some p -> p
    | None -> invalid_arg "Fig14: pair 20+17 missing from the suite"
  in
  (* Compiled once; the workloads are read-only to the simulator. *)
  let wls = Suite.compile_pair pair in
  {
    results =
      Occamy_util.Domain_pool.map ?jobs ?oversubscribe
        (fun a -> (a, Sim.simulate ?cfg ~arch:a wls))
        Arch.all;
  }

(* (b): lanes held by WL17 over time, per architecture. *)
let partition_timeline_table t =
  let tbl =
    Table.create
      ~title:
        "Figure 14(b): lanes allocated to WL17 per 1000 cycles [paper: \
         Private fixed 16, VLS fixed 20, Occamy 24/20/32]"
      ~header:[ "kcycle"; "Private"; "VLS"; "Occamy" ]
      ()
  in
  let tl arch =
    (List.assoc arch t.results).Metrics.cores.(1).Metrics.vl_timeline
  in
  let tp = tl Arch.Private and tv = tl Arch.Vls and to_ = tl Arch.Occamy in
  let n = max (Array.length tp) (max (Array.length tv) (Array.length to_)) in
  for i = 0 to n - 1 do
    let get a = if i < Array.length a then 4.0 *. a.(i) else 0.0 in
    Table.add_row tbl
      [
        Table.icell i;
        Table.fcell ~digits:1 (get tp);
        Table.fcell ~digits:1 (get tv);
        Table.fcell ~digits:1 (get to_);
      ]
  done;
  tbl

(* (c): per-phase issue rates and FTS stall cycles. *)
let issue_rate_table t =
  let tbl =
    Table.create
      ~title:
        "Figure 14(c): per-phase SIMD issue rates (insts/cycle) and cycles \
         stalled for registers [paper: Occamy 1.88/1.65 on WL20 phases; FTS \
         stalls in the thousands, others 0]"
      ~header:[ "arch"; "20.p1"; "20.p2"; "17.p1"; "stall c0"; "stall c1" ]
      ~aligns:(Table.Left :: List.init 5 (fun _ -> Table.Right))
      ()
  in
  List.iter
    (fun arch ->
      let r = List.assoc arch t.results in
      let c0 = r.Metrics.cores.(0) and c1 = r.Metrics.cores.(1) in
      let rate c i =
        match List.nth_opt c.Metrics.phases i with
        | Some p -> Table.fcell (Metrics.ps_issue_rate p)
        | None -> "-"
      in
      Table.add_row tbl
        [
          Arch.name arch;
          rate c0 0;
          rate c0 1;
          rate c1 0;
          Table.icell c0.Metrics.rename_stall_cycles;
          Table.icell c1.Metrics.rename_stall_cycles;
        ])
    Arch.all;
  tbl

(* Table 5: the roofline rows for WL8.p1 (oi_issue < oi_mem, L2 level). *)
let table5 ?(roofline = Occamy_lanemgr.Roofline.default_cfg) () =
  let spec = List.hd (Spec.specs_of 8) in
  let oi = Synth.analysed_oi spec in
  let level = spec.Synth.k_level in
  let tbl =
    Table.create
      ~title:
        (Fmt.str
           "Table 5: attainable performance for WL8.p1 (analysed oi=%a, %s) \
            in flops/cycle [paper crossover: issue-bound below 12 lanes]"
           Occamy_isa.Oi.pp oi
           (Occamy_mem.Level.name level))
      ~header:[ "VL (lanes)"; "SIMDIssueBound"; "MemBound"; "CompBound";
                "Performance"; "binding" ]
      ~aligns:(Table.Left :: List.init 5 (fun _ -> Table.Right))
      ()
  in
  List.iter
    (fun vl ->
      let issue, mem, comp, perf =
        Occamy_lanemgr.Roofline.table5_row roofline ~vl ~oi ~level
      in
      Table.add_row tbl
        [
          Table.icell (4 * vl);
          Table.fcell ~digits:1 issue;
          Table.fcell ~digits:1 mem;
          Table.fcell ~digits:1 comp;
          Table.fcell ~digits:1 perf;
          Occamy_lanemgr.Roofline.bound_name
            (Occamy_lanemgr.Roofline.binding roofline ~vl ~oi ~level);
        ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  tbl
