(** The reliability scenario axis: what lane-level TMR costs, and what it
    buys, on the §2 motivating pair.

    Cost side: the pair is compiled twice — plain and with the
    triple-modular-redundancy lowering ([Codegen.options.tmr]) — and
    simulated on all four architectures under the default two-core
    configuration, so the TMR slowdown is measured under real
    lane-manager partitioning: the replicated issue stream and the voter
    instructions compete for the same shared lanes the co-runner wants.

    Benefit side: a single-event-upset campaign through the functional
    interpreter's fault hook ({!Occamy_check.Inject}). Every trial flips
    one bit of one f32 lane at a random eligible write-back; under TMR
    the final memory must stay bit-identical to the fault-free run
    (masked — anything else is silent corruption), while the plain
    lowering classifies each flip as detected (output diverges) or
    benign. Backs `bench reliability`, which writes the
    [BENCH_reliability.json] artifact and fails on any silent
    corruption. *)

module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Sim = Occamy_core.Sim
module Metrics = Occamy_core.Metrics
module Workload = Occamy_core.Workload
module Codegen = Occamy_compiler.Codegen
module Motivating = Occamy_workloads.Motivating
module Inject = Occamy_check.Inject
module Diff = Occamy_check.Diff
module Json = Occamy_util.Json
module Urng = Occamy_util.Rng

(* Reduced trip counts (the golden-metrics TMR machine uses the same):
   full-size TMR interp trials would dominate bench wall-clock without
   changing any conclusion. *)
let default_tc0 = 3072
let default_tc1 = 49152

let tmr_options = { Codegen.default_options with Codegen.tmr = true }

(* ------------------------------------------------------------------ *)
(* Cost: TMR slowdown under lane partitioning                          *)
(* ------------------------------------------------------------------ *)

type cost_sample = {
  arch : Arch.t;
  plain_cycles : int;
  tmr_cycles : int;
  plain_util : float;
  tmr_util : float;
}

let slowdown s =
  float_of_int s.tmr_cycles /. float_of_int (max s.plain_cycles 1)

let measure_costs ~tc0 ~tc1 =
  let plain = Motivating.pair ~tc0 ~tc1 () in
  let tmr = Motivating.pair ~options:tmr_options ~tc0 ~tc1 () in
  List.map
    (fun arch ->
      let mp = Sim.simulate ~arch plain in
      let mt = Sim.simulate ~arch tmr in
      {
        arch;
        plain_cycles = mp.Metrics.total_cycles;
        tmr_cycles = mt.Metrics.total_cycles;
        plain_util = mp.Metrics.simd_util;
        tmr_util = mt.Metrics.simd_util;
      })
    Arch.all

(* ------------------------------------------------------------------ *)
(* Benefit: the single-event-upset campaign                            *)
(* ------------------------------------------------------------------ *)

type fault_counts = {
  trials : int;
  opportunities : int;  (* eligible write-backs per fault-free run *)
  masked : int;         (* output bit-identical to the fault-free run *)
  detected : int;       (* output diverged (plain: the oracle would see it) *)
}

let zero_counts = { trials = 0; opportunities = 0; masked = 0; detected = 0 }

let add_counts a b =
  {
    trials = a.trials + b.trials;
    opportunities = a.opportunities + b.opportunities;
    masked = a.masked + b.masked;
    detected = a.detected + b.detected;
  }

(* One workload's campaign: [trials] independent single-flip runs, each
   compared bit-for-bit against the fault-free baseline. [stream]
   separates the TMR draw sequence from the plain one. *)
let campaign ~seed ~stream ~trials wl init =
  let n_ops = ref 0 in
  let base =
    Inject.snapshot
      (Inject.exec ~fault_hook:(Inject.count_hook n_ops) wl init)
      wl.Workload.program
  in
  if !n_ops = 0 then zero_counts
  else begin
    let counts =
      ref { zero_counts with trials; opportunities = !n_ops }
    in
    for i = 0 to trials - 1 do
      let f =
        {
          Inject.f_op = Urng.mix3 ~seed ~stream (3 * i) mod !n_ops;
          f_lane = Urng.mix3 ~seed ~stream ((3 * i) + 1) land 0xFFFF;
          f_bit = Urng.mix3 ~seed ~stream ((3 * i) + 2) mod 32;
        }
      in
      let s =
        Inject.snapshot
          (Inject.exec
             ~fault_hook:(Inject.schedule_hook ~applied:(ref []) [ f ])
             wl init)
          wl.Workload.program
      in
      match Inject.first_mismatch wl.Workload.program s base with
      | None -> counts := { !counts with masked = !counts.masked + 1 }
      | Some _ -> counts := { !counts with detected = !counts.detected + 1 }
    done;
    !counts
  end

(* The motivating pair's loops, for seeding interpreter memory images. *)
let pair_loops ~tc0 ~tc1 =
  [
    [ Motivating.rh3d_phase1 ~tc:tc0; Motivating.rho_eos_phase2 ~tc:tc0 ];
    [ Motivating.wsm5_loop ~tc:tc1 ];
  ]

let measure_faults ~tc0 ~tc1 ~trials ~seed =
  let images =
    List.map
      (fun loops ->
        ( loops,
          Diff.fresh_image ~seed ~extra_plan:(Codegen.array_plan loops) loops
        ))
      (pair_loops ~tc0 ~tc1)
  in
  let mode ~tmr ~stream =
    let options = if tmr then tmr_options else Codegen.default_options in
    List.fold_left
      (fun acc (loops, init) ->
        let wl =
          Codegen.compile_workload ~options
            ~name:(if tmr then "rel-tmr" else "rel-plain")
            ~kind:Workload.Mixed loops
        in
        add_counts acc (campaign ~seed ~stream ~trials wl init))
      zero_counts images
  in
  (mode ~tmr:true ~stream:101, mode ~tmr:false ~stream:202)

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)
(* ------------------------------------------------------------------ *)

type t = {
  costs : cost_sample list;
  tmr_faults : fault_counts;    (* [masked] must equal [trials] *)
  plain_faults : fault_counts;  (* [detected] + [masked(benign)] *)
}

(** Silent corruptions: TMR trials whose output diverged — the number
    `bench reliability` gates to zero. *)
let silent r = r.tmr_faults.trials - r.tmr_faults.masked

let default_trials = 16

let run ?(tc0 = default_tc0) ?(tc1 = default_tc1)
    ?(trials = default_trials) ?(seed = 2023) () =
  let costs = measure_costs ~tc0 ~tc1 in
  let tmr_faults, plain_faults = measure_faults ~tc0 ~tc1 ~trials ~seed in
  { costs; tmr_faults; plain_faults }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let json_counts prefix c =
  [
    (prefix ^ "trials", Json.Num (float_of_int c.trials));
    (prefix ^ "opportunities", Json.Num (float_of_int c.opportunities));
    (prefix ^ "masked", Json.Num (float_of_int c.masked));
    (prefix ^ "detected", Json.Num (float_of_int c.detected));
  ]

let json_entries r =
  List.concat_map
    (fun s ->
      let p = Printf.sprintf "costs.%s." (Arch.name s.arch) in
      [
        (p ^ "plain_cycles", Json.Num (float_of_int s.plain_cycles));
        (p ^ "tmr_cycles", Json.Num (float_of_int s.tmr_cycles));
        (p ^ "tmr_slowdown", Json.Num (slowdown s));
        (p ^ "plain_simd_util", Json.Num s.plain_util);
        (p ^ "tmr_simd_util", Json.Num s.tmr_util);
      ])
    r.costs
  @ json_counts "faults.tmr." r.tmr_faults
  @ json_counts "faults.plain." r.plain_faults
  @ [ ("faults.tmr.silent", Json.Num (float_of_int (silent r))) ]

(* One JSONL line per `bench reliability` run (Bench_log trajectory
   discipline; [seconds] is supplied by the caller's section timer). *)
let write_json ~path ~seconds r =
  Occamy_util.Bench_log.append_line ~path
    ([
       ("section", Json.Str "reliability");
       ("seconds", Json.Num seconds);
       ("jobs", Json.Num 1.0);
       ("unix_time", Json.Num (Float.round (Unix.time ())));
     ]
    @ json_entries r)

let pp_cost ppf s =
  Fmt.pf ppf
    "%-8s plain %8d cyc (util %4.1f%%)  tmr %8d cyc (util %4.1f%%)  \
     slowdown %.2fx"
    (Arch.name s.arch) s.plain_cycles
    (100.0 *. s.plain_util)
    s.tmr_cycles
    (100.0 *. s.tmr_util)
    (slowdown s)

let pp ppf r =
  Fmt.pf ppf "@[<v>%a@,tmr: %d/%d masked, %d silent (%d opportunities)@,\
              plain: %d detected + %d benign of %d (%d opportunities)@]"
    (Fmt.list pp_cost) r.costs r.tmr_faults.masked r.tmr_faults.trials
    (silent r) r.tmr_faults.opportunities r.plain_faults.detected
    r.plain_faults.masked r.plain_faults.trials
    r.plain_faults.opportunities
