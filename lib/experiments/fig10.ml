(** Figures 10, 11, 13 and 15 — the 25-pair evaluation sweep.

    One set of simulations (25 pairs x 4 architectures) feeds four
    figures: per-core speedups over Private (Fig 10), SIMD utilization
    (Fig 11), FTS rename-stall fractions (Fig 13), and Occamy's EM-SIMD
    runtime overhead (Fig 15). *)

module Arch = Occamy_core.Arch
module Table = Occamy_util.Table

type t = { runs : Pair_run.t list }

let run ?cfg ?tc_scale ?jobs ?oversubscribe ?observer ?progress () =
  {
    runs =
      Pair_run.run_all ?cfg ?tc_scale ?jobs ?oversubscribe ?observer ?progress
        ();
  }

let label r = r.Pair_run.pair.Occamy_workloads.Suite.label

let speedup_table t ~core =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 10 (Core%d): speedups over Private%s" core
           (if core = 1 then " [paper GM: FTS 1.20x, VLS 1.11x, Occamy 1.39x]"
            else " [paper: ~1.0x everywhere]"))
      ~header:[ "pair"; "FTS"; "VLS"; "Occamy" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          label r;
          Table.xcell (Pair_run.speedup r Arch.Fts ~core);
          Table.xcell (Pair_run.speedup r Arch.Vls ~core);
          Table.xcell (Pair_run.speedup r Arch.Occamy ~core);
        ])
    t.runs;
  Table.add_row tbl
    [
      "GM";
      Table.xcell (Pair_run.geomean_speedup t.runs Arch.Fts ~core);
      Table.xcell (Pair_run.geomean_speedup t.runs Arch.Vls ~core);
      Table.xcell (Pair_run.geomean_speedup t.runs Arch.Occamy ~core);
    ];
  tbl

let util_table t =
  let tbl =
    Table.create
      ~title:
        "Figure 11: SIMD utilization [paper GM: Private 63.2%, FTS 72.5%, \
         VLS 70.8%, Occamy 84.2%]"
      ~header:[ "pair"; "Private"; "FTS"; "VLS"; "Occamy" ]
      ~aligns:(Table.Left :: List.init 4 (fun _ -> Table.Right))
      ()
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        (label r
        :: List.map (fun a -> Table.pcell (Pair_run.util r a)) Arch.all))
    t.runs;
  Table.add_row tbl
    ("GM"
    :: List.map (fun a -> Table.pcell (Pair_run.geomean_util t.runs a)) Arch.all);
  tbl

let fts_stall_table t =
  let tbl =
    Table.create
      ~title:
        "Figure 13: fraction of cycles stalled waiting for free registers \
         on FTS [paper: >70% on average; ~none on the others]"
      ~header:[ "pair"; "Core0"; "Core1"; "Occamy Core1 (contrast)" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun r ->
      let occamy =
        Occamy_core.Metrics.rename_stall_fraction
          (Pair_run.result r Arch.Occamy) ~core:1
      in
      Table.add_row tbl
        [
          label r;
          Table.pcell (Pair_run.fts_stall_fraction r ~core:0);
          Table.pcell (Pair_run.fts_stall_fraction r ~core:1);
          Table.pcell occamy;
        ])
    t.runs;
  tbl

let overhead_table ?cfg t =
  let tbl =
    Table.create
      ~title:
        "Figure 15: Occamy EM-SIMD runtime overhead [paper: 0.3% monitoring \
         + 0.2% reconfiguration on average]"
      ~header:[ "pair"; "monitoring"; "reconfiguring VL"; "total" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let acc_m = ref [] and acc_r = ref [] in
  List.iter
    (fun r ->
      let m, rc = Pair_run.occamy_overhead ?cfg r in
      acc_m := m :: !acc_m;
      acc_r := rc :: !acc_r;
      Table.add_row tbl
        [
          label r;
          Table.pcell ~digits:2 m;
          Table.pcell ~digits:2 rc;
          Table.pcell ~digits:2 (m +. rc);
        ])
    t.runs;
  let gm xs = Occamy_util.Stats.mean xs in
  Table.add_row tbl
    [
      "mean";
      Table.pcell ~digits:2 (gm !acc_m);
      Table.pcell ~digits:2 (gm !acc_r);
      Table.pcell ~digits:2 (gm !acc_m +. gm !acc_r);
    ];
  tbl
