(** Figure 16: 4-core scalability — four groups of four workloads on the
    doubled machine (64 lanes), speedups per core with Private as the
    baseline. *)

module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Metrics = Occamy_core.Metrics
module Suite = Occamy_workloads.Suite
module Table = Occamy_util.Table

type group_run = {
  group : Suite.group;
  results : (Arch.t * Metrics.t) list;
}

(* As in Pair_run: compile the group once, share the read-only workloads
   across the four architecture simulations. *)
let run_group ?(cfg = Config.four_core) ?tc_scale ?jobs ?oversubscribe g =
  let wls = Suite.compile_group ?tc_scale g in
  {
    group = g;
    results =
      Occamy_util.Domain_pool.map ?jobs ?oversubscribe
        (fun arch -> (arch, Sim.simulate ~cfg ~arch wls))
        Arch.all;
  }

let run ?cfg ?tc_scale ?jobs ?oversubscribe () =
  Occamy_util.Domain_pool.map ?jobs ?oversubscribe
    (run_group ?cfg ?tc_scale ~jobs:1)
    Suite.four_core_groups

let speedup_table group_runs =
  let tbl =
    Table.create
      ~title:
        "Figure 16: 4-core speedups over Private [paper: Core0/1 ~1x, \
         Core2/3 gain; Occamy best overall]"
      ~header:
        [ "group"; "arch"; "Core0"; "Core1"; "Core2"; "Core3" ]
      ~aligns:
        (Table.Left :: Table.Left :: List.init 4 (fun _ -> Table.Right))
      ()
  in
  let add_group label results =
    let base = List.assoc Arch.Private results in
    List.iter
      (fun arch ->
        if arch <> Arch.Private then
          Table.add_row tbl
            (label :: Arch.name arch
            :: List.map
                 (fun core ->
                   Table.xcell
                     (Metrics.speedup_vs ~baseline:base
                        (List.assoc arch results) ~core))
                 [ 0; 1; 2; 3 ]))
      Arch.all
  in
  List.iter
    (fun gr -> add_group gr.group.Suite.g_label gr.results)
    group_runs;
  (* GM row per architecture over groups and compute cores. *)
  List.iter
    (fun arch ->
      if arch <> Arch.Private then begin
        let per_core core =
          Occamy_util.Stats.geomean
            (List.map
               (fun gr ->
                 let base = List.assoc Arch.Private gr.results in
                 Metrics.speedup_vs ~baseline:base
                   (List.assoc arch gr.results) ~core)
               group_runs)
        in
        Table.add_row tbl
          ("GM" :: Arch.name arch
          :: List.map (fun c -> Table.xcell (per_core c)) [ 0; 1; 2; 3 ])
      end)
    Arch.all;
  tbl
