(** Ablations of the design choices DESIGN.md calls out: what breaks (or
    does not) when each mechanism is turned off. Each function runs a
    small controlled experiment and renders a table; the bench harness
    prints them all under the `ablations` section. *)

module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Metrics = Occamy_core.Metrics
module Codegen = Occamy_compiler.Codegen
module Suite = Occamy_workloads.Suite
module Motivating = Occamy_workloads.Motivating
module Table = Occamy_util.Table

let pair_20_17 ?options () =
  match Suite.find_pair "20+17" with
  | Some p -> Suite.compile_pair ?options p
  | None -> invalid_arg "Ablations: pair 20+17 missing"

let core1_speedup ~base r = Metrics.speedup_vs ~baseline:base r ~core:1

(* 1. The stream prefetcher: without it, streaming loads pay the full
   L2/DRAM latency and the window depth (not bandwidth) bounds memory
   phases — the roofline's premise breaks and lane partitioning loses its
   meaning. *)
let prefetcher () =
  let tbl =
    Table.create
      ~title:
        "Ablation: stream prefetcher — memory-phase cycles of WL20 (solo, 8 \
         lanes vs 32 lanes); bandwidth-bound means roughly flat"
      ~header:[ "prefetch"; "8 lanes"; "32 lanes"; "32-lane gain" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun prefetch ->
      let cfg = { Config.default with Config.cores = 1; prefetch } in
      let wl =
        Codegen.compile_workload ~name:"wl20solo"
          ~kind:Occamy_core.Workload.Memory_intensive
          (List.map Occamy_workloads.Synth.loop_of_spec
             (Occamy_workloads.Spec.specs_of 20))
      in
      let time granules =
        (Sim.simulate ~cfg ~decisions:[| granules |] ~arch:Arch.Vls [ wl ])
          .Metrics.total_cycles
      in
      let t8 = time 2 and t32 = time 8 in
      Table.add_row tbl
        [
          (if prefetch then "on" else "off");
          Table.icell t8;
          Table.icell t32;
          Table.xcell (float_of_int t8 /. float_of_int t32);
        ])
    [ true; false ];
  tbl

(* 2. The lazy-partition monitor: compiled out, a phase keeps its prologue
   allocation — the elastic machine degenerates to per-phase static
   sharing and loses the post-exit lane handoff. *)
let monitor () =
  let tbl =
    Table.create
      ~title:
        "Ablation: lazy-partition monitor (Figure 9) — WL17 speedup over \
         Private on the elastic machine"
      ~header:[ "monitor"; "WL17 speedup"; "WL17 avg lanes" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      ()
  in
  let base = Sim.simulate ~arch:Arch.Private (pair_20_17 ()) in
  List.iter
    (fun monitor ->
      let options = { Codegen.default_options with monitor } in
      let r = Sim.simulate ~arch:Arch.Occamy (pair_20_17 ~options ()) in
      let c1 = r.Metrics.cores.(1) in
      let avg_vl =
        Occamy_util.Stats.mean
          (List.map (fun p -> p.Metrics.ps_avg_vl) c1.Metrics.phases)
      in
      Table.add_row tbl
        [
          (if monitor then "on" else "off");
          Table.xcell (core1_speedup ~base r);
          Table.fcell ~digits:1 (4.0 *. avg_vl);
        ])
    [ true; false ];
  tbl

(* 3. Prologue/epilogue hoisting (§6.3): without it an outer loop
   re-triggers eager partitioning every repetition. *)
let hoisting () =
  let tbl =
    Table.create
      ~title:
        "Ablation: phase prologue hoisting (§6.3) — WL#1 with a 16x outer \
         loop co-running against WL#0"
      ~header:[ "hoist"; "WL#1 cycles"; "replans"; "reconfig overhead" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun hoist ->
      let options = { Codegen.default_options with hoist } in
      let wl0 = Motivating.wl0 ~options ~tc:10240 () in
      let wl1_loop =
        { (Motivating.wsm5_loop ~tc:8192) with
          Occamy_compiler.Loop_ir.outer_reps = 16 }
      in
      let wl1 =
        Codegen.compile_workload ~options ~name:"WL#1rep"
          ~kind:Occamy_core.Workload.Compute_intensive [ wl1_loop ]
      in
      let r = Sim.simulate ~arch:Arch.Occamy [ wl0; wl1 ] in
      let c1 = r.Metrics.cores.(1) in
      let _, reconf =
        Metrics.overhead r
          ~frontend_width:Config.default.Config.frontend_width ~core:1
      in
      Table.add_row tbl
        [
          (if hoist then "on" else "off");
          Table.icell c1.Metrics.finish;
          Table.icell r.Metrics.replans;
          Table.pcell ~digits:2 reconf;
        ])
    [ true; false ];
  tbl

(* 4. Per-core window depth: the memory-level parallelism that lets
   bandwidth (not latency) bound the memory phases. *)
let window_depth () =
  let tbl =
    Table.create
      ~title:
        "Ablation: per-core instruction window — motivating pair on Occamy"
      ~header:[ "window"; "WL#0 cycles"; "WL#1 cycles"; "util" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun window ->
      let cfg = { Config.default with Config.window } in
      let r = Sim.simulate ~cfg ~arch:Arch.Occamy (Motivating.pair ()) in
      Table.add_row tbl
        [
          Table.icell window;
          Table.icell r.Metrics.cores.(0).Metrics.finish;
          Table.icell r.Metrics.cores.(1).Metrics.finish;
          Table.pcell r.Metrics.simd_util;
        ])
    [ 32; 64; 128 ];
  tbl

(* 5. FTS register-file depth: how much deeper the shared VRF must be
   before the Figure-13 rename stalls fade. *)
let fts_vrf_depth () =
  let tbl =
    Table.create
      ~title:
        "Ablation: RegBlk depth under FTS — rename-stall fraction and WL#1 \
         time (motivating pair); the paper expands VRF only at area cost \
         (§7.6)"
      ~header:[ "depth"; "stall frac c0"; "stall frac c1"; "WL#1 cycles" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun regblk_depth ->
      let cfg = { Config.default with Config.regblk_depth } in
      let r = Sim.simulate ~cfg ~arch:Arch.Fts (Motivating.pair ()) in
      Table.add_row tbl
        [
          Table.icell regblk_depth;
          Table.pcell (Metrics.rename_stall_fraction r ~core:0);
          Table.pcell (Metrics.rename_stall_fraction r ~core:1);
          Table.icell r.Metrics.cores.(1).Metrics.finish;
        ])
    [ 160; 224; 320 ];
  tbl

(* 6. OS context switches (§5): preempting the memory workload hands its
   lanes to the co-runner until the OS restores it. *)
let context_switch () =
  let tbl =
    Table.create
      ~title:
        "Ablation: OS context switch of WL#0 (descheduled 3000 cycles) — \
         the co-runner inherits the lanes meanwhile (§5)"
      ~header:
        [ "arch"; "WL#0 cycles"; "WL#0 +switch"; "WL#1 cycles"; "WL#1 +switch" ]
      ~aligns:(Table.Left :: List.init 4 (fun _ -> Table.Right))
      ()
  in
  List.iter
    (fun arch ->
      let base = Sim.simulate ~arch (Motivating.pair ()) in
      let r =
        Sim.simulate ~context_switches:[ (0, 2000) ] ~arch (Motivating.pair ())
      in
      Table.add_row tbl
        [
          Arch.name arch;
          Table.icell base.Metrics.cores.(0).Metrics.finish;
          Table.icell r.Metrics.cores.(0).Metrics.finish;
          Table.icell base.Metrics.cores.(1).Metrics.finish;
          Table.icell r.Metrics.cores.(1).Metrics.finish;
        ])
    [ Arch.Private; Arch.Occamy ];
  tbl

(* Each ablation is an independent batch of simulations building its own
   table; they parallelize as six coarse tasks, printed in fixed order. *)
let all ?jobs ?oversubscribe () =
  Occamy_util.Domain_pool.map ?jobs ?oversubscribe
    (fun f -> f ())
    [ prefetcher; monitor; hoisting; window_depth; fts_vrf_depth;
      context_switch ]
