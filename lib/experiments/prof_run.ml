(* Self-profiled simulator runs; see the mli. *)

module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Metrics = Occamy_core.Metrics
module Prof = Occamy_obs.Prof
module Table = Occamy_util.Table
module Json = Occamy_util.Json
module Bench_log = Occamy_util.Bench_log

type report = {
  rp_arch : Arch.t;
  rp_prof : Prof.t;
  rp_metrics : Metrics.t;
  rp_seconds : float;
  rp_work : (string * float) list;
}

let profile ?cfg ?context_switches ?sample_every ~arch wls =
  let prof = Prof.create ?sample_every () in
  let t = Sim.create ?cfg ?context_switches ~prof ~arch wls in
  let t0 = Unix.gettimeofday () in
  let m = Sim.run t in
  let seconds = Unix.gettimeofday () -. t0 in
  {
    rp_arch = arch;
    rp_prof = prof;
    rp_metrics = m;
    rp_seconds = seconds;
    rp_work = Sim.stage_work t;
  }

let profile_pair ?sample_every ~arch () =
  profile ?sample_every ~arch (Occamy_workloads.Motivating.pair ())

let summary_table r =
  Prof.summary_table
    ~title:
      (Printf.sprintf
         "%s self-profile: %.2fs wall, %d cycles (%d sampled, 1/%d)"
         (Arch.name r.rp_arch) r.rp_seconds
         (Prof.cycles r.rp_prof)
         (Prof.sampled_cycles r.rp_prof)
         (Prof.sample_every r.rp_prof))
    r.rp_prof

(* Join a stage's sampled time with its work counter: the counters
   cover the whole run while the time covers sampled cycles only, so
   scale the count by the sampling fraction before dividing. *)
let work_table r =
  let tbl =
    Table.create
      ~title:(Printf.sprintf "%s stage work rates" (Arch.name r.rp_arch))
      ~header:[ "counter"; "count"; "stage"; "~ns/op (sampled)" ]
      ~aligns:[ Table.Left; Table.Right; Table.Left; Table.Right ] ()
  in
  let cycles = max 1 (Prof.cycles r.rp_prof) in
  let sampled = Prof.sampled_cycles r.rp_prof in
  let fraction = float_of_int sampled /. float_of_int cycles in
  let stage_ns stage =
    match
      List.find_opt
        (fun st -> st.Prof.ss_stage = stage)
        (Prof.stats r.rp_prof)
    with
    | Some st -> st.Prof.ss_ns
    | None -> 0
  in
  let row counter stage =
    match List.assoc_opt counter r.rp_work with
    | None -> ()
    | Some count ->
      let sampled_count = count *. fraction in
      let per_op =
        if sampled_count <= 0.0 then "-"
        else Printf.sprintf "%.0f" (float_of_int (stage_ns stage) /. sampled_count)
      in
      Table.add_row tbl
        [ counter; Printf.sprintf "%.0f" count; Prof.stage_name stage; per_op ]
  in
  row "lsu.retire_calls" Prof.Lsu_retire;
  row "lsu.retired" Prof.Lsu_retire;
  row "exebu.issue_checks" Prof.Dispatch;
  row "exebu.issues" Prof.Dispatch;
  tbl

let top3_line r =
  match Prof.top_stages r.rp_prof ~n:3 with
  | [] -> "top stages: (nothing sampled)"
  | tops ->
    "top stages: "
    ^ String.concat ", "
        (List.map
           (fun (s, share) ->
             Printf.sprintf "%s %.1f%%" (Prof.stage_name s) share)
           tops)

(* The section key carries scenario and architecture so `bench compare`
   (which groups trajectories by section) never mixes, say, the Occamy
   pair run with the FTS one. *)
let record ?(path = Bench_log.profile_path) ~scenario r =
  Bench_log.append_line ~path
    ([
       ( "section",
         Json.Str
           (Printf.sprintf "profile.%s.%s" scenario (Arch.name r.rp_arch)) );
       ("scenario", Json.Str scenario);
       ("arch", Json.Str (Arch.name r.rp_arch));
       ("seconds", Json.Num r.rp_seconds);
       ("jobs", Json.Num 1.0);
       ("unix_time", Json.Num (Float.round (Unix.time ())));
     ]
    @ Prof.json_fields r.rp_prof
    @ List.map (fun (k, v) -> ("work." ^ k, Json.Num v)) r.rp_work)

let folded_to_file ~path r =
  Json.write_file ~path (Prof.folded r.rp_prof)

type overhead = {
  ov_plain_seconds : float;
  ov_enabled_seconds : float;
  ov_enabled_ratio : float;
}

let measure_overhead ?cfg ?sample_every ?(repeat = 3) ~arch wls =
  if repeat < 1 then invalid_arg "Prof_run.measure_overhead: repeat >= 1";
  let best mk_prof =
    let once () =
      let t = Sim.create ?cfg ?prof:(mk_prof ()) ~arch wls in
      let t0 = Unix.gettimeofday () in
      let m = Sim.run t in
      (m, Unix.gettimeofday () -. t0)
    in
    let m0, s0 = once () in
    let s = ref s0 in
    for _ = 2 to repeat do
      let _, si = once () in
      if si < !s then s := si
    done;
    (m0, !s)
  in
  let m_plain, plain = best (fun () -> None) in
  let m_prof, enabled =
    best (fun () -> Some (Prof.create ?sample_every ()))
  in
  if m_plain <> m_prof then
    failwith
      "Prof_run.measure_overhead: profiled run diverged from the plain one";
  {
    ov_plain_seconds = plain;
    ov_enabled_seconds = enabled;
    ov_enabled_ratio = enabled /. Float.max plain 1e-9;
  }
