(** Simulator throughput measurement: the naive tick loop vs the
    event-horizon fast-forwarding loop ([Config.fast_forward]) on the
    same workloads, reported as simulated cycles per wall-clock second
    plus the skip ratio. Backs `bench perf` and `occamy-sim ... --perf`,
    both of which write the [BENCH_perf.json] artifact; the CI
    perf-smoke job gates on the fast-forward loop not being slower than
    the naive one.

    Every measurement double-checks the equivalence guarantee (metrics
    of both loops must be bit-identical) — redundantly with the
    test_fastforward suite, but a perf number derived from a divergent
    simulation would be meaningless. *)

module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Json = Occamy_util.Json

type sample = {
  arch : Arch.t;
  simulated_cycles : int;  (* final simulator cycle of the run *)
  skipped_cycles : int;    (* cycles covered by fast-forward jumps *)
  ff_jumps : int;
  naive_seconds : float;
  ff_seconds : float;
}

let skip_ratio s =
  if s.simulated_cycles <= 0 then 0.0
  else float_of_int s.skipped_cycles /. float_of_int s.simulated_cycles

(* Wall-clock guard: a degenerate 0-second measurement (clock
   granularity) must not produce infinite rates or NaN gates. *)
let per_second cycles seconds =
  float_of_int cycles /. Float.max seconds 1e-9

let naive_cycles_per_sec s = per_second s.simulated_cycles s.naive_seconds
let ff_cycles_per_sec s = per_second s.simulated_cycles s.ff_seconds
let speedup s = s.naive_seconds /. Float.max s.ff_seconds 1e-9

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(** Time one architecture on [wls], naive loop then fast-forward loop.
    [repeat] re-runs each loop that many times and keeps the fastest
    wall-clock (the standard noise dodge: the minimum is the run least
    perturbed by the rest of the machine). Raises [Failure] if the two
    loops disagree on the metrics — the equivalence guarantee the
    measurement rests on. *)
let measure ?(cfg = Config.default) ?(context_switches = []) ?(repeat = 1)
    ~arch wls =
  if repeat < 1 then invalid_arg "Perf.measure: repeat must be >= 1";
  let run fast_forward =
    let t =
      Sim.create ~cfg:{ cfg with Config.fast_forward } ~context_switches
        ~arch wls
    in
    let m = Sim.run t in
    (m, t)
  in
  let best mode =
    let r, s0 = time (fun () -> run mode) in
    let s = ref s0 in
    for _ = 2 to repeat do
      let _, si = time (fun () -> run mode) in
      if si < !s then s := si
    done;
    (r, !s)
  in
  let (m_naive, _), naive_seconds = best false in
  let (m_ff, t_ff), ff_seconds = best true in
  if m_naive <> m_ff then
    failwith
      (Printf.sprintf
         "Perf.measure: fast-forward diverged from the naive loop on %s \
          (run the test_fastforward suite)"
         (Arch.name arch));
  {
    arch;
    simulated_cycles = Sim.cycle t_ff;
    skipped_cycles = Sim.skipped_cycles t_ff;
    ff_jumps = Sim.ff_jumps t_ff;
    naive_seconds;
    ff_seconds;
  }

(** Measure all four architectures sequentially (wall-clock timings must
    not contend for cores, so this deliberately takes no [~jobs]). *)
let measure_all ?cfg ?context_switches ?repeat wls =
  List.map
    (fun arch -> measure ?cfg ?context_switches ?repeat ~arch wls)
    Arch.all

let total_naive_seconds samples =
  List.fold_left (fun acc s -> acc +. s.naive_seconds) 0.0 samples

let total_ff_seconds samples =
  List.fold_left (fun acc s -> acc +. s.ff_seconds) 0.0 samples

(** A named measurement scenario, one row group of [BENCH_perf.json]
    (e.g. the plain motivating pair vs the same pair under an OS
    context-switch schedule vs a memory-bound co-run). *)
type scenario = { sc_name : string; sc_samples : sample list }

let grand_naive_seconds scenarios =
  List.fold_left (fun acc sc -> acc +. total_naive_seconds sc.sc_samples)
    0.0 scenarios

let grand_ff_seconds scenarios =
  List.fold_left (fun acc sc -> acc +. total_ff_seconds sc.sc_samples)
    0.0 scenarios

(** The flat-JSON form of [BENCH_perf.json]: per-scenario,
    per-architecture rates and skip ratios plus run totals, parseable by
    {!Occamy_util.Json}. Keys look like ["pair.Occamy.skip_ratio"] and
    ["total.speedup"] (the grand total the CI perf-smoke job gates on). *)
let json_entries scenarios =
  let per_arch prefix s =
    let p = prefix ^ Arch.name s.arch ^ "." in
    [
      (p ^ "simulated_cycles", Json.Num (float_of_int s.simulated_cycles));
      (p ^ "skipped_cycles", Json.Num (float_of_int s.skipped_cycles));
      (p ^ "ff_jumps", Json.Num (float_of_int s.ff_jumps));
      (p ^ "skip_ratio", Json.Num (skip_ratio s));
      (p ^ "naive_seconds", Json.Num s.naive_seconds);
      (p ^ "ff_seconds", Json.Num s.ff_seconds);
      (p ^ "naive_cycles_per_sec", Json.Num (naive_cycles_per_sec s));
      (p ^ "ff_cycles_per_sec", Json.Num (ff_cycles_per_sec s));
      (p ^ "speedup", Json.Num (speedup s));
    ]
  in
  let per_scenario sc =
    let prefix = sc.sc_name ^ "." in
    List.concat_map (per_arch prefix) sc.sc_samples
    @ [
        ( prefix ^ "total.naive_seconds",
          Json.Num (total_naive_seconds sc.sc_samples) );
        ( prefix ^ "total.ff_seconds",
          Json.Num (total_ff_seconds sc.sc_samples) );
        ( prefix ^ "total.speedup",
          Json.Num
            (total_naive_seconds sc.sc_samples
            /. Float.max (total_ff_seconds sc.sc_samples) 1e-9) );
      ]
  in
  List.concat_map per_scenario scenarios
  @ [
      ("total.naive_seconds", Json.Num (grand_naive_seconds scenarios));
      ("total.ff_seconds", Json.Num (grand_ff_seconds scenarios));
      ( "total.speedup",
        Json.Num
          (grand_naive_seconds scenarios
          /. Float.max (grand_ff_seconds scenarios) 1e-9) );
    ]

(* One JSONL line per `bench perf` run, appended so the file accumulates
   a throughput trajectory `bench compare` can gate on. [seconds] is the
   grand fast-forward total — the number the perf-smoke gate watches. *)
let write_json ~path scenarios =
  Occamy_util.Bench_log.append_line ~path
    ([
       ("section", Json.Str "perf");
       ("seconds", Json.Num (grand_ff_seconds scenarios));
       ("jobs", Json.Num 1.0);
       ("unix_time", Json.Num (Float.round (Unix.time ())));
     ]
    @ json_entries scenarios)

let pp_sample ppf s =
  Fmt.pf ppf
    "%-8s %10d cycles  skip %5.1f%% in %4d jumps  naive %8.0f cyc/s  ff \
     %8.0f cyc/s  speedup %.2fx"
    (Arch.name s.arch) s.simulated_cycles
    (100.0 *. skip_ratio s)
    s.ff_jumps (naive_cycles_per_sec s) (ff_cycles_per_sec s) (speedup s)
