(** Functional (value-level) interpreter for EM-SIMD programs.

    This executor computes real data so that the compiler's correctness
    argument (§6.4 of the paper) is testable: for *any* schedule of
    vector-length reconfigurations the vectorized program must produce the
    same memory contents as the scalar reference.

    Faithfulness points that matter for those tests:

    - register data is *not preserved* across a successful `MSR <VL>`
      (the hardware frees all of the core's RegBlks and assigns fresh ones,
      §4.2.2), so every vector register is poisoned with NaN on each
      reconfiguration — code that forgets to re-initialise loop invariants
      or to carry reduction partials fails loudly;
    - vector instructions touch only the first [<VL> * 4] elements;
    - `whilelt`-style element counts ([cnt]) bound loads/stores for loop
      tails.

    The environment decides how `MSR <VL>` requests are answered and what
    `<decision>` reads return; tests plug in adversarial schedules, the
    timing simulator plugs in the lane manager. *)

type env = {
  max_granules : int;
  request_vl : current:int -> int -> int option;
      (** [request_vl ~current l] returns [Some l] to grant, [None] to fail
          (the program's status-spin loop then retries). *)
  decision : unit -> int;      (** value an [Mrs _, DECISION] reads *)
  avail : unit -> int;         (** value an [Mrs _, AL] reads *)
  on_oi : Oi.t -> unit;        (** called on each [Msr_oi] *)
}

(** Environment that always grants requests and always suggests the full
    machine width — the behaviour of a single workload running alone. *)
let solo_env ~max_granules =
  {
    max_granules;
    request_vl = (fun ~current:_ l -> if l <= max_granules then Some l else None);
    decision = (fun () -> max_granules);
    avail = (fun () -> max_granules);
    on_oi = (fun _ -> ());
  }

type stats = {
  mutable executed : int;
  mutable scalar : int;
  mutable sve : int;
  mutable em_simd : int;
  mutable reconfigs : int;
  mutable failed_requests : int;
  mutable flops : int;
}

(* Where a write-back just landed — the four places a transient lane
   fault can corrupt architectural state. [Site_vote] is distinguished
   from [Site_reg] so a TMR fault model can exclude the (hardened)
   voter's own output from its sphere of replication. *)
type fault_site = Site_reg | Site_vote | Site_load | Site_store

type fault_hook =
  site:fault_site -> data:float array -> off:int -> len:int -> unit

type state = {
  prog : Program.t;
  env : env;
  fault_hook : fault_hook option;
  xregs : int array;
  fregs : float array;
  vregs : float array array;   (* num_v x (max_granules*4) *)
  memory : float array array;  (* one array per declaration *)
  mutable vl : int;            (* granules; 0 = no lanes held *)
  mutable status : int;
  mutable pc : int;
  mutable halted : bool;
  stats : stats;
}

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

let create ?env ?fault_hook prog =
  let env =
    match env with Some e -> e | None -> solo_env ~max_granules:8
  in
  let max_elems = Lane.elems_of_granules env.max_granules in
  {
    prog;
    env;
    fault_hook;
    xregs = Array.make Reg.num_x 0;
    fregs = Array.make Reg.num_f 0.0;
    vregs = Array.init Reg.num_v (fun _ -> Array.make max_elems Float.nan);
    memory =
      Array.map (fun d -> Array.make d.Program.arr_size 0.0) prog.Program.arrays;
    vl = 0;
    status = 0;
    pc = 0;
    halted = false;
    stats =
      {
        executed = 0;
        scalar = 0;
        sve = 0;
        em_simd = 0;
        reconfigs = 0;
        failed_requests = 0;
        flops = 0;
      };
  }

let memory t id =
  if id < 0 || id >= Array.length t.memory then fault "bad array id %d" id;
  t.memory.(id)

(** Overwrite the contents of array [id] (workload input data). *)
let set_memory t id data =
  let dst = memory t id in
  if Array.length data <> Array.length dst then
    invalid_arg "Interp.set_memory: size mismatch";
  Array.blit data 0 dst 0 (Array.length data)

let poison_vregs t =
  Array.iter (fun v -> Array.fill v 0 (Array.length v) Float.nan) t.vregs

(* Offer a just-written span to the fault hook (which may corrupt it in
   place). One branch when no hook is installed. *)
let[@inline] offer_fault t ~site ~data ~off ~len =
  match t.fault_hook with
  | None -> ()
  | Some f -> if len > 0 then f ~site ~data ~off ~len

let eval_src t = function
  | Instr.Reg (Reg.X i) -> t.xregs.(i)
  | Instr.Imm i -> i

let active_elems t = Lane.elems_of_granules t.vl

let check_vec_active t what =
  if t.vl <= 0 then fault "%s with <VL>=0 (no lanes configured)" what

let elems_for_access t cnt =
  let full = active_elems t in
  match cnt with
  | None -> full
  | Some (Reg.X i) ->
    let k = t.xregs.(i) in
    if k < 0 then fault "negative element count %d" k;
    min k full

let cond_holds c a b =
  match c with
  | Instr.Eq -> a = b
  | Instr.Ne -> a <> b
  | Instr.Lt -> a < b
  | Instr.Le -> a <= b
  | Instr.Gt -> a > b
  | Instr.Ge -> a >= b

let do_msr_vl t l =
  if l < 0 || l > t.env.max_granules then fault "MSR <VL>: bad length %d" l;
  if l = t.vl then t.status <- 1  (* no-op change always succeeds *)
  else if l = 0 then begin
    (* Releasing all lanes always succeeds; data in the freed RegBlks is
       not preserved. *)
    t.vl <- 0;
    t.status <- 1;
    t.stats.reconfigs <- t.stats.reconfigs + 1;
    poison_vregs t
  end
  else
    match t.env.request_vl ~current:t.vl l with
    | Some granted ->
      t.vl <- granted;
      t.status <- 1;
      t.stats.reconfigs <- t.stats.reconfigs + 1;
      poison_vregs t
    | None ->
      t.status <- 0;
      t.stats.failed_requests <- t.stats.failed_requests + 1

let step t =
  if t.halted then ()
  else begin
    let instr = t.prog.Program.code.(t.pc) in
    let next = ref (t.pc + 1) in
    t.stats.executed <- t.stats.executed + 1;
    (match Instr.classify instr with
    | Instr.Scalar -> t.stats.scalar <- t.stats.scalar + 1
    | Instr.Sve -> t.stats.sve <- t.stats.sve + 1
    | Instr.Em_simd -> t.stats.em_simd <- t.stats.em_simd + 1);
    (match instr with
    | Instr.Li (Reg.X d, imm) -> t.xregs.(d) <- imm
    | Instr.Mov (Reg.X d, Reg.X s) -> t.xregs.(d) <- t.xregs.(s)
    | Instr.Iop (op, Reg.X d, Reg.X s, src) ->
      let a = t.xregs.(s) and b = eval_src t src in
      t.xregs.(d) <-
        (match op with
        | Instr.Addi -> a + b
        | Instr.Subi -> a - b
        | Instr.Muli -> a * b
        | Instr.Mini -> min a b
        | Instr.Maxi -> max a b)
    | Instr.Fli (Reg.F d, v) -> t.fregs.(d) <- v
    | Instr.Fop (op, Reg.F d, Reg.F a, Reg.F b) ->
      let x = t.fregs.(a) and y = t.fregs.(b) in
      t.fregs.(d) <-
        (match op with
        | Instr.Fadd -> x +. y
        | Instr.Fsub -> x -. y
        | Instr.Fmul -> x *. y
        | Instr.Fdiv -> x /. y)
    | Instr.Fvop (op, Reg.F d, srcs) ->
      if List.length srcs <> Vop.arity op then
        fault "%s.s: arity mismatch" (Vop.name op);
      t.fregs.(d) <-
        (match srcs with
        | [ Reg.F a ] -> Vop.apply1 op t.fregs.(a)
        | [ Reg.F a; Reg.F b ] -> Vop.apply2 op t.fregs.(a) t.fregs.(b)
        | [ Reg.F a; Reg.F b; Reg.F c ] ->
          Vop.apply3 op t.fregs.(a) t.fregs.(b) t.fregs.(c)
        | _ -> fault "%s.s: arity mismatch" (Vop.name op))
    | Instr.Flw { fdst = Reg.F d; arr; idx = Reg.X xi } ->
      let mem = memory t arr in
      let i = t.xregs.(xi) in
      if i < 0 || i >= Array.length mem then
        fault "ldr out of bounds: %s[%d]" (Program.array_name t.prog arr) i;
      t.fregs.(d) <- mem.(i)
    | Instr.Fsw { fsrc = Reg.F s; arr; idx = Reg.X xi } ->
      let mem = memory t arr in
      let i = t.xregs.(xi) in
      if i < 0 || i >= Array.length mem then
        fault "str out of bounds: %s[%d]" (Program.array_name t.prog arr) i;
      mem.(i) <- t.fregs.(s)
    | Instr.B _ -> next := t.prog.Program.targets.(t.pc)
    | Instr.Bc (c, Reg.X r, src, _) ->
      if cond_holds c t.xregs.(r) (eval_src t src) then
        next := t.prog.Program.targets.(t.pc)
    | Instr.Halt -> t.halted <- true
    | Instr.Msr (Sysreg.VL, src) -> do_msr_vl t (eval_src t src)
    | Instr.Msr (Sysreg.OI, _) ->
      fault "MSR <OI> requires the pair form (Msr_oi)"
    | Instr.Msr (sr, _) ->
      fault "MSR %s: register not writable by software" (Sysreg.name sr)
    | Instr.Msr_oi oi -> t.env.on_oi oi
    | Instr.Mrs (Reg.X d, sr) ->
      t.xregs.(d) <-
        (match sr with
        | Sysreg.VL | Sysreg.ZCR -> t.vl
        | Sysreg.STATUS -> t.status
        | Sysreg.DECISION -> t.env.decision ()
        | Sysreg.AL -> t.env.avail ()
        | Sysreg.OI -> 0)
    | Instr.Vload { dst = Reg.V d; arr; idx = Reg.X xi; cnt } ->
      check_vec_active t "ld1w";
      let mem = memory t arr in
      let base = t.xregs.(xi) in
      let k = elems_for_access t cnt in
      if base < 0 || base + k > Array.length mem then
        fault "ld1w out of bounds: %s[%d..%d) of %d"
          (Program.array_name t.prog arr) base (base + k) (Array.length mem);
      let v = t.vregs.(d) in
      for e = 0 to k - 1 do
        v.(e) <- mem.(base + e)
      done;
      (* Inactive elements within the configured width read as zero, like a
         zeroing predicated SVE load. *)
      for e = k to active_elems t - 1 do
        v.(e) <- 0.0
      done;
      offer_fault t ~site:Site_load ~data:v ~off:0 ~len:k
    | Instr.Vstore { src = Reg.V s; arr; idx = Reg.X xi; cnt } ->
      check_vec_active t "st1w";
      let mem = memory t arr in
      let base = t.xregs.(xi) in
      let k = elems_for_access t cnt in
      if base < 0 || base + k > Array.length mem then
        fault "st1w out of bounds: %s[%d..%d) of %d"
          (Program.array_name t.prog arr) base (base + k) (Array.length mem);
      let v = t.vregs.(s) in
      for e = 0 to k - 1 do
        mem.(base + e) <- v.(e)
      done;
      offer_fault t ~site:Site_store ~data:mem ~off:base ~len:k
    | Instr.Vop { op; dst = Reg.V d; srcs; cnt } ->
      check_vec_active t (Vop.name op);
      if List.length srcs <> Vop.arity op then
        fault "%s: arity mismatch" (Vop.name op);
      let dstv = t.vregs.(d) in
      let n = elems_for_access t cnt in
      (* Arity-specialised loops: no per-instruction operand boxing
         (this runs once per vector instruction on the fuzz hot path). *)
      (match srcs with
      | [ Reg.V s1 ] ->
        let v1 = t.vregs.(s1) in
        for e = 0 to n - 1 do
          dstv.(e) <- Vop.apply1 op v1.(e)
        done
      | [ Reg.V s1; Reg.V s2 ] ->
        let v1 = t.vregs.(s1) and v2 = t.vregs.(s2) in
        for e = 0 to n - 1 do
          dstv.(e) <- Vop.apply2 op v1.(e) v2.(e)
        done
      | [ Reg.V s1; Reg.V s2; Reg.V s3 ] ->
        let v1 = t.vregs.(s1)
        and v2 = t.vregs.(s2)
        and v3 = t.vregs.(s3) in
        for e = 0 to n - 1 do
          dstv.(e) <- Vop.apply3 op v1.(e) v2.(e) v3.(e)
        done
      | _ -> fault "%s: arity mismatch" (Vop.name op));
      t.stats.flops <- t.stats.flops + (n * Vop.flops_per_elem op);
      let site = if op = Vop.Vote then Site_vote else Site_reg in
      offer_fault t ~site ~data:dstv ~off:0 ~len:n
    | Instr.Vdup (Reg.V d, Reg.F s) ->
      check_vec_active t "dup";
      let v = t.vregs.(d) in
      for e = 0 to active_elems t - 1 do
        v.(e) <- t.fregs.(s)
      done;
      offer_fault t ~site:Site_reg ~data:v ~off:0 ~len:(active_elems t)
    | Instr.Vred { op; dst = Reg.F d; src = Reg.V s } ->
      check_vec_active t (Vop.Red.name op);
      let v = t.vregs.(s) in
      let acc = ref (Vop.Red.identity op) in
      for e = 0 to active_elems t - 1 do
        acc := Vop.Red.combine op !acc v.(e)
      done;
      t.fregs.(d) <- !acc);
    if not t.halted then begin
      if !next < 0 || !next > Array.length t.prog.Program.code then
        fault "pc out of range: %d" !next;
      if !next = Array.length t.prog.Program.code then t.halted <- true
      else t.pc <- !next
    end
  end

(** Run to completion. [fuel] bounds the executed instruction count so that
    a buggy status-spin loop cannot hang the test suite. *)
let run ?(fuel = 200_000_000) t =
  let remaining = ref fuel in
  while (not t.halted) && !remaining > 0 do
    step t;
    decr remaining
  done;
  if not t.halted then fault "out of fuel after %d instructions" fuel;
  t.stats

let stats t = t.stats
let vl t = t.vl
let xreg t (Reg.X i) = t.xregs.(i)
let freg t (Reg.F i) = t.fregs.(i)
