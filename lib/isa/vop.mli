(** Vector ALU operations with the timing metadata the simulator and the
    Equation-5 analysis need. *)

type t = Add | Sub | Mul | Div | Fma | Max | Min | Abs | Neg | Sqrt | Vote

val all : t list

val arity : t -> int
(** Operand count; [Fma] takes three: [dst <- s1 + s2*s3], as does
    [Vote]: [dst <- majority(s1, s2, s3)]. *)

val vote : float -> float -> float -> float
(** The TMR 2-of-3 majority element-wise semantics behind [Vote]:
    returns the value held by at least two of the three operands
    (bit-compare via [Float.equal], so a replicated NaN poison votes as
    itself); with no majority, the first operand. *)

val latency : t -> int
(** Pipelined execution latency in cycles. *)

val flops_per_elem : t -> int
(** FLOPs per 32-bit element; FMA counts two. *)

val name : t -> string
val pp : Format.formatter -> t -> unit

val apply : t -> float array -> float
(** Element-wise semantics; raises on arity mismatch. *)

val apply1 : t -> float -> float
val apply2 : t -> float -> float -> float

val apply3 : t -> float -> float -> float -> float
(** Arity-specialised {!apply}: the interpreter and simulator hot loops
    execute one of these per element with the operands in registers,
    instead of boxing every operand set into a fresh [float array]
    (which was a dominant minor-heap allocation site under [-j N],
    where each minor collection stops every domain). Raise on an op of
    a different arity. *)

(** Reduction operators (the [Vred] instructions). *)
module Red : sig
  type t = Sum | Maxr | Minr

  val name : t -> string
  val pp : Format.formatter -> t -> unit

  val identity : t -> float
  (** The neutral element the accumulator restarts from. *)

  val combine : t -> float -> float -> float
end
