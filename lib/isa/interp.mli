(** Functional (value-level) interpreter for EM-SIMD programs.

    Executes compiled programs on real data under an arbitrary
    vector-length environment, with hardware-faithful data loss: every
    successful `MSR <VL>` poisons all vector registers with NaN (the
    RegBlks are reassigned, §4.2.2), so compiled code that fails to
    re-initialise invariants or carry reduction partials (§6.4) fails
    loudly. This is the executor the compiler-correctness property tests
    run against; the timing simulator ({!Occamy_core.Sim}) executes the
    same programs for performance. *)

type env = {
  max_granules : int;
  request_vl : current:int -> int -> int option;
      (** [request_vl ~current l]: [Some l] grants, [None] refuses (the
          program's status-spin retries). Granting a value other than the
          request is not supported. *)
  decision : unit -> int;  (** value an [Mrs _, DECISION] reads *)
  avail : unit -> int;     (** value an [Mrs _, AL] reads *)
  on_oi : Oi.t -> unit;    (** called on each [Msr_oi] *)
}

val solo_env : max_granules:int -> env
(** Always grants, always suggests full width: a workload running alone. *)

type stats = {
  mutable executed : int;
  mutable scalar : int;
  mutable sve : int;
  mutable em_simd : int;
  mutable reconfigs : int;        (** successful vector-length changes *)
  mutable failed_requests : int;  (** refused `MSR <VL>` attempts *)
  mutable flops : int;
}

type state

(** Fault-injection sites: the four write-back points where a transient
    lane fault can corrupt architectural state. [Site_vote] (the output
    of a {!Vop.Vote}) is distinguished from plain register write-backs
    so a TMR fault model can treat the voter as hardened and keep it
    outside the sphere of replication. *)
type fault_site =
  | Site_reg    (** vector register write-back (Vop other than Vote, Vdup) *)
  | Site_vote   (** the majority voter's own output register *)
  | Site_load   (** LSU load data arriving in a vector register *)
  | Site_store  (** LSU store data landing in memory *)

type fault_hook =
  site:fault_site -> data:float array -> off:int -> len:int -> unit
(** Called immediately after each vector write-back with the span just
    written ([data.(off .. off+len-1)]); the hook may corrupt elements
    in place. The hook is purely about *values* — it never changes
    control flow, so the instruction stream (and hence the timing
    simulator's view of the program) is identical with or without it. *)

exception Fault of string
(** Raised on semantic violations: vector use at `<VL>` = 0, out-of-bounds
    access, fuel exhaustion, writes to read-only registers. *)

val create : ?env:env -> ?fault_hook:fault_hook -> Program.t -> state
(** Fresh state: zeroed memory, NaN-poisoned vector registers, `<VL>` = 0.
    The default environment is [solo_env ~max_granules:8]; no fault hook
    is installed by default (one branch per write-back when absent). *)

val set_memory : state -> int -> float array -> unit
(** Overwrite an array's contents (must match the declared size). *)

val memory : state -> int -> float array

val step : state -> unit
val run : ?fuel:int -> state -> stats
(** Run to [Halt]; [fuel] bounds executed instructions. *)

val stats : state -> stats
val vl : state -> int
val xreg : state -> Reg.x -> int
val freg : state -> Reg.f -> float
