(** Vector ALU operations with their timing/energy-relevant metadata.

    Each ExeBU processes one 128-bit µop per pipe per cycle (paper §4.2.1),
    so an operation's cost is characterised by its pipelined latency and the
    FLOPs it performs per 32-bit element (FMA counts as two). *)

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Fma   (** dst <- s1 + s2*s3 *)
  | Max
  | Min
  | Abs
  | Neg
  | Sqrt
  | Vote  (** dst <- majority(s1, s2, s3): the TMR 2-of-3 voter *)

let all = [ Add; Sub; Mul; Div; Fma; Max; Min; Abs; Neg; Sqrt; Vote ]

let arity = function
  | Add | Sub | Mul | Div | Max | Min -> 2
  | Fma | Vote -> 3
  | Abs | Neg | Sqrt -> 1

(** Pipelined execution latency in cycles (fully pipelined except Div/Sqrt,
    which occupy an issue slot but not the pipe exclusively in our model). *)
let latency = function
  | Add | Sub | Max | Min | Abs | Neg | Vote -> 3
  | Mul -> 4
  | Fma -> 4
  | Div -> 12
  | Sqrt -> 14

(** FLOPs per 32-bit element. Comparisons/moves count as 1 like the paper's
    FLOPs/Byte accounting, which treats every SIMD compute instruction
    uniformly in [comp] of Equation (5). *)
let flops_per_elem = function
  | Fma -> 2
  | Add | Sub | Mul | Div | Max | Min | Abs | Neg | Sqrt | Vote -> 1

let name = function
  | Add -> "fadd"
  | Sub -> "fsub"
  | Mul -> "fmul"
  | Div -> "fdiv"
  | Fma -> "fmla"
  | Max -> "fmax"
  | Min -> "fmin"
  | Abs -> "fabs"
  | Neg -> "fneg"
  | Sqrt -> "fsqrt"
  | Vote -> "fvote"

let pp ppf t = Fmt.string ppf (name t)

(* 2-of-3 majority over the raw value bits. [Float.equal] (compare-based)
   rather than (=) so a replicated NaN poison still forms a majority: the
   voter must pass poison through unchanged, not launder it into one of
   the minority copies. With no majority (all three differ) the fault
   model is already violated; keep the first copy deterministically. *)
let[@inline] vote a b c =
  if Float.equal a b || Float.equal a c then a
  else if Float.equal b c then b
  else a

(** Element-wise semantics, used by the functional interpreter. *)
let apply t (args : float array) =
  match t, args with
  | Add, [| a; b |] -> a +. b
  | Sub, [| a; b |] -> a -. b
  | Mul, [| a; b |] -> a *. b
  | Div, [| a; b |] -> a /. b
  | Fma, [| a; b; c |] -> a +. (b *. c)
  | Vote, [| a; b; c |] -> vote a b c
  | Max, [| a; b |] -> Float.max a b
  | Min, [| a; b |] -> Float.min a b
  | Abs, [| a |] -> Float.abs a
  | Neg, [| a |] -> -.a
  | Sqrt, [| a |] -> sqrt a
  | _ -> invalid_arg "Vop.apply: arity mismatch"

(* Arity-specialised forms for the execution hot loops: same semantics
   as [apply], no operand boxing. *)
let[@inline] apply1 t a =
  match t with
  | Abs -> Float.abs a
  | Neg -> -.a
  | Sqrt -> sqrt a
  | _ -> invalid_arg "Vop.apply1: arity mismatch"

let[@inline] apply2 t a b =
  match t with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Max -> Float.max a b
  | Min -> Float.min a b
  | _ -> invalid_arg "Vop.apply2: arity mismatch"

let[@inline] apply3 t a b c =
  match t with
  | Fma -> a +. (b *. c)
  | Vote -> vote a b c
  | _ -> invalid_arg "Vop.apply3: arity mismatch"

(** Reduction operators ([Vred] instructions). *)
module Red = struct
  type t = Sum | Maxr | Minr

  let name = function Sum -> "faddv" | Maxr -> "fmaxv" | Minr -> "fminv"
  let pp ppf t = Fmt.string ppf (name t)

  let identity = function
    | Sum -> 0.0
    | Maxr -> neg_infinity
    | Minr -> infinity

  let combine t a b =
    match t with Sum -> a +. b | Maxr -> Float.max a b | Minr -> Float.min a b
end
