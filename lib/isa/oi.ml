(** Operational intensity of a phase, Equation (5) of the paper.

    A phase's behaviour is described by a *pair* of intensities:

    - [issue]: FLOPs per byte of SIMD memory *instructions issued*
      (compute instructions over the summed access widths), which bounds
      performance through the SIMD issue bandwidth;
    - [mem]: FLOPs per byte of *memory footprint* per iteration, i.e. with
      data reuse folded in, which bounds performance through the memory
      bandwidth of the relevant cache level.

    Without data reuse the two coincide; Case 4 of §7.4 (WL8.p1,
    oi_issue = 0.17 vs oi_mem = 0.25) is precisely a phase where they
    diverge. The `<OI>` dedicated register holds such a pair; writing
    [zero] marks the end of a phase. *)

type t = { issue : float; mem : float }

let make ~issue ~mem =
  if issue < 0.0 || mem < 0.0 then invalid_arg "Oi.make: negative intensity";
  { issue; mem }

(** The distinguished "no active phase" value written at phase epilogues. *)
let zero = { issue = 0.0; mem = 0.0 }

let is_zero t = t.issue = 0.0 && t.mem = 0.0

(** Uniform intensity (no data reuse): [issue = mem]. *)
let uniform x = make ~issue:x ~mem:x

let equal a b = a.issue = b.issue && a.mem = b.mem

(** Relative comparison of intensity pairs: true when both components
    agree within [tol] of their magnitude (floored at 1.0, so tiny
    clamped intensities compare absolutely). Used by the differential
    checker to cross-validate a phase's static annotation against
    traffic the simulator observed. *)
let approx_equal ?(tol = 1e-9) a b =
  let close x y = Float.abs (x -. y) <= tol *. Float.max 1.0 (Float.abs y) in
  close a.issue b.issue && close a.mem b.mem
let to_string t = Printf.sprintf "(%.3g,%.3g)" t.issue t.mem
let pp ppf t = Fmt.string ppf (to_string t)
