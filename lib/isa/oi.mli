(** Operational intensity of a phase — Equation (5) of the paper.

    [issue] bounds performance through SIMD issue bandwidth (FLOPs per byte
    of memory *instructions* issued); [mem] bounds it through memory
    bandwidth (FLOPs per byte of *footprint*, data reuse folded in). They
    diverge exactly when a loop re-reads data (§7.4 Case 4). *)

type t = { issue : float; mem : float }

val make : issue:float -> mem:float -> t
(** Raises [Invalid_argument] on negative intensities. *)

val zero : t
(** The end-of-phase sentinel written to `<OI>` in phase epilogues. *)

val is_zero : t -> bool

val uniform : float -> t
(** No data reuse: [issue = mem]. *)

val equal : t -> t -> bool

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise relative comparison (tolerance floored at magnitude
    1.0) — for cross-checking static annotations against observed
    behaviour without demanding bit equality. *)

val to_string : t -> string
(** ["(issue,mem)"] with three significant digits — the rendering shared
    by [pp], the trace-event schema and the roofline printer. *)

val pp : Format.formatter -> t -> unit
