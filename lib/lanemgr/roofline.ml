(** The vector-length-aware roofline model of §5.1.

    Three families of ceilings bound the attainable performance of a phase
    running with [vl] granules (1 granule = 1 ExeBU = 128 bits):

    - computation: [FP_peak(vl) = flops_per_granule_cycle * vl];
    - SIMD issue bandwidth (Equation 2):
      [SIMD-Issue_BW(vl) = issue_width * vl * 16] bytes/cycle — when a core
      holds few lanes, its ld/st data path is narrower than the L2
      bandwidth and *issue* becomes the memory bottleneck;
    - memory bandwidth of the chosen hierarchy level (vl-independent).

    Attainable performance (Equation 4):
      [AP_vl(oi) = min(FP_peak(vl),
                       SIMD-Issue_BW(vl) * oi.issue,
                       mem_BW(level) * oi.mem)]

    Units: flops per cycle. The paper's Table 5 labels the same quantities
    GFLOPs/s; at its 2GHz clock one flop/cycle is 2 GFLOPs/s, so only the
    scale differs, not the crossovers. With the defaults below, the
    reproduction of Table 5 places the issue-to-memory crossover for
    WL8.p1 (oi_issue ~ 1/6, oi_mem = 0.25, L2-resident) at 12 f32 lanes,
    exactly as the paper reports. *)

type cfg = {
  flops_per_granule_cycle : float;
      (** FP peak of one ExeBU: 2 pipes x 4 f32 x 1 flop = 8 *)
  issue_width : float;  (** vector memory uops dispatched per cycle (2) *)
  mem_bw : Occamy_mem.Level.t -> float;  (** bytes/cycle of a level *)
}

let default_cfg =
  {
    flops_per_granule_cycle = 8.0;
    issue_width = 2.0;
    mem_bw =
      (fun level ->
        let h = Occamy_mem.Hierarchy.default_config in
        match level with
        | Occamy_mem.Level.Vec_cache -> h.vc_bytes_per_cycle
        | Occamy_mem.Level.L2 -> h.l2_bytes_per_cycle
        | Occamy_mem.Level.Dram -> h.dram_bytes_per_cycle);
  }

let fp_peak cfg ~vl = cfg.flops_per_granule_cycle *. float_of_int vl

(** Equation (2): bytes/cycle the ld/st data path can request at width
    [vl]. *)
let simd_issue_bw cfg ~vl =
  cfg.issue_width *. float_of_int vl
  *. float_of_int Occamy_isa.Lane.bytes_per_granule

(** Equation (4): attainable flops/cycle for a phase with intensity [oi]
    whose footprint is served from [level]. *)
let attainable cfg ~vl ~oi ~level =
  if vl <= 0 then 0.0
  else
    let comp = fp_peak cfg ~vl in
    let issue = simd_issue_bw cfg ~vl *. oi.Occamy_isa.Oi.issue in
    let mem = cfg.mem_bw level *. oi.Occamy_isa.Oi.mem in
    Float.min comp (Float.min issue mem)

(** Which ceiling binds at width [vl]. *)
type bound = Compute_bound | Issue_bound | Memory_bound

let binding cfg ~vl ~oi ~level =
  let comp = fp_peak cfg ~vl in
  let issue = simd_issue_bw cfg ~vl *. oi.Occamy_isa.Oi.issue in
  let mem = cfg.mem_bw level *. oi.Occamy_isa.Oi.mem in
  (* Ties resolve towards the width-independent ceiling: once issue
     bandwidth has caught up with the memory ceiling, more lanes stop
     helping, which is "memory bound" in the paper's Table 5 reading. *)
  if mem <= comp && mem <= issue then Memory_bound
  else if issue <= comp then Issue_bound
  else Compute_bound

let bound_name = function
  | Compute_bound -> "compute"
  | Issue_bound -> "simd-issue"
  | Memory_bound -> "memory"

(** Every string {!bound_name} can produce — the vocabulary the trace
    invariant checker validates replan verdicts against. *)
let bound_names =
  List.map bound_name [ Compute_bound; Issue_bound; Memory_bound ]

(** Net performance gain of granting one more granule (Equation 3). *)
let net_perf_gain cfg ~vl ~oi ~level =
  attainable cfg ~vl:(vl + 1) ~oi ~level -. attainable cfg ~vl ~oi ~level

(** Smallest width achieving the phase's saturated performance — the
    "just enough lanes" number discussed in §7.4 Case 1. *)
let saturation_vl cfg ~max_vl ~oi ~level =
  let target = attainable cfg ~vl:max_vl ~oi ~level in
  let rec go vl =
    if vl >= max_vl then max_vl
    else if attainable cfg ~vl ~oi ~level >= target -. 1e-9 then vl
    else go (vl + 1)
  in
  go 1

(** The rows of Table 5: per-vl (SIMDIssueBound, MemBound, CompBound,
    Performance), in flops/cycle. *)
let table5_row cfg ~vl ~oi ~level =
  ( simd_issue_bw cfg ~vl *. oi.Occamy_isa.Oi.issue,
    cfg.mem_bw level *. oi.Occamy_isa.Oi.mem,
    fp_peak cfg ~vl,
    attainable cfg ~vl ~oi ~level )
