(** The hardware lane manager ([LaneMgr], Figure 5): listens for `<OI>`
    writes (phase-changing points), replans with the roofline-guided
    greedy algorithm, and publishes per-core suggested vector lengths —
    the values `MRS <decision>` reads. Purely advisory: grants are the
    resource table's business. *)

type t

val create : ?cfg:Roofline.cfg -> total:int -> cores:int -> unit -> t

val enter_phase :
  t -> core:int -> oi:Occamy_isa.Oi.t -> level:Occamy_mem.Level.t -> unit
(** Eager trigger: a phase began on [core]. *)

val exit_phase : t -> core:int -> unit
(** Eager trigger: the phase ended (`<OI>` written 0). *)

val decision : t -> core:int -> int
(** 0 when the core has no active phase. *)

val decisions : t -> int array
val replans : t -> int
val total : t -> int
val current_oi : t -> core:int -> Occamy_isa.Oi.t
val current_level : t -> core:int -> Occamy_mem.Level.t

val verdicts : t -> string array
(** Per-core {!Roofline.bound_name} at the current plan ("-" when the
    core has no active phase) — attached to replan trace events. *)
