(** The vector-length-aware roofline model of §5.1: three ceiling families
    bound a phase's attainable performance at [vl] granules —

    - computation: [FP_peak(vl) = flops_per_granule_cycle * vl];
    - SIMD issue bandwidth (Equation 2):
      [SIMD-Issue_BW(vl) = issue_width * vl * 16] bytes/cycle;
    - the memory bandwidth of the footprint's hierarchy level.

    Attainable performance (Equation 4) is their minimum, in flops/cycle.
    With the default configuration the Table-5 crossover for WL8.p1
    (oi_issue ~ 1/6, oi_mem 0.25, L2) falls at 12 lanes, as in the
    paper. *)

type cfg = {
  flops_per_granule_cycle : float;
  issue_width : float;
  mem_bw : Occamy_mem.Level.t -> float;
}

val default_cfg : cfg

val fp_peak : cfg -> vl:int -> float
val simd_issue_bw : cfg -> vl:int -> float

val attainable :
  cfg -> vl:int -> oi:Occamy_isa.Oi.t -> level:Occamy_mem.Level.t -> float
(** Equation (4), flops/cycle; 0 at [vl <= 0]. *)

type bound = Compute_bound | Issue_bound | Memory_bound

val binding :
  cfg -> vl:int -> oi:Occamy_isa.Oi.t -> level:Occamy_mem.Level.t -> bound
(** Which ceiling binds; ties resolve to the width-independent memory
    ceiling (more lanes stop helping). *)

val bound_name : bound -> string

val bound_names : string list
(** Every verdict string {!bound_name} can produce — the vocabulary the
    trace invariant checker validates replan events against. *)

val net_perf_gain :
  cfg -> vl:int -> oi:Occamy_isa.Oi.t -> level:Occamy_mem.Level.t -> float
(** Equation (3): the gain of one more granule. *)

val saturation_vl :
  cfg -> max_vl:int -> oi:Occamy_isa.Oi.t -> level:Occamy_mem.Level.t -> int
(** Smallest width reaching the phase's saturated performance. *)

val table5_row :
  cfg -> vl:int -> oi:Occamy_isa.Oi.t -> level:Occamy_mem.Level.t ->
  float * float * float * float
(** (issue bound, memory bound, compute bound, attainable). *)
