(** The hardware lane manager, [LaneMgr] in Figure 5.

    It listens for `MSR <OI>` writes (a phase-changing point: a non-zero
    write at a phase's beginning, a zero write at its end), recomputes a
    lane-partition plan with the roofline-guided greedy algorithm, and
    records the per-core suggested vector lengths in `<decision>`.

    The manager is purely advisory: cores pick the decision up lazily at
    iteration heads and request it with `MSR <VL>`; the resource table
    (in [Occamy_coproc.Resource_tbl]) arbitrates the actual grant. *)

type t = {
  cfg : Roofline.cfg;
  total : int;                        (* ExeBUs available for partitioning *)
  cores : int;
  oi : Occamy_isa.Oi.t array;         (* per-core current phase behaviour *)
  level : Occamy_mem.Level.t array;   (* per-core footprint level *)
  decision : int array;               (* per-core <decision> *)
  mutable replans : int;              (* eager partitioning events *)
}

let create ?(cfg = Roofline.default_cfg) ~total ~cores () =
  if cores <= 0 || total < cores then
    invalid_arg "Lane_mgr.create: need at least one ExeBU per core";
  {
    cfg;
    total;
    cores;
    oi = Array.make cores Occamy_isa.Oi.zero;
    level = Array.make cores Occamy_mem.Level.Dram;
    decision = Array.make cores 0;
    replans = 0;
  }

let replan t =
  t.replans <- t.replans + 1;
  let workloads =
    List.filter_map
      (fun core ->
        if Occamy_isa.Oi.is_zero t.oi.(core) then None
        else
          Some
            { Partition.key = core; oi = t.oi.(core); level = t.level.(core) })
      (List.init t.cores Fun.id)
  in
  let plan = Partition.plan t.cfg ~total:t.total workloads in
  Array.fill t.decision 0 t.cores 0;
  List.iter (fun (core, vl) -> t.decision.(core) <- vl) plan

(** Eager partitioning trigger: a workload on [core] entered a phase with
    behaviour [oi] whose footprint lives at [level]. *)
let enter_phase t ~core ~oi ~level =
  if core < 0 || core >= t.cores then invalid_arg "Lane_mgr.enter_phase";
  t.oi.(core) <- oi;
  t.level.(core) <- level;
  replan t

(** Eager partitioning trigger: the workload on [core] exited its phase
    (it wrote 0 into `<OI>`). *)
let exit_phase t ~core =
  if core < 0 || core >= t.cores then invalid_arg "Lane_mgr.exit_phase";
  t.oi.(core) <- Occamy_isa.Oi.zero;
  replan t

(** Value of `<decision>` for [core]; 0 means "no lanes suggested" (the
    core has no active phase). *)
let decision t ~core = t.decision.(core)

let decisions t = Array.copy t.decision
let replans t = t.replans
let total t = t.total
let current_oi t ~core = t.oi.(core)
let current_level t ~core = t.level.(core)

(** Roofline verdict per core at the current plan: which ceiling binds
    each active workload at its decided width (["-"] for cores with no
    active phase). This is the "why" behind a decision vector — the
    trace recorder attaches it to every replan event. *)
let verdicts t =
  Array.init t.cores (fun core ->
      if Occamy_isa.Oi.is_zero t.oi.(core) || t.decision.(core) = 0 then "-"
      else
        Roofline.bound_name
          (Roofline.binding t.cfg ~vl:t.decision.(core) ~oi:t.oi.(core)
             ~level:t.level.(core)))
