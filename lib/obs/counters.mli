(** Named counter/gauge registry: a flat, dotted namespace experiments
    and tests read by name ({!get}) instead of pattern-matching result
    records. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Add [by] (default 1) to a counter, creating it at 0 first. *)

val set : t -> string -> float -> unit
(** Set a gauge, creating it if needed. *)

val get : t -> string -> float option
val get_exn : t -> string -> float
val mem : t -> string -> bool
val length : t -> int

val to_list : t -> (string * float) list
(** Sorted by name. *)

val names : t -> string list
val with_prefix : t -> prefix:string -> (string * float) list
val pp : Format.formatter -> t -> unit

val record_pool : ?prefix:string -> t -> Occamy_util.Domain_pool.stats -> unit
(** Fold one parallel map's scheduler diagnostics
    ({!Occamy_util.Domain_pool.stats}) into the registry under [prefix]
    (default ["sweep"]): aggregate
    [<p>.{workers,tasks,steals,steal_attempts,minor_collections,
    major_collections,promoted_words}] plus per-worker
    [<p>.worker<i>.{tasks,steals,minor_collections,promoted_words}].
    Accumulates across calls, so one registry can attribute a whole
    sweep; pass it as [Domain_pool.map]'s [?stats] callback (it runs on
    the calling domain, so no locking is needed). *)

val to_json : t -> (string * Occamy_util.Json.value) list
(** Flat JSON object fields, sorted by name — the stable iteration
    order that keeps JSON and OpenMetrics exports deterministic across
    runs ({!to_list} order). *)

val to_csv : t -> string
(** ["name,value"] header plus one row per counter. *)
