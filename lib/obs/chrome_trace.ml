(** Exporters: Chrome/Perfetto trace-event JSON and a flat CSV dump.

    The JSON follows the Trace Event Format's JSON-object form
    ([{"traceEvents": [...]}]) so `chrome://tracing` and
    https://ui.perfetto.dev load it directly. Mapping:

    - one pid (0) for the whole run, one tid per trace track, named via
      ["thread_name"] metadata events — one lane per core plus the
      LaneMgr lane;
    - phase and sweep-task spans become "B"/"E" duration events;
    - rename-stall and reconfig-blocked episodes become "X" complete
      events with their recorded start and duration;
    - everything else becomes a thread-scoped "i" instant event carrying
      the event payload in ["args"].

    Timestamps are microseconds in the format; we map 1 cycle = 1 us. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_args args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
         args)
  ^ "}"

(* One trace-event JSON object. [ts]/[dur] are ints (cycles ~ us). *)
let obj ~name ~ph ~ts ?dur ~tid ?args () =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"pid\":0,\"tid\":%d"
       (escape name) ph tid);
  (match ph with
  | "M" -> ()  (* metadata events carry no timestamp *)
  | _ -> Buffer.add_string b (Printf.sprintf ",\"ts\":%d" ts));
  (match dur with
  | Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%d" d)
  | None -> ());
  if ph = "i" then Buffer.add_string b ",\"s\":\"t\"";
  (match args with
  | Some a -> Buffer.add_string b (",\"args\":" ^ json_args a)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let event_objs ~tid ~cycle (ev : Event.t) =
  let args = Event.args ev in
  match ev with
  | Event.Phase_begin { phase; _ } ->
    [ obj ~name:phase ~ph:"B" ~ts:cycle ~tid ~args () ]
  | Event.Phase_end { phase; _ } ->
    [ obj ~name:phase ~ph:"E" ~ts:cycle ~tid () ]
  | Event.Task_begin { label; _ } ->
    [ obj ~name:label ~ph:"B" ~ts:cycle ~tid ~args () ]
  | Event.Task_end { label; _ } ->
    [ obj ~name:label ~ph:"E" ~ts:cycle ~tid () ]
  | Event.Rename_stall { start_cycle; cycles; _ } ->
    [ obj ~name:"rename-stall" ~ph:"X" ~ts:start_cycle ~dur:(max 1 cycles)
        ~tid ~args () ]
  | Event.Reconfig_blocked { start_cycle; cycles; _ } ->
    [ obj ~name:"reconfig-blocked" ~ph:"X" ~ts:start_cycle ~dur:(max 1 cycles)
        ~tid ~args () ]
  | ev -> [ obj ~name:(Event.kind ev) ~ph:"i" ~ts:cycle ~tid ~args () ]

(* Counter ("C") events need *numeric* args values to chart — the
   string-valued [json_args] above would render as flat zero lines. *)
let counter_obj ~name ~ts ~tid args =
  Printf.sprintf "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"args\":{%s}}"
    (escape name) tid ts
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\":%d" (escape k) v)
          args))

(* One counter event per completed attribution window (stamped at the
   window's end cycle) plus the final partial window: a stacked
   cycles-per-bucket track Perfetto draws alongside the span lanes. *)
let attrib_counter_objs a =
  if not (Attrib.enabled a) then []
  else begin
    let name = "attrib (cycles/window)" in
    let event (end_cycle, deltas) =
      counter_obj ~name ~ts:end_cycle ~tid:0
        (List.filter_map
           (fun b ->
             let v = deltas.(Attrib.index b) in
             if v = 0 then None else Some (Attrib.name b, v))
           Attrib.all)
    in
    List.map event
      (Attrib.samples a
      @ match Attrib.pending a with Some s -> [ s ] | None -> [])
  end

let to_json ?(attrib = Attrib.disabled) trace =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b s
  in
  for track = 0 to Trace.num_tracks trace - 1 do
    emit
      (obj
         ~name:"thread_name" ~ph:"M" ~ts:0 ~tid:track
         ~args:[ ("name", Trace.track_name trace ~track) ]
         ())
  done;
  List.iter emit (attrib_counter_objs attrib);
  Trace.iter trace (fun ~track ~cycle ev ->
      List.iter emit (event_objs ~tid:track ~cycle ev));
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(** Flat event dump: one row per event, payload as [k=v|k=v] (values are
    comma-free by the {!Event.args} contract). *)
let to_csv trace =
  let b = Buffer.create 16384 in
  Buffer.add_string b "track,cycle,event,core,args\n";
  Trace.iter trace (fun ~track ~cycle ev ->
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%s,%s,%s\n"
           (Trace.track_name trace ~track)
           cycle (Event.kind ev)
           (match Event.core ev with Some c -> string_of_int c | None -> "")
           (String.concat "|"
              (List.map (fun (k, v) -> k ^ "=" ^ v) (Event.args ev)))));
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_json ?attrib ~path trace = write_file path (to_json ?attrib trace)
let write_csv ~path trace = write_file path (to_csv trace)
