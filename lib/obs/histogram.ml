(* Log-bucketed histogram: exact single-value buckets below
   [2 * 2^sub_bits], then [2^sub_bits] linear sub-buckets per octave.
   For a value with most-significant bit [e >= sub_bits] the bucket is

     m + (e - sub_bits) * m + ((v lsr (e - sub_bits)) - m)      m = 2^sub_bits

   so every bucket in octave [e] spans [2^(e - sub_bits)] values and the
   quantization error relative to the bucket's lower bound is at most
   [1/m]. The layout is dense (an int array), recording is a handful of
   integer ops, and merging is element-wise addition. *)

type t = {
  sub_bits : int;
  m : int;  (* 2^sub_bits sub-buckets per octave *)
  max_value : int;
  counts : int array;
  mutable n : int;
  mutable overflow : int;
  mutable sum : float;
  mutable min_v : int;  (* max_int when empty *)
  mutable max_v : int;  (* -1 when empty *)
}

let msb v =
  (* Position of the highest set bit; [v >= 1]. *)
  let e = ref 0 in
  let x = ref v in
  if !x lsr 32 > 0 then begin e := !e + 32; x := !x lsr 32 end;
  if !x lsr 16 > 0 then begin e := !e + 16; x := !x lsr 16 end;
  if !x lsr 8 > 0 then begin e := !e + 8; x := !x lsr 8 end;
  if !x lsr 4 > 0 then begin e := !e + 4; x := !x lsr 4 end;
  if !x lsr 2 > 0 then begin e := !e + 2; x := !x lsr 2 end;
  if !x lsr 1 > 0 then incr e;
  !e

let bucket_of t v =
  if v < t.m then v
  else
    let e = msb v in
    let shift = e - t.sub_bits in
    t.m + (shift * t.m) + ((v lsr shift) - t.m)

(* Inverse of [bucket_of]: inclusive value range of bucket [i]. *)
let bounds_of t i =
  if i < t.m then (i, i)
  else
    let d = i - t.m in
    let shift = d / t.m in
    let off = d mod t.m in
    let lo = (t.m + off) lsl shift in
    (lo, lo + (1 lsl shift) - 1)

let num_buckets t =
  (* Highest bucket index is [bucket_of max_value]; sizes stay small
     (sub_bits 5 over the full int range is ~1.9k buckets). *)
  bucket_of t t.max_value + 1

let create ?(sub_bits = 5) ?(max_value = max_int) () =
  if sub_bits < 1 || sub_bits > 16 then
    invalid_arg "Histogram.create: sub_bits must be in 1..16";
  if max_value <= 0 then
    invalid_arg "Histogram.create: max_value must be positive";
  let proto =
    {
      sub_bits;
      m = 1 lsl sub_bits;
      max_value;
      counts = [||];
      n = 0;
      overflow = 0;
      sum = 0.0;
      min_v = max_int;
      max_v = -1;
    }
  in
  { proto with counts = Array.make (num_buckets proto) 0 }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.overflow <- 0;
  t.sum <- 0.0;
  t.min_v <- max_int;
  t.max_v <- -1

let add_n t v ~count =
  if count < 0 then invalid_arg "Histogram.add_n: negative count";
  if count > 0 then begin
    if v < 0 then invalid_arg "Histogram.add: negative value";
    let v =
      if v > t.max_value then begin
        t.overflow <- t.overflow + count;
        t.max_value
      end
      else v
    in
    let b = bucket_of t v in
    t.counts.(b) <- t.counts.(b) + count;
    t.n <- t.n + count;
    t.sum <- t.sum +. (float_of_int v *. float_of_int count);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let add t v = add_n t v ~count:1

let count t = t.n
let zeros t = t.counts.(0)
let overflow t = t.overflow
let sum t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
let min_value t = if t.n = 0 then 0 else t.min_v
let max_value t = if t.n = 0 then 0 else t.max_v
let is_empty t = t.n = 0
let sub_bits t = t.sub_bits

let percentile t p =
  if Float.is_nan p then invalid_arg "Histogram.percentile: NaN";
  if t.n = 0 then 0
  else if p <= 0.0 then min_value t
  else if p >= 100.0 then max_value t
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let acc = ref 0 in
    let i = ref 0 in
    let res = ref (max_value t) in
    let continue_ = ref true in
    while !continue_ && !i < Array.length t.counts do
      acc := !acc + t.counts.(!i);
      if !acc >= rank then begin
        let _, hi = bounds_of t !i in
        (* Never report beyond the tracked extremes. *)
        res := min hi t.max_v;
        continue_ := false
      end;
      incr i
    done;
    !res
  end

let compatible a b = a.sub_bits = b.sub_bits && a.max_value = b.max_value

let merge_into ~into src =
  if not (compatible into src) then
    invalid_arg "Histogram.merge_into: sub_bits/max_value mismatch";
  Array.iteri
    (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c)
    src.counts;
  into.n <- into.n + src.n;
  into.overflow <- into.overflow + src.overflow;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let copy t =
  {
    t with
    counts = Array.copy t.counts;
  }

let merge a b =
  let r = copy a in
  merge_into ~into:r b;
  r

let buckets t =
  let out = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bounds_of t i in
      out := (lo, hi, t.counts.(i)) :: !out
    end
  done;
  !out

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf "n=%d mean=%.0f p50=%d p90=%d p99=%d max=%d" t.n
      (mean t) (percentile t 50.0) (percentile t 90.0) (percentile t 99.0)
      (max_value t)

module Sharded = struct
  type hist = t

  type t = {
    shards : hist array;
    starts : int64 array;  (* per-worker task start stamp, ns *)
  }

  let create ?sub_bits ?max_value ~workers () =
    if workers < 1 then invalid_arg "Histogram.Sharded.create: workers < 1";
    {
      shards = Array.init workers (fun _ -> create ?sub_bits ?max_value ());
      starts = Array.make workers (-1L) (* -1 = no task in flight *);
    }

  let workers t = Array.length t.shards

  let slot t worker =
    if worker < 0 then 0
    else if worker >= Array.length t.shards then Array.length t.shards - 1
    else worker

  let shard t ~worker = t.shards.(slot t worker)
  let record t ~worker v = add t.shards.(slot t worker) v

  let merged t =
    (* [create] guarantees at least one shard. *)
    let out = copy t.shards.(0) in
    for i = 1 to Array.length t.shards - 1 do
      merge_into ~into:out t.shards.(i)
    done;
    out

  let task_observer t ~worker ~index ~phase =
    ignore index;
    let w = slot t worker in
    match phase with
    | `Start -> t.starts.(w) <- Monotonic_clock.now ()
    | `Stop ->
      (* A Stop with no matching Start (possible if an observer is
         attached mid-region) must not record a garbage latency. *)
      let t0 = t.starts.(w) in
      if Int64.compare t0 0L >= 0 then begin
        t.starts.(w) <- -1L;
        let dt = Int64.sub (Monotonic_clock.now ()) t0 in
        if Int64.compare dt 0L >= 0 then record t ~worker:w (Int64.to_int dt)
      end
    | `Steal _ -> ()
end
