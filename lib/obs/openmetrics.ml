(* OpenMetrics text exposition. Deliberately dependency-free: the
   format is line-oriented and the writer below sticks to the subset
   the validator checks (HELP/TYPE comments, optional labels, float
   values, trailing "# EOF"). *)

type sample = { s_labels : (string * string) list; s_value : float }

type family = {
  fam_name : string;
  fam_type : [ `Gauge | `Counter | `Summary ];
  fam_help : string;
  fam_samples : sample list;
}

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize s =
  let b = Buffer.create (String.length s + 1) in
  String.iter (fun c -> Buffer.add_char b (if is_name_char c then c else '_')) s;
  let s = Buffer.contents b in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

let type_name = function
  | `Gauge -> "gauge"
  | `Counter -> "counter"
  | `Summary -> "summary"

(* Label values and help text share the same escaping rules. *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render families =
  let b = Buffer.create 4096 in
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "# HELP %s %s\n" f.fam_name (escape f.fam_help));
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" f.fam_name (type_name f.fam_type));
      List.iter
        (fun s ->
          (* OpenMetrics requires the _total suffix on counter samples;
             summaries carry their own _sum/_count suffixes in labels
             passed as part of the family's sample list. *)
          let name =
            match f.fam_type with
            | `Counter -> f.fam_name ^ "_total"
            | `Gauge | `Summary -> (
              match List.assoc_opt "__suffix__" s.s_labels with
              | Some suffix -> f.fam_name ^ suffix
              | None -> f.fam_name)
          in
          let labels =
            List.filter (fun (k, _) -> k <> "__suffix__") s.s_labels
          in
          let label_str =
            if labels = [] then ""
            else
              "{"
              ^ String.concat ","
                  (List.map
                     (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v))
                     labels)
              ^ "}"
          in
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" name label_str (value_str s.s_value)))
        f.fam_samples)
    families;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let of_counters ?(prefix = "occamy_") counters =
  List.map
    (fun (name, v) ->
      {
        fam_name = prefix ^ sanitize name;
        fam_type = `Gauge;
        fam_help = name;
        fam_samples = [ { s_labels = []; s_value = v } ];
      })
    (Counters.to_list counters)

let of_attrib a =
  if not (Attrib.enabled a) then []
  else begin
    let per_bucket f =
      List.concat
        (List.init (Attrib.cores a) (fun c ->
             List.map
               (fun b ->
                 {
                   s_labels =
                     [ ("core", string_of_int c); ("bucket", Attrib.name b) ];
                   s_value = f ~core:c b;
                 })
               Attrib.all))
    in
    [
      {
        fam_name = "occamy_attrib_cycles";
        fam_type = `Counter;
        fam_help =
          "simulated cycles attributed to each cause bucket, per core";
        fam_samples =
          per_bucket (fun ~core b ->
              float_of_int (Attrib.count a ~core b));
      };
      {
        fam_name = "occamy_attrib_share";
        fam_type = `Gauge;
        fam_help = "percent of the core's simulated cycles in each bucket";
        fam_samples = per_bucket (fun ~core b -> Attrib.share a ~core b);
      };
      {
        fam_name = "occamy_attrib_window_cycles";
        fam_type = `Gauge;
        fam_help = "time-series sampling window, in simulated cycles";
        fam_samples =
          [ { s_labels = []; s_value = float_of_int (Attrib.window a) } ];
      };
    ]
  end

let of_histogram ~name ~help h =
  let name = sanitize name in
  let q p =
    {
      s_labels = [ ("quantile", p) ];
      s_value = float_of_int (Histogram.percentile h (100.0 *. float_of_string p));
    }
  in
  [
    {
      fam_name = name;
      fam_type = `Summary;
      fam_help = help;
      fam_samples =
        [
          q "0.5";
          q "0.9";
          q "0.99";
          { s_labels = [ ("__suffix__", "_sum") ]; s_value = Histogram.sum h };
          {
            s_labels = [ ("__suffix__", "_count") ];
            s_value = float_of_int (Histogram.count h);
          };
        ];
    };
    {
      fam_name = name ^ "_max";
      fam_type = `Gauge;
      fam_help = help ^ " (exact maximum)";
      fam_samples =
        [ { s_labels = []; s_value = float_of_int (Histogram.max_value h) } ];
    };
  ]

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let valid_name s =
  s <> ""
  && (not (s.[0] >= '0' && s.[0] <= '9'))
  && String.for_all is_name_char s

(* Parse "name{k="v",...} value" | "name value"; returns the name. *)
let parse_sample_line line =
  let n = String.length line in
  let rec name_end i = if i < n && is_name_char line.[i] then name_end (i + 1) else i in
  let ne = name_end 0 in
  if ne = 0 then Error "missing metric name"
  else begin
    let name = String.sub line 0 ne in
    let after_labels =
      if ne < n && line.[ne] = '{' then begin
        (* scan for the closing brace, honouring escapes in values *)
        let rec scan i in_str =
          if i >= n then Error "unterminated label set"
          else
            match line.[i] with
            | '\\' when in_str -> scan (i + 2) in_str
            | '"' -> scan (i + 1) (not in_str)
            | '}' when not in_str -> Ok (i + 1)
            | _ -> scan (i + 1) in_str
        in
        scan (ne + 1) false
      end
      else Ok ne
    in
    match after_labels with
    | Error e -> Error e
    | Ok i ->
      if i >= n || line.[i] <> ' ' then Error "expected space before value"
      else begin
        let v = String.sub line (i + 1) (n - i - 1) in
        match float_of_string_opt (String.trim v) with
        | Some _ -> Ok name
        | None -> Error (Printf.sprintf "bad value %S" v)
      end
  end

let validate text =
  let lines = String.split_on_char '\n' text in
  let declared = Hashtbl.create 16 in
  let rec go lineno saw_eof = function
    | [] -> if saw_eof then Ok () else Error "missing terminating # EOF"
    | "" :: rest -> go (lineno + 1) saw_eof rest
    | line :: _ when saw_eof ->
      Error (Printf.sprintf "line %d: content after # EOF: %S" lineno line)
    | line :: rest ->
      let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
      if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | [ "#"; "EOF" ] -> go (lineno + 1) true rest
        | "#" :: "HELP" :: name :: _ ->
          if valid_name name then go (lineno + 1) saw_eof rest
          else fail ("invalid metric name in HELP: " ^ name)
        | [ "#"; "TYPE"; name; ty ] ->
          if not (valid_name name) then
            fail ("invalid metric name in TYPE: " ^ name)
          else if not (List.mem ty [ "gauge"; "counter"; "summary" ]) then
            fail ("unknown metric type: " ^ ty)
          else begin
            Hashtbl.replace declared name ();
            go (lineno + 1) saw_eof rest
          end
        | _ -> fail ("malformed comment line: " ^ line)
      end
      else begin
        match parse_sample_line line with
        | Error e -> fail (e ^ ": " ^ line)
        | Ok name ->
          if not (valid_name name) then fail ("invalid metric name: " ^ name)
          else begin
            (* the sample must belong to a family declared above it
               (possibly via a counter/summary suffix) *)
            let belongs =
              Hashtbl.mem declared name
              || List.exists
                   (fun suffix ->
                     let base_len = String.length name - String.length suffix in
                     base_len > 0
                     && String.sub name base_len (String.length suffix) = suffix
                     && Hashtbl.mem declared (String.sub name 0 base_len))
                   [ "_total"; "_sum"; "_count"; "_max" ]
            in
            if belongs then go (lineno + 1) saw_eof rest
            else fail ("sample before its # TYPE declaration: " ^ name)
          end
      end
  in
  go 1 false lines
