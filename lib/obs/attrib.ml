(* Top-down cycle accounting. Storage is a flat [cores * num_buckets]
   int array plus a window accumulator and a ring of completed windows;
   the recording paths allocate nothing. See the mli for the contract. *)

module Table = Occamy_util.Table
module Json = Occamy_util.Json

type bucket =
  | Issuing
  | Lane_starved
  | Reconfig_blocked
  | Rename_stall
  | Lsu_vc
  | Lsu_l2
  | Lsu_dram
  | Mob_conflict
  | Exe_latency
  | Ctx_switch
  | Scalar
  | Idle

let all =
  [
    Issuing; Lane_starved; Reconfig_blocked; Rename_stall; Lsu_vc; Lsu_l2;
    Lsu_dram; Mob_conflict; Exe_latency; Ctx_switch; Scalar; Idle;
  ]

let num_buckets = List.length all

let index = function
  | Issuing -> 0
  | Lane_starved -> 1
  | Reconfig_blocked -> 2
  | Rename_stall -> 3
  | Lsu_vc -> 4
  | Lsu_l2 -> 5
  | Lsu_dram -> 6
  | Mob_conflict -> 7
  | Exe_latency -> 8
  | Ctx_switch -> 9
  | Scalar -> 10
  | Idle -> 11

let of_index i =
  match List.nth_opt all i with
  | Some b -> b
  | None -> invalid_arg "Attrib.of_index"

let name = function
  | Issuing -> "issuing"
  | Lane_starved -> "lane_starved"
  | Reconfig_blocked -> "reconfig_blocked"
  | Rename_stall -> "rename_stall"
  | Lsu_vc -> "lsu_vc"
  | Lsu_l2 -> "lsu_l2"
  | Lsu_dram -> "lsu_dram"
  | Mob_conflict -> "mob_conflict"
  | Exe_latency -> "exe_latency"
  | Ctx_switch -> "ctx_switch"
  | Scalar -> "scalar"
  | Idle -> "idle"

let letter = function
  | Issuing -> 'I'
  | Lane_starved -> 'S'
  | Reconfig_blocked -> 'R'
  | Rename_stall -> 'N'
  | Lsu_vc -> 'v'
  | Lsu_l2 -> 'l'
  | Lsu_dram -> 'd'
  | Mob_conflict -> 'M'
  | Exe_latency -> 'E'
  | Ctx_switch -> 'C'
  | Scalar -> 's'
  | Idle -> '.'

let of_level = function
  | Occamy_mem.Level.Vec_cache -> Lsu_vc
  | Occamy_mem.Level.L2 -> Lsu_l2
  | Occamy_mem.Level.Dram -> Lsu_dram

type t = {
  on : bool;
  n_cores : int;
  cell : int array;  (* cores x num_buckets, row-major *)
  win_size : int;
  win : int array;  (* current window accumulator, summed over cores *)
  ring : int array;  (* capacity x num_buckets completed windows *)
  capacity : int;
  mutable head : int;  (* windows pushed so far; slot = head mod capacity *)
  mutable win_end : int;  (* last cycle of the current window *)
}

let disabled =
  {
    on = false;
    n_cores = 0;
    cell = [||];
    win_size = 1;
    win = [||];
    ring = [||];
    capacity = 0;
    head = 0;
    win_end = 0;
  }

let create ?(window = 1024) ?(capacity = 512) ~cores () =
  if cores <= 0 then invalid_arg "Attrib.create: cores must be positive";
  if window <= 0 then invalid_arg "Attrib.create: window must be positive";
  if capacity <= 0 then invalid_arg "Attrib.create: capacity must be positive";
  {
    on = true;
    n_cores = cores;
    cell = Array.make (cores * num_buckets) 0;
    win_size = window;
    win = Array.make num_buckets 0;
    ring = Array.make (capacity * num_buckets) 0;
    capacity;
    head = 0;
    win_end = window;
  }

let enabled t = t.on
let cores t = t.n_cores
let window t = t.win_size

(* Push the current window into the ring and reset it. Cycles are
   attributed strictly in order, so a window is complete exactly when
   the first cycle beyond [win_end] arrives. *)
let flush t =
  let slot = t.head mod t.capacity in
  Array.blit t.win 0 t.ring (slot * num_buckets) num_buckets;
  t.head <- t.head + 1;
  Array.fill t.win 0 num_buckets 0;
  t.win_end <- t.win_end + t.win_size

let add t ~core ~cycle b =
  if t.on then begin
    while cycle > t.win_end do
      flush t
    done;
    let i = index b in
    t.cell.((core * num_buckets) + i) <- t.cell.((core * num_buckets) + i) + 1;
    t.win.(i) <- t.win.(i) + 1
  end

let add_run_all t ~start_cycle ~len ~buckets =
  if t.on && len > 0 then begin
    for c = 0 to t.n_cores - 1 do
      let i = buckets.(c) in
      t.cell.((c * num_buckets) + i) <- t.cell.((c * num_buckets) + i) + len
    done;
    (* Window-chunk-major so the flush boundaries (and therefore the
       ring contents) are bit-identical to [len] per-cycle [add] sweeps
       over all cores: every core's contribution to a window is booked
       before that window is flushed. *)
    let pos = ref start_cycle and remaining = ref len in
    while !remaining > 0 do
      while !pos > t.win_end do
        flush t
      done;
      let chunk = min !remaining (t.win_end - !pos + 1) in
      for c = 0 to t.n_cores - 1 do
        let i = buckets.(c) in
        t.win.(i) <- t.win.(i) + chunk
      done;
      pos := !pos + chunk;
      remaining := !remaining - chunk
    done
  end

let count t ~core b =
  if t.on then t.cell.((core * num_buckets) + index b) else 0

let core_total t ~core =
  if not t.on then 0
  else begin
    let s = ref 0 in
    for i = 0 to num_buckets - 1 do
      s := !s + t.cell.((core * num_buckets) + i)
    done;
    !s
  end

let total t =
  let s = ref 0 in
  Array.iter (fun v -> s := !s + v) t.cell;
  !s

let share t ~core b =
  let tot = core_total t ~core in
  if tot = 0 then 0.0
  else 100.0 *. float_of_int (count t ~core b) /. float_of_int tot

let counts t =
  if not t.on then [||]
  else
    Array.init t.n_cores (fun c ->
        Array.init num_buckets (fun i -> t.cell.((c * num_buckets) + i)))

let windows_pushed t = t.head
let dropped_windows t = max 0 (t.head - t.capacity)

let samples t =
  if not t.on then []
  else begin
    let first = max 0 (t.head - t.capacity) in
    List.init (t.head - first) (fun k ->
        let j = first + k in
        let slot = j mod t.capacity in
        ( (j + 1) * t.win_size,
          Array.init num_buckets (fun i -> t.ring.((slot * num_buckets) + i))
        ))
  end

let pending t =
  if (not t.on) || Array.for_all (fun v -> v = 0) t.win then None
  else Some (t.win_end, Array.copy t.win)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let bucket_array = Array.of_list all

let summary_table ?(title = "Cycle accounting") t =
  let tbl =
    Table.create ~title
      ~header:[ "core"; "bucket"; "cycles"; "share" ]
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right ]
      ()
  in
  for c = 0 to t.n_cores - 1 do
    let tot = core_total t ~core:c in
    let rows =
      List.filter (fun b -> count t ~core:c b > 0) all
      |> List.sort (fun a b -> compare (count t ~core:c b) (count t ~core:c a))
    in
    List.iter
      (fun b ->
        Table.add_row tbl
          [
            string_of_int c;
            name b;
            Table.icell (count t ~core:c b);
            Table.pcell
              (if tot = 0 then 0.0
               else float_of_int (count t ~core:c b) /. float_of_int tot);
          ])
      rows
  done;
  tbl

let render_timeseries ?(width = 72) ?(height = 12) t =
  if not t.on then "attribution disabled\n"
  else begin
    let cols =
      Array.of_list
        (List.map snd (samples t)
        @ match pending t with Some (_, w) -> [ w ] | None -> [])
    in
    let ncols = Array.length cols in
    if ncols = 0 then "attribution timeseries: no samples yet\n"
    else begin
      (* Merge adjacent windows down to at most [width] columns. *)
      let per_col = (ncols + width - 1) / width in
      let merged = (ncols + per_col - 1) / per_col in
      let col j =
        let acc = Array.make num_buckets 0 in
        let lo = j * per_col and hi = min ncols ((j + 1) * per_col) - 1 in
        for k = lo to hi do
          let w = cols.(k) in
          for i = 0 to num_buckets - 1 do
            acc.(i) <- acc.(i) + w.(i)
          done
        done;
        acc
      in
      let buf = Buffer.create ((merged + 4) * (height + 3)) in
      Buffer.add_string buf
        (Printf.sprintf
           "attribution timeseries: %d windows of %d cycles%s, %d col%s of \
            %d window%s\n"
           (t.head + match pending t with Some _ -> 1 | None -> 0)
           t.win_size
           (if dropped_windows t > 0 then
              Printf.sprintf " (%d oldest dropped)" (dropped_windows t)
            else "")
           merged
           (if merged = 1 then "" else "s")
           per_col
           (if per_col = 1 then "" else "s"));
      let grid = Array.make_matrix height merged ' ' in
      for j = 0 to merged - 1 do
        let w = col j in
        let tot = Array.fold_left ( + ) 0 w in
        if tot > 0 then begin
          let ftot = float_of_int tot in
          for r = 0 to height - 1 do
            (* Row 0 is the bottom; paint the bucket whose cumulative
               share covers the middle of this cell. *)
            let thresh = (float_of_int r +. 0.5) /. float_of_int height in
            let rec pick i acc =
              if i >= num_buckets then letter Idle
              else begin
                let acc = acc +. (float_of_int w.(i) /. ftot) in
                if acc > thresh then letter bucket_array.(i)
                else pick (i + 1) acc
              end
            in
            grid.(height - 1 - r).(j) <- pick 0 0.0
          done
        end
      done;
      Array.iter
        (fun row ->
          Buffer.add_char buf '|';
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make merged '-');
      Buffer.add_char buf '\n';
      (* Legend: only buckets that appear anywhere. *)
      let totals = Array.make num_buckets 0 in
      Array.iter
        (fun w ->
          for i = 0 to num_buckets - 1 do
            totals.(i) <- totals.(i) + w.(i)
          done)
        cols;
      Buffer.add_char buf ' ';
      List.iteri
        (fun i b ->
          if totals.(i) > 0 then
            Buffer.add_string buf (Printf.sprintf "%c=%s " (letter b) (name b)))
        all;
      Buffer.add_char buf '\n';
      Buffer.contents buf
    end
  end

let json_fields ?(prefix = "") t =
  if not t.on then []
  else begin
    let per_core c =
      let tot = core_total t ~core:c in
      List.concat_map
        (fun b ->
          let v = count t ~core:c b in
          let key s =
            Printf.sprintf "%score%d.attrib.%s%s" prefix c (name b) s
          in
          [
            (key "", Json.Num (float_of_int v));
            ( key ".share",
              Json.Num
                (if tot = 0 then 0.0
                 else 100.0 *. float_of_int v /. float_of_int tot) );
          ])
        all
    in
    (prefix ^ "attrib.window", Json.Num (float_of_int t.win_size))
    :: (prefix ^ "attrib.windows", Json.Num (float_of_int t.head))
    :: List.concat (List.init t.n_cores per_core)
  end
