(** A named counter/gauge registry.

    Dotted names ("core1.issued_compute", "mem.dram.bytes") form a flat
    namespace that experiments and tests query with {!get} instead of
    pattern-matching result records; {!Occamy_core.Metrics.counters}
    populates one from a simulation result. Counters are monotonically
    incremented integers reported as floats; gauges are set directly. *)

type t = { cells : (string, float ref) Hashtbl.t }

let create () = { cells = Hashtbl.create 64 }

let cell t name =
  match Hashtbl.find_opt t.cells name with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.replace t.cells name r;
    r

let incr ?(by = 1) t name =
  let c = cell t name in
  c := !c +. float_of_int by

let set t name v = cell t name := v

let get t name = Option.map ( ! ) (Hashtbl.find_opt t.cells name)

let get_exn t name =
  match get t name with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Counters.get_exn: no counter named %S" name)

let mem t name = Hashtbl.mem t.cells name
let length t = Hashtbl.length t.cells

(** All [(name, value)] pairs, sorted by name. *)
let to_list t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.cells [])

let names t = List.map fst (to_list t)

(** Counters whose name starts with [prefix], sorted. *)
let with_prefix t ~prefix =
  let n = String.length prefix in
  List.filter
    (fun (name, _) ->
      String.length name >= n && String.sub name 0 n = prefix)
    (to_list t)

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%s=%g@." k v) (to_list t)

(** Fold a {!Occamy_util.Domain_pool.stats} (one parallel map's
    scheduler diagnostics) into the registry under [prefix] (default
    ["sweep"]): aggregate [<p>.{workers,tasks,steals,steal_attempts,
    minor_collections,major_collections,promoted_words}] plus
    per-worker [<p>.worker<i>.{tasks,steals,minor_collections,
    promoted_words}]. [incr]-based, so repeated calls accumulate a
    whole sweep's behaviour; [<p>.workers] is a gauge holding the
    widest worker count seen. *)
let record_pool ?(prefix = "sweep") t (s : Occamy_util.Domain_pool.stats) =
  let open Occamy_util in
  let p name = prefix ^ "." ^ name in
  let addf name v =
    let c = cell t name in
    c := !c +. v
  in
  let widest = match get t (p "workers") with Some w -> w | None -> 0.0 in
  set t (p "workers") (Float.max widest (float_of_int s.Domain_pool.st_workers));
  incr t (p "tasks") ~by:s.Domain_pool.st_tasks;
  Array.iteri
    (fun i (ws : Work_steal.worker_stats) ->
      let pw name = Printf.sprintf "%s.worker%d.%s" prefix i name in
      incr t (pw "tasks") ~by:ws.Work_steal.ws_tasks;
      incr t (pw "steals") ~by:ws.Work_steal.ws_steals;
      incr t (pw "minor_collections") ~by:ws.Work_steal.ws_minor_collections;
      addf (pw "promoted_words") ws.Work_steal.ws_promoted_words;
      incr t (p "steals") ~by:ws.Work_steal.ws_steals;
      incr t (p "steal_attempts") ~by:ws.Work_steal.ws_steal_attempts;
      incr t (p "minor_collections") ~by:ws.Work_steal.ws_minor_collections;
      incr t (p "major_collections") ~by:ws.Work_steal.ws_major_collections;
      addf (p "promoted_words") ws.Work_steal.ws_promoted_words)
    s.Domain_pool.st_per_worker

(** Flat JSON object fields in sorted-name order: the stable iteration
    order the JSON and OpenMetrics exporters rely on for deterministic,
    diffable output. *)
let to_json t =
  List.map (fun (k, v) -> (k, Occamy_util.Json.Num v)) (to_list t)

(** One [name,value] row per counter — pairs with the other CSV dumps. *)
let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "name,value\n";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s,%g\n" k v))
    (to_list t);
  Buffer.contents b
