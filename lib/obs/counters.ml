(** A named counter/gauge registry.

    Dotted names ("core1.issued_compute", "mem.dram.bytes") form a flat
    namespace that experiments and tests query with {!get} instead of
    pattern-matching result records; {!Occamy_core.Metrics.counters}
    populates one from a simulation result. Counters are monotonically
    incremented integers reported as floats; gauges are set directly. *)

type t = { cells : (string, float ref) Hashtbl.t }

let create () = { cells = Hashtbl.create 64 }

let cell t name =
  match Hashtbl.find_opt t.cells name with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.replace t.cells name r;
    r

let incr ?(by = 1) t name =
  let c = cell t name in
  c := !c +. float_of_int by

let set t name v = cell t name := v

let get t name = Option.map ( ! ) (Hashtbl.find_opt t.cells name)

let get_exn t name =
  match get t name with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Counters.get_exn: no counter named %S" name)

let mem t name = Hashtbl.mem t.cells name
let length t = Hashtbl.length t.cells

(** All [(name, value)] pairs, sorted by name. *)
let to_list t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.cells [])

let names t = List.map fst (to_list t)

(** Counters whose name starts with [prefix], sorted. *)
let with_prefix t ~prefix =
  let n = String.length prefix in
  List.filter
    (fun (name, _) ->
      String.length name >= n && String.sub name 0 n = prefix)
    (to_list t)

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%s=%g@." k v) (to_list t)

(** One [name,value] row per counter — pairs with the other CSV dumps. *)
let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "name,value\n";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s,%g\n" k v))
    (to_list t);
  Buffer.contents b
