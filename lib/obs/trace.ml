(** Cycle-stamped event recorder.

    A trace is a fixed set of *tracks* (one per core, one for the lane
    manager, or one per sweep worker), each a preallocated ring buffer
    of [(cycle, event)] pairs. The design constraints, in order:

    - {b near-zero cost when disabled}: {!enabled} is a single immutable
      field read. Hot-path call sites must guard event {e construction}
      with it — [if Trace.enabled tr then Trace.record tr ...] — so a
      disabled trace costs one branch and allocates nothing
      (the "no per-cycle allocation path" test relies on this);
    - {b race freedom under [-j N]}: a track has exactly one writer.
      Per-simulation traces live entirely inside one domain; sweep
      traces give every {!Occamy_util.Domain_pool} worker its own track;
    - {b bounded memory}: the ring drops the oldest events on overflow
      and counts the drops, so tracing a pathological run cannot OOM. *)

type track = {
  tk_name : string;
  cycles : int array;
  events : Event.t array;
  mutable head : int;  (* next write position *)
  mutable len : int;   (* live entries, <= capacity *)
  mutable dropped : int;
}

type t = {
  enabled : bool;
  capacity : int;
  tracks : track array;
}

let default_capacity = 65536

(* Sentinel filling the preallocated slots; never observable because
   [len] bounds every read. *)
let sentinel = Event.Oi_write { core = -1; oi = Occamy_isa.Oi.zero }

let create ?(capacity = default_capacity) ~tracks () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  if tracks = [] then invalid_arg "Trace.create: need at least one track";
  {
    enabled = true;
    capacity;
    tracks =
      Array.of_list
        (List.map
           (fun name ->
             {
               tk_name = name;
               cycles = Array.make capacity 0;
               events = Array.make capacity sentinel;
               head = 0;
               len = 0;
               dropped = 0;
             })
           tracks);
  }

(** The shared disabled trace: no buffers, every {!record} a no-op. *)
let disabled = { enabled = false; capacity = 0; tracks = [||] }

let[@inline] enabled t = t.enabled

let num_tracks t = Array.length t.tracks
let track_name t ~track = t.tracks.(track).tk_name

let record t ~track ~cycle ev =
  if t.enabled then begin
    let tk = t.tracks.(track) in
    tk.cycles.(tk.head) <- cycle;
    tk.events.(tk.head) <- ev;
    tk.head <- (tk.head + 1) mod t.capacity;
    if tk.len < t.capacity then tk.len <- tk.len + 1
    else tk.dropped <- tk.dropped + 1
  end

(** Events of a track, oldest first. *)
let events t ~track =
  let tk = t.tracks.(track) in
  let first = (tk.head - tk.len + t.capacity) mod t.capacity in
  List.init tk.len (fun i ->
      let j = (first + i) mod t.capacity in
      (tk.cycles.(j), tk.events.(j)))

let dropped t ~track = t.tracks.(track).dropped

let total_events t =
  Array.fold_left (fun acc tk -> acc + tk.len) 0 t.tracks

let iter t f =
  Array.iteri
    (fun i tk ->
      ignore tk;
      List.iter (fun (cycle, ev) -> f ~track:i ~cycle ev) (events t ~track:i))
    t.tracks

(* ------------------------------------------------------------------ *)
(* Canonical track layouts                                             *)
(* ------------------------------------------------------------------ *)

(** Simulator layout: tracks [core0 .. core(N-1)] then ["LaneMgr"]. *)
let for_sim ?capacity ~cores () =
  if cores <= 0 then invalid_arg "Trace.for_sim: cores must be positive";
  create ?capacity
    ~tracks:(List.init cores (Printf.sprintf "core%d") @ [ "LaneMgr" ])
    ()

(** Index of the lane-manager track in a {!for_sim} trace. *)
let lanemgr_track t = Array.length t.tracks - 1

(** Sweep layout: one track per worker domain. *)
let for_sweep ?capacity ~workers () =
  if workers <= 0 then invalid_arg "Trace.for_sweep: workers must be positive";
  create ?capacity ~tracks:(List.init workers (Printf.sprintf "worker%d")) ()

(** Adapter for {!Occamy_util.Domain_pool}'s [?observer]: records
    {!Event.Task_begin}/{!Event.Task_end} spans onto the worker's own
    track (single-writer, hence race-free), stamped in wall-clock
    microseconds since [t0] (sweep tasks have no cycle clock). *)
let sweep_observer ?(t0 = Unix.gettimeofday ()) t ~label_of =
  let stamp () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  fun ~worker ~index ~phase ->
    if enabled t && worker < num_tracks t then
      let label = label_of index in
      let ev =
        match phase with
        | `Start -> Event.Task_begin { worker; index; label }
        | `Stop -> Event.Task_end { worker; index; label }
        | `Steal victim -> Event.Task_steal { worker; victim; index; label }
      in
      record t ~track:worker ~cycle:(stamp ()) ev
