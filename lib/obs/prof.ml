(* Sampled stage profiler. All bookkeeping is integer arithmetic on
   preallocated arrays; the only external calls on the hot path are
   [Monotonic_clock.now] (noalloc C stub) on sampled cycles.

   Attribution is a small explicit scope stack: entering a scope credits
   the elapsed time to whatever was running (the enclosing scope, or the
   [Other] root between scopes), so per-stage exclusive times partition
   the sampled wall-time exactly and shares sum to 100% by
   construction. The (parent, stage) matrix [acc2] additionally keeps
   the one level of context needed to reconstruct folded stacks — the
   simulator's scopes nest at most two deep (front-end -> replan,
   dispatch -> EXE apply, context-switch -> replan). *)

type stage =
  | Frontend
  | Rename
  | Dispatch
  | Exe_apply
  | Lsu_retire
  | Replan
  | Ctx_switch
  | Ff_scan
  | Sample
  | Trace_overhead
  | Other

let all_stages =
  [ Frontend; Rename; Dispatch; Exe_apply; Lsu_retire; Replan; Ctx_switch;
    Ff_scan; Sample; Trace_overhead; Other ]

let num_stages = 11
let root = num_stages  (* pseudo-parent index for top-level scopes *)

let stage_index = function
  | Frontend -> 0
  | Rename -> 1
  | Dispatch -> 2
  | Exe_apply -> 3
  | Lsu_retire -> 4
  | Replan -> 5
  | Ctx_switch -> 6
  | Ff_scan -> 7
  | Sample -> 8
  | Trace_overhead -> 9
  | Other -> 10

let stage_of_index =
  [| Frontend; Rename; Dispatch; Exe_apply; Lsu_retire; Replan; Ctx_switch;
     Ff_scan; Sample; Trace_overhead; Other |]

let stage_name = function
  | Frontend -> "frontend"
  | Rename -> "rename"
  | Dispatch -> "dispatch"
  | Exe_apply -> "exe_apply"
  | Lsu_retire -> "lsu_retire"
  | Replan -> "replan"
  | Ctx_switch -> "ctx_switch"
  | Ff_scan -> "ff_scan"
  | Sample -> "sample"
  | Trace_overhead -> "trace_overhead"
  | Other -> "other"

let max_depth = 16

type t = {
  on : bool;
  mask : int;  (* sample_every - 1 *)
  every : int;
  mutable tick : int;
  mutable is_sampled : bool;
  mutable last : int64;
  mutable depth : int;
  stack_stage : int array;
  stack_start : int64 array;
  calls : int array;
  acc2 : int array array;  (* [parent or root] x [stage] exclusive ns *)
  hists : Histogram.t array;  (* inclusive scope latencies, ns *)
  mutable n_sampled : int;
}

let clock_ns = Monotonic_clock.now

let make ~on ~every =
  {
    on;
    mask = every - 1;
    every;
    tick = -1;
    is_sampled = false;
    last = 0L;
    depth = 0;
    stack_stage = Array.make max_depth 0;
    stack_start = Array.make max_depth 0L;
    calls = Array.make num_stages 0;
    acc2 = Array.init (num_stages + 1) (fun _ -> Array.make num_stages 0);
    hists = Array.init num_stages (fun _ -> Histogram.create ());
    n_sampled = 0;
  }

let disabled = make ~on:false ~every:1

let create ?(sample_every = 32) () =
  if sample_every < 1 || sample_every land (sample_every - 1) <> 0 then
    invalid_arg "Prof.create: sample_every must be a power of two";
  make ~on:true ~every:sample_every

let enabled t = t.on
let sampled t = t.is_sampled
let sample_every t = t.every
let sampled_cycles t = t.n_sampled
let cycles t = t.tick + 1

(* Credit [now - last] to the scope currently running. *)
let credit t now =
  let ns = Int64.to_int (Int64.sub now t.last) in
  if ns > 0 then begin
    let cur, parent =
      if t.depth > 0 then
        ( t.stack_stage.(t.depth - 1),
          if t.depth > 1 then t.stack_stage.(t.depth - 2) else root )
      else (stage_index Other, root)
    in
    let row = t.acc2.(parent) in
    row.(cur) <- row.(cur) + ns
  end;
  t.last <- now

let begin_cycle t =
  if t.on then begin
    t.tick <- t.tick + 1;
    t.is_sampled <- t.tick land t.mask = 0;
    if t.is_sampled then t.last <- clock_ns ()
  end

let enter t stage =
  if t.is_sampled then begin
    if t.depth >= max_depth then invalid_arg "Prof.enter: scopes too deep";
    let now = clock_ns () in
    credit t now;
    let s = stage_index stage in
    t.stack_stage.(t.depth) <- s;
    t.stack_start.(t.depth) <- now;
    t.depth <- t.depth + 1;
    t.calls.(s) <- t.calls.(s) + 1
  end

let exit t =
  if t.is_sampled then begin
    if t.depth = 0 then invalid_arg "Prof.exit: no open scope";
    let now = clock_ns () in
    credit t now;
    let d = t.depth - 1 in
    let s = t.stack_stage.(d) in
    let incl = Int64.to_int (Int64.sub now t.stack_start.(d)) in
    Histogram.add t.hists.(s) (if incl > 0 then incl else 0);
    t.depth <- d
  end

let end_cycle t =
  if t.is_sampled then begin
    if t.depth <> 0 then invalid_arg "Prof.end_cycle: unbalanced scopes";
    credit t (clock_ns ());
    t.n_sampled <- t.n_sampled + 1
  end

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let stage_ns t s =
  let i = stage_index s in
  Array.fold_left (fun acc row -> acc + row.(i)) 0 t.acc2

let total_sampled_ns t =
  Array.fold_left
    (fun acc row -> Array.fold_left ( + ) acc row)
    0 t.acc2

type stage_stat = {
  ss_stage : stage;
  ss_ns : int;
  ss_calls : int;
  ss_share : float;
  ss_hist : Histogram.t;
}

let stats t =
  let total = total_sampled_ns t in
  let share ns =
    if total = 0 then 0.0 else 100.0 *. float_of_int ns /. float_of_int total
  in
  List.filter_map
    (fun s ->
      let i = stage_index s in
      let ns = stage_ns t s in
      if ns = 0 && t.calls.(i) = 0 then None
      else
        Some
          {
            ss_stage = s;
            ss_ns = ns;
            ss_calls = t.calls.(i);
            ss_share = share ns;
            ss_hist = t.hists.(i);
          })
    all_stages
  |> List.sort (fun a b -> compare b.ss_ns a.ss_ns)

let shares t =
  if total_sampled_ns t = 0 then []
  else List.map (fun st -> (st.ss_stage, st.ss_share)) (stats t)

let top_stages t ~n =
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  take n (shares t)

let pretty_ns ns =
  let f = float_of_int ns in
  if f >= 1e9 then Printf.sprintf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1f us" (f /. 1e3)
  else Printf.sprintf "%d ns" ns

let summary_table ?title t =
  let module Table = Occamy_util.Table in
  let title =
    match title with
    | Some s -> s
    | None ->
      Printf.sprintf
        "Per-stage cycle-cost profile (%d of %d cycles sampled, 1/%d)"
        (sampled_cycles t) (cycles t) t.every
  in
  let tbl =
    Table.create ~title
      ~header:[ "stage"; "share"; "time"; "calls"; "p50"; "p90"; "p99"; "max" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun st ->
      let h = st.ss_hist in
      let p q =
        if Histogram.is_empty h then "-"
        else pretty_ns (Histogram.percentile h q)
      in
      Table.add_row tbl
        [
          stage_name st.ss_stage;
          Printf.sprintf "%5.1f%%" st.ss_share;
          pretty_ns st.ss_ns;
          string_of_int st.ss_calls;
          p 50.0;
          p 90.0;
          p 99.0;
          (if Histogram.is_empty h then "-"
           else pretty_ns (Histogram.max_value h));
        ])
    (stats t);
  Table.add_row tbl
    [ "total"; "100.0%"; pretty_ns (total_sampled_ns t); ""; ""; ""; ""; "" ];
  tbl

let folded t =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun parent row ->
      Array.iteri
        (fun s ns ->
          if ns > 0 then
            if parent = root then
              Buffer.add_string buf
                (Printf.sprintf "occamy;%s %d\n"
                   (stage_name stage_of_index.(s))
                   ns)
            else
              Buffer.add_string buf
                (Printf.sprintf "occamy;%s;%s %d\n"
                   (stage_name stage_of_index.(parent))
                   (stage_name stage_of_index.(s))
                   ns))
        row)
    t.acc2;
  Buffer.contents buf

let json_fields ?(prefix = "") t =
  let module Json = Occamy_util.Json in
  let num i = Json.Num (float_of_int i) in
  let per_stage =
    List.concat_map
      (fun st ->
        let p = Printf.sprintf "%sstage.%s." prefix (stage_name st.ss_stage) in
        [
          (p ^ "ns", num st.ss_ns);
          (p ^ "share", Json.Num st.ss_share);
          (p ^ "calls", num st.ss_calls);
          ( p ^ "p50_ns",
            num
              (if Histogram.is_empty st.ss_hist then 0
               else Histogram.percentile st.ss_hist 50.0) );
          ( p ^ "p99_ns",
            num
              (if Histogram.is_empty st.ss_hist then 0
               else Histogram.percentile st.ss_hist 99.0) );
        ])
      (stats t)
  in
  per_stage
  @ [
      (prefix ^ "total_sampled_ns", num (total_sampled_ns t));
      (prefix ^ "sampled_cycles", num (sampled_cycles t));
      (prefix ^ "cycles", num (cycles t));
      (prefix ^ "sample_every", num t.every);
      ( prefix ^ "shares_sum",
        Json.Num (List.fold_left (fun a (_, s) -> a +. s) 0.0 (shares t)) );
    ]
