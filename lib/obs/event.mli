(** Typed, cycle-stamped trace events: phase spans, `MSR <OI>` writes,
    lane-manager replans (with decision vector and roofline verdicts),
    `MSR <VL>` request/grant/deny, rename-stall and reconfig-blocked
    episodes, footprint-level transitions, and sweep-task spans. *)

type replan_cause = Enter_phase | Exit_phase | Preempt | Resume

val replan_cause_name : replan_cause -> string

type t =
  | Phase_begin of {
      core : int;
      phase : string;
      oi : Occamy_isa.Oi.t;
      level : Occamy_mem.Level.t;
    }
  | Phase_end of { core : int; phase : string }
  | Oi_write of { core : int; oi : Occamy_isa.Oi.t }
  | Replan of {
      trigger : int;
      cause : replan_cause;
      decisions : int array;
      verdicts : string array;
    }
  | Vl_request of { core : int; requested : int }
  | Vl_grant of { core : int; granted : int; al : int }
  | Vl_deny of { core : int; requested : int; al : int }
  | Rename_stall of { core : int; start_cycle : int; cycles : int }
  | Reconfig_blocked of { core : int; start_cycle : int; cycles : int }
  | Mem_transition of {
      core : int;
      from_level : Occamy_mem.Level.t;
      to_level : Occamy_mem.Level.t;
    }
  | Task_begin of { worker : int; index : int; label : string }
  | Task_end of { worker : int; index : int; label : string }
  | Task_steal of { worker : int; victim : int; index : int; label : string }
  | Fault_inject of {
      core : int;
      site : string;  (** "reg", "load" or "store" *)
      index : int;    (** per-core fault-opportunity index the flip hit *)
      lane : int;     (** f32 lane within the transfer *)
      bit : int;      (** flipped bit within the f32 word *)
    }

val kind : t -> string
(** Stable snake_case tag, the CSV [event] column. *)

val core : t -> int option
(** The core an event concerns ([Replan] reports its trigger core). *)

val args : t -> (string * string) list
(** Payload as comma-free key-value strings (CSV/Chrome-args safe). *)

val duration : t -> (int * int) option
(** [(start_cycle, cycles)] for episode events, [None] for instants. *)

val pp : Format.formatter -> t -> unit
