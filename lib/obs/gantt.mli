(** ASCII phase-Gantt: one row per track, phase spans painted with
    per-phase letters, replans as '*', denied `MSR <VL>` as '!'. *)

val render : ?width:int -> Trace.t -> string
(** Render the whole trace scaled to [width] columns (default 72). *)
