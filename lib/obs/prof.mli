(** Self-profiling of the simulator's own hot loop: monotonic-clock
    stage scopes that attribute wall-time (and invocation counts) to
    the pipeline stages of {!Occamy_core.Sim.step} — front-end, rename,
    dispatch/issue, EXE/Vop apply, LSU retire, lane-manager replans,
    context switches, the fast-forward horizon scan, tracing overhead —
    plus per-stage latency {!Histogram}s and folded-stacks / JSON
    exporters.

    {2 Cost model}

    Like {!Trace}, a disabled profiler is a single branch per site and
    allocates nothing ({!disabled}; the simulator's results are
    bit-identical with profiling on or off — profiling only reads the
    clock, never simulator state). An {e enabled} profiler samples: it
    stamps the clock only on one cycle out of [sample_every] (a power
    of two, default 32), so per-cycle overhead on dense runs stays
    below a few percent while the attribution converges over the
    millions of cycles a run takes. Shares are computed over sampled
    time only and always sum to 100%.

    Scopes nest (a lane-manager replan fires inside the front-end
    stage); attribution is {e exclusive} — time inside an inner scope
    is subtracted from its parent — so the per-stage totals partition
    the profiled time and the folded-stacks output reconstructs the
    call structure. *)

type stage =
  | Frontend  (** scalar execute + SVE transmit (§4.1.1) *)
  | Rename  (** in-order rename against the freelists *)
  | Dispatch  (** out-of-order issue scan: ports, ExeBUs, LSU/MOB *)
  | Exe_apply  (** compute-issue bookkeeping: Vop latency, busy lanes *)
  | Lsu_retire  (** memory completions, MOB dealloc, window commit *)
  | Replan  (** lane-manager enter/exit + decision propagation *)
  | Ctx_switch  (** OS preemption state machine + MSR <VL> resolution *)
  | Ff_scan  (** event-horizon scan + fast-forward jump batching *)
  | Sample  (** per-cycle stat sampling + periodic invariant checks *)
  | Trace_overhead  (** tracing-only bookkeeping in the hot loop *)
  | Other  (** residual step/loop glue not inside any scope *)

val all_stages : stage list
val stage_name : stage -> string
(** Short lowercase identifier, e.g. ["frontend"], ["ff_scan"]. *)

type t

val disabled : t
(** Never samples; every operation is a no-op. *)

val create : ?sample_every:int -> unit -> t
(** [sample_every] must be a power of two (default 32): the fraction of
    cycles that get clock-stamped. [1] profiles every cycle (for tests
    and short runs). *)

val enabled : t -> bool

val sampled : t -> bool
(** Whether the cycle currently being stepped was chosen for
    profiling. Stable from one {!begin_cycle} to the next, so guards at
    different sites of the same cycle agree. *)

(** {2 Recording (called by the simulator)} *)

val begin_cycle : t -> unit
(** Advance the sampling decision and, on a sampled cycle, stamp the
    clock. Call once at the top of the per-cycle step. *)

val enter : t -> stage -> unit
(** Open a stage scope. Only meaningful while {!sampled}; guard the
    call site with [if Prof.sampled p then Prof.enter p S]. *)

val exit : t -> unit
(** Close the innermost scope, crediting its inclusive duration to the
    stage's latency histogram and its exclusive time to the stage. *)

val end_cycle : t -> unit
(** Credit the residual since the last scope to {!Other} and close the
    sampled cycle. Unbalanced scopes raise [Invalid_argument]. *)

(** {2 Reporting} *)

type stage_stat = {
  ss_stage : stage;
  ss_ns : int;  (** exclusive sampled wall-time, ns *)
  ss_calls : int;  (** scope entries on sampled cycles *)
  ss_share : float;  (** percent of total sampled time; sums to 100 *)
  ss_hist : Histogram.t;  (** inclusive per-scope latencies, ns *)
}

val stats : t -> stage_stat list
(** Stages with non-zero time or calls, largest share first. *)

val shares : t -> (stage * float) list
(** Per-stage percentage of the total sampled time; sums to 100 (empty
    when nothing was sampled). *)

val total_sampled_ns : t -> int
val sampled_cycles : t -> int
val cycles : t -> int
(** Cycles seen by {!begin_cycle} (sampled or not). *)

val sample_every : t -> int

val top_stages : t -> n:int -> (stage * float) list
(** The [n] largest shares — "where do dense-run cycles go". *)

val summary_table : ?title:string -> t -> Occamy_util.Table.t
(** Per-stage table: share, sampled time, calls, p50/p90/p99/max scope
    latency. *)

val folded : t -> string
(** Folded-stacks output for flamegraph tooling (one
    ["occamy;stage;substage <ns>"] line per observed stack path), e.g.
    [flamegraph.pl < profile.folded > profile.svg]. *)

val json_fields : ?prefix:string -> t -> (string * Occamy_util.Json.value) list
(** Flat JSON fields: per-stage [<prefix>stage.<name>.{ns,share,calls,
    p50_ns,p99_ns}] plus [<prefix>{sampled_cycles,cycles,sample_every,
    total_sampled_ns,shares_sum}]. *)

val clock_ns : unit -> int64
(** The monotonic clock the scopes use (exposed for tests and for
    observers that must agree with it). *)
