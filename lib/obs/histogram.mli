(** Log-bucketed latency histogram (HDR-histogram style): constant-time
    recording of non-negative integer samples (the profiler feeds it
    nanoseconds) into exponentially-growing buckets with [2^sub_bits]
    linear sub-buckets per octave, so the relative quantization error of
    any percentile is bounded by [2^-sub_bits] while memory stays a few
    KB regardless of the value range.

    Values below [2 * 2^sub_bits] are recorded exactly (their bucket is
    a single value); [min]/[max] are tracked exactly at any magnitude.

    Histograms are cheap to merge — bucket-wise addition, associative
    and commutative — which is what makes per-worker shards work: each
    {!Occamy_util.Domain_pool} worker records into its own shard
    race-free and the caller merges after the join ({!Sharded}). *)

type t

val create : ?sub_bits:int -> ?max_value:int -> unit -> t
(** [sub_bits] (default 5, i.e. 32 sub-buckets, ≤3.2% relative error)
    must be in [1..16]. Samples above [max_value] (default [max_int])
    are clamped into the bucket of [max_value] and tallied in
    {!overflow}. Raises [Invalid_argument] on a bad [sub_bits] or a
    non-positive [max_value]. *)

val clear : t -> unit

val add : t -> int -> unit
(** Record one sample. Raises [Invalid_argument] on a negative value. *)

val add_n : t -> int -> count:int -> unit
(** Record [count] copies of a value in one bucket update. *)

val count : t -> int
(** Samples recorded (including overflowed ones). *)

val zeros : t -> int
(** Samples recorded with value exactly 0 (the zero bucket). *)

val overflow : t -> int
(** Samples clamped because they exceeded [max_value]. *)

val sum : t -> float
(** Sum of recorded values (as recorded, i.e. after clamping). *)

val mean : t -> float
val min_value : t -> int
(** Exact smallest recorded value; 0 on an empty histogram. *)

val max_value : t -> int
(** Exact largest recorded value (after clamping); 0 when empty. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0..100]: an upper bound of the
    [ceil (p/100 * count)]-th smallest sample, exact below
    [2 * 2^sub_bits] and within a relative [2^-sub_bits] above.
    [p <= 0] returns {!min_value}, [p >= 100] returns {!max_value};
    0 on an empty histogram. Raises [Invalid_argument] on NaN. *)

val merge_into : into:t -> t -> unit
(** Bucket-wise addition of the second histogram into [into]. Both must
    share [sub_bits] and [max_value] (raises [Invalid_argument]
    otherwise). Associative and commutative up to {!buckets}/[count]/
    [min]/[max]/[sum] equality, whatever the merge order. *)

val merge : t -> t -> t
(** Fresh histogram holding the bucket-wise sum of both. *)

val copy : t -> t
val is_empty : t -> bool
val sub_bits : t -> int

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending; [lo = hi] for
    the exact range. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: count, mean, p50/p90/p99, max. *)

(** Per-worker shards for race-free recording under
    {!Occamy_util.Domain_pool}: worker [i] writes only shard [i], the
    caller reads {!merged} after the parallel region joins. *)
module Sharded : sig
  type hist := t
  type t

  val create : ?sub_bits:int -> ?max_value:int -> workers:int -> unit -> t
  (** [workers] shards ([>= 1]; worker ids outside [0..workers-1] are
      folded into the last shard rather than lost). *)

  val workers : t -> int
  val shard : t -> worker:int -> hist
  val record : t -> worker:int -> int -> unit

  val merged : t -> hist
  (** Fresh merge of all shards; call after the parallel region. *)

  val task_observer :
    t ->
    worker:int ->
    index:int ->
    phase:[ `Start | `Stop | `Steal of int ] ->
    unit
  (** {!Occamy_util.Domain_pool.observer} recording each task's
      wall-clock latency (monotonic nanoseconds between [`Start] and
      [`Stop]) into the running worker's shard. Compose with other
      observers (e.g. {!Trace.sweep_observer}) by calling both. *)
end
