(** ASCII phase-Gantt renderer for quick terminal inspection.

    One row per track. Phase (and sweep-task) spans paint the row with a
    per-phase letter; lane-manager replans paint '*' marks on their
    track; everything else is left as '.'. A legend maps letters back to
    phase names. Intended for eyeballing a run's shape without leaving
    the terminal — the Chrome exporter is the high-fidelity view. *)

type span = { s_start : int; s_end : int; s_name : string }

(* Reconstruct closed spans from Begin/End pairs; an unmatched Begin is
   closed at [horizon]. *)
let spans_of_track events ~horizon =
  let open_spans = Hashtbl.create 4 in
  let closed = ref [] in
  List.iter
    (fun (cycle, ev) ->
      match ev with
      | Event.Phase_begin { phase = name; _ }
      | Event.Task_begin { label = name; _ } ->
        Hashtbl.replace open_spans name cycle
      | Event.Phase_end { phase = name; _ }
      | Event.Task_end { label = name; _ } -> (
        match Hashtbl.find_opt open_spans name with
        | Some start ->
          Hashtbl.remove open_spans name;
          closed := { s_start = start; s_end = cycle; s_name = name } :: !closed
        | None -> ())
      | _ -> ())
    events;
  Hashtbl.iter
    (fun name start ->
      closed := { s_start = start; s_end = horizon; s_name = name } :: !closed)
    open_spans;
  List.sort (fun a b -> compare a.s_start b.s_start) !closed

let letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

let render ?(width = 72) trace =
  if not (Trace.enabled trace) then "(trace disabled: nothing to render)\n"
  else begin
    let n = Trace.num_tracks trace in
    let horizon =
      let m = ref 1 in
      Trace.iter trace (fun ~track:_ ~cycle _ -> if cycle > !m then m := cycle);
      !m
    in
    let per_char = max 1 ((horizon + width - 1) / width) in
    let col cycle = min (width - 1) (cycle / per_char) in
    let legend = Hashtbl.create 8 in
    let next_letter = ref 0 in
    let letter name =
      match Hashtbl.find_opt legend name with
      | Some c -> c
      | None ->
        let c = letters.[!next_letter mod String.length letters] in
        incr next_letter;
        Hashtbl.replace legend name c;
        c
    in
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Printf.sprintf "phase Gantt: cycles 0..%d  (1 char = %d cycle%s)\n"
         horizon per_char
         (if per_char = 1 then "" else "s"));
    let name_w =
      Array.fold_left max 8
        (Array.init n (fun i ->
             String.length (Trace.track_name trace ~track:i)))
    in
    for track = 0 to n - 1 do
      let row = Bytes.make width '.' in
      let events = Trace.events trace ~track in
      List.iter
        (fun sp ->
          let c = letter sp.s_name in
          for i = col sp.s_start to col (max sp.s_start (sp.s_end - 1)) do
            Bytes.set row i c
          done)
        (spans_of_track events ~horizon);
      (* Overlay replans and denied reconfigurations as point marks. *)
      List.iter
        (fun (cycle, ev) ->
          match ev with
          | Event.Replan _ -> Bytes.set row (col cycle) '*'
          | Event.Vl_deny _ -> Bytes.set row (col cycle) '!'
          | _ -> ())
        events;
      Buffer.add_string b
        (Printf.sprintf "%-*s |%s|\n" name_w
           (Trace.track_name trace ~track)
           (Bytes.to_string row))
    done;
    if Hashtbl.length legend > 0 then begin
      Buffer.add_string b "legend: ";
      Buffer.add_string b
        (String.concat "  "
           (List.sort compare
              (Hashtbl.fold
                 (fun name c acc -> Printf.sprintf "%c=%s" c name :: acc)
                 legend [])));
      Buffer.add_string b "   *=replan  !=VL denied\n"
    end;
    Buffer.contents b
  end
