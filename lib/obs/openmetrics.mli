(** OpenMetrics / Prometheus text-format export of simulation results:
    attribution shares ({!Attrib}), the flat {!Counters} registry, and
    {!Histogram} percentiles, rendered as a scrapeable exposition
    ending in [# EOF]. Families render in the order given and samples
    in the order listed, so exports built from sorted sources (e.g.
    {!Counters.to_list}) are deterministic across runs. *)

type sample = {
  s_labels : (string * string) list;  (** label set, possibly empty *)
  s_value : float;
}

type family = {
  fam_name : string;  (** already sanitized; see {!sanitize} *)
  fam_type : [ `Gauge | `Counter | `Summary ];
  fam_help : string;
  fam_samples : sample list;
}

val sanitize : string -> string
(** Map a dotted counter name to a valid metric name: every character
    outside [[a-zA-Z0-9_:]] becomes ['_'], and a leading digit gets a
    ['_'] prefix. *)

val render : family list -> string
(** The full exposition: [# HELP] / [# TYPE] lines per family, one line
    per sample, terminated by [# EOF]. Counter sample lines get the
    [_total] suffix OpenMetrics requires. *)

val of_counters : ?prefix:string -> Counters.t -> family list
(** One gauge family per counter, named [prefix ^ sanitize name]
    (default prefix ["occamy_"]), in sorted-name order with the
    original dotted name as help text. *)

val of_attrib : Attrib.t -> family list
(** [occamy_attrib_cycles] (counter, labels [core]/[bucket]) and
    [occamy_attrib_share] (gauge, percent of the core's cycles), plus
    [occamy_attrib_window_cycles]. Empty for a disabled recorder. *)

val of_histogram : name:string -> help:string -> Histogram.t -> family list
(** A summary family: [name{quantile="0.5|0.9|0.99"}], [name_sum] and
    [name_count], plus a [name_max] gauge. *)

val validate : string -> (unit, string) result
(** Cheap structural parser for tests and CI smoke: every line must be
    a well-formed comment ([# HELP]/[# TYPE]/[# EOF]) or sample line
    with a valid metric name, [# TYPE] must precede its family's
    samples, and the exposition must end with [# EOF]. *)
