(** Preallocated ring-buffer recorder of cycle-stamped {!Event.t}s, with
    one single-writer track per core / lane manager / sweep worker.
    Disabled tracing costs one flag check; guard event construction at
    the call site: [if Trace.enabled tr then Trace.record tr ...]. *)

type t

val create : ?capacity:int -> tracks:string list -> unit -> t
(** An enabled trace with one ring of [capacity] (default 65536) events
    per named track. Raises [Invalid_argument] on a non-positive
    capacity or an empty track list. *)

val disabled : t
(** The shared disabled trace: {!enabled} is [false], {!record} is a
    no-op, and it holds no buffers. *)

val enabled : t -> bool

val record : t -> track:int -> cycle:int -> Event.t -> unit
(** Append to a track's ring, dropping the oldest event when full. A
    track must only ever be written from one domain. *)

val num_tracks : t -> int
val track_name : t -> track:int -> string

val events : t -> track:int -> (int * Event.t) list
(** Retained [(cycle, event)] pairs, oldest first. *)

val dropped : t -> track:int -> int
(** Events lost to ring overflow on this track. *)

val total_events : t -> int
val iter : t -> (track:int -> cycle:int -> Event.t -> unit) -> unit

val for_sim : ?capacity:int -> cores:int -> unit -> t
(** Simulator layout: tracks [core0..core(N-1)] plus a final ["LaneMgr"]
    track ({!lanemgr_track}). *)

val lanemgr_track : t -> int

val for_sweep : ?capacity:int -> workers:int -> unit -> t
(** One track per {!Occamy_util.Domain_pool} worker domain. *)

val sweep_observer :
  ?t0:float ->
  t ->
  label_of:(int -> string) ->
  worker:int ->
  index:int ->
  phase:[ `Start | `Stop | `Steal of int ] ->
  unit
(** Observer for [Domain_pool.map ?observer] recording task spans
    ({!Event.Task_begin}/{!Event.Task_end}) and steal instants
    ({!Event.Task_steal}), stamped in wall-clock microseconds since
    [t0] (default: now). *)
