(** Top-down cycle accounting: every simulated cycle of every core is
    attributed to exactly one cause bucket, in the spirit of Intel's
    top-down microarchitecture analysis. The simulator classifies each
    core once per simulated cycle (and batches whole stretches across
    fast-forward jumps); the per-core bucket sums are conserved — they
    add up to exactly the number of simulated cycles — and the naive
    and fast-forward loops produce bit-identical accounts.

    Like {!Trace} and {!Prof}, attribution is observational: it never
    feeds back into timing, a disabled recorder costs one branch per
    cycle in the simulator, and an enabled one allocates nothing in
    steady state (all storage is preallocated int arrays). *)

(** Cause buckets. [index] follows declaration order, so bucket [i] of
    a counts row is [of_index i]; the simulator's classification
    cascade (first match wins) lives in [Occamy_core.Sim]. *)
type bucket =
  | Issuing  (** at least one uop issued to the co-processor this cycle *)
  | Lane_starved
      (** running with fewer lanes than the manager's current decision
          for this core — the elastic-sharing cost the paper measures *)
  | Reconfig_blocked  (** front-end blocked on a pending [MSR <VL>] *)
  | Rename_stall  (** rename blocked on an empty physical-row freelist *)
  | Lsu_vc  (** own memory in flight, current phase in the vector cache *)
  | Lsu_l2  (** own memory in flight, current phase in the L2 *)
  | Lsu_dram  (** own memory in flight, current phase in DRAM *)
  | Mob_conflict
      (** a ready memory uop held back only by a MOB address conflict *)
  | Exe_latency
      (** window/pool occupied but nothing issued, no memory in flight:
          waiting on compute latency or operand dependencies *)
  | Ctx_switch  (** core preempted (away or draining for a switch) *)
  | Scalar  (** front-end making scalar progress, pipeline empty *)
  | Idle  (** halted and fully drained *)

val all : bucket list
val num_buckets : int

val index : bucket -> int
(** Position of the bucket in [all]; a bijection with [0 .. num_buckets-1]. *)

val of_index : int -> bucket
val name : bucket -> string

val letter : bucket -> char
(** One-character glyph used by {!render_timeseries}. *)

val of_level : Occamy_mem.Level.t -> bucket
(** The LSU-bound bucket for a memory level: [Vec_cache -> Lsu_vc],
    [L2 -> Lsu_l2], [Dram -> Lsu_dram]. *)

type t

val disabled : t
(** Never records anything; [enabled] is [false]. *)

val create : ?window:int -> ?capacity:int -> cores:int -> unit -> t
(** A recorder for [cores] cores. [window] (default 1024 cycles) is the
    time-series sampling window: per-bucket deltas are aggregated over
    all cores for [window] cycles, then pushed into a ring of
    [capacity] (default 512) windows; when the ring wraps, the oldest
    windows are dropped (see {!dropped_windows}) while the cumulative
    per-core counts remain exact. Raises [Invalid_argument] on
    non-positive [cores], [window] or [capacity]. *)

val enabled : t -> bool
val cores : t -> int
val window : t -> int

val add : t -> core:int -> cycle:int -> bucket -> unit
(** Attribute one cycle of [core] to [bucket]. [cycle] is the 1-based
    simulated cycle and must be non-decreasing across calls; it drives
    the window sampler. No-op on a disabled recorder. *)

val add_run_all : t -> start_cycle:int -> len:int -> buckets:int array -> unit
(** Attribute [len] consecutive cycles starting at [start_cycle] for
    every core at once: core [i] gets [len] cycles in bucket index
    [buckets.(i)]. Used by the fast-forward loop to batch a jump; the
    window ring ends up bit-identical to [len] per-cycle {!add} sweeps
    over all cores. No-op on a disabled recorder or [len <= 0]. *)

val count : t -> core:int -> bucket -> int
val core_total : t -> core:int -> int

val total : t -> int
(** Sum over all cores and buckets. *)

val share : t -> core:int -> bucket -> float
(** Percentage of the core's attributed cycles, 0 when none. *)

val counts : t -> int array array
(** Fresh per-core rows of per-bucket cycle counts ([num_buckets] wide);
    [\[||\]] on a disabled recorder. *)

val samples : t -> (int * int array) list
(** Completed windows still retained in the ring, oldest first, as
    [(end_cycle, per-bucket cycle deltas summed over cores)]. *)

val pending : t -> (int * int array) option
(** The current partially-filled window, if it has any cycles. *)

val windows_pushed : t -> int
val dropped_windows : t -> int

val summary_table : ?title:string -> t -> Occamy_util.Table.t
(** Per-core breakdown: one row per (core, bucket) with cycles and
    share, buckets sorted by descending cycles, zero buckets omitted. *)

val render_timeseries : ?width:int -> ?height:int -> t -> string
(** ASCII stacked-area chart of the window ring (plus the pending
    window): time on the x-axis, bucket shares stacked on the y-axis
    using each bucket's {!letter}, with a legend. Adjacent windows are
    merged when there are more than [width] (default 72) columns. *)

val json_fields : ?prefix:string -> t -> (string * Occamy_util.Json.value) list
(** Flat fields [core<i>.attrib.<bucket>] (cycles) and
    [core<i>.attrib.<bucket>.share] plus [attrib.window] /
    [attrib.windows], for bench JSONL lines and JSON exports. *)
