(** Chrome/Perfetto trace-event JSON and CSV exporters for {!Trace.t}:
    one timeline lane per track (cores + LaneMgr), phase spans as B/E
    events, stall/blocked episodes as complete events, the rest as
    instants. Load the JSON in `chrome://tracing` or ui.perfetto.dev. *)

val to_json : ?attrib:Attrib.t -> Trace.t -> string
(** The [{"traceEvents":[...]}] JSON-object form; 1 cycle = 1 us.
    [attrib] (default {!Attrib.disabled}) adds a counter ("C") track of
    per-bucket cycle deltas — one numeric-args event per completed
    sampling window plus the final partial one — that Perfetto renders
    as a stacked area chart above the span lanes. *)

val to_csv : Trace.t -> string
(** [track,cycle,event,core,args] rows, args as [k=v|k=v]. *)

val write_json : ?attrib:Attrib.t -> path:string -> Trace.t -> unit
val write_csv : path:string -> Trace.t -> unit
