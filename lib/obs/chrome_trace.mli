(** Chrome/Perfetto trace-event JSON and CSV exporters for {!Trace.t}:
    one timeline lane per track (cores + LaneMgr), phase spans as B/E
    events, stall/blocked episodes as complete events, the rest as
    instants. Load the JSON in `chrome://tracing` or ui.perfetto.dev. *)

val to_json : Trace.t -> string
(** The [{"traceEvents":[...]}] JSON-object form; 1 cycle = 1 us. *)

val to_csv : Trace.t -> string
(** [track,cycle,event,core,args] rows, args as [k=v|k=v]. *)

val write_json : path:string -> Trace.t -> unit
val write_csv : path:string -> Trace.t -> unit
