(** The typed trace-event schema — every time-resolved behaviour the
    paper argues from (Figs 2, 13-15) as a first-class value.

    Events are *facts about one cycle* (or, for the episode events, a
    closed interval of cycles): the simulator records them, the
    exporters ({!Chrome_trace}) and the Gantt renderer ({!Gantt}) only
    read them. The schema deliberately carries the lane manager's full
    decision context — the per-core decision vector and roofline
    verdicts — so a trace answers "why did the plan change?" without
    re-running the partitioning algorithm. *)

module Oi = Occamy_isa.Oi
module Level = Occamy_mem.Level

(** What made the lane manager replan (§5's phase-changing points plus
    the OS events of §5 "OS context switches"). *)
type replan_cause =
  | Enter_phase  (** a non-zero `MSR <OI>` began a phase *)
  | Exit_phase   (** a zero `MSR <OI>` ended a phase *)
  | Preempt      (** the OS drained and descheduled a task *)
  | Resume       (** the OS restored a task's `<OI>` *)

let replan_cause_name = function
  | Enter_phase -> "enter_phase"
  | Exit_phase -> "exit_phase"
  | Preempt -> "preempt"
  | Resume -> "resume"

type t =
  | Phase_begin of { core : int; phase : string; oi : Oi.t; level : Level.t }
  | Phase_end of { core : int; phase : string }
  | Oi_write of { core : int; oi : Oi.t }
      (** every `MSR <OI>`, including the zero epilogue writes *)
  | Replan of {
      trigger : int;  (** core whose phase change triggered the replan *)
      cause : replan_cause;
      decisions : int array;  (** per-core `<decision>` after the replan *)
      verdicts : string array;
          (** per-core roofline verdict at the decided width
              ({!Occamy_lanemgr.Roofline.bound_name}; ["-"] = inactive) *)
    }
  | Vl_request of { core : int; requested : int }
      (** `MSR <VL>` executed; the grant waits for the drain (§4.2.2) *)
  | Vl_grant of { core : int; granted : int; al : int }
      (** the resource table granted the request; [al] = free lanes after *)
  | Vl_deny of { core : int; requested : int; al : int }
      (** condition (1) failed: not enough free lanes *)
  | Rename_stall of { core : int; start_cycle : int; cycles : int }
      (** a maximal run of cycles stalled waiting for free registers *)
  | Reconfig_blocked of { core : int; start_cycle : int; cycles : int }
      (** front-end blocked between `MSR <VL>` and its resolution *)
  | Mem_transition of { core : int; from_level : Level.t; to_level : Level.t }
      (** the footprint level changed at a phase boundary *)
  | Task_begin of { worker : int; index : int; label : string }
      (** a sweep task started on a {!Occamy_util.Domain_pool} worker *)
  | Task_end of { worker : int; index : int; label : string }
  | Task_steal of { worker : int; victim : int; index : int; label : string }
      (** worker [worker] stole task [index] from [victim]'s deque; an
          instant event preceding the task's {!Task_begin} *)
  | Fault_inject of { core : int; site : string; index : int; lane : int;
                      bit : int }
      (** the fault-decision stream fired at opportunity [index] of
          [core]: a transient bit flip at [site] ("reg", "load" or
          "store"), hitting f32 lane [lane] at bit [bit]. Purely
          observational in the timing simulator — the same pure stream
          drives the value corruption in the functional interpreter *)

let kind = function
  | Phase_begin _ -> "phase_begin"
  | Phase_end _ -> "phase_end"
  | Oi_write _ -> "oi_write"
  | Replan _ -> "replan"
  | Vl_request _ -> "vl_request"
  | Vl_grant _ -> "vl_grant"
  | Vl_deny _ -> "vl_deny"
  | Rename_stall _ -> "rename_stall"
  | Reconfig_blocked _ -> "reconfig_blocked"
  | Mem_transition _ -> "mem_transition"
  | Task_begin _ -> "task_begin"
  | Task_end _ -> "task_end"
  | Task_steal _ -> "task_steal"
  | Fault_inject _ -> "fault_inject"

let core = function
  | Phase_begin { core; _ }
  | Phase_end { core; _ }
  | Oi_write { core; _ }
  | Vl_request { core; _ }
  | Vl_grant { core; _ }
  | Vl_deny { core; _ }
  | Rename_stall { core; _ }
  | Reconfig_blocked { core; _ }
  | Mem_transition { core; _ }
  | Fault_inject { core; _ } -> Some core
  | Replan { trigger; _ } -> Some trigger
  | Task_begin _ | Task_end _ | Task_steal _ -> None

(** Human/CSV-facing key-value rendering of an event's payload. Values
    never contain commas, so they embed directly in CSV cells. *)
let args t =
  let vec a = "[" ^ String.concat ";" (Array.to_list a) ^ "]" in
  (* [Oi.to_string] is "(issue,mem)"; render the pair ;-separated here
     so values stay comma-free. *)
  let oi_str (oi : Oi.t) =
    Printf.sprintf "(%.3g;%.3g)" oi.Oi.issue oi.Oi.mem
  in
  match t with
  | Phase_begin { core; phase; oi; level } ->
    [
      ("core", string_of_int core);
      ("phase", phase);
      ("oi", oi_str oi);
      ("level", Level.to_string level);
    ]
  | Phase_end { core; phase } ->
    [ ("core", string_of_int core); ("phase", phase) ]
  | Oi_write { core; oi } ->
    [ ("core", string_of_int core); ("oi", oi_str oi) ]
  | Replan { trigger; cause; decisions; verdicts } ->
    [
      ("trigger", string_of_int trigger);
      ("cause", replan_cause_name cause);
      ("decisions", vec (Array.map string_of_int decisions));
      ("verdicts", vec verdicts);
    ]
  | Vl_request { core; requested } ->
    [ ("core", string_of_int core); ("requested", string_of_int requested) ]
  | Vl_grant { core; granted; al } ->
    [
      ("core", string_of_int core);
      ("granted", string_of_int granted);
      ("al", string_of_int al);
    ]
  | Vl_deny { core; requested; al } ->
    [
      ("core", string_of_int core);
      ("requested", string_of_int requested);
      ("al", string_of_int al);
    ]
  | Rename_stall { core; start_cycle; cycles }
  | Reconfig_blocked { core; start_cycle; cycles } ->
    [
      ("core", string_of_int core);
      ("start", string_of_int start_cycle);
      ("cycles", string_of_int cycles);
    ]
  | Mem_transition { core; from_level; to_level } ->
    [
      ("core", string_of_int core);
      ("from", Level.to_string from_level);
      ("to", Level.to_string to_level);
    ]
  | Task_begin { worker; index; label } | Task_end { worker; index; label } ->
    [
      ("worker", string_of_int worker);
      ("index", string_of_int index);
      ("label", label);
    ]
  | Task_steal { worker; victim; index; label } ->
    [
      ("worker", string_of_int worker);
      ("victim", string_of_int victim);
      ("index", string_of_int index);
      ("label", label);
    ]
  | Fault_inject { core; site; index; lane; bit } ->
    [
      ("core", string_of_int core);
      ("site", site);
      ("index", string_of_int index);
      ("lane", string_of_int lane);
      ("bit", string_of_int bit);
    ]

(** Closed interval covered by an episode event, if it is one. *)
let duration = function
  | Rename_stall { start_cycle; cycles; _ }
  | Reconfig_blocked { start_cycle; cycles; _ } -> Some (start_cycle, cycles)
  | _ -> None

let pp ppf t =
  Fmt.pf ppf "%s{%s}" (kind t)
    (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) (args t)))
