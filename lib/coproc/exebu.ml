(** The pool of homogeneous basic execution units ([ExeBU]s, §4.2.1).

    Each ExeBU executes 128-bit SIMD µops on [pipes_per_unit] pipelined
    execution pipes, so it accepts up to [pipes_per_unit] µops per cycle.
    A vector compute instruction of width [vl] granules dispatches [vl]
    identical µops, one per owned ExeBU (Figure 6(b)).

    The pool tracks per-unit µop counts for the busy-lane utilisation
    metric of §2 and per-cycle slot occupancy for the dispatcher. *)

type t = {
  units : int;
  pipes_per_unit : int;
  slots : int array;          (* µops accepted in the current cycle *)
  uops : int array;           (* cumulative µops per unit *)
  mutable current_cycle : int;
  (* work counters for the self-profiler's dispatch stage: slot probes
     vs successful issues, i.e. how much of the issue scan is wasted *)
  mutable issue_checks : int;
  mutable issues : int;
}

let create ~units ~pipes_per_unit =
  if units <= 0 || pipes_per_unit <= 0 then invalid_arg "Exebu.create";
  {
    units;
    pipes_per_unit;
    slots = Array.make units 0;
    uops = Array.make units 0;
    current_cycle = -1;
    issue_checks = 0;
    issues = 0;
  }

let units t = t.units
let pipes_per_unit t = t.pipes_per_unit

let begin_cycle t ~cycle =
  if cycle <> t.current_cycle then begin
    Array.fill t.slots 0 t.units 0;
    t.current_cycle <- cycle
  end

(** Can [unit_ids] each accept one more µop this cycle? *)
let can_issue t ~unit_ids =
  t.issue_checks <- t.issue_checks + 1;
  List.for_all
    (fun u ->
      if u < 0 || u >= t.units then invalid_arg "Exebu.can_issue";
      t.slots.(u) < t.pipes_per_unit)
    unit_ids

(** Book one µop on each of [unit_ids] for the current cycle. *)
let issue t ~unit_ids =
  if not (can_issue t ~unit_ids) then invalid_arg "Exebu.issue: no slot free";
  t.issues <- t.issues + 1;
  List.iter
    (fun u ->
      t.slots.(u) <- t.slots.(u) + 1;
      t.uops.(u) <- t.uops.(u) + 1)
    unit_ids

(* Allocation-free probe over the first [n] entries of an int array of
   unit ids — the dispatcher's issue scan runs on this path every cycle,
   and the closure the list version allocates per call was a measurable
   slice of the ~44% dispatch share the self-profiler reported. *)
let rec probe t ids n i =
  i >= n
  ||
  let u = ids.(i) in
  if u < 0 || u >= t.units then invalid_arg "Exebu.can_issue";
  t.slots.(u) < t.pipes_per_unit && probe t ids n (i + 1)

(** Array variant of {!can_issue} over [unit_ids.(0 .. n-1)];
    counter-identical (one slot probe per call) and allocation-free. *)
let can_issue_arr t ~unit_ids ~n =
  t.issue_checks <- t.issue_checks + 1;
  probe t unit_ids n 0

(** Array variant of {!issue}; like {!issue} it re-probes internally, so
    a successful issue costs two {!issue_checks} on either API. *)
let issue_arr t ~unit_ids ~n =
  if not (can_issue_arr t ~unit_ids ~n) then
    invalid_arg "Exebu.issue: no slot free";
  t.issues <- t.issues + 1;
  for i = 0 to n - 1 do
    let u = unit_ids.(i) in
    t.slots.(u) <- t.slots.(u) + 1;
    t.uops.(u) <- t.uops.(u) + 1
  done

let uops_executed t = Array.fold_left ( + ) 0 t.uops
let uops_of_unit t u = t.uops.(u)
let issue_checks t = t.issue_checks
let issues t = t.issues
