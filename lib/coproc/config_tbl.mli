(** Ownership configuration tables (the two [ConfigTbl]s of §4.2.1): which
    core owns each ExeBU ([Dispatcher.Cfg]) / RegBlk ([RegFile.Cfg]).
    ExeBU i is wired to RegBlk i and they move together. *)

type owner = Free | Core of int

type t

val create : name:string -> units:int -> t
val units : t -> int
val owner : t -> int -> owner
val owned_by : t -> core:int -> int list
val count_owned : t -> core:int -> int

val owned_into : t -> core:int -> int array -> int
(** Allocation-free {!owned_by}: writes the owned unit indices into the
    buffer (increasing order) and returns how many were written. The
    buffer must hold at least [units t] elements. *)

val count_free : t -> int

val reassign : t -> core:int -> count:int -> unit
(** Free everything the core held, then claim [count] free units (lowest
    indices first). Raises when not enough are free — the resource table
    must have granted first. *)

val release_all : t -> core:int -> unit

val consistent_with : t -> int array -> bool
(** Per-core ownership counts match the expected `<VL>` column. *)

val pp : Format.formatter -> t -> unit
