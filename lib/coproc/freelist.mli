(** Physical-register-row freelist for the renamer.

    Spatial sharing gives each core an independent freelist over its own
    RegBlks (capacity [depth - pinned]); temporal sharing (FTS) makes all
    cores share one full-width freelist with every core's architectural
    state pinned — the register pressure behind Figure 13. *)

type t

val create : name:string -> depth:int -> pinned:int -> t
val capacity : t -> int
val in_use : t -> int
val free : t -> int
val name : t -> string

val alloc : t -> bool
(** [false] = rename stall this cycle (counted). *)

val release : t -> unit
val release_all : t -> unit

val record_failures : t -> count:int -> unit
(** Record [count] failed allocation attempts in one batch — the
    fast-forward path's equivalent of [count] failing {!alloc} calls
    across skipped stall cycles. *)

val failed_allocs : t -> int
val peak_in_use : t -> int
