(** Per-core load/store unit.

    Holds the in-flight vector memory operations (the paper's LHQ/LMQ/STQ
    collapsed into one occupancy-limited queue per direction) and retires
    them when the memory hierarchy signals completion. Occupancy limits
    bound the memory-level parallelism a core can extract, which, together
    with the hierarchy's bandwidth channels, determines whether a phase is
    latency-, bandwidth- or issue-bound.

    Data-oriented layout: each direction is a binary min-heap on
    completion cycle held in preallocated parallel int arrays
    ([done_at] keys, MOB handles as payload). Retirement pops entries
    while the root is due — O(completions · log occupancy) instead of
    the occupancy-proportional sweep this replaces — and the
    fast-forward horizon reads the next completion straight off the
    root in O(1). Steady-state operation allocates nothing. *)

type t = {
  load_capacity : int;
  store_capacity : int;
  (* per-direction completion heaps *)
  l_done : int array;
  l_mob : int array;
  mutable l_n : int;
  s_done : int array;
  s_mob : int array;
  mutable s_n : int;
  mutable total_issued : int;
  mutable peak_loads : int;
  mutable peak_stores : int;
  (* work counters for the self-profiler's Lsu_retire stage: how many
     retire scans ran and how many completions they found, so stage
     time can be read as ns per scan / per retired op *)
  mutable retire_calls : int;
  mutable retired : int;
}

let create ?(load_capacity = 48) ?(store_capacity = 24) () =
  if load_capacity <= 0 || store_capacity <= 0 then
    invalid_arg "Lsu.create: capacities must be positive";
  {
    load_capacity;
    store_capacity;
    l_done = Array.make load_capacity 0;
    l_mob = Array.make load_capacity (-1);
    l_n = 0;
    s_done = Array.make store_capacity 0;
    s_mob = Array.make store_capacity (-1);
    s_n = 0;
    total_issued = 0;
    peak_loads = 0;
    peak_stores = 0;
    retire_calls = 0;
    retired = 0;
  }

let[@inline] can_accept t ~is_store =
  if is_store then t.s_n < t.store_capacity else t.l_n < t.load_capacity

(* Classic array-heap sift operations over the (done, mob) pairs. *)
let rec sift_up done_a mob_a i =
  if i > 0 then begin
    let p = (i - 1) asr 1 in
    if done_a.(p) > done_a.(i) then begin
      let d = done_a.(p) and m = mob_a.(p) in
      done_a.(p) <- done_a.(i);
      mob_a.(p) <- mob_a.(i);
      done_a.(i) <- d;
      mob_a.(i) <- m;
      sift_up done_a mob_a p
    end
  end

let rec sift_down done_a mob_a n i =
  let l = (2 * i) + 1 in
  if l < n then begin
    let c = if l + 1 < n && done_a.(l + 1) < done_a.(l) then l + 1 else l in
    if done_a.(c) < done_a.(i) then begin
      let d = done_a.(c) and m = mob_a.(c) in
      done_a.(c) <- done_a.(i);
      mob_a.(c) <- mob_a.(i);
      done_a.(i) <- d;
      mob_a.(i) <- m;
      sift_down done_a mob_a n c
    end
  end

(** [add_slot] is the simulator's allocation-free entry point; [mob] is a
    MOB slot handle or [-1] for none. *)
let add_slot t ~done_at ~is_store ~mob =
  if is_store then begin
    if t.s_n = t.store_capacity then invalid_arg "Lsu.add: queue full";
    let i = t.s_n in
    t.s_n <- i + 1;
    t.s_done.(i) <- done_at;
    t.s_mob.(i) <- mob;
    sift_up t.s_done t.s_mob i;
    if t.s_n > t.peak_stores then t.peak_stores <- t.s_n
  end
  else begin
    if t.l_n = t.load_capacity then invalid_arg "Lsu.add: queue full";
    let i = t.l_n in
    t.l_n <- i + 1;
    t.l_done.(i) <- done_at;
    t.l_mob.(i) <- mob;
    sift_up t.l_done t.l_mob i;
    if t.l_n > t.peak_loads then t.peak_loads <- t.l_n
  end;
  t.total_issued <- t.total_issued + 1

let add t ~done_at ~is_store ~mob_id =
  add_slot t ~done_at ~is_store
    ~mob:(match mob_id with Some id -> id | None -> -1)

(* Pop one direction's due completions into [buf] starting at [k];
   returns the new [k]. The heap order makes this a root test per
   remaining entry — no occupancy sweep. *)
let rec pop_loads t ~now buf k =
  if t.l_n > 0 && t.l_done.(0) <= now then begin
    let m = t.l_mob.(0) in
    t.l_n <- t.l_n - 1;
    t.l_done.(0) <- t.l_done.(t.l_n);
    t.l_mob.(0) <- t.l_mob.(t.l_n);
    sift_down t.l_done t.l_mob t.l_n 0;
    t.retired <- t.retired + 1;
    if m >= 0 then begin
      buf.(k) <- m;
      pop_loads t ~now buf (k + 1)
    end
    else pop_loads t ~now buf k
  end
  else k

let rec pop_stores t ~now buf k =
  if t.s_n > 0 && t.s_done.(0) <= now then begin
    let m = t.s_mob.(0) in
    t.s_n <- t.s_n - 1;
    t.s_done.(0) <- t.s_done.(t.s_n);
    t.s_mob.(0) <- t.s_mob.(t.s_n);
    sift_down t.s_done t.s_mob t.s_n 0;
    t.retired <- t.retired + 1;
    if m >= 0 then begin
      buf.(k) <- m;
      pop_stores t ~now buf (k + 1)
    end
    else pop_stores t ~now buf k
  end
  else k

(** Retire completed entries into [into] (their MOB handles; must hold at
    least [load_capacity + store_capacity] elements); returns how many
    handles were written. Completions without a MOB handle are retired
    and counted but not reported. *)
let retire_into t ~now ~into =
  t.retire_calls <- t.retire_calls + 1;
  pop_stores t ~now into (pop_loads t ~now into 0)

(** List-returning convenience wrapper around {!retire_into}. *)
let retire t ~now =
  let buf = Array.make (t.load_capacity + t.store_capacity) (-1) in
  let n = retire_into t ~now ~into:buf in
  Array.to_list (Array.sub buf 0 n)

(** Earliest cycle at which any in-flight operation completes; [max_int]
    when drained. Read off the heap roots in O(1); bounds the
    fast-forward event horizon. *)
let next_done_at t =
  let l = if t.l_n > 0 then t.l_done.(0) else max_int in
  let s = if t.s_n > 0 then t.s_done.(0) else max_int in
  if s < l then s else l

let outstanding t = t.l_n + t.s_n
let outstanding_loads t = t.l_n
let outstanding_stores t = t.s_n
let total_issued t = t.total_issued

(** High-water occupancy marks: how much memory-level parallelism the
    core actually extracted vs the capacity it was given. *)
let peak_loads t = t.peak_loads

let peak_stores t = t.peak_stores

let[@inline] is_drained t = t.l_n = 0 && t.s_n = 0
let retire_calls t = t.retire_calls
let retired t = t.retired
