(** Per-core load/store unit.

    Holds the in-flight vector memory operations (the paper's LHQ/LMQ/STQ
    collapsed into one occupancy-limited queue per direction) and retires
    them when the memory hierarchy signals completion. Occupancy limits
    bound the memory-level parallelism a core can extract, which, together
    with the hierarchy's bandwidth channels, determines whether a phase is
    latency-, bandwidth- or issue-bound. *)

type entry = { done_at : int; is_store : bool; mob_id : int option }

type t = {
  load_capacity : int;
  store_capacity : int;
  mutable loads : entry list;
  mutable stores : entry list;
  mutable total_issued : int;
  mutable peak_loads : int;
  mutable peak_stores : int;
  (* work counters for the self-profiler's Lsu_retire stage: how many
     retire scans ran and how many completions they found, so stage
     time can be read as ns per scan / per retired op *)
  mutable retire_calls : int;
  mutable retired : int;
}

let create ?(load_capacity = 48) ?(store_capacity = 24) () =
  {
    load_capacity;
    store_capacity;
    loads = [];
    stores = [];
    total_issued = 0;
    peak_loads = 0;
    peak_stores = 0;
    retire_calls = 0;
    retired = 0;
  }

let can_accept t ~is_store =
  if is_store then List.length t.stores < t.store_capacity
  else List.length t.loads < t.load_capacity

let add t ~done_at ~is_store ~mob_id =
  if not (can_accept t ~is_store) then invalid_arg "Lsu.add: queue full";
  let e = { done_at; is_store; mob_id } in
  if is_store then begin
    t.stores <- e :: t.stores;
    t.peak_stores <- max t.peak_stores (List.length t.stores)
  end
  else begin
    t.loads <- e :: t.loads;
    t.peak_loads <- max t.peak_loads (List.length t.loads)
  end;
  t.total_issued <- t.total_issued + 1

(** Remove completed entries; returns the MOB ids to deallocate. The
    nothing-completed case is the common one on stall-heavy cycles, so it
    is detected first without allocating. *)
let retire t ~now =
  t.retire_calls <- t.retire_calls + 1;
  let completed e = e.done_at <= now in
  if not (List.exists completed t.loads || List.exists completed t.stores)
  then []
  else begin
    let split l = List.partition completed l in
    let done_l, loads = split t.loads in
    let done_s, stores = split t.stores in
    t.loads <- loads;
    t.stores <- stores;
    t.retired <- t.retired + List.length done_l + List.length done_s;
    List.filter_map (fun e -> e.mob_id) (done_l @ done_s)
  end

(** Earliest cycle at which any in-flight operation completes; [max_int]
    when drained. Used to bound the fast-forward event horizon. *)
let next_done_at t =
  let min_done acc e = if e.done_at < acc then e.done_at else acc in
  List.fold_left min_done
    (List.fold_left min_done max_int t.loads)
    t.stores

let outstanding t = List.length t.loads + List.length t.stores
let outstanding_loads t = List.length t.loads
let outstanding_stores t = List.length t.stores
let total_issued t = t.total_issued

(** High-water occupancy marks: how much memory-level parallelism the
    core actually extracted vs the capacity it was given. *)
let peak_loads t = t.peak_loads

let peak_stores t = t.peak_stores
let is_drained t = t.loads = [] && t.stores = []
let retire_calls t = t.retire_calls
let retired t = t.retired
