(** Per-core load/store unit: occupancy-limited queues of in-flight vector
    memory operations, retired on memory-system completion. Occupancy
    bounds the memory-level parallelism a core can extract. *)

type t

val create : ?load_capacity:int -> ?store_capacity:int -> unit -> t
val can_accept : t -> is_store:bool -> bool
val add : t -> done_at:int -> is_store:bool -> mob_id:int option -> unit

val add_slot : t -> done_at:int -> is_store:bool -> mob:int -> unit
(** Allocation-free {!add}; [mob] is a MOB slot handle or [-1] for none.
    The simulator's hot-path entry point. *)

val retire : t -> now:int -> int list
(** Remove completed entries; returns their MOB ids to deallocate. *)

val retire_into : t -> now:int -> into:int array -> int
(** Allocation-free {!retire}: writes the MOB handles of completed
    entries into [into] (sized at least load+store capacity) and returns
    how many were written. Completions without a handle are retired and
    counted but not reported. *)

val next_done_at : t -> int
(** Earliest completion cycle among in-flight operations; [max_int] when
    drained. Bounds the fast-forward event horizon. *)

val outstanding : t -> int
val outstanding_loads : t -> int
val outstanding_stores : t -> int
val total_issued : t -> int

val peak_loads : t -> int
(** High-water load-queue occupancy — the memory-level parallelism the
    core actually reached against [load_capacity]. *)

val peak_stores : t -> int

val is_drained : t -> bool
(** No in-flight memory operations — part of the §4.2.2 drain condition. *)

val retire_calls : t -> int
(** How many {!retire} scans ran — the work count behind the
    self-profiler's [lsu_retire] stage ({!Occamy_obs.Prof}), so stage
    time can be read as ns per scan. *)

val retired : t -> int
(** Completions those scans found (loads + stores). *)
