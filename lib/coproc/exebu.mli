(** The pool of homogeneous basic execution units ([ExeBU]s, §4.2.1), each
    accepting [pipes_per_unit] 128-bit µops per cycle. A vector compute
    instruction of width [vl] granules dispatches one µop to each of its
    core's [vl] ExeBUs (Figure 6(b)). *)

type t

val create : units:int -> pipes_per_unit:int -> t
val units : t -> int
val pipes_per_unit : t -> int

val begin_cycle : t -> cycle:int -> unit
(** Reset the per-cycle slot counters (idempotent per cycle). *)

val can_issue : t -> unit_ids:int list -> bool
val issue : t -> unit_ids:int list -> unit

val can_issue_arr : t -> unit_ids:int array -> n:int -> bool
(** {!can_issue} over [unit_ids.(0 .. n-1)] — allocation-free and
    counter-identical (one slot probe per call); the dispatcher's
    hot-path entry point. *)

val issue_arr : t -> unit_ids:int array -> n:int -> unit
(** {!issue} over [unit_ids.(0 .. n-1)]; re-probes internally like
    {!issue}, so a successful issue costs two {!issue_checks}. *)

val uops_executed : t -> int
val uops_of_unit : t -> int -> int

val issue_checks : t -> int
(** Slot probes ({!can_issue} calls, including the one inside each
    {!issue}) — the work count behind the self-profiler's [dispatch]
    stage: compared with {!issues} it shows how much of the issue scan
    probes without issuing. *)

val issues : t -> int
(** Successful {!issue} calls (instructions, not µops). *)
