(** Ownership configuration tables, the two [ConfigTbl]s of §4.2.1.

    One instance records which core owns each ExeBU ([Dispatcher.Cfg]),
    another which core owns each RegBlk ([RegFile.Cfg]). Each entry ranges
    over {free, core0, core1, ...}. Because every ExeBU is wired to a
    distinct RegBlk and "both are always assigned to the same scalar core
    together", the simulator keeps the two tables in lock-step; the type
    is shared.

    Invariant (tested): no unit is owned by two cores, and the per-core
    counts always match the resource table's `<VL>` values. *)

type owner = Free | Core of int

type t = { name : string; owners : owner array }

let create ~name ~units =
  if units <= 0 then invalid_arg "Config_tbl.create";
  { name; owners = Array.make units Free }

let units t = Array.length t.owners

let owner t u =
  if u < 0 || u >= units t then invalid_arg "Config_tbl.owner";
  t.owners.(u)

let owned_by t ~core =
  let acc = ref [] in
  for u = units t - 1 downto 0 do
    if t.owners.(u) = Core core then acc := u :: !acc
  done;
  !acc

(* Closure-free count: [consistent_with] runs inside the simulator's
   periodic invariant check, which sits on the zero-allocation path. *)
let rec count_owned_from owners core u acc =
  if u >= Array.length owners then acc
  else
    count_owned_from owners core (u + 1)
      (match owners.(u) with Core c when c = core -> acc + 1 | _ -> acc)

let count_owned t ~core = count_owned_from t.owners core 0 0

(** Write the unit indices core [core] owns into [buf] (increasing
    order); returns how many. Allocation-free [owned_by] for the
    dispatcher's cached per-core unit arrays. *)
let rec owned_fill owners core buf u k =
  if u >= Array.length owners then k
  else
    match owners.(u) with
    | Core c when c = core ->
        buf.(k) <- u;
        owned_fill owners core buf (u + 1) (k + 1)
    | _ -> owned_fill owners core buf (u + 1) k

let owned_into t ~core buf = owned_fill t.owners core buf 0 0

let count_free t =
  Array.fold_left (fun n o -> if o = Free then n + 1 else n) 0 t.owners

(** Reconfigure core [core] to own exactly [count] units: free everything
    it held, then claim [count] free units (lowest indices first, matching
    the deterministic hardware allocator). Raises if not enough units are
    free — the resource table must have granted the request first. *)
let reassign t ~core ~count =
  if count < 0 then invalid_arg "Config_tbl.reassign: negative count";
  Array.iteri
    (fun u o -> if o = Core core then t.owners.(u) <- Free)
    t.owners;
  if count_free t < count then
    invalid_arg
      (Printf.sprintf "Config_tbl.reassign(%s): %d units requested, %d free"
         t.name count (count_free t));
  let remaining = ref count in
  Array.iteri
    (fun u o ->
      if !remaining > 0 && o = Free then begin
        t.owners.(u) <- Core core;
        decr remaining
      end)
    t.owners;
  assert (!remaining = 0)

let release_all t ~core = reassign t ~core ~count:0

(** No unit owned twice is structural; check per-core counts against an
    expected vector (the resource table's `<VL>` column). *)
let rec consistent_from t expected_counts c =
  c >= Array.length expected_counts
  || count_owned t ~core:c = expected_counts.(c)
     && consistent_from t expected_counts (c + 1)

let consistent_with t expected_counts = consistent_from t expected_counts 0

let pp ppf t =
  Fmt.pf ppf "%s[" t.name;
  Array.iteri
    (fun u o ->
      if u > 0 then Fmt.string ppf " ";
      match o with
      | Free -> Fmt.pf ppf "%d:free" u
      | Core c -> Fmt.pf ppf "%d:c%d" u c)
    t.owners;
  Fmt.string ppf "]"
