(** Physical-register-row freelist for the renamer.

    The register file is split into RegBlks of [depth] rows of 128-bit
    physical vector registers (160 in the evaluated configuration,
    §4.2.1); a renamed instruction allocates one *row* — the same index
    across every RegBlk its core owns — and holds it until commit.

    Sharing policy is what differentiates the architectures (§2.1, §7.3):

    - spatial sharing (Private / VLS / Occamy): each core renames into its
      own RegBlks, so each core gets an independent freelist of
      [depth - pinned] rows, where [pinned] covers its architectural
      state. Splitting a VRF *entry* between cores costs nothing because
      the blocks are disjoint.
    - temporal sharing (FTS): every instruction is full-width, so a row
      must be free in *all* RegBlks simultaneously — one shared freelist —
      and every core's architectural state pins rows in it. This is the
      register pressure that produces Figure 13's rename-stall cycles.

    Rows are fungible, so a counting model suffices; the stall accounting
    (attempted allocations that failed) feeds the Figure 13 metric. *)

type t = {
  name : string;
  capacity : int;  (* rows available for in-flight destinations *)
  mutable in_use : int;
  mutable failed_allocs : int;
  mutable peak : int;
}

let create ~name ~depth ~pinned =
  if depth <= 0 || pinned < 0 || pinned >= depth then
    invalid_arg "Freelist.create";
  { name; capacity = depth - pinned; in_use = 0; failed_allocs = 0; peak = 0 }

let capacity t = t.capacity
let in_use t = t.in_use
let free t = t.capacity - t.in_use
let name t = t.name

(** Allocate one row; [false] means the renamer must stall this cycle. *)
let alloc t =
  if t.in_use >= t.capacity then begin
    t.failed_allocs <- t.failed_allocs + 1;
    false
  end
  else begin
    t.in_use <- t.in_use + 1;
    if t.in_use > t.peak then t.peak <- t.in_use;
    true
  end

let release t =
  if t.in_use <= 0 then invalid_arg "Freelist.release: nothing allocated";
  t.in_use <- t.in_use - 1

(** Drop all in-flight rows (used on pipeline drain + reconfiguration:
    the freed RegBlks' contents are not preserved, §4.2.2). *)
let release_all t = t.in_use <- 0

(** Batch form of the stall accounting: [count] allocation attempts that
    would all have failed (the freelist is exhausted and nothing releases
    in between), recorded without [count] calls to {!alloc}. Lets the
    fast-forward path keep the Figure 13 counters exact across skipped
    cycles. *)
let record_failures t ~count =
  if count < 0 then invalid_arg "Freelist.record_failures: negative count";
  t.failed_allocs <- t.failed_allocs + count

let failed_allocs t = t.failed_allocs
let peak_in_use t = t.peak
