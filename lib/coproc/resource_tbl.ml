(** The on-chip resource table, [ResourceTbl] in Figures 3 and 5.

    It holds (4*C + 1) registers: per core the four dedicated registers
    `<OI>`, `<decision>`, `<VL>`, `<status>`, plus the shared `<AL>`.

    The table is the arbiter for vector-length reconfiguration: a
    `MSR <VL>, l` from core [c] succeeds iff [c.<VL> + <AL> >= l]
    (§4.2.2, condition (1); the pipeline-drain condition (2) is checked by
    the simulator before calling [try_set_vl]). On success the registers
    update atomically and the invariant [<AL> + sum of <VL>s = total]
    holds; this invariant is property-tested against arbitrary operation
    sequences. *)

type t = {
  total : int;  (* ExeBUs managed by the table *)
  cores : int;
  vl : int array;
  status : int array;
  decision : int array;
  oi : Occamy_isa.Oi.t array;
  mutable al : int;
}

let create ~total ~cores =
  if total <= 0 || cores <= 0 then invalid_arg "Resource_tbl.create";
  {
    total;
    cores;
    vl = Array.make cores 0;
    status = Array.make cores 0;
    decision = Array.make cores 0;
    oi = Array.make cores Occamy_isa.Oi.zero;
    al = total;
  }

let check_core t core =
  if core < 0 || core >= t.cores then invalid_arg "Resource_tbl: bad core id"

let vl t ~core = check_core t core; t.vl.(core)
let status t ~core = check_core t core; t.status.(core)
let decision t ~core = check_core t core; t.decision.(core)
let oi t ~core = check_core t core; t.oi.(core)
let al t = t.al
let total t = t.total
let cores t = t.cores

let set_decision t ~core d =
  check_core t core;
  if d < 0 || d > t.total then invalid_arg "Resource_tbl.set_decision";
  t.decision.(core) <- d

let set_oi t ~core v = check_core t core; t.oi.(core) <- v

(** Attempt the atomic update of §4.2.2. Returns [true] (and sets
    `<status>` to 1) when the requested number of lanes was available;
    [false] (status 0) otherwise. [l = 0] releases all lanes and always
    succeeds. *)
let try_set_vl t ~core l =
  check_core t core;
  if l < 0 || l > t.total then invalid_arg "Resource_tbl.try_set_vl: bad length";
  if t.vl.(core) + t.al >= l then begin
    t.al <- t.vl.(core) + t.al - l;
    t.vl.(core) <- l;
    t.status.(core) <- 1;
    true
  end
  else begin
    t.status.(core) <- 0;
    false
  end

(* Closure-free scan: non-negative entries and their sum in one pass.
   [invariant_holds] runs inside the simulator's periodic invariant
   check, which sits on the zero-allocation path (iterator closures over
   [t.vl] allocate per call). Returns -1 on a negative entry. *)
let rec sum_nonneg vl i acc =
  if i >= Array.length vl then acc
  else if vl.(i) < 0 then -1
  else sum_nonneg vl (i + 1) (acc + vl.(i))

(** The conservation invariant: free lanes plus allocated lanes equal the
    machine's total. *)
let invariant_holds t =
  t.al >= 0
  &&
  let s = sum_nonneg t.vl 0 0 in
  s >= 0 && t.al + s = t.total

let pp ppf t =
  Fmt.pf ppf "ResourceTbl{AL=%d;" t.al;
  Array.iteri
    (fun c v ->
      Fmt.pf ppf " core%d:<VL>=%d,<decision>=%d,<status>=%d,<OI>=%a;" c v
        t.decision.(c) t.status.(c) Occamy_isa.Oi.pp t.oi.(c))
    t.vl;
  Fmt.pf ppf "}"
