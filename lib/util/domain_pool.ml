(** Parallel map over OCaml 5 domains — see the interface for the
    contract. The implementation is a flat work-stealing-free design:
    one shared atomic cursor over the task array, grabbed in chunks so
    that 25-element sweeps do not contend on every task, with results
    and errors written into per-index slots (each slot has exactly one
    writer, so no synchronisation beyond the cursor is needed). *)

type error = { index : int; exn : exn; bt : Printexc.raw_backtrace }

type observer = worker:int -> index:int -> phase:[ `Start | `Stop ] -> unit

let recommended_jobs ?(cap = 16) () =
  max 1 (min cap (Domain.recommended_domain_count ()))

let jobs_from_env ?(var = "OCCAMY_JOBS") () =
  match Sys.getenv_opt var with
  | None | Some "" -> recommended_jobs ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None -> recommended_jobs ())

(* Chunk size: enough chunks that the fastest worker can grab more work
   than an even split would give it, few enough that the cursor is not
   hammered per-task. *)
let chunk_size ~tasks ~workers = max 1 (tasks / (workers * 4))

(* No-op task observer: the default keeps the hot path free of option
   checks inside the per-task loop. *)
let no_observer ~worker:_ ~index:_ ~phase:_ = ()

let map_array ?jobs ?(observer = no_observer) f tasks =
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  if jobs < 1 then invalid_arg "Domain_pool.map: jobs must be >= 1";
  if jobs = 1 || n <= 1 then
    Array.mapi
      (fun i task ->
        observer ~worker:0 ~index:i ~phase:`Start;
        let v = f task in
        observer ~worker:0 ~index:i ~phase:`Stop;
        v)
      tasks
  else begin
    let workers = min jobs n in
    let results = Array.make n None in
    let errors = Array.make n None in
    let cursor = Atomic.make 0 in
    let chunk = chunk_size ~tasks:n ~workers in
    let worker w =
      let continue_ = ref true in
      while !continue_ do
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then continue_ := false
        else
          for i = start to min (start + chunk) n - 1 do
            observer ~worker:w ~index:i ~phase:`Start;
            (match f tasks.(i) with
            | v -> results.(i) <- Some v
            | exception exn ->
              let bt = Printexc.get_raw_backtrace () in
              errors.(i) <- Some { index = i; exn; bt });
            observer ~worker:w ~index:i ~phase:`Stop
          done
      done
    in
    let domains = Array.init workers (fun w -> Domain.spawn (fun () -> worker w)) in
    Array.iter Domain.join domains;
    (* Deterministic failure: the lowest-index error wins. *)
    Array.iter
      (function
        | Some e -> Printexc.raise_with_backtrace e.exn e.bt
        | None -> ())
      errors;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every slot written or an error raised *))
      results
  end

let map ?jobs ?observer f xs =
  match xs with
  | [] -> []
  | xs -> Array.to_list (map_array ?jobs ?observer f (Array.of_list xs))
