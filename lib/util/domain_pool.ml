(* Facade over the {!Work_steal} pool — see the interface for the
   contract. Policy lives here (elastic worker cap, env knobs, the
   shared pool singleton, cumulative totals); mechanism lives in
   Work_steal. *)

let recommended_jobs ?(cap = 16) () =
  max 1 (min cap (Domain.recommended_domain_count ()))

let default_warning msg = Printf.eprintf "occamy: %s\n%!" msg

let jobs_from_env ?(var = "OCCAMY_JOBS") ?cap
    ?(on_warning = default_warning) () =
  match Sys.getenv_opt var with
  | None | Some "" -> recommended_jobs ?cap ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None ->
      let fallback = recommended_jobs ?cap () in
      on_warning
        (Printf.sprintf
           "ignoring %s=%S (expected a positive integer); using %d" var s
           fallback);
      fallback)

let effective_workers ~oversubscribe ~cores ~jobs ~tasks =
  let w = max 1 (min jobs tasks) in
  if oversubscribe then w else min w (max 1 cores)

let oversubscribe_from_env () =
  match Sys.getenv_opt "OCCAMY_OVERSUBSCRIBE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let minor_heap_mult_from_env () =
  match Sys.getenv_opt "OCCAMY_MINOR_HEAP_MULT" with
  | None | Some "" -> 16
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some m when m >= 1 -> m
    | Some _ | None -> 16)

type observer =
  worker:int -> index:int -> phase:[ `Start | `Stop | `Steal of int ] -> unit

type stats = Work_steal.stats = {
  st_workers : int;
  st_tasks : int;
  st_per_worker : Work_steal.worker_stats array;
}

(* ------------------------------------------------------------------ *)
(* The shared pool                                                     *)
(* ------------------------------------------------------------------ *)

let pool_ref = ref None
let pool_mutex = Mutex.create ()

let the_pool () =
  Mutex.lock pool_mutex;
  let p =
    match !pool_ref with
    | Some p -> p
    | None ->
      let mult = minor_heap_mult_from_env () in
      let p = Work_steal.create ~minor_heap_mult:mult () in
      (* The caller participates as worker 0, and spawned workers can
         only be joined from here, so tie both to this domain. *)
      Work_steal.inflate_minor_heap mult;
      at_exit (fun () -> Work_steal.shutdown p);
      pool_ref := Some p;
      p
  in
  Mutex.unlock pool_mutex;
  p

let pool_size () =
  Mutex.lock pool_mutex;
  let n = match !pool_ref with Some p -> Work_steal.size p | None -> 1 in
  Mutex.unlock pool_mutex;
  n

(* ------------------------------------------------------------------ *)
(* Cumulative totals                                                   *)
(* ------------------------------------------------------------------ *)

type totals = {
  t_maps : int;
  t_tasks : int;
  t_max_workers : int;
  t_steals : int;
  t_steal_attempts : int;
  t_minor_collections : int;
  t_major_collections : int;
  t_minor_words : float;
  t_promoted_words : float;
  t_per_worker : Work_steal.worker_stats array;
}

let totals_mutex = Mutex.create ()
let t_maps = ref 0
let t_per_worker : Work_steal.worker_stats array ref = ref [||]

let reset_totals () =
  Mutex.lock totals_mutex;
  t_maps := 0;
  t_per_worker := [||];
  Mutex.unlock totals_mutex

let record_totals (s : stats) =
  Mutex.lock totals_mutex;
  incr t_maps;
  let w = s.st_workers in
  if Array.length !t_per_worker < w then begin
    let bigger = Array.make w Work_steal.zero_worker_stats in
    Array.blit !t_per_worker 0 bigger 0 (Array.length !t_per_worker);
    t_per_worker := bigger
  end;
  Array.iteri
    (fun i (ws : Work_steal.worker_stats) ->
      let a = !t_per_worker.(i) in
      !t_per_worker.(i) <-
        {
          Work_steal.ws_tasks = a.Work_steal.ws_tasks + ws.Work_steal.ws_tasks;
          ws_steals = a.Work_steal.ws_steals + ws.Work_steal.ws_steals;
          ws_steal_attempts =
            a.Work_steal.ws_steal_attempts + ws.Work_steal.ws_steal_attempts;
          ws_minor_collections =
            a.Work_steal.ws_minor_collections
            + ws.Work_steal.ws_minor_collections;
          ws_major_collections =
            a.Work_steal.ws_major_collections
            + ws.Work_steal.ws_major_collections;
          ws_minor_words =
            a.Work_steal.ws_minor_words +. ws.Work_steal.ws_minor_words;
          ws_promoted_words =
            a.Work_steal.ws_promoted_words +. ws.Work_steal.ws_promoted_words;
        })
    s.st_per_worker;
  Mutex.unlock totals_mutex

let totals () =
  Mutex.lock totals_mutex;
  let per_worker = Array.copy !t_per_worker in
  let maps = !t_maps in
  Mutex.unlock totals_mutex;
  let sum =
    Work_steal.sum_stats
      {
        st_workers = Array.length per_worker;
        st_tasks = 0;
        st_per_worker = per_worker;
      }
  in
  {
    t_maps = maps;
    t_tasks = sum.Work_steal.ws_tasks;
    t_max_workers = Array.length per_worker;
    t_steals = sum.Work_steal.ws_steals;
    t_steal_attempts = sum.Work_steal.ws_steal_attempts;
    t_minor_collections = sum.Work_steal.ws_minor_collections;
    t_major_collections = sum.Work_steal.ws_major_collections;
    t_minor_words = sum.Work_steal.ws_minor_words;
    t_promoted_words = sum.Work_steal.ws_promoted_words;
    t_per_worker = per_worker;
  }

(* ------------------------------------------------------------------ *)
(* map                                                                 *)
(* ------------------------------------------------------------------ *)

(* No-op task observer: the default keeps the hot path free of option
   checks inside the per-task loop. *)
let no_observer ~worker:_ ~index:_ ~phase:_ = ()

let emit_stats user s =
  record_totals s;
  match user with Some k -> k s | None -> ()

let map_array ?jobs ?oversubscribe ?(observer = no_observer) ?stats f tasks =
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  if jobs < 1 then invalid_arg "Domain_pool.map: jobs must be >= 1";
  let oversubscribe =
    match oversubscribe with
    | Some b -> b
    | None -> oversubscribe_from_env ()
  in
  let eff =
    effective_workers ~oversubscribe
      ~cores:(Domain.recommended_domain_count ())
      ~jobs ~tasks:n
  in
  if eff <= 1 || n <= 1 then begin
    (* Sequential fast path: no pool, no domains; an exception aborts
       the map immediately (the first failure is the lowest index). *)
    let g0 = Gc.quick_stat () in
    let out =
      Array.mapi
        (fun i task ->
          observer ~worker:0 ~index:i ~phase:`Start;
          let v = f task in
          observer ~worker:0 ~index:i ~phase:`Stop;
          v)
        tasks
    in
    let g1 = Gc.quick_stat () in
    emit_stats stats
      {
        st_workers = 1;
        st_tasks = n;
        st_per_worker =
          [|
            {
              Work_steal.zero_worker_stats with
              Work_steal.ws_tasks = n;
              ws_minor_collections =
                g1.Gc.minor_collections - g0.Gc.minor_collections;
              ws_major_collections =
                g1.Gc.major_collections - g0.Gc.major_collections;
              ws_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
              ws_promoted_words =
                g1.Gc.promoted_words -. g0.Gc.promoted_words;
            };
          |];
      };
    out
  end
  else begin
    let results = Array.make n None in
    (* Work_steal.run raises the lowest-index task error itself, after
       every task ran and [on_stats] fired. *)
    ignore
      (Work_steal.run (the_pool ()) ~workers:eff ~observer
         ~on_stats:(emit_stats stats)
         (fun i -> results.(i) <- Some (f tasks.(i)))
         n);
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every slot written or an error raised *))
      results
  end

let map ?jobs ?oversubscribe ?observer ?stats f xs =
  match xs with
  | [] -> []
  | xs ->
    Array.to_list
      (map_array ?jobs ?oversubscribe ?observer ?stats f (Array.of_list xs))
