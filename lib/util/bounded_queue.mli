(** A FIFO with a hard capacity, for structures where back-pressure
    matters (instruction pools, load/store queues). *)

type 'a t

val create : capacity:int -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool
val capacity : 'a t -> int

val push : 'a t -> 'a -> bool
(** Enqueue; [false] when full (the element is dropped). *)

val peek_opt : 'a t -> 'a option

val peek : 'a t -> 'a
(** Like {!peek_opt} but raises [Queue.Empty]; allocation-free, for the
    per-cycle hot paths. *)

val pop : 'a t -> 'a
(** Dequeue; raises [Queue.Empty] when empty. *)

val pop_opt : 'a t -> 'a option
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
