(** The bench trajectory files: writing and reading the [BENCH_*.json]
    JSONL artifacts ([BENCH_sections.json], [BENCH_perf.json],
    [BENCH_profile.json]) and comparing the latest run against a
    baseline.

    Each line is a flat JSON object (scalars plus per-worker vectors,
    see {!Json}) appended by a bench run, so the file accumulates a
    machine-local performance history. Lines written by this module
    carry a [schema] version field; unversioned lines from older
    checkouts still parse ({!load} treats them as schema 0), and lines
    that do not parse at all are skipped with a warning instead of
    poisoning the history. *)

val schema_version : int
(** Version stamped into every line this module writes (currently 1). *)

val sections_path : string
(** ["BENCH_sections.json"] — per-section wall-times + pool/GC stats. *)

val perf_path : string
(** ["BENCH_perf.json"] — naive-vs-fast-forward throughput runs. *)

val profile_path : string
(** ["BENCH_profile.json"] — per-stage profile shares. *)

val attrib_path : string
(** ["BENCH_attrib.json"] — top-down cycle-accounting shares. *)

val reliability_path : string
(** ["BENCH_reliability.json"] — TMR cost/benefit runs. *)

(** {2 Writing} *)

val append_line : path:string -> (string * Json.value) list -> unit
(** Append one JSONL line, prepending [("schema", schema_version)]
    unless the fields already carry a [schema] key. *)

val record_section :
  ?path:string ->
  ?totals:Domain_pool.totals ->
  ?extra:(string * Json.value) list ->
  section:string ->
  seconds:float ->
  jobs:int ->
  unit ->
  unit
(** Append a section line to [path] (default {!sections_path}) carrying
    the wall-time and the scheduler diagnostics from [totals] (default:
    {!Domain_pool.totals}[ ()], i.e. whatever accumulated since the last
    [reset_totals]) — effective workers, steal counts, per-worker GC
    deltas — so a regression in the history is attributable without
    re-running under a profiler.

    Two measurement artifacts are normalised away: [seconds] is written
    with round-trip float precision and clamped to a small positive
    minimum, so a sub-millisecond section can never record [0.000]; and
    a section that never touched the pool (no parallel map ran) still
    reports one worker with zeroed per-worker vectors rather than
    [workers:0] with empty vectors. *)

(** {2 Reading} *)

type entry = {
  e_schema : int;  (** 0 for legacy unversioned lines *)
  e_section : string;
  e_seconds : float;
  e_jobs : int;  (** 0 when the line carries no [jobs] field *)
  e_fields : (string * Json.value) list;  (** the full parsed line *)
}

val num : entry -> string -> float option
val entry_int : entry -> string -> default:int -> int

val parse_line : string -> (entry option, string) result
(** [Ok None] for a blank line, [Ok (Some e)] for a trajectory line
    (legacy unversioned ones included), [Error msg] for a line that is
    not a flat JSON object or lacks [section]/[seconds]. *)

val load : path:string -> entry list * string list
(** All parseable entries of a JSONL file in file order, plus one
    warning per skipped line ([file:lineno: reason]). A missing file
    yields [([], [warning])]. *)

(** {2 Comparing} *)

type comparison = {
  c_section : string;
  c_jobs : int;
  c_latest : float;  (** seconds of the newest entry in the group *)
  c_baseline : float;  (** median seconds of the baseline window *)
  c_ratio : float;  (** latest / baseline *)
  c_samples : int;  (** entries the baseline median was taken over *)
  c_gc_delta : int;  (** minor collections, latest - baseline median *)
  c_steal_delta : int;  (** steals, latest - baseline median *)
  c_regressed : bool;
}

val compare_entries :
  ?threshold:float ->
  ?window:int ->
  ?min_seconds:float ->
  ?baseline:entry list ->
  entry list ->
  comparison list
(** Group entries by [(section, jobs)] — the committed history mixes
    [-j 1] and [-j 4] runs of the same section, which must not be
    compared against each other — and compare each group's newest entry
    against a baseline: the median of the same group in [baseline] when
    given, otherwise the trailing median of up to [window] (default 5)
    preceding entries of the same file. Groups with no usable baseline
    are skipped. A group regresses when its baseline is at least
    [min_seconds] (default 0.05 — sub-millisecond table prints are
    clock noise) and the latest run is more than [threshold] (default
    0.10, i.e. 10%) slower. *)

val regressions : comparison list -> comparison list

val comparison_table : ?title:string -> comparison list -> Table.t
(** Per-group table: latest vs baseline seconds, ratio, GC and steal
    deltas, verdict. *)
