(* Long-lived work-stealing pool — see the interface for the design
   rationale. Synchronisation summary:

   - [pool.mutex] protects [gen]/[cur]/[stop]; [pool.work] wakes parked
     workers when a job is posted (or at shutdown); [pool.done_] wakes
     the caller when the remaining-task counter hits zero or a worker
     acks the job.
   - [pool.busy] is held for the whole of [run]; a [try_lock] failure
     means a nested/concurrent run, which degrades to sequential.
   - Each deque is one atomic int packing its (lo, hi) index range;
     per-index result/error cells elsewhere have exactly one writer.
   - The caller never posts generation g+1 before every spawned worker
     acked generation g, so a parked worker can never miss a job. *)

type observer =
  worker:int -> index:int -> phase:[ `Start | `Stop | `Steal of int ] -> unit

type worker_stats = {
  ws_tasks : int;
  ws_steals : int;
  ws_steal_attempts : int;
  ws_minor_collections : int;
  ws_major_collections : int;
  ws_minor_words : float;
  ws_promoted_words : float;
}

type stats = {
  st_workers : int;
  st_tasks : int;
  st_per_worker : worker_stats array;
}

let zero_worker_stats =
  {
    ws_tasks = 0;
    ws_steals = 0;
    ws_steal_attempts = 0;
    ws_minor_collections = 0;
    ws_major_collections = 0;
    ws_minor_words = 0.0;
    ws_promoted_words = 0.0;
  }

let sum_stats s =
  Array.fold_left
    (fun acc w ->
      {
        ws_tasks = acc.ws_tasks + w.ws_tasks;
        ws_steals = acc.ws_steals + w.ws_steals;
        ws_steal_attempts = acc.ws_steal_attempts + w.ws_steal_attempts;
        ws_minor_collections =
          acc.ws_minor_collections + w.ws_minor_collections;
        ws_major_collections =
          acc.ws_major_collections + w.ws_major_collections;
        ws_minor_words = acc.ws_minor_words +. w.ws_minor_words;
        ws_promoted_words = acc.ws_promoted_words +. w.ws_promoted_words;
      })
    zero_worker_stats s.st_per_worker

(* ------------------------------------------------------------------ *)
(* Range deques: (lo, hi) packed into one atomic int                    *)
(* ------------------------------------------------------------------ *)

let mask31 = (1 lsl 31) - 1
let[@inline] pack ~lo ~hi = (lo lsl 31) lor hi

(* Owner takes from the front. A CAS failure means a thief moved [hi];
   retry immediately (the owner is the only writer of [lo]). *)
let rec take_own d =
  let s = Atomic.get d in
  let lo = s lsr 31 and hi = s land mask31 in
  if lo >= hi then -1
  else if Atomic.compare_and_set d s (pack ~lo:(lo + 1) ~hi) then lo
  else take_own d

(* Thief takes from the back, with bounded exponential backoff between
   CAS attempts so contending thieves spread out. Returns -1 only once
   the deque is observed empty. *)
let steal d =
  let rec go pause =
    let s = Atomic.get d in
    let lo = s lsr 31 and hi = s land mask31 in
    if lo >= hi then -1
    else if Atomic.compare_and_set d s (pack ~lo ~hi:(hi - 1)) then hi - 1
    else begin
      for _ = 1 to pause do
        Domain.cpu_relax ()
      done;
      go (min (2 * pause) 256)
    end
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Jobs                                                                *)
(* ------------------------------------------------------------------ *)

type job = {
  gen : int;
  body : int -> unit;
  deques : int Atomic.t array;  (* one per participating worker *)
  remaining : int Atomic.t;  (* tasks not yet finished *)
  acks : int Atomic.t;  (* spawned workers done with this job *)
  obs : observer;
  wstats : worker_stats array;  (* slot per pool worker, written once *)
  err : (int * exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  mutex : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable cur : job option;
  mutable gen : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable spawned : int;
  busy : Mutex.t;
  minor_heap_mult : int;
}

(* Lowest task index wins, whatever order failures are reported in. *)
let rec note_error job i exn bt =
  let cur = Atomic.get job.err in
  match cur with
  | Some (j, _, _) when j <= i -> ()
  | _ ->
    if not (Atomic.compare_and_set job.err cur (Some (i, exn, bt))) then
      note_error job i exn bt

let no_observer ~worker:_ ~index:_ ~phase:_ = ()

(* Run the job as worker [w]: drain the own deque from the front, then
   sweep the other deques in randomized order until one full sweep finds
   everything empty — conclusive, because no tasks are ever added
   mid-job and ranges only shrink. Exceptions (from the task or from a
   buggy observer) are recorded, never propagated: the remaining-task
   counter must reach zero or the caller would block forever. *)
let participate pool job ~worker:w =
  let g0 = Gc.quick_stat () in
  let tasks = ref 0 and steals = ref 0 and attempts = ref 0 in
  let nd = Array.length job.deques in
  let run_task i =
    (try
       job.obs ~worker:w ~index:i ~phase:`Start;
       (try job.body i
        with exn -> note_error job i exn (Printexc.get_raw_backtrace ()));
       job.obs ~worker:w ~index:i ~phase:`Stop
     with exn -> note_error job i exn (Printexc.get_raw_backtrace ()));
    incr tasks;
    if Atomic.fetch_and_add job.remaining (-1) = 1 then begin
      Mutex.lock pool.mutex;
      Condition.broadcast pool.done_;
      Mutex.unlock pool.mutex
    end
  in
  if w < nd then begin
    let continue_ = ref true in
    while !continue_ do
      let i = take_own job.deques.(w) in
      if i < 0 then continue_ := false else run_task i
    done;
    if nd > 1 then begin
      (* Victim order is randomized per sweep (xorshift seeded from the
         worker id and generation) so thieves do not convoy on one
         victim; determinism of the results does not depend on it. *)
      let rng = ref (((w + 1) * 0x9E3779B9) lxor (job.gen * 0x85EBCA77) lor 1)
      and sweeping = ref true in
      while !sweeping do
        let x0 = !rng in
        let x1 = x0 lxor (x0 lsl 13) in
        let x2 = x1 lxor (x1 lsr 7) in
        let x3 = x2 lxor (x2 lsl 17) in
        rng := x3;
        let start = (x3 land max_int) mod nd in
        let found = ref false in
        for k = 0 to nd - 1 do
          let v = (start + k) mod nd in
          if v <> w then begin
            incr attempts;
            let i = steal job.deques.(v) in
            if i >= 0 then begin
              found := true;
              incr steals;
              (try job.obs ~worker:w ~index:i ~phase:(`Steal v)
               with exn ->
                 note_error job i exn (Printexc.get_raw_backtrace ()));
              run_task i
            end
          end
        done;
        if not !found then sweeping := false
      done
    end
  end;
  let g1 = Gc.quick_stat () in
  job.wstats.(w) <-
    {
      ws_tasks = !tasks;
      ws_steals = !steals;
      ws_steal_attempts = !attempts;
      ws_minor_collections =
        g1.Gc.minor_collections - g0.Gc.minor_collections;
      ws_major_collections =
        g1.Gc.major_collections - g0.Gc.major_collections;
      ws_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      ws_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    }

(* ------------------------------------------------------------------ *)
(* Pool lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let default_minor_heap_mult = 16

(* Must run *inside* the target domain: in OCaml 5 the minor heap is
   per-domain state, and (measured) setting it in the parent before
   [Domain.spawn] does not carry over. *)
let inflate_minor_heap mult =
  if mult > 1 then
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = mult * 262144 }

let create ?(minor_heap_mult = default_minor_heap_mult) () =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    done_ = Condition.create ();
    cur = None;
    gen = 0;
    stop = false;
    domains = [];
    spawned = 0;
    busy = Mutex.create ();
    minor_heap_mult = max 1 minor_heap_mult;
  }

let size t = t.spawned + 1

let worker_loop pool ~gen0 ~id =
  inflate_minor_heap pool.minor_heap_mult;
  let last = ref gen0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.gen = !last do
      Condition.wait pool.work pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      continue_ := false
    end
    else begin
      let job = match pool.cur with Some j -> j | None -> assert false in
      Mutex.unlock pool.mutex;
      last := job.gen;
      (* Non-participants (id >= deque count) still write their (zero)
         stats slot and ack, so the caller's ack barrier is uniform. *)
      participate pool job ~worker:id;
      Mutex.lock pool.mutex;
      Atomic.incr job.acks;
      Condition.broadcast pool.done_;
      Mutex.unlock pool.mutex
    end
  done

(* Caller must hold [busy]. Workers spawned here snapshot the current
   generation, so they only react to jobs posted after them. *)
let ensure_spawned pool want =
  while pool.spawned < want do
    let id = pool.spawned + 1 in
    Mutex.lock pool.mutex;
    let gen0 = pool.gen in
    Mutex.unlock pool.mutex;
    pool.domains <-
      Domain.spawn (fun () -> worker_loop pool ~gen0 ~id) :: pool.domains;
    pool.spawned <- id
  done

let shutdown pool =
  Mutex.lock pool.busy;
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- [];
  pool.spawned <- 0;
  Mutex.lock pool.mutex;
  pool.stop <- false;
  Mutex.unlock pool.mutex;
  Mutex.unlock pool.busy

(* ------------------------------------------------------------------ *)
(* Running a job                                                       *)
(* ------------------------------------------------------------------ *)

let empty_stats = { st_workers = 0; st_tasks = 0; st_per_worker = [||] }

(* Sequential fallback: worker 0 only, same observer and error
   semantics as the pooled path (all tasks run; lowest index raises). *)
let run_inline ~observer ~on_stats body n =
  let g0 = Gc.quick_stat () in
  let err = ref None in
  for i = 0 to n - 1 do
    (try
       observer ~worker:0 ~index:i ~phase:`Start;
       (try body i
        with exn ->
          if !err = None then
            err := Some (i, exn, Printexc.get_raw_backtrace ()));
       observer ~worker:0 ~index:i ~phase:`Stop
     with exn ->
       if !err = None then err := Some (i, exn, Printexc.get_raw_backtrace ()))
  done;
  let g1 = Gc.quick_stat () in
  let ws =
    {
      zero_worker_stats with
      ws_tasks = n;
      ws_minor_collections =
        g1.Gc.minor_collections - g0.Gc.minor_collections;
      ws_major_collections =
        g1.Gc.major_collections - g0.Gc.major_collections;
      ws_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      ws_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    }
  in
  let stats = { st_workers = 1; st_tasks = n; st_per_worker = [| ws |] } in
  on_stats stats;
  (match !err with
  | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ());
  stats

let run pool ~workers ?(observer = no_observer) ?(on_stats = ignore) body n =
  if workers < 1 then invalid_arg "Work_steal.run: workers must be >= 1";
  if n < 0 then invalid_arg "Work_steal.run: negative task count";
  if n > mask31 then invalid_arg "Work_steal.run: task count too large";
  if n = 0 then begin
    on_stats empty_stats;
    empty_stats
  end
  else begin
    let participants = min workers n in
    if participants <= 1 then run_inline ~observer ~on_stats body n
    else if not (Mutex.try_lock pool.busy) then
      (* Nested or concurrent run: executing it inline keeps the outer
         job's workers and deques untouched and cannot deadlock. *)
      run_inline ~observer ~on_stats body n
    else
      Fun.protect
        ~finally:(fun () -> Mutex.unlock pool.busy)
        (fun () ->
          ensure_spawned pool (participants - 1);
          let nworkers = pool.spawned + 1 in
          let job =
            {
              gen = pool.gen + 1;
              body;
              deques =
                Array.init participants (fun w ->
                    let lo = w * n / participants
                    and hi = (w + 1) * n / participants in
                    let d = Atomic.make (pack ~lo ~hi) in
                    (* Space consecutive atomics out so two workers'
                       deques do not share a cache line. *)
                    ignore (Sys.opaque_identity (Array.make 8 0));
                    d);
              remaining = Atomic.make n;
              acks = Atomic.make 0;
              obs = observer;
              wstats = Array.make nworkers zero_worker_stats;
              err = Atomic.make None;
            }
          in
          Mutex.lock pool.mutex;
          pool.gen <- job.gen;
          pool.cur <- Some job;
          Condition.broadcast pool.work;
          Mutex.unlock pool.mutex;
          participate pool job ~worker:0;
          Mutex.lock pool.mutex;
          while
            Atomic.get job.remaining > 0
            || Atomic.get job.acks < pool.spawned
          do
            Condition.wait pool.done_ pool.mutex
          done;
          pool.cur <- None;
          Mutex.unlock pool.mutex;
          let stats =
            {
              st_workers = participants;
              st_tasks = n;
              st_per_worker = Array.sub job.wstats 0 participants;
            }
          in
          on_stats stats;
          (match Atomic.get job.err with
          | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
          | None -> ());
          stats)
  end
