(** A long-lived work-stealing domain pool.

    This is the engine under {!Domain_pool}: a fixed set of worker
    domains, spawned once and parked between jobs, executing indexed
    task sets ([f 0 .. f (n-1)]) with per-worker deques and randomized
    stealing. It replaces the PR-1 design (one shared atomic cursor +
    fresh [Domain.spawn] per map), whose fig10 profile was dominated by
    repeated spawn/join cost and minor-GC barriers across oversubscribed
    domains.

    {2 Deque representation}

    All tasks of a job are known up front and never pushed mid-run, so a
    worker's "deque" is simply a contiguous index range [\[lo, hi)]
    packed into a {e single} atomic integer ([lo lsl 31 lor hi]). The
    owner CASes [(lo, hi)] to [(lo+1, hi)] to take from the front;
    thieves CAS [(lo, hi)] to [(lo, hi-1)] to steal from the back, with
    bounded exponential backoff on contention. Compared to a Chase-Lev
    ring this needs no buffer, allocates nothing per task, and is
    ABA-free (both ends move monotonically); pairing the two updates in
    one CAS also closes the classic two-counter race where the owner and
    a thief both claim the last element.

    {2 Completion and stats}

    Job completion is an atomic remaining-task counter; the caller
    participates as worker 0 and then blocks on a condition variable
    until every task ran {e and} every spawned worker acknowledged the
    job (the ack barrier is what makes the per-worker stats below
    complete). Each participant records a {!worker_stats}: tasks run,
    steals, steal attempts, and its [Gc.quick_stat] deltas — the
    diagnosis data for the fig10 regression (stop-the-world minor
    collections multiply under oversubscription).

    Spawned workers (and the creating domain) get their minor heap
    inflated by [minor_heap_mult] (default 16x): with more busy domains
    than cores, every minor collection is a stop-the-world barrier
    paying an OS scheduling quantum per blocked domain, so fewer, larger
    minor collections dominate. Measured on a 1-core host: 4 busy
    domains run ~13x slower than sequential with the default minor heap,
    ~2.4x with 16x; 64x regresses even sequential code. *)

type observer =
  worker:int -> index:int -> phase:[ `Start | `Stop | `Steal of int ] -> unit
(** Task-span hook. [`Start]/[`Stop] bracket each task on the worker
    running it ([`Stop] fires even when the task raises). [`Steal v]
    fires on the thief just before the [`Start] of a task it stole from
    worker [v]'s deque. Must not raise; a raising observer is treated
    like a failing task. *)

type worker_stats = {
  ws_tasks : int;  (** tasks this worker executed (own + stolen) *)
  ws_steals : int;  (** tasks it stole from other workers *)
  ws_steal_attempts : int;  (** deque probes, successful or not *)
  ws_minor_collections : int;  (** [Gc.quick_stat] delta over the job *)
  ws_major_collections : int;
  ws_minor_words : float;
  ws_promoted_words : float;
}

type stats = {
  st_workers : int;  (** workers that participated in this job *)
  st_tasks : int;
  st_per_worker : worker_stats array;  (** length [st_workers] *)
}

val zero_worker_stats : worker_stats
val sum_stats : stats -> worker_stats

type t

val create : ?minor_heap_mult:int -> unit -> t
(** A pool with no spawned domains yet; {!run} grows it on demand and
    the domains persist (parked on a condition variable) until
    {!shutdown}. [minor_heap_mult] (default 16, clamp to >= 1; 1 =
    leave the GC alone) scales each worker domain's minor heap. *)

val size : t -> int
(** Domains currently alive: spawned workers + the caller. *)

val run :
  t ->
  workers:int ->
  ?observer:observer ->
  ?on_stats:(stats -> unit) ->
  (int -> unit) ->
  int ->
  stats
(** [run t ~workers f n] executes [f 0 .. f (n-1)], each exactly once,
    on [min workers n] workers (the calling domain is worker 0). Task
    exceptions are captured; after {e all} tasks ran, the one with the
    lowest index is re-raised on the caller with its backtrace —
    deterministic whatever the steal schedule. [on_stats] (default
    ignore) runs on the caller just before that re-raise, so accounting
    survives failing jobs. If the pool is already running a job (nested
    or concurrent [run]), the call degrades to sequential execution on
    the caller rather than deadlocking. Raises [Invalid_argument] when
    [workers < 1] or [n < 0]. *)

val shutdown : t -> unit
(** Stop and join all spawned domains. Idempotent; the pool remains
    usable (a later {!run} respawns workers). *)

val inflate_minor_heap : int -> unit
(** Scale the {e calling} domain's minor heap by the given multiplier
    (<= 1 is a no-op). {!run} applies this inside every spawned worker;
    the pool's creator should call it once on its own domain, since the
    caller participates as worker 0 and per-domain GC parameters do not
    cross [Domain.spawn]. *)
