(** Minimal JSON support for the harness's machine-readable artifacts —
    the committed golden-metrics file the CI drift gate compares against,
    the fuzzer's counterexample reports, and the [BENCH_*.json] JSONL
    trajectories. Only the fragment those need: serialising objects of
    scalars (plus one level of scalar arrays, for per-worker vectors)
    and parsing them back. No external dependencies. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list  (** scalar elements only; no nesting *)

val escape : string -> string
(** JSON string escaping (quotes, backslashes, control characters). *)

val value_to_string : value -> string
(** Numbers print with round-trip precision ([%.17g], integers without a
    fractional part), so write-then-parse is exact. *)

val obj_to_string : (string * value) list -> string
(** A flat object, one [" key": value] pair per entry, pretty-printed
    with one pair per line (stable diffs under version control). *)

val obj_to_line : (string * value) list -> string
(** The same object compact on a single line, no trailing newline — the
    JSONL form the bench trajectories append ({!Bench_log}). *)

val parse_flat_obj : string -> ((string * value) list, string) result
(** Parse a flat JSON object whose values are scalars or arrays of
    scalars (the output of {!obj_to_string} / {!obj_to_line}). Objects
    nested anywhere, or arrays inside arrays, are rejected with an
    error message — the artifact formats are deliberately flat. *)

val write_file : path:string -> string -> unit
val read_file : path:string -> (string, string) result
