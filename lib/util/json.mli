(** Minimal JSON support for the harness's machine-readable artifacts —
    the committed golden-metrics file the CI drift gate compares against
    and the fuzzer's counterexample reports. Only the fragment those
    need: serialising string/number objects and parsing back a *flat*
    object of scalars. No external dependencies. *)

type value = Null | Bool of bool | Num of float | Str of string

val escape : string -> string
(** JSON string escaping (quotes, backslashes, control characters). *)

val value_to_string : value -> string
(** Numbers print with round-trip precision ([%.17g], integers without a
    fractional part), so write-then-parse is exact. *)

val obj_to_string : (string * value) list -> string
(** A flat object, one [" key": value] pair per entry, pretty-printed
    with one pair per line (stable diffs under version control). *)

val parse_flat_obj : string -> ((string * value) list, string) result
(** Parse a flat JSON object of scalar values (the output of
    {!obj_to_string}). Nested arrays/objects are rejected with an
    error message — the golden file format is deliberately flat. *)

val write_file : path:string -> string -> unit
val read_file : path:string -> (string, string) result
