(** A FIFO with a hard capacity, used for instruction pools and load/store
    queues where structural back-pressure matters. *)

type 'a t = { capacity : int; q : 'a Queue.t }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Bounded_queue.create: capacity <= 0";
  { capacity; q = Queue.create () }

let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let is_full t = Queue.length t.q >= t.capacity
let capacity t = t.capacity

(** [push t x] enqueues and reports whether there was room. *)
let push t x =
  if is_full t then false
  else begin
    Queue.push x t.q;
    true
  end

let peek_opt t = Queue.peek_opt t.q
let peek t = Queue.peek t.q
let pop t = Queue.pop t.q
let pop_opt t = Queue.take_opt t.q
let clear t = Queue.clear t.q
let iter f t = Queue.iter f t.q
let fold f init t = Queue.fold f init t.q
