(** Packed occupancy bitmask over a fixed universe [0, capacity).

    Backing store for the data-oriented simulator core's dense sweeps
    (issue window, LSU slots, MOB slots): one bit per slot, word-level
    skipping over empty regions, zero allocation after [create]. *)

type t

val create : int -> t
(** [create capacity] is an empty set over [0, capacity). Raises
    [Invalid_argument] on a non-positive capacity. *)

val capacity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val mem : t -> int -> bool
(** Membership test; raises [Invalid_argument] out of range. *)

val add : t -> int -> unit
(** Idempotent insert. *)

val remove : t -> int -> unit
(** Idempotent delete. *)

val clear : t -> unit

val next_set_from : t -> int -> int
(** [next_set_from t i] is the smallest member [>= i], or [-1] when none.
    Negative [i] is treated as 0; [i >= capacity] yields [-1].
    Allocation-free: this is the hot-loop scan primitive. *)

val iter : (int -> unit) -> t -> unit
(** Apply to members in increasing order. *)

val to_list : t -> int list
(** Members in increasing order (test/debug helper; allocates). *)
