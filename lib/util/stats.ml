(** Small statistics helpers used by the metrics layer.

    The paper reports geometric means over workload pairs ("All the averages
    used are geometric means", §7.1), per-phase issue rates, and utilisation
    fractions; this module provides those plus a streaming accumulator. *)

let mean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    let n = List.length xs in
    List.fold_left ( +. ) 0.0 xs /. float_of_int n

(** Geometric mean; ignores non-positive entries (which would be
    meaningless for speedups) rather than producing a NaN. *)
let geomean xs =
  let xs = List.filter (fun x -> x > 0.0) xs in
  match xs with
  | [] -> 0.0
  | _ ->
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

(** Streaming accumulator for mean / variance / extrema (Welford). *)
module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.n = 0 then 0.0 else t.lo
  let max t = if t.n = 0 then 0.0 else t.hi
end

(** Fixed-width histogram over [0, bound) used for timeline bucketing
    (Figure 2's "each point represents 1000 consecutive cycles"). *)
module Buckets = struct
  type t = {
    width : int;            (* cycles per bucket *)
    mutable sums : float array;
    mutable counts : int array;
  }

  let create ~width =
    if width <= 0 then invalid_arg "Buckets.create: width must be positive";
    { width; sums = Array.make 16 0.0; counts = Array.make 16 0 }

  let ensure t idx =
    let n = Array.length t.sums in
    if idx >= n then begin
      let n' = Stdlib.max (idx + 1) (2 * n) in
      let sums = Array.make n' 0.0 in
      let counts = Array.make n' 0 in
      Array.blit t.sums 0 sums 0 n;
      Array.blit t.counts 0 counts 0 n;
      t.sums <- sums;
      t.counts <- counts
    end

  (** [add t ~cycle v] accumulates sample [v] for the bucket containing
      [cycle]. Inlined so [v] stays unboxed at the simulator's per-cycle
      sampling sites (a non-inlined float argument is boxed per call). *)
  let[@inline] add t ~cycle v =
    let idx = cycle / t.width in
    ensure t idx;
    t.sums.(idx) <- t.sums.(idx) +. v;
    t.counts.(idx) <- t.counts.(idx) + 1

  (** [add_run t ~cycle ~len v] accumulates [len] copies of sample [v],
      one per cycle for cycles [cycle .. cycle+len-1], splitting the run
      across bucket boundaries. Bit-identical to [len] successive [add]
      calls as long as the per-bucket partial sums are exactly
      representable — true for the simulator's integer-valued samples
      (vector lengths, lane counts), whose sums stay far below 2^53. *)
  (** Integer-argument entry points for the simulator's per-cycle
      sampling sites: an int crosses a non-inlined module boundary
      without boxing, where a float argument allocates per call. The
      conversions happen here, inside float store contexts, so these are
      allocation-free in any build profile (dune's dev profile passes
      [-opaque], which disables cross-module [@inline]). *)

  (** [add_int t ~cycle v] = [add t ~cycle (float_of_int v)]. *)
  let add_int t ~cycle v =
    let idx = cycle / t.width in
    ensure t idx;
    t.sums.(idx) <- t.sums.(idx) +. float_of_int v;
    t.counts.(idx) <- t.counts.(idx) + 1

  (** [add_ratio t ~cycle ~num ~den] =
      [add t ~cycle (float_of_int num /. float_of_int den)]. *)
  let add_ratio t ~cycle ~num ~den =
    let idx = cycle / t.width in
    ensure t idx;
    t.sums.(idx) <- t.sums.(idx) +. (float_of_int num /. float_of_int den);
    t.counts.(idx) <- t.counts.(idx) + 1

  let rec add_run_from t pos left v =
    if left > 0 then begin
      let idx = pos / t.width in
      ensure t idx;
      let bucket_end = (idx + 1) * t.width in
      let m = Stdlib.min left (bucket_end - pos) in
      t.sums.(idx) <- t.sums.(idx) +. (float_of_int m *. v);
      t.counts.(idx) <- t.counts.(idx) + m;
      add_run_from t (pos + m) (left - m) v
    end

  let add_run t ~cycle ~len v =
    if len < 0 then invalid_arg "Buckets.add_run: negative length";
    add_run_from t cycle len v

  let rec add_run_int_from t pos left v =
    if left > 0 then begin
      let idx = pos / t.width in
      ensure t idx;
      let bucket_end = (idx + 1) * t.width in
      let m = Stdlib.min left (bucket_end - pos) in
      t.sums.(idx) <- t.sums.(idx) +. (float_of_int m *. float_of_int v);
      t.counts.(idx) <- t.counts.(idx) + m;
      add_run_int_from t (pos + m) (left - m) v
    end

  (** [add_run_int t ~cycle ~len v] =
      [add_run t ~cycle ~len (float_of_int v)]. *)
  let add_run_int t ~cycle ~len v =
    if len < 0 then invalid_arg "Buckets.add_run: negative length";
    add_run_int_from t cycle len v

  (** Per-bucket sums divided by the bucket width — the "per cycle" rate
      used for lane-occupancy timelines. *)
  let rates t =
    let last = ref (-1) in
    Array.iteri (fun i c -> if c > 0 then last := i) t.counts;
    Array.init (!last + 1) (fun i -> t.sums.(i) /. float_of_int t.width)

  (** Per-bucket averages, trimmed to the last non-empty bucket. *)
  let averages t =
    let last = ref (-1) in
    Array.iteri (fun i c -> if c > 0 then last := i) t.counts;
    Array.init (!last + 1) (fun i ->
        if t.counts.(i) = 0 then 0.0
        else t.sums.(i) /. float_of_int t.counts.(i))

  let width t = t.width
end
