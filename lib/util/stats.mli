(** Statistics helpers for the metrics layer: geometric means (the paper's
    averages, §7.1), streaming accumulators, and fixed-width cycle
    buckets for the per-1000-cycle timelines of Figures 2 and 14. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean over the positive entries; 0 when none. *)

val min_max : float list -> float * float

(** Streaming mean/variance/extrema (Welford's algorithm). *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** Fixed-width histogram over cycles. *)
module Buckets : sig
  type t

  val create : width:int -> t
  (** [width] cycles per bucket; must be positive. *)

  val add : t -> cycle:int -> float -> unit
  (** Accumulate one sample into the bucket containing [cycle]. *)

  val add_run : t -> cycle:int -> len:int -> float -> unit
  (** [add_run t ~cycle ~len v] accumulates [len] per-cycle copies of
      [v] for cycles [cycle .. cycle+len-1] in one batch, splitting the
      run across bucket boundaries. For integer-valued samples (as the
      simulator records) this is bit-identical to [len] calls to
      [add]. The fast-forward skip path relies on that equality. *)

  val add_int : t -> cycle:int -> int -> unit
  (** [add t ~cycle (float_of_int v)] with the conversion on the callee
      side: an int argument crosses a non-inlined module boundary
      without boxing, where a float argument allocates per call. For the
      simulator's allocation-free sampling sites. *)

  val add_ratio : t -> cycle:int -> num:int -> den:int -> unit
  (** [add t ~cycle (float_of_int num /. float_of_int den)], conversions
      on the callee side (see {!add_int}). *)

  val add_run_int : t -> cycle:int -> len:int -> int -> unit
  (** [add_run t ~cycle ~len (float_of_int v)], conversion on the callee
      side (see {!add_int}). *)

  val rates : t -> float array
  (** Per-bucket sums divided by the bucket width: per-cycle rates. *)

  val averages : t -> float array
  (** Per-bucket sample averages, trimmed to the last non-empty bucket. *)

  val width : t -> int
end
