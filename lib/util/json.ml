(** Minimal JSON reader/writer for the harness's machine-readable
    artifacts: the golden-metrics drift gate and the fuzzer's
    counterexample reports. Handles exactly the fragment those need — a
    flat object of scalars — with round-trip-exact number printing. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec value_to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num x -> num_to_string x
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr vs -> "[" ^ String.concat "," (List.map value_to_string vs) ^ "]"

let obj_to_string pairs =
  let body =
    List.map
      (fun (k, v) ->
        Printf.sprintf "  \"%s\": %s" (escape k) (value_to_string v))
      pairs
  in
  "{\n" ^ String.concat ",\n" body ^ "\n}\n"

let obj_to_line pairs =
  let body =
    List.map
      (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (value_to_string v))
      pairs
  in
  "{" ^ String.concat "," body ^ "}"

(* ------------------------------------------------------------------ *)
(* Parsing (flat objects only)                                         *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_flat_obj s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | Some c' -> error "expected %c, got %c" c c'
    | None -> error "expected %c, got end of input" c
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               if !pos + 4 >= n then error "truncated unicode escape";
               let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
               (* Only the control-char range we ourselves emit. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else error "non-ASCII unicode escape unsupported";
               pos := !pos + 4
             | c -> error "bad escape \\%c" c);
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_scalar () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some ('{' | '[') -> error "nested structures unsupported (scalar expected)"
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        && match s.[!pos] with
           | ',' | '}' | ']' | ' ' | '\t' | '\n' | '\r' -> false
           | _ -> true
      do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      (match tok with
      | "null" -> Null
      | "true" -> Bool true
      | "false" -> Bool false
      | _ -> (
        match float_of_string_opt tok with
        | Some x -> Num x
        | None -> error "bad scalar %S" tok))
    | None -> error "unexpected end of input"
  in
  (* One level of structure: values are scalars or arrays of scalars. *)
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '[' ->
      incr pos;
      skip_ws ();
      (match peek () with
      | Some ']' ->
        incr pos;
        Arr []
      | _ ->
        let items = ref [] in
        let rec go () =
          items := parse_scalar () :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            go ()
          | Some ']' -> incr pos
          | _ -> error "expected , or ]"
        in
        go ();
        Arr (List.rev !items))
    | _ -> parse_scalar ()
  in
  try
    expect '{';
    skip_ws ();
    let pairs = ref [] in
    (match peek () with
    | Some '}' -> incr pos
    | _ ->
      let rec go () =
        skip_ws ();
        let key = parse_string () in
        expect ':';
        let v = parse_value () in
        pairs := (key, v) :: !pairs;
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          go ()
        | Some '}' -> incr pos
        | _ -> error "expected , or }"
      in
      go ());
    skip_ws ();
    if !pos <> n then error "trailing content";
    Ok (List.rev !pairs)
  with
  | Parse_error m -> Error m
  | Failure m -> Error m

let write_file ~path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc content)

let read_file ~path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        Ok (really_input_string ic (in_channel_length ic)))
