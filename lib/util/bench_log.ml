(* Bench trajectory JSONL: append + parse + compare. See the mli for
   the format contract. *)

let schema_version = 1
let sections_path = "BENCH_sections.json"
let perf_path = "BENCH_perf.json"
let profile_path = "BENCH_profile.json"
let attrib_path = "BENCH_attrib.json"
let reliability_path = "BENCH_reliability.json"

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let append_line ~path fields =
  let fields =
    if List.mem_assoc "schema" fields then fields
    else ("schema", Json.Num (float_of_int schema_version)) :: fields
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.obj_to_line fields);
      output_char oc '\n')

let record_section ?(path = sections_path) ?totals ?(extra = []) ~section
    ~seconds ~jobs () =
  let t = match totals with Some t -> t | None -> Domain_pool.totals () in
  (* A section that never touched the pool still ran on one (serial)
     worker; represent it as such instead of workers:0 with empty
     per-worker vectors. *)
  let per_worker =
    if Array.length t.Domain_pool.t_per_worker > 0 then
      t.Domain_pool.t_per_worker
    else
      [|
        {
          Work_steal.ws_tasks = 0;
          ws_steals = 0;
          ws_steal_attempts = 0;
          ws_minor_collections = 0;
          ws_major_collections = 0;
          ws_minor_words = 0.0;
          ws_promoted_words = 0.0;
        };
      |]
  in
  let vec f =
    Json.Arr
      (Array.to_list
         (Array.map (fun w -> Json.Num (float_of_int (f w))) per_worker))
  in
  let num x = Json.Num x in
  let inum i = Json.Num (float_of_int i) in
  append_line ~path
    ([
       ("section", Json.Str section);
       (* Clamp away exact zeros from clock granularity; round-trip
          printing keeps sub-millisecond durations nonzero. *)
       ("seconds", num (Float.max seconds 1e-9));
       ("jobs", inum jobs);
       ("workers", inum (max 1 t.Domain_pool.t_max_workers));
       ("maps", inum t.Domain_pool.t_maps);
       ("tasks", inum t.Domain_pool.t_tasks);
       ("steals", inum t.Domain_pool.t_steals);
       ("steal_attempts", inum t.Domain_pool.t_steal_attempts);
       ("minor_collections", inum t.Domain_pool.t_minor_collections);
       ("major_collections", inum t.Domain_pool.t_major_collections);
       ("promoted_words", num t.Domain_pool.t_promoted_words);
       ("worker_tasks", vec (fun w -> w.Work_steal.ws_tasks));
       ("worker_steals", vec (fun w -> w.Work_steal.ws_steals));
       ( "worker_minor_collections",
         vec (fun w -> w.Work_steal.ws_minor_collections) );
       ("unix_time", num (Float.round (Unix.time ())));
     ]
    @ extra)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_schema : int;
  e_section : string;
  e_seconds : float;
  e_jobs : int;
  e_fields : (string * Json.value) list;
}

let num e key =
  match List.assoc_opt key e.e_fields with
  | Some (Json.Num x) -> Some x
  | _ -> None

let entry_int e key ~default =
  match num e key with Some x -> int_of_float x | None -> default

let parse_line line =
  if String.trim line = "" then Ok None
  else
    match Json.parse_flat_obj line with
    | Error msg -> Error msg
    | Ok fields -> (
      let str k =
        match List.assoc_opt k fields with
        | Some (Json.Str s) -> Some s
        | _ -> None
      in
      let numf k =
        match List.assoc_opt k fields with
        | Some (Json.Num x) -> Some x
        | _ -> None
      in
      match (str "section", numf "seconds") with
      | Some section, Some seconds ->
        Ok
          (Some
             {
               e_schema =
                 (match numf "schema" with
                 | Some x -> int_of_float x
                 | None -> 0);
               e_section = section;
               e_seconds = seconds;
               e_jobs =
                 (* Default to 1, matching what every writer emits
                    explicitly: a legacy line that predates the explicit
                    field ran single-domain, and defaulting to anything
                    else would silently split its trajectory group away
                    from current lines with the same section. *)
                 (match numf "jobs" with
                 | Some x -> int_of_float x
                 | None -> 1);
               e_fields = fields;
             })
      | None, _ -> Error "missing \"section\" field"
      | _, None -> Error "missing numeric \"seconds\" field")

let load ~path =
  if not (Sys.file_exists path) then ([], [ path ^ ": no such file" ])
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let entries = ref [] in
        let warnings = ref [] in
        let lineno = ref 0 in
        (try
           while true do
             let line = input_line ic in
             incr lineno;
             match parse_line line with
             | Ok None -> ()
             | Ok (Some e) -> entries := e :: !entries
             | Error msg ->
               warnings :=
                 Printf.sprintf "%s:%d: skipped unparseable line (%s)" path
                   !lineno msg
                 :: !warnings
           done
         with End_of_file -> ());
        (List.rev !entries, List.rev !warnings))
  end

(* ------------------------------------------------------------------ *)
(* Comparing                                                           *)
(* ------------------------------------------------------------------ *)

type comparison = {
  c_section : string;
  c_jobs : int;
  c_latest : float;
  c_baseline : float;
  c_ratio : float;
  c_samples : int;
  c_gc_delta : int;
  c_steal_delta : int;
  c_regressed : bool;
}

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
    let n = List.length sorted in
    let a = Array.of_list sorted in
    if n mod 2 = 1 then a.(n / 2) else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

(* Group key: the committed history mixes -j1 and -j4 runs of the same
   section; comparing across job counts would gate on scheduler choice,
   not code. *)
let group_key e = (e.e_section, e.e_jobs)

let groups_of entries =
  (* Stable: first-appearance order of groups, file order within. *)
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let k = group_key e in
      if not (Hashtbl.mem tbl k) then begin
        order := k :: !order;
        Hashtbl.add tbl k (ref [])
      end;
      let r = Hashtbl.find tbl k in
      r := e :: !r)
    entries;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order
  |> List.rev

let last xs = List.nth xs (List.length xs - 1)

let take_last n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let compare_entries ?(threshold = 0.10) ?(window = 5) ?(min_seconds = 0.05)
    ?baseline entries =
  if threshold <= 0.0 then
    invalid_arg "Bench_log.compare_entries: threshold must be positive";
  let baseline_groups = Option.map groups_of baseline in
  List.filter_map
    (fun ((section, jobs), group) ->
      let latest = last group in
      let base_window =
        match baseline_groups with
        | Some bg ->
          (* Named baseline: the whole matching group. *)
          (match List.assoc_opt (section, jobs) bg with
          | Some b -> b
          | None -> [])
        | None ->
          (* Trailing window of this file's own history, newest runs
             first dropped: everything but the latest entry. *)
          take_last window (List.filteri (fun i _ -> i < List.length group - 1) group)
      in
      if base_window = [] then None
      else begin
        let base_med field fallback =
          let xs = List.filter_map field base_window in
          if xs = [] then fallback else median xs
        in
        let baseline_s = base_med (fun e -> Some e.e_seconds) nan in
        let gc e = num e "minor_collections" in
        let steals e = num e "steals" in
        let delta field =
          match field latest with
          | None -> 0
          | Some l ->
            let b = base_med field l in
            int_of_float (l -. b)
        in
        let ratio = latest.e_seconds /. Float.max baseline_s 1e-9 in
        Some
          {
            c_section = section;
            c_jobs = jobs;
            c_latest = latest.e_seconds;
            c_baseline = baseline_s;
            c_ratio = ratio;
            c_samples = List.length base_window;
            c_gc_delta = delta gc;
            c_steal_delta = delta steals;
            c_regressed =
              baseline_s >= min_seconds && ratio > 1.0 +. threshold;
          }
      end)
    (groups_of entries)

let regressions cs = List.filter (fun c -> c.c_regressed) cs

let comparison_table ?(title = "Bench trajectory: latest vs baseline") cs =
  let tbl =
    Table.create ~title
      ~header:
        [ "section"; "jobs"; "latest"; "baseline"; "ratio"; "over"; "gc d";
          "steal d"; "verdict" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Left ]
      ()
  in
  List.iter
    (fun c ->
      Table.add_row tbl
        [
          c.c_section;
          string_of_int c.c_jobs;
          Printf.sprintf "%.3fs" c.c_latest;
          Printf.sprintf "%.3fs" c.c_baseline;
          Printf.sprintf "%.2fx" c.c_ratio;
          string_of_int c.c_samples;
          string_of_int c.c_gc_delta;
          string_of_int c.c_steal_delta;
          (if c.c_regressed then "REGRESSED" else "ok");
        ])
    cs;
  tbl
