(** Deterministic pseudo-random number generation.

    All stochastic components of the simulator (memory-level classification
    of individual accesses, workload data initialisation, property-test
    inputs built outside qcheck) draw from a [t] created from an explicit
    seed, so that every experiment is reproducible run-to-run.

    The generator is SplitMix64, which is small, fast, and has no global
    state — important because several independent machines can be simulated
    in one process (e.g. the four architectures of Figure 2 side by side).

    The 64-bit state is kept as two 32-bit limbs in native-int mutable
    fields rather than a boxed [int64]: the simulator draws one number per
    memory access on its zero-allocation hot path, and every [Int64]
    intermediate would be a minor-heap block. The limb arithmetic below is
    bit-for-bit the same stream as the original [int64] implementation
    (property-tested against it in [test_util.ml]). Each [step] leaves the
    64 output bits in [zhi]/[zlo]. *)

type t = {
  mutable hi : int; (* state bits 32..63 *)
  mutable lo : int; (* state bits 0..31 *)
  mutable zhi : int; (* last output, bits 32..63 *)
  mutable zlo : int; (* last output, bits 0..31 *)
}

let mask32 = 0xFFFFFFFF

let create ~seed =
  (* Limbs of the two's-complement 64-bit image of [seed]; [asr] replicates
     the sign into bits 62..63 exactly as [Int64.of_int] would. *)
  { hi = (seed asr 32) land mask32; lo = seed land mask32; zhi = 0; zlo = 0 }

let copy t = { hi = t.hi; lo = t.lo; zhi = t.zhi; zlo = t.zlo }

(* SplitMix64 step: advances the state and leaves 64 pseudo-random bits in
   [t.zhi]/[t.zlo]. Constants: golden gamma 0x9E3779B97F4A7C15, mixers
   0xBF58476D1CE4E5B9 and 0x94D049BB133111EB, xor-shifts 30/27/31.
   Products of 16-bit limbs stay under 2^35, far inside a native int. *)
let step t =
  (* state += gamma *)
  let lo0 = t.lo + 0x7F4A7C15 in
  let hi = (t.hi + 0x9E3779B9 + (lo0 lsr 32)) land mask32 in
  let lo = lo0 land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  (* z ^= z >>> 30 *)
  let xh = hi lxor (hi lsr 30) in
  let xl = lo lxor (((hi lsl 2) land mask32) lor (lo lsr 30)) in
  (* z *= 0xBF58476D1CE4E5B9 (schoolbook on 16-bit limbs, mod 2^64) *)
  let a0 = xl land 0xFFFF and a1 = xl lsr 16 in
  let a2 = xh land 0xFFFF and a3 = xh lsr 16 in
  let r0 = a0 * 0xE5B9 in
  let r1 = (a1 * 0xE5B9) + (a0 * 0x1CE4) + (r0 lsr 16) in
  let r2 = (a2 * 0xE5B9) + (a1 * 0x1CE4) + (a0 * 0x476D) + (r1 lsr 16) in
  let r3 =
    (a3 * 0xE5B9) + (a2 * 0x1CE4) + (a1 * 0x476D) + (a0 * 0xBF58)
    + (r2 lsr 16)
  in
  let ml = (r0 land 0xFFFF) lor ((r1 land 0xFFFF) lsl 16) in
  let mh = (r2 land 0xFFFF) lor ((r3 land 0xFFFF) lsl 16) in
  (* z ^= z >>> 27 *)
  let yh = mh lxor (mh lsr 27) in
  let yl = ml lxor (((mh lsl 5) land mask32) lor (ml lsr 27)) in
  (* z *= 0x94D049BB133111EB *)
  let b0 = yl land 0xFFFF and b1 = yl lsr 16 in
  let b2 = yh land 0xFFFF and b3 = yh lsr 16 in
  let s0 = b0 * 0x11EB in
  let s1 = (b1 * 0x11EB) + (b0 * 0x1331) + (s0 lsr 16) in
  let s2 = (b2 * 0x11EB) + (b1 * 0x1331) + (b0 * 0x49BB) + (s1 lsr 16) in
  let s3 =
    (b3 * 0x11EB) + (b2 * 0x1331) + (b1 * 0x49BB) + (b0 * 0x94D0)
    + (s2 lsr 16)
  in
  let nl = (s0 land 0xFFFF) lor ((s1 land 0xFFFF) lsl 16) in
  let nh = (s2 land 0xFFFF) lor ((s3 land 0xFFFF) lsl 16) in
  (* z ^= z >>> 31 *)
  t.zhi <- nh lxor (nh lsr 31);
  t.zlo <- nl lxor (((nh lsl 1) land mask32) lor (nl lsr 31))

(** [bits53 t] is the next draw's top 53 output bits as a non-negative
    native int — the integer behind {!float}. Callers that need the
    uniform float can scale by [2^-53] themselves: an int return value
    crosses a non-inlined module boundary without boxing, which a float
    return cannot (the allocation-free simulator paths rely on this). *)
let[@inline] bits53 t =
  step t;
  (t.zhi lsl 21) lor (t.zlo lsr 11)

(** [float t] is uniform in [0, 1). The top 53 output bits fit a native
    int exactly, so [float_of_int] is exact, as [Int64.to_float] was. *)
let[@inline] float t =
  Stdlib.float_of_int (bits53 t) *. (1.0 /. 9007199254740992.0)

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let[@inline] int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so the value always fits in a non-negative native int. *)
  step t;
  let r = ((t.zhi land 0x3FFFFFFF) lsl 32) lor t.zlo in
  r mod bound

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

(** [bool t p] is true with probability [p]. *)
let[@inline] bool t p = float t < p

(** [pick t arr] selects a uniformly random element of [arr]. *)
let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

(* ------------------------------------------------------------------ *)
(* Pure per-opportunity decision hashing (fault injection)             *)
(* ------------------------------------------------------------------ *)

(* Stafford mix13 (the SplitMix64 finalizer) on boxed Int64 — this is
   NOT the hot path: callers guard on a disabled flag first, and an
   enabled fault stream runs once per instruction issue, not per cycle. *)
let stafford_mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let mix3 ~seed ~stream index =
  let open Int64 in
  let golden = 0x9E3779B97F4A7C15L in
  let h = stafford_mix64 (add (mul (of_int seed) golden) (of_int stream)) in
  let h = stafford_mix64 (add (mul h golden) (of_int index)) in
  to_int (logand h 0x3FFF_FFFF_FFFF_FFFFL)

let flip_decision ~seed ~stream ~rate ~index ~len =
  if rate <= 0.0 || len <= 0 then None
  else
    let h = mix3 ~seed ~stream (2 * index) in
    (* Top 53 of the 62 hash bits as a uniform in [0,1), exactly as
       [float] scales [bits53]. *)
    let u = Stdlib.float_of_int (h lsr 9) *. (1.0 /. 9007199254740992.0) in
    if u >= rate then None
    else
      let h2 = mix3 ~seed ~stream ((2 * index) + 1) in
      Some ((h2 lsr 5) mod len, h2 land 31)

(** [split t] derives an independent generator, leaving [t] advanced.

    Matches the original implementation exactly: the 64-bit draw was
    truncated to a 63-bit native int ([Int64.to_int]), xor'd with a
    31-bit constant, and sign-extended back ([Int64.of_int]) — so the
    derived state's bits 62..63 are copies of draw bit 62. *)
let split t =
  step t;
  let lo = t.zlo lxor 0x5851F42D in
  let hi0 = t.zhi land 0x7FFFFFFF in
  let hi = if hi0 land 0x40000000 <> 0 then hi0 lor 0x80000000 else hi0 in
  { hi; lo; zhi = 0; zlo = 0 }
