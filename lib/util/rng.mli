(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the simulator draws from an explicitly
    seeded generator so that experiments are reproducible run-to-run and
    independent simulations never share hidden state. *)

type t

val create : seed:int -> t
(** A fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** An independent clone continuing from the same state. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bits53 : t -> int
(** The draw behind {!float}, as its exact 53-bit integer:
    [float t = float_of_int (bits53 t) *. 2^-53]. Lets allocation-free
    callers keep the float math on their own side of the module boundary
    (a float return boxes at any non-inlined call). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] on a
    non-positive bound. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element; raises on an empty array. *)

val split : t -> t
(** Derive an independent generator, advancing [t]. *)

val mix3 : seed:int -> stream:int -> int -> int
(** Pure (stateless) 62-bit non-negative hash of a (seed, stream, index)
    triple — the basis of replayable per-opportunity decision streams:
    deciding opportunity [i] never requires visiting opportunities
    [0..i-1], and distinct streams (e.g. per-core) are independent. *)

val flip_decision :
  seed:int -> stream:int -> rate:float -> index:int -> len:int ->
  (int * int) option
(** The fault-injection decision for one opportunity, as a pure function
    of the stream coordinates: [Some (lane, bit)] when opportunity
    [index] of [stream] under [seed] fires at probability [rate] — the
    flip hits f32 [lane] ([< len], the transfer's element count) at
    [bit] ([< 32]). [None] at rate 0 (or an empty transfer), with no
    arithmetic performed. Both the timing simulator and the functional
    interpreter's fault hook decide from this one function, so a fault
    schedule is replayable from [(seed, rate)] alone. *)
