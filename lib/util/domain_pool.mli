(** Parallel map over OCaml 5 [Domain]s, backed by the long-lived
    work-stealing pool in {!Work_steal}.

    The evaluation harness is a sweep of independent simulations (25
    pairs x 4 architectures, lane sweeps, ablations, 4-core groups);
    every simulation draws from its own explicit {!Rng.t} seed, so the
    tasks can run on any domain in any order and the results are still
    bit-identical to a sequential run. This module provides exactly
    that: tasks distributed over per-worker deques with randomized
    stealing, results written into a pre-sized array so output ordering
    is deterministic regardless of the steal schedule, and one pool of
    domains reused across calls (the PR-1 design paid a fresh
    spawn/join plus cross-domain GC barriers on every [map]).

    {2 Elastic worker count}

    [jobs] is a {e request}; the pool runs on
    [min jobs tasks (Domain.recommended_domain_count ())] workers unless
    [~oversubscribe:true] (or [OCCAMY_OVERSUBSCRIBE=1]) forces the full
    request. Rationale: OCaml 5's minor collections stop {e all}
    domains, so with more busy domains than cores every collection waits
    on OS scheduling quanta — measured at up to 13x slower than
    sequential on this workload. Capping at the core count is what makes
    [-j 64] on a 4-core host behave like [-j 4] instead of melting down.

    Guarantees, whatever [jobs] is:
    - an effective worker count of 1 (explicit [~jobs:1], a single
      task, or the elastic cap on a 1-core host) spawns no domains and
      runs everything on the calling domain;
    - output order always matches input order;
    - a task exception is captured (with its backtrace) and re-raised
      on the calling domain; when several tasks fail, the one with the
      lowest input index wins, deterministically;
    - [f] runs exactly once per element. *)

val recommended_jobs : ?cap:int -> unit -> int
(** [Domain.recommended_domain_count ()] capped at [cap] (default 16)
    and floored at 1: the default worker count for the harness.
    [recommended_domain_count] already reflects the host's usable
    cores, so [cap] only matters on machines with more than [cap]
    cores — raise it (e.g. via the CLI's [--max-jobs]) to let wide
    hosts use more of themselves, or lower it to leave cores free. *)

val jobs_from_env :
  ?var:string -> ?cap:int -> ?on_warning:(string -> unit) -> unit -> int
(** Worker count from the environment variable [var] (default
    ["OCCAMY_JOBS"]); falls back to [recommended_jobs ?cap ()] when the
    variable is unset or empty. A set-but-invalid value (non-numeric or
    < 1) also falls back, but loudly: [on_warning] receives a message
    naming the variable and the bad value (default: print it to
    stderr). *)

val oversubscribe_from_env : unit -> bool
(** Whether OCCAMY_OVERSUBSCRIBE is set to ["1"], ["true"], ["yes"] or
    ["on"]: the default for [map]'s [?oversubscribe] — exposed so
    callers that must resolve the knob themselves (e.g. to size batches
    with {!effective_workers}) agree with [map]. *)

val effective_workers :
  oversubscribe:bool -> cores:int -> jobs:int -> tasks:int -> int
(** The worker count a [map] with these parameters actually uses:
    [min jobs tasks], additionally capped at [cores] (floored at 1)
    unless [oversubscribe]. Exposed pure so the elastic policy is
    unit-testable; [map] calls it with
    [cores = Domain.recommended_domain_count ()]. *)

type observer =
  worker:int -> index:int -> phase:[ `Start | `Stop | `Steal of int ] -> unit
(** Task-span hook for tracing: called immediately before ([`Start]) and
    after ([`Stop]) each task, from the worker domain running it.
    [`Steal v] additionally fires (before [`Start]) when the task was
    stolen from worker [v]'s deque. [worker] is a stable id in
    [0 .. jobs-1] ([0] on the sequential path), so an observer writing
    to per-worker sinks — e.g. [Occamy_obs.Trace.sweep_observer]'s
    per-worker tracks — is race-free. [`Stop] fires even when the task
    raises. Must not raise itself. *)

type stats = Work_steal.stats = {
  st_workers : int;
  st_tasks : int;
  st_per_worker : Work_steal.worker_stats array;
}
(** Per-call scheduler diagnostics (see {!Work_steal.stats}): worker
    count actually used, tasks/steals per worker, and per-worker
    [Gc.quick_stat] deltas. *)

val map :
  ?jobs:int ->
  ?oversubscribe:bool ->
  ?observer:observer ->
  ?stats:(stats -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ~jobs f xs] is [List.map f xs] computed on
    {!effective_workers} domains. [jobs] defaults to
    {!recommended_jobs}; [stats] (called on the calling domain before
    [map] returns, even when a task failed) receives the scheduler
    diagnostics for this call. Raises [Invalid_argument] when
    [jobs < 1]. *)

val map_array :
  ?jobs:int ->
  ?oversubscribe:bool ->
  ?observer:observer ->
  ?stats:(stats -> unit) ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** Array counterpart of {!map}. *)

(** {2 Cumulative diagnostics}

    Every [map] also folds its {!stats} into a process-wide running
    total, so the bench harness can attribute a whole section's GC and
    steal behaviour without threading callbacks through each runner. *)

type totals = {
  t_maps : int;  (** [map] calls recorded *)
  t_tasks : int;
  t_max_workers : int;  (** widest effective worker count seen *)
  t_steals : int;
  t_steal_attempts : int;
  t_minor_collections : int;
  t_major_collections : int;
  t_minor_words : float;
  t_promoted_words : float;
  t_per_worker : Work_steal.worker_stats array;
      (** summed by worker id; length = [t_max_workers] *)
}

val reset_totals : unit -> unit
val totals : unit -> totals

val pool_size : unit -> int
(** Domains currently alive in the shared pool (spawned workers + the
    caller); [1] before any parallel [map] ran. *)
