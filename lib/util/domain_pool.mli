(** A small, dependency-free parallel map over OCaml 5 [Domain]s.

    The evaluation harness is a sweep of independent simulations (25
    pairs x 4 architectures, lane sweeps, ablations, 4-core groups);
    every simulation draws from its own explicit {!Rng.t} seed, so the
    tasks can run on any domain in any order and the results are still
    bit-identical to a sequential run. This module provides exactly
    that: a fixed pool of worker domains pulling chunks of tasks from a
    shared counter, writing results into a pre-sized array so output
    ordering is deterministic regardless of scheduling.

    Guarantees:
    - [map ~jobs:1 f xs] spawns no domains at all: it reduces to the
      plain sequential [List.map f xs] (same for empty / single-task
      inputs).
    - Output order always matches input order, whatever [jobs] is.
    - A task exception is captured (with its backtrace) and re-raised
      on the calling domain after all workers join; when several tasks
      fail, the one with the lowest input index wins, deterministically.
    - [f] runs exactly once per element. *)

val recommended_jobs : ?cap:int -> unit -> int
(** [Domain.recommended_domain_count ()] capped at [cap] (default 16)
    and floored at 1: the default worker count for the harness. *)

val jobs_from_env : ?var:string -> unit -> int
(** Worker count from the environment variable [var] (default
    ["OCCAMY_JOBS"]); falls back to {!recommended_jobs} when the
    variable is unset, empty, non-numeric, or < 1. *)

type observer = worker:int -> index:int -> phase:[ `Start | `Stop ] -> unit
(** Task-span hook for tracing: called immediately before ([`Start]) and
    after ([`Stop]) each task, from the worker domain running it.
    [worker] is a stable id in [0 .. jobs-1] ([0] on the sequential
    path), so an observer writing to per-worker sinks — e.g.
    [Occamy_obs.Trace.sweep_observer]'s per-worker tracks — is
    race-free. [`Stop] fires even when the task raises. Must not raise
    itself. *)

val map : ?jobs:int -> ?observer:observer -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed on [min jobs
    (length xs)] domains. [jobs] defaults to {!recommended_jobs}.
    Raises [Invalid_argument] when [jobs < 1]. *)

val map_array :
  ?jobs:int -> ?observer:observer -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)
