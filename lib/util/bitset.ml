(** Packed occupancy bitmask over a fixed universe [0, capacity).

    This is the scan structure behind the data-oriented simulator core:
    issue windows, LSU slots and MOB slots keep one bit per slot and the
    per-cycle sweeps skip empty regions a word at a time instead of
    walking linked structures. Everything is preallocated at [create]
    and no operation allocates.

    Words hold 32 bits each so that index arithmetic is shifts and
    masks (not division) and the de Bruijn trailing-zero multiply below
    stays well inside OCaml's 63-bit native ints. *)

type t = { words : int array; capacity : int; mutable count : int }

let bits_per_word = 32
let word_shift = 5
let bit_mask = 31

let create capacity =
  if capacity <= 0 then invalid_arg "Bitset.create: capacity must be positive";
  let nwords = (capacity + bits_per_word - 1) / bits_per_word in
  { words = Array.make nwords 0; capacity; count = 0 }

let capacity t = t.capacity
let cardinal t = t.count
let is_empty t = t.count = 0

let[@inline] check t i name =
  if i < 0 || i >= t.capacity then invalid_arg name

let[@inline] mem t i =
  check t i "Bitset.mem";
  t.words.(i lsr word_shift) land (1 lsl (i land bit_mask)) <> 0

let[@inline] add t i =
  check t i "Bitset.add";
  let w = i lsr word_shift in
  let b = 1 lsl (i land bit_mask) in
  let old = t.words.(w) in
  if old land b = 0 then begin
    t.words.(w) <- old lor b;
    t.count <- t.count + 1
  end

let[@inline] remove t i =
  check t i "Bitset.remove";
  let w = i lsr word_shift in
  let b = 1 lsl (i land bit_mask) in
  let old = t.words.(w) in
  if old land b <> 0 then begin
    t.words.(w) <- old land lnot b;
    t.count <- t.count - 1
  end

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.count <- 0

(* Trailing-zero count of a 32-bit nonzero value via a de Bruijn
   sequence: isolate the lowest set bit, multiply, index a small table.
   The product is at most 2^31 * 2^27 < 2^59, comfortably a native int. *)
let debruijn_table =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

let[@inline] ctz32 v =
  debruijn_table.(((v land -v) * 0x077CB531 land 0xFFFFFFFF) lsr 27)

(* Scan words [w, nwords) for the first set bit; allocation-free. *)
let rec scan_words t w nwords =
  if w >= nwords then -1
  else
    let word = t.words.(w) in
    if word <> 0 then
      let r = (w lsl word_shift) + ctz32 word in
      if r < t.capacity then r else -1
    else scan_words t (w + 1) nwords

let next_set_from t i =
  if i >= t.capacity then -1
  else begin
    let i = if i < 0 then 0 else i in
    let w = i lsr word_shift in
    (* First word: mask off bits below [i]. *)
    let first = t.words.(w) land lnot ((1 lsl (i land bit_mask)) - 1) in
    if first <> 0 then begin
      let r = (w lsl word_shift) + ctz32 first in
      if r < t.capacity then r else -1
    end
    else scan_words t (w + 1) (Array.length t.words)
  end

let rec iter_from f t i =
  if i >= 0 then begin
    f i;
    iter_from f t (next_set_from t (i + 1))
  end

let iter f t = iter_from f t (next_set_from t 0)

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc
