(** Fault injection and the differential masking oracle.

    The fault model is a transient single-event upset in the SIMD
    datapath: one bit of one f32 lane flips as a value is written back —
    an ALU result or broadcast entering the lane register file
    ([Site_reg]), or load return data ([Site_load]). The voter output
    ([Site_vote]) and the store data path ([Site_store]) are outside the
    sphere of replication (hardened voter, ECC memory — the standard TMR
    boundary) and are excluded for plain and TMR runs alike, so both
    lowerings face the identical fault surface.

    Because the timing simulator carries no vector values, injection is
    split across the two executors sharing one pure decision stream
    ({!Occamy_util.Rng.flip_decision}): the functional interpreter
    applies flips to data through its [fault_hook], while
    {!Occamy_core.Sim} marks the same per-(seed, stream, index)
    decisions as {!Occamy_obs.Event.Fault_inject} trace events and
    [faults_injected] counters at issue sites.

    The oracle ({!check}) asserts, per case:

    + both lowerings compute the scalar reference when fault-free (the
      TMR voters are semantically transparent);
    + {b masking}: under TMR, every injected single-lane flip leaves the
      final memory bit-identical to the fault-free run — a divergence is
      silent corruption and fails the case;
    + under plain lowering each flip is classified detected (output
      diverges — the differential pipeline would catch it) or benign
      (logically masked); both are recorded, neither fails;
    + on all four architectures, the two simulator tick loops stay
      bit-identical under rate-driven injection, and the trace carries
      exactly one [Fault_inject] event per counted fault. *)

type fault = {
  f_op : int;   (** eligible-opportunity index the flip fires on *)
  f_lane : int; (** f32 lane (reduced modulo the transfer length) *)
  f_bit : int;  (** bit of the IEEE-754 single encoding, [0..31] *)
}

val pp_fault : Format.formatter -> fault -> unit

val flip_f32 : float -> int -> float
(** [flip_f32 v bit] flips one bit of [v]'s f32 encoding. *)

val eligible : Occamy_isa.Interp.fault_site -> bool
(** Is a site inside the sphere of replication? *)

val count_hook : int ref -> Occamy_isa.Interp.fault_hook
(** Hook that only counts eligible opportunities. *)

val schedule_hook :
  applied:fault list ref -> fault list -> Occamy_isa.Interp.fault_hook
(** Hook applying an explicit fault schedule; each landed flip (with its
    lane reduced) is consed onto [applied]. *)

val stream_hook :
  ?stream:int ->
  seed:int ->
  rate:float ->
  applied:fault list ref ->
  unit ->
  Occamy_isa.Interp.fault_hook
(** Rate-driven hook deciding every eligible opportunity from
    {!Occamy_util.Rng.flip_decision} — the same formula the timing
    simulator marks faults with, so a (seed, rate) pair names one
    schedule across both executors. *)

val fault_env : Occamy_isa.Interp.env
(** The fixed solo environment every fault run executes under: baseline
    and trials must issue the identical dynamic instruction sequence or
    opportunity indices would not line up. *)

val exec :
  ?fault_hook:Occamy_isa.Interp.fault_hook ->
  Occamy_core.Workload.t ->
  (string, float array) Hashtbl.t ->
  Occamy_isa.Interp.state
(** Run one compiled workload to completion under {!fault_env}, memory
    seeded from the init image, with an optional fault hook. *)

val snapshot :
  Occamy_isa.Interp.state -> Occamy_isa.Program.t -> int64 array array
(** Final contents of every declared array as raw f64 bits — trials
    compare bit-identically (NaN equals itself, no tolerance). *)

val first_mismatch :
  Occamy_isa.Program.t ->
  int64 array array ->
  int64 array array ->
  string option
(** First element where two snapshots disagree, rendered for humans;
    [None] when bit-identical. *)

type stats = {
  plain_opportunities : int;
  tmr_opportunities : int;
  tmr_trials : int;
  tmr_masked : int;      (** equals [tmr_trials] whenever {!check} is [Ok] *)
  plain_trials : int;
  plain_detected : int;  (** plain-mode flips visible in the output *)
  plain_benign : int;    (** plain-mode flips logically masked *)
  sim_opportunities : int;  (** issue-site opportunities, all archs/cores *)
  sim_faults : int;         (** rate-driven Sim flips, all archs/cores *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit

val gen_cfg : Gen.cfg
(** Generator configuration for fault cases: shallower and shorter than
    {!Gen.default_cfg}, because TMR triples live vector registers and
    dynamic instructions. *)

val default_trials : int

val case_of_seed : int -> Diff.case
(** {!Diff.case_of_seed} under {!gen_cfg}. *)

val check : ?trials:int -> Diff.case -> (stats, Diff.failure) result
(** Run the full masking oracle (header comment) on one case, with
    [trials] (default {!default_trials}) independent single-fault runs
    per lowering. *)

val check_case : ?trials:int -> int -> (stats, Diff.failure) result
(** [check] of [case_of_seed]. *)

val oracle : ?trials:int -> Diff.case -> (unit, Diff.failure) result
(** [check] with the stats erased — the predicate handed to
    {!Shrink.minimise} when minimising a fault counterexample. *)

val minimise_faults :
  ?max_tries:int ->
  still_fails:(fault list -> bool) ->
  fault list ->
  fault list
(** Reduce a multi-fault witness to a minimal schedule on which
    [still_fails] holds — single-fault whenever one flip suffices
    (greedy {!Shrink.minimise_list} descent). *)

type counterexample = {
  cx_index : int;
  cx_seed : int;
  cx_failure : Diff.failure;
  cx_original : Diff.case;
  cx_shrunk : Diff.case;
  cx_steps : int;
}

type report = {
  root_seed : int;
  cases_run : int;
  elapsed : float;
  totals : stats;  (** summed over every passing case *)
  counterexample : counterexample option;
}

val run :
  ?trials:int ->
  ?minutes:float ->
  ?on_batch:(done_:int -> unit) ->
  ?oversubscribe:bool ->
  seed:int ->
  count:int ->
  jobs:int ->
  unit ->
  report
(** A fault-injection fuzzing campaign with {!Fuzz.run}'s seed
    discipline: case [i] is {!Rng.case_seed}[ ~seed i], fanned out over
    {!Occamy_util.Domain_pool}. The first failing case is minimised with
    {!Shrink.minimise} under {!oracle} (the masking property is
    universally quantified over fault schedules, so re-derived trials on
    a shrunk case remain a sound witness).

    @raise Invalid_argument on a negative [count] or non-positive
    [minutes]. *)

val repro_command : int -> string
(** Self-contained replay command for a case seed. *)

val pp_report : Format.formatter -> report -> unit
