(** Fault injection and the differential masking oracle. See the
    interface for the fault model and the TMR masking property. *)

module Loop_ir = Occamy_compiler.Loop_ir
module Codegen = Occamy_compiler.Codegen
module Reference = Occamy_compiler.Reference
module Interp = Occamy_isa.Interp
module Program = Occamy_isa.Program
module Workload = Occamy_core.Workload
module Config = Occamy_core.Config
module Arch = Occamy_core.Arch
module Sim = Occamy_core.Sim
module Metrics = Occamy_core.Metrics
module Trace = Occamy_obs.Trace
module Event = Occamy_obs.Event
module Urng = Occamy_util.Rng
module Domain_pool = Occamy_util.Domain_pool

type fault = { f_op : int; f_lane : int; f_bit : int }

let pp_fault ppf f =
  Format.fprintf ppf "op %d lane %d bit %d" f.f_op f.f_lane f.f_bit

(* ------------------------------------------------------------------ *)
(* The fault model                                                     *)
(* ------------------------------------------------------------------ *)

(* Sphere of replication: register write-backs (ALU results, broadcasts)
   and load return data. Voter outputs and the store data path are
   outside it — the voter is assumed hardened and memory ECC-protected,
   the standard TMR boundary — and are excluded in BOTH modes so plain
   and TMR runs face the identical fault surface. *)
let eligible = function
  | Interp.Site_reg | Interp.Site_load -> true
  | Interp.Site_vote | Interp.Site_store -> false

(* Values are f32 lanes (the ISA's element type): flip one bit of the
   IEEE-754 single-precision encoding. Exponent flips may yield inf or
   NaN — realistic, and exactly what the poison discipline must mask. *)
let flip_f32 v bit =
  Int32.float_of_bits
    (Int32.logxor (Int32.bits_of_float v) (Int32.shift_left 1l bit))

let count_hook counter : Interp.fault_hook =
 fun ~site ~data:_ ~off:_ ~len:_ -> if eligible site then incr counter

(* Apply an explicit schedule: fault [f] fires on eligible opportunity
   [f.f_op], flipping bit [f.f_bit] of lane [f.f_lane mod len]. The
   applied list records each flip as actually landed (lane reduced),
   so a witness replays exactly. *)
let schedule_hook ~applied faults : Interp.fault_hook =
  let counter = ref 0 in
  fun ~site ~data ~off ~len ->
    if eligible site then begin
      let k = !counter in
      counter := k + 1;
      List.iter
        (fun f ->
          if f.f_op = k then begin
            let lane = f.f_lane mod len in
            data.(off + lane) <- flip_f32 data.(off + lane) f.f_bit;
            applied := { f with f_lane = lane } :: !applied
          end)
        faults
    end

(* Rate-driven stream, deciding each opportunity from the same pure
   [Urng.flip_decision] the timing simulator uses — one formula, two
   executors, so a (seed, rate) pair names one fault schedule in both. *)
let stream_hook ?(stream = 0) ~seed ~rate ~applied () : Interp.fault_hook =
  let counter = ref 0 in
  fun ~site ~data ~off ~len ->
    if eligible site then begin
      let index = !counter in
      counter := index + 1;
      match Urng.flip_decision ~seed ~stream ~rate ~index ~len with
      | None -> ()
      | Some (lane, bit) ->
        data.(off + lane) <- flip_f32 data.(off + lane) bit;
        applied := { f_op = index; f_lane = lane; f_bit = bit } :: !applied
    end

(* ------------------------------------------------------------------ *)
(* Executing one workload under a hook                                 *)
(* ------------------------------------------------------------------ *)

let interp_fuel = 20_000_000

(* All fault runs use one fixed solo environment: the baseline and every
   trial must execute the identical dynamic instruction sequence, or
   opportunity indices would not line up between them. *)
let fault_env = Interp.solo_env ~max_granules:8

let exec ?fault_hook (wl : Workload.t) init_tbl =
  let interp = Interp.create ~env:fault_env ?fault_hook wl.Workload.program in
  Array.iter
    (fun d ->
      Interp.set_memory interp d.Program.arr_id
        (Array.sub (Diff.lookup init_tbl d.Program.arr_name) 0
           d.Program.arr_size))
    wl.Workload.program.Program.arrays;
  ignore (Interp.run ~fuel:interp_fuel interp);
  interp

(* Final memory of every declared array, as raw f64 bits: trials compare
   bit-identically against the fault-free baseline (same program, same
   schedule — only the flip differs), which needs no tolerance and
   treats a NaN as equal to itself. *)
let snapshot interp (program : Program.t) =
  Array.map
    (fun d ->
      Array.map Int64.bits_of_float (Interp.memory interp d.Program.arr_id))
    program.Program.arrays

let first_mismatch (program : Program.t) a b =
  let bad = ref None in
  Array.iteri
    (fun di xs ->
      if !bad = None then
        Array.iteri
          (fun i x ->
            if !bad = None && not (Int64.equal x b.(di).(i)) then
              bad :=
                Some
                  (Printf.sprintf "%s[%d]: %.9g instead of %.9g"
                     program.Program.arrays.(di).Program.arr_name i
                     (Int64.float_of_bits b.(di).(i))
                     (Int64.float_of_bits x)))
          xs)
    a;
  !bad

(* ------------------------------------------------------------------ *)
(* The masking oracle                                                  *)
(* ------------------------------------------------------------------ *)

type stats = {
  plain_opportunities : int;
  tmr_opportunities : int;
  tmr_trials : int;
  tmr_masked : int;
  plain_trials : int;
  plain_detected : int;
  plain_benign : int;
  sim_opportunities : int;
  sim_faults : int;
}

let zero_stats =
  {
    plain_opportunities = 0;
    tmr_opportunities = 0;
    tmr_trials = 0;
    tmr_masked = 0;
    plain_trials = 0;
    plain_detected = 0;
    plain_benign = 0;
    sim_opportunities = 0;
    sim_faults = 0;
  }

let add_stats a b =
  {
    plain_opportunities = a.plain_opportunities + b.plain_opportunities;
    tmr_opportunities = a.tmr_opportunities + b.tmr_opportunities;
    tmr_trials = a.tmr_trials + b.tmr_trials;
    tmr_masked = a.tmr_masked + b.tmr_masked;
    plain_trials = a.plain_trials + b.plain_trials;
    plain_detected = a.plain_detected + b.plain_detected;
    plain_benign = a.plain_benign + b.plain_benign;
    sim_opportunities = a.sim_opportunities + b.sim_opportunities;
    sim_faults = a.sim_faults + b.sim_faults;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "tmr %d/%d masked (%d opportunities), plain %d detected + %d benign of \
     %d (%d opportunities), sim %d faults / %d opportunities"
    s.tmr_masked s.tmr_trials s.tmr_opportunities s.plain_detected
    s.plain_benign s.plain_trials s.plain_opportunities s.sim_faults
    s.sim_opportunities

(* TMR triples the live vector registers; stay well inside the 32-vreg
   file and the interpreter's fuel. *)
let gen_cfg =
  { Gen.default_cfg with Gen.max_stmts = 2; max_depth = 2; max_trip = 200 }

let default_trials = 8

let failf stage fmt =
  Format.kasprintf (fun message -> Error { Diff.stage; message }) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Trial [i]'s fault, hashed from the case seed on streams the rest of
   the pipeline never draws ([mode_stream] separates plain from TMR):
   any opportunity, any lane (reduced modulo the transfer length when
   applied), any of the 32 bits. *)
let trial_fault ~seed ~mode_stream i ~n_ops =
  {
    f_op = Urng.mix3 ~seed ~stream:mode_stream (3 * i) mod n_ops;
    f_lane = Urng.mix3 ~seed ~stream:mode_stream ((3 * i) + 1) land 0xFFFF;
    f_bit = Urng.mix3 ~seed ~stream:mode_stream ((3 * i) + 2) mod 32;
  }

let compile ~options ~tmr loops =
  match
    Codegen.compile_workload
      ~options:{ options with Codegen.tmr }
      ~name:(if tmr then "inject-tmr" else "inject-plain")
      ~kind:Workload.Mixed loops
  with
  | wl -> Ok wl
  | exception exn ->
    failf
      (if tmr then "inject/compile-tmr" else "inject/compile-plain")
      "%s" (Printexc.to_string exn)

(* One mode's single-fault campaign: count opportunities, snapshot the
   fault-free baseline, then run [trials] independent single-flip
   executions and classify each against the baseline. *)
let run_trials ~wl ~init ~seed ~mode_stream ~trials ~on_trial =
  let n_ops = ref 0 in
  let base =
    snapshot (exec ~fault_hook:(count_hook n_ops) wl init) wl.Workload.program
  in
  let rec go i acc =
    if i >= trials || !n_ops = 0 then Ok acc
    else
      let f = trial_fault ~seed ~mode_stream i ~n_ops:!n_ops in
      let applied = ref [] in
      match exec ~fault_hook:(schedule_hook ~applied [ f ]) wl init with
      | exception Interp.Fault msg ->
        failf "inject/trial" "interpreter fault under %s: %s"
          (Format.asprintf "%a" pp_fault f)
          msg
      | interp -> (
        match !applied with
        | [] ->
          failf "inject/trial"
            "fault (%s) never fired (%d opportunities counted)"
            (Format.asprintf "%a" pp_fault f)
            !n_ops
        | landed :: _ -> (
          let diverged =
            first_mismatch wl.Workload.program
              (snapshot interp wl.Workload.program)
              base
          in
          match on_trial ~fault:landed ~diverged acc with
          | Ok acc -> go (i + 1) acc
          | Error _ as e -> e))
  in
  let* acc = go 0 (0, 0) in
  Ok (!n_ops, acc)

(* Rate-driven timing-simulator campaign: both tick loops under
   injection must stay bit-identical (fault opportunities only exist at
   issue sites, which never fall inside a provably-inert fast-forward
   stretch), the trace must carry exactly one Fault_inject event per
   counted flip, and observed traffic must match the TMR-aware
   Equation-5 prediction. *)
let run_sim_injected ~expected_bytes ~arch wl ~inject_seed =
  let cfg =
    {
      Config.default with
      Config.inject_rate = 0.02;
      inject_seed;
    }
  in
  let workloads = List.init cfg.Config.cores (fun _ -> wl) in
  let run fast_forward =
    let trace =
      Trace.for_sim ~capacity:(1 lsl 16) ~cores:cfg.Config.cores ()
    in
    let m =
      Sim.simulate ~cfg:{ cfg with Config.fast_forward } ~trace ~arch
        workloads
    in
    (m, trace)
  in
  let stage = "inject/sim/" ^ Arch.name arch in
  match
    let m_naive, trace_naive = run false in
    let m, trace = run true in
    let* () =
      match Invariant.check_equivalent m_naive m with
      | Ok () -> Ok ()
      | Error msg ->
        failf stage "fast-forward diverged under injection: %s" msg
    in
    let* () =
      match Invariant.check_same_trace trace_naive trace with
      | Ok () -> Ok ()
      | Error msg ->
        failf stage "fast-forward trace diverged under injection: %s" msg
    in
    let opportunities =
      Array.fold_left
        (fun acc c -> acc + c.Metrics.fault_opportunities)
        0 m.Metrics.cores
    in
    let faults =
      Array.fold_left
        (fun acc c -> acc + c.Metrics.faults_injected)
        0 m.Metrics.cores
    in
    let* () =
      if faults > opportunities then
        failf stage "%d faults on %d opportunities" faults opportunities
      else Ok ()
    in
    (* Injection marks issue slots but never adds or removes traffic: the
       observed bytes must still equal the TMR-aware Equation-5
       prediction (loads issued once per replica). *)
    let observed = Metrics.total_mem_bytes m in
    let want = float_of_int cfg.Config.cores *. expected_bytes in
    let* () =
      if Float.abs (observed -. want) > 0.5 then
        failf stage
          "observed %.0f bytes of TMR vector traffic, Equation-5 predicts %.0f"
          observed want
      else Ok ()
    in
    (* Event/counter agreement, unless the ring dropped events. *)
    let traced = ref 0 in
    let dropped = ref 0 in
    Trace.iter trace (fun ~track:_ ~cycle:_ ev ->
        match ev with Event.Fault_inject _ -> incr traced | _ -> ());
    for tr = 0 to Trace.num_tracks trace - 1 do
      dropped := !dropped + Trace.dropped trace ~track:tr
    done;
    let* () =
      if !dropped = 0 && !traced <> faults then
        failf stage "%d Fault_inject trace events but %d counted faults"
          !traced faults
      else Ok ()
    in
    Ok (opportunities, faults)
  with
  | r -> r
  | exception Sim.Simulation_error msg -> failf stage "simulation error: %s" msg

(* The whole oracle on one case. *)
let check ?(trials = default_trials) (c : Diff.case) =
  let* plain_wl = compile ~options:c.options ~tmr:false c.Diff.loops in
  let* tmr_wl = compile ~options:c.options ~tmr:true c.Diff.loops in
  let init =
    Diff.fresh_image ~seed:c.Diff.sched_seed
      ~extra_plan:(Codegen.array_plan c.Diff.loops)
      c.Diff.loops
  in
  let want = Diff.copy_image init in
  match Reference.run ~mem:(Diff.lookup want) c.Diff.loops with
  | exception exn -> failf "inject/reference" "%s" (Printexc.to_string exn)
  | () ->
    (* Fault-free sanity: both lowerings still compute the reference —
       in particular the TMR voters are semantically transparent. *)
    let* () =
      Diff.run_interp ~stage:"inject/plain-ref" ~eps:Diff.eps ~env:fault_env
        plain_wl want init
    in
    let* () =
      Diff.run_interp ~stage:"inject/tmr-ref" ~eps:Diff.eps ~env:fault_env
        tmr_wl want init
    in
    let seed = c.Diff.case_seed in
    (* TMR: every single-lane flip must be masked — divergence from the
       fault-free baseline is silent corruption, the property violation
       this whole layer exists to catch. *)
    let* tmr_opportunities, (tmr_masked, _) =
      run_trials ~wl:tmr_wl ~init ~seed ~mode_stream:101 ~trials
        ~on_trial:(fun ~fault ~diverged (masked, other) ->
          match diverged with
          | None -> Ok (masked + 1, other)
          | Some where ->
            failf "inject/tmr-mask"
              "silent corruption: single fault (%s) escaped TMR at %s"
              (Format.asprintf "%a" pp_fault fault)
              where)
    in
    (* Plain: a flip either lands in the output (detected — the
       differential oracle would flag the run) or dies benignly
       (overwritten, or absorbed by min/max/multiply-by-zero). Both are
       legitimate; the campaign-level report checks that detection
       actually happens across cases. *)
    let* plain_opportunities, (plain_detected, plain_benign) =
      run_trials ~wl:plain_wl ~init ~seed ~mode_stream:202 ~trials
        ~on_trial:(fun ~fault:_ ~diverged (det, ben) ->
          Ok
            (match diverged with
            | Some _ -> (det + 1, ben)
            | None -> (det, ben + 1)))
    in
    let tmr_trials = if tmr_opportunities = 0 then 0 else trials in
    let plain_trials = if plain_opportunities = 0 then 0 else trials in
    (* Timing side, all four architectures, on the TMR binary (voters in
       the issue stream) with rate-driven injection. *)
    let tmr_bytes =
      Diff.predicted_bytes
        ~options:{ c.Diff.options with Codegen.tmr = true }
        c.Diff.loops
    in
    let* sim_opportunities, sim_faults =
      List.fold_left
        (fun acc arch ->
          let* so, sf = acc in
          let* o, f =
            run_sim_injected ~expected_bytes:tmr_bytes ~arch tmr_wl
              ~inject_seed:(seed land 0x3FFF_FFFF)
          in
          Ok (so + o, sf + f))
        (Ok (0, 0))
        Arch.all
    in
    Ok
      {
        plain_opportunities;
        tmr_opportunities;
        tmr_trials;
        tmr_masked;
        plain_trials;
        plain_detected;
        plain_benign;
        sim_opportunities;
        sim_faults;
      }

let case_of_seed case_seed = Diff.case_of_seed ~cfg:gen_cfg case_seed

let check_case ?trials case_seed = check ?trials (case_of_seed case_seed)

(* Shrink-compatible view: success is (), stats dropped. *)
let oracle ?trials c = Result.map (fun _ -> ()) (check ?trials c)

(* ------------------------------------------------------------------ *)
(* Fault-schedule minimisation                                         *)
(* ------------------------------------------------------------------ *)

(* Reduce a multi-fault witness against an arbitrary failure predicate
   (e.g. "this TMR run still diverges from its baseline"): drop flips
   until every survivor is necessary — single-fault whenever the
   violation needs only one. *)
let minimise_faults ?max_tries ~still_fails faults =
  Shrink.minimise_list ?max_tries ~keep:still_fails faults

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

type counterexample = {
  cx_index : int;
  cx_seed : int;
  cx_failure : Diff.failure;
  cx_original : Diff.case;
  cx_shrunk : Diff.case;
  cx_steps : int;
}

type report = {
  root_seed : int;
  cases_run : int;
  elapsed : float;
  totals : stats;
  counterexample : counterexample option;
}

let repro_command case_seed =
  Printf.sprintf "occamy-sim fuzz --case %d --inject-faults" case_seed

let run ?(trials = default_trials) ?minutes ?(on_batch = fun ~done_:_ -> ())
    ?oversubscribe ~seed ~count ~jobs () =
  let oversubscribe =
    match oversubscribe with
    | Some b -> b
    | None -> Domain_pool.oversubscribe_from_env ()
  in
  if count < 0 then
    invalid_arg (Printf.sprintf "Inject.run: negative count %d" count);
  (match minutes with
  | Some m when m <= 0.0 ->
    invalid_arg (Printf.sprintf "Inject.run: minutes %g (must be > 0)" m)
  | _ -> ());
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun m -> t0 +. (m *. 60.0)) minutes in
  let expired () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () > d
  in
  let done_ = ref 0 in
  let totals = ref zero_stats in
  let found = ref None in
  let continue () =
    !found = None
    && (match deadline with Some _ -> not (expired ()) | None -> !done_ < count)
  in
  let batch ~oversubscribe jobs =
    let eff =
      Domain_pool.effective_workers ~oversubscribe
        ~cores:(Domain.recommended_domain_count ())
        ~jobs ~tasks:jobs
    in
    max 8 (eff * 4)
  in
  while continue () do
    let n =
      match deadline with
      | Some _ -> batch ~oversubscribe jobs
      | None -> min (batch ~oversubscribe jobs) (count - !done_)
    in
    let indices = List.init n (fun k -> !done_ + k) in
    let results =
      Domain_pool.map ~jobs ~oversubscribe
        (fun i ->
          let cs = Rng.case_seed ~seed i in
          (i, cs, check_case ~trials cs))
        indices
    in
    done_ := !done_ + n;
    List.iter
      (fun (_, _, r) ->
        match r with Ok s -> totals := add_stats !totals s | Error _ -> ())
      results;
    (match List.find_opt (fun (_, _, r) -> Result.is_error r) results with
    | Some (i, cs, Error _) ->
      (* Re-establish on the calling domain, then minimise the loops
         under the masking oracle itself. *)
      let case = case_of_seed cs in
      let f0 =
        match oracle ~trials case with
        | Error f -> f
        | Ok () ->
          { Diff.stage = "inject/replay"; message = "failure did not reproduce" }
      in
      let s = Shrink.minimise ~oracle:(oracle ~trials) case f0 in
      found :=
        Some
          {
            cx_index = i;
            cx_seed = cs;
            cx_failure = s.Shrink.failure;
            cx_original = case;
            cx_shrunk = s.Shrink.case;
            cx_steps = s.Shrink.steps;
          }
    | _ -> ());
    on_batch ~done_:!done_
  done;
  {
    root_seed = seed;
    cases_run = !done_;
    elapsed = Unix.gettimeofday () -. t0;
    totals = !totals;
    counterexample = !found;
  }

let pp_report ppf r =
  match r.counterexample with
  | None ->
    Format.fprintf ppf
      "inject-fuzz: %d cases, seed %d, %.1fs — masking holds (%a)"
      r.cases_run r.root_seed r.elapsed pp_stats r.totals
  | Some cx ->
    Format.fprintf ppf
      "@[<v>inject-fuzz: FAILED at case %d of %d (seed %d, %.1fs)@,%a@,shrunk \
       from size %d to %d in %d steps:@,%a@,repro: %s@]"
      cx.cx_index r.cases_run r.root_seed r.elapsed Diff.pp_failure
      cx.cx_failure (Shrink.size cx.cx_original) (Shrink.size cx.cx_shrunk)
      cx.cx_steps Diff.pp_case cx.cx_shrunk (repro_command cx.cx_seed)
