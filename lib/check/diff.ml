module Loop_ir = Occamy_compiler.Loop_ir
module Codegen = Occamy_compiler.Codegen
module Reference = Occamy_compiler.Reference
module Analysis = Occamy_compiler.Analysis
module Interp = Occamy_isa.Interp
module Program = Occamy_isa.Program
module Config = Occamy_core.Config
module Arch = Occamy_core.Arch
module Sim = Occamy_core.Sim
module Metrics = Occamy_core.Metrics
module Workload = Occamy_core.Workload
module Trace = Occamy_obs.Trace
module Attrib = Occamy_obs.Attrib

type case = {
  case_seed : int;
  sched_seed : int;
  loops : Loop_ir.t list;
  options : Codegen.options;
}

type failure = { stage : string; message : string }

let failf stage fmt =
  Format.kasprintf (fun message -> Error { stage; message }) fmt

let pp_failure ppf f = Format.fprintf ppf "[%s] %s" f.stage f.message

let pp_case ppf c =
  Format.fprintf ppf "@[<v>case %d (sched %d, mv=%b hoist=%b)@," c.case_seed
    c.sched_seed c.options.Codegen.multiversion c.options.Codegen.hoist;
  List.iter (fun l -> Format.fprintf ppf "%a@," Loop_ir.pp l) c.loops;
  Format.fprintf ppf "@]"

(* The schedule seed and compiler options are pure functions of the case
   seed — NOT drawn from the same stream as the loops. Shrink rewrites
   the loops and re-runs the predicate; if the schedule depended on how
   many draws loop generation made, every shrink step would also change
   the schedule and minimisation would chase a moving target. *)
let case_of_seed ?cfg case_seed =
  let loops = Gen.workload ?cfg (Rng.create ~seed:case_seed) in
  let sched_seed = Rng.case_seed ~seed:case_seed 1 in
  let orng = Rng.create ~seed:(Rng.case_seed ~seed:case_seed 2) in
  let options =
    {
      Codegen.default_options with
      Codegen.multiversion = Rng.bool orng 0.75;
      hoist = Rng.bool orng 0.75;
    }
  in
  { case_seed; sched_seed; loops; options }

(* ------------------------------------------------------------------ *)
(* Memory images                                                       *)
(* ------------------------------------------------------------------ *)

(* Mirrors the test suite's [fresh_memory], but on the fuzzer's own
   splittable generator and keyed by the schedule seed. [extra_plan]
   widens arrays whose padded size differs in the program actually
   compiled (an [inject]ed bug may grow a stencil offset); both
   executors then see one common image. *)
let fresh_image ~seed ?(extra_plan = []) loops =
  let rng = Rng.create ~seed in
  let plan =
    List.fold_left
      (fun acc (name, size) ->
        match List.assoc_opt name acc with
        | Some s0 when s0 >= size -> acc
        | Some _ -> (name, size) :: List.remove_assoc name acc
        | None -> acc @ [ (name, size) ])
      (Codegen.array_plan loops) extra_plan
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, size) ->
      let a = Array.init size (fun _ -> (Rng.float rng *. 4.0) -. 2.0) in
      Hashtbl.replace tbl name a)
    plan;
  tbl

let lookup tbl name =
  match Hashtbl.find_opt tbl name with
  | Some a -> a
  | None -> invalid_arg ("no array " ^ name)

let copy_image tbl =
  let out = Hashtbl.create (Hashtbl.length tbl) in
  Hashtbl.iter (fun k v -> Hashtbl.replace out k (Array.copy v)) tbl;
  out

(* ------------------------------------------------------------------ *)
(* Adversarial schedules                                               *)
(* ------------------------------------------------------------------ *)

let schedule_env ?(max_granules = 8) ?(period = 3) ?(refuse_p = 0.25) ~seed ()
    =
  let rng = Rng.create ~seed in
  let decision = ref (1 + Rng.int rng max_granules) in
  let reads = ref 0 in
  {
    Interp.max_granules;
    request_vl =
      (fun ~current:_ l ->
        if l = 0 then Some 0
        else if l > max_granules then None
        else if Rng.bool rng refuse_p then None
        else Some l);
    decision =
      (fun () ->
        incr reads;
        if !reads mod period = 0 then decision := 1 + Rng.int rng max_granules;
        !decision);
    avail = (fun () -> max_granules);
    on_oi = (fun _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Value comparison                                                    *)
(* ------------------------------------------------------------------ *)

(* Relative tolerance with a unit scale floor, NaN treated as poison —
   the same discipline as the test suite's [check_memory], loosened one
   decade because fuzzed reductions sum hundreds of mixed-sign terms in
   a different association than the scalar reference. *)
let compare_memory ~stage ~eps interp (program : Program.t) want_tbl =
  let bad = ref None in
  Array.iter
    (fun d ->
      if !bad = None then begin
        let got = Interp.memory interp d.Program.arr_id in
        let want = lookup want_tbl d.Program.arr_name in
        let n = min (Array.length got) (Array.length want) in
        Array.iteri
          (fun i w ->
            if i >= n then ()
            else
            if !bad = None then begin
              let g = got.(i) in
              if Float.is_nan g then
                bad :=
                  Some
                    (Printf.sprintf "%s[%d] is NaN (poisoned value leaked)"
                       d.Program.arr_name i)
              else if
                Float.abs (g -. w) /. Float.max 1.0 (Float.abs w) > eps
              then
                bad :=
                  Some
                    (Printf.sprintf "%s[%d]: interp %.9g, reference %.9g"
                       d.Program.arr_name i g w)
            end)
          want
      end)
    program.Program.arrays;
  match !bad with None -> Ok () | Some msg -> failf stage "%s" msg

(* ------------------------------------------------------------------ *)
(* Static traffic prediction (Equation 5 applied end-to-end)            *)
(* ------------------------------------------------------------------ *)

(* The simulator books [elem_bytes] per element of every vector load and
   store, and nothing for the multi-versioned scalar path — so total
   observed traffic must equal, exactly, the per-iteration issue bytes
   times the iteration space of every phase that runs vectorized, per
   core. *)
let predicted_bytes ~options loops =
  List.fold_left
    (fun acc (l : Loop_ir.t) ->
      let vectorized =
        (not options.Codegen.multiversion)
        || l.Loop_ir.trip_count >= options.Codegen.scalar_threshold
      in
      if vectorized then
        (* TMR lowering triples each load instruction (one per replica);
           Analysis accounts for that, keeping Equation 5 end-to-end. *)
        let r = Analysis.analyse ~tmr:options.Codegen.tmr l in
        acc
        +. float_of_int
             (r.Analysis.issue_bytes * l.Loop_ir.trip_count
            * l.Loop_ir.outer_reps)
      else acc)
    0.0 loops

(* ------------------------------------------------------------------ *)
(* The pipeline                                                        *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let interp_fuel = 20_000_000

let run_interp ~stage ~eps ?env wl want_tbl init_tbl =
  match
    let interp = Interp.create ?env wl.Workload.program in
    Array.iter
      (fun d ->
        (* The image covers the widest padding either executor needs;
           hand the interpreter exactly its declared size. *)
        Interp.set_memory interp d.Program.arr_id
          (Array.sub (lookup init_tbl d.Program.arr_name) 0 d.Program.arr_size))
      wl.Workload.program.Program.arrays;
    ignore (Interp.run ~fuel:interp_fuel interp);
    compare_memory ~stage ~eps interp wl.Workload.program want_tbl
  with
  | r -> r
  | exception Interp.Fault msg -> failf stage "interpreter fault: %s" msg

let run_sim ~arch ~cfg ~expected_bytes wl =
  match
    let workloads = List.init cfg.Config.cores (fun _ -> wl) in
    (* Run both tick loops — naive and event-horizon fast-forwarding —
       so every fuzz case doubles as a sim-vs-sim equivalence check.
       Cycle accounting is enabled on both: the in-run conservation
       self-check fires as a Simulation_error, and the attribution rows
       land in Metrics.attrib where check_equivalent/check_metrics hold
       the two loops to bit-identical accounts. *)
    let run fast_forward =
      let trace = Trace.for_sim ~cores:cfg.Config.cores () in
      let attrib = Attrib.create ~cores:cfg.Config.cores () in
      let m =
        Sim.simulate ~cfg:{ cfg with Config.fast_forward } ~trace ~attrib
          ~arch workloads
      in
      (m, trace)
    in
    let m_naive, trace_naive = run false in
    let m, trace = run true in
    let stage = "sim/" ^ Arch.name arch in
    let* () =
      match Invariant.check_equivalent m_naive m with
      | Ok () -> Ok ()
      | Error msg -> failf stage "fast-forward diverged from naive loop: %s" msg
    in
    let* () =
      match Invariant.check_same_trace trace_naive trace with
      | Ok () -> Ok ()
      | Error msg -> failf stage "fast-forward trace diverged: %s" msg
    in
    let* () =
      match Invariant.check_run ~cfg ~arch ~trace m with
      | Ok () -> Ok ()
      | Error msg -> failf stage "invariant: %s" msg
    in
    let observed = Metrics.total_mem_bytes m in
    let want = float_of_int cfg.Config.cores *. expected_bytes in
    if Float.abs (observed -. want) > 0.5 then
      failf stage
        "observed %.0f bytes of vector traffic, Equation-5 predicts %.0f"
        observed want
    else Ok ()
  with
  | r -> r
  | exception Sim.Simulation_error msg ->
    failf ("sim/" ^ Arch.name arch) "simulation error: %s" msg

let eps = 1e-5

let run ?inject c =
  let compiled_loops =
    match inject with None -> c.loops | Some f -> List.map f c.loops
  in
  match
    Codegen.compile_workload ~options:c.options ~name:"fuzz"
      ~kind:Workload.Mixed compiled_loops
  with
  | exception exn -> failf "compile" "%s" (Printexc.to_string exn)
  | wl ->
    let init =
      fresh_image ~seed:c.sched_seed
        ~extra_plan:(Codegen.array_plan compiled_loops)
        c.loops
    in
    let want = copy_image init in
    (match Reference.run ~mem:(lookup want) c.loops with
    | exception exn -> failf "reference" "%s" (Printexc.to_string exn)
    | () ->
      (* Solo widths: every power-of-two granule count a default machine
         can grant, including the degenerate single granule. *)
      let* () =
        List.fold_left
          (fun acc g ->
            let* () = acc in
            run_interp
              ~stage:(Printf.sprintf "interp/solo%d" g)
              ~eps
              ~env:(Interp.solo_env ~max_granules:g)
              wl want init)
          (Ok ()) [ 1; 2; 4; 8 ]
      in
      (* Adversarial schedules: churn the suggested width, refuse
         requests. Each schedule is a pure function of the case. *)
      let* () =
        List.fold_left
          (fun acc (k, period, refuse_p) ->
            let* () = acc in
            run_interp
              ~stage:(Printf.sprintf "interp/sched%d" k)
              ~eps
              ~env:
                (schedule_env ~period ~refuse_p ~seed:(c.sched_seed + k) ())
              wl want init)
          (Ok ())
          [ (1, 2, 0.25); (2, 3, 0.5); (3, 7, 0.1) ]
      in
      (* Cycle simulator, all four architectures, invariants + traffic. *)
      let cfg = Config.default in
      let expected_bytes = predicted_bytes ~options:c.options compiled_loops in
      List.fold_left
        (fun acc arch ->
          let* () = acc in
          run_sim ~arch ~cfg ~expected_bytes wl)
        (Ok ()) Arch.all)
