(** The differential oracle: one fuzz case, three executors, one verdict.

    A case is a random multi-phase workload plus a schedule seed and
    compiler options, all derived purely from one integer — so the
    printed seed IS the repro. The oracle then checks, in order:

    + the workload compiles;
    + the compiled program, run under {!Occamy_isa.Interp} at every solo
      vector width and under adversarial reconfiguration schedules
      (suggested width churning, requests randomly refused), computes
      what {!Occamy_compiler.Reference} computes — the paper's §6.4
      correctness property, within a reduction-reassociation tolerance;
    + the cycle simulator runs it on all four architectures — under both
      the naive tick loop and the event-horizon fast-forwarding loop
      ([Config.fast_forward]), which must agree bit-for-bit on metrics
      and trace streams — without tripping a structural {!Invariant};
    + the simulator's observed vector-memory traffic equals the static
      Equation-5 prediction ([issue_bytes x trips x reps] per vectorized
      phase, per core) — tying {!Occamy_compiler.Analysis} to what the
      machine actually did.

    The [inject] hook transforms the loops fed to the *compiler* while
    the reference still runs the originals — a seeded-bug lever for
    testing that the fuzzer catches miscompilation (e.g. an off-by-one
    stencil offset) and that {!Shrink} minimises it. *)

type case = {
  case_seed : int;  (** the one number that reproduces everything *)
  sched_seed : int; (** derived: seeds memory init + adversarial schedules *)
  loops : Occamy_compiler.Loop_ir.t list;
  options : Occamy_compiler.Codegen.options;
}

val case_of_seed : ?cfg:Gen.cfg -> int -> case
(** Deterministically grow the [case_seed]-th case. Schedule seed and
    compiler options are pure functions of the seed, never of the loops —
    so shrinking the loops re-runs the identical schedules. *)

type failure = {
  stage : string;   (** which check tripped: compile / interp / sim / ... *)
  message : string;
}

val pp_failure : Format.formatter -> failure -> unit
val pp_case : Format.formatter -> case -> unit

val run :
  ?inject:(Occamy_compiler.Loop_ir.t -> Occamy_compiler.Loop_ir.t) ->
  case ->
  (unit, failure) result
(** Execute the whole differential pipeline on one case. Exceptions from
    any stage (compiler rejection, interpreter fault, simulator error)
    are caught and reported as failures — a fuzzer must survive its own
    counterexamples. *)

val eps : float
(** Relative value tolerance of the interp-vs-reference comparison. *)

val fresh_image :
  seed:int ->
  ?extra_plan:(string * int) list ->
  Occamy_compiler.Loop_ir.t list ->
  (string, float array) Hashtbl.t
(** The deterministic initial memory image of a case (keyed by its
    schedule seed): every array of the loops' {!Occamy_compiler.Codegen.array_plan},
    random in [-2, 2). [extra_plan] widens arrays whose padded size
    differs in the program actually compiled. *)

val copy_image :
  (string, float array) Hashtbl.t -> (string, float array) Hashtbl.t

val lookup : (string, float array) Hashtbl.t -> string -> float array
(** Raises [Invalid_argument] on a missing array. *)

val predicted_bytes :
  options:Occamy_compiler.Codegen.options ->
  Occamy_compiler.Loop_ir.t list ->
  float
(** The static Equation-5 traffic prediction for a compiled workload on
    one core: per-iteration issue bytes times the iteration space of
    every phase that runs vectorized under [options] (TMR-aware — a TMR
    lowering issues each load three times). The simulator's observed
    vector-memory traffic must equal this exactly. *)

val run_interp :
  stage:string ->
  eps:float ->
  ?env:Occamy_isa.Interp.env ->
  Occamy_core.Workload.t ->
  (string, float array) Hashtbl.t ->
  (string, float array) Hashtbl.t ->
  (unit, failure) result
(** Run the compiled workload under the functional interpreter seeded
    from the init image (last argument) and compare every declared array
    against the expectation image (second-to-last): the single-executor
    building block of {!run}, exposed for the fault-injection layer's
    fault-free sanity checks. *)

val schedule_env :
  ?max_granules:int ->
  ?period:int ->
  ?refuse_p:float ->
  seed:int ->
  unit ->
  Occamy_isa.Interp.env
(** Adversarial interpreter environment: the suggested vector length
    changes every [period] `<decision>` reads and requests are refused
    with probability [refuse_p] (forcing status-spins) — driven by
    {!Rng}, so a given seed is one exact schedule. *)
