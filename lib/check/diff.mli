(** The differential oracle: one fuzz case, three executors, one verdict.

    A case is a random multi-phase workload plus a schedule seed and
    compiler options, all derived purely from one integer — so the
    printed seed IS the repro. The oracle then checks, in order:

    + the workload compiles;
    + the compiled program, run under {!Occamy_isa.Interp} at every solo
      vector width and under adversarial reconfiguration schedules
      (suggested width churning, requests randomly refused), computes
      what {!Occamy_compiler.Reference} computes — the paper's §6.4
      correctness property, within a reduction-reassociation tolerance;
    + the cycle simulator runs it on all four architectures — under both
      the naive tick loop and the event-horizon fast-forwarding loop
      ([Config.fast_forward]), which must agree bit-for-bit on metrics
      and trace streams — without tripping a structural {!Invariant};
    + the simulator's observed vector-memory traffic equals the static
      Equation-5 prediction ([issue_bytes x trips x reps] per vectorized
      phase, per core) — tying {!Occamy_compiler.Analysis} to what the
      machine actually did.

    The [inject] hook transforms the loops fed to the *compiler* while
    the reference still runs the originals — a seeded-bug lever for
    testing that the fuzzer catches miscompilation (e.g. an off-by-one
    stencil offset) and that {!Shrink} minimises it. *)

type case = {
  case_seed : int;  (** the one number that reproduces everything *)
  sched_seed : int; (** derived: seeds memory init + adversarial schedules *)
  loops : Occamy_compiler.Loop_ir.t list;
  options : Occamy_compiler.Codegen.options;
}

val case_of_seed : ?cfg:Gen.cfg -> int -> case
(** Deterministically grow the [case_seed]-th case. Schedule seed and
    compiler options are pure functions of the seed, never of the loops —
    so shrinking the loops re-runs the identical schedules. *)

type failure = {
  stage : string;   (** which check tripped: compile / interp / sim / ... *)
  message : string;
}

val pp_failure : Format.formatter -> failure -> unit
val pp_case : Format.formatter -> case -> unit

val run :
  ?inject:(Occamy_compiler.Loop_ir.t -> Occamy_compiler.Loop_ir.t) ->
  case ->
  (unit, failure) result
(** Execute the whole differential pipeline on one case. Exceptions from
    any stage (compiler rejection, interpreter fault, simulator error)
    are caught and reported as failures — a fuzzer must survive its own
    counterexamples. *)

val schedule_env :
  ?max_granules:int ->
  ?period:int ->
  ?refuse_p:float ->
  seed:int ->
  unit ->
  Occamy_isa.Interp.env
(** Adversarial interpreter environment: the suggested vector length
    changes every [period] `<decision>` reads and requests are refused
    with probability [refuse_p] (forcing status-spins) — driven by
    {!Rng}, so a given seed is one exact schedule. *)
