module Loop_ir = Occamy_compiler.Loop_ir

type result = {
  case : Diff.case;
  failure : Diff.failure;
  steps : int;
  tried : int;
}

let size (c : Diff.case) =
  List.fold_left (fun acc l -> acc + Loop_ir.size l) 0 c.Diff.loops

(* Shrinking measure: structural size first, total iteration space as a
   tie-breaker (so trip 65 -> 64 counts as progress even when the bit
   length is unchanged). Strictly decreasing on acceptance. *)
let measure (c : Diff.case) =
  ( size c,
    List.fold_left
      (fun acc (l : Loop_ir.t) -> acc + (l.Loop_ir.trip_count * l.Loop_ir.outer_reps))
      0 c.Diff.loops )

let smaller a b = compare (measure a) (measure b) < 0

(* ------------------------------------------------------------------ *)
(* Candidate generation (deterministic order)                          *)
(* ------------------------------------------------------------------ *)

let replace_nth xs n x = List.mapi (fun i y -> if i = n then x else y) xs
let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

(* Immediate simplifications of an expression: each operand of the root
   operator, then a plain constant. Nested nodes surface after earlier
   acceptances re-run the pass. *)
let expr_candidates (e : Loop_ir.expr) =
  let const = Loop_ir.Const 1.0 in
  match e with
  | Loop_ir.Op (_, args) -> args @ [ const ]
  | Loop_ir.Const _ -> []
  | Loop_ir.Load _ | Loop_ir.Param _ -> [ const ]

let stmt_with_expr s e =
  match s with
  | Loop_ir.Store (ref_, _) -> Loop_ir.Store (ref_, e)
  | Loop_ir.Reduce (op, name, _) -> Loop_ir.Reduce (op, name, e)

let stmt_expr = function
  | Loop_ir.Store (_, e) -> e
  | Loop_ir.Reduce (_, _, e) -> e

let zero_offsets_stmt s =
  let rec ze = function
    | Loop_ir.Load r -> Loop_ir.Load { r with Loop_ir.offset = 0 }
    | Loop_ir.Op (op, args) -> Loop_ir.Op (op, List.map ze args)
    | (Loop_ir.Const _ | Loop_ir.Param _) as e -> e
  in
  match s with
  | Loop_ir.Store (r, e) -> Loop_ir.Store ({ r with Loop_ir.offset = 0 }, ze e)
  | Loop_ir.Reduce (op, name, e) -> Loop_ir.Reduce (op, name, ze e)

(* Variants of one loop, smallest-step last: trip-count collapses, outer
   reps, offset zeroing, statement drops, expression simplification. *)
let loop_candidates (l : Loop_ir.t) =
  let with_trip t = { l with Loop_ir.trip_count = t } in
  let trips =
    List.filter_map
      (fun t -> if t >= 1 && t < l.Loop_ir.trip_count then Some (with_trip t) else None)
      [ 1; l.Loop_ir.trip_count / 2; l.Loop_ir.trip_count - 1 ]
  in
  let reps =
    if l.Loop_ir.outer_reps > 1 then [ { l with Loop_ir.outer_reps = 1 } ]
    else []
  in
  let zeroed =
    let body = List.map zero_offsets_stmt l.Loop_ir.body in
    if body <> l.Loop_ir.body then [ { l with Loop_ir.body } ] else []
  in
  let drops =
    if List.length l.Loop_ir.body > 1 then
      List.mapi
        (fun i _ -> { l with Loop_ir.body = drop_nth l.Loop_ir.body i })
        l.Loop_ir.body
    else []
  in
  let simplified =
    List.concat
      (List.mapi
         (fun i s ->
           List.map
             (fun e ->
               {
                 l with
                 Loop_ir.body =
                   replace_nth l.Loop_ir.body i (stmt_with_expr s e);
               })
             (expr_candidates (stmt_expr s)))
         l.Loop_ir.body)
  in
  trips @ reps @ zeroed @ drops @ simplified

let case_candidates (c : Diff.case) =
  let with_loops loops = { c with Diff.loops } in
  let drops =
    if List.length c.Diff.loops > 1 then
      List.mapi (fun i _ -> with_loops (drop_nth c.Diff.loops i)) c.Diff.loops
    else []
  in
  let per_loop =
    List.concat
      (List.mapi
         (fun i l ->
           List.map
             (fun l' -> with_loops (replace_nth c.Diff.loops i l'))
             (loop_candidates l))
         c.Diff.loops)
  in
  (* Keep only candidates the IR validator accepts: shrinking must stay
     inside the compiler's supported class. *)
  List.filter_map
    (fun cand ->
      match List.map Loop_ir.validate cand.Diff.loops with
      | _ -> Some cand
      | exception _ -> None)
    (drops @ per_loop)

(* ------------------------------------------------------------------ *)
(* Greedy first-improvement descent                                    *)
(* ------------------------------------------------------------------ *)

let minimise ?inject ?oracle ?(max_tries = 600) (c0 : Diff.case)
    (f0 : Diff.failure) =
  let oracle =
    match oracle with Some f -> f | None -> fun c -> Diff.run ?inject c
  in
  let tried = ref 0 in
  let steps = ref 0 in
  let best = ref c0 in
  let best_failure = ref f0 in
  let progress = ref true in
  while !progress && !tried < max_tries do
    progress := false;
    let candidates = case_candidates !best in
    (* First improving candidate wins; restart the pass from it. *)
    let rec try_all = function
      | [] -> ()
      | cand :: rest ->
        if !tried >= max_tries then ()
        else if not (smaller cand !best) then try_all rest
        else begin
          incr tried;
          match oracle cand with
          | Error f ->
            best := cand;
            best_failure := f;
            incr steps;
            progress := true
          | Ok () -> try_all rest
        end
    in
    try_all candidates
  done;
  { case = !best; failure = !best_failure; steps = !steps; tried = !tried }

(* ------------------------------------------------------------------ *)
(* Generic list minimisation (fault schedules)                         *)
(* ------------------------------------------------------------------ *)

let minimise_list ?(max_tries = 200) ~keep xs =
  let tried = ref 0 in
  let ask ys =
    incr tried;
    keep ys
  in
  if xs = [] || (!tried < max_tries && ask []) then []
  else begin
    (* Greedy single drops, restarting from the head after every
       acceptance: each kept element of the result is individually
       necessary (1-minimality), and every probe strictly shortens the
       candidate, so the loop terminates without relying on
       [max_tries]. *)
    let best = ref xs in
    let progress = ref true in
    while !progress && !tried < max_tries do
      progress := false;
      let rec try_drop acc = function
        | [] -> ()
        | x :: rest ->
          let cand = List.rev_append acc rest in
          if cand <> [] && !tried < max_tries && ask cand then begin
            best := cand;
            progress := true
          end
          else try_drop (x :: acc) rest
      in
      try_drop [] !best
    done;
    !best
  end
