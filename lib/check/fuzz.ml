module Loop_ir = Occamy_compiler.Loop_ir
module Domain_pool = Occamy_util.Domain_pool

type counterexample = {
  cx_index : int;
  cx_seed : int;
  cx_failure : Diff.failure;
  cx_original : Diff.case;
  cx_shrunk : Diff.case;
  cx_steps : int;
}

type report = {
  root_seed : int;
  cases_run : int;
  elapsed : float;
  inject : string option;
  counterexample : counterexample option;
}

(* ------------------------------------------------------------------ *)
(* Seeded bugs                                                         *)
(* ------------------------------------------------------------------ *)

(* Bump the first load's stencil offset: the compiled code reads one
   element to the right of what the reference reads. *)
let off_by_one_stencil (l : Loop_ir.t) =
  let hit = ref false in
  let rec fix = function
    | Loop_ir.Load r when not !hit ->
      hit := true;
      Loop_ir.Load { r with Loop_ir.offset = r.Loop_ir.offset + 1 }
    | Loop_ir.Load _ as e -> e
    | Loop_ir.Op (op, args) -> Loop_ir.Op (op, List.map fix args)
    | (Loop_ir.Const _ | Loop_ir.Param _) as e -> e
  in
  let body =
    List.map
      (function
        | Loop_ir.Store (r, e) -> Loop_ir.Store (r, fix e)
        | Loop_ir.Reduce (op, name, e) -> Loop_ir.Reduce (op, name, fix e))
      l.Loop_ir.body
  in
  { l with Loop_ir.body }

(* Compile one iteration short: a classic tail bug. *)
let short_trip (l : Loop_ir.t) =
  if l.Loop_ir.trip_count > 1 then
    { l with Loop_ir.trip_count = l.Loop_ir.trip_count - 1 }
  else l

(* Perturb every loop-invariant parameter: a wrong broadcast constant. *)
let skew_param (l : Loop_ir.t) =
  let rec fix = function
    | Loop_ir.Param (name, v) -> Loop_ir.Param (name, v +. 0.125)
    | Loop_ir.Op (op, args) -> Loop_ir.Op (op, List.map fix args)
    | (Loop_ir.Load _ | Loop_ir.Const _) as e -> e
  in
  let body =
    List.map
      (function
        | Loop_ir.Store (r, e) -> Loop_ir.Store (r, fix e)
        | Loop_ir.Reduce (op, name, e) -> Loop_ir.Reduce (op, name, fix e))
      l.Loop_ir.body
  in
  { l with Loop_ir.body }

let injections =
  [
    ("stencil-off-by-one", off_by_one_stencil);
    ("short-trip", short_trip);
    ("skew-param", skew_param);
  ]

let inject_of_name name = List.assoc_opt name injections

let resolve_inject = function
  | None -> None
  | Some name -> (
    match inject_of_name name with
    | Some f -> Some f
    | None ->
      invalid_arg
        (Printf.sprintf "unknown injection %S (known: %s)" name
           (String.concat ", " (List.map fst injections))))

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let run_case ?gen_cfg ?inject_name case_seed =
  let inject = resolve_inject inject_name in
  Diff.run ?inject (Diff.case_of_seed ?cfg:gen_cfg case_seed)

let repro_command ?inject_name case_seed =
  let base = Printf.sprintf "occamy-sim fuzz --case %d" case_seed in
  match inject_name with
  | None -> base
  | Some n -> Printf.sprintf "%s --inject %s" base n

(* Batch granularity tracks the workers the pool will actually use (the
   elastic cap in Domain_pool), not the raw request: a capped [-j 64]
   run on a 2-core host should not pay 512-case batches' worth of
   deadline overshoot per loop. Each batch reuses the persistent pool,
   so small batches no longer cost a spawn/join each. *)
let batch_size ~oversubscribe jobs =
  let eff =
    Domain_pool.effective_workers ~oversubscribe
      ~cores:(Domain.recommended_domain_count ())
      ~jobs ~tasks:jobs
  in
  max 16 (eff * 8)

let run ?gen_cfg ?inject_name ?minutes ?(on_batch = fun ~done_:_ -> ())
    ?oversubscribe ~seed ~count ~jobs () =
  let oversubscribe =
    match oversubscribe with
    | Some b -> b
    | None -> Domain_pool.oversubscribe_from_env ()
  in
  (* A negative count or a non-positive deadline would silently run zero
     cases and report success; reject both loudly, like Domain_pool does
     for its job count. *)
  if count < 0 then
    invalid_arg (Printf.sprintf "Fuzz.run: negative count %d" count);
  (match minutes with
  | Some m when m <= 0.0 ->
    invalid_arg (Printf.sprintf "Fuzz.run: minutes %g (must be > 0)" m)
  | _ -> ());
  let inject = resolve_inject inject_name in
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun m -> t0 +. (m *. 60.0)) minutes in
  let expired () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () > d
  in
  let done_ = ref 0 in
  let found = ref None in
  let continue () =
    !found = None
    && (match deadline with Some _ -> not (expired ()) | None -> !done_ < count)
  in
  while continue () do
    let n =
      match deadline with
      | Some _ -> batch_size ~oversubscribe jobs
      | None -> min (batch_size ~oversubscribe jobs) (count - !done_)
    in
    let indices = List.init n (fun k -> !done_ + k) in
    let results =
      Domain_pool.map ~jobs ~oversubscribe
        (fun i ->
          let cs = Rng.case_seed ~seed i in
          (i, cs, Diff.run ?inject (Diff.case_of_seed ?cfg:gen_cfg cs)))
        indices
    in
    done_ := !done_ + n;
    (match
       List.find_opt (fun (_, _, r) -> Result.is_error r) results
     with
    | Some (i, cs, Error _) ->
      (* Shrink on the calling domain; the minimiser re-establishes the
         failure rather than trusting the batch result. *)
      let case = Diff.case_of_seed ?cfg:gen_cfg cs in
      let f0 =
        match Diff.run ?inject case with
        | Error f -> f
        | Ok () ->
          { Diff.stage = "replay"; message = "failure did not reproduce" }
      in
      let s = Shrink.minimise ?inject case f0 in
      found :=
        Some
          {
            cx_index = i;
            cx_seed = cs;
            cx_failure = s.Shrink.failure;
            cx_original = case;
            cx_shrunk = s.Shrink.case;
            cx_steps = s.Shrink.steps;
          }
    | _ -> ());
    on_batch ~done_:!done_
  done;
  {
    root_seed = seed;
    cases_run = !done_;
    elapsed = Unix.gettimeofday () -. t0;
    inject = inject_name;
    counterexample = !found;
  }

let pp_report ppf r =
  match r.counterexample with
  | None ->
    Format.fprintf ppf "fuzz: %d cases, seed %d, %.1fs — all passed"
      r.cases_run r.root_seed r.elapsed
  | Some cx ->
    Format.fprintf ppf
      "@[<v>fuzz: FAILED at case %d of %d (seed %d, %.1fs)@,%a@,shrunk from \
       size %d to %d in %d steps:@,%a@,repro: %s@]"
      cx.cx_index r.cases_run r.root_seed r.elapsed Diff.pp_failure
      cx.cx_failure (Shrink.size cx.cx_original) (Shrink.size cx.cx_shrunk)
      cx.cx_steps Diff.pp_case cx.cx_shrunk
      (repro_command ?inject_name:r.inject cx.cx_seed)
