(** Structural invariants of a simulation run.

    These are properties every run must satisfy regardless of workload or
    schedule — the safety net behind the differential oracle:

    - lane conservation: every replan's decision vector sums to at most
      the machine's ExeBU count, and every per-core decision stays within
      it (the ResourceTbl invariant [AL + sum VL = total], seen from the
      trace);
    - grant discipline: a granted `MSR <VL>` matches its request on the
      spatial architectures (the ResourceTbl grants exactly what was
      asked) and the full bus width on FTS; a denial implies the request
      exceeded what was available;
    - monotone time: cycle stamps never decrease within a trace track,
      phase spans nest properly, and stall/blocked episodes end no later
      than the cycle they are stamped at;
    - metrics consistency: utilization is a fraction, busy lane-cycles
      fit inside [total_cycles * lanes], per-phase tallies never exceed
      their core's totals, and the counters registry agrees with the
      record it was populated from. *)

val check_attrib :
  cfg:Occamy_core.Config.t -> Occamy_core.Metrics.t -> (unit, string) result
(** Top-down cycle-accounting conservation on [Metrics.attrib]: one row
    per core, non-negative entries, every core's buckets summing to the
    same simulated cycle count, and that count at least [total_cycles]
    (the run may drain past the last finish). An empty array — a run
    with attribution disabled — passes vacuously. Included in
    {!check_metrics}. *)

val check_metrics :
  cfg:Occamy_core.Config.t -> Occamy_core.Metrics.t -> (unit, string) result
(** Range and consistency checks on the metrics record itself,
    including {!check_attrib}. *)

val check_counters : Occamy_core.Metrics.t -> (unit, string) result
(** Re-derives a sample of counters from the record and compares against
    {!Occamy_core.Metrics.counters} — guards the registry population
    logic against drift. *)

val check_trace :
  cfg:Occamy_core.Config.t ->
  arch:Occamy_core.Arch.t ->
  Occamy_obs.Trace.t ->
  (unit, string) result
(** Per-track stream checks: monotone cycles, VL request/grant/deny
    pairing, phase begin/end balance, replan lane conservation and
    verdict vocabulary. Checks that need a complete stream (pairing,
    balance) are skipped on tracks that dropped events. Disabled traces
    pass vacuously. *)

val check_run :
  cfg:Occamy_core.Config.t ->
  arch:Occamy_core.Arch.t ->
  trace:Occamy_obs.Trace.t ->
  Occamy_core.Metrics.t ->
  (unit, string) result
(** All of the above; the first failure wins. *)

val check_equivalent :
  Occamy_core.Metrics.t -> Occamy_core.Metrics.t -> (unit, string) result
(** Bit-identical structural equality between two runs' metrics — the
    sim-vs-sim oracle behind [Config.fast_forward]: the naive tick loop
    and the event-horizon skipping loop must produce equal records. On
    divergence the error names the first differing counter (falling back
    to a generic report for fields outside the registry). *)

val check_same_trace :
  Occamy_obs.Trace.t -> Occamy_obs.Trace.t -> (unit, string) result
(** Event-stream equality between two traces: same tracks, same drop
    counts, and the same cycle-stamped events in the same order. The
    error pinpoints the first differing event. *)
