module Config = Occamy_core.Config
module Arch = Occamy_core.Arch
module Metrics = Occamy_core.Metrics
module Trace = Occamy_obs.Trace
module Event = Occamy_obs.Event
module Counters = Occamy_obs.Counters
module Roofline = Occamy_lanemgr.Roofline
module Level = Occamy_mem.Level

let failf fmt = Format.kasprintf (fun s -> Error s) fmt

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let rec all_ok = function
  | [] -> Ok ()
  | r :: rest -> ( match r with Ok () -> all_ok rest | Error _ as e -> e)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let check_phase ~cfg ~core total_cycles (p : Metrics.phase_stat) =
  let open Metrics in
  if p.ps_start < 0 || p.ps_end < p.ps_start then
    failf "core%d phase %s: span [%d, %d] is not a valid interval" core
      p.ps_name p.ps_start p.ps_end
  else if p.ps_end > total_cycles then
    failf "core%d phase %s: ends at %d, after the run's last cycle %d" core
      p.ps_name p.ps_end total_cycles
  else if p.ps_issued_compute < 0 || p.ps_issued_mem < 0 || p.ps_rename_stalls < 0
  then failf "core%d phase %s: negative issue/stall tally" core p.ps_name
  else if p.ps_avg_vl < 0.0 || p.ps_avg_vl > float_of_int cfg.Config.exebus +. 1e-9
  then
    failf "core%d phase %s: avg_vl %.3f outside [0, %d] granules" core
      p.ps_name p.ps_avg_vl cfg.Config.exebus
  else Ok ()

let check_core ~cfg total_cycles (c : Metrics.core_result) =
  let open Metrics in
  if c.finish < 0 || c.finish > total_cycles then
    failf "core%d: finish %d outside [0, %d]" c.core c.finish total_cycles
  else if
    c.issued_compute < 0 || c.issued_mem < 0 || c.rename_stall_cycles < 0
    || c.reconfig_blocked_cycles < 0 || c.monitor_instrs < 0
    || c.monitor_stall_cycles < 0 || c.reconfigs < 0 || c.failed_vl_requests < 0
  then failf "core%d: negative counter" c.core
  else if c.lsu_peak_loads < 0 || c.lsu_peak_loads > cfg.Config.lsu_load_capacity
  then
    failf "core%d: LSU load high-water %d outside queue capacity %d" c.core
      c.lsu_peak_loads cfg.Config.lsu_load_capacity
  else if
    c.lsu_peak_stores < 0 || c.lsu_peak_stores > cfg.Config.lsu_store_capacity
  then
    failf "core%d: LSU store high-water %d outside queue capacity %d" c.core
      c.lsu_peak_stores cfg.Config.lsu_store_capacity
  else
    let* () =
      all_ok (List.map (check_phase ~cfg ~core:c.core total_cycles) c.phases)
    in
    let sum f = List.fold_left (fun acc p -> acc + f p) 0 c.phases in
    if sum (fun p -> p.ps_issued_compute) > c.issued_compute then
      failf "core%d: phases issued %d compute instrs, core total is only %d"
        c.core
        (sum (fun p -> p.ps_issued_compute))
        c.issued_compute
    else if sum (fun p -> p.ps_issued_mem) > c.issued_mem then
      failf "core%d: phases issued %d mem instrs, core total is only %d" c.core
        (sum (fun p -> p.ps_issued_mem))
        c.issued_mem
    else Ok ()

(* Top-down cycle-accounting conservation: when attribution ran, every
   row covers one core, entries are non-negative, every core's buckets
   sum to the same simulated cycle count, and that count is at least the
   reported total (the run may drain past the last finish). [[||]]
   passes vacuously — attribution was off. *)
let check_attrib ~cfg (m : Metrics.t) =
  let open Metrics in
  let a = m.attrib in
  if Array.length a = 0 then Ok ()
  else if Array.length a <> cfg.Config.cores then
    failf "attribution covers %d cores, machine has %d" (Array.length a)
      cfg.Config.cores
  else if
    Array.exists
      (fun row -> Array.length row <> Occamy_obs.Attrib.num_buckets)
      a
  then
    failf "attribution row does not cover the %d buckets"
      Occamy_obs.Attrib.num_buckets
  else if Array.exists (Array.exists (fun v -> v < 0)) a then
    failf "negative cycle count in attribution"
  else begin
    let sum row = Array.fold_left ( + ) 0 row in
    let cycles = sum a.(0) in
    match
      Array.find_index (fun row -> sum row <> cycles) a
    with
    | Some i ->
      failf "attribution not conserved: core0 accounts %d cycles, core%d %d"
        cycles i (sum a.(i))
    | None ->
      if cycles < m.total_cycles then
        failf "attribution accounts %d cycles, run reports %d" cycles
          m.total_cycles
      else Ok ()
  end

let check_metrics ~cfg (m : Metrics.t) =
  let open Metrics in
  let lanes = float_of_int (Config.total_lanes cfg) in
  let levels = List.length Level.all in
  if m.total_cycles < 0 then failf "total_cycles %d is negative" m.total_cycles
  else if m.simd_util < 0.0 || m.simd_util > 1.0 +. 1e-9 then
    failf "simd_util %.6f outside [0, 1]" m.simd_util
  else if
    m.busy_lane_cycles < 0.0
    || m.busy_lane_cycles > (float_of_int m.total_cycles *. lanes) +. 1e-6
  then
    failf "busy_lane_cycles %.1f exceeds cycles x lanes = %.1f"
      m.busy_lane_cycles
      (float_of_int m.total_cycles *. lanes)
  else if m.replans < 0 then failf "replans %d is negative" m.replans
  else if
    Array.length m.mem_accesses <> levels || Array.length m.mem_bytes <> levels
  then failf "memory traffic arrays do not cover the %d levels" levels
  else if Array.exists (fun a -> a < 0) m.mem_accesses then
    failf "negative access count in memory traffic"
  else if Array.exists (fun b -> b < 0.0) m.mem_bytes then
    failf "negative byte count in memory traffic"
  else if Array.length m.cores <> cfg.Config.cores then
    failf "metrics cover %d cores, machine has %d" (Array.length m.cores)
      cfg.Config.cores
  else
    let* () = check_attrib ~cfg m in
    all_ok
      (Array.to_list (Array.map (check_core ~cfg m.total_cycles) m.cores))

(* ------------------------------------------------------------------ *)
(* Counters registry vs the record it came from                        *)
(* ------------------------------------------------------------------ *)

let check_counters (m : Metrics.t) =
  let open Metrics in
  let cs = Metrics.counters m in
  let expect name v =
    let got = Counters.get_exn cs name in
    if Float.abs (got -. v) > 1e-6 *. Float.max 1.0 (Float.abs v) then
      failf "counter %s is %.6f, record says %.6f" name got v
    else Ok ()
  in
  let* () = expect "sim.total_cycles" (float_of_int m.total_cycles) in
  let* () = expect "sim.replans" (float_of_int m.replans) in
  let* () = expect "sim.simd_util" m.simd_util in
  let* () = expect "sim.cores" (float_of_int (Array.length m.cores)) in
  let* () =
    all_ok
      (List.map
         (fun lvl ->
           let tag = String.lowercase_ascii (Level.to_string lvl) in
           let d = Level.depth lvl in
           let* () =
             expect
               (Printf.sprintf "mem.%s.accesses" tag)
               (float_of_int m.mem_accesses.(d))
           in
           expect (Printf.sprintf "mem.%s.bytes" tag) m.mem_bytes.(d))
         Level.all)
  in
  let* () =
    all_ok
      (Array.to_list
         (Array.map
            (fun (c : Metrics.core_result) ->
              let pfx = Printf.sprintf "core%d." c.core in
              let* () = expect (pfx ^ "finish") (float_of_int c.finish) in
              let* () =
                expect (pfx ^ "issued_compute")
                  (float_of_int c.issued_compute)
              in
              let* () =
                expect (pfx ^ "reconfigs") (float_of_int c.reconfigs)
              in
              expect (pfx ^ "phases") (float_of_int (List.length c.phases)))
            m.cores))
  in
  (* Per-level bytes must add up to the run's total traffic: each access
     is booked at exactly one level. *)
  let total =
    List.fold_left
      (fun acc lvl ->
        acc
        +. Counters.get_exn cs
             (Printf.sprintf "mem.%s.bytes"
                (String.lowercase_ascii (Level.to_string lvl))))
      0.0 Level.all
  in
  let want = Metrics.total_mem_bytes m in
  if Float.abs (total -. want) > 1e-6 *. Float.max 1.0 want then
    failf "per-level byte counters sum to %.1f, total traffic is %.1f" total
      want
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Trace streams                                                       *)
(* ------------------------------------------------------------------ *)

let verdict_vocabulary = "-" :: Roofline.bound_names

let check_replan ~cfg ~track ~cycle decisions verdicts =
  let exebus = cfg.Config.exebus in
  if Array.length decisions <> cfg.Config.cores then
    failf "%s@%d: replan decision vector has %d entries for %d cores" track
      cycle (Array.length decisions) cfg.Config.cores
  else if Array.exists (fun d -> d < 0 || d > exebus) decisions then
    failf "%s@%d: replan decision outside [0, %d]" track cycle exebus
  else if Array.fold_left ( + ) 0 decisions > exebus then
    failf "%s@%d: replan decisions sum to %d, machine has %d ExeBUs" track
      cycle
      (Array.fold_left ( + ) 0 decisions)
      exebus
  else if
    Array.exists (fun v -> not (List.mem v verdict_vocabulary)) verdicts
  then failf "%s@%d: replan verdict outside the roofline vocabulary" track cycle
  else Ok ()

(* One core track: VL request/grant/deny pairing and phase balance.
   [complete] is false when the ring dropped events — then only the
   stateless per-event checks run, since a lost request would make the
   pairing state machine report phantom violations. *)
let check_core_track ~cfg ~arch ~complete ~track events =
  let exebus = cfg.Config.exebus in
  let pending_req = ref None in
  let open_phase = ref None in
  let step (cycle, ev) =
    match ev with
    | Event.Vl_request { requested; _ } ->
      if requested < 0 || requested > exebus then
        failf "%s@%d: VL request for %d granules outside [0, %d]" track cycle
          requested exebus
      else begin
        pending_req := Some requested;
        Ok ()
      end
    | Event.Vl_grant { granted; al; _ } ->
      let paired = !pending_req in
      pending_req := None;
      if granted < 0 || granted > exebus then
        failf "%s@%d: granted VL %d outside [0, %d]" track cycle granted exebus
      else if al < 0 || al > exebus then
        failf "%s@%d: AL %d outside [0, %d]" track cycle al exebus
      else if Arch.equal arch Arch.Fts then
        if granted <> 0 && granted <> exebus then
          failf "%s@%d: FTS granted %d granules; it only grants 0 or %d" track
            cycle granted exebus
        else Ok ()
      else begin
        match paired with
        | Some r when complete && granted <> r ->
          failf "%s@%d: granted %d granules, request asked for %d" track cycle
            granted r
        | _ -> Ok ()
      end
    | Event.Vl_deny { requested; al; _ } ->
      let paired = !pending_req in
      pending_req := None;
      if requested <= al then
        failf "%s@%d: denied a request for %d with %d granules available"
          track cycle requested al
      else begin
        match paired with
        | Some r when complete && requested <> r ->
          failf "%s@%d: denial names %d granules, request asked for %d" track
            cycle requested r
        | _ -> Ok ()
      end
    | Event.Phase_begin { phase; _ } -> begin
      match !open_phase with
      | Some p when complete ->
        failf "%s@%d: phase %s begins inside still-open phase %s" track cycle
          phase p
      | _ ->
        open_phase := Some phase;
        Ok ()
    end
    | Event.Phase_end { phase; _ } -> begin
      match !open_phase with
      | Some p when complete && p <> phase ->
        failf "%s@%d: phase %s ends, but %s is the open phase" track cycle
          phase p
      | None when complete ->
        failf "%s@%d: phase %s ends without a begin" track cycle phase
      | _ ->
        open_phase := None;
        Ok ()
    end
    | _ -> Ok ()
  in
  let* () = all_ok (List.map step events) in
  match !open_phase with
  | Some p when complete ->
    failf "%s: phase %s never ended" track p
  | _ -> Ok ()

let check_track ~cfg ~arch tr ~track =
  let name = Trace.track_name tr ~track in
  let events = Trace.events tr ~track in
  let complete = Trace.dropped tr ~track = 0 in
  (* Monotone, non-negative cycle stamps; episode spans that close at or
     before their stamp. These hold even on truncated rings (dropping
     oldest events preserves order). *)
  let last = ref min_int in
  let stream_check (cycle, ev) =
    if cycle < 0 then failf "%s: negative cycle stamp %d" name cycle
    else if cycle < !last then
      failf "%s: cycle stamp %d after %d — time ran backwards" name cycle !last
    else begin
      last := cycle;
      match Event.duration ev with
      | Some (start, len) ->
        if start < 0 || len < 0 then
          failf "%s@%d: episode with negative start/length" name cycle
        else if start + len > cycle then
          failf "%s@%d: episode [%d, +%d] ends after its own stamp" name cycle
            start len
        else Ok ()
      | None -> Ok ()
    end
  in
  let* () = all_ok (List.map stream_check events) in
  if name = "LaneMgr" then
    all_ok
      (List.map
         (fun (cycle, ev) ->
           match ev with
           | Event.Replan { decisions; verdicts; _ } ->
             check_replan ~cfg ~track:name ~cycle decisions verdicts
           | _ -> Ok ())
         events)
  else check_core_track ~cfg ~arch ~complete ~track:name events

let check_trace ~cfg ~arch tr =
  if not (Trace.enabled tr) then Ok ()
  else
    all_ok
      (List.init (Trace.num_tracks tr) (fun track ->
           check_track ~cfg ~arch tr ~track))

let check_run ~cfg ~arch ~trace m =
  let* () = check_metrics ~cfg m in
  let* () = check_counters m in
  check_trace ~cfg ~arch trace

(* ------------------------------------------------------------------ *)
(* Sim-vs-sim equivalence (fast-forward on vs off)                     *)
(* ------------------------------------------------------------------ *)

let check_equivalent m_ref m_got =
  if m_ref = m_got then Ok ()
  else begin
    (* Name the first diverging counter; fall back to a generic report
       when the divergence hides in a field the registry doesn't carry
       (e.g. a phase list or timeline). *)
    let cs_ref = Metrics.counters m_ref and cs_got = Metrics.counters m_got in
    let diverging =
      List.find_opt
        (fun (name, v) -> Counters.get cs_got name <> Some v)
        (Counters.to_list cs_ref)
    in
    match diverging with
    | Some (name, v) ->
      let got =
        match Counters.get cs_got name with
        | Some w -> Printf.sprintf "%.17g" w
        | None -> "missing"
      in
      failf "counter %s: %.17g vs %s" name v got
    | None -> failf "metrics records differ outside the counters registry"
  end

let check_same_trace tr_ref tr_got =
  if Trace.enabled tr_ref <> Trace.enabled tr_got then
    failf "one trace is enabled, the other is not"
  else if not (Trace.enabled tr_ref) then Ok ()
  else if Trace.num_tracks tr_ref <> Trace.num_tracks tr_got then
    failf "trace has %d tracks vs %d" (Trace.num_tracks tr_ref)
      (Trace.num_tracks tr_got)
  else
    all_ok
      (List.init (Trace.num_tracks tr_ref) (fun track ->
           let name = Trace.track_name tr_ref ~track in
           if name <> Trace.track_name tr_got ~track then
             failf "track %d named %s vs %s" track name
               (Trace.track_name tr_got ~track)
           else if Trace.dropped tr_ref ~track <> Trace.dropped tr_got ~track
           then
             failf "%s: dropped %d events vs %d" name
               (Trace.dropped tr_ref ~track)
               (Trace.dropped tr_got ~track)
           else
             let evs_ref = Trace.events tr_ref ~track in
             let evs_got = Trace.events tr_got ~track in
             let rec cmp i r g =
               match (r, g) with
               | [], [] -> Ok ()
               | (c, e) :: _, [] ->
                 failf "%s: event %d (@%d %a) missing from second trace" name
                   i c Event.pp e
               | [], (c, e) :: _ ->
                 failf "%s: second trace has extra event %d (@%d %a)" name i
                   c Event.pp e
               | (c1, e1) :: r', (c2, e2) :: g' ->
                 if c1 <> c2 || e1 <> e2 then
                   failf "%s: event %d is @%d %a vs @%d %a" name i c1
                     Event.pp e1 c2 Event.pp e2
                 else cmp (i + 1) r' g'
             in
             cmp 0 evs_ref evs_got))
