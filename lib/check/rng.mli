(** Splittable deterministic PRNG for the differential fuzzer.

    SplitMix64 with a per-generator gamma (Steele, Lea & Flood,
    "Fast splittable pseudorandom number generators", OOPSLA'14): no
    global state, equal seeds yield equal streams, and {!split} derives a
    statistically independent child stream — so every fuzz case is a
    replayable integer seed, and drawing more numbers in one part of the
    generator never perturbs another part. This is what makes a printed
    counterexample command reproduce bit-identically. *)

type t

val create : seed:int -> t
(** A fresh root generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent clone continuing from the same state. *)

val split : t -> t
(** Derive an independent child generator, advancing [t] by two draws.
    Numbers drawn from the child and from the continued parent are
    statistically independent. *)

val case_seed : seed:int -> int -> int
(** [case_seed ~seed i] is the non-negative replay seed of the [i]-th
    fuzz case under root seed [seed] — a pure mixing function, so case
    [i] can be re-run alone without generating cases [0..i-1]. *)

val bits64 : t -> int64
(** 64 fresh pseudo-random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] on
    a non-positive bound. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** True with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose : t -> (int * 'a) list -> 'a
(** Pick by positive integer weight; raises on an empty or zero-weight
    list. *)
