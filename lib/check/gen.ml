(** Random loop/workload generation. See the interface for the
    adversarial-coverage and staying-in-class design notes. *)

module Loop_ir = Occamy_compiler.Loop_ir
module Vop = Occamy_isa.Vop
module Level = Occamy_mem.Level

type cfg = {
  max_phases : int;
  max_stmts : int;
  max_depth : int;
  max_trip : int;
  allow_div_sqrt : bool;
  allow_outer_reps : bool;
}

let default_cfg =
  {
    max_phases = 3;
    max_stmts = 3;
    max_depth = 3;
    max_trip = 400;
    allow_div_sqrt = true;
    allow_outer_reps = true;
  }

let read_pool = [ "a"; "b"; "cc"; "d" ]
let write_pool = [| "o"; "p"; "q" |]

(* Adversarial trip counts: 1 (degenerate), tiny (scalar multi-version
   path), the scalar-threshold boundary, odd counts no vector width
   divides, and exact multiples of the widest vector. *)
let gen_trip rng cfg =
  (* Choose the category first, then draw within it — a single explicit
     draw order, independent of list-literal evaluation order. *)
  let t =
    match
      Rng.choose rng
        [ (1, `One); (2, `Tiny); (2, `Threshold); (3, `Odd); (2, `Mult32);
          (2, `Any) ]
    with
    | `One -> 1
    | `Tiny -> Rng.range rng 2 4
    | `Threshold -> Rng.range rng 60 68  (* around Codegen scalar_threshold *)
    | `Odd -> (2 * Rng.range rng 33 199) + 1  (* no vector width divides it *)
    | `Mult32 -> 32 * Rng.range rng 1 12
    | `Any -> Rng.range rng 5 cfg.max_trip
  in
  min t cfg.max_trip

(* A per-loop stencil palette: offset 0 plus at most three distinct
   non-zero offsets, respecting both the validator's [-8, 8] bound and
   the ABI's four address-temporary slots. *)
let gen_palette rng =
  let n = Rng.choose rng [ (3, 0); (3, 1); (2, 2); (1, 3) ] in
  let offs = ref [] in
  let attempts = ref 0 in
  while List.length !offs < n && !attempts < 32 do
    incr attempts;
    let o =
      match Rng.choose rng [ (4, `Near); (1, `Far) ] with
      | `Near -> Rng.range rng (-2) 2
      | `Far -> Rng.range rng (-8) 8
    in
    if o <> 0 && not (List.mem o !offs) then offs := o :: !offs
  done;
  Array.of_list (0 :: !offs)

let gen_offset rng palette =
  (* Offset 0 dominates; stencil taps are the salt, not the dish. *)
  if Rng.bool rng 0.6 then 0 else Rng.pick rng palette

let gen_level rng =
  Rng.choose rng [ (3, Level.Vec_cache); (2, Level.L2); (1, Level.Dram) ]

(* Expression generator. [params] are the loop's pre-drawn invariant
   bindings (name -> value), so a name is never bound to two values. *)
let gen_expr rng cfg ~reads ~palette ~params depth =
  let reads = Array.of_list reads in
  let leaf () =
    Rng.choose rng
      ([
         (5,
          fun () ->
            Loop_ir.Load
              { base = Rng.pick rng reads; offset = gen_offset rng palette });
         (2, fun () -> Loop_ir.Const (Rng.float rng *. 4.0 -. 2.0));
       ]
      @
      if params = [] then []
      else
        [
          (2,
           fun () ->
             let name, v = Rng.pick rng (Array.of_list params) in
             Loop_ir.Param (name, v));
        ])
      ()
  in
  let rec go depth =
    if depth <= 0 || Rng.bool rng 0.25 then leaf ()
    else
      let sub () = go (depth - 1) in
      Rng.choose rng
        ([
           (3, fun () -> Loop_ir.Op (Vop.Add, [ sub (); sub () ]));
           (3, fun () -> Loop_ir.Op (Vop.Sub, [ sub (); sub () ]));
           (3, fun () -> Loop_ir.Op (Vop.Mul, [ sub (); sub () ]));
           (1, fun () -> Loop_ir.Op (Vop.Max, [ sub (); sub () ]));
           (1, fun () -> Loop_ir.Op (Vop.Min, [ sub (); sub () ]));
           (1, fun () -> Loop_ir.Op (Vop.Abs, [ sub () ]));
           (1, fun () -> Loop_ir.Op (Vop.Neg, [ sub () ]));
           (2, fun () -> Loop_ir.Op (Vop.Fma, [ sub (); sub (); sub () ]));
         ]
        @
        if not cfg.allow_div_sqrt then []
        else
          [
            (1,
             fun () ->
               (* Guarded division: |den| + c with c >= 1 keeps the
                  denominator away from zero, so no inf/NaN enters the
                  data and the ULP comparison stays meaningful. *)
               let c = 1.0 +. (Rng.float rng *. 3.0) in
               Loop_ir.Op
                 (Vop.Div,
                  [
                    sub ();
                    Loop_ir.Op
                      (Vop.Add,
                       [ Loop_ir.Op (Vop.Abs, [ sub () ]); Loop_ir.Const c ]);
                  ]));
            (1,
             (* Sqrt over |e|: stays real without constraining e. *)
             fun () -> Loop_ir.Op (Vop.Sqrt, [ Loop_ir.Op (Vop.Abs, [ sub () ]) ]));
          ])
        ()
  in
  go depth

let red_ops = [| Vop.Red.Sum; Vop.Red.Maxr; Vop.Red.Minr |]

let loop ?(cfg = default_cfg) ?(reads = []) rng ~name =
  let palette = gen_palette rng in
  let nparams = Rng.range rng 0 2 in
  let params =
    List.init nparams (fun i ->
        (Printf.sprintf "w%d" i, (Rng.float rng *. 4.0) -. 2.0))
  in
  (* Store targets first: what this loop writes, it must not read. An
     explicit fold keeps the side-effecting draws in a defined order
     (List.init's evaluation order is unspecified). *)
  let nstmts = Rng.range rng 1 (max 1 cfg.max_stmts) in
  let targets = ref [] in
  let nreds = ref 0 in
  let kinds =
    List.rev
      (List.fold_left
         (fun acc () ->
           let want_store =
             List.length !targets < Array.length write_pool
             && (!nreds >= 2 || Rng.bool rng 0.7)
           in
           let kind =
             if want_store then begin
               let candidates =
                 Array.of_list
                   (List.filter
                      (fun w -> not (List.mem w !targets))
                      (Array.to_list write_pool))
               in
               let tgt = Rng.pick rng candidates in
               targets := tgt :: !targets;
               `Store tgt
             end
             else begin
               incr nreds;
               `Reduce (name ^ "_r" ^ string_of_int !nreds)
             end
           in
           kind :: acc)
         []
         (List.init nstmts (fun _ -> ())))
  in
  let reads =
    List.filter
      (fun a -> not (List.mem a !targets))
      (read_pool @ reads)
  in
  let body =
    List.rev
      (List.fold_left
         (fun acc kind ->
           let e = gen_expr rng cfg ~reads ~palette ~params cfg.max_depth in
           let stmt =
             match kind with
             | `Store tgt ->
               Loop_ir.Store ({ base = tgt; offset = gen_offset rng palette }, e)
             | `Reduce rname -> Loop_ir.Reduce (Rng.pick rng red_ops, rname, e)
           in
           stmt :: acc)
         [] kinds)
  in
  let outer_reps =
    if cfg.allow_outer_reps then Rng.choose rng [ (6, 1); (1, 2); (1, 3) ]
    else 1
  in
  Loop_ir.validate
    {
      Loop_ir.name;
      trip_count = gen_trip rng cfg;
      body;
      level = gen_level rng;
      outer_reps;
    }

let workload ?(cfg = default_cfg) rng =
  let phases = Rng.range rng 1 (max 1 cfg.max_phases) in
  let written = ref [] in
  let acc = ref [] in
  for i = 0 to phases - 1 do
    let l = loop ~cfg ~reads:!written rng ~name:(Printf.sprintf "ph%d" i) in
    written := List.sort_uniq compare (!written @ Loop_ir.arrays_written l);
    acc := l :: !acc
  done;
  List.rev !acc
