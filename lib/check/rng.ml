(** Splittable SplitMix64 (Steele, Lea & Flood, OOPSLA'14).

    Unlike {!Occamy_util.Rng} (a fixed-gamma SplitMix64 whose [split]
    simply reseeds), this carries the per-generator *gamma* that makes
    splitting principled: a child stream's increment is itself drawn and
    whitened from the parent, so parent and child walk unrelated orbits
    of the underlying Weyl sequence. The fuzzer leans on this heavily —
    one generator per case, split again per schedule — so stream
    independence is load-bearing, not cosmetic. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Stafford variant 13 of the MurmurHash3 finalizer. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let popcount64 x =
  let rec go acc x =
    if Int64.equal x 0L then acc
    else go (acc + 1) Int64.(logand x (sub x 1L))
  in
  go 0 x

(* Gammas must be odd; reject weak (too-regular) candidates as in the
   reference implementation. *)
let mix_gamma z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = logor (logxor z (shift_right_logical z 33)) 1L in
  if popcount64 (logxor z (shift_right_logical z 1)) < 24 then
    logxor z 0xAAAAAAAAAAAAAAAAL
  else z

let next_seed t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let bits64 t = mix64 (next_seed t)

let create ~seed = { state = Int64.of_int seed; gamma = golden_gamma }

let copy t = { state = t.state; gamma = t.gamma }

let split t =
  let s = next_seed t in
  let g = next_seed t in
  { state = mix64 s; gamma = mix_gamma g }

(* The i-th case seed under a root seed, as a pure function: hash the
   (seed, index) pair down to a non-negative int. Replaying case i must
   not require generating cases 0..i-1. *)
let case_seed ~seed i =
  let open Int64 in
  let h = mix64 (add (mul (of_int seed) golden_gamma) (of_int i)) in
  to_int (logand (mix64 (add h 1L)) 0x3FFF_FFFF_FFFF_FFFFL)

let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.logand (bits64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t p = float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let choose t weighted =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 weighted in
  if total <= 0 then invalid_arg "Rng.choose: no positive weight";
  let k = int t total in
  let rec go k = function
    | [] -> invalid_arg "Rng.choose: impossible"
    | (w, x) :: rest -> if k < max 0 w then x else go (k - max 0 w) rest
  in
  go k weighted
