(** Random {!Occamy_compiler.Loop_ir} workload generator for the
    differential fuzzer.

    Generates loops that stay inside the class the compiler supports
    (documented constraints of {!Occamy_compiler.Loop_ir.validate} and
    the vectorizer's ABI budgets) while being adversarial everywhere it
    matters: trip counts of 1, trip counts straddling the multi-version
    scalar threshold, trip counts not divisible by any vector width,
    stencil offsets up to the ±8 bound, reductions of every operator,
    deep operator mixes including guarded division and square root,
    multi-phase workloads where later phases consume earlier phases'
    outputs, and outer repetitions exercising prologue hoisting.

    Arrays written by a loop are never read by the same loop: loop-carried
    dependences are outside the vectorized class (the compiler assumes
    them away, as does the paper's §6 loop class), so generating one
    would "find" a mismatch that is a precondition violation, not a bug. *)

type cfg = {
  max_phases : int;      (** phases per generated workload (≥ 1) *)
  max_stmts : int;       (** statements per loop (≥ 1) *)
  max_depth : int;       (** operator nesting depth of expressions *)
  max_trip : int;        (** upper bound on generated trip counts *)
  allow_div_sqrt : bool; (** emit (guarded) Div and Sqrt operators *)
  allow_outer_reps : bool;  (** emit outer_reps > 1 *)
}

val default_cfg : cfg

val loop :
  ?cfg:cfg -> ?reads:string list -> Rng.t -> name:string -> Occamy_compiler.Loop_ir.t
(** One random validated loop. [reads] extends the default read-array
    pool (e.g. with arrays written by earlier phases). *)

val workload : ?cfg:cfg -> Rng.t -> Occamy_compiler.Loop_ir.t list
(** A random multi-phase workload; later phases may read what earlier
    phases wrote. Every loop is validated. *)
