(** Regression corpus: named case seeds replayed by the tier-1 tests.

    Every entry is a {!Rng.case_seed}-style replay seed chosen for the
    coverage its generated workload exhibits (degenerate trips, scalar
    multi-version boundary, reduction mixes, multi-phase dataflow, deep
    guarded-division expressions). Nightly counterexamples get fixed,
    then their seed is appended here so the bug stays fixed — promote a
    seed by adding one line. *)

type entry = { name : string; seed : int }

val entries : entry list

val replay : entry -> (unit, Diff.failure) result
(** Run one corpus entry through the full differential pipeline. *)
