(** Regression corpus: named case seeds replayed by the tier-1 tests.

    Every entry is a {!Rng.case_seed}-style replay seed chosen for the
    coverage its generated workload exhibits (degenerate trips, scalar
    multi-version boundary, reduction mixes, multi-phase dataflow, deep
    guarded-division expressions). Nightly counterexamples get fixed,
    then their seed is appended here so the bug stays fixed — promote a
    seed by adding one line. *)

type entry = { name : string; seed : int }

val entries : entry list

val replay : entry -> (unit, Diff.failure) result
(** Run one corpus entry through the full differential pipeline. *)

type inject_expect =
  | Masked_by_tmr      (** TMR trials ran and every flip was masked *)
  | Detected_by_plain  (** at least one plain-mode flip reached the output *)

type inject_entry = { i_name : string; i_seed : int; i_expect : inject_expect }

val inject_entries : inject_entry list
(** Fault-injection regression pins, replayed by the tier-1 tests as
    [occamy-sim fuzz --case <seed> --inject-faults]: one case whose TMR
    lowering once collapsed two replicas through register aliasing (must
    stay fully masked), one case pinning that plain-mode flips are
    actually detected (keeping the fault model honest). *)

val replay_inject : inject_entry -> (Inject.stats, Diff.failure) result
(** Run one fault-injection entry through {!Inject.check_case} and check
    the entry's expectation on the resulting stats. *)
