type entry = { name : string; seed : int }

(* Seeds are raw case seeds ([occamy-sim fuzz --case <seed>]), named for
   the coverage they pin down. See the .mli for the promotion workflow. *)
let entries =
  [
    (* tc=1 with stores at i-1 and a running max: the degenerate trip. *)
    { name = "trip1-degenerate"; seed = 8 };
    (* tc=60 sits just under the scalar threshold; second phase tc=4. *)
    { name = "multiversion-boundary"; seed = 2 };
    (* reps=3 with a cc[i-2] stencil tap and an unhoisted prologue. *)
    { name = "outer-reps-stencil"; seed = 1 };
    (* two phases, DRAM then L2 footprints. *)
    { name = "multi-phase"; seed = 9 };
    (* faddv reduction interleaved between two stores. *)
    { name = "reduction-mix"; seed = 11 };
    (* fminv over a guarded division, store with a d[i-2] tap. *)
    { name = "deep-guarded-div"; seed = 12 };
    (* sqrt/div chains over tc<=4 phases: every arch goes quiescent long
       enough for the fast-forward skip path (test_check asserts so). *)
    { name = "quiescent-sqrt-chain"; seed = 16 };
    (* tc=233 with fmaxv+fminv drains — long Vred pipeline-drain waits
       hit the skip path on all four architectures. *)
    { name = "quiescent-vred-drain"; seed = 221 };
  ]

let replay e = Diff.run (Diff.case_of_seed e.seed)

(* ------------------------------------------------------------------ *)
(* Fault-injection corpus                                              *)
(* ------------------------------------------------------------------ *)

type inject_expect = Masked_by_tmr | Detected_by_plain

type inject_entry = { i_name : string; i_seed : int; i_expect : inject_expect }

(* Seeds replay as [occamy-sim fuzz --case <seed> --inject-faults]
   (i.e. under Inject.gen_cfg — a different workload than the same seed
   in the plain corpus). *)
let inject_entries =
  [
    (* The counterexample that exposed replica-collapsing register
       aliasing in the TMR lowering: operand registers freed before all
       copy destinations were allocated, so copy 0's fadd result
       clobbered copy 2's source and a single fault on either surviving
       replica defeated the vote. Must stay fully masked. *)
    {
      i_name = "tmr-replica-aliasing";
      i_seed = 1626386729513190885;
      i_expect = Masked_by_tmr;
    };
    (* Every plain-mode flip of this case lands in the output: pins the
       detection side of the oracle (a fault model too weak to corrupt
       anything would vacuously "mask" everything). *)
    { i_name = "plain-detects-flip"; i_seed = 8; i_expect = Detected_by_plain };
  ]

let replay_inject e =
  match Inject.check_case e.i_seed with
  | Error _ as err -> err
  | Ok stats -> (
    match e.i_expect with
    | Masked_by_tmr ->
      (* check_case already fails on any unmasked flip; require the
         entry to actually exercise TMR trials so the pin cannot decay
         into a vacuous zero-opportunity case. *)
      if stats.Inject.tmr_trials > 0 && stats.Inject.tmr_masked = stats.Inject.tmr_trials
      then Ok stats
      else
        Error
          {
            Diff.stage = "corpus/inject";
            message =
              Printf.sprintf "expected TMR-masked trials, got %d/%d"
                stats.Inject.tmr_masked stats.Inject.tmr_trials;
          }
    | Detected_by_plain ->
      if stats.Inject.plain_detected > 0 then Ok stats
      else
        Error
          {
            Diff.stage = "corpus/inject";
            message =
              Printf.sprintf
                "expected plain-mode detection, got 0 detected of %d trials"
                stats.Inject.plain_trials;
          })
