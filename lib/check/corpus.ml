type entry = { name : string; seed : int }

(* Seeds are raw case seeds ([occamy-sim fuzz --case <seed>]), named for
   the coverage they pin down. See the .mli for the promotion workflow. *)
let entries =
  [
    (* tc=1 with stores at i-1 and a running max: the degenerate trip. *)
    { name = "trip1-degenerate"; seed = 8 };
    (* tc=60 sits just under the scalar threshold; second phase tc=4. *)
    { name = "multiversion-boundary"; seed = 2 };
    (* reps=3 with a cc[i-2] stencil tap and an unhoisted prologue. *)
    { name = "outer-reps-stencil"; seed = 1 };
    (* two phases, DRAM then L2 footprints. *)
    { name = "multi-phase"; seed = 9 };
    (* faddv reduction interleaved between two stores. *)
    { name = "reduction-mix"; seed = 11 };
    (* fminv over a guarded division, store with a d[i-2] tap. *)
    { name = "deep-guarded-div"; seed = 12 };
  ]

let replay e = Diff.run (Diff.case_of_seed e.seed)
