type entry = { name : string; seed : int }

(* Seeds are raw case seeds ([occamy-sim fuzz --case <seed>]), named for
   the coverage they pin down. See the .mli for the promotion workflow. *)
let entries =
  [
    (* tc=1 with stores at i-1 and a running max: the degenerate trip. *)
    { name = "trip1-degenerate"; seed = 8 };
    (* tc=60 sits just under the scalar threshold; second phase tc=4. *)
    { name = "multiversion-boundary"; seed = 2 };
    (* reps=3 with a cc[i-2] stencil tap and an unhoisted prologue. *)
    { name = "outer-reps-stencil"; seed = 1 };
    (* two phases, DRAM then L2 footprints. *)
    { name = "multi-phase"; seed = 9 };
    (* faddv reduction interleaved between two stores. *)
    { name = "reduction-mix"; seed = 11 };
    (* fminv over a guarded division, store with a d[i-2] tap. *)
    { name = "deep-guarded-div"; seed = 12 };
    (* sqrt/div chains over tc<=4 phases: every arch goes quiescent long
       enough for the fast-forward skip path (test_check asserts so). *)
    { name = "quiescent-sqrt-chain"; seed = 16 };
    (* tc=233 with fmaxv+fminv drains — long Vred pipeline-drain waits
       hit the skip path on all four architectures. *)
    { name = "quiescent-vred-drain"; seed = 221 };
  ]

let replay e = Diff.run (Diff.case_of_seed e.seed)
