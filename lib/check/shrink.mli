(** Greedy counterexample minimisation.

    A raw fuzz counterexample is a multi-phase workload of deep random
    expressions; the bug is usually reproducible by a fraction of it.
    [minimise] repeatedly tries structural reductions — drop a phase,
    drop a statement, collapse trip counts and outer repetitions, zero
    stencil offsets, replace an operator node by one of its operands —
    and keeps a candidate only if the differential pipeline still fails
    AND the candidate is strictly smaller (by {!Occamy_compiler.Loop_ir.size},
    with total trip count as tie-breaker, so shrinking can never cycle
    or grow). The reduction order is fixed, so a given (case, failure)
    always minimises to the same witness.

    Only the loops are rewritten: the case's schedule seed and compiler
    options are untouched, so every candidate re-runs the identical
    schedules the original failed under. *)

type result = {
  case : Diff.case;       (** the minimised counterexample *)
  failure : Diff.failure; (** the failure the minimised case exhibits *)
  steps : int;            (** accepted reductions *)
  tried : int;            (** candidate evaluations (oracle runs) *)
}

val size : Diff.case -> int
(** Total {!Occamy_compiler.Loop_ir.size} over the case's loops. *)

val minimise :
  ?inject:(Occamy_compiler.Loop_ir.t -> Occamy_compiler.Loop_ir.t) ->
  ?oracle:(Diff.case -> (unit, Diff.failure) Stdlib.result) ->
  ?max_tries:int ->
  Diff.case ->
  Diff.failure ->
  result
(** Shrink a failing case. [inject] must be the same bug hook the case
    originally failed under. [oracle] replaces {!Diff.run} as the
    failure predicate (and makes [inject] irrelevant) — the
    fault-injection fuzzer passes its masking oracle here, so fault
    counterexamples minimise under the property they violated.
    [max_tries] (default 600) bounds oracle runs; the measure strictly
    decreases on every accepted step, so termination never depends on
    it. The reported failure of the result is re-established by the
    final oracle run, never assumed. *)

val minimise_list : ?max_tries:int -> keep:('a list -> bool) -> 'a list -> 'a list
(** Minimise a list under a monotone-ish predicate: the smallest sublist
    found (by greedy, deterministic single-element drops, empty list
    tried first) on which [keep] still holds. Intended for fault
    schedules — reducing a multi-fault witness to a single necessary
    flip. [keep] is assumed true of the input; every element of the
    result is individually necessary. [max_tries] (default 200) bounds
    predicate evaluations. *)
