(** The fuzzing driver: seed discipline, parallel fan-out, shrinking,
    repro commands.

    Case [i] under root seed [S] is {!Rng.case_seed}[ ~seed:S i] — a pure
    function, so a counterexample is fully identified by its printed
    case seed and replayed with [occamy-sim fuzz --case <seed>] without
    re-running the campaign. Cases fan out over
    {!Occamy_util.Domain_pool} in batches; the first failing case (by
    campaign order, deterministically, whatever the job count) is
    shrunk with {!Shrink} and reported. *)

type counterexample = {
  cx_index : int;          (** campaign position of the failing case *)
  cx_seed : int;           (** its replay seed *)
  cx_failure : Diff.failure;  (** failure of the *shrunk* case *)
  cx_original : Diff.case; (** as generated *)
  cx_shrunk : Diff.case;   (** after minimisation *)
  cx_steps : int;          (** accepted shrink steps *)
}

type report = {
  root_seed : int;
  cases_run : int;
  elapsed : float;         (** wall-clock seconds *)
  inject : string option;  (** the campaign's seeded bug, if any *)
  counterexample : counterexample option;
}

val injections :
  (string * (Occamy_compiler.Loop_ir.t -> Occamy_compiler.Loop_ir.t)) list
(** Named seeded bugs for exercising the fuzzer itself: an off-by-one
    stencil offset, a dropped tail iteration, a perturbed loop-invariant
    parameter. Each is applied to the loops fed to the compiler while
    the reference runs the originals (see {!Diff.run}). *)

val inject_of_name : string -> (Occamy_compiler.Loop_ir.t -> Occamy_compiler.Loop_ir.t) option

val run_case :
  ?gen_cfg:Gen.cfg ->
  ?inject_name:string ->
  int ->
  (unit, Diff.failure) result
(** Run one case by its replay seed. *)

val run :
  ?gen_cfg:Gen.cfg ->
  ?inject_name:string ->
  ?minutes:float ->
  ?on_batch:(done_:int -> unit) ->
  ?oversubscribe:bool ->
  seed:int ->
  count:int ->
  jobs:int ->
  unit ->
  report
(** A fuzzing campaign: [count] cases (when [minutes] is given, repeated
    batches of fresh cases until the deadline instead), [jobs]-way
    parallel ([jobs] is elastically capped like any
    {!Occamy_util.Domain_pool.map} unless [oversubscribe]). Stops at the
    first failing batch; within it the lowest-index failure is shrunk.
    [on_batch] reports progress.

    @raise Invalid_argument if [count] is negative or [minutes] is not
    strictly positive — either would silently run zero cases. *)

val repro_command : ?inject_name:string -> int -> string
(** The self-contained command that replays a case seed. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable campaign summary; a counterexample prints its shrunk
    loops and the repro command. *)
