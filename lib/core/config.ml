(** Machine configuration — Table 4 of the paper plus the
    micro-architectural widths of Figure 5.

    The evaluated 2-core machine has 32 f32 lanes in total (8 ExeBUs of
    128 bits, 2 pipes each), a 4-wide vector issue per data path (2 SIMD
    execution + 2 ld/st units), RegBlks of 160 physical vector registers,
    a 128KB vector cache, a shared 8MB L2 and 64GB/s DRAM. *)

type t = {
  cores : int;
  exebus : int;             (** total ExeBUs (128-bit granules) *)
  pipes_per_exebu : int;    (** execution pipes per ExeBU *)
  frontend_width : int;
      (** scalar instructions the 8-issue OoO core executes per cycle *)
  transmit_width : int;
      (** SVE/EM-SIMD instructions transmitted to the co-processor per
          cycle per core (Figure 5: "4 Insts/Cycle") *)
  pool_capacity : int;      (** per-core co-processor instruction pool *)
  window : int;             (** per-core in-flight (renamed) instructions *)
  rename_width : int;       (** instructions renamed per core per cycle *)
  compute_ports : int;      (** SIMD compute instructions issued per cycle
                                per data path (2 SIMD execution units) *)
  mem_ports : int;          (** SIMD ld/st instructions per cycle (2) *)
  regblk_depth : int;       (** physical vector registers per RegBlk (160) *)
  arch_vregs : int;         (** architectural vector registers pinned (32) *)
  lsu_load_capacity : int;
  lsu_store_capacity : int;
  mob_capacity : int;
  mem : Occamy_mem.Hierarchy.config;
  prefetch : bool;
      (** stream prefetcher: unit-stride vector loads hide the latency
          below the vector cache (bandwidth still charged) *)
  cs_away_cycles : int;
      (** how long a context-switched task stays descheduled before the
          OS restores it (§5) *)
  fast_forward : bool;
      (** event-horizon cycle skipping: when every core is provably
          quiescent until the next event, jump [Sim] there in one step.
          Results are bit-identical either way; [false] keeps the naive
          tick loop (the reference the equivalence suite diffs against) *)
  max_cycles : int;         (** simulation safety bound *)
  seed : int;               (** RNG seed for access-level sampling *)
  inject_rate : float;
      (** probability that a fault-injection opportunity (a vector
          register write-back or an LSU data transfer at issue) flips
          one bit. 0.0 disables injection entirely — the guard is a
          single branch and the run is bit-identical to a build without
          the feature. Timing is never affected either way: injection
          only marks opportunities (trace events + counters); value
          corruption lives in the functional interpreter *)
  inject_seed : int;
      (** seed of the injection decision stream. Deliberately separate
          from [seed]: the access-level sampler and the fault stream
          must not share draws, or enabling injection would perturb
          memory timing *)
}

let default =
  {
    cores = 2;
    exebus = 8;
    pipes_per_exebu = 2;
    frontend_width = 8;
    transmit_width = 4;
    pool_capacity = 48;
    window = 128;
    rename_width = 4;
    compute_ports = 2;
    mem_ports = 2;
    regblk_depth = 160;
    arch_vregs = 32;
    lsu_load_capacity = 64;
    lsu_store_capacity = 32;
    mob_capacity = 96;
    mem = Occamy_mem.Hierarchy.default_config;
    prefetch = true;
    cs_away_cycles = 3000;
    fast_forward = true;
    max_cycles = 20_000_000;
    seed = 42;
    inject_rate = 0.0;
    inject_seed = 1;
  }

(** The 4-core configuration of §7.6: twice the lanes, same per-core
    resources. *)
let four_core = { default with cores = 4; exebus = 16 }

let total_lanes t = t.exebus * Occamy_isa.Lane.f32_per_granule
let lanes_per_core_private t = total_lanes t / t.cores
let granules_per_core_private t = t.exebus / t.cores

let validate t =
  if t.cores <= 0 then invalid_arg "Config: cores";
  if t.inject_rate < 0.0 || t.inject_rate > 1.0 || Float.is_nan t.inject_rate
  then invalid_arg "Config: inject_rate must be within [0, 1]";
  if t.exebus mod t.cores <> 0 then
    invalid_arg "Config: exebus must divide evenly across cores for Private";
  if t.window > t.regblk_depth - t.arch_vregs then
    invalid_arg
      "Config: per-core window exceeds spatial rename capacity; Private \
       would rename-stall, contradicting the paper's baseline";
  t

(** Roofline configuration derived from the machine parameters: FP peak of
    one ExeBU is [pipes * 4 elems * 1 flop] per cycle; the issue width of
    Equation (2) is the number of ld/st ports. *)
let roofline t =
  {
    Occamy_lanemgr.Roofline.flops_per_granule_cycle =
      float_of_int (t.pipes_per_exebu * Occamy_isa.Lane.f32_per_granule);
    issue_width = float_of_int t.mem_ports;
    mem_bw =
      (fun level ->
        match level with
        | Occamy_mem.Level.Vec_cache -> t.mem.vc_bytes_per_cycle
        | Occamy_mem.Level.L2 -> t.mem.l2_bytes_per_cycle
        | Occamy_mem.Level.Dram -> t.mem.dram_bytes_per_cycle);
  }

(** Table 4 rendered as rows (parameter, value) for the bench harness. *)
let table4_rows t =
  [
    ("Scalar cores", Printf.sprintf "%d, 8-issue OoO, 2GHz" t.cores);
    ("SIMD lanes (total)", Printf.sprintf "%d (= %d ExeBUs x 4 f32)" (total_lanes t) t.exebus);
    ("Vector issue width", Printf.sprintf "%d (SIMD exec %d, ld/st %d)"
       (t.compute_ports + t.mem_ports) t.compute_ports t.mem_ports);
    ("RegBlk depth", Printf.sprintf "%d x 128-bit physical vregs" t.regblk_depth);
    ("VRF capacity", Printf.sprintf "%dKB total"
       (t.regblk_depth * 16 * t.exebus / 1024));
    ("Vec cache", Printf.sprintf "128KB, %d-cycle, %gB/cycle" t.mem.vc_latency
       t.mem.vc_bytes_per_cycle);
    ("Shared L2", Printf.sprintf "8MB, %d-cycle, %gB/cycle" t.mem.l2_latency
       t.mem.l2_bytes_per_cycle);
    ("DRAM", Printf.sprintf "4GB, +%d-cycle, %gB/cycle (64GB/s at 2GHz)"
       t.mem.dram_latency t.mem.dram_bytes_per_cycle);
    ("Per-core window", string_of_int t.window);
    ("LSU load/store queues", Printf.sprintf "%d/%d" t.lsu_load_capacity
       t.lsu_store_capacity);
  ]
