(** The cycle-level timing simulator — the gem5 substitute.

    Executes one compiled workload per scalar core against one of the four
    SIMD architectures, modelling the machine of Figures 4-5: decoupled
    scalar front-ends that transmit non-speculative SVE/EM-SIMD
    instructions in order (§4.1.1); per-core instruction pools, in-order
    rename against per-core or shared physical-register freelists,
    out-of-order issue windows; per-data-path (or, under FTS, shared)
    compute and ld/st ports; a bandwidth-limited VecCache/L2/DRAM
    hierarchy with a MOB; and the ResourceTbl/ConfigTbl/LaneMgr elastic
    reconfiguration machinery — `MSR <VL>` succeeds only when lanes are
    available *and* the core's SIMD pipeline has drained (§4.2.2).

    Scalar register values are tracked exactly (control flow must be
    faithful); vector data is not — {!Occamy_isa.Interp} covers value
    semantics for the same programs. Runs are deterministic given
    [Config.seed]. *)

type t

exception Simulation_error of string
(** Internal inconsistency or runaway simulation (see
    [Config.max_cycles]). *)

val create :
  ?cfg:Config.t -> ?trace:Occamy_obs.Trace.t -> ?prof:Occamy_obs.Prof.t ->
  ?attrib:Occamy_obs.Attrib.t ->
  ?decisions:int array -> ?context_switches:(int * int) list ->
  arch:Arch.t -> Workload.t list -> t
(** One workload per configured core. [decisions] forces a static
    partition (lane sweeps, Figure 14(a)); it is rejected on the elastic
    machine. [context_switches] schedules [(core, cycle)] OS preemptions:
    at [cycle] the core's workload is descheduled (pipelines drained, the
    EM-SIMD registers saved, lanes released) and later restored, its
    `<OI>` rewritten to retrigger lane partitioning — the OS interaction
    described in §5.

    [trace] (default {!Occamy_obs.Trace.disabled}) records cycle-stamped
    events — phase begin/end, `MSR <OI>` writes, lane-manager replans
    with their decision vectors and roofline verdicts, `MSR <VL>`
    request/grant/deny, rename-stall and reconfig-blocked episodes,
    memory-level transitions — into per-core tracks plus a lane-manager
    track. It must have at least [cfg.cores + 1] tracks (use
    {!Occamy_obs.Trace.for_sim}). Tracing only *reads* simulator state:
    results are bit-identical with tracing on or off, and when disabled
    the cost is one branch per site with no allocation (guaranteed by
    the non-perturbation tests).

    [prof] (default {!Occamy_obs.Prof.disabled}) attributes the
    simulator's own wall-time to its pipeline stages via sampled
    monotonic-clock scopes in [step] and the fast-forward scan (see
    {!Occamy_obs.Prof}). Like tracing it only reads simulator state —
    results are bit-identical with profiling on or off, and a disabled
    profiler costs one branch per site. Profiled stage totals are only
    complete when the simulation runs through {!run}/{!simulate} (the
    per-cycle residual is closed there, not in {!step}).

    [attrib] (default {!Occamy_obs.Attrib.disabled}) records top-down
    cycle accounting: every simulated cycle of every core is attributed
    to exactly one cause bucket (issuing, lane-starved,
    reconfig-blocked, rename-stalled, LSU-bound by memory level,
    MOB-conflicted, execution latency, context switch, scalar, idle),
    batched across fast-forward jumps. It must cover at least
    [cfg.cores] cores. Attribution is observational like [trace] and
    [prof]: timing results are bit-identical with it on or off, a
    disabled recorder costs one branch per cycle, and an enabled one
    allocates nothing in steady state. {!run} checks conservation (each
    core's buckets sum to exactly the simulated cycle count) and copies
    the rows into [Metrics.attrib], so the naive-vs-FF equivalence
    suites hold both loops to bit-identical accounts. *)

val run : t -> Metrics.t
(** Run to completion of every workload. *)

val simulate :
  ?cfg:Config.t -> ?trace:Occamy_obs.Trace.t -> ?prof:Occamy_obs.Prof.t ->
  ?attrib:Occamy_obs.Attrib.t ->
  ?decisions:int array -> ?context_switches:(int * int) list ->
  arch:Arch.t -> Workload.t list -> Metrics.t
(** [create] + [run]. *)

val step : t -> unit
(** Advance one cycle (exposed for tests). *)

val cycle : t -> int
val config : t -> Config.t

val skipped_cycles : t -> int
(** Cycles advanced by event-horizon fast-forwarding instead of being
    stepped ([Config.fast_forward]). Skipped cycles are provably inert:
    metrics, counters and trace events are bit-identical to the naive
    tick loop, which the sim-vs-sim equivalence suite enforces. 0 when
    fast-forwarding is off. *)

val ff_jumps : t -> int
(** Number of fast-forward jumps taken ([skipped_cycles] spread over
    this many horizon events). *)

val prof : t -> Occamy_obs.Prof.t
(** The profiler passed at [create] ({!Occamy_obs.Prof.disabled} when
    none); read its stats after {!run}. *)

val attrib : t -> Occamy_obs.Attrib.t
(** The cycle-accounting recorder passed at [create]
    ({!Occamy_obs.Attrib.disabled} when none); read its buckets,
    time-series windows and renderers after {!run}. *)

val stage_work : t -> (string * float) list
(** Work counters correlated with the profiler's stages, summed over
    cores: LSU retire scans and completions, ExeBU issue probes and
    issues — so stage time can be read as ns per unit of work. *)

