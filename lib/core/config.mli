(** Machine configuration — Table 4 plus the micro-architectural widths of
    Figure 5. *)

type t = {
  cores : int;
  exebus : int;             (** total ExeBUs (128-bit granules) *)
  pipes_per_exebu : int;
  frontend_width : int;     (** scalar instructions executed per cycle *)
  transmit_width : int;     (** SVE/EM-SIMD instructions transmitted per
                                cycle per core (Figure 5) *)
  pool_capacity : int;      (** per-core co-processor instruction pool *)
  window : int;             (** per-core in-flight (renamed) instructions *)
  rename_width : int;
  compute_ports : int;      (** SIMD compute instructions per cycle per
                                data path *)
  mem_ports : int;          (** SIMD ld/st instructions per cycle *)
  regblk_depth : int;       (** physical vector registers per RegBlk *)
  arch_vregs : int;         (** architectural registers pinned per context *)
  lsu_load_capacity : int;
  lsu_store_capacity : int;
  mob_capacity : int;
  mem : Occamy_mem.Hierarchy.config;
  prefetch : bool;          (** unit-stride stream prefetcher *)
  cs_away_cycles : int;     (** descheduled time of a context-switched
                                task before the OS restores it (§5) *)
  fast_forward : bool;      (** event-horizon cycle skipping; results are
                                bit-identical to the naive tick loop
                                ([false]), which is kept as the reference
                                for the sim-vs-sim equivalence suite *)
  max_cycles : int;         (** simulation safety bound *)
  seed : int;
  inject_rate : float;      (** per-opportunity bit-flip probability for
                                fault injection; 0.0 (the default)
                                disables it behind a single branch and
                                is bit-identical to no injection.
                                Injection never changes timing — the
                                simulator only *marks* fault
                                opportunities (trace + counters); value
                                corruption is the functional
                                interpreter's job *)
  inject_seed : int;        (** seed of the fault-decision stream, kept
                                separate from [seed] so injection never
                                perturbs access-level sampling *)
}

val default : t
(** The evaluated 2-core machine: 32 lanes (8 ExeBUs x 2 pipes), 4-wide
    vector issue, 160-entry RegBlks, 128KB VecCache, 8MB L2, 64GB/s
    DRAM. *)

val four_core : t
(** The §7.6 machine: 4 cores, 64 lanes. *)

val total_lanes : t -> int
val lanes_per_core_private : t -> int
val granules_per_core_private : t -> int

val validate : t -> t
(** Raises [Invalid_argument] on inconsistent parameters (e.g. a window
    larger than the spatial rename capacity, which would make Private
    rename-stall against the paper's baseline). *)

val roofline : t -> Occamy_lanemgr.Roofline.cfg
(** The lane manager's roofline parameters derived from this machine. *)

val table4_rows : t -> (string * string) list
