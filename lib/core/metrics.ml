(** Result records produced by a simulation run, covering every quantity
    the paper's evaluation reports: per-core finish times and speedups
    (Figure 10), SIMD utilization (Figure 11, computed as in §2), per-phase
    SIMD issue rates (Figures 2(f), 14(c)), rename-stall fractions
    (Figure 13), EM-SIMD runtime overhead (Figure 15), and per-bucket
    timelines (Figures 2(b-e), 14(b)). *)

type phase_stat = {
  ps_name : string;
  ps_start : int;
  ps_end : int;            (* cycle of the phase epilogue *)
  ps_issued_compute : int;
  ps_issued_mem : int;
  ps_rename_stalls : int;  (* cycles stalled for free registers (Fig 14(c)) *)
  ps_avg_vl : float;       (* average granules held during the phase *)
}

let ps_cycles p = max 1 (p.ps_end - p.ps_start)

(** SIMD compute instructions issued per cycle during the phase. *)
let ps_issue_rate p = float_of_int p.ps_issued_compute /. float_of_int (ps_cycles p)

type core_result = {
  core : int;
  workload : string;
  finish : int;            (* cycle the workload's Halt executed *)
  issued_compute : int;
  issued_mem : int;
  rename_stall_cycles : int;
  reconfig_blocked_cycles : int;  (* cycles blocked on MSR <VL> (drain+retry) *)
  monitor_instrs : int;           (* lazy-partition monitor instructions *)
  monitor_stall_cycles : int;     (* cycles where monitoring consumed the
                                     last front-end slot (marginal cost) *)
  reconfigs : int;                (* successful <VL> changes *)
  failed_vl_requests : int;
  fault_opportunities : int;      (* injection opportunities (vector
                                     write-backs + LSU transfers at issue)
                                     seen while injection was enabled;
                                     0 when [Config.inject_rate] = 0 *)
  faults_injected : int;          (* opportunities the fault stream fired
                                     on; 0 whenever injection is off *)
  lsu_peak_loads : int;           (* high-water LSU occupancy (MLP reached) *)
  lsu_peak_stores : int;
  phases : phase_stat list;
  lanes_timeline : float array;   (* avg busy f32 lanes per bucket *)
  vl_timeline : float array;      (* avg granules held per bucket *)
}

type t = {
  arch : Arch.t;
  total_cycles : int;             (* last core's finish *)
  simd_util : float;              (* Eq. of §2 over the whole execution *)
  busy_lane_cycles : float;       (* numerator of simd_util, lane-cycles *)
  replans : int;                  (* eager lane-partitioning events *)
  cores : core_result array;
  mem_accesses : int array;       (* accesses served per level (Level.depth) *)
  mem_bytes : float array;        (* bytes served per level (Level.depth) *)
  bucket_width : int;
  attrib : int array array;       (* per-core cycle-accounting rows
                                     (Occamy_obs.Attrib bucket order);
                                     [||] when attribution was disabled *)
}

let core_finish t c = t.cores.(c).finish

(** Total memory traffic across all hierarchy levels — every level's
    served bytes summed. Because each vector access is booked at exactly
    one (stochastically classified) level, this sum is deterministic:
    the differential checker compares it against the traffic the static
    Equation-5 analysis predicts. *)
let total_mem_bytes t = Array.fold_left ( +. ) 0.0 t.mem_bytes

let total_mem_accesses t = Array.fold_left ( + ) 0 t.mem_accesses

(** Speedup of [t] relative to [baseline] on core [c] — the Figure 10
    metric (baseline time / this time, per core). *)
let speedup_vs ~baseline t ~core =
  float_of_int (core_finish baseline core) /. float_of_int (core_finish t core)

(** Fraction of cycles core [c] spent stalled in the renamer waiting for
    free physical registers (Figure 13). *)
let rename_stall_fraction t ~core =
  float_of_int t.cores.(core).rename_stall_cycles
  /. float_of_int (max 1 t.cores.(core).finish)

(** EM-SIMD runtime overhead split (Figure 15), as fractions of the
    workload's execution time: monitoring (decision reads at iteration
    heads, estimated by front-end slot occupancy) and vector-length
    reconfiguration (drain + retry cycles). *)
let overhead t ~frontend_width ~core =
  let c = t.cores.(core) in
  let time = float_of_int (max 1 c.finish) in
  (* Monitoring: `<decision>` reads are speculatively transmitted
     (§4.1.1), so in the simulator their marginal cost is near zero (the
     scalar front-end has slack); we report the conservative upper bound
     of one front-end slot per executed monitor instruction. *)
  let monitoring =
    float_of_int c.monitor_instrs /. float_of_int frontend_width /. time
  in
  let reconfig = float_of_int c.reconfig_blocked_cycles /. time in
  (monitoring, reconfig)

(* ------------------------------------------------------------------ *)
(* Named-counter view                                                  *)
(* ------------------------------------------------------------------ *)

module Counters = Occamy_obs.Counters

(** Populate [reg] with every scalar quantity of [t] under dotted names:
    run-level gauges under ["sim."], per-core counters under
    ["core<i>."], per-level memory traffic under ["mem.<level>."], and
    per-phase stats under ["core<i>.phase.<name>."]. Experiments and
    tests read these by name ({!Counters.get}) instead of
    pattern-matching this module's records. *)
let populate_counters reg t =
  let set = Counters.set reg and seti n v = Counters.set reg n (float_of_int v) in
  set "sim.simd_util" t.simd_util;
  set "sim.busy_lane_cycles" t.busy_lane_cycles;
  seti "sim.total_cycles" t.total_cycles;
  seti "sim.replans" t.replans;
  seti "sim.cores" (Array.length t.cores);
  List.iter
    (fun level ->
      let prefix =
        "mem." ^ String.lowercase_ascii (Occamy_mem.Level.to_string level) ^ "."
      in
      seti (prefix ^ "accesses") t.mem_accesses.(Occamy_mem.Level.depth level);
      set (prefix ^ "bytes") t.mem_bytes.(Occamy_mem.Level.depth level))
    Occamy_mem.Level.all;
  Array.iter
    (fun c ->
      let p name = Printf.sprintf "core%d.%s" c.core name in
      seti (p "finish") c.finish;
      seti (p "issued_compute") c.issued_compute;
      seti (p "issued_mem") c.issued_mem;
      seti (p "rename_stall_cycles") c.rename_stall_cycles;
      seti (p "reconfig_blocked_cycles") c.reconfig_blocked_cycles;
      seti (p "monitor_instrs") c.monitor_instrs;
      seti (p "monitor_stall_cycles") c.monitor_stall_cycles;
      seti (p "reconfigs") c.reconfigs;
      seti (p "failed_vl_requests") c.failed_vl_requests;
      seti (p "fault_opportunities") c.fault_opportunities;
      seti (p "faults_injected") c.faults_injected;
      seti (p "lsu_peak_loads") c.lsu_peak_loads;
      seti (p "lsu_peak_stores") c.lsu_peak_stores;
      seti (p "phases") (List.length c.phases);
      if Array.length t.attrib > 0 then begin
        let row = t.attrib.(c.core) in
        let tot = Array.fold_left ( + ) 0 row in
        List.iter
          (fun b ->
            let v = row.(Occamy_obs.Attrib.index b) in
            let key suffix =
              p (Printf.sprintf "attrib.%s%s" (Occamy_obs.Attrib.name b) suffix)
            in
            seti (key "") v;
            set (key ".share")
              (if tot = 0 then 0.0
               else 100.0 *. float_of_int v /. float_of_int tot))
          Occamy_obs.Attrib.all
      end;
      List.iter
        (fun ph ->
          let pp name = p (Printf.sprintf "phase.%s.%s" ph.ps_name name) in
          seti (pp "cycles") (ps_cycles ph);
          seti (pp "issued_compute") ph.ps_issued_compute;
          seti (pp "issued_mem") ph.ps_issued_mem;
          seti (pp "rename_stalls") ph.ps_rename_stalls;
          set (pp "avg_vl") ph.ps_avg_vl)
        c.phases)
    t.cores

(** Fresh registry holding every counter of [t]. *)
let counters t =
  let reg = Counters.create () in
  populate_counters reg t;
  reg

let pp_summary ppf t =
  Fmt.pf ppf "%a: %d cycles, util %.1f%%, %d replans@." Arch.pp t.arch
    t.total_cycles (100.0 *. t.simd_util) t.replans;
  Array.iter
    (fun c ->
      Fmt.pf ppf "  core%d %-14s finish=%-8d issue=%d/%d stall=%d reconf=%d@."
        c.core c.workload c.finish c.issued_compute c.issued_mem
        c.rename_stall_cycles c.reconfigs)
    t.cores
