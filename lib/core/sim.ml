(** The cycle-level timing simulator — the gem5 substitute.

    It executes one compiled workload per scalar core against one of the
    four SIMD architectures (see {!Arch}), modelling the machine of
    Figures 4 and 5:

    - a decoupled scalar front-end per core that executes scalar
      instructions, resolves branches, and transmits non-speculative
      SVE/EM-SIMD instructions in order to the co-processor (§4.1.1);
    - per-core instruction pools, an in-order renamer drawing physical
      register rows from per-core (spatial) or shared (temporal)
      freelists, and an out-of-order issue window;
    - issue ports per data path: [compute_ports] SIMD compute and
      [mem_ports] SIMD ld/st instructions per cycle — per core under
      spatial sharing, shared by all cores under FTS;
    - a bandwidth-limited VecCache/L2/DRAM hierarchy with a MOB;
    - the ResourceTbl/ConfigTbl/LaneMgr elastic reconfiguration machinery:
      `MSR <VL>` succeeds only when lanes are available *and* the core's
      SIMD pipeline has drained (§4.2.2); `MSR <OI>` triggers eager
      replanning on Occamy (§5).

    Scalar-visible register *values* are tracked exactly (loop control
    must be faithful); vector data is not — the functional interpreter
    ({!Occamy_isa.Interp}) covers value semantics.

    {b Data-oriented core.} The per-cycle state lives in preallocated
    unboxed [int]/[float] arrays, not heap-linked structures: the
    instruction pool and the issue window are ring buffers of parallel
    arrays indexed by monotonically increasing sequence numbers, window
    occupancy is a packed bitmask ({!Occamy_util.Bitset}) swept by the
    dispatch scan, register dependences are producer sequence numbers
    (not entry pointers), and per-instruction operands are pre-decoded
    once at construction. Steady-state stepping allocates nothing —
    enforced by the [dod] zero-allocation test and the CI allocation
    gate — and every structure is bit-identical in behaviour to the
    boxed representation it replaced (golden metrics, the sim-vs-sim
    fast-forward suite, and the fuzz corpus all hold). *)

module Instr = Occamy_isa.Instr
module Reg = Occamy_isa.Reg
module Vop = Occamy_isa.Vop
module Sysreg = Occamy_isa.Sysreg
module Oi = Occamy_isa.Oi
module Lane = Occamy_isa.Lane
module Program = Occamy_isa.Program
module Profile = Occamy_mem.Profile
module Hierarchy = Occamy_mem.Hierarchy
module Mob = Occamy_mem.Mob
module Rtbl = Occamy_coproc.Resource_tbl
module Config_tbl = Occamy_coproc.Config_tbl
module Freelist = Occamy_coproc.Freelist
module Lsu = Occamy_coproc.Lsu
module Exebu = Occamy_coproc.Exebu
module Lane_mgr = Occamy_lanemgr.Lane_mgr
module Rng = Occamy_util.Rng
module Bitset = Occamy_util.Bitset
module Buckets = Occamy_util.Stats.Buckets
module Trace = Occamy_obs.Trace
module Event = Occamy_obs.Event
module Prof = Occamy_obs.Prof
module Attrib = Occamy_obs.Attrib

(* ------------------------------------------------------------------ *)
(* In-flight instruction representation                                *)
(* ------------------------------------------------------------------ *)

(* Instruction kinds are small ints so pool and window entries fit in
   parallel int arrays (no per-entry variant blocks on the hot path). *)
let k_load = 0
let k_store = 1
let k_compute = 2
let k_dup = 3

(* Per-core, per-phase statistics accumulator. *)
type phase_acc = {
  pa_name : string;
  pa_start : int;
  mutable pa_compute : int;
  mutable pa_mem : int;
  mutable pa_vl_sum : int;
  mutable pa_cycles : int;
  mutable pa_stalls : int;
}

(* OS scheduling state of a core's task (§5): the OS drains the pipelines
   (including Occamy's), saves the five EM-SIMD dedicated registers,
   releases the lanes, and on restore rewrites <OI> to retrigger lane
   partitioning before the task reacquires a vector length. *)
type cs_state =
  | Cs_running
  | Cs_draining
  | Cs_away of { resume_at : int; saved_vl : int; saved_oi : Oi.t }
  | Cs_restoring of { saved_vl : int }

type core_state = {
  id : int;
  wl : Workload.t;
  phase_lookup : int -> Workload.phase option;
  (* front-end *)
  mutable pc : int;
  xregs : int array;
  fregs : float array;
  mutable halted : bool;
  mutable finish : int;
  mutable pending_vl : int;  (* blocked MSR <VL> awaiting drain; -1 none *)
  mutable pending_red : bool;       (* blocked Vred awaiting drain *)
  mutable cs_state : cs_state;
  mutable cs_schedule : int list;   (* preemption cycles, ascending *)
  mutable cur_level : Occamy_mem.Level.t;  (* current phase's footprint *)
  (* per-cycle front-end scratch — mutable fields, not refs, so the
     front-end loop allocates nothing *)
  mutable fe_budget : int;
  mutable fe_tbudget : int;
  mutable fe_monitor : bool;
  mutable fe_cont : bool;
  mutable fe_next : int;
  (* static-program pre-decode (indexed by pc), computed once at
     construction so transmit/rename do no per-instruction decoding:
     execution latency of a [Vop], and its up-to-three source vreg
     indices (-1 = absent) *)
  dec_lat : int array;
  dec_s1 : int array;
  dec_s2 : int array;
  dec_s3 : int array;
  (* co-processor instruction pool: a ring of parallel arrays. Entries
     are transmitted SVE instructions with scalar operands resolved at
     transmit time (address generation happens in the scalar core,
     §4.1.2). [p_head]/[p_tail] are absolute counters; the slot of
     sequence [q] is [q land p_mask]. Occupancy is capped at [p_limit]
     (= [Config.pool_capacity]); the ring capacity is the next power of
     two. [p_dst] holds the destination vreg (source vreg for stores). *)
  p_kind : int array;
  p_dst : int array;
  p_arr : int array;
  p_base : int array;
  p_elems : int array;
  p_lat : int array;
  p_s1 : int array;
  p_s2 : int array;
  p_s3 : int array;
  p_mask : int;
  p_limit : int;
  mutable p_head : int;
  mutable p_tail : int;
  (* issue window: same ring scheme, capped at [Config.window].
     [w_s1..w_s3] are *producer sequence numbers* (-1 = no dependence):
     a producer below [w_head] has retired and is trivially ready.
     [w_unissued] is the packed occupancy bitmask of not-yet-issued
     slots — the dispatch scan sweeps it in insertion order. *)
  w_kind : int array;
  w_width : int array;  (* granules captured at rename *)
  w_arr : int array;
  w_base : int array;
  w_elems : int array;
  w_lat : int array;
  w_s1 : int array;
  w_s2 : int array;
  w_s3 : int array;
  w_done : int array;
  w_mob : int array;    (* MOB slot handle once issued, -1 otherwise *)
  (* dispatch ready-time heap: a binary min-heap of (ready cycle, slot)
     over entries whose producers have all issued but whose latest
     completion is still in the future. Such an entry's earliest issue
     cycle is exact and fixed, so it leaves the sweep set and re-enters
     when due — latency-blocked entries cost zero scan work meanwhile. *)
  hp_rdy : int array;
  hp_slot : int array;
  mutable hp_n : int;
  w_rdy : bool array;
  (* FIFO (head, tail) of dep-ready loads parked while the load queue
     was full, linked via [w_wnext] in sequence order; the retire stage
     wakes as many as there are free slots, oldest first. Likewise for
     stores. An entry parks here at most once (on the visit that first
     finds its operands ready), so the list order is sequence order. *)
  mutable lw_head : int;
  mutable lw_tail : int;
  mutable sw_head : int;
  mutable sw_tail : int;
      (* "operands known ready": set the first time an entry's producers
         are all issued and complete; readiness is monotone, so later
         visits (class-blocked entries re-probe every cycle) skip the
         dependence derivation entirely. Reset on slot reuse. *)
  w_scan : Bitset.t;
  (* class-filtered subsets of [w_scan] ([_c] compute/dup, [_m] memory):
     once a class's issue possibility resolves to "no" for the rest of a
     core's dispatch pass, the sweep switches to the other class's
     subset and stops visiting entries that could not issue anyway *)
  w_scan_c : Bitset.t;
  w_scan_m : Bitset.t;
      (* the subset of [w_unissued] the dispatch sweep visits. An entry
         whose producer has not issued leaves this set (parked on the
         producer's waiter list below) and re-enters when the producer
         issues, so dependence chains behind a stalled load are not
         re-scanned every cycle. *)
  w_wfirst : int array;  (* head of each slot's parked-waiter list, -1 *)
  w_wnext : int array;   (* waiter list links, indexed by waiter slot *)
  w_unissued : Bitset.t;
  w_cap : int;
  w_mask : int;
  mutable w_head : int;
  mutable w_tail : int;
  vmap : int array;  (* arch vreg -> producer sequence number, -1 none *)
  freelist : Freelist.t;       (* per-core or shared, per architecture *)
  lsu : Lsu.t;
  mutable vl : int;            (* granules currently held *)
  owned_arr : int array;
      (* cached Dispatcher.Cfg view of this core's ExeBUs (first
         [owned_n] entries); refreshed only when the assignment changes,
         so the per-cycle issue scan does not rebuild it *)
  mutable owned_n : int;
  (* statistics *)
  mutable issued_compute : int;
  mutable issued_mem : int;
  mutable inj_ops : int;     (* fault-injection opportunities seen *)
  mutable inj_faults : int;  (* opportunities on which the stream fired *)
  mutable rename_stalls : int;
  mutable blocked_vl_cycles : int;
  mutable monitor_instrs : int;
  mutable monitor_stall_cycles : int;
      (* cycles whose front-end budget ran out while it also executed a
         partition-monitor read: the monitor's *marginal* cost — decision
         reads are speculative (§4.1.1) and otherwise hidden *)
  mutable reconfigs : int;
  mutable failed_vl : int;
  mutable phase_index : int;   (* counts non-zero OI writes *)
  mutable cur_phase : phase_acc option;
  mutable done_phases : Metrics.phase_stat list;  (* reversed *)
  lanes_buckets : Buckets.t;
  vl_buckets : Buckets.t;
}

type t = {
  cfg : Config.t;
  arch : Arch.t;
  cores : core_state array;
  hierarchy : Hierarchy.t;
  mob : Mob.t;
  rtbl : Rtbl.t;
  exebu_cfg : Config_tbl.t;   (* Dispatcher.Cfg *)
  regblk_cfg : Config_tbl.t;  (* RegFile.Cfg *)
  exebus : Exebu.t;
  lane_mgr : Lane_mgr.t option;  (* Occamy only *)
  rng : Rng.t;
  shares_ports : bool;  (* Arch.shares_issue_ports, hoisted *)
  all_units_arr : int array;  (* every ExeBU id, for shared-port archs *)
  mob_scratch : int array;    (* LSU-retire handoff buffer *)
  inv_scratch : int array;    (* expected <VL> column for invariants *)
  busy_lanes : float array;
      (* [| busy_lane_cycles |]: a mutable float field in this mixed
         record would box on every write; a float array cell does not *)
  mutable hz_ev : int;  (* horizon-scan accumulator (closure-free) *)
  (* per-scan dispatch capability cache (-1 unresolved, else 0/1): each
     of "a compute / a load / a store could issue right now" is
     entry-independent and only flips true->false when the scanning
     core itself issues, so the scan resolves each at most once and
     invalidates on an issue of that class. See {!try_issue}. *)
  mutable sc_comp : int;
  mutable sc_load : int;
  mutable sc_store : int;
  mutable cycle : int;
  mutable replans : int;
  (* fast-forward bookkeeping (reported, never fed back into timing) *)
  mutable ff_skipped : int;  (* cycles advanced without stepping *)
  mutable ff_jumps : int;    (* number of fast-forward jumps *)
  mutable work_cycle : int;
      (* last cycle on which the machine did any work (executed,
         transmitted, renamed, issued or retired something). Gates the
         horizon computation: a cycle that did work almost certainly has
         a successor event, so don't bother scanning for a skip. Purely
         a filter on *attempting* skips — never affects timing. *)
  mutable ff_quiet_until : int;
      (* a horizon pass proved no state change strictly before this
         cycle; don't re-scan until we get there. Like [work_cycle],
         only a filter on attempts. *)
  (* per-cycle issue budgets; for FTS index 0 is the shared domain *)
  compute_budget : int array;
  mem_budget : int array;
  bucket_width : int;
  (* -------- observability (never feeds back into timing) ----------- *)
  trace : Trace.t;
  prof : Prof.t;  (* self-profiling stage scopes; Prof.disabled by default *)
  obs_prev_stalls : int array;  (* rename_stalls at the last episode scan *)
  obs_stall_start : int array;  (* open stall episode start, -1 if none *)
  obs_req_cycle : int array;    (* cycle of the pending MSR <VL>, -1 *)
  (* -------- top-down cycle accounting (also observational) ---------- *)
  at_on : bool;                 (* hoisted Attrib.enabled: one branch/cycle *)
  attrib : Attrib.t;
  at_prev_issued : int array;   (* issued_compute+issued_mem last cycle *)
  at_prev_stalls : int array;   (* rename_stalls last cycle *)
  at_mob_blocked : bool array;  (* a ready mem uop hit a MOB conflict this
                                   cycle (set by the dispatch sweep) *)
  at_ff_buckets : int array;    (* scratch: per-core bucket for an FF jump *)
  (* -------- fault injection (observational marking only) ------------ *)
  inj_on : bool;
      (* hoisted [cfg.inject_rate > 0]: one branch per issue when off.
         The timing simulator carries no vector *data*, so injection
         here only marks which opportunities fire (trace events +
         counters) from the pure per-(seed, core, index) decision
         stream; the functional interpreter corrupts actual values from
         the same stream semantics. Opportunities exist only at issue
         sites, which never occur inside a fast-forwarded stretch
         (provably inert cycles issue nothing), so naive and
         fast-forwarding loops see identical fault streams. *)
}

let src = Logs.Src.create "occamy.sim" ~doc:"cycle-level simulator events"

module Log = (val Logs.src_log src : Logs.LOG)

exception Simulation_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Simulation_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let rec next_pow2_from acc n = if acc >= n then acc else next_pow2_from (acc * 2) n
let next_pow2 n = next_pow2_from 1 n

let make_core cfg arch ~shared_freelist id wl =
  let freelist =
    match shared_freelist with
    | Some fl -> fl
    | None ->
      Freelist.create
        ~name:(Printf.sprintf "core%d" id)
        ~depth:cfg.Config.regblk_depth ~pinned:cfg.Config.arch_vregs
  in
  ignore arch;
  let code = wl.Workload.program.Program.code in
  let np = Array.length code in
  let dec_lat = Array.make np 0 in
  let dec_s1 = Array.make np (-1) in
  let dec_s2 = Array.make np (-1) in
  let dec_s3 = Array.make np (-1) in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Instr.Vop { op; srcs; _ } ->
        dec_lat.(pc) <- Vop.latency op;
        (match srcs with
        | [] -> ()
        | [ a ] -> dec_s1.(pc) <- Reg.v_index a
        | [ a; b ] ->
          dec_s1.(pc) <- Reg.v_index a;
          dec_s2.(pc) <- Reg.v_index b
        | [ a; b; c ] ->
          dec_s1.(pc) <- Reg.v_index a;
          dec_s2.(pc) <- Reg.v_index b;
          dec_s3.(pc) <- Reg.v_index c
        | _ ->
          invalid_arg
            (Printf.sprintf "Sim: core%d Vop at pc=%d has more than 3 sources"
               id pc))
      | _ -> ())
    code;
  let p_cap = next_pow2 cfg.Config.pool_capacity in
  let w_cap = next_pow2 cfg.Config.window in
  {
    id;
    wl;
    phase_lookup = Workload.phase_of_oi_write wl;
    pc = 0;
    xregs = Array.make Reg.num_x 0;
    fregs = Array.make Reg.num_f 0.0;
    halted = false;
    finish = 0;
    pending_vl = -1;
    pending_red = false;
    cs_state = Cs_running;
    cs_schedule = [];
    cur_level = Occamy_mem.Level.Vec_cache;
    fe_budget = 0;
    fe_tbudget = 0;
    fe_monitor = false;
    fe_cont = false;
    fe_next = 0;
    dec_lat;
    dec_s1;
    dec_s2;
    dec_s3;
    p_kind = Array.make p_cap 0;
    p_dst = Array.make p_cap 0;
    p_arr = Array.make p_cap 0;
    p_base = Array.make p_cap 0;
    p_elems = Array.make p_cap 0;
    p_lat = Array.make p_cap 0;
    p_s1 = Array.make p_cap (-1);
    p_s2 = Array.make p_cap (-1);
    p_s3 = Array.make p_cap (-1);
    p_mask = p_cap - 1;
    p_limit = cfg.Config.pool_capacity;
    p_head = 0;
    p_tail = 0;
    w_kind = Array.make w_cap 0;
    w_width = Array.make w_cap 0;
    w_arr = Array.make w_cap 0;
    w_base = Array.make w_cap 0;
    w_elems = Array.make w_cap 0;
    w_lat = Array.make w_cap 0;
    w_s1 = Array.make w_cap (-1);
    w_s2 = Array.make w_cap (-1);
    w_s3 = Array.make w_cap (-1);
    w_done = Array.make w_cap max_int;
    w_mob = Array.make w_cap (-1);
    hp_rdy = Array.make w_cap 0;
    hp_slot = Array.make w_cap 0;
    hp_n = 0;
    w_rdy = Array.make w_cap false;
    lw_head = -1;
    lw_tail = -1;
    sw_head = -1;
    sw_tail = -1;
    w_scan = Bitset.create w_cap;
    w_scan_c = Bitset.create w_cap;
    w_scan_m = Bitset.create w_cap;
    w_wfirst = Array.make w_cap (-1);
    w_wnext = Array.make w_cap (-1);
    w_unissued = Bitset.create w_cap;
    w_cap;
    w_mask = w_cap - 1;
    w_head = 0;
    w_tail = 0;
    vmap = Array.make Reg.num_v (-1);
    freelist;
    lsu =
      Lsu.create ~load_capacity:cfg.Config.lsu_load_capacity
        ~store_capacity:cfg.Config.lsu_store_capacity ();
    vl = 0;
    owned_arr = Array.make cfg.Config.exebus 0;
    owned_n = 0;
    issued_compute = 0;
    issued_mem = 0;
    inj_ops = 0;
    inj_faults = 0;
    rename_stalls = 0;
    blocked_vl_cycles = 0;
    monitor_instrs = 0;
    monitor_stall_cycles = 0;
    reconfigs = 0;
    failed_vl = 0;
    phase_index = 0;
    cur_phase = None;
    done_phases = [];
    lanes_buckets = Buckets.create ~width:1000;
    vl_buckets = Buckets.create ~width:1000;
  }

let create ?(cfg = Config.default) ?(trace = Trace.disabled)
    ?(prof = Prof.disabled) ?(attrib = Attrib.disabled) ?decisions
    ?(context_switches = []) ~arch workloads =
  let cfg = Config.validate cfg in
  if Trace.enabled trace && Trace.num_tracks trace < cfg.cores + 1 then
    invalid_arg
      (Printf.sprintf
         "Sim.create: trace has %d tracks, need %d (one per core + LaneMgr; \
          use Trace.for_sim)"
         (Trace.num_tracks trace) (cfg.cores + 1));
  if Attrib.enabled attrib && Attrib.cores attrib < cfg.cores then
    invalid_arg
      (Printf.sprintf
         "Sim.create: attrib recorder covers %d cores, need %d"
         (Attrib.cores attrib) cfg.cores);
  let n = List.length workloads in
  if n <> cfg.cores then
    invalid_arg
      (Printf.sprintf "Sim.create: %d workloads for %d cores" n cfg.cores);
  let shared_freelist =
    if Arch.splits_vrf arch then None
    else
      (* FTS: one full-width row space; every core's architectural state
         pins rows in it (§7.3). *)
      Some
        (Freelist.create ~name:"shared" ~depth:cfg.regblk_depth
           ~pinned:(cfg.arch_vregs * cfg.cores))
  in
  let cores =
    Array.of_list
      (List.mapi (fun i wl -> make_core cfg arch ~shared_freelist i wl) workloads)
  in
  let rtbl = Rtbl.create ~total:cfg.exebus ~cores:cfg.cores in
  let lane_mgr =
    match arch with
    | Arch.Occamy ->
      Some
        (Lane_mgr.create ~cfg:(Config.roofline cfg) ~total:cfg.exebus
           ~cores:cfg.cores ())
    | Arch.Private | Arch.Fts | Arch.Vls -> None
  in
  (* Initial <decision> values per architecture. *)
  (match arch with
  | Arch.Private ->
    Array.iter
      (fun c ->
        Rtbl.set_decision rtbl ~core:c.id (Config.granules_per_core_private cfg))
      cores
  | Arch.Fts ->
    Array.iter (fun c -> Rtbl.set_decision rtbl ~core:c.id cfg.exebus) cores
  | Arch.Vls ->
    (* Static spatial sharing: one partition for the whole run, computed
       from each workload's most lane-demanding phase (a static plan must
       serve every phase, cf. the 12-lane WL20 allocation covering its
       second phase in §7.4). Never replanned (Figure 1(c)). *)
    let roofline = Config.roofline cfg in
    let mgr =
      Lane_mgr.create ~cfg:roofline ~total:cfg.exebus ~cores:cfg.cores ()
    in
    Array.iter
      (fun c ->
        let most_demanding =
          List.fold_left
            (fun acc (p : Workload.phase) ->
              let sat p =
                Occamy_lanemgr.Roofline.saturation_vl roofline
                  ~max_vl:cfg.exebus ~oi:p.Workload.ph_oi
                  ~level:p.Workload.ph_level
              in
              match acc with
              | Some best when sat best >= sat p -> Some best
              | _ -> Some p)
            None c.wl.Workload.phases
        in
        match most_demanding with
        | Some p ->
          Lane_mgr.enter_phase mgr ~core:c.id ~oi:p.Workload.ph_oi
            ~level:p.Workload.ph_level
        | None -> ())
      cores;
    (* Leftover free lanes are spread round-robin: a static partition has
       no reason to leave silicon idle. *)
    let d = Lane_mgr.decisions mgr in
    let leftover = ref (cfg.exebus - Array.fold_left ( + ) 0 d) in
    let i = ref 0 in
    while !leftover > 0 do
      d.(!i mod cfg.cores) <- d.(!i mod cfg.cores) + 1;
      decr leftover;
      incr i
    done;
    Array.iteri (fun c vl -> Rtbl.set_decision rtbl ~core:c vl) d
  | Arch.Occamy -> ());
  (* Explicit static partition, e.g. for lane sweeps (Figure 14(a)). Only
     meaningful for the static architectures. *)
  (match decisions with
  | Some d ->
    if arch = Arch.Occamy then
      invalid_arg "Sim.create: cannot force decisions on an elastic machine";
    Array.iteri (fun c vl -> Rtbl.set_decision rtbl ~core:c vl) d
  | None -> ());
  List.iter
    (fun (core, cycle) ->
      if core < 0 || core >= cfg.cores || cycle <= 0 then
        invalid_arg "Sim.create: bad context switch";
      cores.(core).cs_schedule <-
        List.sort compare (cycle :: cores.(core).cs_schedule))
    context_switches;
  let domains = if Arch.shares_issue_ports arch then 1 else cfg.cores in
  {
    cfg;
    arch;
    cores;
    hierarchy = Hierarchy.create ~cfg:cfg.mem ();
    mob = Mob.create ~capacity:cfg.mob_capacity ();
    rtbl;
    exebu_cfg = Config_tbl.create ~name:"Dispatch.Cfg" ~units:cfg.exebus;
    regblk_cfg = Config_tbl.create ~name:"RegFile.Cfg" ~units:cfg.exebus;
    exebus = Exebu.create ~units:cfg.exebus ~pipes_per_unit:cfg.pipes_per_exebu;
    lane_mgr;
    rng = Rng.create ~seed:cfg.seed;
    shares_ports = Arch.shares_issue_ports arch;
    all_units_arr = Array.init cfg.exebus Fun.id;
    mob_scratch =
      Array.make (cfg.lsu_load_capacity + cfg.lsu_store_capacity) (-1);
    inv_scratch = Array.make cfg.cores 0;
    busy_lanes = [| 0.0 |];
    hz_ev = max_int;
    sc_comp = -1;
    sc_load = -1;
    sc_store = -1;
    cycle = 0;
    replans = (match arch with Arch.Vls -> 1 | _ -> 0);
    ff_skipped = 0;
    ff_jumps = 0;
    work_cycle = -1;
    ff_quiet_until = 0;
    compute_budget = Array.make domains 0;
    mem_budget = Array.make domains 0;
    bucket_width = 1000;
    trace;
    prof;
    obs_prev_stalls = Array.make cfg.cores 0;
    obs_stall_start = Array.make cfg.cores (-1);
    obs_req_cycle = Array.make cfg.cores (-1);
    at_on = Attrib.enabled attrib;
    attrib;
    at_prev_issued = Array.make cfg.cores 0;
    at_prev_stalls = Array.make cfg.cores 0;
    at_mob_blocked = Array.make cfg.cores false;
    at_ff_buckets = Array.make cfg.cores 0;
    inj_on = cfg.inject_rate > 0.0;
  }

let[@inline] domain t core = if t.shares_ports then 0 else core

let[@inline] cs_is_running c =
  match c.cs_state with Cs_running -> true | _ -> false

(* Re-derive the cached ExeBU ownership array; must be called after every
   Dispatcher.Cfg change for [c] (reconfiguration grants and
   context-switch releases). [reassign] never touches other cores'
   units, so only the reconfigured core needs refreshing. *)
let refresh_owned_units t c =
  c.owned_n <- Config_tbl.owned_into t.exebu_cfg ~core:c.id c.owned_arr

(* ------------------------------------------------------------------ *)
(* Trace recording                                                     *)
(* ------------------------------------------------------------------ *)

(* Tracing is strictly observational: every helper only *reads*
   simulator state, so results are bit-identical with tracing on or off
   (guarded by the "tracing non-perturbation" test). Hot-path call sites
   guard on [Trace.enabled] *before* constructing the event, so a
   disabled trace costs one branch and allocates nothing. *)

let tracing t = Trace.enabled t.trace

let trace_core t (c : core_state) ev =
  Trace.record t.trace ~track:c.id ~cycle:t.cycle ev

let trace_mgr t ev =
  Trace.record t.trace ~track:(Array.length t.cores) ~cycle:t.cycle ev

(* A lane-manager replan, with the full decision context: the per-core
   decision vector and the roofline verdict behind each decision. *)
let trace_replan t ~trigger ~cause mgr =
  trace_mgr t
    (Event.Replan
       {
         trigger;
         cause;
         decisions = Lane_mgr.decisions mgr;
         verdicts = Lane_mgr.verdicts mgr;
       })

(* Close an open rename-stall episode on [c], if any. *)
let trace_end_stall_episode t (c : core_state) ~upto =
  let start = t.obs_stall_start.(c.id) in
  if start >= 0 then begin
    t.obs_stall_start.(c.id) <- -1;
    trace_core t c
      (Event.Rename_stall
         { core = c.id; start_cycle = start; cycles = upto - start })
  end

(* ------------------------------------------------------------------ *)
(* Drain / reconfiguration                                             *)
(* ------------------------------------------------------------------ *)

let[@inline] pipeline_drained c =
  c.p_head = c.p_tail && c.w_head = c.w_tail && Lsu.is_drained c.lsu

(* Grant or refuse a pending MSR <VL>. Caller guarantees the drain. *)
let resolve_vl_request t c l =
  (* Close the reconfig-blocked interval opened by the MSR <VL> before
     recording its outcome, so the span and the grant/deny read in
     order. *)
  if tracing t then begin
    let req = t.obs_req_cycle.(c.id) in
    t.obs_req_cycle.(c.id) <- -1;
    if req >= 0 && t.cycle > req then
      trace_core t c
        (Event.Reconfig_blocked
           { core = c.id; start_cycle = req; cycles = t.cycle - req })
  end;
  (match t.arch with
  | Arch.Fts ->
    (* Temporal sharing: every core always executes at full width; the
       request degenerates to holding or releasing the co-processor. *)
    c.vl <- (if l = 0 then 0 else t.cfg.exebus);
    c.reconfigs <- c.reconfigs + 1;
    if tracing t then
      trace_core t c
        (Event.Vl_grant { core = c.id; granted = c.vl; al = t.cfg.exebus })
  | Arch.Private | Arch.Vls | Arch.Occamy ->
    if Rtbl.try_set_vl t.rtbl ~core:c.id l then begin
      Config_tbl.reassign t.exebu_cfg ~core:c.id ~count:l;
      Config_tbl.reassign t.regblk_cfg ~core:c.id ~count:l;
      refresh_owned_units t c;
      Log.debug (fun m ->
          m "cycle %d: core%d reconfigured to %d granules" t.cycle c.id l);
      c.vl <- l;
      c.reconfigs <- c.reconfigs + 1;
      if tracing t then
        trace_core t c
          (Event.Vl_grant { core = c.id; granted = l; al = Rtbl.al t.rtbl })
    end
    else begin
      c.failed_vl <- c.failed_vl + 1;
      if tracing t then
        trace_core t c
          (Event.Vl_deny { core = c.id; requested = l; al = Rtbl.al t.rtbl })
    end);
  c.pending_vl <- -1

(* Status as read by MRS <status>: for FTS requests always succeed. *)
let read_status t c =
  match t.arch with Arch.Fts -> 1 | _ -> Rtbl.status t.rtbl ~core:c.id

let read_decision t c = Rtbl.decision t.rtbl ~core:c.id

let read_al t =
  match t.arch with Arch.Fts -> t.cfg.exebus | _ -> Rtbl.al t.rtbl

(* ------------------------------------------------------------------ *)
(* Phase bookkeeping + lane manager triggers                           *)
(* ------------------------------------------------------------------ *)

let close_phase t c =
  match c.cur_phase with
  | None -> ()
  | Some pa ->
    let stat =
      {
        Metrics.ps_name = pa.pa_name;
        ps_start = pa.pa_start;
        ps_end = t.cycle;
        ps_issued_compute = pa.pa_compute;
        ps_issued_mem = pa.pa_mem;
        ps_rename_stalls = pa.pa_stalls;
        ps_avg_vl =
          (if pa.pa_cycles = 0 then 0.0
           else float_of_int pa.pa_vl_sum /. float_of_int pa.pa_cycles);
      }
    in
    c.done_phases <- stat :: c.done_phases;
    if tracing t then
      trace_core t c (Event.Phase_end { core = c.id; phase = pa.pa_name });
    c.cur_phase <- None

let handle_oi_write t c oi =
  if tracing t then trace_core t c (Event.Oi_write { core = c.id; oi });
  if Oi.is_zero oi then begin
    close_phase t c;
    (match t.lane_mgr with
    | Some mgr ->
      Lane_mgr.exit_phase mgr ~core:c.id;
      Array.iteri
        (fun core d -> Rtbl.set_decision t.rtbl ~core d)
        (Lane_mgr.decisions mgr);
      t.replans <- t.replans + 1;
      if tracing t then
        trace_replan t ~trigger:c.id ~cause:Event.Exit_phase mgr
    | None -> ());
    Rtbl.set_oi t.rtbl ~core:c.id Oi.zero
  end
  else begin
    let phase =
      match c.phase_lookup c.phase_index with
      | Some p -> p
      | None ->
        error "core%d: OI write #%d has no matching phase metadata" c.id
          c.phase_index
    in
    c.phase_index <- c.phase_index + 1;
    close_phase t c;
    if tracing t && not (Occamy_mem.Level.equal c.cur_level phase.Workload.ph_level)
    then
      trace_core t c
        (Event.Mem_transition
           {
             core = c.id;
             from_level = c.cur_level;
             to_level = phase.Workload.ph_level;
           });
    c.cur_level <- phase.Workload.ph_level;
    c.cur_phase <-
      Some
        {
          pa_name = phase.Workload.ph_name;
          pa_start = t.cycle;
          pa_compute = 0;
          pa_mem = 0;
          pa_vl_sum = 0;
          pa_cycles = 0;
          pa_stalls = 0;
        };
    if tracing t then
      trace_core t c
        (Event.Phase_begin
           {
             core = c.id;
             phase = phase.Workload.ph_name;
             oi;
             level = phase.Workload.ph_level;
           });
    Rtbl.set_oi t.rtbl ~core:c.id oi;
    match t.lane_mgr with
    | Some mgr ->
      Lane_mgr.enter_phase mgr ~core:c.id ~oi ~level:phase.Workload.ph_level;
      Array.iteri
        (fun core d -> Rtbl.set_decision t.rtbl ~core d)
        (Lane_mgr.decisions mgr);
      Log.debug (fun m ->
          m "cycle %d: core%d entered %s, new plan [%s]" t.cycle c.id
            phase.Workload.ph_name
            (String.concat ";"
               (Array.to_list
                  (Array.map string_of_int (Lane_mgr.decisions mgr)))));
      t.replans <- t.replans + 1;
      if tracing t then
        trace_replan t ~trigger:c.id ~cause:Event.Enter_phase mgr
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Front-end: scalar execution + transmit (§4.1.1)                     *)
(* ------------------------------------------------------------------ *)

let eval_src c = function
  | Instr.Reg (Reg.X i) -> c.xregs.(i)
  | Instr.Imm i -> i

let cond_holds cond a b =
  match cond with
  | Instr.Eq -> a = b
  | Instr.Ne -> a <> b
  | Instr.Lt -> a < b
  | Instr.Le -> a <= b
  | Instr.Gt -> a > b
  | Instr.Ge -> a >= b

let[@inline] elems_of c cnt =
  match cnt with
  | None -> Lane.elems_of_granules c.vl
  | Some (Reg.X i) -> min c.xregs.(i) (Lane.elems_of_granules c.vl)

(* Transmit one SVE instruction into the pool ring; element counts and
   base addresses are resolved here from the scalar registers. Returns
   [false] when the pool is full (the front-end stalls in place). *)
let transmit c instr =
  if c.p_tail - c.p_head >= c.p_limit then false
  else begin
    let ps = c.p_tail land c.p_mask in
    (match instr with
    | Instr.Vload { dst; arr; idx = Reg.X xi; cnt } ->
      c.p_kind.(ps) <- k_load;
      c.p_dst.(ps) <- Reg.v_index dst;
      c.p_arr.(ps) <- arr;
      c.p_base.(ps) <- c.xregs.(xi);
      c.p_elems.(ps) <- elems_of c cnt
    | Instr.Vstore { src; arr; idx = Reg.X xi; cnt } ->
      c.p_kind.(ps) <- k_store;
      c.p_dst.(ps) <- Reg.v_index src;
      c.p_arr.(ps) <- arr;
      c.p_base.(ps) <- c.xregs.(xi);
      c.p_elems.(ps) <- elems_of c cnt
    | Instr.Vop { dst; _ } ->
      (* [c.pc] still points at this instruction; reuse its pre-decoded
         latency and source indices instead of re-decoding. *)
      c.p_kind.(ps) <- k_compute;
      c.p_dst.(ps) <- Reg.v_index dst;
      c.p_lat.(ps) <- c.dec_lat.(c.pc);
      c.p_s1.(ps) <- c.dec_s1.(c.pc);
      c.p_s2.(ps) <- c.dec_s2.(c.pc);
      c.p_s3.(ps) <- c.dec_s3.(c.pc)
    | Instr.Vdup (dst, _) ->
      c.p_kind.(ps) <- k_dup;
      c.p_dst.(ps) <- Reg.v_index dst;
      c.p_lat.(ps) <- 3
    | _ -> error "transmit: not an SVE instruction");
    c.p_tail <- c.p_tail + 1;
    true
  end

let step_frontend t c =
  if not (cs_is_running c) then ()
  else if c.halted then ()
  else if c.pending_vl >= 0 then
    c.blocked_vl_cycles <- c.blocked_vl_cycles + 1
  else if c.pending_red then begin
    (* Vred waits for the core's pipeline to drain (the reduction reads
       the architectural vector state; Table 2 ⟨SVE, Scalar⟩). *)
    if pipeline_drained c then c.pending_red <- false
  end;
  if
    (not (cs_is_running c)) || c.halted || c.pending_vl >= 0
    || c.pending_red
  then ()
  else begin
    (* The 8-issue scalar core executes scalar instructions and, in
       parallel, transmits up to [transmit_width] SVE/EM-SIMD instructions
       per cycle to the co-processor (Figure 5); the two budgets are
       independent. Budgets live in mutable core fields, not refs. *)
    c.fe_budget <- t.cfg.frontend_width;
    c.fe_tbudget <- t.cfg.transmit_width;
    c.fe_monitor <- false;
    c.fe_cont <- true;
    let code = c.wl.Workload.program.Program.code in
    let targets = c.wl.Workload.program.Program.targets in
    while c.fe_cont && c.fe_budget > 0 && not c.halted do
      if c.pc >= Array.length code then begin
        c.halted <- true;
        c.finish <- t.cycle
      end
      else begin
        let instr = code.(c.pc) in
        c.fe_next <- c.pc + 1;
        (match instr with
        | Instr.Li (Reg.X d, imm) ->
          c.xregs.(d) <- imm;
          c.fe_budget <- c.fe_budget - 1
        | Instr.Mov (Reg.X d, Reg.X s) ->
          c.xregs.(d) <- c.xregs.(s);
          c.fe_budget <- c.fe_budget - 1
        | Instr.Iop (op, Reg.X d, Reg.X s, src) ->
          let a = c.xregs.(s) and b = eval_src c src in
          c.xregs.(d) <-
            (match op with
            | Instr.Addi -> a + b
            | Instr.Subi -> a - b
            | Instr.Muli -> a * b
            | Instr.Mini -> min a b
            | Instr.Maxi -> max a b);
          c.fe_budget <- c.fe_budget - 1
        | Instr.Fli (Reg.F d, v) ->
          c.fregs.(d) <- v;
          c.fe_budget <- c.fe_budget - 1
        | Instr.Fop (op, Reg.F d, Reg.F a, Reg.F b) ->
          let x = c.fregs.(a) and y = c.fregs.(b) in
          c.fregs.(d) <-
            (match op with
            | Instr.Fadd -> x +. y
            | Instr.Fsub -> x -. y
            | Instr.Fmul -> x *. y
            | Instr.Fdiv -> x /. y);
          c.fe_budget <- c.fe_budget - 1
        | Instr.Fvop (op, Reg.F d, srcs) ->
          (* Scalar FP executes in the scalar core's own FP unit; the data
             values do not affect timing-relevant control flow.
             Arity-specialised to avoid boxing the operands per
             executed instruction. *)
          c.fregs.(d) <-
            (match srcs with
            | [ Reg.F a ] -> Vop.apply1 op c.fregs.(a)
            | [ Reg.F a; Reg.F b ] -> Vop.apply2 op c.fregs.(a) c.fregs.(b)
            | [ Reg.F a; Reg.F b; Reg.F cc ] ->
              Vop.apply3 op c.fregs.(a) c.fregs.(b) c.fregs.(cc)
            | _ -> error "core%d: %s.s arity mismatch" c.id (Vop.name op));
          c.fe_budget <- c.fe_budget - 1
        | Instr.Flw { fdst = Reg.F d; _ } ->
          (* Scalar loads go through the core's private L1 (Table 4); a
             multi-version scalar loop only runs for tiny trip counts, so
             a fixed 1-slot cost suffices. *)
          c.fregs.(d) <- 0.0;
          c.fe_budget <- c.fe_budget - 1
        | Instr.Fsw _ -> c.fe_budget <- c.fe_budget - 1
        | Instr.B _ ->
          c.fe_next <- targets.(c.pc);
          c.fe_budget <- c.fe_budget - 1
        | Instr.Bc (cond, Reg.X r, src, _) ->
          if cond_holds cond c.xregs.(r) (eval_src c src) then
            c.fe_next <- targets.(c.pc);
          c.fe_budget <- c.fe_budget - 1
        | Instr.Halt ->
          c.halted <- true;
          c.finish <- t.cycle;
          c.fe_budget <- c.fe_budget - 1
        | Instr.Mrs (Reg.X d, sr) ->
          (match sr with
          | Sysreg.VL | Sysreg.ZCR -> c.xregs.(d) <- c.vl
          | Sysreg.STATUS -> c.xregs.(d) <- read_status t c
          | Sysreg.DECISION ->
            c.xregs.(d) <- read_decision t c;
            c.monitor_instrs <- c.monitor_instrs + 1;
            c.fe_monitor <- true
          | Sysreg.AL -> c.xregs.(d) <- read_al t
          | Sysreg.OI -> c.xregs.(d) <- 0);
          c.fe_budget <- c.fe_budget - 1
        | Instr.Msr_oi oi ->
          if Prof.sampled t.prof then begin
            Prof.enter t.prof Prof.Replan;
            handle_oi_write t c oi;
            Prof.exit t.prof
          end
          else handle_oi_write t c oi;
          c.fe_budget <- c.fe_budget - 1
        | Instr.Msr (Sysreg.VL, src) ->
          let l = eval_src c src in
          if l < 0 || l > t.cfg.exebus then error "core%d: MSR <VL> %d" c.id l;
          c.pending_vl <- l;
          if tracing t then begin
            trace_core t c (Event.Vl_request { core = c.id; requested = l });
            t.obs_req_cycle.(c.id) <- t.cycle
          end;
          c.fe_budget <- c.fe_budget - 1;
          c.fe_cont <- false
        | Instr.Msr (sr, _) ->
          error "core%d: MSR %s not writable" c.id (Sysreg.name sr)
        | Instr.Vred { dst = Reg.F d; _ } ->
          (* Reduction result is data the timing model does not carry;
             block for the drain (its real cost) and yield zero. *)
          c.fregs.(d) <- 0.0;
          c.pending_red <- true;
          c.fe_budget <- c.fe_budget - 1;
          c.fe_cont <- false
        | Instr.Vload _ | Instr.Vstore _ | Instr.Vop _ | Instr.Vdup _ ->
          if c.vl <= 0 then
            error "core%d: SVE instruction with <VL>=0 at pc=%d" c.id c.pc;
          if c.fe_tbudget = 0 then c.fe_cont <- false
          else if transmit c instr then c.fe_tbudget <- c.fe_tbudget - 1
          else c.fe_cont <- false);
        if c.fe_cont && not c.halted then c.pc <- c.fe_next
        else if c.halted then ()
        else if c.pending_vl >= 0 || c.pending_red then c.pc <- c.fe_next
      end
    done;
    if c.fe_budget = 0 && c.fe_monitor then
      c.monitor_stall_cycles <- c.monitor_stall_cycles + 1;
    (* Transmits do not consume [fe_budget], so both budgets decide
       whether the front-end did anything this cycle. *)
    if
      c.fe_budget < t.cfg.frontend_width
      || c.fe_tbudget < t.cfg.transmit_width
    then t.work_cycle <- t.cycle
  end

(* ------------------------------------------------------------------ *)
(* Rename (in order, bounded by freelist and window)                   *)
(* ------------------------------------------------------------------ *)

(* Keep the class-filtered sweep subsets in lock-step with [w_scan]. *)
let[@inline] scan_add c slot =
  Bitset.add c.w_scan slot;
  if c.w_kind.(slot) >= k_compute then Bitset.add c.w_scan_c slot
  else Bitset.add c.w_scan_m slot

let[@inline] scan_remove c slot =
  Bitset.remove c.w_scan slot;
  if c.w_kind.(slot) >= k_compute then Bitset.remove c.w_scan_c slot
  else Bitset.remove c.w_scan_m slot

let rec rename_loop t c renamed =
  if
    renamed >= t.cfg.rename_width
    || c.p_head = c.p_tail
    || c.w_tail - c.w_head >= t.cfg.window
  then renamed
  else begin
    let ps = c.p_head land c.p_mask in
    let kind = c.p_kind.(ps) in
    (* Loads, computes and dups hold a physical register row until
       commit; stores do not. *)
    if kind <> k_store && not (Freelist.alloc c.freelist) then begin
      c.rename_stalls <- c.rename_stalls + 1;
      (match c.cur_phase with
      | Some pa -> pa.pa_stalls <- pa.pa_stalls + 1
      | None -> ());
      renamed
    end
    else begin
      c.p_head <- c.p_head + 1;
      let slot = c.w_tail land c.w_mask in
      c.w_kind.(slot) <- kind;
      c.w_width.(slot) <- (if t.shares_ports then t.cfg.exebus else c.vl);
      c.w_arr.(slot) <- c.p_arr.(ps);
      c.w_base.(slot) <- c.p_base.(ps);
      c.w_elems.(slot) <- c.p_elems.(ps);
      c.w_lat.(slot) <- c.p_lat.(ps);
      c.w_done.(slot) <- max_int;
      c.w_mob.(slot) <- -1;
      c.w_wfirst.(slot) <- -1;
      c.w_rdy.(slot) <- false;
      if kind = k_store then begin
        (* A store waits on the last producer of the stored register. *)
        c.w_s1.(slot) <- c.vmap.(c.p_dst.(ps));
        c.w_s2.(slot) <- -1;
        c.w_s3.(slot) <- -1
      end
      else if kind = k_compute then begin
        let s1 = c.p_s1.(ps) and s2 = c.p_s2.(ps) and s3 = c.p_s3.(ps) in
        c.w_s1.(slot) <- (if s1 >= 0 then c.vmap.(s1) else -1);
        c.w_s2.(slot) <- (if s2 >= 0 then c.vmap.(s2) else -1);
        c.w_s3.(slot) <- (if s3 >= 0 then c.vmap.(s3) else -1);
        c.vmap.(c.p_dst.(ps)) <- c.w_tail
      end
      else begin
        (* Loads and dups have no vector producers. *)
        c.w_s1.(slot) <- -1;
        c.w_s2.(slot) <- -1;
        c.w_s3.(slot) <- -1;
        c.vmap.(c.p_dst.(ps)) <- c.w_tail
      end;
      Bitset.add c.w_unissued slot;
      scan_add c slot;
      c.w_tail <- c.w_tail + 1;
      rename_loop t c (renamed + 1)
    end
  end

let rename t c =
  if c.halted && c.p_head = c.p_tail then ()
  else if rename_loop t c 0 > 0 then t.work_cycle <- t.cycle

(* ------------------------------------------------------------------ *)
(* Issue (out of order within the window)                              *)
(* ------------------------------------------------------------------ *)

(* A producer below [w_head] has retired: its completion is in the past
   by construction (entries retire only once [done_at <= cycle]), so it
   is trivially ready — the dense arrays never need clearing. *)
let[@inline] dep_issued c d =
  d < c.w_head || not (Bitset.mem c.w_unissued (d land c.w_mask))

(* Completion cycle of an *issued* producer; a retired one completed in
   the past, so 0 preserves [max]-over-producers exactly. *)
let[@inline] dep_done_at c d =
  if d < c.w_head then 0 else c.w_done.(d land c.w_mask)

(* First producer of [slot] that has not issued yet, -1 if none. *)
let[@inline] first_unissued c slot =
  let d1 = c.w_s1.(slot) in
  if not (dep_issued c d1) then d1
  else
    let d2 = c.w_s2.(slot) in
    if not (dep_issued c d2) then d2
    else
      let d3 = c.w_s3.(slot) in
      if not (dep_issued c d3) then d3 else -1

(* Park [slot] until producer [d] issues: it leaves the sweep set and
   joins the producer's waiter list. Sound because the producer cannot
   complete (or retire) without issuing, and {!wake_waiters} runs at
   that issue. *)
let[@inline] park c slot d =
  let ps = d land c.w_mask in
  c.w_wnext.(slot) <- c.w_wfirst.(ps);
  c.w_wfirst.(ps) <- slot;
  scan_remove c slot

(* Re-admit [slot]'s parked waiters to the sweep set at its issue. A
   waiter always sits later in ring order than its producer, so a
   waiter woken mid-sweep is still visited this very cycle — exactly
   when the naive rescanning dispatch would have reconsidered it. *)
let rec wake_list c w =
  if w >= 0 then begin
    let nxt = c.w_wnext.(w) in
    scan_add c w;
    c.w_wnext.(w) <- -1;
    wake_list c nxt
  end

let[@inline] wake_waiters c slot =
  let w = c.w_wfirst.(slot) in
  if w >= 0 then begin
    c.w_wfirst.(slot) <- -1;
    wake_list c w
  end

(* Park a dep-ready memory entry whose LSU direction is full: space can
   only appear at a retire, so re-probing every cycle is wasted work.
   The retire stage precedes dispatch within a cycle and wakes one
   parked entry per free slot, oldest first, so a parked entry returns
   to the sweep set no later than the cycle the rescanning dispatch
   would have accepted it (a woken entry that loses the slot to budget
   arbitration simply stays in the sweep set until it issues). Reuses
   [w_wnext]: an entry is on at most one of the producer/space lists. *)
let[@inline] park_space c slot ~is_store =
  c.w_wnext.(slot) <- -1;
  if is_store then begin
    if c.sw_tail >= 0 then c.w_wnext.(c.sw_tail) <- slot
    else c.sw_head <- slot;
    c.sw_tail <- slot
  end
  else begin
    if c.lw_tail >= 0 then c.w_wnext.(c.lw_tail) <- slot
    else c.lw_head <- slot;
    c.lw_tail <- slot
  end;
  Bitset.remove c.w_scan slot;
  Bitset.remove c.w_scan_m slot

(* Wake up to [n] space-parked entries (oldest first) of one direction. *)
let rec wake_space_loads c n =
  if n > 0 && c.lw_head >= 0 then begin
    let w = c.lw_head in
    c.lw_head <- c.w_wnext.(w);
    if c.lw_head < 0 then c.lw_tail <- -1;
    c.w_wnext.(w) <- -1;
    Bitset.add c.w_scan w;
    Bitset.add c.w_scan_m w;
    wake_space_loads c (n - 1)
  end

let rec wake_space_stores c n =
  if n > 0 && c.sw_head >= 0 then begin
    let w = c.sw_head in
    c.sw_head <- c.w_wnext.(w);
    if c.sw_head < 0 then c.sw_tail <- -1;
    c.w_wnext.(w) <- -1;
    Bitset.add c.w_scan w;
    Bitset.add c.w_scan_m w;
    wake_space_stores c (n - 1)
  end

(* Ready-time min-heap over (hp_rdy, hp_slot); classic array heap in
   preallocated ints, so parking a latency-blocked entry allocates
   nothing. *)
let rec heap_sift_up c i =
  if i > 0 then begin
    let p = (i - 1) asr 1 in
    if c.hp_rdy.(p) > c.hp_rdy.(i) then begin
      let r = c.hp_rdy.(p) and sl = c.hp_slot.(p) in
      c.hp_rdy.(p) <- c.hp_rdy.(i);
      c.hp_slot.(p) <- c.hp_slot.(i);
      c.hp_rdy.(i) <- r;
      c.hp_slot.(i) <- sl;
      heap_sift_up c p
    end
  end

let[@inline] heap_push c ~rdy ~slot =
  let i = c.hp_n in
  c.hp_n <- i + 1;
  c.hp_rdy.(i) <- rdy;
  c.hp_slot.(i) <- slot;
  heap_sift_up c i

let rec heap_sift_down c i =
  let l = (2 * i) + 1 in
  if l < c.hp_n then begin
    let m =
      if l + 1 < c.hp_n && c.hp_rdy.(l + 1) < c.hp_rdy.(l) then l + 1 else l
    in
    if c.hp_rdy.(m) < c.hp_rdy.(i) then begin
      let r = c.hp_rdy.(m) and sl = c.hp_slot.(m) in
      c.hp_rdy.(m) <- c.hp_rdy.(i);
      c.hp_slot.(m) <- c.hp_slot.(i);
      c.hp_rdy.(i) <- r;
      c.hp_slot.(i) <- sl;
      heap_sift_down c m
    end
  end

(* Re-admit every entry whose ready cycle has arrived to the sweep set
   (fast-forward may land many cycles later; the heap drains all due
   entries at once). *)
let rec heap_release_due c now =
  if c.hp_n > 0 && c.hp_rdy.(0) <= now then begin
    scan_add c c.hp_slot.(0);
    c.w_rdy.(c.hp_slot.(0)) <- true;
    c.hp_n <- c.hp_n - 1;
    c.hp_rdy.(0) <- c.hp_rdy.(c.hp_n);
    c.hp_slot.(0) <- c.hp_slot.(c.hp_n);
    heap_sift_down c 0;
    heap_release_due c now
  end

(* One fault-injection opportunity: a vector write-back or LSU data
   transfer just issued on [c]. Decide from the pure per-(seed, core,
   index) stream — replayable without history — and record a firing as
   a typed trace event plus a per-core counter. Call sites guard on
   [t.inj_on], so a disabled stream costs exactly one branch; nothing
   here touches timing state. *)
let inject_opportunity t c ~site ~len =
  let index = c.inj_ops in
  c.inj_ops <- index + 1;
  match
    Rng.flip_decision ~seed:t.cfg.inject_seed ~stream:c.id
      ~rate:t.cfg.inject_rate ~index ~len
  with
  | None -> ()
  | Some (lane, bit) ->
    c.inj_faults <- c.inj_faults + 1;
    if tracing t then
      trace_core t c (Event.Fault_inject { core = c.id; site; index; lane; bit })

let record_compute_issue t c width =
  if Prof.sampled t.prof then Prof.enter t.prof Prof.Exe_apply;
  t.work_cycle <- t.cycle;
  c.issued_compute <- c.issued_compute + 1;
  (match c.cur_phase with
  | Some pa -> pa.pa_compute <- pa.pa_compute + 1
  | None -> ());
  (* Busy-lane accounting for the §2 utilisation metric: a compute
     instruction of [width] granules keeps [width*4] lanes busy for one of
     the data path's [pipes] issue slots. The division stays in-module
     (unboxed local) and crosses into the buckets as two ints — a float
     argument would box at the non-inlined call. *)
  let num = width * Lane.f32_per_granule in
  let den = t.cfg.pipes_per_exebu in
  t.busy_lanes.(0) <-
    t.busy_lanes.(0) +. (float_of_int num /. float_of_int den);
  Buckets.add_ratio c.lanes_buckets ~cycle:t.cycle ~num ~den;
  if Prof.sampled t.prof then Prof.exit t.prof

let record_mem_issue t c =
  if Prof.sampled t.prof then Prof.enter t.prof Prof.Exe_apply;
  t.work_cycle <- t.cycle;
  c.issued_mem <- c.issued_mem + 1;
  (match c.cur_phase with
  | Some pa -> pa.pa_mem <- pa.pa_mem + 1
  | None -> ());
  if Prof.sampled t.prof then Prof.exit t.prof

exception Ports_exhausted

(* Lazily resolved per-scan capability tests. Both predicates are
   entry-independent, and within one core's scan they only flip
   true->false at an issue *by that core* (other cores' scans already
   ran this cycle; LSU retires happen in an earlier stage). So each is
   evaluated at most once per scan — the cache is invalidated after an
   issue of the matching class — and the per-entry test reduces to one
   flag check. Beyond cost, [Ports_exhausted] fires as soon as all
   three resolve to false, which the budget-only test cannot see when
   e.g. a full LSU rejects every load without consuming budget. The
   entries selected for issue are exactly those of the naive re-probing
   scan; only the [Exebu.issue_checks] observability counter (probe
   count) changes. *)
let[@inline] comp_possible t ~dom ~units ~n =
  t.sc_comp = 1
  || (t.sc_comp < 0
      &&
      let ok =
        t.compute_budget.(dom) > 0
        && Exebu.can_issue_arr t.exebus ~unit_ids:units ~n
      in
      t.sc_comp <- Bool.to_int ok;
      ok)

let[@inline] mem_possible t c ~dom ~is_store =
  let cached = if is_store then t.sc_store else t.sc_load in
  cached = 1
  || (cached < 0
      &&
      let ok =
        t.mem_budget.(dom) > 0
        && Lsu.can_accept c.lsu ~is_store
        && not (Mob.is_full t.mob)
      in
      (if is_store then t.sc_store <- Bool.to_int ok
       else t.sc_load <- Bool.to_int ok);
      ok)

let attempt_issue t c ~dom ~units ~n slot =
  let kind = c.w_kind.(slot) in
  if kind >= k_compute then begin
    if comp_possible t ~dom ~units ~n then begin
      t.sc_comp <- -1;
      t.compute_budget.(dom) <- t.compute_budget.(dom) - 1;
      Exebu.issue_arr t.exebus ~unit_ids:units ~n;
      Bitset.remove c.w_unissued slot;
      Bitset.remove c.w_scan slot;
      Bitset.remove c.w_scan_c slot;
      c.w_done.(slot) <- t.cycle + c.w_lat.(slot);
      wake_waiters c slot;
      record_compute_issue t c c.w_width.(slot);
      if t.inj_on then
        inject_opportunity t c ~site:"reg"
          ~len:(c.w_width.(slot) * Lane.f32_per_granule)
    end
  end
  else begin
    let is_store = kind = k_store in
    (* Same evaluation order as the former [mem_possible && not conflicts]
       conjunction; split so the conflict case can inform the
       cycle-accounting classifier that a ready uop was held back purely
       by memory ordering. *)
    if mem_possible t c ~dom ~is_store then
      if
        Mob.conflicts t.mob ~arr:c.w_arr.(slot) ~base:c.w_base.(slot)
          ~len:c.w_elems.(slot) ~is_store
      then begin
        if t.at_on then t.at_mob_blocked.(c.id) <- true
      end
      else begin
      t.sc_load <- -1;
      t.sc_store <- -1;
      t.mem_budget.(dom) <- t.mem_budget.(dom) - 1;
      let level =
        Profile.classify (Workload.profile_of_array c.wl c.w_arr.(slot)) t.rng
      in
      let bytes = c.w_elems.(slot) * 4 in
      (* Unit-stride vector loads are the stream prefetcher's best case;
         stores are buffered anyway so their observed latency does not
         matter. *)
      let done_at =
        Hierarchy.book t.hierarchy ~prefetched:t.cfg.prefetch ~now:t.cycle
          ~level ~bytes
      in
      let mslot =
        Mob.insert_slot t.mob ~core:c.id ~arr:c.w_arr.(slot)
          ~base:c.w_base.(slot) ~len:c.w_elems.(slot) ~is_store
      in
      Lsu.add_slot c.lsu ~done_at ~is_store ~mob:mslot;
      Bitset.remove c.w_unissued slot;
      Bitset.remove c.w_scan slot;
      Bitset.remove c.w_scan_m slot;
      wake_waiters c slot;
      (* Senior stores: a store leaves the window at issue (its data is
         in the store queue); the LSU/MOB keep tracking it until the
         memory system completes it, so drains and ordering still see
         it. Loads hold their window slot (and register row) until the
         data returns. *)
      c.w_done.(slot) <- (if is_store then t.cycle else done_at);
      c.w_mob.(slot) <- mslot;
      record_mem_issue t c;
      if t.inj_on then
        inject_opportunity t c
          ~site:(if is_store then "store" else "load")
          ~len:c.w_elems.(slot)
      end
  end

let try_issue t c ~dom ~units ~n slot =
  if t.compute_budget.(dom) = 0 && t.mem_budget.(dom) = 0 then
    raise_notrace Ports_exhausted;
  (* {-1,0,1} flags: [lor] is 0 iff all three resolved to false. *)
  if t.sc_comp lor t.sc_load lor t.sc_store = 0 then
    raise_notrace Ports_exhausted;
  if c.w_rdy.(slot) then attempt_issue t c ~dom ~units ~n slot
  else begin
    let u = first_unissued c slot in
    if u >= 0 then park c slot u
    else begin
      let r1 = dep_done_at c c.w_s1.(slot) in
      let r2 = dep_done_at c c.w_s2.(slot) in
      let r3 = dep_done_at c c.w_s3.(slot) in
      let rdy =
        if r1 >= r2 then (if r1 >= r3 then r1 else r3)
        else if r2 >= r3 then r2
        else r3
      in
      if rdy > t.cycle then begin
        (* Every producer has issued, so [rdy] is the entry's exact
           earliest issue cycle: park it on the ready-time heap until
           then. (With an unissued producer no sound bound exists yet;
           the entry instead parks on that producer's waiter list.) *)
        scan_remove c slot;
        heap_push c ~rdy ~slot
      end
      else begin
        c.w_rdy.(slot) <- true;
        (* First visit with operands ready: if the entry's LSU direction
           is full it parks on that direction's FIFO (in sequence order,
           since first-ready visits happen in sweep order). Later visits
           never park — a woken entry that loses arbitration must stay
           in the sweep set, or re-parking could scramble the FIFO's
           sequence order. *)
        let kind = c.w_kind.(slot) in
        if
          kind < k_compute
          && not (Lsu.can_accept c.lsu ~is_store:(kind = k_store))
        then park_space c slot ~is_store:(kind = k_store)
        else attempt_issue t c ~dom ~units ~n slot
      end
    end
  end

(* Sweep the scannable bitmask over slots [lo, hi) in increasing order;
   within a ring segment, slot order is insertion (sequence) order.
   Waiters woken by an issue earlier in the sweep sit at later slots
   (program order), so [next_set_from] picks them up this very pass.

   Class narrowing: a capability flag at 0 means that class cannot issue
   for the remainder of this core's pass (budgets only decrease within a
   cycle, execution units and LSU/MOB slots only fill — the flags reset
   exactly at the events that could reopen them), so the sweep switches
   from the union bitmask to the still-open class's subset. Skipped
   entries could not have issued; their bookkeeping visits (readiness
   derivation, parking) merely happen on a later cycle with identical
   outcomes, because their producers' issue cycles and [w_done] times
   are unchanged by the skip. *)
let rec issue_segment t c ~dom ~units ~n lo hi =
  if lo < hi then begin
    let scan =
      if t.sc_comp = 0 then c.w_scan_m
      else if t.sc_load = 0 && t.sc_store = 0 then c.w_scan_c
      else c.w_scan
    in
    let s = Bitset.next_set_from scan lo in
    if s >= 0 && s < hi then begin
      try_issue t c ~dom ~units ~n s;
      issue_segment t c ~dom ~units ~n (s + 1) hi
    end
  end

let issue_core t c =
  let dom = domain t c.id in
  let units = if t.shares_ports then t.all_units_arr else c.owned_arr in
  let n = if t.shares_ports then t.cfg.exebus else c.owned_n in
  t.sc_comp <- -1;
  t.sc_load <- -1;
  t.sc_store <- -1;
  heap_release_due c t.cycle;
  try
    if c.w_head < c.w_tail then begin
      let hs = c.w_head land c.w_mask in
      let ts = c.w_tail land c.w_mask in
      if hs < ts then issue_segment t c ~dom ~units ~n hs ts
      else begin
        (* Wrapped ring: the [hs, cap) segment holds the older entries. *)
        issue_segment t c ~dom ~units ~n hs c.w_cap;
        issue_segment t c ~dom ~units ~n 0 ts
      end
    end
  with Ports_exhausted -> ()

(* ------------------------------------------------------------------ *)
(* Retire / commit                                                     *)
(* ------------------------------------------------------------------ *)

let rec retire_window t c =
  if c.w_head < c.w_tail then begin
    let slot = c.w_head land c.w_mask in
    if (not (Bitset.mem c.w_unissued slot)) && c.w_done.(slot) <= t.cycle
    then begin
      c.w_head <- c.w_head + 1;
      t.work_cycle <- t.cycle;
      if c.w_kind.(slot) <> k_store then Freelist.release c.freelist;
      retire_window t c
    end
  end

let retire_due t c =
  let occ0 = Lsu.outstanding c.lsu in
  let n = Lsu.retire_into c.lsu ~now:t.cycle ~into:t.mob_scratch in
  if n > 0 then begin
    t.work_cycle <- t.cycle;
    for i = 0 to n - 1 do
      Mob.remove_slot t.mob t.mob_scratch.(i)
    done
  end;
  if Lsu.outstanding c.lsu < occ0 then begin
    (* Freed LSU slots make space-parked entries issuable this very
       cycle (dispatch runs after retirement). Waking one waiter per
       free slot keeps at least as many candidates in the sweep set as
       there are slots to fill, and waking oldest-first preserves the
       sequence-order arbitration of the full rescan: any entry left
       parked has [free] or more older dep-ready rivals already in the
       sweep, so the rescan could not have picked it either. *)
    wake_space_loads c
      (t.cfg.Config.lsu_load_capacity - Lsu.outstanding_loads c.lsu);
    wake_space_stores c
      (t.cfg.Config.lsu_store_capacity - Lsu.outstanding_stores c.lsu)
  end

let[@inline] retire t c =
  (* O(1) guard off the completion-heap roots: most cycles nothing is
     due, so the pop loop (and its bookkeeping) is skipped entirely. *)
  if Lsu.next_done_at c.lsu <= t.cycle then retire_due t c;
  retire_window t c

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let rec all_done_from t i =
  i >= Array.length t.cores
  ||
  let c = t.cores.(i) in
  c.halted && pipeline_drained c && c.pending_vl < 0 && cs_is_running c
  && (match c.cs_schedule with [] -> true | _ -> false)
  && all_done_from t (i + 1)

let all_done t = all_done_from t 0

let sample_stats t =
  for i = 0 to Array.length t.cores - 1 do
    let c = t.cores.(i) in
    if not c.halted then begin
      Buckets.add_int c.vl_buckets ~cycle:t.cycle c.vl;
      match c.cur_phase with
      | Some pa ->
        pa.pa_vl_sum <- pa.pa_vl_sum + c.vl;
        pa.pa_cycles <- pa.pa_cycles + 1
      | None -> ()
    end
  done

let check_invariants t =
  match t.arch with
  | Arch.Fts -> ()
  | _ ->
    if not (Rtbl.invariant_holds t.rtbl) then
      error "resource table invariant violated at cycle %d" t.cycle;
    for i = 0 to Array.length t.cores - 1 do
      t.inv_scratch.(i) <- t.cores.(i).vl
    done;
    if not (Config_tbl.consistent_with t.exebu_cfg t.inv_scratch) then
      error "Dispatch.Cfg inconsistent with <VL> at cycle %d" t.cycle;
    if not (Config_tbl.consistent_with t.regblk_cfg t.inv_scratch) then
      error "RegFile.Cfg inconsistent with <VL> at cycle %d" t.cycle

(* ------------------------------------------------------------------ *)
(* OS context switches (§5)                                            *)
(* ------------------------------------------------------------------ *)

(* Advance a core's scheduling state: Running -> Draining at the scheduled
   cycle; Draining -> Away once the pipelines drain (context saved, lanes
   released, replanning triggered for the co-runners); Away -> Restoring
   after [cs_away_cycles]; Restoring -> Running once the vector length is
   granted again. The restored length is the fresh plan's suggestion on
   the elastic machine (the plan may have changed while away) and the
   saved length elsewhere. *)
let step_context_switch t c =
  match c.cs_state with
  | Cs_running -> (
    match c.cs_schedule with
    | cycle :: rest when t.cycle >= cycle && not c.halted ->
      c.cs_schedule <- rest;
      c.cs_state <- Cs_draining
    | cycle :: rest when c.halted ->
      ignore cycle;
      c.cs_schedule <- rest
    | _ -> ())
  | Cs_draining ->
    if pipeline_drained c && c.pending_vl < 0 && not c.pending_red then begin
      let saved_vl = c.vl and saved_oi = Rtbl.oi t.rtbl ~core:c.id in
      (match t.arch with
      | Arch.Fts -> c.vl <- 0
      | _ ->
        ignore (Rtbl.try_set_vl t.rtbl ~core:c.id 0);
        Config_tbl.release_all t.exebu_cfg ~core:c.id;
        Config_tbl.release_all t.regblk_cfg ~core:c.id;
        refresh_owned_units t c;
        c.vl <- 0);
      Rtbl.set_oi t.rtbl ~core:c.id Oi.zero;
      (match t.lane_mgr with
      | Some mgr ->
        if Prof.sampled t.prof then Prof.enter t.prof Prof.Replan;
        Lane_mgr.exit_phase mgr ~core:c.id;
        Array.iteri
          (fun core d -> Rtbl.set_decision t.rtbl ~core d)
          (Lane_mgr.decisions mgr);
        t.replans <- t.replans + 1;
        if tracing t then trace_replan t ~trigger:c.id ~cause:Event.Preempt mgr;
        if Prof.sampled t.prof then Prof.exit t.prof
      | None -> ());
      c.cs_state <-
        Cs_away { resume_at = t.cycle + t.cfg.cs_away_cycles; saved_vl; saved_oi }
    end
  | Cs_away { resume_at; saved_vl; saved_oi } ->
    if t.cycle >= resume_at then begin
      (* The OS restores <OI> (when non-zero), retriggering partitioning. *)
      Rtbl.set_oi t.rtbl ~core:c.id saved_oi;
      (match t.lane_mgr with
      | Some mgr when not (Oi.is_zero saved_oi) ->
        if Prof.sampled t.prof then Prof.enter t.prof Prof.Replan;
        Lane_mgr.enter_phase mgr ~core:c.id ~oi:saved_oi ~level:c.cur_level;
        Array.iteri
          (fun core d -> Rtbl.set_decision t.rtbl ~core d)
          (Lane_mgr.decisions mgr);
        t.replans <- t.replans + 1;
        if tracing t then trace_replan t ~trigger:c.id ~cause:Event.Resume mgr;
        if Prof.sampled t.prof then Prof.exit t.prof
      | _ -> ());
      if saved_vl = 0 then c.cs_state <- Cs_running
      else c.cs_state <- Cs_restoring { saved_vl }
    end
  | Cs_restoring { saved_vl } ->
    let target =
      match t.arch with
      | Arch.Occamy -> max 1 (Rtbl.decision t.rtbl ~core:c.id)
      | Arch.Fts -> t.cfg.exebus
      | Arch.Private | Arch.Vls -> saved_vl
    in
    (match t.arch with
    | Arch.Fts ->
      c.vl <- target;
      c.reconfigs <- c.reconfigs + 1;
      c.cs_state <- Cs_running
    | _ ->
      if Rtbl.try_set_vl t.rtbl ~core:c.id target then begin
        Config_tbl.reassign t.exebu_cfg ~core:c.id ~count:target;
        Config_tbl.reassign t.regblk_cfg ~core:c.id ~count:target;
        refresh_owned_units t c;
        c.vl <- target;
        c.reconfigs <- c.reconfigs + 1;
        c.cs_state <- Cs_running
      end)

(* ------------------------------------------------------------------ *)
(* Top-down cycle accounting                                           *)
(* ------------------------------------------------------------------ *)

(* Why did core [c] spend the cycle that just ended the way it did?
   Exactly one bucket, first match wins. Inputs are end-of-cycle state
   plus per-cycle deltas ([at_prev_issued]/[at_prev_stalls]) and the
   dispatch sweep's MOB-conflict flag. The fast-forward loop batches
   the same cascade over provably-inert stretches (see
   [fast_forward_to]); the naive-vs-FF bit-identity suites hold the two
   paths to equality, and [run] checks that every core's buckets sum to
   exactly the simulated cycle count. *)
let classify_core t c =
  if not (cs_is_running c) then Attrib.Ctx_switch
  else if c.pending_vl >= 0 && not c.halted then Attrib.Reconfig_blocked
  else if (not c.halted) && c.vl > 0 && c.vl < Rtbl.decision t.rtbl ~core:c.id
  then
    (* Running below the manager's current decision for this core: the
       elastic-sharing lag the paper's figures are about. Never fires on
       Private/FTS, whose decisions are static. *)
    Attrib.Lane_starved
  else if c.issued_compute + c.issued_mem > t.at_prev_issued.(c.id) then
    Attrib.Issuing
  else if c.rename_stalls > t.at_prev_stalls.(c.id) then Attrib.Rename_stall
  else if c.pending_red && not c.halted then Attrib.Exe_latency
  else if Lsu.outstanding c.lsu > 0 then Attrib.of_level c.cur_level
  else if t.at_mob_blocked.(c.id) then Attrib.Mob_conflict
  else if c.w_head < c.w_tail || c.p_head < c.p_tail then Attrib.Exe_latency
  else if c.halted then Attrib.Idle
  else Attrib.Scalar

let classify_cores t =
  for i = 0 to Array.length t.cores - 1 do
    let c = t.cores.(i) in
    Attrib.add t.attrib ~core:i ~cycle:t.cycle (classify_core t c);
    t.at_prev_issued.(i) <- c.issued_compute + c.issued_mem;
    t.at_prev_stalls.(i) <- c.rename_stalls;
    t.at_mob_blocked.(i) <- false
  done

let step t =
  t.cycle <- t.cycle + 1;
  Prof.begin_cycle t.prof;
  let pr = Prof.sampled t.prof in
  Exebu.begin_cycle t.exebus ~cycle:t.cycle;
  Array.fill t.compute_budget 0 (Array.length t.compute_budget)
    t.cfg.compute_ports;
  Array.fill t.mem_budget 0 (Array.length t.mem_budget) t.cfg.mem_ports;
  let n = Array.length t.cores in
  if pr then Prof.enter t.prof Prof.Lsu_retire;
  for i = 0 to n - 1 do
    retire t t.cores.(i)
  done;
  if pr then Prof.exit t.prof;
  (* Round-robin both the issue and rename order so that shared resources
     (FTS ports, the shared freelist) are arbitrated fairly. *)
  if pr then Prof.enter t.prof Prof.Dispatch;
  for k = 0 to n - 1 do
    issue_core t t.cores.((k + t.cycle) mod n)
  done;
  if pr then begin
    Prof.exit t.prof;
    Prof.enter t.prof Prof.Rename
  end;
  for k = 0 to n - 1 do
    rename t t.cores.((k + t.cycle) mod n)
  done;
  if pr then begin
    Prof.exit t.prof;
    Prof.enter t.prof Prof.Frontend
  end;
  for i = 0 to n - 1 do
    step_frontend t t.cores.(i)
  done;
  if pr then begin
    Prof.exit t.prof;
    Prof.enter t.prof Prof.Ctx_switch
  end;
  for i = 0 to n - 1 do
    step_context_switch t t.cores.(i)
  done;
  (* Resolve pending vector-length requests once the pipelines drain
     (§4.2.2 condition (2)). *)
  for i = 0 to n - 1 do
    let c = t.cores.(i) in
    if c.pending_vl >= 0 && pipeline_drained c then
      resolve_vl_request t c c.pending_vl
  done;
  if pr then Prof.exit t.prof;
  (* Rename-stall episode detection (observability only): a fresh stall
     this cycle opens an episode, the first stall-free cycle closes it. *)
  if tracing t then begin
    if pr then Prof.enter t.prof Prof.Trace_overhead;
    for i = 0 to n - 1 do
      let c = t.cores.(i) in
      let stalls = c.rename_stalls in
      if stalls > t.obs_prev_stalls.(c.id) then begin
        if t.obs_stall_start.(c.id) < 0 then
          t.obs_stall_start.(c.id) <- t.cycle
      end
      else trace_end_stall_episode t c ~upto:t.cycle;
      t.obs_prev_stalls.(c.id) <- stalls
    done;
    if pr then Prof.exit t.prof
  end;
  if pr then Prof.enter t.prof Prof.Sample;
  sample_stats t;
  if t.at_on then classify_cores t;
  if t.cycle land 1023 = 0 then check_invariants t;
  if pr then Prof.exit t.prof

(* ------------------------------------------------------------------ *)
(* Event-horizon fast-forwarding                                       *)
(* ------------------------------------------------------------------ *)

(* The skipping loop (gem5-style): after each step, compute a
   conservative *event horizon* — the earliest future cycle at which any
   core can change state — and when that horizon is beyond the next
   cycle, advance [t.cycle] and every per-cycle counter in one jump.

   The proof obligation is bit-identical equivalence with the naive tick
   loop ([Config.fast_forward = false]): during a skipped stretch no
   instruction executes, transmits, renames, issues or retires, no RNG
   is drawn, and no trace event fires, so the only per-cycle effects are
   the deterministic counters batched by [fast_forward_to]. Anything the
   horizon scan cannot prove inert raises [Horizon_now] and the
   simulator just steps normally. The sim-vs-sim harness
   (test_fastforward) and the nightly differential fuzzer hold both
   loops to this equality on metrics, counters and trace streams. *)

exception Horizon_now

(* The front-end makes no progress this cycle iff its next instruction
   is an SVE transmit that cannot be accepted: the transmit fails before
   any budget is consumed, leaving pc and every counter untouched. The
   [vl > 0] conjunct keeps the <VL>=0 error on its exact naive cycle. *)
let frontend_blocked t c =
  let code = c.wl.Workload.program.Program.code in
  c.pc < Array.length code
  && c.vl > 0
  && (match code.(c.pc) with
     | Instr.Vload _ | Instr.Vstore _ | Instr.Vop _ | Instr.Vdup _ -> true
     | _ -> false)
  && (c.p_tail - c.p_head >= c.p_limit || t.cfg.transmit_width <= 0)

(* Post-step rename state: able to progress next cycle (an event),
   deterministically stalled on an exhausted freelist (one counted
   failed attempt per cycle), or inert (empty pool / full window). *)
type rename_quiescence = Rq_inert | Rq_stalled | Rq_progress

let rename_quiescence t c =
  if
    t.cfg.rename_width <= 0
    || c.p_head = c.p_tail
    || c.w_tail - c.w_head >= t.cfg.window
  then Rq_inert
  else
    let needs_row = c.p_kind.(c.p_head land c.p_mask) <> k_store in
    if needs_row && Freelist.free c.freelist = 0 then Rq_stalled
    else Rq_progress

(* [hz_note]/[t.hz_ev] replace the closure the horizon scan used to
   allocate per call: the accumulator lives on [t]. *)
let[@inline] hz_note t now x =
  if x <= now + 1 then raise_notrace Horizon_now
  else if x < t.hz_ev then t.hz_ev <- x

(* Earliest cycle at which any core can change state; raises
   [Horizon_now] when something may act on the very next cycle. Purely
   observational — it must not mutate simulator state (no RNG draws, no
   [try_set_vl] attempts), or replaying the skipped cycles would
   diverge. Two passes: the cheap front-end/scheduling checks first so
   the common "a core is actively executing" case bails before any
   window scan. *)
let horizon t =
  let now = t.cycle in
  t.hz_ev <- max_int;
  for i = 0 to Array.length t.cores - 1 do
    let c = t.cores.(i) in
    (match c.cs_state with
    | Cs_running ->
      if c.halted then begin
        (* A halted core still consumes one stale schedule entry per
           cycle. *)
        match c.cs_schedule with
        | [] -> ()
        | _ :: _ -> raise_notrace Horizon_now
      end
      else begin
        (match c.cs_schedule with s :: _ -> hz_note t now s | [] -> ());
        if c.pending_vl >= 0 || c.pending_red then begin
          (* Blocked on the drain; the moment it completes the request
             resolves / the reduction unblocks. Drain progress is
             bounded by the pipeline events scanned below. *)
          if pipeline_drained c then raise_notrace Horizon_now
        end
        else if not (frontend_blocked t c) then raise_notrace Horizon_now
      end
    | Cs_draining ->
      (* Transitions (and resolves any pending <VL>) once drained. *)
      if pipeline_drained c then raise_notrace Horizon_now
    | Cs_away { resume_at; _ } -> hz_note t now resume_at
    | Cs_restoring { saved_vl } -> (
      match t.arch with
      | Arch.Fts -> raise_notrace Horizon_now
      | _ ->
        let target =
          match t.arch with
          | Arch.Occamy -> max 1 (Rtbl.decision t.rtbl ~core:c.id)
          | _ -> saved_vl
        in
        (* Feasible -> granted next cycle. Infeasible -> stable until
           another core releases lanes, itself an event; the naive
           loop's failing [try_set_vl] per cycle only rewrites
           <status> to the value it already has. *)
        if Rtbl.vl t.rtbl ~core:c.id + Rtbl.al t.rtbl >= target then
          raise_notrace Horizon_now));
    match rename_quiescence t c with
    | Rq_progress -> raise_notrace Horizon_now
    | Rq_inert | Rq_stalled -> ()
  done;
  for i = 0 to Array.length t.cores - 1 do
    let c = t.cores.(i) in
    (* Next memory completion ([max_int] when drained is inert). *)
    hz_note t now (Lsu.next_done_at c.lsu);
    (* The window head retires the cycle after it completes. *)
    if c.w_head < c.w_tail then begin
      let hslot = c.w_head land c.w_mask in
      if (not (Bitset.mem c.w_unissued hslot)) && c.w_done.(hslot) <= now
      then raise_notrace Horizon_now
    end;
    for q = c.w_head to c.w_tail - 1 do
      let s = q land c.w_mask in
      if not (Bitset.mem c.w_unissued s) then begin
        (* Completes at [w_done]; already-complete non-head entries
           (senior stores) retire with the head, an event of its own. *)
        if c.w_done.(s) > now then hz_note t now c.w_done.(s)
      end
      else if
          dep_issued c c.w_s1.(s)
          && dep_issued c c.w_s2.(s)
          && dep_issued c c.w_s3.(s)
      then begin
        let rdy =
          let r1 = dep_done_at c c.w_s1.(s) in
          let r2 = dep_done_at c c.w_s2.(s) in
          let r3 = dep_done_at c c.w_s3.(s) in
          let m = if r1 > r2 then r1 else r2 in
          if m > r3 then m else r3
        in
        if rdy > now then hz_note t now rdy
        else if c.w_kind.(s) >= k_compute then
          (* Ready compute: ports and ExeBU slots refresh every cycle,
             so it can issue next cycle. *)
          raise_notrace Horizon_now
        else begin
          let is_store = c.w_kind.(s) = k_store in
          if
            Lsu.can_accept c.lsu ~is_store
            && (not (Mob.is_full t.mob))
            && not
                 (Mob.conflicts t.mob ~arr:c.w_arr.(s) ~base:c.w_base.(s)
                    ~len:c.w_elems.(s) ~is_store)
          then raise_notrace Horizon_now
          (* else blocked on LSU/MOB occupancy or an address
             conflict: that state only changes at a memory
             completion, noted above for every core. *)
        end
      end
      (* Unissued with an unissued producer: bounded by the producer's
         own entry, scanned in this same pass. *)
    done
  done;
  t.hz_ev

(* Would the naive loop's dispatch sweep have flagged a MOB conflict
   for [c] on each cycle of an inert stretch? Mirrors the horizon scan's
   memory branch plus [mem_possible]'s port gate: a dep-ready unissued
   memory entry the LSU could accept into a non-full MOB, held back only
   by an address conflict. Window/LSU/MOB state is constant across the
   stretch (heap-parked entries have ready times past its end — the
   horizon noted them as events), so one scan answers for every skipped
   cycle. Allocation-free, like the rest of the FF path. *)
let ff_mob_scan t c =
  let now = t.cycle in
  let rec scan q =
    if q >= c.w_tail then false
    else begin
      let s = q land c.w_mask in
      if
        Bitset.mem c.w_unissued s
        && c.w_kind.(s) < k_compute
        && dep_issued c c.w_s1.(s)
        && dep_issued c c.w_s2.(s)
        && dep_issued c c.w_s3.(s)
      then begin
        let rdy =
          let r1 = dep_done_at c c.w_s1.(s) in
          let r2 = dep_done_at c c.w_s2.(s) in
          let r3 = dep_done_at c c.w_s3.(s) in
          let m = if r1 > r2 then r1 else r2 in
          if m > r3 then m else r3
        in
        let is_store = c.w_kind.(s) = k_store in
        if
          rdy <= now
          && t.cfg.mem_ports > 0
          && Lsu.can_accept c.lsu ~is_store
          && (not (Mob.is_full t.mob))
          && Mob.conflicts t.mob ~arr:c.w_arr.(s) ~base:c.w_base.(s)
               ~len:c.w_elems.(s) ~is_store
        then true
        else scan (q + 1)
      end
      else scan (q + 1)
    end
  in
  scan c.w_head

(* Jump to [target] (exclusive of the step that will execute
   [target + 1]), batching exactly the per-cycle effects the naive loop
   would have accumulated over cycles [t.cycle+1 .. target]. *)
let fast_forward_to t ~target =
  let k = target - t.cycle in
  for i = 0 to Array.length t.cores - 1 do
    let c = t.cores.(i) in
    (* Front-end blocked on MSR <VL>: one counted cycle each tick. *)
    if cs_is_running c && (not c.halted) && c.pending_vl >= 0 then
      c.blocked_vl_cycles <- c.blocked_vl_cycles + k;
    (* Deterministic rename stall: one failed allocation per cycle. *)
    let rq = rename_quiescence t c in
    (match rq with
    | Rq_stalled ->
      c.rename_stalls <- c.rename_stalls + k;
      (match c.cur_phase with
      | Some pa -> pa.pa_stalls <- pa.pa_stalls + k
      | None -> ());
      Freelist.record_failures c.freelist ~count:k;
      if tracing t then begin
        (* The episode detector would have seen the first batched
           stall at cycle+1; keep its start stamp and its
           already-counted baseline exact. *)
        if t.obs_stall_start.(c.id) < 0 then
          t.obs_stall_start.(c.id) <- t.cycle + 1;
        t.obs_prev_stalls.(c.id) <- c.rename_stalls
      end
    | Rq_inert | Rq_progress -> ());
    (* Per-cycle sampling ([sample_stats]) for live cores. *)
    if not c.halted then begin
      Buckets.add_run_int c.vl_buckets ~cycle:(t.cycle + 1) ~len:k c.vl;
      match c.cur_phase with
      | Some pa ->
        pa.pa_vl_sum <- pa.pa_vl_sum + (k * c.vl);
        pa.pa_cycles <- pa.pa_cycles + k
      | None -> ()
    end;
    if t.at_on then begin
      (* [classify_core]'s cascade over state that is constant for the
         whole stretch. Nothing issues during a skip, so the Issuing
         test is statically false; the rename-stall delta is [rq]; the
         dispatch sweep's conflict flag becomes [ff_mob_scan]. *)
      let b =
        if not (cs_is_running c) then Attrib.Ctx_switch
        else if c.pending_vl >= 0 && not c.halted then Attrib.Reconfig_blocked
        else if
          (not c.halted) && c.vl > 0 && c.vl < Rtbl.decision t.rtbl ~core:c.id
        then Attrib.Lane_starved
        else if rq = Rq_stalled then Attrib.Rename_stall
        else if c.pending_red && not c.halted then Attrib.Exe_latency
        else if Lsu.outstanding c.lsu > 0 then Attrib.of_level c.cur_level
        else if ff_mob_scan t c then Attrib.Mob_conflict
        else if c.w_head < c.w_tail || c.p_head < c.p_tail then
          Attrib.Exe_latency
        else if c.halted then Attrib.Idle
        else Attrib.Scalar
      in
      t.at_ff_buckets.(i) <- Attrib.index b;
      (* Resync the per-cycle deltas the naive classifier keeps: the
         batched stalls above must not read as a fresh stall on the
         first real step after the jump. *)
      t.at_prev_issued.(i) <- c.issued_compute + c.issued_mem;
      t.at_prev_stalls.(i) <- c.rename_stalls
    end
  done;
  if t.at_on then
    Attrib.add_run_all t.attrib ~start_cycle:(t.cycle + 1) ~len:k
      ~buckets:t.at_ff_buckets;
  (* The naive loop checks invariants at multiples of 1024; state is
     constant across the jump, so one check at the far end is
     equivalent whenever the jump crosses such a boundary. *)
  let crossed_check = target lsr 10 > t.cycle lsr 10 in
  t.cycle <- target;
  t.ff_skipped <- t.ff_skipped + k;
  t.ff_jumps <- t.ff_jumps + 1;
  if crossed_check then check_invariants t

(* Smallest jump worth taking: batching the counters for a 1–2 cycle
   skip costs more than stepping those cycles naively. *)
let ff_min_jump = 8

let try_fast_forward t =
  (* A cycle that did any work almost certainly has a successor event on
     the very next cycle, so scanning for a horizon would be pure
     overhead — only attempt a skip after provably idle cycles. (Purely
     a filter on attempts: timing is unaffected either way.) *)
  if
    t.work_cycle <> t.cycle
    && t.cycle >= t.ff_quiet_until
    && t.cycle < t.cfg.max_cycles
    && not (all_done t)
  then
    match horizon t with
    | exception Horizon_now -> ()
    | h ->
      (* The next real step executes cycle [h] — or [max_cycles], where
         the naive loop stops too (and, with no event in sight, reports
         the same deadlock). Jumps below [ff_min_jump] cycles cost more
         in batching than the skipped steps would have — let the naive
         loop walk those (equivalence is unaffected; this only skips
         less), and remember the proof so the inert cycles up to [h]
         aren't re-scanned. *)
      t.ff_quiet_until <- h;
      let target = min (h - 1) (t.cfg.max_cycles - 1) in
      if target - t.cycle >= ff_min_jump then fast_forward_to t ~target

let core_result c =
  {
    Metrics.core = c.id;
    workload = c.wl.Workload.wl_name;
    finish = c.finish;
    issued_compute = c.issued_compute;
    issued_mem = c.issued_mem;
    rename_stall_cycles = c.rename_stalls;
    reconfig_blocked_cycles = c.blocked_vl_cycles;
    monitor_instrs = c.monitor_instrs;
    monitor_stall_cycles = c.monitor_stall_cycles;
    reconfigs = c.reconfigs;
    failed_vl_requests = c.failed_vl;
    fault_opportunities = c.inj_ops;
    faults_injected = c.inj_faults;
    lsu_peak_loads = Lsu.peak_loads c.lsu;
    lsu_peak_stores = Lsu.peak_stores c.lsu;
    phases = List.rev c.done_phases;
    lanes_timeline = Buckets.rates c.lanes_buckets;
    vl_timeline = Buckets.rates c.vl_buckets;
  }

let run t =
  if t.cfg.fast_forward then
    while (not (all_done t)) && t.cycle < t.cfg.max_cycles do
      step t;
      (* The horizon scan runs between steps; [Prof.sampled] keeps this
         cycle's sampling decision until the next [begin_cycle], so the
         scan is attributed to the same profiled cycle. *)
      if Prof.sampled t.prof then begin
        Prof.enter t.prof Prof.Ff_scan;
        try_fast_forward t;
        Prof.exit t.prof
      end
      else try_fast_forward t;
      Prof.end_cycle t.prof
    done
  else
    while (not (all_done t)) && t.cycle < t.cfg.max_cycles do
      step t;
      Prof.end_cycle t.prof
    done;
  if not (all_done t) then
    error "simulation exceeded %d cycles (deadlock or runaway loop?)"
      t.cfg.max_cycles;
  check_invariants t;
  if t.at_on then
    (* Conservation: the classifier attributes every core-cycle to
       exactly one bucket, so each core's row must sum to the simulated
       cycle count — on both loops, which the equivalence suites then
       hold bit-identical. *)
    for i = 0 to Array.length t.cores - 1 do
      let s = Attrib.core_total t.attrib ~core:i in
      if s <> t.cycle then
        error
          "cycle accounting leak: core%d buckets sum to %d over %d \
           simulated cycles"
          i s t.cycle
    done;
  if tracing t then
    (* Close any stall episode still open at the horizon. *)
    Array.iter (fun c -> trace_end_stall_episode t c ~upto:t.cycle) t.cores;
  let total = Array.fold_left (fun acc c -> max acc c.finish) 0 t.cores in
  let levels = Occamy_mem.Level.all in
  let mem_accesses = Array.make (List.length levels) 0 in
  let mem_bytes = Array.make (List.length levels) 0.0 in
  List.iter
    (fun level ->
      let d = Occamy_mem.Level.depth level in
      mem_accesses.(d) <- Hierarchy.accesses_at t.hierarchy level;
      mem_bytes.(d) <- Hierarchy.bytes_at t.hierarchy level)
    levels;
  {
    Metrics.arch = t.arch;
    total_cycles = total;
    simd_util =
      t.busy_lanes.(0)
      /. float_of_int (max 1 total * Config.total_lanes t.cfg);
    busy_lane_cycles = t.busy_lanes.(0);
    replans =
      (match t.lane_mgr with Some m -> Lane_mgr.replans m | None -> t.replans);
    cores = Array.map core_result t.cores;
    mem_accesses;
    mem_bytes;
    bucket_width = t.bucket_width;
    attrib = (if t.at_on then Attrib.counts t.attrib else [||]);
  }

(** Convenience: build and run in one call.

    [workloads] are read-only to the simulator: everything it mutates —
    scalar registers, pools, ROBs, freelists, statistics — lives in
    per-core state allocated by [create], and the per-run RNG is seeded
    from [cfg.seed], never from global state. A compiled {!Workload.t}
    can therefore be simulated any number of times, including
    concurrently from several domains ({!Occamy_util.Domain_pool}), with
    bit-identical results; the experiment runners rely on this to
    compile each pair once and share it across the four architecture
    simulations (see the "workload reuse" and "parallel determinism"
    tests). *)
let simulate ?cfg ?trace ?prof ?attrib ?decisions ?context_switches ~arch
    workloads =
  let t =
    create ?cfg ?trace ?prof ?attrib ?decisions ?context_switches ~arch
      workloads
  in
  run t

let cycle t = t.cycle
let config t = t.cfg
let skipped_cycles t = t.ff_skipped
let ff_jumps t = t.ff_jumps
let prof t = t.prof
let attrib t = t.attrib

let stage_work t =
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 t.cores in
  [
    ("lsu.retire_calls", float_of_int (sum (fun c -> Lsu.retire_calls c.lsu)));
    ("lsu.retired", float_of_int (sum (fun c -> Lsu.retired c.lsu)));
    ("exebu.issue_checks", float_of_int (Exebu.issue_checks t.exebus));
    ("exebu.issues", float_of_int (Exebu.issues t.exebus));
  ]
