(** The cycle-level timing simulator — the gem5 substitute.

    It executes one compiled workload per scalar core against one of the
    four SIMD architectures (see {!Arch}), modelling the machine of
    Figures 4 and 5:

    - a decoupled scalar front-end per core that executes scalar
      instructions, resolves branches, and transmits non-speculative
      SVE/EM-SIMD instructions in order to the co-processor (§4.1.1);
    - per-core instruction pools, an in-order renamer drawing physical
      register rows from per-core (spatial) or shared (temporal)
      freelists, and an out-of-order issue window;
    - issue ports per data path: [compute_ports] SIMD compute and
      [mem_ports] SIMD ld/st instructions per cycle — per core under
      spatial sharing, shared by all cores under FTS;
    - a bandwidth-limited VecCache/L2/DRAM hierarchy with a MOB;
    - the ResourceTbl/ConfigTbl/LaneMgr elastic reconfiguration machinery:
      `MSR <VL>` succeeds only when lanes are available *and* the core's
      SIMD pipeline has drained (§4.2.2); `MSR <OI>` triggers eager
      replanning on Occamy (§5).

    Scalar-visible register *values* are tracked exactly (loop control
    must be faithful); vector data is not — the functional interpreter
    ({!Occamy_isa.Interp}) covers value semantics. *)

module Instr = Occamy_isa.Instr
module Reg = Occamy_isa.Reg
module Vop = Occamy_isa.Vop
module Sysreg = Occamy_isa.Sysreg
module Oi = Occamy_isa.Oi
module Lane = Occamy_isa.Lane
module Program = Occamy_isa.Program
module Profile = Occamy_mem.Profile
module Hierarchy = Occamy_mem.Hierarchy
module Mob = Occamy_mem.Mob
module Rtbl = Occamy_coproc.Resource_tbl
module Config_tbl = Occamy_coproc.Config_tbl
module Freelist = Occamy_coproc.Freelist
module Lsu = Occamy_coproc.Lsu
module Exebu = Occamy_coproc.Exebu
module Lane_mgr = Occamy_lanemgr.Lane_mgr
module Rng = Occamy_util.Rng
module Buckets = Occamy_util.Stats.Buckets
module Trace = Occamy_obs.Trace
module Event = Occamy_obs.Event
module Prof = Occamy_obs.Prof

(* ------------------------------------------------------------------ *)
(* In-flight instruction representation                                *)
(* ------------------------------------------------------------------ *)

type wkind = Kcompute of Vop.t | Kdup | Kload | Kstore

type wentry = {
  kind : wkind;
  width : int;  (* granules captured at rename *)
  arr : int;
  base : int;
  elems : int;
  srcs : wentry list;  (* producers this entry waits on *)
  has_row : bool;      (* holds a physical register row until commit *)
  mutable issued : bool;
  mutable done_at : int;
  mutable mob_id : int option;
}

(* Pool entries: transmitted SVE instructions with scalar operands
   resolved at transmit time (address generation happens in the scalar
   core, §4.1.2). *)
type pentry =
  | Pload of { dst : int; arr : int; base : int; elems : int }
  | Pstore of { src : int; arr : int; base : int; elems : int }
  | Pcompute of { op : Vop.t; dst : int; srcs : int list }
  | Pdup of { dst : int }

(* Per-core, per-phase statistics accumulator. *)
type phase_acc = {
  pa_name : string;
  pa_start : int;
  mutable pa_compute : int;
  mutable pa_mem : int;
  mutable pa_vl_sum : int;
  mutable pa_cycles : int;
  mutable pa_stalls : int;
}

(* OS scheduling state of a core's task (§5): the OS drains the pipelines
   (including Occamy's), saves the five EM-SIMD dedicated registers,
   releases the lanes, and on restore rewrites <OI> to retrigger lane
   partitioning before the task reacquires a vector length. *)
type cs_state =
  | Cs_running
  | Cs_draining
  | Cs_away of { resume_at : int; saved_vl : int; saved_oi : Oi.t }
  | Cs_restoring of { saved_vl : int }

type core_state = {
  id : int;
  wl : Workload.t;
  phase_lookup : int -> Workload.phase option;
  (* front-end *)
  mutable pc : int;
  xregs : int array;
  fregs : float array;
  mutable halted : bool;
  mutable finish : int;
  mutable pending_vl : int option;  (* blocked MSR <VL> awaiting drain *)
  mutable pending_red : bool;       (* blocked Vred awaiting drain *)
  mutable cs_state : cs_state;
  mutable cs_schedule : int list;   (* preemption cycles, ascending *)
  mutable cur_level : Occamy_mem.Level.t;  (* current phase's footprint *)
  (* co-processor side *)
  pool : pentry Occamy_util.Bounded_queue.t;
  vop_srcs : int list array;
      (* per static instruction, the source vreg indices of a [Vop]
         (empty otherwise), decoded once at construction so [transmit]
         does not allocate a fresh list per transmitted instruction *)
  rob : wentry Queue.t;
  vmap : wentry option array;  (* arch vreg -> last producer *)
  freelist : Freelist.t;       (* per-core or shared, per architecture *)
  lsu : Lsu.t;
  mutable vl : int;            (* granules currently held *)
  mutable owned_units : int list;
      (* cached Dispatcher.Cfg view of this core's ExeBUs; refreshed only
         when the assignment changes, so the per-cycle issue scan does
         not rebuild it *)
  (* statistics *)
  mutable issued_compute : int;
  mutable issued_mem : int;
  mutable rename_stalls : int;
  mutable blocked_vl_cycles : int;
  mutable monitor_instrs : int;
  mutable monitor_stall_cycles : int;
      (* cycles whose front-end budget ran out while it also executed a
         partition-monitor read: the monitor's *marginal* cost — decision
         reads are speculative (§4.1.1) and otherwise hidden *)
  mutable reconfigs : int;
  mutable failed_vl : int;
  mutable phase_index : int;   (* counts non-zero OI writes *)
  mutable cur_phase : phase_acc option;
  mutable done_phases : Metrics.phase_stat list;  (* reversed *)
  lanes_buckets : Buckets.t;
  vl_buckets : Buckets.t;
}

type t = {
  cfg : Config.t;
  arch : Arch.t;
  cores : core_state array;
  hierarchy : Hierarchy.t;
  mob : Mob.t;
  rtbl : Rtbl.t;
  exebu_cfg : Config_tbl.t;   (* Dispatcher.Cfg *)
  regblk_cfg : Config_tbl.t;  (* RegFile.Cfg *)
  exebus : Exebu.t;
  lane_mgr : Lane_mgr.t option;  (* Occamy only *)
  rng : Rng.t;
  all_units : int list;  (* every ExeBU id, for the shared-port archs *)
  mutable cycle : int;
  mutable busy_lane_cycles : float;
  mutable replans : int;
  (* fast-forward bookkeeping (reported, never fed back into timing) *)
  mutable ff_skipped : int;  (* cycles advanced without stepping *)
  mutable ff_jumps : int;    (* number of fast-forward jumps *)
  mutable work_cycle : int;
      (* last cycle on which the machine did any work (executed,
         transmitted, renamed, issued or retired something). Gates the
         horizon computation: a cycle that did work almost certainly has
         a successor event, so don't bother scanning for a skip. Purely
         a filter on *attempting* skips — never affects timing. *)
  mutable ff_quiet_until : int;
      (* a horizon pass proved no state change strictly before this
         cycle; don't re-scan until we get there. Like [work_cycle],
         only a filter on attempts. *)
  (* per-cycle issue budgets; for FTS index 0 is the shared domain *)
  compute_budget : int array;
  mem_budget : int array;
  bucket_width : int;
  (* -------- observability (never feeds back into timing) ----------- *)
  trace : Trace.t;
  prof : Prof.t;  (* self-profiling stage scopes; Prof.disabled by default *)
  obs_prev_stalls : int array;  (* rename_stalls at the last episode scan *)
  obs_stall_start : int array;  (* open stall episode start, -1 if none *)
  obs_req_cycle : int array;    (* cycle of the pending MSR <VL>, -1 *)
}

let src = Logs.Src.create "occamy.sim" ~doc:"cycle-level simulator events"

module Log = (val Logs.src_log src : Logs.LOG)

exception Simulation_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Simulation_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make_core cfg arch ~shared_freelist id wl =
  let freelist =
    match shared_freelist with
    | Some fl -> fl
    | None ->
      Freelist.create
        ~name:(Printf.sprintf "core%d" id)
        ~depth:cfg.Config.regblk_depth ~pinned:cfg.Config.arch_vregs
  in
  ignore arch;
  {
    id;
    wl;
    phase_lookup = Workload.phase_of_oi_write wl;
    pc = 0;
    xregs = Array.make Reg.num_x 0;
    fregs = Array.make Reg.num_f 0.0;
    halted = false;
    finish = 0;
    pending_vl = None;
    pending_red = false;
    cs_state = Cs_running;
    cs_schedule = [];
    cur_level = Occamy_mem.Level.Vec_cache;
    pool = Occamy_util.Bounded_queue.create ~capacity:cfg.Config.pool_capacity;
    vop_srcs =
      Array.map
        (function
          | Instr.Vop { srcs; _ } -> List.map Reg.v_index srcs
          | _ -> [])
        wl.Workload.program.Program.code;
    rob = Queue.create ();
    vmap = Array.make Reg.num_v None;
    freelist;
    lsu =
      Lsu.create ~load_capacity:cfg.Config.lsu_load_capacity
        ~store_capacity:cfg.Config.lsu_store_capacity ();
    vl = 0;
    owned_units = [];
    issued_compute = 0;
    issued_mem = 0;
    rename_stalls = 0;
    blocked_vl_cycles = 0;
    monitor_instrs = 0;
    monitor_stall_cycles = 0;
    reconfigs = 0;
    failed_vl = 0;
    phase_index = 0;
    cur_phase = None;
    done_phases = [];
    lanes_buckets = Buckets.create ~width:1000;
    vl_buckets = Buckets.create ~width:1000;
  }

let create ?(cfg = Config.default) ?(trace = Trace.disabled)
    ?(prof = Prof.disabled) ?decisions ?(context_switches = []) ~arch
    workloads =
  let cfg = Config.validate cfg in
  if Trace.enabled trace && Trace.num_tracks trace < cfg.cores + 1 then
    invalid_arg
      (Printf.sprintf
         "Sim.create: trace has %d tracks, need %d (one per core + LaneMgr; \
          use Trace.for_sim)"
         (Trace.num_tracks trace) (cfg.cores + 1));
  let n = List.length workloads in
  if n <> cfg.cores then
    invalid_arg
      (Printf.sprintf "Sim.create: %d workloads for %d cores" n cfg.cores);
  let shared_freelist =
    if Arch.splits_vrf arch then None
    else
      (* FTS: one full-width row space; every core's architectural state
         pins rows in it (§7.3). *)
      Some
        (Freelist.create ~name:"shared" ~depth:cfg.regblk_depth
           ~pinned:(cfg.arch_vregs * cfg.cores))
  in
  let cores =
    Array.of_list
      (List.mapi (fun i wl -> make_core cfg arch ~shared_freelist i wl) workloads)
  in
  let rtbl = Rtbl.create ~total:cfg.exebus ~cores:cfg.cores in
  let lane_mgr =
    match arch with
    | Arch.Occamy ->
      Some
        (Lane_mgr.create ~cfg:(Config.roofline cfg) ~total:cfg.exebus
           ~cores:cfg.cores ())
    | Arch.Private | Arch.Fts | Arch.Vls -> None
  in
  (* Initial <decision> values per architecture. *)
  (match arch with
  | Arch.Private ->
    Array.iter
      (fun c ->
        Rtbl.set_decision rtbl ~core:c.id (Config.granules_per_core_private cfg))
      cores
  | Arch.Fts ->
    Array.iter (fun c -> Rtbl.set_decision rtbl ~core:c.id cfg.exebus) cores
  | Arch.Vls ->
    (* Static spatial sharing: one partition for the whole run, computed
       from each workload's most lane-demanding phase (a static plan must
       serve every phase, cf. the 12-lane WL20 allocation covering its
       second phase in §7.4). Never replanned (Figure 1(c)). *)
    let roofline = Config.roofline cfg in
    let mgr =
      Lane_mgr.create ~cfg:roofline ~total:cfg.exebus ~cores:cfg.cores ()
    in
    Array.iter
      (fun c ->
        let most_demanding =
          List.fold_left
            (fun acc (p : Workload.phase) ->
              let sat p =
                Occamy_lanemgr.Roofline.saturation_vl roofline
                  ~max_vl:cfg.exebus ~oi:p.Workload.ph_oi
                  ~level:p.Workload.ph_level
              in
              match acc with
              | Some best when sat best >= sat p -> Some best
              | _ -> Some p)
            None c.wl.Workload.phases
        in
        match most_demanding with
        | Some p ->
          Lane_mgr.enter_phase mgr ~core:c.id ~oi:p.Workload.ph_oi
            ~level:p.Workload.ph_level
        | None -> ())
      cores;
    (* Leftover free lanes are spread round-robin: a static partition has
       no reason to leave silicon idle. *)
    let d = Lane_mgr.decisions mgr in
    let leftover = ref (cfg.exebus - Array.fold_left ( + ) 0 d) in
    let i = ref 0 in
    while !leftover > 0 do
      d.(!i mod cfg.cores) <- d.(!i mod cfg.cores) + 1;
      decr leftover;
      incr i
    done;
    Array.iteri (fun c vl -> Rtbl.set_decision rtbl ~core:c vl) d
  | Arch.Occamy -> ());
  (* Explicit static partition, e.g. for lane sweeps (Figure 14(a)). Only
     meaningful for the static architectures. *)
  (match decisions with
  | Some d ->
    if arch = Arch.Occamy then
      invalid_arg "Sim.create: cannot force decisions on an elastic machine";
    Array.iteri (fun c vl -> Rtbl.set_decision rtbl ~core:c vl) d
  | None -> ());
  List.iter
    (fun (core, cycle) ->
      if core < 0 || core >= cfg.cores || cycle <= 0 then
        invalid_arg "Sim.create: bad context switch";
      cores.(core).cs_schedule <-
        List.sort compare (cycle :: cores.(core).cs_schedule))
    context_switches;
  let domains = if Arch.shares_issue_ports arch then 1 else cfg.cores in
  {
    cfg;
    arch;
    cores;
    hierarchy = Hierarchy.create ~cfg:cfg.mem ();
    mob = Mob.create ~capacity:cfg.mob_capacity ();
    rtbl;
    exebu_cfg = Config_tbl.create ~name:"Dispatch.Cfg" ~units:cfg.exebus;
    regblk_cfg = Config_tbl.create ~name:"RegFile.Cfg" ~units:cfg.exebus;
    exebus = Exebu.create ~units:cfg.exebus ~pipes_per_unit:cfg.pipes_per_exebu;
    lane_mgr;
    rng = Rng.create ~seed:cfg.seed;
    all_units = List.init cfg.exebus Fun.id;
    cycle = 0;
    busy_lane_cycles = 0.0;
    replans = (match arch with Arch.Vls -> 1 | _ -> 0);
    ff_skipped = 0;
    ff_jumps = 0;
    work_cycle = -1;
    ff_quiet_until = 0;
    compute_budget = Array.make domains 0;
    mem_budget = Array.make domains 0;
    bucket_width = 1000;
    trace;
    prof;
    obs_prev_stalls = Array.make cfg.cores 0;
    obs_stall_start = Array.make cfg.cores (-1);
    obs_req_cycle = Array.make cfg.cores (-1);
  }

let domain t core = if Arch.shares_issue_ports t.arch then 0 else core

(* Re-derive the cached ExeBU ownership list; must be called after every
   Dispatcher.Cfg change for [c] (reconfiguration grants and
   context-switch releases). [reassign] never touches other cores'
   units, so only the reconfigured core needs refreshing. *)
let refresh_owned_units t c =
  c.owned_units <- Config_tbl.owned_by t.exebu_cfg ~core:c.id

(* ------------------------------------------------------------------ *)
(* Trace recording                                                     *)
(* ------------------------------------------------------------------ *)

(* Tracing is strictly observational: every helper only *reads*
   simulator state, so results are bit-identical with tracing on or off
   (guarded by the "tracing non-perturbation" test). Hot-path call sites
   guard on [Trace.enabled] *before* constructing the event, so a
   disabled trace costs one branch and allocates nothing. *)

let tracing t = Trace.enabled t.trace

let trace_core t (c : core_state) ev =
  Trace.record t.trace ~track:c.id ~cycle:t.cycle ev

let trace_mgr t ev =
  Trace.record t.trace ~track:(Array.length t.cores) ~cycle:t.cycle ev

(* A lane-manager replan, with the full decision context: the per-core
   decision vector and the roofline verdict behind each decision. *)
let trace_replan t ~trigger ~cause mgr =
  trace_mgr t
    (Event.Replan
       {
         trigger;
         cause;
         decisions = Lane_mgr.decisions mgr;
         verdicts = Lane_mgr.verdicts mgr;
       })

(* Close an open rename-stall episode on [c], if any. *)
let trace_end_stall_episode t (c : core_state) ~upto =
  let start = t.obs_stall_start.(c.id) in
  if start >= 0 then begin
    t.obs_stall_start.(c.id) <- -1;
    trace_core t c
      (Event.Rename_stall
         { core = c.id; start_cycle = start; cycles = upto - start })
  end

(* ------------------------------------------------------------------ *)
(* Drain / reconfiguration                                             *)
(* ------------------------------------------------------------------ *)

let pipeline_drained c =
  Occamy_util.Bounded_queue.is_empty c.pool
  && Queue.is_empty c.rob
  && Lsu.is_drained c.lsu

(* Grant or refuse a pending MSR <VL>. Caller guarantees the drain. *)
let resolve_vl_request t c l =
  (* Close the reconfig-blocked interval opened by the MSR <VL> before
     recording its outcome, so the span and the grant/deny read in
     order. *)
  if tracing t then begin
    let req = t.obs_req_cycle.(c.id) in
    t.obs_req_cycle.(c.id) <- -1;
    if req >= 0 && t.cycle > req then
      trace_core t c
        (Event.Reconfig_blocked
           { core = c.id; start_cycle = req; cycles = t.cycle - req })
  end;
  (match t.arch with
  | Arch.Fts ->
    (* Temporal sharing: every core always executes at full width; the
       request degenerates to holding or releasing the co-processor. *)
    c.vl <- (if l = 0 then 0 else t.cfg.exebus);
    c.reconfigs <- c.reconfigs + 1;
    if tracing t then
      trace_core t c
        (Event.Vl_grant { core = c.id; granted = c.vl; al = t.cfg.exebus })
  | Arch.Private | Arch.Vls | Arch.Occamy ->
    if Rtbl.try_set_vl t.rtbl ~core:c.id l then begin
      Config_tbl.reassign t.exebu_cfg ~core:c.id ~count:l;
      Config_tbl.reassign t.regblk_cfg ~core:c.id ~count:l;
      refresh_owned_units t c;
      Log.debug (fun m ->
          m "cycle %d: core%d reconfigured to %d granules" t.cycle c.id l);
      c.vl <- l;
      c.reconfigs <- c.reconfigs + 1;
      if tracing t then
        trace_core t c
          (Event.Vl_grant { core = c.id; granted = l; al = Rtbl.al t.rtbl })
    end
    else begin
      c.failed_vl <- c.failed_vl + 1;
      if tracing t then
        trace_core t c
          (Event.Vl_deny { core = c.id; requested = l; al = Rtbl.al t.rtbl })
    end);
  c.pending_vl <- None

(* Status as read by MRS <status>: for FTS requests always succeed. *)
let read_status t c =
  match t.arch with Arch.Fts -> 1 | _ -> Rtbl.status t.rtbl ~core:c.id

let read_decision t c = Rtbl.decision t.rtbl ~core:c.id

let read_al t =
  match t.arch with Arch.Fts -> t.cfg.exebus | _ -> Rtbl.al t.rtbl

(* ------------------------------------------------------------------ *)
(* Phase bookkeeping + lane manager triggers                           *)
(* ------------------------------------------------------------------ *)

let close_phase t c =
  match c.cur_phase with
  | None -> ()
  | Some pa ->
    let stat =
      {
        Metrics.ps_name = pa.pa_name;
        ps_start = pa.pa_start;
        ps_end = t.cycle;
        ps_issued_compute = pa.pa_compute;
        ps_issued_mem = pa.pa_mem;
        ps_rename_stalls = pa.pa_stalls;
        ps_avg_vl =
          (if pa.pa_cycles = 0 then 0.0
           else float_of_int pa.pa_vl_sum /. float_of_int pa.pa_cycles);
      }
    in
    c.done_phases <- stat :: c.done_phases;
    if tracing t then
      trace_core t c (Event.Phase_end { core = c.id; phase = pa.pa_name });
    c.cur_phase <- None

let handle_oi_write t c oi =
  if tracing t then trace_core t c (Event.Oi_write { core = c.id; oi });
  if Oi.is_zero oi then begin
    close_phase t c;
    (match t.lane_mgr with
    | Some mgr ->
      Lane_mgr.exit_phase mgr ~core:c.id;
      Array.iteri
        (fun core d -> Rtbl.set_decision t.rtbl ~core d)
        (Lane_mgr.decisions mgr);
      t.replans <- t.replans + 1;
      if tracing t then
        trace_replan t ~trigger:c.id ~cause:Event.Exit_phase mgr
    | None -> ());
    Rtbl.set_oi t.rtbl ~core:c.id Oi.zero
  end
  else begin
    let phase =
      match c.phase_lookup c.phase_index with
      | Some p -> p
      | None ->
        error "core%d: OI write #%d has no matching phase metadata" c.id
          c.phase_index
    in
    c.phase_index <- c.phase_index + 1;
    close_phase t c;
    if tracing t && not (Occamy_mem.Level.equal c.cur_level phase.Workload.ph_level)
    then
      trace_core t c
        (Event.Mem_transition
           {
             core = c.id;
             from_level = c.cur_level;
             to_level = phase.Workload.ph_level;
           });
    c.cur_level <- phase.Workload.ph_level;
    c.cur_phase <-
      Some
        {
          pa_name = phase.Workload.ph_name;
          pa_start = t.cycle;
          pa_compute = 0;
          pa_mem = 0;
          pa_vl_sum = 0;
          pa_cycles = 0;
          pa_stalls = 0;
        };
    if tracing t then
      trace_core t c
        (Event.Phase_begin
           {
             core = c.id;
             phase = phase.Workload.ph_name;
             oi;
             level = phase.Workload.ph_level;
           });
    Rtbl.set_oi t.rtbl ~core:c.id oi;
    match t.lane_mgr with
    | Some mgr ->
      Lane_mgr.enter_phase mgr ~core:c.id ~oi ~level:phase.Workload.ph_level;
      Array.iteri
        (fun core d -> Rtbl.set_decision t.rtbl ~core d)
        (Lane_mgr.decisions mgr);
      Log.debug (fun m ->
          m "cycle %d: core%d entered %s, new plan [%s]" t.cycle c.id
            phase.Workload.ph_name
            (String.concat ";"
               (Array.to_list
                  (Array.map string_of_int (Lane_mgr.decisions mgr)))));
      t.replans <- t.replans + 1;
      if tracing t then
        trace_replan t ~trigger:c.id ~cause:Event.Enter_phase mgr
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Front-end: scalar execution + transmit (§4.1.1)                     *)
(* ------------------------------------------------------------------ *)

let eval_src c = function
  | Instr.Reg (Reg.X i) -> c.xregs.(i)
  | Instr.Imm i -> i

let cond_holds cond a b =
  match cond with
  | Instr.Eq -> a = b
  | Instr.Ne -> a <> b
  | Instr.Lt -> a < b
  | Instr.Le -> a <= b
  | Instr.Gt -> a > b
  | Instr.Ge -> a >= b

(* Transmit one SVE instruction into the pool; element counts and base
   addresses are resolved here from the scalar registers. *)
let transmit c instr =
  let elems_of cnt =
    match cnt with
    | None -> Lane.elems_of_granules c.vl
    | Some (Reg.X i) -> min c.xregs.(i) (Lane.elems_of_granules c.vl)
  in
  let pe =
    match instr with
    | Instr.Vload { dst; arr; idx = Reg.X xi; cnt } ->
      Pload { dst = Reg.v_index dst; arr; base = c.xregs.(xi); elems = elems_of cnt }
    | Instr.Vstore { src; arr; idx = Reg.X xi; cnt } ->
      Pstore { src = Reg.v_index src; arr; base = c.xregs.(xi); elems = elems_of cnt }
    | Instr.Vop { op; dst; srcs = _; cnt = _ } ->
      (* [c.pc] still points at this instruction; reuse its decoded
         source list instead of allocating one per transmit. *)
      Pcompute { op; dst = Reg.v_index dst; srcs = c.vop_srcs.(c.pc) }
    | Instr.Vdup (dst, _) -> Pdup { dst = Reg.v_index dst }
    | _ -> error "transmit: not an SVE instruction"
  in
  Occamy_util.Bounded_queue.push c.pool pe

let step_frontend t c =
  if c.cs_state <> Cs_running then ()
  else if c.halted then ()
  else if c.pending_vl <> None then
    c.blocked_vl_cycles <- c.blocked_vl_cycles + 1
  else if c.pending_red then begin
    (* Vred waits for the core's pipeline to drain (the reduction reads
       the architectural vector state; Table 2 ⟨SVE, Scalar⟩). *)
    if pipeline_drained c then c.pending_red <- false
  end;
  if
    c.cs_state <> Cs_running || c.halted || c.pending_vl <> None
    || c.pending_red
  then ()
  else begin
    (* The 8-issue scalar core executes scalar instructions and, in
       parallel, transmits up to [transmit_width] SVE/EM-SIMD instructions
       per cycle to the co-processor (Figure 5); the two budgets are
       independent. *)
    let budget = ref t.cfg.frontend_width in
    let transmit_budget = ref t.cfg.transmit_width in
    let saw_monitor = ref false in
    let continue_ = ref true in
    let code = c.wl.Workload.program.Program.code in
    let targets = c.wl.Workload.program.Program.targets in
    while !continue_ && !budget > 0 && not c.halted do
      if c.pc >= Array.length code then begin
        c.halted <- true;
        c.finish <- t.cycle
      end
      else begin
        let instr = code.(c.pc) in
        let next = ref (c.pc + 1) in
        (match instr with
        | Instr.Li (Reg.X d, imm) -> c.xregs.(d) <- imm; decr budget
        | Instr.Mov (Reg.X d, Reg.X s) -> c.xregs.(d) <- c.xregs.(s); decr budget
        | Instr.Iop (op, Reg.X d, Reg.X s, src) ->
          let a = c.xregs.(s) and b = eval_src c src in
          c.xregs.(d) <-
            (match op with
            | Instr.Addi -> a + b
            | Instr.Subi -> a - b
            | Instr.Muli -> a * b
            | Instr.Mini -> min a b
            | Instr.Maxi -> max a b);
          decr budget
        | Instr.Fli (Reg.F d, v) -> c.fregs.(d) <- v; decr budget
        | Instr.Fop (op, Reg.F d, Reg.F a, Reg.F b) ->
          let x = c.fregs.(a) and y = c.fregs.(b) in
          c.fregs.(d) <-
            (match op with
            | Instr.Fadd -> x +. y
            | Instr.Fsub -> x -. y
            | Instr.Fmul -> x *. y
            | Instr.Fdiv -> x /. y);
          decr budget
        | Instr.Fvop (op, Reg.F d, srcs) ->
          (* Scalar FP executes in the scalar core's own FP unit; the data
             values do not affect timing-relevant control flow.
             Arity-specialised to avoid boxing the operands per
             executed instruction. *)
          c.fregs.(d) <-
            (match srcs with
            | [ Reg.F a ] -> Vop.apply1 op c.fregs.(a)
            | [ Reg.F a; Reg.F b ] -> Vop.apply2 op c.fregs.(a) c.fregs.(b)
            | [ Reg.F a; Reg.F b; Reg.F cc ] ->
              Vop.apply3 op c.fregs.(a) c.fregs.(b) c.fregs.(cc)
            | _ -> error "core%d: %s.s arity mismatch" c.id (Vop.name op));
          decr budget
        | Instr.Flw { fdst = Reg.F d; _ } ->
          (* Scalar loads go through the core's private L1 (Table 4); a
             multi-version scalar loop only runs for tiny trip counts, so
             a fixed 1-slot cost suffices. *)
          c.fregs.(d) <- 0.0;
          decr budget
        | Instr.Fsw _ -> decr budget
        | Instr.B _ -> next := targets.(c.pc); decr budget
        | Instr.Bc (cond, Reg.X r, src, _) ->
          if cond_holds cond c.xregs.(r) (eval_src c src) then
            next := targets.(c.pc);
          decr budget
        | Instr.Halt ->
          c.halted <- true;
          c.finish <- t.cycle;
          decr budget
        | Instr.Mrs (Reg.X d, sr) ->
          (match sr with
          | Sysreg.VL | Sysreg.ZCR -> c.xregs.(d) <- c.vl
          | Sysreg.STATUS -> c.xregs.(d) <- read_status t c
          | Sysreg.DECISION ->
            c.xregs.(d) <- read_decision t c;
            c.monitor_instrs <- c.monitor_instrs + 1;
            saw_monitor := true
          | Sysreg.AL -> c.xregs.(d) <- read_al t
          | Sysreg.OI -> c.xregs.(d) <- 0);
          decr budget
        | Instr.Msr_oi oi ->
          if Prof.sampled t.prof then begin
            Prof.enter t.prof Prof.Replan;
            handle_oi_write t c oi;
            Prof.exit t.prof
          end
          else handle_oi_write t c oi;
          decr budget
        | Instr.Msr (Sysreg.VL, src) ->
          let l = eval_src c src in
          if l < 0 || l > t.cfg.exebus then error "core%d: MSR <VL> %d" c.id l;
          c.pending_vl <- Some l;
          if tracing t then begin
            trace_core t c (Event.Vl_request { core = c.id; requested = l });
            t.obs_req_cycle.(c.id) <- t.cycle
          end;
          decr budget;
          continue_ := false
        | Instr.Msr (sr, _) ->
          error "core%d: MSR %s not writable" c.id (Sysreg.name sr)
        | Instr.Vred { dst = Reg.F d; _ } ->
          (* Reduction result is data the timing model does not carry;
             block for the drain (its real cost) and yield zero. *)
          c.fregs.(d) <- 0.0;
          c.pending_red <- true;
          decr budget;
          continue_ := false
        | Instr.Vload _ | Instr.Vstore _ | Instr.Vop _ | Instr.Vdup _ ->
          if c.vl <= 0 then
            error "core%d: SVE instruction with <VL>=0 at pc=%d" c.id c.pc;
          if !transmit_budget = 0 then continue_ := false
          else if transmit c instr then decr transmit_budget
          else continue_ := false);
        if !continue_ && not c.halted then c.pc <- !next
        else if c.halted then ()
        else if c.pending_vl <> None || c.pending_red then c.pc <- !next
      end
    done;
    if !budget = 0 && !saw_monitor then
      c.monitor_stall_cycles <- c.monitor_stall_cycles + 1;
    (* Transmits do not consume [budget], so both budgets decide whether
       the front-end did anything this cycle. *)
    if
      !budget < t.cfg.frontend_width
      || !transmit_budget < t.cfg.transmit_width
    then t.work_cycle <- t.cycle
  end

(* ------------------------------------------------------------------ *)
(* Rename (in order, bounded by freelist and window)                   *)
(* ------------------------------------------------------------------ *)

let rename t c =
  if c.halted && Occamy_util.Bounded_queue.is_empty c.pool then ()
  else begin
    let renamed = ref 0 in
    let stalled = ref false in
    while
      !renamed < t.cfg.rename_width
      && (not !stalled)
      && Occamy_util.Bounded_queue.length c.pool > 0
      && Queue.length c.rob < t.cfg.window
    do
      let pe = Occamy_util.Bounded_queue.peek c.pool in
      let needs_row =
        match pe with
        | Pload _ | Pcompute _ | Pdup _ -> true
        | Pstore _ -> false
      in
      if needs_row && not (Freelist.alloc c.freelist) then begin
        stalled := true;
        c.rename_stalls <- c.rename_stalls + 1;
        match c.cur_phase with
        | Some pa -> pa.pa_stalls <- pa.pa_stalls + 1
        | None -> ()
      end
      else begin
        ignore (Occamy_util.Bounded_queue.pop c.pool);
        let width =
          if Arch.shares_issue_ports t.arch then t.cfg.exebus else c.vl
        in
        let entry =
          match pe with
          | Pload { dst; arr; base; elems } ->
            let e =
              {
                kind = Kload;
                width;
                arr;
                base;
                elems;
                srcs = [];
                has_row = true;
                issued = false;
                done_at = max_int;
                mob_id = None;
              }
            in
            c.vmap.(dst) <- Some e;
            e
          | Pstore { src; arr; base; elems } ->
            {
              kind = Kstore;
              width;
              arr;
              base;
              elems;
              srcs = Option.to_list c.vmap.(src);
              has_row = false;
              issued = false;
              done_at = max_int;
              mob_id = None;
            }
          | Pcompute { op; dst; srcs } ->
            let deps = List.filter_map (fun s -> c.vmap.(s)) srcs in
            let e =
              {
                kind = Kcompute op;
                width;
                arr = -1;
                base = 0;
                elems = 0;
                srcs = deps;
                has_row = true;
                issued = false;
                done_at = max_int;
                mob_id = None;
              }
            in
            c.vmap.(dst) <- Some e;
            e
          | Pdup { dst } ->
            let e =
              {
                kind = Kdup;
                width;
                arr = -1;
                base = 0;
                elems = 0;
                srcs = [];
                has_row = true;
                issued = false;
                done_at = max_int;
                mob_id = None;
              }
            in
            c.vmap.(dst) <- Some e;
            e
        in
        Queue.push entry c.rob;
        incr renamed
      end
    done;
    if !renamed > 0 then t.work_cycle <- t.cycle
  end

(* ------------------------------------------------------------------ *)
(* Issue (out of order within the window)                              *)
(* ------------------------------------------------------------------ *)

let entry_ready now e =
  List.for_all (fun p -> p.issued && p.done_at <= now) e.srcs

let record_compute_issue t c width =
  if Prof.sampled t.prof then Prof.enter t.prof Prof.Exe_apply;
  t.work_cycle <- t.cycle;
  c.issued_compute <- c.issued_compute + 1;
  (match c.cur_phase with
  | Some pa -> pa.pa_compute <- pa.pa_compute + 1
  | None -> ());
  (* Busy-lane accounting for the §2 utilisation metric: a compute
     instruction of [width] granules keeps [width*4] lanes busy for one of
     the data path's [pipes] issue slots. *)
  let lanes =
    float_of_int (width * Lane.f32_per_granule)
    /. float_of_int t.cfg.pipes_per_exebu
  in
  t.busy_lane_cycles <- t.busy_lane_cycles +. lanes;
  Buckets.add c.lanes_buckets ~cycle:t.cycle lanes;
  if Prof.sampled t.prof then Prof.exit t.prof

let record_mem_issue t c =
  if Prof.sampled t.prof then Prof.enter t.prof Prof.Exe_apply;
  t.work_cycle <- t.cycle;
  c.issued_mem <- c.issued_mem + 1;
  (match c.cur_phase with
  | Some pa -> pa.pa_mem <- pa.pa_mem + 1
  | None -> ());
  if Prof.sampled t.prof then Prof.exit t.prof

exception Ports_exhausted

let rec issue_core t c =
  let dom = domain t c.id in
  let owned_units =
    if Arch.shares_issue_ports t.arch then t.all_units else c.owned_units
  in
  try issue_core_scan t c ~dom ~owned_units
  with Ports_exhausted -> ()

and issue_core_scan t c ~dom ~owned_units =
  Queue.iter
    (fun e ->
      if t.compute_budget.(dom) = 0 && t.mem_budget.(dom) = 0 then
        raise_notrace Ports_exhausted;
      if (not e.issued) && entry_ready t.cycle e then begin
        match e.kind with
        | Kcompute op ->
          if
            t.compute_budget.(dom) > 0
            && Exebu.can_issue t.exebus ~unit_ids:owned_units
          then begin
            t.compute_budget.(dom) <- t.compute_budget.(dom) - 1;
            Exebu.issue t.exebus ~unit_ids:owned_units;
            e.issued <- true;
            e.done_at <- t.cycle + Vop.latency op;
            record_compute_issue t c e.width
          end
        | Kdup ->
          if
            t.compute_budget.(dom) > 0
            && Exebu.can_issue t.exebus ~unit_ids:owned_units
          then begin
            t.compute_budget.(dom) <- t.compute_budget.(dom) - 1;
            Exebu.issue t.exebus ~unit_ids:owned_units;
            e.issued <- true;
            e.done_at <- t.cycle + 3;
            record_compute_issue t c e.width
          end
        | Kload | Kstore ->
          let is_store = e.kind = Kstore in
          if
            t.mem_budget.(dom) > 0
            && Lsu.can_accept c.lsu ~is_store
            && (not (Mob.is_full t.mob))
            && not
                 (Mob.conflicts t.mob ~arr:e.arr ~base:e.base ~len:e.elems
                    ~is_store)
          then begin
            t.mem_budget.(dom) <- t.mem_budget.(dom) - 1;
            let level =
              Profile.classify (Workload.profile_of_array c.wl e.arr) t.rng
            in
            let bytes = e.elems * 4 in
            (* Unit-stride vector loads are the stream prefetcher's best
               case; stores are buffered anyway so their observed latency
               does not matter. *)
            let done_at =
              Hierarchy.access t.hierarchy ~prefetched:t.cfg.prefetch
                ~now:t.cycle ~level ~bytes
            in
            let mob_id =
              Mob.insert t.mob ~core:c.id ~arr:e.arr ~base:e.base ~len:e.elems
                ~is_store
            in
            Lsu.add c.lsu ~done_at ~is_store ~mob_id;
            e.issued <- true;
            (* Senior stores: a store leaves the window at issue (its data
               is in the store queue); the LSU/MOB keep tracking it until
               the memory system completes it, so drains and ordering
               still see it. Loads hold their window slot (and register
               row) until the data returns. *)
            e.done_at <- (if is_store then t.cycle else done_at);
            e.mob_id <- mob_id;
            record_mem_issue t c
          end
      end)
    c.rob

(* ------------------------------------------------------------------ *)
(* Retire / commit                                                     *)
(* ------------------------------------------------------------------ *)

let retire t c =
  (match Lsu.retire c.lsu ~now:t.cycle with
  | [] -> ()
  | ids ->
    t.work_cycle <- t.cycle;
    List.iter (fun id -> Mob.remove t.mob id) ids);
  let continue_ = ref true in
  while !continue_ && not (Queue.is_empty c.rob) do
    let e = Queue.peek c.rob in
    if e.issued && e.done_at <= t.cycle then begin
      ignore (Queue.pop c.rob);
      t.work_cycle <- t.cycle;
      if e.has_row then Freelist.release c.freelist
    end
    else continue_ := false
  done

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let all_done t =
  Array.for_all
    (fun c ->
      c.halted && pipeline_drained c && c.pending_vl = None
      && c.cs_state = Cs_running && c.cs_schedule = [])
    t.cores

let sample_stats t =
  Array.iter
    (fun c ->
      if not c.halted then begin
        Buckets.add c.vl_buckets ~cycle:t.cycle (float_of_int c.vl);
        match c.cur_phase with
        | Some pa ->
          pa.pa_vl_sum <- pa.pa_vl_sum + c.vl;
          pa.pa_cycles <- pa.pa_cycles + 1
        | None -> ()
      end)
    t.cores

let check_invariants t =
  (match t.arch with
  | Arch.Fts -> ()
  | _ ->
    if not (Rtbl.invariant_holds t.rtbl) then
      error "resource table invariant violated at cycle %d" t.cycle;
    let expected = Array.map (fun c -> c.vl) t.cores in
    if not (Config_tbl.consistent_with t.exebu_cfg expected) then
      error "Dispatch.Cfg inconsistent with <VL> at cycle %d" t.cycle;
    if not (Config_tbl.consistent_with t.regblk_cfg expected) then
      error "RegFile.Cfg inconsistent with <VL> at cycle %d" t.cycle)

(* ------------------------------------------------------------------ *)
(* OS context switches (§5)                                            *)
(* ------------------------------------------------------------------ *)

(* Advance a core's scheduling state: Running -> Draining at the scheduled
   cycle; Draining -> Away once the pipelines drain (context saved, lanes
   released, replanning triggered for the co-runners); Away -> Restoring
   after [cs_away_cycles]; Restoring -> Running once the vector length is
   granted again. The restored length is the fresh plan's suggestion on
   the elastic machine (the plan may have changed while away) and the
   saved length elsewhere. *)
let step_context_switch t c =
  match c.cs_state with
  | Cs_running -> (
    match c.cs_schedule with
    | cycle :: rest when t.cycle >= cycle && not c.halted ->
      c.cs_schedule <- rest;
      c.cs_state <- Cs_draining
    | cycle :: rest when c.halted ->
      ignore cycle;
      c.cs_schedule <- rest
    | _ -> ())
  | Cs_draining ->
    if pipeline_drained c && c.pending_vl = None && not c.pending_red then begin
      let saved_vl = c.vl and saved_oi = Rtbl.oi t.rtbl ~core:c.id in
      (match t.arch with
      | Arch.Fts -> c.vl <- 0
      | _ ->
        ignore (Rtbl.try_set_vl t.rtbl ~core:c.id 0);
        Config_tbl.release_all t.exebu_cfg ~core:c.id;
        Config_tbl.release_all t.regblk_cfg ~core:c.id;
        refresh_owned_units t c;
        c.vl <- 0);
      Rtbl.set_oi t.rtbl ~core:c.id Oi.zero;
      (match t.lane_mgr with
      | Some mgr ->
        if Prof.sampled t.prof then Prof.enter t.prof Prof.Replan;
        Lane_mgr.exit_phase mgr ~core:c.id;
        Array.iteri
          (fun core d -> Rtbl.set_decision t.rtbl ~core d)
          (Lane_mgr.decisions mgr);
        t.replans <- t.replans + 1;
        if tracing t then trace_replan t ~trigger:c.id ~cause:Event.Preempt mgr;
        if Prof.sampled t.prof then Prof.exit t.prof
      | None -> ());
      c.cs_state <-
        Cs_away { resume_at = t.cycle + t.cfg.cs_away_cycles; saved_vl; saved_oi }
    end
  | Cs_away { resume_at; saved_vl; saved_oi } ->
    if t.cycle >= resume_at then begin
      (* The OS restores <OI> (when non-zero), retriggering partitioning. *)
      Rtbl.set_oi t.rtbl ~core:c.id saved_oi;
      (match t.lane_mgr with
      | Some mgr when not (Oi.is_zero saved_oi) ->
        if Prof.sampled t.prof then Prof.enter t.prof Prof.Replan;
        Lane_mgr.enter_phase mgr ~core:c.id ~oi:saved_oi ~level:c.cur_level;
        Array.iteri
          (fun core d -> Rtbl.set_decision t.rtbl ~core d)
          (Lane_mgr.decisions mgr);
        t.replans <- t.replans + 1;
        if tracing t then trace_replan t ~trigger:c.id ~cause:Event.Resume mgr;
        if Prof.sampled t.prof then Prof.exit t.prof
      | _ -> ());
      if saved_vl = 0 then c.cs_state <- Cs_running
      else c.cs_state <- Cs_restoring { saved_vl }
    end
  | Cs_restoring { saved_vl } ->
    let target =
      match t.arch with
      | Arch.Occamy -> max 1 (Rtbl.decision t.rtbl ~core:c.id)
      | Arch.Fts -> t.cfg.exebus
      | Arch.Private | Arch.Vls -> saved_vl
    in
    (match t.arch with
    | Arch.Fts ->
      c.vl <- target;
      c.reconfigs <- c.reconfigs + 1;
      c.cs_state <- Cs_running
    | _ ->
      if Rtbl.try_set_vl t.rtbl ~core:c.id target then begin
        Config_tbl.reassign t.exebu_cfg ~core:c.id ~count:target;
        Config_tbl.reassign t.regblk_cfg ~core:c.id ~count:target;
        refresh_owned_units t c;
        c.vl <- target;
        c.reconfigs <- c.reconfigs + 1;
        c.cs_state <- Cs_running
      end)

let step t =
  t.cycle <- t.cycle + 1;
  Prof.begin_cycle t.prof;
  let pr = Prof.sampled t.prof in
  Exebu.begin_cycle t.exebus ~cycle:t.cycle;
  Array.fill t.compute_budget 0 (Array.length t.compute_budget)
    t.cfg.compute_ports;
  Array.fill t.mem_budget 0 (Array.length t.mem_budget) t.cfg.mem_ports;
  if pr then Prof.enter t.prof Prof.Lsu_retire;
  Array.iter (fun c -> retire t c) t.cores;
  if pr then Prof.exit t.prof;
  (* Round-robin both the issue and rename order so that shared resources
     (FTS ports, the shared freelist) are arbitrated fairly. *)
  let n = Array.length t.cores in
  if pr then Prof.enter t.prof Prof.Dispatch;
  for k = 0 to n - 1 do
    issue_core t t.cores.((k + t.cycle) mod n)
  done;
  if pr then begin
    Prof.exit t.prof;
    Prof.enter t.prof Prof.Rename
  end;
  for k = 0 to n - 1 do
    rename t t.cores.((k + t.cycle) mod n)
  done;
  if pr then begin
    Prof.exit t.prof;
    Prof.enter t.prof Prof.Frontend
  end;
  Array.iter (fun c -> step_frontend t c) t.cores;
  if pr then begin
    Prof.exit t.prof;
    Prof.enter t.prof Prof.Ctx_switch
  end;
  Array.iter (fun c -> step_context_switch t c) t.cores;
  (* Resolve pending vector-length requests once the pipelines drain
     (§4.2.2 condition (2)). *)
  Array.iter
    (fun c ->
      match c.pending_vl with
      | Some l when pipeline_drained c -> resolve_vl_request t c l
      | _ -> ())
    t.cores;
  if pr then Prof.exit t.prof;
  (* Rename-stall episode detection (observability only): a fresh stall
     this cycle opens an episode, the first stall-free cycle closes it. *)
  if tracing t then begin
    if pr then Prof.enter t.prof Prof.Trace_overhead;
    Array.iter
      (fun c ->
        let stalls = c.rename_stalls in
        if stalls > t.obs_prev_stalls.(c.id) then begin
          if t.obs_stall_start.(c.id) < 0 then
            t.obs_stall_start.(c.id) <- t.cycle
        end
        else trace_end_stall_episode t c ~upto:t.cycle;
        t.obs_prev_stalls.(c.id) <- stalls)
      t.cores;
    if pr then Prof.exit t.prof
  end;
  if pr then Prof.enter t.prof Prof.Sample;
  sample_stats t;
  if t.cycle land 1023 = 0 then check_invariants t;
  if pr then Prof.exit t.prof

(* ------------------------------------------------------------------ *)
(* Event-horizon fast-forwarding                                       *)
(* ------------------------------------------------------------------ *)

(* The skipping loop (gem5-style): after each step, compute a
   conservative *event horizon* — the earliest future cycle at which any
   core can change state — and when that horizon is beyond the next
   cycle, advance [t.cycle] and every per-cycle counter in one jump.

   The proof obligation is bit-identical equivalence with the naive tick
   loop ([Config.fast_forward = false]): during a skipped stretch no
   instruction executes, transmits, renames, issues or retires, no RNG
   is drawn, and no trace event fires, so the only per-cycle effects are
   the deterministic counters batched by [fast_forward_to]. Anything the
   horizon scan cannot prove inert raises [Horizon_now] and the
   simulator just steps normally. The sim-vs-sim harness
   (test_fastforward) and the nightly differential fuzzer hold both
   loops to this equality on metrics, counters and trace streams. *)

exception Horizon_now

(* The front-end makes no progress this cycle iff its next instruction
   is an SVE transmit that cannot be accepted: the transmit fails before
   any budget is consumed, leaving pc and every counter untouched. The
   [vl > 0] conjunct keeps the <VL>=0 error on its exact naive cycle. *)
let frontend_blocked t c =
  let code = c.wl.Workload.program.Program.code in
  c.pc < Array.length code
  && c.vl > 0
  && (match code.(c.pc) with
     | Instr.Vload _ | Instr.Vstore _ | Instr.Vop _ | Instr.Vdup _ -> true
     | _ -> false)
  && (Occamy_util.Bounded_queue.is_full c.pool || t.cfg.transmit_width <= 0)

(* Post-step rename state: able to progress next cycle (an event),
   deterministically stalled on an exhausted freelist (one counted
   failed attempt per cycle), or inert (empty pool / full window). *)
type rename_quiescence = Rq_inert | Rq_stalled | Rq_progress

let rename_quiescence t c =
  if
    t.cfg.rename_width <= 0
    || Occamy_util.Bounded_queue.is_empty c.pool
    || Queue.length c.rob >= t.cfg.window
  then Rq_inert
  else
    let needs_row =
      match Occamy_util.Bounded_queue.peek c.pool with
      | Pload _ | Pcompute _ | Pdup _ -> true
      | Pstore _ -> false
    in
    if needs_row && Freelist.free c.freelist = 0 then Rq_stalled
    else Rq_progress

(* Earliest cycle at which any core can change state; raises
   [Horizon_now] when something may act on the very next cycle. Purely
   observational — it must not mutate simulator state (no RNG draws, no
   [try_set_vl] attempts), or replaying the skipped cycles would
   diverge. Two passes: the cheap front-end/scheduling checks first so
   the common "a core is actively executing" case bails before any
   window scan. *)
let horizon t =
  let now = t.cycle in
  let ev = ref max_int in
  let note x =
    if x <= now + 1 then raise_notrace Horizon_now
    else if x < !ev then ev := x
  in
  Array.iter
    (fun c ->
      (match c.cs_state with
      | Cs_running ->
        if c.halted then begin
          (* A halted core still consumes one stale schedule entry per
             cycle. *)
          if c.cs_schedule <> [] then raise_notrace Horizon_now
        end
        else begin
          (match c.cs_schedule with s :: _ -> note s | [] -> ());
          if c.pending_vl <> None || c.pending_red then begin
            (* Blocked on the drain; the moment it completes the request
               resolves / the reduction unblocks. Drain progress is
               bounded by the pipeline events scanned below. *)
            if pipeline_drained c then raise_notrace Horizon_now
          end
          else if not (frontend_blocked t c) then raise_notrace Horizon_now
        end
      | Cs_draining ->
        (* Transitions (and resolves any pending <VL>) once drained. *)
        if pipeline_drained c then raise_notrace Horizon_now
      | Cs_away { resume_at; _ } -> note resume_at
      | Cs_restoring { saved_vl } -> (
        match t.arch with
        | Arch.Fts -> raise_notrace Horizon_now
        | _ ->
          let target =
            match t.arch with
            | Arch.Occamy -> max 1 (Rtbl.decision t.rtbl ~core:c.id)
            | _ -> saved_vl
          in
          (* Feasible -> granted next cycle. Infeasible -> stable until
             another core releases lanes, itself an event; the naive
             loop's failing [try_set_vl] per cycle only rewrites
             <status> to the value it already has. *)
          if Rtbl.vl t.rtbl ~core:c.id + Rtbl.al t.rtbl >= target then
            raise_notrace Horizon_now));
      match rename_quiescence t c with
      | Rq_progress -> raise_notrace Horizon_now
      | Rq_inert | Rq_stalled -> ())
    t.cores;
  Array.iter
    (fun c ->
      (* Next memory completion ([max_int] when drained is inert). *)
      note (Lsu.next_done_at c.lsu);
      (* The window head retires the cycle after it completes. *)
      (match Queue.peek_opt c.rob with
      | Some e when e.issued && e.done_at <= now -> raise_notrace Horizon_now
      | _ -> ());
      Queue.iter
        (fun e ->
          if e.issued then begin
            (* Completes at [done_at]; already-complete non-head entries
               (senior stores) retire with the head, an event of its
               own. *)
            if e.done_at > now then note e.done_at
          end
          else if List.for_all (fun p -> p.issued) e.srcs then begin
            let rdy =
              List.fold_left (fun acc p -> max acc p.done_at) 0 e.srcs
            in
            if rdy > now then note rdy
            else
              match e.kind with
              | Kcompute _ | Kdup ->
                (* Ready compute: ports and ExeBU slots refresh every
                   cycle, so it can issue next cycle. *)
                raise_notrace Horizon_now
              | Kload | Kstore ->
                let is_store = e.kind = Kstore in
                if
                  Lsu.can_accept c.lsu ~is_store
                  && (not (Mob.is_full t.mob))
                  && not
                       (Mob.conflicts t.mob ~arr:e.arr ~base:e.base
                          ~len:e.elems ~is_store)
                then raise_notrace Horizon_now
                (* else blocked on LSU/MOB occupancy or an address
                   conflict: that state only changes at a memory
                   completion, noted above for every core. *)
          end
          (* Unissued with an unissued producer: bounded by the
             producer's own entry, scanned in this same pass. *))
        c.rob)
    t.cores;
  !ev

(* Jump to [target] (exclusive of the step that will execute
   [target + 1]), batching exactly the per-cycle effects the naive loop
   would have accumulated over cycles [t.cycle+1 .. target]. *)
let fast_forward_to t ~target =
  let k = target - t.cycle in
  Array.iter
    (fun c ->
      (* Front-end blocked on MSR <VL>: one counted cycle each tick. *)
      if c.cs_state = Cs_running && (not c.halted) && c.pending_vl <> None
      then c.blocked_vl_cycles <- c.blocked_vl_cycles + k;
      (* Deterministic rename stall: one failed allocation per cycle. *)
      (match rename_quiescence t c with
      | Rq_stalled ->
        c.rename_stalls <- c.rename_stalls + k;
        (match c.cur_phase with
        | Some pa -> pa.pa_stalls <- pa.pa_stalls + k
        | None -> ());
        Freelist.record_failures c.freelist ~count:k;
        if tracing t then begin
          (* The episode detector would have seen the first batched
             stall at cycle+1; keep its start stamp and its
             already-counted baseline exact. *)
          if t.obs_stall_start.(c.id) < 0 then
            t.obs_stall_start.(c.id) <- t.cycle + 1;
          t.obs_prev_stalls.(c.id) <- c.rename_stalls
        end
      | Rq_inert | Rq_progress -> ());
      (* Per-cycle sampling ([sample_stats]) for live cores. *)
      if not c.halted then begin
        Buckets.add_run c.vl_buckets ~cycle:(t.cycle + 1) ~len:k
          (float_of_int c.vl);
        match c.cur_phase with
        | Some pa ->
          pa.pa_vl_sum <- pa.pa_vl_sum + (k * c.vl);
          pa.pa_cycles <- pa.pa_cycles + k
        | None -> ()
      end)
    t.cores;
  (* The naive loop checks invariants at multiples of 1024; state is
     constant across the jump, so one check at the far end is
     equivalent whenever the jump crosses such a boundary. *)
  let crossed_check = target lsr 10 > t.cycle lsr 10 in
  t.cycle <- target;
  t.ff_skipped <- t.ff_skipped + k;
  t.ff_jumps <- t.ff_jumps + 1;
  if crossed_check then check_invariants t

(* Smallest jump worth taking: batching the counters for a 1–2 cycle
   skip costs more than stepping those cycles naively. *)
let ff_min_jump = 8

let try_fast_forward t =
  (* A cycle that did any work almost certainly has a successor event on
     the very next cycle, so scanning for a horizon would be pure
     overhead — only attempt a skip after provably idle cycles. (Purely
     a filter on attempts: timing is unaffected either way.) *)
  if
    t.work_cycle <> t.cycle
    && t.cycle >= t.ff_quiet_until
    && t.cycle < t.cfg.max_cycles
    && not (all_done t)
  then
    match horizon t with
    | exception Horizon_now -> ()
    | h ->
      (* The next real step executes cycle [h] — or [max_cycles], where
         the naive loop stops too (and, with no event in sight, reports
         the same deadlock). Jumps below [ff_min_jump] cycles cost more
         in batching than the skipped steps would have — let the naive
         loop walk those (equivalence is unaffected; this only skips
         less), and remember the proof so the inert cycles up to [h]
         aren't re-scanned. *)
      t.ff_quiet_until <- h;
      let target = min (h - 1) (t.cfg.max_cycles - 1) in
      if target - t.cycle >= ff_min_jump then fast_forward_to t ~target

let core_result c =
  {
    Metrics.core = c.id;
    workload = c.wl.Workload.wl_name;
    finish = c.finish;
    issued_compute = c.issued_compute;
    issued_mem = c.issued_mem;
    rename_stall_cycles = c.rename_stalls;
    reconfig_blocked_cycles = c.blocked_vl_cycles;
    monitor_instrs = c.monitor_instrs;
    monitor_stall_cycles = c.monitor_stall_cycles;
    reconfigs = c.reconfigs;
    failed_vl_requests = c.failed_vl;
    lsu_peak_loads = Lsu.peak_loads c.lsu;
    lsu_peak_stores = Lsu.peak_stores c.lsu;
    phases = List.rev c.done_phases;
    lanes_timeline = Buckets.rates c.lanes_buckets;
    vl_timeline = Buckets.rates c.vl_buckets;
  }

let run t =
  if t.cfg.fast_forward then
    while (not (all_done t)) && t.cycle < t.cfg.max_cycles do
      step t;
      (* The horizon scan runs between steps; [Prof.sampled] keeps this
         cycle's sampling decision until the next [begin_cycle], so the
         scan is attributed to the same profiled cycle. *)
      if Prof.sampled t.prof then begin
        Prof.enter t.prof Prof.Ff_scan;
        try_fast_forward t;
        Prof.exit t.prof
      end
      else try_fast_forward t;
      Prof.end_cycle t.prof
    done
  else
    while (not (all_done t)) && t.cycle < t.cfg.max_cycles do
      step t;
      Prof.end_cycle t.prof
    done;
  if not (all_done t) then
    error "simulation exceeded %d cycles (deadlock or runaway loop?)"
      t.cfg.max_cycles;
  check_invariants t;
  if tracing t then
    (* Close any stall episode still open at the horizon. *)
    Array.iter (fun c -> trace_end_stall_episode t c ~upto:t.cycle) t.cores;
  let total = Array.fold_left (fun acc c -> max acc c.finish) 0 t.cores in
  let levels = Occamy_mem.Level.all in
  let mem_accesses = Array.make (List.length levels) 0 in
  let mem_bytes = Array.make (List.length levels) 0.0 in
  List.iter
    (fun level ->
      let d = Occamy_mem.Level.depth level in
      mem_accesses.(d) <- Hierarchy.accesses_at t.hierarchy level;
      mem_bytes.(d) <- Hierarchy.bytes_at t.hierarchy level)
    levels;
  {
    Metrics.arch = t.arch;
    total_cycles = total;
    simd_util =
      t.busy_lane_cycles
      /. float_of_int (max 1 total * Config.total_lanes t.cfg);
    busy_lane_cycles = t.busy_lane_cycles;
    replans =
      (match t.lane_mgr with Some m -> Lane_mgr.replans m | None -> t.replans);
    cores = Array.map core_result t.cores;
    mem_accesses;
    mem_bytes;
    bucket_width = t.bucket_width;
  }

(** Convenience: build and run in one call.

    [workloads] are read-only to the simulator: everything it mutates —
    scalar registers, pools, ROBs, freelists, statistics — lives in
    per-core state allocated by [create], and the per-run RNG is seeded
    from [cfg.seed], never from global state. A compiled {!Workload.t}
    can therefore be simulated any number of times, including
    concurrently from several domains ({!Occamy_util.Domain_pool}), with
    bit-identical results; the experiment runners rely on this to
    compile each pair once and share it across the four architecture
    simulations (see the "workload reuse" and "parallel determinism"
    tests). *)
let simulate ?cfg ?trace ?prof ?decisions ?context_switches ~arch workloads =
  let t = create ?cfg ?trace ?prof ?decisions ?context_switches ~arch workloads in
  run t

let cycle t = t.cycle
let config t = t.cfg
let skipped_cycles t = t.ff_skipped
let ff_jumps t = t.ff_jumps
let prof t = t.prof

let stage_work t =
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 t.cores in
  [
    ("lsu.retire_calls", float_of_int (sum (fun c -> Lsu.retire_calls c.lsu)));
    ("lsu.retired", float_of_int (sum (fun c -> Lsu.retired c.lsu)));
    ("exebu.issue_checks", float_of_int (Exebu.issue_checks t.exebus));
    ("exebu.issues", float_of_int (Exebu.issues t.exebus));
  ]
