(** Results of a simulation run — every quantity the paper's evaluation
    reports: finish times and speedups (Fig 10), SIMD utilization (Fig 11,
    computed as in §2), per-phase issue rates (Figs 2(f), 14(c)),
    rename-stall fractions (Fig 13), EM-SIMD overhead (Fig 15), and
    per-1000-cycle timelines (Figs 2(b-e), 14(b)). *)

type phase_stat = {
  ps_name : string;
  ps_start : int;
  ps_end : int;
  ps_issued_compute : int;
  ps_issued_mem : int;
  ps_rename_stalls : int;
  ps_avg_vl : float;  (** average granules held during the phase *)
}

val ps_cycles : phase_stat -> int
val ps_issue_rate : phase_stat -> float
(** SIMD compute instructions issued per cycle (the paper's metric). *)

type core_result = {
  core : int;
  workload : string;
  finish : int;
  issued_compute : int;
  issued_mem : int;
  rename_stall_cycles : int;
  reconfig_blocked_cycles : int;
  monitor_instrs : int;
  monitor_stall_cycles : int;
  reconfigs : int;
  failed_vl_requests : int;
  fault_opportunities : int;
      (** fault-injection opportunities (vector write-backs and LSU data
          transfers at issue) seen while [Config.inject_rate] > 0; 0
          otherwise *)
  faults_injected : int;
      (** opportunities on which the pure per-seed fault stream fired —
          the Sim-side mirror of the flips the functional interpreter
          applies to values; always 0 with injection disabled *)
  lsu_peak_loads : int;   (** high-water LSU load-queue occupancy *)
  lsu_peak_stores : int;
  phases : phase_stat list;
  lanes_timeline : float array;  (** avg busy lanes per 1000-cycle bucket *)
  vl_timeline : float array;     (** avg granules held per bucket *)
}

type t = {
  arch : Arch.t;
  total_cycles : int;
  simd_util : float;         (** the §2 busy-lane fraction *)
  busy_lane_cycles : float;
  replans : int;             (** eager lane-partitioning events *)
  cores : core_result array;
  mem_accesses : int array;  (** accesses served per level, by [Level.depth] *)
  mem_bytes : float array;   (** bytes served per level, by [Level.depth] *)
  bucket_width : int;
  attrib : int array array;
      (** per-core top-down cycle-accounting rows in
          {!Occamy_obs.Attrib} bucket order — each row sums to the
          simulated cycle count; [[||]] when attribution was disabled *)
}

val core_finish : t -> int -> int

val total_mem_bytes : t -> float
(** Bytes served summed over every hierarchy level. Each access is booked
    at exactly one level, so the sum equals the total vector-memory
    traffic of the run — the quantity the differential checker compares
    against the static Equation-5 prediction. *)

val total_mem_accesses : t -> int
val speedup_vs : baseline:t -> t -> core:int -> float
val rename_stall_fraction : t -> core:int -> float

val overhead : t -> frontend_width:int -> core:int -> float * float
(** (monitoring, reconfiguration) overhead as fractions of the core's
    execution time. Monitoring is a conservative upper bound of one
    front-end slot per `<decision>` read (the reads are speculative,
    §4.1.1); reconfiguration counts drain + retry cycles. *)

val populate_counters : Occamy_obs.Counters.t -> t -> unit
(** Register every scalar quantity of [t] under dotted names — run-level
    gauges under ["sim."], per-core counters under ["core<i>."],
    memory traffic under ["mem.<level>."], per-phase stats under
    ["core<i>.phase.<name>."] — so callers read results by name instead
    of pattern-matching these records. *)

val counters : t -> Occamy_obs.Counters.t
(** Fresh registry populated from [t] via {!populate_counters}. *)

val pp_summary : Format.formatter -> t -> unit
