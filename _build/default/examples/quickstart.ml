(* Quickstart: write a loop, compile it with the Occamy compiler, check
   its semantics with the functional interpreter, then time it on the
   cycle-level simulator at two different lane allocations.

     dune exec examples/quickstart.exe
*)

module Loop_ir = Occamy_compiler.Loop_ir
module Codegen = Occamy_compiler.Codegen
module Analysis = Occamy_compiler.Analysis
module Interp = Occamy_isa.Interp
module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Workload = Occamy_core.Workload

let () =
  (* 1. A loop in the compiler IR: y[i] = alpha*x[i] + y[i]. *)
  let axpy =
    Loop_ir.(
      loop ~name:"axpy" ~trip_count:10000 ~level:Occamy_mem.Level.Vec_cache
        [ store "y" (fma "y".%[0] (param "alpha" 2.0) "x".%[0]) ])
  in

  (* 2. Phase behaviour analysis (Equation 5 of the paper). *)
  let a = Analysis.analyse axpy in
  Fmt.pr "axpy analysis: %a@." Analysis.pp_result a;

  (* 3. Compile to EM-SIMD code (Figure 9 skeleton: eager OI writes, lazy
     partition monitor, status-spin reconfiguration, scalar variant). *)
  let wl =
    Codegen.compile_workload ~name:"axpy" ~kind:Workload.Compute_intensive
      [ axpy ]
  in
  Fmt.pr "compiled to %d instructions over %d arrays@."
    (Occamy_isa.Program.length wl.Workload.program)
    (Array.length wl.Workload.program.Occamy_isa.Program.arrays);

  (* 4. Execute functionally and verify a few values. *)
  let interp = Interp.create wl.Workload.program in
  let find name =
    let d =
      Array.to_list wl.Workload.program.Occamy_isa.Program.arrays
      |> List.find (fun d -> d.Occamy_isa.Program.arr_name = name)
    in
    d.Occamy_isa.Program.arr_id
  in
  Interp.set_memory interp (find "x") (Array.init 10000 float_of_int);
  Interp.set_memory interp (find "y") (Array.make 10000 1.0);
  let stats = Interp.run interp in
  let y = Interp.memory interp (find "y") in
  Fmt.pr "interp: %d instructions, %d flops; y[7] = %g (expect %g)@."
    stats.Interp.executed stats.Interp.flops y.(7)
    ((2.0 *. 7.0) +. 1.0);

  (* 5. Time it on the simulated machine: solo on one core at 8 vs 32
     lanes (the elastic machine gives a solo workload everything). *)
  let solo granules =
    let cfg = { Config.default with Config.cores = 1 } in
    let r =
      Sim.simulate ~cfg ~decisions:[| granules |] ~arch:Arch.Vls
        [ wl ]
    in
    r.Occamy_core.Metrics.total_cycles
  in
  let t8 = solo 2 and t32 = solo 8 in
  Fmt.pr "timing: %d cycles at 8 lanes, %d cycles at 32 lanes (%.2fx)@." t8
    t32
    (float_of_int t8 /. float_of_int t32)
