(* 4-core scalability (§7.6): the co-processor grows to 64 lanes and hosts
   four co-running workloads; Occamy repartitions across all of them.

     dune exec examples/scalability.exe
*)

module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Metrics = Occamy_core.Metrics
module Suite = Occamy_workloads.Suite
module Table = Occamy_util.Table

let () =
  let group = List.hd Suite.four_core_groups in
  Fmt.pr "group %s on a 4-core, 64-lane machine@." group.Suite.g_label;
  let cfg = Config.four_core in
  let results =
    List.map
      (fun arch ->
        (arch, Sim.simulate ~cfg ~arch (Suite.compile_group group)))
      Arch.all
  in
  let base = List.assoc Arch.Private results in
  let tbl =
    Table.create ~title:"per-core finish times and speedups vs Private"
      ~header:
        [ "arch"; "core0"; "core1"; "core2"; "core3"; "s0"; "s1"; "s2"; "s3";
          "util" ]
      ~aligns:(Table.Left :: List.init 9 (fun _ -> Table.Right))
      ()
  in
  List.iter
    (fun (arch, r) ->
      Table.add_row tbl
        (Arch.name arch
         :: List.map
              (fun c -> Table.icell r.Metrics.cores.(c).Metrics.finish)
              [ 0; 1; 2; 3 ]
         @ List.map
             (fun c -> Table.xcell (Metrics.speedup_vs ~baseline:base r ~core:c))
             [ 0; 1; 2; 3 ]
         @ [ Table.pcell r.Metrics.simd_util ]))
    results;
  Table.print tbl;
  let occamy = List.assoc Arch.Occamy results in
  Fmt.pr
    "@.Occamy performed %d lane repartitionings across the four cores.@."
    occamy.Metrics.replans
