(* A tour of the Occamy compiler (§6): the Figure 9 code it generates and
   the §6.4 correctness guarantee under adversarial vector-length
   schedules.

     dune exec examples/compiler_demo.exe
*)

module Loop_ir = Occamy_compiler.Loop_ir
module Codegen = Occamy_compiler.Codegen
module Analysis = Occamy_compiler.Analysis
module Reference = Occamy_compiler.Reference
module Interp = Occamy_isa.Interp
module Rng = Occamy_util.Rng
module Workload = Occamy_core.Workload

let dot_product =
  Loop_ir.(
    loop ~name:"dot" ~trip_count:1000 ~level:Occamy_mem.Level.Vec_cache
      [ reduce_sum "dot" ("a".%[0] *: "b".%[0]) ])

(* An environment that changes its suggested vector length every few
   reads and refuses a third of the requests. *)
let chaotic_env ~seed =
  let rng = Rng.create ~seed in
  let decision = ref 4 in
  let reads = ref 0 in
  {
    Interp.max_granules = 8;
    request_vl =
      (fun ~current:_ l ->
        if l = 0 then Some 0
        else if Rng.bool rng 0.33 then None
        else Some l);
    decision =
      (fun () ->
        incr reads;
        if !reads mod 3 = 0 then decision := 1 + Rng.int rng 8;
        !decision);
    avail = (fun () -> 8);
    on_oi = (fun _ -> ());
  }

let () =
  (* 1. Show the source loop and its analysed behaviour. *)
  Fmt.pr "source loop:@.%a@." Loop_ir.pp dot_product;
  Fmt.pr "analysis: %a@.@." Analysis.pp_result (Analysis.analyse dot_product);

  (* 2. Show the generated EM-SIMD assembly (the Figure 9 skeleton). *)
  let wl =
    Codegen.compile_workload ~name:"dot" ~kind:Workload.Compute_intensive
      [ dot_product ]
  in
  Fmt.pr "generated code:@.%a@." Occamy_isa.Program.pp wl.Workload.program;

  (* 3. Run under a chaotic reconfiguration schedule and compare against
     the scalar reference. *)
  let rng = Rng.create ~seed:2024 in
  let mem = Hashtbl.create 4 in
  List.iter
    (fun (name, size) ->
      Hashtbl.replace mem name
        (Array.init size (fun _ -> Rng.float rng -. 0.5)))
    (Codegen.array_plan [ dot_product ]);
  let lookup name = Hashtbl.find mem name in

  let interp = Interp.create ~env:(chaotic_env ~seed:99) wl.Workload.program in
  Array.iter
    (fun d ->
      Interp.set_memory interp d.Occamy_isa.Program.arr_id
        (Array.copy (lookup d.Occamy_isa.Program.arr_name)))
    wl.Workload.program.Occamy_isa.Program.arrays;
  let stats = Interp.run interp in

  Reference.run ~mem:lookup [ dot_product ];
  let want = (lookup "dot.out").(0) in
  let got =
    let d =
      Array.to_list wl.Workload.program.Occamy_isa.Program.arrays
      |> List.find (fun d -> d.Occamy_isa.Program.arr_name = "dot.out")
    in
    (Interp.memory interp d.Occamy_isa.Program.arr_id).(0)
  in
  Fmt.pr
    "chaotic schedule: %d reconfigurations, %d refused requests along the \
     way@."
    stats.Interp.reconfigs stats.Interp.failed_requests;
  Fmt.pr "dot product: vectorized %.9g vs scalar reference %.9g (|d|=%.2g)@."
    got want
    (Float.abs (got -. want));
  assert (Float.abs (got -. want) < 1e-6);
  Fmt.pr
    "the reduction survived every vector-length change — the §6.4 carry \
     mechanism at work.@."
