(* Explore the vector-length-aware roofline model (§5.1) and the greedy
   lane-partitioning algorithm (§5.2): how the lane manager decides who
   gets how many ExeBUs.

     dune exec examples/roofline_explorer.exe
*)

module Roofline = Occamy_lanemgr.Roofline
module Partition = Occamy_lanemgr.Partition
module Lane_mgr = Occamy_lanemgr.Lane_mgr
module Oi = Occamy_isa.Oi
module Level = Occamy_mem.Level
module Table = Occamy_util.Table

let cfg = Roofline.default_cfg

let show_roofline name oi level =
  let tbl =
    Table.create
      ~title:(Fmt.str "%s: oi=%a at %s" name Oi.pp oi (Level.name level))
      ~header:[ "lanes"; "AP (flops/cycle)"; "binding ceiling" ]
      ()
  in
  List.iter
    (fun vl ->
      Table.add_row tbl
        [
          Table.icell (4 * vl);
          Table.fcell (Roofline.attainable cfg ~vl ~oi ~level);
          Roofline.bound_name (Roofline.binding cfg ~vl ~oi ~level);
        ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Table.print tbl;
  Fmt.pr "  -> saturates at %d lanes@.@."
    (4 * Roofline.saturation_vl cfg ~max_vl:8 ~oi ~level)

let show_partition name workloads =
  let plan = Partition.plan cfg ~total:8 workloads in
  Fmt.pr "%s:@." name;
  List.iter
    (fun (key, vl) -> Fmt.pr "  workload %d -> %d lanes@." key (4 * vl))
    plan;
  Fmt.pr "@."

let () =
  (* The three behaviours of Table 5 / Figure 7. *)
  show_roofline "streaming copy (memory-bound)" (Oi.uniform 0.08) Level.Dram;
  show_roofline "WL8.p1 with data reuse (Case 4)"
    (Oi.make ~issue:(1.0 /. 6.0) ~mem:0.25)
    Level.L2;
  show_roofline "dense compute" (Oi.uniform 2.0) Level.Vec_cache;

  (* Partitioning scenarios of §5.2. *)
  let wl key oi level = { Partition.key; oi; level } in
  show_partition "memory + compute (the common case)"
    [ wl 0 (Oi.uniform 0.13) Level.L2; wl 1 (Oi.uniform 2.0) Level.Vec_cache ];
  show_partition "two compute-intensive workloads (fair split)"
    [ wl 0 (Oi.uniform 2.0) Level.Vec_cache; wl 1 (Oi.uniform 2.0) Level.Vec_cache ];
  show_partition "reuse kernel needs issue bandwidth (Case 4)"
    [
      wl 0 (Oi.make ~issue:(1.0 /. 6.0) ~mem:0.25) Level.L2;
      wl 1 (Oi.uniform 2.0) Level.Vec_cache;
    ];

  (* The lane manager reacting to phase events, as in Figure 8. *)
  let mgr = Lane_mgr.create ~total:8 ~cores:2 () in
  let show msg =
    Fmt.pr "%-46s decisions: core0=%d lanes, core1=%d lanes@." msg
      (4 * Lane_mgr.decision mgr ~core:0)
      (4 * Lane_mgr.decision mgr ~core:1)
  in
  Fmt.pr "Eager-lazy partitioning timeline (Figure 8):@.";
  Lane_mgr.enter_phase mgr ~core:1 ~oi:(Oi.uniform 2.0) ~level:Level.Vec_cache;
  show "WL#1 enters its compute phase (alone)";
  Lane_mgr.enter_phase mgr ~core:0 ~oi:(Oi.uniform 0.10) ~level:Level.L2;
  show "WL#0 enters a memory-intensive phase";
  Lane_mgr.enter_phase mgr ~core:0 ~oi:(Oi.uniform 0.30) ~level:Level.L2;
  show "WL#0 moves to a denser phase";
  Lane_mgr.exit_phase mgr ~core:0;
  show "WL#0 finishes (lanes released)"
