(* The paper's §2 motivating example: WL#0 (two memory-intensive loops
   from 654.rom_s) and WL#1 (a compute-intensive loop from 621.wrf_s)
   co-running on the four SIMD architectures of Figure 1.

     dune exec examples/motivating_example.exe
*)

module Fig2 = Occamy_experiments.Fig2
module Arch = Occamy_core.Arch
module Metrics = Occamy_core.Metrics
module Table = Occamy_util.Table

(* Compress a lane timeline into a small ASCII sparkline. *)
let sparkline values =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  String.concat ""
    (Array.to_list
       (Array.map
          (fun v ->
            let i = int_of_float (v /. 32.0 *. 7.0) in
            String.make 1 glyphs.(max 0 (min 7 i)))
          values))

let () =
  Fmt.pr "Simulating the Figure 2 co-run on all four architectures...@.";
  let t = Fig2.run () in
  Table.print (Fig2.stats_table t);
  Fmt.pr "Lane occupancy over time (each char = 1000 cycles, height = lanes busy):@.";
  List.iter
    (fun arch ->
      let r = Fig2.result t arch in
      Fmt.pr "@.%s:@." (Arch.name arch);
      Array.iter
        (fun c ->
          Fmt.pr "  core%d |%s|@." c.Metrics.core
            (sparkline c.Metrics.lanes_timeline))
        r.Metrics.cores)
    Arch.all;
  Fmt.pr
    "@.Reading: under Occamy, core1's occupancy rises when WL#0 enters its \
     denser phase and again when it exits — the elastic spatial sharing of \
     Figure 1(d).@."
