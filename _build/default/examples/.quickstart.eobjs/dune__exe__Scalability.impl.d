examples/scalability.ml: Array Fmt List Occamy_core Occamy_util Occamy_workloads
