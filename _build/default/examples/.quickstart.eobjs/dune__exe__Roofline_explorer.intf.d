examples/roofline_explorer.mli:
