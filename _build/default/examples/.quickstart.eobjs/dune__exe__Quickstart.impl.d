examples/quickstart.ml: Array Fmt List Occamy_compiler Occamy_core Occamy_isa Occamy_mem
