examples/compiler_demo.ml: Array Float Fmt Hashtbl List Occamy_compiler Occamy_core Occamy_isa Occamy_mem Occamy_util
