examples/quickstart.mli:
