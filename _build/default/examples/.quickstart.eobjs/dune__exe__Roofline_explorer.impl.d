examples/roofline_explorer.ml: Fmt List Occamy_isa Occamy_lanemgr Occamy_mem Occamy_util
