examples/compiler_demo.mli:
