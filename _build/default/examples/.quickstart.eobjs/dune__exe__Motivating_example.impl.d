examples/motivating_example.ml: Array Fmt List Occamy_core Occamy_experiments Occamy_util String
