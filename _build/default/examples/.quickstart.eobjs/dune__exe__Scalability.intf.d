examples/scalability.mli:
