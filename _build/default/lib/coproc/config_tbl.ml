(** Ownership configuration tables, the two [ConfigTbl]s of §4.2.1.

    One instance records which core owns each ExeBU ([Dispatcher.Cfg]),
    another which core owns each RegBlk ([RegFile.Cfg]). Each entry ranges
    over {free, core0, core1, ...}. Because every ExeBU is wired to a
    distinct RegBlk and "both are always assigned to the same scalar core
    together", the simulator keeps the two tables in lock-step; the type
    is shared.

    Invariant (tested): no unit is owned by two cores, and the per-core
    counts always match the resource table's `<VL>` values. *)

type owner = Free | Core of int

type t = { name : string; owners : owner array }

let create ~name ~units =
  if units <= 0 then invalid_arg "Config_tbl.create";
  { name; owners = Array.make units Free }

let units t = Array.length t.owners

let owner t u =
  if u < 0 || u >= units t then invalid_arg "Config_tbl.owner";
  t.owners.(u)

let owned_by t ~core =
  let acc = ref [] in
  for u = units t - 1 downto 0 do
    if t.owners.(u) = Core core then acc := u :: !acc
  done;
  !acc

let count_owned t ~core =
  Array.fold_left
    (fun n o -> if o = Core core then n + 1 else n)
    0 t.owners

let count_free t =
  Array.fold_left (fun n o -> if o = Free then n + 1 else n) 0 t.owners

(** Reconfigure core [core] to own exactly [count] units: free everything
    it held, then claim [count] free units (lowest indices first, matching
    the deterministic hardware allocator). Raises if not enough units are
    free — the resource table must have granted the request first. *)
let reassign t ~core ~count =
  if count < 0 then invalid_arg "Config_tbl.reassign: negative count";
  Array.iteri
    (fun u o -> if o = Core core then t.owners.(u) <- Free)
    t.owners;
  if count_free t < count then
    invalid_arg
      (Printf.sprintf "Config_tbl.reassign(%s): %d units requested, %d free"
         t.name count (count_free t));
  let remaining = ref count in
  Array.iteri
    (fun u o ->
      if !remaining > 0 && o = Free then begin
        t.owners.(u) <- Core core;
        decr remaining
      end)
    t.owners;
  assert (!remaining = 0)

let release_all t ~core = reassign t ~core ~count:0

(** No unit owned twice is structural; check per-core counts against an
    expected vector (the resource table's `<VL>` column). *)
let consistent_with t expected_counts =
  let cores = Array.length expected_counts in
  let ok = ref true in
  for c = 0 to cores - 1 do
    if count_owned t ~core:c <> expected_counts.(c) then ok := false
  done;
  !ok

let pp ppf t =
  Fmt.pf ppf "%s[" t.name;
  Array.iteri
    (fun u o ->
      if u > 0 then Fmt.string ppf " ";
      match o with
      | Free -> Fmt.pf ppf "%d:free" u
      | Core c -> Fmt.pf ppf "%d:c%d" u c)
    t.owners;
  Fmt.string ppf "]"
