lib/coproc/config_tbl.ml: Array Fmt Printf
