lib/coproc/resource_tbl.ml: Array Fmt Occamy_isa
