lib/coproc/ordering.mli: Occamy_isa
