lib/coproc/freelist.ml:
