lib/coproc/config_tbl.mli: Format
