lib/coproc/ordering.ml: Occamy_isa
