lib/coproc/lsu.mli:
