lib/coproc/freelist.mli:
