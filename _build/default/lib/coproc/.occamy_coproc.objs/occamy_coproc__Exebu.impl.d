lib/coproc/exebu.ml: Array List
