lib/coproc/exebu.mli:
