lib/coproc/resource_tbl.mli: Format Occamy_isa
