lib/coproc/lsu.ml: List
