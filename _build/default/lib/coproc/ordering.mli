(** The instruction-ordering policy matrix of Table 2: for every
    ⟨older, younger⟩ class pair, which agent maintains ordering and by
    what mechanism. The simulator's behaviour is tested against it. *)

type agent = Scalar_cores | Occamy_hardware | Occamy_compiler

type mechanism =
  | Standard
  | Delay_transmit
  | Delay_issue
  | Vl_after_drain
  | Em_simd_in_order
  | Retry_until_success

val policy :
  older:Occamy_isa.Instr.cls -> younger:Occamy_isa.Instr.cls ->
  agent * mechanism

val agent_name : agent -> string
val mechanism_name : mechanism -> string
