(** Instruction-ordering policy matrix — Table 2 of the paper.

    For every ⟨older, younger⟩ class pair, record which agent maintains
    ordering and by what mechanism. The simulator's behaviour is checked
    against this table in the test suite (e.g. `<VL>` changes only after
    the per-core SIMD pipeline drains; EM-SIMD instructions execute in
    order; younger scalars wait for older SVE write-backs). *)

type agent = Scalar_cores | Occamy_hardware | Occamy_compiler

type mechanism =
  | Standard
      (** conventional in-core dependence/ordering machinery *)
  | Delay_transmit
      (** delay transmitting the younger instruction to Occamy until
          scalar operands are ready / the scalar access completed *)
  | Delay_issue
      (** delay issuing the younger scalar instruction until the SVE /
          EM-SIMD instruction writes back or completes its access *)
  | Vl_after_drain
      (** `<VL>` changes only after the corresponding SIMD pipeline is
          drained *)
  | Em_simd_in_order
      (** EM-SIMD instructions execute in order on the EM-SIMD data path *)
  | Retry_until_success
      (** the compiler wraps `MSR <VL>` in a `<status>`-spin loop *)

let policy ~older ~younger =
  let open Occamy_isa.Instr in
  match older, younger with
  | Scalar, Scalar -> (Scalar_cores, Standard)
  | Scalar, (Sve | Em_simd) -> (Scalar_cores, Delay_transmit)
  | (Sve | Em_simd), Scalar -> (Scalar_cores, Delay_issue)
  | Sve, Sve -> (Occamy_hardware, Standard)
  | Sve, Em_simd -> (Occamy_hardware, Vl_after_drain)
  | Em_simd, Sve -> (Occamy_compiler, Retry_until_success)
  | Em_simd, Em_simd -> (Occamy_hardware, Em_simd_in_order)

let agent_name = function
  | Scalar_cores -> "scalar cores"
  | Occamy_hardware -> "Occamy hardware"
  | Occamy_compiler -> "Occamy compiler"

let mechanism_name = function
  | Standard -> "standard"
  | Delay_transmit -> "delay transmitting younger inst to Occamy"
  | Delay_issue -> "delay issuing younger scalar inst"
  | Vl_after_drain -> "<VL> changes after the SIMD pipeline is drained"
  | Em_simd_in_order -> "execute EM-SIMD insts in order"
  | Retry_until_success -> "repeatedly write <VL> until success"
