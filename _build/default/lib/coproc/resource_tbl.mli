(** The on-chip resource table ([ResourceTbl], Figures 3 and 5): per core
    the four dedicated registers `<OI>`, `<decision>`, `<VL>`, `<status>`,
    plus the shared `<AL>` — (4*C + 1) registers in all.

    It arbitrates vector-length grants: `MSR <VL>, l` from core [c]
    succeeds iff [c.<VL> + <AL> >= l] (§4.2.2; the pipeline-drain condition
    is the simulator's). Invariant: [<AL> + sum <VL> = total]. *)

type t

val create : total:int -> cores:int -> t

val vl : t -> core:int -> int
val status : t -> core:int -> int
val decision : t -> core:int -> int
val oi : t -> core:int -> Occamy_isa.Oi.t
val al : t -> int
val total : t -> int
val cores : t -> int

val set_decision : t -> core:int -> int -> unit
val set_oi : t -> core:int -> Occamy_isa.Oi.t -> unit

val try_set_vl : t -> core:int -> int -> bool
(** The atomic §4.2.2 update; [l = 0] releases and always succeeds.
    Sets `<status>` accordingly. *)

val invariant_holds : t -> bool
val pp : Format.formatter -> t -> unit
