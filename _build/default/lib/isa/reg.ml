(** Architectural register names.

    The EM-SIMD ISA (paper §3.2) extends an SVE-like vector ISA, so the
    register model mirrors AArch64: 32 scalar integer registers (x0..x31),
    32 architectural vector registers (z0..z31), and 32 scalar FP
    registers (f0..f31) that the compiler uses to carry reduction partials
    across vector-length reconfigurations (§6.4) and as temporaries in the
    non-vectorized loop variants. *)

type x = X of int  (** scalar integer register *)
type v = V of int  (** architectural vector register *)
type f = F of int  (** scalar floating-point register *)

let num_x = 32
let num_v = 32
let num_f = 32

let x i =
  if i < 0 || i >= num_x then invalid_arg "Reg.x: out of range";
  X i

let v i =
  if i < 0 || i >= num_v then invalid_arg "Reg.v: out of range";
  V i

let f i =
  if i < 0 || i >= num_f then invalid_arg "Reg.f: out of range";
  F i

let x_index (X i) = i
let v_index (V i) = i
let f_index (F i) = i

let pp_x ppf (X i) = Fmt.pf ppf "x%d" i
let pp_v ppf (V i) = Fmt.pf ppf "z%d" i
let pp_f ppf (F i) = Fmt.pf ppf "f%d" i

let equal_x (X a) (X b) = a = b
let equal_v (V a) (V b) = a = b
let equal_f (F a) (F b) = a = b
