(** Architectural register names of the EM-SIMD machine: 32 scalar integer
    registers (x0..x31), 32 architectural vector registers (z0..z31) and
    32 scalar FP registers (f0..f31, used for reduction carries across
    vector-length reconfigurations and scalar-variant temporaries). *)

type x = X of int  (** scalar integer register *)
type v = V of int  (** architectural vector register *)
type f = F of int  (** scalar floating-point register *)

val num_x : int
val num_v : int
val num_f : int

val x : int -> x
(** Checked constructors; raise [Invalid_argument] out of range. *)

val v : int -> v
val f : int -> f

val x_index : x -> int
val v_index : v -> int
val f_index : f -> int

val pp_x : Format.formatter -> x -> unit
val pp_v : Format.formatter -> v -> unit
val pp_f : Format.formatter -> f -> unit

val equal_x : x -> x -> bool
val equal_v : v -> v -> bool
val equal_f : f -> f -> bool
