(** The EM-SIMD + SVE-like instruction set.

    Three classes, matching Table 2: [Scalar] (integer/FP computation and
    control flow, executed in the scalar core), [Sve] (vector compute and
    ld/st, executed on the core's currently assembled SIMD data path), and
    [Em_simd] (MRS/MSR accesses to the Table-1 dedicated registers,
    executed in order on the co-processor's EM-SIMD data path).

    Vector memory instructions and predicated vector ops carry an optional
    element-count register with `whilelt`-style semantics, which is how
    the compiler forms loop tails without committing to a vector
    length. *)

type label = string
type cond = Eq | Ne | Lt | Le | Gt | Ge
type src = Reg of Reg.x | Imm of int
type iop = Addi | Subi | Muli | Mini | Maxi
type fop = Fadd | Fsub | Fmul | Fdiv

type t =
  | Li of Reg.x * int
  | Mov of Reg.x * Reg.x
  | Iop of iop * Reg.x * Reg.x * src
  | Fli of Reg.f * float
  | Fop of fop * Reg.f * Reg.f * Reg.f
  | Fvop of Vop.t * Reg.f * Reg.f list
      (** scalar mirror of a vector op (multi-version variants, §6.3) *)
  | Flw of { fdst : Reg.f; arr : int; idx : Reg.x }
  | Fsw of { fsrc : Reg.f; arr : int; idx : Reg.x }
  | B of label
  | Bc of cond * Reg.x * src * label
  | Halt
  | Msr of Sysreg.t * src
  | Msr_oi of Oi.t  (** write the `<OI>` pair (a phase-changing point) *)
  | Mrs of Reg.x * Sysreg.t
  | Vload of { dst : Reg.v; arr : int; idx : Reg.x; cnt : Reg.x option }
  | Vstore of { src : Reg.v; arr : int; idx : Reg.x; cnt : Reg.x option }
  | Vop of { op : Vop.t; dst : Reg.v; srcs : Reg.v list; cnt : Reg.x option }
      (** [cnt] is a merging predicate: elements beyond the count keep the
          destination's previous contents (reduction accumulators) *)
  | Vdup of Reg.v * Reg.f
  | Vred of { op : Vop.Red.t; dst : Reg.f; src : Reg.v }

(** Instruction class per Table 2. *)
type cls = Scalar | Sve | Em_simd

val classify : t -> cls
val is_vector_memory : t -> bool
val is_vector_compute : t -> bool

val flops_per_elem : t -> int
(** FLOPs per active element (0 for non-compute instructions). *)

val pp : ?arrays:(int -> string) -> Format.formatter -> t -> unit
(** SVE-flavoured assembly; [arrays] names memory operands. *)

val to_string : ?arrays:(int -> string) -> t -> string
