(** The EM-SIMD + SVE-like instruction set.

    Three instruction classes exist, matching Table 2 of the paper:

    - [Scalar]: integer/FP scalar computation and control flow, executed in
      the scalar core's own pipeline;
    - [SVE]: vector compute and vector load/store instructions, transmitted
      to the co-processor and executed on the core's currently assembled
      SIMD data path (width [128 * <VL>] bits);
    - [EM_SIMD]: MRS/MSR accesses to the dedicated registers of Table 1,
      executed in-order on the co-processor's EM-SIMD data path.

    Vector memory instructions carry an optional element-count register
    ([cnt]) with SVE `whilelt`-style semantics: only the first [cnt]
    elements are transferred; this is how the compiler forms loop tails
    without committing to a fixed vector length. *)

type label = string

type cond = Eq | Ne | Lt | Le | Gt | Ge

type src = Reg of Reg.x | Imm of int

type iop = Addi | Subi | Muli | Mini | Maxi

type fop = Fadd | Fsub | Fmul | Fdiv

type t =
  (* --- scalar integer --- *)
  | Li of Reg.x * int                       (* xd <- imm *)
  | Mov of Reg.x * Reg.x                    (* xd <- xs *)
  | Iop of iop * Reg.x * Reg.x * src        (* xd <- xs OP src *)
  (* --- scalar floating point (reduction carries §6.4, and the
         multi-version non-vectorized loop variants §6.3) --- *)
  | Fli of Reg.f * float
  | Fop of fop * Reg.f * Reg.f * Reg.f
  | Fvop of Vop.t * Reg.f * Reg.f list  (* scalar mirror of a vector op *)
  | Flw of { fdst : Reg.f; arr : int; idx : Reg.x }
  | Fsw of { fsrc : Reg.f; arr : int; idx : Reg.x }
  (* --- control flow --- *)
  | B of label
  | Bc of cond * Reg.x * src * label        (* branch if xs COND src *)
  | Halt
  (* --- EM-SIMD (Table 1 dedicated registers) --- *)
  | Msr of Sysreg.t * src                   (* write dedicated register *)
  | Msr_oi of Oi.t                          (* write the <OI> pair *)
  | Mrs of Reg.x * Sysreg.t                 (* read dedicated register *)
  (* --- SVE-like vector --- *)
  | Vload of { dst : Reg.v; arr : int; idx : Reg.x; cnt : Reg.x option }
  | Vstore of { src : Reg.v; arr : int; idx : Reg.x; cnt : Reg.x option }
  | Vop of { op : Vop.t; dst : Reg.v; srcs : Reg.v list; cnt : Reg.x option }
      (** [cnt] is a `whilelt`-style merging predicate: elements beyond the
          count keep the destination's previous contents. The compiler uses
          it for reduction accumulators so loop tails stay exact. *)
  | Vdup of Reg.v * Reg.f                   (* broadcast scalar into vector *)
  | Vred of { op : Vop.Red.t; dst : Reg.f; src : Reg.v }

(** Instruction class per Table 2. *)
type cls = Scalar | Sve | Em_simd

let classify = function
  | Li _ | Mov _ | Iop _ | Fli _ | Fop _ | Fvop _ | Flw _ | Fsw _ | B _ | Bc _
  | Halt ->
    Scalar
  | Msr _ | Msr_oi _ | Mrs _ -> Em_simd
  | Vload _ | Vstore _ | Vop _ | Vdup _ | Vred _ -> Sve

let is_vector_memory = function Vload _ | Vstore _ -> true | _ -> false
let is_vector_compute = function Vop _ | Vdup _ | Vred _ -> true | _ -> false

(** FLOPs performed per active 32-bit element (0 for non-compute). *)
let flops_per_elem = function
  | Vop { op; _ } -> Vop.flops_per_elem op
  | Vdup _ | Vred _ -> 0
  | _ -> 0

let pp_cond ppf c =
  Fmt.string ppf
    (match c with
    | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge")

let pp_src ppf = function
  | Reg r -> Reg.pp_x ppf r
  | Imm i -> Fmt.pf ppf "#%d" i

let pp_iop ppf o =
  Fmt.string ppf
    (match o with
    | Addi -> "add" | Subi -> "sub" | Muli -> "mul" | Mini -> "min" | Maxi -> "max")

let pp_fop ppf o =
  Fmt.string ppf
    (match o with Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv")

(** Pretty-print in an SVE-flavoured assembly syntax; [arrays] maps array
    ids to names for the memory operands. *)
let pp ?(arrays = fun i -> Printf.sprintf "a%d" i) ppf t =
  let pp_cnt ppf = function
    | None -> Fmt.string ppf "all"
    | Some r -> Reg.pp_x ppf r
  in
  match t with
  | Li (d, i) -> Fmt.pf ppf "mov %a, #%d" Reg.pp_x d i
  | Mov (d, s) -> Fmt.pf ppf "mov %a, %a" Reg.pp_x d Reg.pp_x s
  | Iop (o, d, s, src) ->
    Fmt.pf ppf "%a %a, %a, %a" pp_iop o Reg.pp_x d Reg.pp_x s pp_src src
  | Fli (d, v) -> Fmt.pf ppf "fmov %a, #%g" Reg.pp_f d v
  | Fop (o, d, a, b) ->
    Fmt.pf ppf "%a %a, %a, %a" pp_fop o Reg.pp_f d Reg.pp_f a Reg.pp_f b
  | Fvop (op, d, srcs) ->
    Fmt.pf ppf "%a.s %a, %a" Vop.pp op Reg.pp_f d
      (Fmt.list ~sep:(Fmt.any ", ") Reg.pp_f)
      srcs
  | Flw { fdst; arr; idx } ->
    Fmt.pf ppf "ldr %a, [%s, %a]" Reg.pp_f fdst (arrays arr) Reg.pp_x idx
  | Fsw { fsrc; arr; idx } ->
    Fmt.pf ppf "str %a, [%s, %a]" Reg.pp_f fsrc (arrays arr) Reg.pp_x idx
  | B l -> Fmt.pf ppf "b %s" l
  | Bc (c, r, s, l) ->
    Fmt.pf ppf "b.%a %a, %a, %s" pp_cond c Reg.pp_x r pp_src s l
  | Halt -> Fmt.string ppf "halt"
  | Msr (sr, s) -> Fmt.pf ppf "msr %s, %a" (Sysreg.name sr) pp_src s
  | Msr_oi oi -> Fmt.pf ppf "msr %s, %a" (Sysreg.name Sysreg.OI) Oi.pp oi
  | Mrs (d, sr) -> Fmt.pf ppf "mrs %a, %s" Reg.pp_x d (Sysreg.name sr)
  | Vload { dst; arr; idx; cnt } ->
    Fmt.pf ppf "ld1w %a, [%s, %a], %a" Reg.pp_v dst (arrays arr) Reg.pp_x idx
      pp_cnt cnt
  | Vstore { src; arr; idx; cnt } ->
    Fmt.pf ppf "st1w %a, [%s, %a], %a" Reg.pp_v src (arrays arr) Reg.pp_x idx
      pp_cnt cnt
  | Vop { op; dst; srcs; cnt } ->
    Fmt.pf ppf "%a %a, %a" Vop.pp op Reg.pp_v dst
      (Fmt.list ~sep:(Fmt.any ", ") Reg.pp_v)
      srcs;
    (match cnt with
    | None -> ()
    | Some r -> Fmt.pf ppf ", whilelt %a" Reg.pp_x r)
  | Vdup (d, s) -> Fmt.pf ppf "dup %a, %a" Reg.pp_v d Reg.pp_f s
  | Vred { op; dst; src } ->
    Fmt.pf ppf "%a %a, %a" Vop.Red.pp op Reg.pp_f dst Reg.pp_v src

let to_string ?arrays t = Fmt.str "%a" (pp ?arrays) t
