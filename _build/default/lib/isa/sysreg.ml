(** The five dedicated EM-SIMD registers of Table 1, plus [ZCR].

    All are accessed via MRS/MSR. `<VL>` is expressed at a granularity of
    128 bits: `<VL> = 2` means a 256-bit vector length (paper Table 1).
    [ZCR] is the standard SVE vector-length control register that the
    hardware mirrors on a successful reconfiguration (§4.2.2). *)

type t =
  | OI        (** operational intensity of the current phase (a pair) *)
  | DECISION  (** suggested (requested) vector length from the lane manager *)
  | VL        (** configured (current) vector length, in 128-bit granules *)
  | STATUS    (** 1 on a successful vector-length change, 0 on failure *)
  | AL        (** number of free SIMD lanes (granules) available, shared *)
  | ZCR       (** SVE vector-length control register, mirrors <VL> *)

let all = [ OI; DECISION; VL; STATUS; AL; ZCR ]

let name = function
  | OI -> "<OI>"
  | DECISION -> "<decision>"
  | VL -> "<VL>"
  | STATUS -> "<status>"
  | AL -> "<AL>"
  | ZCR -> "<ZCR>"

let description = function
  | OI -> "Operational Intensity of a Phase"
  | DECISION -> "Suggested (i.e., Requested) Vector Length"
  | VL -> "Configured (i.e., Current) Vector Length"
  | STATUS -> "Success/Fail for Changing Vector Length"
  | AL -> "Number of Free SIMD Lanes Available"
  | ZCR -> "SVE Vector Length Control Register"

(** Which registers are per-core vs shared by all cores: `<AL>` is the one
    dedicated register shared by all cores (§4.2.1: "(4*C+1) 32-bit
    registers"). *)
let is_shared = function AL -> true | OI | DECISION | VL | STATUS | ZCR -> false

let writable_by_software = function
  | OI | VL -> true
  | DECISION | STATUS | AL | ZCR -> false

let equal (a : t) (b : t) = a = b
let pp ppf t = Fmt.string ppf (name t)
