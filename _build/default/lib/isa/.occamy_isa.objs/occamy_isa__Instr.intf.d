lib/isa/instr.mli: Format Oi Reg Sysreg Vop
