lib/isa/oi.mli: Format
