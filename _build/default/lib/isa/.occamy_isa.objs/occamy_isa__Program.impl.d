lib/isa/program.ml: Array Fmt Hashtbl Instr List Printf
