lib/isa/lane.mli:
