lib/isa/sysreg.ml: Fmt
