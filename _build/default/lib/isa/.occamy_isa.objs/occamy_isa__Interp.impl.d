lib/isa/interp.ml: Array Float Instr Lane List Oi Printf Program Reg Sysreg Vop
