lib/isa/lane.ml:
