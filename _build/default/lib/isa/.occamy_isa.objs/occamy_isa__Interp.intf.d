lib/isa/interp.mli: Oi Program Reg
