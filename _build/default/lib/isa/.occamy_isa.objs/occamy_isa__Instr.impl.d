lib/isa/instr.ml: Fmt Oi Printf Reg Sysreg Vop
