lib/isa/sysreg.mli: Format
