lib/isa/vop.ml: Float Fmt
