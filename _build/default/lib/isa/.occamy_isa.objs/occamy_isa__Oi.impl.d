lib/isa/oi.ml: Fmt
