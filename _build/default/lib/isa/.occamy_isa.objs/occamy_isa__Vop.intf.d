lib/isa/vop.mli: Format
