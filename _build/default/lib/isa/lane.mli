(** Lane-granularity constants: `<VL>` counts 128-bit granules (one ExeBU
    / one RegBlk slice); the paper's figures count 32-bit FP lanes, four
    per granule. *)

val bits_per_granule : int
val bytes_per_granule : int
val f32_per_granule : int

val elems_of_granules : int -> int
(** Granules to f32 elements. *)

val granules_of_lanes : int -> int
(** f32 lanes to granules; raises unless a multiple of 4. *)

val lanes_of_granules : int -> int
