(** Vector ALU operations with the timing metadata the simulator and the
    Equation-5 analysis need. *)

type t = Add | Sub | Mul | Div | Fma | Max | Min | Abs | Neg | Sqrt

val all : t list

val arity : t -> int
(** Operand count; [Fma] takes three: [dst <- s1 + s2*s3]. *)

val latency : t -> int
(** Pipelined execution latency in cycles. *)

val flops_per_elem : t -> int
(** FLOPs per 32-bit element; FMA counts two. *)

val name : t -> string
val pp : Format.formatter -> t -> unit

val apply : t -> float array -> float
(** Element-wise semantics; raises on arity mismatch. *)

(** Reduction operators (the [Vred] instructions). *)
module Red : sig
  type t = Sum | Maxr | Minr

  val name : t -> string
  val pp : Format.formatter -> t -> unit

  val identity : t -> float
  (** The neutral element the accumulator restarts from. *)

  val combine : t -> float -> float -> float
end
