(** The five dedicated EM-SIMD registers of Table 1, plus the standard SVE
    [ZCR] register the hardware mirrors on a successful vector-length
    reconfiguration (§4.2.2). `<VL>` counts 128-bit granules. *)

type t =
  | OI        (** operational intensity of the current phase (a pair) *)
  | DECISION  (** suggested vector length from the lane manager *)
  | VL        (** configured vector length, in 128-bit granules *)
  | STATUS    (** 1 on a successful vector-length change, 0 on failure *)
  | AL        (** free SIMD lanes (granules) available, machine-wide *)
  | ZCR       (** SVE vector-length control register, mirrors <VL> *)

val all : t list
val name : t -> string
val description : t -> string

val is_shared : t -> bool
(** `<AL>` is the single dedicated register shared by all cores. *)

val writable_by_software : t -> bool
(** Only `<OI>` and `<VL>` accept MSR writes from the program. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
