(** Programs: resolved instruction arrays plus array declarations. Labels
    are resolved to indices at build time, so executors never do string
    lookups. *)

type array_decl = { arr_name : string; arr_size : int; arr_id : int }

type t = {
  name : string;
  code : Instr.t array;
  targets : int array;  (** branch-target index per instruction, or -1 *)
  arrays : array_decl array;
  labels : (string * int) list;
}

val length : t -> int
val array_name : t -> int -> string

val class_counts : t -> int * int * int
(** (scalar, SVE, EM-SIMD) static instruction counts. *)

val pp : Format.formatter -> t -> unit
(** Disassembly with labels and array declarations. *)

val to_string : t -> string

(** Imperative builder with forward-label support. *)
module Builder : sig
  type builder

  val create : string -> builder
  val emit : builder -> Instr.t -> unit
  val emit_all : builder -> Instr.t list -> unit

  val fresh_label : builder -> string -> Instr.label
  (** A unique label with the given prefix. *)

  val place_label : builder -> Instr.label -> unit
  (** Bind a label to the next emitted instruction; raises on
      duplicates. *)

  val declare_array : builder -> name:string -> size:int -> int
  (** Returns the array id used by memory instructions. *)

  val finish : builder -> t
  (** Resolves branch targets; raises on unbound labels. *)
end
