(** Programs: resolved instruction arrays plus array declarations.

    A program is what the compiler emits for one workload (the
    concatenation of its phases) and what both executors consume. Labels
    are resolved to instruction indices at [Builder.finish] time so the
    executors never do string lookups. *)

type array_decl = {
  arr_name : string;
  arr_size : int;       (* number of 32-bit elements *)
  arr_id : int;
}

type t = {
  name : string;
  code : Instr.t array;
  targets : int array;
    (* for each instruction index, the branch-target index (or -1) *)
  arrays : array_decl array;
  labels : (string * int) list;  (* retained for disassembly *)
}

let length t = Array.length t.code

let array_name t id =
  if id < 0 || id >= Array.length t.arrays then Printf.sprintf "a%d" id
  else t.arrays.(id).arr_name

(** Count of instructions per class, useful for quick sanity checks. *)
let class_counts t =
  let scalar = ref 0 and sve = ref 0 and em = ref 0 in
  Array.iter
    (fun i ->
      match Instr.classify i with
      | Instr.Scalar -> incr scalar
      | Instr.Sve -> incr sve
      | Instr.Em_simd -> incr em)
    t.code;
  (!scalar, !sve, !em)

let pp ppf t =
  let arrays id = array_name t id in
  let label_at =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (l, i) -> Hashtbl.add tbl i l) t.labels;
    fun i -> Hashtbl.find_all tbl i
  in
  Fmt.pf ppf "; program %s (%d instrs, %d arrays)@." t.name
    (Array.length t.code) (Array.length t.arrays);
  Array.iter
    (fun d -> Fmt.pf ppf "; array %s[%d]@." d.arr_name d.arr_size)
    t.arrays;
  Array.iteri
    (fun i instr ->
      List.iter (fun l -> Fmt.pf ppf "%s:@." l) (label_at i);
      Fmt.pf ppf "  %a@." (Instr.pp ~arrays) instr)
    t.code

let to_string t = Fmt.str "%a" pp t

(** Imperative program builder with forward-label support. *)
module Builder = struct
  type builder = {
    bname : string;
    mutable instrs : Instr.t list;  (* reversed *)
    mutable count : int;
    mutable decls : array_decl list;  (* reversed *)
    mutable next_arr : int;
    mutable blabels : (string * int) list;
    mutable fresh : int;
  }

  let create name =
    {
      bname = name;
      instrs = [];
      count = 0;
      decls = [];
      next_arr = 0;
      blabels = [];
      fresh = 0;
    }

  let emit b i =
    b.instrs <- i :: b.instrs;
    b.count <- b.count + 1

  let emit_all b is = List.iter (emit b) is

  let fresh_label b prefix =
    b.fresh <- b.fresh + 1;
    Printf.sprintf ".%s_%d" prefix b.fresh

  let place_label b l =
    if List.mem_assoc l b.blabels then
      invalid_arg (Printf.sprintf "Builder.place_label: duplicate label %s" l);
    b.blabels <- (l, b.count) :: b.blabels

  let declare_array b ~name ~size =
    if size < 0 then invalid_arg "Builder.declare_array: negative size";
    let id = b.next_arr in
    b.next_arr <- id + 1;
    b.decls <- { arr_name = name; arr_size = size; arr_id = id } :: b.decls;
    id

  let finish b =
    let code = Array.of_list (List.rev b.instrs) in
    let labels = List.rev b.blabels in
    let find l =
      match List.assoc_opt l labels with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Builder.finish: unbound label %s" l)
    in
    let targets =
      Array.map
        (function
          | Instr.B l -> find l
          | Instr.Bc (_, _, _, l) -> find l
          | _ -> -1)
        code
    in
    {
      name = b.bname;
      code;
      targets;
      arrays = Array.of_list (List.rev b.decls);
      labels;
    }
end
