(** Lane-granularity constants shared by every layer.

    The EM-SIMD ISA expresses vector lengths at a granularity of 128 bits
    (one ExeBU / one RegBlk slice); the paper's figures count 32-bit
    floating-point lanes. One granule therefore carries four f32 lanes. *)

let bits_per_granule = 128
let bytes_per_granule = 16
let f32_per_granule = 4

(** Convert a `<VL>` value (granules) to f32 elements. *)
let elems_of_granules g = g * f32_per_granule

(** Convert a figure-style lane count (f32 lanes) to granules; lane counts
    in the paper are always multiples of 4. *)
let granules_of_lanes lanes =
  if lanes mod f32_per_granule <> 0 then
    invalid_arg "Lane.granules_of_lanes: not a multiple of 4";
  lanes / f32_per_granule

let lanes_of_granules g = g * f32_per_granule
