(** Hash-consed expression DAG over a loop body.

    Identical subexpressions (including repeated loads of the same
    [array, offset]) are shared, which is both the compiler's CSE pass and
    the "with data reuse considered" part of the Equation-5 analysis: the
    OI analysis and the vectorizer must agree on how many instructions the
    body costs, so they consume the same DAG. *)

type node =
  | Nload of Loop_ir.array_ref
  | Nconst of float
  | Nparam of string * float
  | Nop of Occamy_isa.Vop.t * int list  (* operand node ids *)

type t = {
  nodes : node array;  (* topologically ordered: operands precede users *)
  stores : (Loop_ir.array_ref * int) list;
  reduces : (Occamy_isa.Vop.Red.t * string * int) list;
}

let build (body : Loop_ir.stmt list) =
  let tbl : (node, int) Hashtbl.t = Hashtbl.create 32 in
  let nodes = ref [] in
  let count = ref 0 in
  let intern node =
    match Hashtbl.find_opt tbl node with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add tbl node id;
      nodes := node :: !nodes;
      id
  in
  let rec of_expr (e : Loop_ir.expr) =
    match e with
    | Loop_ir.Load r -> intern (Nload r)
    | Loop_ir.Const v -> intern (Nconst v)
    | Loop_ir.Param (n, v) -> intern (Nparam (n, v))
    | Loop_ir.Op (op, args) -> intern (Nop (op, List.map of_expr args))
  in
  let stores = ref [] and reduces = ref [] in
  List.iter
    (fun stmt ->
      match stmt with
      | Loop_ir.Store (r, e) -> stores := (r, of_expr e) :: !stores
      | Loop_ir.Reduce (op, name, e) ->
        reduces := (op, name, of_expr e) :: !reduces)
    body;
  {
    nodes = Array.of_list (List.rev !nodes);
    stores = List.rev !stores;
    reduces = List.rev !reduces;
  }

let num_nodes t = Array.length t.nodes

let count_ops t =
  Array.fold_left
    (fun n node -> match node with Nop _ -> n + 1 | _ -> n)
    0 t.nodes

let count_loads t =
  Array.fold_left
    (fun n node -> match node with Nload _ -> n + 1 | _ -> n)
    0 t.nodes

let count_flops t =
  Array.fold_left
    (fun n node ->
      match node with
      | Nop (op, _) -> n + Occamy_isa.Vop.flops_per_elem op
      | _ -> n)
    0 t.nodes

let params t =
  Array.to_list t.nodes
  |> List.filter_map (function Nparam (n, v) -> Some (n, v) | _ -> None)

(** For each node id, the index of its last use (by another node, a store
    or a reduce); used for register reuse during lowering. Node ids count
    0..n-1, stores/reduces use positions n.. in DAG order. *)
let last_uses t =
  let n = num_nodes t in
  let last = Array.init n (fun i -> i) in
  Array.iteri
    (fun i node ->
      match node with
      | Nop (_, args) -> List.iter (fun a -> last.(a) <- max last.(a) i) args
      | _ -> ())
    t.nodes;
  let pos = ref n in
  List.iter
    (fun (_, id) ->
      last.(id) <- max last.(id) !pos;
      incr pos)
    t.stores;
  List.iter
    (fun (_, _, id) ->
      last.(id) <- max last.(id) !pos;
      incr pos)
    t.reduces;
  last
