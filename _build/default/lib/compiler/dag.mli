(** Hash-consed expression DAG over a loop body: identical subexpressions
    (including repeated loads) are shared — simultaneously the compiler's
    CSE pass and the "with data reuse considered" part of the Equation-5
    analysis. The vectorizer and the analysis consume the same DAG so
    they agree on instruction counts. *)

type node =
  | Nload of Loop_ir.array_ref
  | Nconst of float
  | Nparam of string * float
  | Nop of Occamy_isa.Vop.t * int list  (** operand node ids *)

type t = {
  nodes : node array;  (** topologically ordered *)
  stores : (Loop_ir.array_ref * int) list;
  reduces : (Occamy_isa.Vop.Red.t * string * int) list;
}

val build : Loop_ir.stmt list -> t
val num_nodes : t -> int
val count_ops : t -> int
val count_loads : t -> int
val count_flops : t -> int
val params : t -> (string * float) list

val last_uses : t -> int array
(** Per node, the position of its last use (for register reuse). *)
