(** Elastic vectorization: lower a loop body DAG to vector-length-agnostic
    EM-SIMD code (§6.2, §6.4).

    The lowered pieces are assembled by {!Codegen} into the Figure-9
    skeleton. What this module guarantees:

    - the per-iteration body only ever touches the first [k = x5] elements
      (loads/stores carry the count register), so it is correct under any
      vector length the lazy-partitioning code switches to;
    - loop-invariant values live in [init], re-executed after every
      reconfiguration (register contents do not survive a `MSR <VL>`);
    - each reduction keeps a scalar *carry* register that survives
      reconfigurations: [save_partials] folds the vector accumulator into
      the carry right before a vector-length change, [init] restarts the
      accumulator at the identity, and [finalize] produces the final value
      and stores it to the reduction's one-element output array. *)

module Instr = Occamy_isa.Instr
module Reg = Occamy_isa.Reg
module Vop = Occamy_isa.Vop

type reduction = {
  red_op : Vop.Red.t;
  red_name : string;
  acc : Reg.v;     (* vector accumulator *)
  carry : Reg.f;   (* scalar partial, survives reconfiguration *)
  out_array : string;
}

type t = {
  init : Instr.t list;           (* invariant init, target of the re-init jump *)
  scalar_init : Instr.t list;    (* param loads for the non-vectorized variant *)
  vbody : Instr.t list;          (* vector body: expects x0 = i, x5 = k *)
  sbody : Instr.t list;          (* scalar body: expects x0 = i *)
  carry_init : Instr.t list;     (* reset carries; once per phase execution *)
  save_partials : Instr.t list;  (* fold accumulators into carries *)
  vfinalize : Instr.t list;      (* vector-path epilogue of the reductions *)
  sfinalize : Instr.t list;      (* scalar-path epilogue *)
  reductions : reduction list;
  vregs_used : int;
}

(* The scalar mirror of a reduction combine. *)
let vop_of_red = function
  | Vop.Red.Sum -> Vop.Add
  | Vop.Red.Maxr -> Vop.Max
  | Vop.Red.Minr -> Vop.Min

let reduction_out_array red_name = red_name ^ ".out"

(* Simple last-use register reuse over the DAG. [alloc] hands out registers
   from a free pool, [free] returns them once the node's last use passed. *)
module Pool = struct
  type t = { mutable free : int list; mutable high : int }

  let create ids = { free = ids; high = 0 }

  let alloc t what =
    match t.free with
    | [] -> invalid_arg (Printf.sprintf "Vectorize: out of %s registers" what)
    | r :: rest ->
      t.free <- rest;
      t.high <- max t.high (r + 1);
      r

  let release t r = t.free <- r :: t.free
end

(* Address temporaries: one per distinct non-zero stencil offset. *)
let offset_slots body =
  let offsets = ref [] in
  let note (r : Loop_ir.array_ref) =
    if r.Loop_ir.offset <> 0 && not (List.mem r.Loop_ir.offset !offsets) then
      offsets := r.Loop_ir.offset :: !offsets
  in
  List.iter
    (fun stmt ->
      Loop_ir.expr_iter
        (function Loop_ir.Load r -> note r | _ -> ())
        (Loop_ir.stmt_expr stmt);
      match stmt with Loop_ir.Store (r, _) -> note r | Loop_ir.Reduce _ -> ())
    body;
  let offsets = List.rev !offsets in
  if List.length offsets > Abi.max_addr_temps then
    invalid_arg "Vectorize: too many distinct stencil offsets";
  List.mapi (fun slot off -> (off, slot)) offsets

let addr_for slots (r : Loop_ir.array_ref) =
  if r.Loop_ir.offset = 0 then Abi.xi
  else Abi.xaddr (List.assoc r.Loop_ir.offset slots)

let addr_setup slots =
  List.map
    (fun (off, slot) ->
      Instr.Iop (Instr.Addi, Abi.xaddr slot, Abi.xi, Instr.Imm off))
    slots

let lower ~lookup (l : Loop_ir.t) =
  let dag = Dag.build l.Loop_ir.body in
  let n = Dag.num_nodes dag in
  let last = Dag.last_uses dag in
  let slots = offset_slots l.Loop_ir.body in

  (* --- static assignments: params and reduction accumulators --- *)
  let params = Dag.params dag in
  let nparams = List.length params in
  let param_vreg =
    List.mapi (fun i (name, v) -> (name, (v, Reg.v i))) params
  in
  let reductions =
    List.mapi
      (fun i (op, name, _) ->
        {
          red_op = op;
          red_name = name;
          acc = Reg.v (nparams + i);
          carry = Abi.fcarry i;
          out_array = reduction_out_array name;
        })
      dag.Dag.reduces
  in
  let nstatic = nparams + List.length reductions in
  if nstatic >= Reg.num_v then invalid_arg "Vectorize: too many invariants";

  (* --- invariant init block (re-run after every reconfiguration) --- *)
  (* Parameters are compile-time constants: broadcast them through the
     scratch register rather than pinning a scalar FP register each — a
     kernel like a 3x3 colour matrix has nine of them. The scalar variant
     rematerialises them at use. *)
  let scalar_init = [] in
  let init =
    List.concat_map
      (fun (_, (v, zr)) -> [ Instr.Fli (Abi.ffold, v); Instr.Vdup (zr, Abi.ffold) ])
      param_vreg
    @ List.concat_map
        (fun r ->
          [
            Instr.Fli (Abi.ffold, Vop.Red.identity r.red_op);
            Instr.Vdup (r.acc, Abi.ffold);
          ])
        reductions
  in
  let carry_init =
    List.map
      (fun r -> Instr.Fli (r.carry, Vop.Red.identity r.red_op))
      reductions
  in
  let save_partials =
    List.concat_map
      (fun r ->
        [
          Instr.Vred { op = r.red_op; dst = Abi.ffold; src = r.acc };
          Instr.Fvop (vop_of_red r.red_op, r.carry, [ r.carry; Abi.ffold ]);
        ])
      reductions
  in

  (* --- vector body --- *)
  let vinstrs = ref [] in
  let emit i = vinstrs := i :: !vinstrs in
  let pool =
    Pool.create (List.init (Reg.num_v - nstatic) (fun i -> nstatic + i))
  in
  let node_reg = Array.make n (-1) in
  List.iter emit (addr_setup slots);
  Array.iteri
    (fun id node ->
      (match node with
      | Dag.Nload r ->
        let zr = Pool.alloc pool "vector" in
        node_reg.(id) <- zr;
        emit
          (Instr.Vload
             {
               dst = Reg.v zr;
               arr = lookup r.Loop_ir.base;
               idx = addr_for slots r;
               cnt = Some Abi.xk;
             })
      | Dag.Nconst v ->
        let zr = Pool.alloc pool "vector" in
        node_reg.(id) <- zr;
        emit (Instr.Fli (Abi.ffold, v));
        emit (Instr.Vdup (Reg.v zr, Abi.ffold))
      | Dag.Nparam (name, _) ->
        let _, zr = List.assoc name param_vreg in
        node_reg.(id) <- Reg.v_index zr
      | Dag.Nop (op, args) ->
        let srcs = List.map (fun a -> Reg.v node_reg.(a)) args in
        (* Free operands whose last use is this node before allocating the
           destination, so chains reuse registers. *)
        List.iter
          (fun a ->
            if last.(a) = id && node_reg.(a) >= nstatic then
              Pool.release pool node_reg.(a))
          (List.sort_uniq compare args);
        let zr = Pool.alloc pool "vector" in
        node_reg.(id) <- zr;
        emit (Instr.Vop { op; dst = Reg.v zr; srcs; cnt = None }));
      ())
    dag.Dag.nodes;
  let pos = ref n in
  List.iter
    (fun (r, id) ->
      emit
        (Instr.Vstore
           {
             src = Reg.v node_reg.(id);
             arr = lookup r.Loop_ir.base;
             idx = addr_for slots r;
             cnt = Some Abi.xk;
           });
      if last.(id) = !pos && node_reg.(id) >= nstatic then
        Pool.release pool node_reg.(id);
      incr pos)
    dag.Dag.stores;
  List.iteri
    (fun i (op, _, id) ->
      let r = List.nth reductions i in
      ignore op;
      (* Merging predication: only the first k elements accumulate, so a
         loop tail cannot pollute the reduction with inactive lanes. *)
      emit
        (Instr.Vop
           {
             op = vop_of_red r.red_op;
             dst = r.acc;
             srcs = [ r.acc; Reg.v node_reg.(id) ];
             cnt = Some Abi.xk;
           });
      if last.(id) = !pos && node_reg.(id) >= nstatic then
        Pool.release pool node_reg.(id);
      incr pos)
    dag.Dag.reduces;
  let vbody = List.rev !vinstrs in

  (* --- scalar body (the multi-version non-vectorized variant) --- *)
  let sinstrs = ref [] in
  let semit i = sinstrs := i :: !sinstrs in
  ignore nparams;
  let fpool_ids =
    List.filter
      (fun i -> i >= Abi.first_temp_freg && i < Reg.num_f)
      (List.init Reg.num_f Fun.id)
  in
  let fpool = Pool.create fpool_ids in
  let node_freg = Array.make n (-1) in
  List.iter semit (addr_setup slots);
  Array.iteri
    (fun id node ->
      match node with
      | Dag.Nload r ->
        let fr = Pool.alloc fpool "scalar FP" in
        node_freg.(id) <- fr;
        semit
          (Instr.Flw
             { fdst = Reg.f fr; arr = lookup r.Loop_ir.base; idx = addr_for slots r })
      | Dag.Nconst v ->
        let fr = Pool.alloc fpool "scalar FP" in
        node_freg.(id) <- fr;
        semit (Instr.Fli (Reg.f fr, v))
      | Dag.Nparam (_, v) ->
        (* Rematerialise the invariant: it is a compile-time constant. *)
        let fr = Pool.alloc fpool "scalar FP" in
        node_freg.(id) <- fr;
        semit (Instr.Fli (Reg.f fr, v))
      | Dag.Nop (op, args) ->
        let srcs = List.map (fun a -> Reg.f node_freg.(a)) args in
        List.iter
          (fun a ->
            if last.(a) = id && node_freg.(a) >= Abi.first_temp_freg
            then Pool.release fpool node_freg.(a))
          (List.sort_uniq compare args);
        let fr = Pool.alloc fpool "scalar FP" in
        node_freg.(id) <- fr;
        semit (Instr.Fvop (op, Reg.f fr, srcs)))
    dag.Dag.nodes;
  let spos = ref n in
  List.iter
    (fun (r, id) ->
      semit
        (Instr.Fsw
           { fsrc = Reg.f node_freg.(id); arr = lookup r.Loop_ir.base;
             idx = addr_for slots r });
      if last.(id) = !spos && node_freg.(id) >= Abi.first_temp_freg then
        Pool.release fpool node_freg.(id);
      incr spos)
    dag.Dag.stores;
  List.iteri
    (fun i (_, _, id) ->
      let r = List.nth reductions i in
      semit
        (Instr.Fvop
           (vop_of_red r.red_op, r.carry, [ r.carry; Reg.f node_freg.(id) ]));
      if last.(id) = !spos && node_freg.(id) >= Abi.first_temp_freg then
        Pool.release fpool node_freg.(id);
      incr spos)
    dag.Dag.reduces;
  let sbody = List.rev !sinstrs in

  (* --- reduction finalization --- *)
  let store_carries =
    List.concat_map
      (fun r ->
        [
          Instr.Li (Abi.xred, 0);
          Instr.Fsw { fsrc = r.carry; arr = lookup r.out_array; idx = Abi.xred };
        ])
      reductions
  in
  let vfinalize = save_partials @ store_carries in
  let sfinalize = store_carries in
  {
    init;
    scalar_init;
    vbody;
    sbody;
    carry_init;
    save_partials;
    vfinalize;
    sfinalize;
    reductions;
    vregs_used = max nstatic pool.Pool.high;
  }
