(** Register conventions used by the generated code (the compiler's ABI).

    Scalar integer registers (Figure 9 uses X1-X4 for the EM-SIMD
    handshake; we fix the full set):

    - x0: element index [i]
    - x1: loop bound [n]
    - x2: current vector-length target (Figure 9's X2)
    - x3: `<status>` scratch (X3)
    - x4: `<decision>` scratch (X4)
    - x5: active element count [k = min(vl*4, n-i)]
    - x6: elements per full vector ([<ZCR>*4])
    - x7: scratch (remaining count, version checks)
    - x8: outer-loop counter (hoisting support)
    - x9..x12: stencil address temporaries (i + offset)
    - x13: scratch for reduction stores

    Scalar FP registers:

    - f0..f5: reduction carries (live across reconfigurations, §6.4)
    - f6: reduction fold / broadcast scratch
    - f7 upwards: scalar-variant temporaries (invariants are rematerialised). *)

let xi = Occamy_isa.Reg.x 0
let xn = Occamy_isa.Reg.x 1
let xvl = Occamy_isa.Reg.x 2
let xstatus = Occamy_isa.Reg.x 3
let xdecision = Occamy_isa.Reg.x 4
let xk = Occamy_isa.Reg.x 5
let xelems = Occamy_isa.Reg.x 6
let xtmp = Occamy_isa.Reg.x 7
let xouter = Occamy_isa.Reg.x 8

let addr_temps = [| 9; 10; 11; 12 |]
let xaddr slot = Occamy_isa.Reg.x addr_temps.(slot)
let max_addr_temps = Array.length addr_temps

let xred = Occamy_isa.Reg.x 13

let max_reduction_carries = 6
let fcarry i =
  if i >= max_reduction_carries then
    invalid_arg "Abi.fcarry: too many reductions in one loop";
  Occamy_isa.Reg.f i

let ffold = Occamy_isa.Reg.f 6
let first_temp_freg = 7
