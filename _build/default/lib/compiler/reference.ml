(** Scalar reference semantics for the loop IR.

    This is the ground truth the §6.4 correctness property is tested
    against: executing a compiled workload (through the functional ISA
    interpreter, under *any* schedule of vector-length reconfigurations)
    must leave memory in the same state as this direct evaluation of the
    loop nest. *)

let rec eval_expr ~mem ~i (e : Loop_ir.expr) =
  match e with
  | Loop_ir.Load { base; offset } ->
    let arr = mem base in
    arr.(i + offset)
  | Loop_ir.Const v -> v
  | Loop_ir.Param (_, v) -> v
  | Loop_ir.Op (op, args) ->
    Occamy_isa.Vop.apply op
      (Array.of_list (List.map (eval_expr ~mem ~i) args))

(** Run one loop (all its [outer_reps]) against [mem : name -> array],
    mutating stored arrays and writing each reduction's final value into
    its one-element output array. *)
let run_loop ~mem (l : Loop_ir.t) =
  let lo = max 0 (-Loop_ir.min_offset l) in
  let n = lo + l.Loop_ir.trip_count in
  for _rep = 1 to l.Loop_ir.outer_reps do
    let accs = Hashtbl.create 4 in
    List.iter
      (fun stmt ->
        match stmt with
        | Loop_ir.Reduce (op, name, _) ->
          Hashtbl.replace accs name (Occamy_isa.Vop.Red.identity op)
        | Loop_ir.Store _ -> ())
      l.Loop_ir.body;
    for i = lo to n - 1 do
      List.iter
        (fun stmt ->
          match stmt with
          | Loop_ir.Store ({ base; offset }, e) ->
            let arr = mem base in
            arr.(i + offset) <- eval_expr ~mem ~i e
          | Loop_ir.Reduce (op, name, e) ->
            let v = eval_expr ~mem ~i e in
            Hashtbl.replace accs name
              (Occamy_isa.Vop.Red.combine op (Hashtbl.find accs name) v))
        l.Loop_ir.body
    done;
    Hashtbl.iter
      (fun name v ->
        let out = mem (Vectorize.reduction_out_array name) in
        out.(0) <- v)
      accs
  done

(** Run a whole workload (list of loops, in phase order). *)
let run ~mem loops = List.iter (run_loop ~mem) loops
