(** Scalar reference semantics for the loop IR — the ground truth the
    §6.4 correctness property tests the compiled code against. *)

val eval_expr : mem:(string -> float array) -> i:int -> Loop_ir.expr -> float

val run_loop : mem:(string -> float array) -> Loop_ir.t -> unit
(** Execute one loop (all outer repetitions), mutating the arrays and
    writing each reduction's final value into its one-element output
    array. *)

val run : mem:(string -> float array) -> Loop_ir.t list -> unit
