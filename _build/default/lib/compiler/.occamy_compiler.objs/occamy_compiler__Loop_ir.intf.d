lib/compiler/loop_ir.mli: Format Occamy_isa Occamy_mem
