lib/compiler/codegen.mli: Loop_ir Occamy_core
