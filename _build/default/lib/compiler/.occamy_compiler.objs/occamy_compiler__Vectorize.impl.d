lib/compiler/vectorize.ml: Abi Array Dag Fun List Loop_ir Occamy_isa Printf
