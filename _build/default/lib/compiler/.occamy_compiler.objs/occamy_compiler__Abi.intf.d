lib/compiler/abi.mli: Occamy_isa
