lib/compiler/vectorize.mli: Loop_ir Occamy_isa
