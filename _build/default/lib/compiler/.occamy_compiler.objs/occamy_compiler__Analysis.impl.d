lib/compiler/analysis.ml: Dag Fmt List Loop_ir Occamy_isa
