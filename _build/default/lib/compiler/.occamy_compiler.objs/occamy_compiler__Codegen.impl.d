lib/compiler/codegen.ml: Abi Analysis Array Hashtbl List Loop_ir Occamy_core Occamy_isa Occamy_mem Vectorize
