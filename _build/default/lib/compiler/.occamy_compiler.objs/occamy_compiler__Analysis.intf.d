lib/compiler/analysis.mli: Format Loop_ir Occamy_isa
