lib/compiler/loop_ir.ml: Fmt Hashtbl List Occamy_isa Occamy_mem Printf Stdlib
