lib/compiler/abi.ml: Array Occamy_isa
