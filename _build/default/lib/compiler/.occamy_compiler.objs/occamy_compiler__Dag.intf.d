lib/compiler/dag.mli: Loop_ir Occamy_isa
