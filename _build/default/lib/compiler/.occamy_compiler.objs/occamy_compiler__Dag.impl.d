lib/compiler/dag.ml: Array Hashtbl List Loop_ir Occamy_isa
