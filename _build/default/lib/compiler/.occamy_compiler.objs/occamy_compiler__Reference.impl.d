lib/compiler/reference.ml: Array Hashtbl List Loop_ir Occamy_isa Vectorize
