lib/compiler/reference.mli: Loop_ir
