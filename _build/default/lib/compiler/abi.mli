(** Register conventions of the generated code: the Figure-9 handshake
    registers (x2-x4), loop control (x0/x1/x5-x8), stencil address
    temporaries, reduction carries (f0..f5, live across reconfigurations)
    and the broadcast/fold scratch (f6). *)

(** [xi] = element index, [xn] = loop bound, [xvl] = current vector-length
    target (X2), [xstatus]/[xdecision] = the Figure-9 handshake scratches
    (X3/X4), [xk] = active element count, [xelems] = elements per full
    vector, [xouter] = outer-loop counter, [xred] = reduction-store
    scratch. *)

val xi : Occamy_isa.Reg.x
val xn : Occamy_isa.Reg.x
val xvl : Occamy_isa.Reg.x
val xstatus : Occamy_isa.Reg.x
val xdecision : Occamy_isa.Reg.x
val xk : Occamy_isa.Reg.x
val xelems : Occamy_isa.Reg.x
val xtmp : Occamy_isa.Reg.x
val xouter : Occamy_isa.Reg.x
val xred : Occamy_isa.Reg.x

val addr_temps : int array
val xaddr : int -> Occamy_isa.Reg.x
val max_addr_temps : int

val max_reduction_carries : int
val fcarry : int -> Occamy_isa.Reg.f
val ffold : Occamy_isa.Reg.f
val first_temp_freg : int
