(** The greedy lane-partitioning algorithm of §5.2.

    Given the phase behaviours of the co-running workloads (from their
    `<OI>` registers) and [total] ExeBUs, produce a lane-partition plan
    {vl_1 .. vl_M} subject to Equation (1): every active workload receives
    at least one ExeBU (no starvation) and the plan never over-commits.

    Steps, as in the paper:
    1. one ExeBU to each workload currently executing a phase;
    2. iteratively: sort workloads by decreasing net performance gain for
       one extra ExeBU (Equation 3) and give one to each workload with a
       positive gain, in that order, while ExeBUs remain;
    3. stop when ExeBUs run out or nobody gains.

    Fairness consequences tested in the suite: co-running purely
    compute-intensive workloads split the lanes equally; memory-intensive
    workloads are never starved below one ExeBU. *)

type workload = {
  key : int;  (** caller's identifier, e.g. core id *)
  oi : Occamy_isa.Oi.t;
  level : Occamy_mem.Level.t;
}

let gain_epsilon = 1e-9

(* "No further performance gain" (§5.2) in the presence of several nearly
   flat ceilings: marginal gains below this fraction of the already
   attainable performance do not justify an ExeBU that a co-runner could
   turn into real throughput. *)
let relative_gain_threshold = 0.05

let plan cfg ~total (workloads : workload list) =
  let active = List.filter (fun w -> not (Occamy_isa.Oi.is_zero w.oi)) workloads in
  let m = List.length active in
  if m = 0 then []
  else if total < m then
    invalid_arg
      (Printf.sprintf "Partition.plan: %d ExeBUs cannot host %d workloads"
         total m)
  else begin
    let alloc = Hashtbl.create 8 in
    List.iter (fun w -> Hashtbl.replace alloc w.key 1) active;
    let remaining = ref (total - m) in
    let gain w =
      let vl = Hashtbl.find alloc w.key in
      let g = Roofline.net_perf_gain cfg ~vl ~oi:w.oi ~level:w.level in
      let ap = Roofline.attainable cfg ~vl ~oi:w.oi ~level:w.level in
      if g < relative_gain_threshold *. ap then 0.0 else g
    in
    let progress = ref true in
    while !remaining > 0 && !progress do
      progress := false;
      (* Sort by decreasing net gain; stable sort keeps the caller's order
         for ties, so equal workloads grow in lock-step. *)
      let order =
        List.stable_sort (fun a b -> compare (gain b) (gain a)) active
      in
      List.iter
        (fun w ->
          if !remaining > 0 && gain w > gain_epsilon then begin
            Hashtbl.replace alloc w.key (Hashtbl.find alloc w.key + 1);
            decr remaining;
            progress := true
          end)
        order
    done;
    List.map (fun w -> (w.key, Hashtbl.find alloc w.key)) active
  end

(** Total granules granted by a plan. *)
let granted plan = List.fold_left (fun acc (_, vl) -> acc + vl) 0 plan

(** Check Equation (1) against a plan. *)
let satisfies_constraints ~total plan =
  List.for_all (fun (_, vl) -> vl > 0) plan && granted plan <= total
