lib/lanemgr/lane_mgr.mli: Occamy_isa Occamy_mem Roofline
