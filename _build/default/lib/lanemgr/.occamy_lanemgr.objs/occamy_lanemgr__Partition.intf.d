lib/lanemgr/partition.mli: Occamy_isa Occamy_mem Roofline
