lib/lanemgr/roofline.ml: Float Occamy_isa Occamy_mem
