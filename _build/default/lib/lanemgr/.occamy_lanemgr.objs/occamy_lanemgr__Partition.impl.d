lib/lanemgr/partition.ml: Hashtbl List Occamy_isa Occamy_mem Printf Roofline
