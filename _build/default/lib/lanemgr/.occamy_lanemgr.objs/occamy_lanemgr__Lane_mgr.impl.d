lib/lanemgr/lane_mgr.ml: Array Fun List Occamy_isa Occamy_mem Partition Roofline
