lib/lanemgr/roofline.mli: Occamy_isa Occamy_mem
