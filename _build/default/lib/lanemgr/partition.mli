(** The greedy lane-partitioning algorithm of §5.2: one ExeBU to every
    active workload, then repeated rounds granting one ExeBU to each
    workload with a material net gain (Equation 3), highest first. Plans
    satisfy Equation (1). Fairness consequences (equal splits for equal
    compute workloads; no starvation) are property-tested. *)

type workload = {
  key : int;
  oi : Occamy_isa.Oi.t;
  level : Occamy_mem.Level.t;
}

val relative_gain_threshold : float
(** Marginal gains below this fraction of the current attainable
    performance count as "no further gain". *)

val plan : Roofline.cfg -> total:int -> workload list -> (int * int) list
(** [(key, granules)] for each *active* (non-zero OI) workload. Raises
    when the active workloads outnumber the ExeBUs. *)

val granted : (int * int) list -> int
val satisfies_constraints : total:int -> (int * int) list -> bool
