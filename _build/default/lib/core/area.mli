(** Analytic chip-area model calibrated to Figure 12's synthesis results:
    1.263mm² (Private/FTS/VLS) vs 1.265mm² (Occamy) at 2 cores; SIMD
    execution units 46%, LSU 23%, register file 15%, Manager <1%;
    control-plane scaling 2 to 4 cores ~3% (§4.2.1); 4-core FTS holding
    per-core register counts costs ~33.5% extra (§7.6). *)

type component =
  | Inst_pool
  | Decode
  | Rename
  | Dispatch
  | Simd_exe_units
  | Lsu
  | Manager
  | Register_file
  | Rob
  | Vec_cache

val components : component list
val component_name : component -> string

val component_mm2 : Arch.t -> cores:int -> component -> float
val total_mm2 : Arch.t -> cores:int -> float
val breakdown : Arch.t -> cores:int -> (component * float) list
val fraction : Arch.t -> cores:int -> component -> float

val fts_four_core_overhead : unit -> float
(** Relative area of 4-core FTS over a 4-core spatial design (~0.335). *)
