lib/core/sim.ml: Arch Array Config Fun List Logs Metrics Occamy_coproc Occamy_isa Occamy_lanemgr Occamy_mem Occamy_util Option Printf Queue String Workload
