lib/core/config.ml: Occamy_isa Occamy_lanemgr Occamy_mem Printf
