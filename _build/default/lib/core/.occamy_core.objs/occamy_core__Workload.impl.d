lib/core/workload.ml: Array Fmt List Occamy_isa Occamy_mem Printf
