lib/core/sim.mli: Arch Config Metrics Workload
