lib/core/arch.ml: Fmt
