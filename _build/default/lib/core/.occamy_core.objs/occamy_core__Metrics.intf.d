lib/core/metrics.mli: Arch Format
