lib/core/config.mli: Occamy_lanemgr Occamy_mem
