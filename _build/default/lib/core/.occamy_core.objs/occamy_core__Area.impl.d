lib/core/area.ml: Arch List
