lib/core/area.mli: Arch
