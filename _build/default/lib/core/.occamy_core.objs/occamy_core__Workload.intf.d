lib/core/workload.mli: Format Occamy_isa Occamy_mem
