lib/core/metrics.ml: Arch Array Fmt
