(** Result records produced by a simulation run, covering every quantity
    the paper's evaluation reports: per-core finish times and speedups
    (Figure 10), SIMD utilization (Figure 11, computed as in §2), per-phase
    SIMD issue rates (Figures 2(f), 14(c)), rename-stall fractions
    (Figure 13), EM-SIMD runtime overhead (Figure 15), and per-bucket
    timelines (Figures 2(b-e), 14(b)). *)

type phase_stat = {
  ps_name : string;
  ps_start : int;
  ps_end : int;            (* cycle of the phase epilogue *)
  ps_issued_compute : int;
  ps_issued_mem : int;
  ps_rename_stalls : int;  (* cycles stalled for free registers (Fig 14(c)) *)
  ps_avg_vl : float;       (* average granules held during the phase *)
}

let ps_cycles p = max 1 (p.ps_end - p.ps_start)

(** SIMD compute instructions issued per cycle during the phase. *)
let ps_issue_rate p = float_of_int p.ps_issued_compute /. float_of_int (ps_cycles p)

type core_result = {
  core : int;
  workload : string;
  finish : int;            (* cycle the workload's Halt executed *)
  issued_compute : int;
  issued_mem : int;
  rename_stall_cycles : int;
  reconfig_blocked_cycles : int;  (* cycles blocked on MSR <VL> (drain+retry) *)
  monitor_instrs : int;           (* lazy-partition monitor instructions *)
  monitor_stall_cycles : int;     (* cycles where monitoring consumed the
                                     last front-end slot (marginal cost) *)
  reconfigs : int;                (* successful <VL> changes *)
  failed_vl_requests : int;
  phases : phase_stat list;
  lanes_timeline : float array;   (* avg busy f32 lanes per bucket *)
  vl_timeline : float array;      (* avg granules held per bucket *)
}

type t = {
  arch : Arch.t;
  total_cycles : int;             (* last core's finish *)
  simd_util : float;              (* Eq. of §2 over the whole execution *)
  busy_lane_cycles : float;       (* numerator of simd_util, lane-cycles *)
  replans : int;                  (* eager lane-partitioning events *)
  cores : core_result array;
  bucket_width : int;
}

let core_finish t c = t.cores.(c).finish

(** Speedup of [t] relative to [baseline] on core [c] — the Figure 10
    metric (baseline time / this time, per core). *)
let speedup_vs ~baseline t ~core =
  float_of_int (core_finish baseline core) /. float_of_int (core_finish t core)

(** Fraction of cycles core [c] spent stalled in the renamer waiting for
    free physical registers (Figure 13). *)
let rename_stall_fraction t ~core =
  float_of_int t.cores.(core).rename_stall_cycles
  /. float_of_int (max 1 t.cores.(core).finish)

(** EM-SIMD runtime overhead split (Figure 15), as fractions of the
    workload's execution time: monitoring (decision reads at iteration
    heads, estimated by front-end slot occupancy) and vector-length
    reconfiguration (drain + retry cycles). *)
let overhead t ~frontend_width ~core =
  let c = t.cores.(core) in
  let time = float_of_int (max 1 c.finish) in
  (* Monitoring: `<decision>` reads are speculatively transmitted
     (§4.1.1), so in the simulator their marginal cost is near zero (the
     scalar front-end has slack); we report the conservative upper bound
     of one front-end slot per executed monitor instruction. *)
  let monitoring =
    float_of_int c.monitor_instrs /. float_of_int frontend_width /. time
  in
  let reconfig = float_of_int c.reconfig_blocked_cycles /. time in
  (monitoring, reconfig)

let pp_summary ppf t =
  Fmt.pf ppf "%a: %d cycles, util %.1f%%, %d replans@." Arch.pp t.arch
    t.total_cycles (100.0 *. t.simd_util) t.replans;
  Array.iter
    (fun c ->
      Fmt.pf ppf "  core%d %-14s finish=%-8d issue=%d/%d stall=%d reconf=%d@."
        c.core c.workload c.finish c.issued_compute c.issued_mem
        c.rename_stall_cycles c.reconfigs)
    t.cores
