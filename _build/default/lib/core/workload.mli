(** A workload: a compiled EM-SIMD program plus the metadata the simulator
    and lane manager need — per phase its Equation-5 intensity, footprint
    level and trip count; per program array its residence profile. *)

type kind = Memory_intensive | Compute_intensive | Mixed

type phase = {
  ph_name : string;
  ph_oi : Occamy_isa.Oi.t;
  ph_level : Occamy_mem.Level.t;
  ph_trip_count : int;
  ph_oi_writes : int;
      (** executions of this phase's prologue: 1 when hoisted out of an
          outer loop, the outer trip count otherwise (§6.3) *)
}

type t = {
  wl_name : string;
  program : Occamy_isa.Program.t;
  phases : phase list;
  kind : kind;
  profiles : Occamy_mem.Profile.t array;
}

val kind_name : kind -> string
val name : t -> string
val pp : Format.formatter -> t -> unit

val profile_of_array : t -> int -> Occamy_mem.Profile.t
val phase_by_index : t -> int -> phase option

val phase_of_oi_write : t -> int -> phase option
(** Map from OI-write ordinal to phase, expanding repeated prologues. *)

val validate : t -> t
(** Structural checks: one static OI write per phase; profiles cover every
    array. Returns its argument. *)
