(** The four SIMD architectures compared throughout the paper (Figure 1).

    All four run on the same simulated machine with the same total SIMD
    resources (Table 4); they differ only in how the lanes and the vector
    register file are shared:

    - [Private]: each core owns a fixed, equal share of the lanes
      (Figure 1(a), e.g. Intel Xeon);
    - [Fts]: fine-grained temporal sharing — every instruction executes at
      the full machine width, all cores share the issue slots and one
      full-width register file (Figure 1(b), e.g. Apple AMX-style);
    - [Vls]: static spatial sharing — the lanes are partitioned once when
      the co-running set launches, then never change (Figure 1(c));
    - [Occamy]: elastic spatial sharing — the lane manager repartitions at
      every phase-changing point (Figure 1(d), this paper). *)

type t = Private | Fts | Vls | Occamy

let all = [ Private; Fts; Vls; Occamy ]

let name = function
  | Private -> "Private"
  | Fts -> "FTS"
  | Vls -> "VLS"
  | Occamy -> "Occamy"

let of_string = function
  | "private" | "Private" -> Some Private
  | "fts" | "FTS" -> Some Fts
  | "vls" | "VLS" -> Some Vls
  | "occamy" | "Occamy" | "OCCAMY" -> Some Occamy
  | _ -> None

let pp ppf t = Fmt.string ppf (name t)
let equal (a : t) b = a = b

(** Is the vector register file spatially split between cores (each core
    renames into its own RegBlks)? True for everything but FTS. *)
let splits_vrf = function Private | Vls | Occamy -> true | Fts -> false

(** Are the per-cycle vector issue ports per-core (spatial) or shared by
    all cores (temporal)? *)
let shares_issue_ports = function Fts -> true | Private | Vls | Occamy -> false

(** Can the lane partition change while workloads run? *)
let is_elastic = function Occamy -> true | Private | Fts | Vls -> false
