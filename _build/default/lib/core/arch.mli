(** The four SIMD architectures compared throughout the paper (Figure 1):
    core-private lanes, fine-grained temporal sharing, static spatial
    sharing, and the paper's elastic spatial sharing. All run on the same
    machine with the same total SIMD resources. *)

type t = Private | Fts | Vls | Occamy

val all : t list
val name : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val splits_vrf : t -> bool
(** Is the vector register file spatially split per core? (All but FTS.) *)

val shares_issue_ports : t -> bool
(** Are the per-cycle vector issue ports shared by all cores? (FTS.) *)

val is_elastic : t -> bool
(** Can the lane partition change while workloads run? (Occamy.) *)
