(** A workload: a compiled EM-SIMD program plus the metadata the simulator
    and lane manager need.

    Workloads in the paper are one or two vectorized loops ("phases",
    Table 3). The compiled program carries the eager/lazy partitioning
    instrumentation of Figure 9; the metadata records, per phase, its
    operational intensity (Equation 5) and which memory level its
    footprint is served from, and, per program array, the residence
    profile the LSU samples access levels from. *)

type kind = Memory_intensive | Compute_intensive | Mixed

type phase = {
  ph_name : string;
  ph_oi : Occamy_isa.Oi.t;
  ph_level : Occamy_mem.Level.t;
  ph_trip_count : int;  (** scalar trip count of the loop *)
  ph_oi_writes : int;
      (** how many non-zero `<OI>` writes this phase performs: 1 when the
          prologue is hoisted out of any outer loop, the outer trip count
          when it is not (§6.3 hoisting ablation) *)
}

type t = {
  wl_name : string;
  program : Occamy_isa.Program.t;
  phases : phase list;
  kind : kind;
  profiles : Occamy_mem.Profile.t array;
      (** residence profile per program array (same indexing as
          [program.arrays]) *)
}

let kind_name = function
  | Memory_intensive -> "memory"
  | Compute_intensive -> "compute"
  | Mixed -> "mixed"

let name t = t.wl_name
let pp ppf t =
  Fmt.pf ppf "%s [%s] (%d phases)" t.wl_name (kind_name t.kind)
    (List.length t.phases)

let profile_of_array t arr =
  if arr >= 0 && arr < Array.length t.profiles then t.profiles.(arr)
  else Occamy_mem.Profile.cache_resident

let phase_by_index t i = List.nth_opt t.phases i

(** Map from OI-write ordinal to phase, expanding repeated prologues. *)
let phase_of_oi_write t =
  let expanded =
    List.concat_map (fun p -> List.init p.ph_oi_writes (fun _ -> p)) t.phases
  in
  let arr = Array.of_list expanded in
  fun i -> if i >= 0 && i < Array.length arr then Some arr.(i) else None

(** Quick structural validation: phase count should match the number of
    non-zero `<OI>` writes in the program, and the profile table should
    cover every array. *)
let validate t =
  let oi_writes =
    Array.fold_left
      (fun n instr ->
        match instr with
        | Occamy_isa.Instr.Msr_oi oi when not (Occamy_isa.Oi.is_zero oi) ->
          n + 1
        | _ -> n)
      0 t.program.Occamy_isa.Program.code
  in
  (* Statically there is one phase prologue per phase; [ph_oi_writes]
     records how many times it *executes* (outer loops, §6.3). *)
  if oi_writes <> List.length t.phases then
    invalid_arg
      (Printf.sprintf
         "Workload.validate %s: %d phases declared, %d static OI writes"
         t.wl_name (List.length t.phases) oi_writes);
  if Array.length t.profiles <> Array.length t.program.Occamy_isa.Program.arrays
  then
    invalid_arg
      (Printf.sprintf "Workload.validate %s: profile table size mismatch"
         t.wl_name);
  t
