(** Analytic chip-area model reproducing Figure 12 and the §7.3/§7.6 area
    claims.

    The paper synthesised the key components in RTL (TSMC 7nm, Synopsys DC)
    and reports only the per-component breakdown of the 1.263mm² (Private/
    FTS/VLS) vs 1.265mm² (Occamy) 2-core configurations, i.e. SIMD
    execution units 46%, LSU 23%, register file 15%, with the manager
    taking <1% of the total. We encode those calibrated component areas
    and the paper's scaling statements:

    - growing the tables and control logic from 2 to 4 cores costs ~3%
      (§4.2.1);
    - data-path components (ExeBUs, register file, LSU, VecCache) scale
      with the lane count;
    - a 4-core FTS that keeps the 2-core per-core physical register count
      needs 33.5% more total area than the other architectures (§7.6). *)

type component =
  | Inst_pool
  | Decode
  | Rename
  | Dispatch
  | Simd_exe_units
  | Lsu
  | Manager
  | Register_file
  | Rob
  | Vec_cache

let components =
  [
    Inst_pool; Decode; Rename; Dispatch; Simd_exe_units; Lsu; Manager;
    Register_file; Rob; Vec_cache;
  ]

let component_name = function
  | Inst_pool -> "Inst Pool"
  | Decode -> "Decode"
  | Rename -> "Rename"
  | Dispatch -> "Dispatch"
  | Simd_exe_units -> "SIMD Exe Units"
  | Lsu -> "LSU"
  | Manager -> "Manager"
  | Register_file -> "Register file"
  | Rob -> "ROB"
  | Vec_cache -> "VecCache"

(* Calibrated 2-core component areas in mm², summing to 1.263 without the
   manager; Figure 12's 46/23/15% fractions fix the three big ones. *)
let base_mm2 = function
  | Simd_exe_units -> 0.581  (* 46% *)
  | Lsu -> 0.290             (* 23% *)
  | Register_file -> 0.189   (* 15% *)
  | Vec_cache -> 0.095
  | Inst_pool -> 0.028
  | Decode -> 0.018
  | Rename -> 0.022
  | Dispatch -> 0.020
  | Rob -> 0.020
  | Manager -> 0.002         (* <1%: ResourceTbl + control + fifo *)

(* Does a component scale with the data-path width (lanes) or with the
   control plane (core count)? *)
let scales_with_lanes = function
  | Simd_exe_units | Lsu | Register_file | Vec_cache -> true
  | Inst_pool | Decode | Rename | Dispatch | Rob | Manager -> false

(* Calibrated so that a 4-core FTS exceeds the other architectures'
   4-core totals by the paper's 33.5%: it must keep one full-width
   register context per core plus in-flight rows, where the spatial
   designs split a single context. *)
let fts_vrf_multiplier ~cores = 1.0 +. (float_of_int (cores - 2) /. 2.0 *. 2.13)

let component_mm2 arch ~cores component =
  if cores < 2 then invalid_arg "Area.component_mm2: cores >= 2";
  let lane_scale = float_of_int cores /. 2.0 in
  (* "Increasing the first two types of resources adds little area cost,
     e.g. 3% when scaling from 2 to 4 cores" — spread over control. *)
  let control_scale = 1.0 +. (0.03 *. (lane_scale -. 1.0)) in
  let base = base_mm2 component in
  match component with
  | Manager -> ( match arch with Arch.Occamy -> base *. control_scale | _ -> 0.0)
  | Register_file ->
    let a = base *. lane_scale in
    if arch = Arch.Fts then a *. fts_vrf_multiplier ~cores else a
  | _ ->
    if scales_with_lanes component then base *. lane_scale
    else base *. control_scale

let total_mm2 arch ~cores =
  List.fold_left (fun acc c -> acc +. component_mm2 arch ~cores c) 0.0 components

let breakdown arch ~cores =
  List.map (fun c -> (c, component_mm2 arch ~cores c)) components

let fraction arch ~cores component =
  component_mm2 arch ~cores component /. total_mm2 arch ~cores

(** The §7.6 comparison: relative area of 4-core FTS over a 4-core spatial
    design. *)
let fts_four_core_overhead () =
  total_mm2 Arch.Fts ~cores:4 /. total_mm2 Arch.Vls ~cores:4 -. 1.0
