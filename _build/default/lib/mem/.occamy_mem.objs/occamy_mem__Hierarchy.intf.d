lib/mem/hierarchy.mli: Channel Level
