lib/mem/mob.mli:
