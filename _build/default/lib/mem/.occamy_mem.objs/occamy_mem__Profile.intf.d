lib/mem/profile.mli: Format Level Occamy_util
