lib/mem/level.ml: Fmt
