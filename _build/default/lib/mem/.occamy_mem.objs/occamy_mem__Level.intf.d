lib/mem/level.mli: Format
