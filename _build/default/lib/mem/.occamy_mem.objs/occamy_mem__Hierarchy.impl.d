lib/mem/hierarchy.ml: Array Channel Float Level
