lib/mem/channel.ml: Float
