lib/mem/channel.mli:
