lib/mem/profile.ml: Float Fmt Level Occamy_util
