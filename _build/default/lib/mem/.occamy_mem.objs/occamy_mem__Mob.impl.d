lib/mem/mob.ml: List
