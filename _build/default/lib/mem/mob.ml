(** Memory Ordering Buffer (§4.1.2).

    The MOB "tracks the memory regions within which at least one SVE ld/st
    instruction has not yet completed". Scalar cores consult it to order
    scalar accesses against in-flight vector accesses (Table 2's
    ⟨SVE, Scalar⟩ row): a younger access overlapping a tracked region must
    wait until the matching entries are deallocated.

    Regions are (array, base element, length) triples; completion
    deallocates. The structure is per-machine (addresses are global). *)

type entry = {
  id : int;
  core : int;
  arr : int;
  base : int;
  len : int;
  is_store : bool;
}

type t = {
  capacity : int;
  mutable next_id : int;
  mutable entries : entry list;
}

let create ?(capacity = 64) () = { capacity; next_id = 0; entries = [] }

let size t = List.length t.entries
let is_full t = size t >= t.capacity

(** [insert] registers an in-flight vector access; returns its id, or
    [None] when the MOB is full (the LSU must stall the access). *)
let insert t ~core ~arr ~base ~len ~is_store =
  if len < 0 || base < 0 then invalid_arg "Mob.insert: bad region";
  if is_full t then None
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    t.entries <- { id; core; arr; base; len; is_store } :: t.entries;
    Some id
  end

let remove t id = t.entries <- List.filter (fun e -> e.id <> id) t.entries

let ranges_overlap b1 l1 b2 l2 = b1 < b2 + l2 && b2 < b1 + l1

(** Does a (read) access to [arr.[base..base+len)] conflict with any
    in-flight entry? Reads conflict only with in-flight stores; writes
    conflict with everything. *)
let conflicts t ~arr ~base ~len ~is_store =
  List.exists
    (fun e ->
      e.arr = arr
      && ranges_overlap e.base e.len base len
      && (is_store || e.is_store))
    t.entries

(** Entries belonging to a core, used to decide whether its SIMD ld/st
    pipeline has drained. *)
let outstanding_of t ~core =
  List.length (List.filter (fun e -> e.core = core) t.entries)

let clear t = t.entries <- []
