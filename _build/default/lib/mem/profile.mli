(** Residence profile of a data stream: which hierarchy level serves its
    accesses. The lane manager's roofline uses the dominant level's
    bandwidth as its memory ceiling (§5.1); the LSU samples each access's
    level from the profile. *)

type t = { vc : float; l2 : float; dram : float }

val make : vc:float -> l2:float -> dram:float -> t
(** Fractions must be non-negative and sum to 1. *)

val cache_resident : t
(** Everything hits in the vector cache. *)

val streaming : t
(** Every access streams from DRAM. *)

val l2_resident : t
(** An L2-sized working set. *)

val dominant : t -> Level.t
val classify : t -> Occamy_util.Rng.t -> Level.t
val pp : Format.formatter -> t -> unit
