(** A bandwidth-limited transfer channel.

    Each level of the hierarchy owns one channel shared by all cores; a
    request occupies the channel for [bytes / bytes_per_cycle] cycles
    starting no earlier than both the request time and the end of the
    previous occupancy. This token-bucket model is what makes co-running
    workloads contend for L2/DRAM bandwidth, the effect underlying the
    paper's memory-bandwidth roofline ceilings (§5.1). *)

type t = {
  name : string;
  bytes_per_cycle : float;
  mutable next_free : float;   (* cycle at which the channel frees up *)
  mutable busy_cycles : float; (* total occupancy, for utilisation stats *)
  mutable bytes_moved : float;
}

let create ~name ~bytes_per_cycle =
  if bytes_per_cycle <= 0.0 then invalid_arg "Channel.create: bandwidth <= 0";
  { name; bytes_per_cycle; next_free = 0.0; busy_cycles = 0.0; bytes_moved = 0.0 }

let reset t =
  t.next_free <- 0.0;
  t.busy_cycles <- 0.0;
  t.bytes_moved <- 0.0

(** [request t ~now ~bytes] books a transfer and returns the cycle at which
    the last byte has moved through the channel. *)
let request t ~now ~bytes =
  if bytes < 0.0 then invalid_arg "Channel.request: negative size";
  let start = Float.max now t.next_free in
  let occupancy = bytes /. t.bytes_per_cycle in
  t.next_free <- start +. occupancy;
  t.busy_cycles <- t.busy_cycles +. occupancy;
  t.bytes_moved <- t.bytes_moved +. bytes;
  t.next_free

(** Would a request issued [now] start immediately (no queueing)? *)
let is_free t ~now = t.next_free <= now

let bytes_per_cycle t = t.bytes_per_cycle
let busy_cycles t = t.busy_cycles
let bytes_moved t = t.bytes_moved
let name t = t.name

(** Average bandwidth utilisation over [cycles]. *)
let utilisation t ~cycles =
  if cycles <= 0.0 then 0.0 else Float.min 1.0 (t.busy_cycles /. cycles)
