(** Deterministic pseudo-random number generation.

    All stochastic components of the simulator (memory-level classification
    of individual accesses, workload data initialisation, property-test
    inputs built outside qcheck) draw from a [t] created from an explicit
    seed, so that every experiment is reproducible run-to-run.

    The generator is SplitMix64, which is small, fast, and has no global
    state — important because several independent machines can be simulated
    in one process (e.g. the four architectures of Figure 2 side by side). *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step: returns 64 pseudo-random bits and advances the state. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [float t] is uniform in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so the value always fits in a non-negative native int. *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

(** [bool t p] is true with probability [p]. *)
let bool t p = float t < p

(** [pick t arr] selects a uniformly random element of [arr]. *)
let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

(** [split t] derives an independent generator, leaving [t] advanced. *)
let split t =
  let seed = Int64.to_int (next_int64 t) in
  { state = Int64.of_int (seed lxor 0x5851F42D) }
