(** Plain-text table rendering for the benchmark harness: fixed-width
    columns, stable ordering, diffable output. *)

type align = Left | Right

type t

val create :
  title:string -> header:string list -> ?aligns:align list -> unit -> t
(** [aligns] defaults to right-aligned everywhere and must match the
    header length when given. *)

val add_row : t -> string list -> unit
(** Rows render in insertion order; the cell count must match the
    header. *)

val add_rowf : t -> string list -> unit
(** Alias of {!add_row}. *)

val fcell : ?digits:int -> float -> string
(** Fixed-point cell, default two digits. *)

val icell : int -> string

val pcell : ?digits:int -> float -> string
(** Percentage cell: [0.42] renders as ["42.0%"]. *)

val xcell : ?digits:int -> float -> string
(** Speedup cell: [1.39] renders as ["1.39x"]. *)

val render : t -> string
val print : t -> unit
