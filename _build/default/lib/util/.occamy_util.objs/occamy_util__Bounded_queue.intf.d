lib/util/bounded_queue.mli:
