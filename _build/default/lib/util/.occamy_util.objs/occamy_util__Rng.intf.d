lib/util/rng.mli:
