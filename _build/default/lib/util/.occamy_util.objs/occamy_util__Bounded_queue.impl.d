lib/util/bounded_queue.ml: Queue
