lib/util/table.mli:
