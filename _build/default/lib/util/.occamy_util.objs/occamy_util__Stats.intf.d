lib/util/stats.mli:
