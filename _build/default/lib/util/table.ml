(** Plain-text table rendering for the benchmark harness.

    Every figure/table reproduction prints through this module so that the
    output of [bench/main.exe] lines up in fixed-width columns and can be
    diffed run-to-run. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list;  (* newest first *)
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length header then
        invalid_arg "Table.create: aligns length mismatch";
      a
    | None -> List.map (fun _ -> Right) header
  in
  { title; header; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let add_rowf t fmts = add_row t fmts

(* Cell formatting helpers. *)
let fcell ?(digits = 2) v = Printf.sprintf "%.*f" digits v
let icell v = string_of_int v
let pcell ?(digits = 1) v = Printf.sprintf "%.*f%%" digits (100.0 *. v)
let xcell ?(digits = 2) v = Printf.sprintf "%.*fx" digits v

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let line_of row =
    let cells =
      List.mapi
        (fun i c ->
          let a = List.nth t.aligns i in
          pad a widths.(i) c)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line_of t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line_of row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t); print_newline ()
