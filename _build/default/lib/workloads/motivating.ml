(** The motivating example of §2 — Figure 2(a), transcribed literally.

    WL#0 is two memory-intensive loops from SPECCPU2017/654.rom_s:

      Phase 1 (rh3d.f90:1442):
        Ufx[i] = 0.5*dndx[i]*(v[i]+v_1[i])^2
                 - dmde[i]*(v[i]+v_1[i])*(u[i]+u_1[i])
        Ufe[i] = 0.5*dndx[i]*(v[i]+v_1[i])*(u[i]+u_1[i])
                 - dmde[i]*(u[i]+u_1[i])^2

      Phase 2 (rho_eos.f90:1548):
        wrk[i]  = (den[i]+1000)*(bulk[i]+0.1*z_r[i])^2
        Tcof[i] = -(bulkDT[i]*0.1*z_r[i]*den1[i]
                    + den1DT[i]*bulk[i]*(bulk[i]+0.1*z_r[i]))
        Scof[i] = -(bulkDS[i]*0.1*z_r[i]*den1[i]
                    + den1DS[i]*bulk[i]*(bulk[i]+0.1*z_r[i]))

    WL#1 is the computation-intensive k-loop from 621.wrf_s
    (module_mp_wsm.f90:1363):

        wi[k] = (ww[k]*dz[k-1] + ww[k-1]*dz[k]) / (dz[k-1] + dz[k])

    The common subexpressions ((v+v_1), (u+u_1), 0.1*z_r, bulk+0.1*z_r,
    dz[k-1], ww[k-1], ...) are shared by the compiler's CSE, giving WL#1
    genuine data reuse across its stencil taps. *)

module Codegen = Occamy_compiler.Codegen
module Workload = Occamy_core.Workload
module Level = Occamy_mem.Level
open Occamy_compiler.Loop_ir

let rh3d_phase1 ~tc =
  let v = a0 "v" and v1 = a0 "v_1" and u = a0 "u" and u1 = a0 "u_1" in
  let dndx = a0 "dndx" and dmde = a0 "dmde" in
  let vv = v +: v1 and uu = u +: u1 in
  let half = param "half" 0.5 in
  loop ~name:"rom_s.rh3d" ~trip_count:tc ~level:Level.L2
    [
      store "Ufx" (((half *: dndx) *: (vv *: vv)) -: (dmde *: (vv *: uu)));
      store "Ufe" (((half *: dndx) *: (vv *: uu)) -: (dmde *: (uu *: uu)));
    ]

let rho_eos_phase2 ~tc =
  let den = a0 "den" and bulk = a0 "bulk" and z_r = a0 "z_r" in
  let den1 = a0 "den1" in
  let bulk_dt = a0 "bulkDT" and den1_dt = a0 "den1DT" in
  let bulk_ds = a0 "bulkDS" and den1_ds = a0 "den1DS" in
  let zr10 = param "tenth" 0.1 *: z_r in
  let b2 = bulk +: zr10 in
  loop ~name:"rom_s.rho_eos" ~trip_count:tc ~level:Level.L2
    [
      store "wrk" ((den +: c 1000.0) *: (b2 *: b2));
      store "Tcof" (neg (((bulk_dt *: zr10) *: den1) +: ((den1_dt *: bulk) *: b2)));
      store "Scof" (neg (((bulk_ds *: zr10) *: den1) +: ((den1_ds *: bulk) *: b2)));
    ]

let wsm5_loop ~tc =
  let ww = a0 "ww" and ww1 = "ww".%[-1] in
  let dz = a0 "dz" and dz1 = "dz".%[-1] in
  loop ~name:"wrf_s.wsm5" ~trip_count:tc ~level:Level.Vec_cache
    [ store "wi" (((ww *: dz1) +: (ww1 *: dz)) /: (dz1 +: dz)) ]

(** WL#0: the memory-intensive two-phase workload (runs on Core0). *)
let wl0 ?options ?(tc = 10240) () =
  Codegen.compile_workload ?options ~name:"WL#0(654.rom_s)"
    ~kind:Workload.Memory_intensive
    [ rh3d_phase1 ~tc; rho_eos_phase2 ~tc ]

(** WL#1: the computation-intensive workload (runs on Core1). *)
let wl1 ?options ?(tc = 163840) () =
  Codegen.compile_workload ?options ~name:"WL#1(621.wrf_s)"
    ~kind:Workload.Compute_intensive
    [ wsm5_loop ~tc ]

let pair ?options ?tc0 ?tc1 () =
  [ wl0 ?options ?tc:tc0 (); wl1 ?options ?tc:tc1 () ]
