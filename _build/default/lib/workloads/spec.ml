(** The 22 SPECCPU2017-derived workloads of Table 3.

    Each workload is one or two phases (loops); the per-phase operational
    intensities are the paper's Table 3 values (the synthesized loop's
    analysed OI matches them; see the Table 3 cross-check in the bench
    harness). A phase name may appear in several workloads with different
    intensities (the paper extracted several instances of the same source
    loop); each row is taken at face value.

    [rho_eos2] at intensity 0.25 is the documented data-reuse phase of
    Case 4 (§7.4): oi_issue ~ 1/6 < oi_mem = 0.25, achieved here with two
    extra stencil taps. *)

module Codegen = Occamy_compiler.Codegen
module Workload = Occamy_core.Workload

let phase ?taps ?level ?tc name oi = Synth.spec ?taps ?level ?tc ~oi name

(* Phase specs, named as in Table 3. *)
(* The ocean-model loops (step*/rhs3d/sff) are stencils: their reuse taps
   make oi_issue < oi_mem, so different phases saturate at different lane
   counts — the behaviour the elastic repartitioning exploits. *)
let select_atoms1 = phase "select_atoms1" 0.25
let select_atoms2 = phase "select_atoms2" 0.25
let select_atoms3 = phase "select_atoms3" 0.25
let select_atoms4 = phase "select_atoms4" 0.083
let select_atoms5 = phase "select_atoms5" 0.75
let select_atoms5b = phase "select_atoms5" 0.25
let step3d_uv1 = phase ~taps:1 "step3d_uv1" 0.11
let step3d_uv2 = phase ~taps:1 "step3d_uv2" 0.09
let step3d_uv3 = phase ~taps:1 "step3d_uv3" 0.13
let step3d_uv4 = phase ~taps:1 "step3d_uv4" 0.13
let step2d1 = phase ~taps:2 "step2d1" 0.22
let step2d6 = phase ~taps:1 "step2d6" 0.18
let rhs3d1 = phase ~taps:1 "rhs3d1" 0.13
let rhs3d5 = phase ~taps:2 "rhs3d5" 0.32
let rhs3d7 = phase ~taps:1 "rhs3d7" 0.17
let rho_eos1 = phase "rho_eos1" 0.09
let rho_eos2 = phase ~taps:2 "rho_eos2" 0.25  (* Case 4: data reuse *)
let rho_eos2b = phase "rho_eos2" 0.08
let rho_eos4 = phase "rho_eos4" 0.16
let rho_eos5 = phase "rho_eos5" 0.08
let rho_eos6 = phase "rho_eos6" 0.06
let set_vbc1 = phase "set_vbc1" 0.56
let set_vbc2 = phase "set_vbc2" 0.56
let wsm51 = phase "wsm51" 1.0
let wsm52 = phase "wsm52" 1.0
let wsm53 = phase "wsm53" 0.56
let sff2 = phase ~taps:1 "sff2" 0.13
let sff5 = phase ~taps:2 "sff5" 0.21
let sff5b = phase ~taps:1 "sff5" 0.16

(* Table 3, left columns: multi-phase (memory-leaning) workloads. *)
let table : (int * Synth.spec list) list =
  [
    (1, [ select_atoms2; step3d_uv2 ]);
    (2, [ select_atoms1; step3d_uv4 ]);
    (3, [ rhs3d1; select_atoms3 ]);
    (4, [ select_atoms4; select_atoms5 ]);
    (5, [ step3d_uv1; rhs3d7 ]);
    (6, [ rho_eos1; rho_eos4 ]);
    (7, [ rho_eos5; select_atoms3 ]);
    (8, [ rho_eos2; rho_eos6 ]);
    (9, [ wsm53; select_atoms5b ]);
    (10, [ rhs3d1; rho_eos4 ]);
    (11, [ step2d1; step2d6 ]);
    (12, [ step3d_uv3; step3d_uv1 ]);
    (13, [ set_vbc2 ]);
    (14, [ set_vbc1 ]);
    (15, [ rhs3d5 ]);
    (16, [ wsm51 ]);
    (17, [ wsm52 ]);
    (18, [ wsm53 ]);
    (19, [ rho_eos2 ]);
    (20, [ sff2; sff5 ]);
    (21, [ sff5b; rho_eos6 ]);
    (22, [ rho_eos2b; step3d_uv1 ]);
  ]

let specs_of id =
  match List.assoc_opt id table with
  | Some specs -> specs
  | None -> invalid_arg (Printf.sprintf "Spec.specs_of: no SPEC WL%d" id)

let kind_of specs =
  let ois = List.map (fun s -> s.Synth.k_oi) specs in
  let avg = Occamy_util.Stats.mean ois in
  let mx = List.fold_left Float.max 0.0 ois in
  if mx >= 0.5 then Workload.Compute_intensive
  else if avg < 0.3 then Workload.Memory_intensive
  else Workload.Mixed

(** Compile SPEC workload [id] (1..22). *)
let workload ?options ?(tc_scale = 1.0) id =
  let specs = specs_of id in
  let specs =
    List.map
      (fun s ->
        { s with Synth.k_tc = max 64 (int_of_float (float_of_int s.Synth.k_tc *. tc_scale)) })
      specs
  in
  Codegen.compile_workload ?options
    ~name:(Printf.sprintf "WL%d" id)
    ~kind:(kind_of specs)
    (List.map Synth.loop_of_spec specs)

let ids = List.map fst table
