lib/workloads/spec.ml: Float List Occamy_compiler Occamy_core Occamy_util Printf Synth
