lib/workloads/motivating.mli: Occamy_compiler Occamy_core
