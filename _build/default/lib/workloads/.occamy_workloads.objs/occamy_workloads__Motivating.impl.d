lib/workloads/motivating.ml: Occamy_compiler Occamy_core Occamy_mem
