lib/workloads/suite.ml: List Occamy_compiler Occamy_core Occamy_isa Opencv Printf Spec Synth
