lib/workloads/opencv.mli: Occamy_compiler Occamy_core
