lib/workloads/spec.mli: Occamy_compiler Occamy_core Synth
