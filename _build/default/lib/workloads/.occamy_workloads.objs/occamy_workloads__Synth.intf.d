lib/workloads/synth.mli: Occamy_compiler Occamy_isa Occamy_mem
