lib/workloads/opencv.ml: Float List Occamy_compiler Occamy_core Occamy_isa Occamy_mem Occamy_util Printf
