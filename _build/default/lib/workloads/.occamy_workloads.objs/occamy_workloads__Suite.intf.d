lib/workloads/suite.mli: Occamy_compiler Occamy_core
