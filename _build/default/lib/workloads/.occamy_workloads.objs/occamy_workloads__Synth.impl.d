lib/workloads/synth.ml: Float List Occamy_compiler Occamy_mem Printf
