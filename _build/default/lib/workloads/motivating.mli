(** The §2 motivating example, transcribed literally from Figure 2(a):
    WL#0 = two memory-intensive 654.rom_s loops, WL#1 = the
    compute-intensive 621.wrf_s stencil. *)

val rh3d_phase1 : tc:int -> Occamy_compiler.Loop_ir.t
val rho_eos_phase2 : tc:int -> Occamy_compiler.Loop_ir.t
val wsm5_loop : tc:int -> Occamy_compiler.Loop_ir.t

val wl0 :
  ?options:Occamy_compiler.Codegen.options -> ?tc:int -> unit ->
  Occamy_core.Workload.t
(** WL#0, for Core0. *)

val wl1 :
  ?options:Occamy_compiler.Codegen.options -> ?tc:int -> unit ->
  Occamy_core.Workload.t
(** WL#1, for Core1. *)

val pair :
  ?options:Occamy_compiler.Codegen.options -> ?tc0:int -> ?tc1:int -> unit ->
  Occamy_core.Workload.t list
