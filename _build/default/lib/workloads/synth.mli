(** Synthetic kernel generator for the Table-3 SPEC phases: loops whose
    analysed Equation-5 intensity matches the paper's per-phase value
    (one compute statement of [F] flops over two streams plus [C] copy
    statements; stencil taps add the data reuse of §7.4 Case 4). *)

type spec = {
  k_name : string;
  k_oi : float;               (** Table 3 target (oi_mem) *)
  k_taps : int;               (** extra stencil reads: data reuse *)
  k_level : Occamy_mem.Level.t;
  k_tc : int;
}

val level_of_oi : float -> Occamy_mem.Level.t
val tc_of_level : Occamy_mem.Level.t -> int

val spec :
  ?taps:int -> ?level:Occamy_mem.Level.t -> ?tc:int -> oi:float -> string ->
  spec

val choose_shape : oi:float -> taps:int -> int * int
(** The (flops, copies) pair minimising the error against the target. *)

val loop_of_spec : spec -> Occamy_compiler.Loop_ir.t
val analysed_oi : spec -> Occamy_isa.Oi.t
