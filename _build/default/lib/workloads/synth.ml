(** Synthetic kernel generator for the Table-3 SPEC phases.

    We do not have SPECCPU2017 sources or inputs; the paper characterises
    each extracted loop by its operational intensity (oi_mem, with data
    reuse), so each named phase is re-authored as a loop whose *analysed*
    Equation-5 intensity matches the paper's number.

    Construction: one compute statement combining two loaded streams with
    [F] flops of work, plus [C] pure copy statements (each one load + one
    store array), giving

      oi_mem = F / (4 * (3 + 2C))

    (3 = two compute inputs + one compute output). [F] and [C] are chosen
    by exhaustive search to minimise the error against the target. A
    kernel with data reuse ([extra_taps] > 0) additionally reads stencil
    neighbours of the compute inputs, lowering oi_issue below oi_mem —
    the Case-4 (§7.4) shape.

    The flop budget is spent as: a fold over the loaded values (arity-2
    ops), then an FMA self-refinement chain on a loop-invariant weight —
    the same structure as the polynomial/reciprocal refinement bodies in
    the paper's workloads. *)

open Occamy_compiler.Loop_ir

type spec = {
  k_name : string;
  k_oi : float;               (* Table 3 target (oi_mem) *)
  k_taps : int;               (* extra stencil reads: data reuse *)
  k_level : Occamy_mem.Level.t;
  k_tc : int;
}

(* Default residence level from the target intensity: the paper's
   memory-intensive phases stream from L2/DRAM, compute-intensive ones
   stay vector-cache resident. *)
let level_of_oi oi =
  if oi < 0.12 then Occamy_mem.Level.Dram
  else if oi < 0.45 then Occamy_mem.Level.L2
  else Occamy_mem.Level.Vec_cache

(* Trip counts: compute phases run much longer than memory phases, as in
   the paper's co-running scenarios (the memory workload finishes first
   and the survivor inherits the lanes). *)
let tc_of_level = function
  | Occamy_mem.Level.Vec_cache -> 98304
  | Occamy_mem.Level.L2 -> 8192
  | Occamy_mem.Level.Dram -> 6144

let spec ?taps ?level ?tc ~oi name =
  let level = match level with Some l -> l | None -> level_of_oi oi in
  {
    k_name = name;
    k_oi = oi;
    k_taps = (match taps with Some t -> t | None -> 0);
    k_level = level;
    k_tc = (match tc with Some t -> t | None -> tc_of_level level);
  }

(* Search (F, C) minimising |F/(4(3+2C)) - oi|, preferring smaller
   bodies on ties. F >= 1 + taps so the combine fold fits the budget. *)
let choose_shape ~oi ~taps =
  let best = ref (1 + taps, 0, infinity) in
  for c = 0 to 5 do
    for f = 1 + taps to 44 do
      let got = float_of_int f /. (4.0 *. float_of_int (3 + (2 * c))) in
      let err = Float.abs (got -. oi) in
      let _, _, berr = !best in
      if err < berr -. 1e-12 then best := (f, c, err)
    done
  done;
  let f, c, _ = !best in
  (f, c)

(* Spend [budget] flops on [e] with an FMA self-refinement chain (2 flops
   per step, one trailing multiply if odd). *)
let rec chain e w budget =
  if budget >= 2 then chain (fma e w e) w (budget - 2)
  else if budget = 1 then e *: w
  else e

(* Larger budgets split into two independent chains (seeded differently so
   CSE cannot merge them) combined at the end: ILP 2, like the multiple
   independent recurrences in the original unrolled loops. A single serial
   chain would make every kernel latency-bound instead of issue-bound. *)
let refine e w budget =
  if budget >= 6 then begin
    let rest = budget - 2 in  (* seed multiply + final add *)
    let b2 = rest / 2 in
    let b1 = rest - b2 in
    chain e w b1 +: chain (e *: w) w b2
  end
  else chain e w budget

let loop_of_spec s =
  let f, c = choose_shape ~oi:s.k_oi ~taps:s.k_taps in
  let arr i = Printf.sprintf "%s.x%d" s.k_name i in
  let w = param "w" 0.75 in
  (* Compute inputs: two streams, plus [taps] stencil neighbours. *)
  let l0 = a0 (arr 0) and l1 = a0 (arr 1) in
  let taps =
    List.init s.k_taps (fun t ->
        Load { base = arr (t mod 2); offset = 1 + (t / 2) })
  in
  (* Fold everything together: (l0 + l1) then alternating mul/add with the
     taps — [List.length taps + 1] flops. *)
  let folded, _ =
    List.fold_left
      (fun (e, flip) tap -> ((if flip then e *: tap else e +: tap), not flip))
      (l0 +: l1, true)
      taps
  in
  let body_flops_used = 1 + List.length taps in
  let expr = refine folded w (f - body_flops_used) in
  let compute = store (s.k_name ^ ".out") expr in
  let copies =
    List.init c (fun i ->
        store
          (Printf.sprintf "%s.c%dout" s.k_name i)
          (a0 (Printf.sprintf "%s.c%din" s.k_name i)))
  in
  validate
    (loop ~name:s.k_name ~trip_count:s.k_tc ~level:s.k_level
       (compute :: copies))

(** The analysed OI of the synthesized kernel, for cross-checking against
    the paper's Table 3 value. *)
let analysed_oi s = Occamy_compiler.Analysis.oi_of (loop_of_spec s)
