(** The 14 OpenCV kernels (core + imgproc) and the 12 OpenCV workloads of
    Table 3.

    Unlike the SPEC phases these are written out as the actual OpenCV
    computations (colour conversions, blending, norms, line fitting);
    several are reductions, which exercises the reduction-carry machinery
    during the co-running benchmarks. The analysed intensities land close
    to Table 3's values; exact deltas are reported by the `table3` bench
    section. *)

module Codegen = Occamy_compiler.Codegen
module Workload = Occamy_core.Workload
module Level = Occamy_mem.Level
module Loop_ir = Occamy_compiler.Loop_ir
open Occamy_compiler.Loop_ir

let compute_tc = 49152
let mem_tc = 12288

(* --- kernels -------------------------------------------------------- *)

(* fitLine2D (0.92): the moment sums of a 2D least-squares line fit. *)
let fit_line_2d =
  let x = a0 "flx" and y = a0 "fly" in
  let w = param "w" 0.5 in
  loop ~name:"fitLine2D" ~trip_count:compute_tc ~level:Level.Vec_cache
    [
      reduce_sum "fl_sx" (x *: w);
      reduce_sum "fl_sy" (y *: w);
      reduce_sum "fl_sxy" (x *: y);
      reduce_sum "fl_sxx" (x *: x);
      reduce_sum "fl_syy" (y *: y);
      reduce_sum "fl_sw" (fma x w y);
    ]

(* fitLine3D (0.44): moment sums over three coordinate streams. *)
let fit_line_3d =
  let x = a0 "f3x" and y = a0 "f3y" and z = a0 "f3z" in
  loop ~name:"fitLine3D" ~trip_count:compute_tc ~level:Level.Vec_cache
    [
      reduce_sum "f3_sxy" (x *: y);
      reduce_sum "f3_sxz" (x *: z);
      reduce_sum "f3_syz" (y *: z);
      reduce_sum "f3_sxx" (x *: x);
      reduce_sum "f3_szz" (z *: z);
    ]

(* addWeight (0.33): dst = saturate(a*alpha + b*beta)*gamma. *)
let add_weight =
  let a = a0 "awa" and b = a0 "awb" in
  loop ~name:"addWeight" ~trip_count:mem_tc ~level:Level.L2
    [
      store "awdst"
        (fma (b *: param "beta" 0.4) a (param "alpha" 0.6)
        *: param "gamma" 1.0);
    ]

(* compare (0.25): per-element ordering distance. *)
let compare_k =
  let a = a0 "cma" and b = a0 "cmb" in
  loop ~name:"compare" ~trip_count:mem_tc ~level:Level.L2
    [ store "cmdst" (max_ a b -: min_ a b) ]

(* rgb2xyz (0.63): 3x3 colour matrix. *)
let rgb2xyz =
  let r = a0 "xzr" and g = a0 "xzg" and b = a0 "xzb" in
  let row n c1 c2 c3 =
    store n
      (fma (fma (b *: param (n ^ "c3") c3) g (param (n ^ "c2") c2)) r
         (param (n ^ "c1") c1))
  in
  loop ~name:"rgb2xyz" ~trip_count:compute_tc ~level:Level.Vec_cache
    [
      row "xzX" 0.4124 0.3576 0.1805;
      row "xzY" 0.2126 0.7152 0.0722;
      row "xzZ" 0.0193 0.1192 0.9505;
    ]

(* rgb2gray (0.31): one colour row. *)
let rgb2gray =
  let r = a0 "gyr" and g = a0 "gyg" and b = a0 "gyb" in
  loop ~name:"rgb2gray" ~trip_count:mem_tc ~level:Level.L2
    [
      store "gydst"
        (fma (fma (b *: param "gc3" 0.114) g (param "gc2" 0.587)) r
           (param "gc1" 0.299));
    ]

(* rgb2ycrcb (0.42): luma plus two difference channels. *)
let rgb2ycrcb =
  let r = a0 "ycr" and g = a0 "ycg" and b = a0 "ycb" in
  let y =
    fma (fma (b *: param "yc3" 0.114) g (param "yc2" 0.587)) r
      (param "yc1" 0.299)
  in
  loop ~name:"rgb2ycrcb" ~trip_count:compute_tc ~level:Level.Vec_cache
    [
      store "ycY" y;
      store "ycCr" (fma (c 128.0) (r -: y) (param "crc" 0.713));
      store "ycCb" ((b -: y) *: param "cbc" 0.564);
    ]

(* rgb2hsv (1.83): min/max cone plus division-free refinement (the
   vectorized OpenCV path replaces the data-dependent branches with
   arithmetic selects and reciprocal refinement, hence the high
   intensity). *)
let rgb2hsv =
  let r = a0 "hvr" and g = a0 "hvg" and b = a0 "hvb" in
  let w = param "hw" 0.99 in
  let v = max_ r (max_ g b) in
  let mn = min_ r (min_ g b) in
  let diff = v -: mn in
  let s0 = diff /: (v +: c 1e-3) in
  let h0 = (g -: b) /: (diff +: c 1e-3) in
  let rec chain e n = if n = 0 then e else chain (fma e w e) (n - 1) in
  loop ~name:"rgb2hsv" ~trip_count:compute_tc ~level:Level.Vec_cache
    [
      store "hvV" (chain v 5);
      store "hvS" (chain s0 5);
      store "hvH" (chain (fma (c 60.0) h0 (param "hscale" 30.0)) 6);
    ]

(* calcDist3D (0.875): Euclidean distance to a fixed point with a Newton
   square-root refinement. *)
let calc_dist_3d =
  let x = a0 "cdx" and y = a0 "cdy" and z = a0 "cdz" in
  let dx = x -: param "cpx" 0.5
  and dy = y -: param "cpy" (-0.25)
  and dz = z -: param "cpz" 1.25 in
  let d2 = fma (fma (dx *: dx) dy dy) dz dz in
  let s = sqrt_ d2 in
  let refined = fma (fma s d2 (param "cw2" 0.25)) s (param "cw" 0.5) in
  loop ~name:"calcDist3D" ~trip_count:compute_tc ~level:Level.Vec_cache
    [ store "cddst" (refined *: param "cw3" 0.5) ]

(* accProd (0.17): acc += a*b, a streaming multiply-accumulate image op. *)
let acc_prod =
  let a = a0 "apa" and b = a0 "apb" in
  loop ~name:"accProd" ~trip_count:mem_tc ~level:Level.L2
    [ store "apacc" (fma (a0 "apacc") (c 1.0) (a *: b)) ]

(* dotProd (0.25). *)
let dot_prod =
  let a = a0 "dpa" and b = a0 "dpb" in
  loop ~name:"dotProd" ~trip_count:mem_tc ~level:Level.L2
    [ reduce_sum "dp" ((a *: b) *: param "dpw" 1.0) ]

(* normL1 (0.5) and normL2 (0.25). *)
let norm_l1 =
  loop ~name:"normL1" ~trip_count:compute_tc ~level:Level.Vec_cache
    [ reduce_sum "nl1" (abs_ (a0 "n1x") *: param "n1w" 1.0) ]

let norm_l2 =
  loop ~name:"normL2" ~trip_count:mem_tc ~level:Level.L2
    [ reduce_sum "nl2" (a0 "n2x" *: a0 "n2x") ]

(* blend (0.3): linear interpolation with gain. *)
let blend =
  let a = a0 "bla" and b = a0 "blb" in
  loop ~name:"blend" ~trip_count:mem_tc ~level:Level.L2
    [ store "bldst" (fma a (b -: a) (param "blw" 0.3) *: param "blg" 1.0) ]

let kernels =
  [
    fit_line_2d; fit_line_3d; add_weight; compare_k; rgb2xyz; rgb2gray;
    rgb2ycrcb; rgb2hsv; calc_dist_3d; acc_prod; dot_prod; norm_l1; norm_l2;
    blend;
  ]

(* --- the 12 OpenCV workloads of Table 3 ----------------------------- *)

let table : (int * Loop_ir.t list) list =
  [
    (1, [ fit_line_2d ]);
    (2, [ add_weight; compare_k ]);
    (3, [ rgb2xyz ]);
    (4, [ calc_dist_3d ]);
    (5, [ rgb2hsv ]);
    (6, [ acc_prod; dot_prod ]);
    (7, [ norm_l1; norm_l2 ]);
    (8, [ compare_k; acc_prod ]);
    (9, [ blend; fit_line_3d ]);
    (10, [ dot_prod; add_weight ]);
    (11, [ blend; compare_k ]);
    (12, [ rgb2ycrcb; rgb2gray ]);
  ]

let loops_of id =
  match List.assoc_opt id table with
  | Some loops -> loops
  | None -> invalid_arg (Printf.sprintf "Opencv.loops_of: no OpenCV WL%d" id)

let kind_of loops =
  let ois =
    List.map (fun l -> (Occamy_compiler.Analysis.oi_of l).Occamy_isa.Oi.mem) loops
  in
  let mx = List.fold_left Float.max 0.0 ois in
  if mx >= 0.5 then Workload.Compute_intensive
  else if Occamy_util.Stats.mean ois < 0.3 then Workload.Memory_intensive
  else Workload.Mixed

let scale_loop tc_scale (l : Loop_ir.t) =
  { l with trip_count = max 64 (int_of_float (float_of_int l.trip_count *. tc_scale)) }

(** Compile OpenCV workload [id] (1..12). *)
let workload ?options ?(tc_scale = 1.0) id =
  let loops = List.map (scale_loop tc_scale) (loops_of id) in
  Codegen.compile_workload ?options
    ~name:(Printf.sprintf "OCV%d" id)
    ~kind:(kind_of loops) loops

let ids = List.map fst table
