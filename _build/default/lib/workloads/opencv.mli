(** The 14 OpenCV kernels (written out as the actual computations: colour
    conversions, blending, norms, line-fit moment sums) and the 12 OpenCV
    workloads of Table 3. *)

val kernels : Occamy_compiler.Loop_ir.t list
val table : (int * Occamy_compiler.Loop_ir.t list) list
val ids : int list
val loops_of : int -> Occamy_compiler.Loop_ir.t list
val kind_of : Occamy_compiler.Loop_ir.t list -> Occamy_core.Workload.kind

val workload :
  ?options:Occamy_compiler.Codegen.options -> ?tc_scale:float -> int ->
  Occamy_core.Workload.t
(** Compile OpenCV workload 1..12. *)
