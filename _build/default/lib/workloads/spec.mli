(** The 22 SPECCPU2017-derived workloads of Table 3, synthesized to the
    paper's per-phase operational intensities ([rho_eos2] at 0.25 carries
    the Case-4 data reuse). *)

val table : (int * Synth.spec list) list
val ids : int list
val specs_of : int -> Synth.spec list
val kind_of : Synth.spec list -> Occamy_core.Workload.kind

val workload :
  ?options:Occamy_compiler.Codegen.options -> ?tc_scale:float -> int ->
  Occamy_core.Workload.t
(** Compile SPEC workload 1..22; [tc_scale] shrinks trip counts (tests). *)
