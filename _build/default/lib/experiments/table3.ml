(** Table 3 cross-check: the paper's per-phase operational intensities
    next to the Equation-5 analysis of our re-authored kernels, plus the
    Table 4 machine-parameter listing. *)

module Table = Occamy_util.Table
module Config = Occamy_core.Config

let table3 () =
  let tbl =
    Table.create
      ~title:
        "Table 3: workload phases — paper oi_mem vs analysed oi_mem of the \
         synthesized kernel"
      ~header:[ "workload"; "phase"; "paper"; "analysed"; "delta" ]
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun (wl, phase, paper, got) ->
      Table.add_row tbl
        [
          wl;
          phase;
          Table.fcell ~digits:3 paper;
          Table.fcell ~digits:3 got;
          Table.fcell ~digits:3 (Float.abs (got -. paper));
        ])
    (Occamy_workloads.Suite.table3_rows ());
  tbl

let table4 ?(cfg = Config.default) () =
  let tbl =
    Table.create ~title:"Table 4: micro-architectural parameters"
      ~header:[ "parameter"; "value" ]
      ~aligns:[ Table.Left; Table.Left ] ()
  in
  List.iter (fun (k, v) -> Table.add_row tbl [ k; v ]) (Config.table4_rows cfg);
  tbl

(** Worst absolute OI mismatch across all phases — tested to stay small. *)
let max_oi_error () =
  List.fold_left
    (fun acc (_, _, paper, got) -> Float.max acc (Float.abs (got -. paper)))
    0.0
    (Occamy_workloads.Suite.table3_rows ())
