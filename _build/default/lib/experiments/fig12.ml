(** Figure 12: chip-area breakdown of the four architectures (2-core
    configuration, TSMC 7nm in the paper; our calibrated analytic model). *)

module Arch = Occamy_core.Arch
module Area = Occamy_core.Area
module Table = Occamy_util.Table

let area_table ?(cores = 2) () =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 12: area breakdown, %d-core configuration (mm^2) [paper \
            totals: 1.263 for Private/FTS/VLS, 1.265 for Occamy; exe 46%%, \
            LSU 23%%, regfile 15%%]"
           cores)
      ~header:
        ("Component" :: List.map Arch.name Arch.all)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) Arch.all)
      ()
  in
  List.iter
    (fun comp ->
      Table.add_row tbl
        (Area.component_name comp
        :: List.map
             (fun arch ->
               Table.fcell ~digits:3 (Area.component_mm2 arch ~cores comp))
             Arch.all))
    Area.components;
  Table.add_row tbl
    ("Total"
    :: List.map
         (fun arch -> Table.fcell ~digits:3 (Area.total_mm2 arch ~cores))
         Arch.all);
  tbl

let fts_overhead_note () =
  Printf.sprintf
    "4-core FTS keeps the 2-core per-core register count: %.1f%% more area \
     than the other 4-core architectures (paper: 33.5%%)"
    (100.0 *. Area.fts_four_core_overhead ())
