lib/experiments/pair_run.ml: Array Fun List Occamy_core Occamy_util Occamy_workloads
