lib/experiments/fig14.ml: Array Fmt List Occamy_compiler Occamy_core Occamy_isa Occamy_lanemgr Occamy_mem Occamy_util Occamy_workloads Printf
