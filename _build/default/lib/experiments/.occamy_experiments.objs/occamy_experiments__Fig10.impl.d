lib/experiments/fig10.ml: List Occamy_core Occamy_util Occamy_workloads Pair_run Printf
