lib/experiments/fig2.ml: Array List Occamy_core Occamy_util Occamy_workloads Printf
