lib/experiments/table3.ml: Float List Occamy_core Occamy_util Occamy_workloads
