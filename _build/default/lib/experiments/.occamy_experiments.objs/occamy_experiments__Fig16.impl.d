lib/experiments/fig16.ml: List Occamy_core Occamy_util Occamy_workloads
