lib/experiments/fig12.ml: List Occamy_core Occamy_util Printf
