lib/experiments/export.ml: Array Buffer Fig10 Fig2 Filename Fun List Occamy_core Occamy_workloads Pair_run Printf String Sys
