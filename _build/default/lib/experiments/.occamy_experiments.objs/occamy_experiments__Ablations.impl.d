lib/experiments/ablations.ml: Array List Occamy_compiler Occamy_core Occamy_util Occamy_workloads
