(** Figure 2: the motivating example — WL#0 (654.rom_s, memory-intensive,
    two phases) co-running with WL#1 (621.wrf_s, compute-intensive) on the
    four architectures. Produces the Figure 2(f) statistics table and the
    per-1000-cycle lane-occupancy timelines of Figures 2(b)-(e). *)

module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Metrics = Occamy_core.Metrics
module Motivating = Occamy_workloads.Motivating
module Table = Occamy_util.Table

type t = { results : (Arch.t * Metrics.t) list }

let run ?cfg () =
  {
    results =
      List.map
        (fun arch -> (arch, Sim.simulate ?cfg ~arch (Motivating.pair ())))
        Arch.all;
  }

let result t arch = List.assoc arch t.results

(* Paper's Figure 2(f) numbers for side-by-side comparison. *)
let paper_row = function
  | Arch.Private -> ("1.00x", "1.00x", "60.6%")
  | Arch.Fts -> ("1.00x", "1.41x", "84.7%")
  | Arch.Vls -> ("1.00x", "1.25x", "75.6%")
  | Arch.Occamy -> ("0.98x", "1.62x", "96.7%")

let stats_table t =
  let base = result t Arch.Private in
  let tbl =
    Table.create ~title:"Figure 2(f): motivating-example statistics"
      ~header:
        [ "Arch"; "VL WL#0"; "VL WL#1"; "issue p1"; "issue p2"; "issue WL#1";
          "time WL#0"; "time WL#1"; "speedup0"; "speedup1"; "util";
          "paper(s0,s1,util)" ]
      ~aligns:(Table.Left :: List.init 11 (fun _ -> Table.Right))
      ()
  in
  List.iter
    (fun arch ->
      let r = result t arch in
      let c0 = r.Metrics.cores.(0) and c1 = r.Metrics.cores.(1) in
      let phase_issue c i =
        match List.nth_opt c.Metrics.phases i with
        | Some p -> Table.fcell (Metrics.ps_issue_rate p)
        | None -> "-"
      in
      let avg_lanes c =
        let vls = List.map (fun p -> p.Metrics.ps_avg_vl) c.Metrics.phases in
        Table.fcell ~digits:1 (4.0 *. Occamy_util.Stats.mean vls)
      in
      let p0, p1, pu = paper_row arch in
      Table.add_row tbl
        [
          Arch.name arch;
          avg_lanes c0;
          avg_lanes c1;
          phase_issue c0 0;
          phase_issue c0 1;
          phase_issue c1 0;
          Table.icell c0.Metrics.finish;
          Table.icell c1.Metrics.finish;
          Table.xcell (Metrics.speedup_vs ~baseline:base r ~core:0);
          Table.xcell (Metrics.speedup_vs ~baseline:base r ~core:1);
          Table.pcell r.Metrics.simd_util;
          Printf.sprintf "%s %s %s" p0 p1 pu;
        ])
    Arch.all;
  tbl

(* Figures 2(b)-(e): average busy lanes per core per 1000-cycle bucket. *)
let timeline_table t arch =
  let r = result t arch in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "Figure 2(%c): %s lane occupancy per 1000 cycles"
           (match arch with
           | Arch.Private -> 'b'
           | Arch.Fts -> 'c'
           | Arch.Vls -> 'd'
           | Arch.Occamy -> 'e')
           (Arch.name arch))
      ~header:[ "kcycle"; "core0 lanes"; "core1 lanes"; "core1 held (VL)" ]
      ()
  in
  let t0 = r.Metrics.cores.(0).Metrics.lanes_timeline in
  let t1 = r.Metrics.cores.(1).Metrics.lanes_timeline in
  let v1 = r.Metrics.cores.(1).Metrics.vl_timeline in
  let n = max (Array.length t0) (Array.length t1) in
  for i = 0 to n - 1 do
    let get a = if i < Array.length a then a.(i) else 0.0 in
    Table.add_row tbl
      [
        Table.icell i;
        Table.fcell ~digits:1 (get t0);
        Table.fcell ~digits:1 (get t1);
        Table.fcell ~digits:1 (4.0 *. get v1);
      ]
  done;
  tbl
