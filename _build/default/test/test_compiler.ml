module Loop_ir = Occamy_compiler.Loop_ir
module Dag = Occamy_compiler.Dag
module Analysis = Occamy_compiler.Analysis
module Codegen = Occamy_compiler.Codegen
module Vectorize = Occamy_compiler.Vectorize
module Instr = Occamy_isa.Instr
module Oi = Occamy_isa.Oi
module Program = Occamy_isa.Program
module Workload = Occamy_core.Workload

open Loop_ir

let simple_loop =
  loop ~name:"simple" ~trip_count:128
    [ store "c" ("a".%[0] +: "b".%[0]) ]

let stencil_loop =
  (* 4 load instructions over 2 arrays + 1 store: issue over 5 accesses,
     footprint over 3 arrays. *)
  loop ~name:"stencil" ~trip_count:64
    [ store "o" (("a".%[0] +: "a".%[1]) *: ("b".%[0] +: "b".%[-1])) ]

let test_dag_cse () =
  (* (x+y) appears twice; the DAG must share it, and the repeated load of
     a[0] must be a single node. *)
  let body =
    [
      store "o" (("a".%[0] +: "b".%[0]) *: ("a".%[0] +: "b".%[0]));
    ]
  in
  let dag = Dag.build body in
  Helpers.check_int "loads shared" 2 (Dag.count_loads dag);
  (* one add (shared) + one mul *)
  Helpers.check_int "ops shared" 2 (Dag.count_ops dag)

let test_analysis_simple () =
  let r = Analysis.analyse simple_loop in
  Helpers.check_int "flops" 1 r.Analysis.comp_flops;
  Helpers.check_int "loads" 2 r.Analysis.load_instrs;
  Helpers.check_int "stores" 1 r.Analysis.store_instrs;
  Helpers.check_int "issue bytes" 12 r.Analysis.issue_bytes;
  Helpers.check_int "footprint" 12 r.Analysis.footprint_bytes;
  Helpers.check_float "oi issue" (1.0 /. 12.0) r.Analysis.oi.Oi.issue;
  Helpers.check_float "oi mem" (1.0 /. 12.0) r.Analysis.oi.Oi.mem;
  Helpers.check_bool "no reuse" false (Analysis.has_reuse simple_loop)

let test_analysis_stencil_reuse () =
  let r = Analysis.analyse stencil_loop in
  Helpers.check_int "4 loads" 4 r.Analysis.load_instrs;
  Helpers.check_int "issue bytes 20" 20 r.Analysis.issue_bytes;
  Helpers.check_int "footprint 12" 12 r.Analysis.footprint_bytes;
  Helpers.check_bool "reuse detected" true (Analysis.has_reuse stencil_loop);
  Helpers.check_bool "oi_issue < oi_mem" true
    (r.Analysis.oi.Oi.issue < r.Analysis.oi.Oi.mem)

let test_analysis_fma_flops () =
  let l = loop ~name:"f" ~trip_count:8 [ store "o" (fma "a".%[0] "b".%[0] "c".%[0]) ] in
  let r = Analysis.analyse l in
  Helpers.check_int "fma counts 2" 2 r.Analysis.comp_flops;
  Helpers.check_int "one instruction" 1 r.Analysis.comp_instrs

let test_validate_rejects () =
  Helpers.check_bool "zero trip count" true
    (try
       ignore (Loop_ir.validate (loop ~name:"z" ~trip_count:0 []));
       false
     with Invalid_argument _ -> true);
  Helpers.check_bool "huge offset" true
    (try
       ignore
         (Loop_ir.validate
            (loop ~name:"o" ~trip_count:4 [ store "o" "a".%[100] ]));
       false
     with Invalid_argument _ -> true)

let count_instrs p pred =
  Array.fold_left (fun n i -> if pred i then n + 1 else n) 0 p.Program.code

let test_codegen_figure9_structure () =
  let wl =
    Codegen.compile_workload ~name:"w" ~kind:Workload.Mixed [ simple_loop ]
  in
  let p = wl.Workload.program in
  (* One non-zero OI write (prologue), one zero write (epilogue). *)
  let oi_writes =
    count_instrs p (function Instr.Msr_oi _ -> true | _ -> false)
  in
  Helpers.check_int "two OI writes" 2 oi_writes;
  (* Initial configuration + monitor + release all write <VL>. *)
  let vl_writes =
    count_instrs p (function Instr.Msr (Occamy_isa.Sysreg.VL, _) -> true | _ -> false)
  in
  Helpers.check_int "three VL writes" 3 vl_writes;
  (* Monitor reads <decision> at the loop head. *)
  let decision_reads =
    count_instrs p (function
      | Instr.Mrs (_, Occamy_isa.Sysreg.DECISION) -> true
      | _ -> false)
  in
  Helpers.check_bool "decision reads present" true (decision_reads >= 2);
  Helpers.check_int "ends with halt" 1
    (count_instrs p (function Instr.Halt -> true | _ -> false))

let test_codegen_phase_metadata () =
  let wl =
    Codegen.compile_workload ~name:"w" ~kind:Workload.Memory_intensive
      [ simple_loop; stencil_loop ]
  in
  Helpers.check_int "two phases" 2 (List.length wl.Workload.phases);
  let p1 = List.nth wl.Workload.phases 0 in
  Helpers.check_bool "phase names" true (p1.Workload.ph_name = "simple");
  Helpers.check_int "trip count" 128 p1.Workload.ph_trip_count;
  Helpers.check_int "profiles cover arrays" (Array.length wl.Workload.profiles)
    (Array.length wl.Workload.program.Program.arrays)

let test_codegen_no_monitor_option () =
  let options = { Codegen.default_options with monitor = false } in
  let wl =
    Codegen.compile_workload ~options ~name:"w" ~kind:Workload.Mixed
      [ simple_loop ]
  in
  let p = wl.Workload.program in
  (* Without the monitor there is no lazy reconfiguration: only the
     prologue configuration and the epilogue release write <VL>. *)
  Helpers.check_int "two VL writes" 2
    (count_instrs p (function Instr.Msr (Occamy_isa.Sysreg.VL, _) -> true | _ -> false))

let test_codegen_hoisting () =
  let l = { simple_loop with outer_reps = 5 } in
  let hoisted =
    Codegen.compile_workload ~name:"h" ~kind:Workload.Mixed [ l ]
  in
  let inside =
    Codegen.compile_workload
      ~options:{ Codegen.default_options with hoist = false }
      ~name:"i" ~kind:Workload.Mixed [ l ]
  in
  let count_oi wl =
    count_instrs wl.Workload.program (function Instr.Msr_oi _ -> true | _ -> false)
  in
  (* Static instruction counts are equal; the difference is dynamic. The
     metadata records how many prologue executions to expect. *)
  Helpers.check_int "hoisted static OI writes" 2 (count_oi hoisted);
  Helpers.check_int "inside static OI writes" 2 (count_oi inside);
  Helpers.check_int "hoisted dynamic" 1
    (List.hd hoisted.Workload.phases).Workload.ph_oi_writes;
  Helpers.check_int "inside dynamic" 5
    (List.hd inside.Workload.phases).Workload.ph_oi_writes

let test_reduction_lowering () =
  let l =
    loop ~name:"dot" ~trip_count:32 [ reduce_sum "dot" ("a".%[0] *: "b".%[0]) ]
  in
  let wl = Codegen.compile_workload ~name:"w" ~kind:Workload.Mixed [ l ] in
  let p = wl.Workload.program in
  (* The reduction allocates a one-element output array. *)
  Helpers.check_bool "output array exists" true
    (Array.exists
       (fun d -> d.Program.arr_name = "dot.out" && d.Program.arr_size = 1)
       p.Program.arrays);
  (* Vred appears in save-partials and finalize paths. *)
  Helpers.check_bool "vred emitted" true
    (count_instrs p (function Instr.Vred _ -> true | _ -> false) >= 1)

let test_register_reuse_bounded () =
  (* A long expression chain must not exhaust the vector registers. *)
  let rec chain n = if n = 0 then "a".%[0] else chain (n - 1) +: "b".%[0] in
  let l = loop ~name:"chain" ~trip_count:16 [ store "o" (chain 40) ] in
  let wl = Codegen.compile_workload ~name:"w" ~kind:Workload.Mixed [ l ] in
  Helpers.check_bool "compiles" true (Program.length wl.Workload.program > 0)

let test_array_plan_padding () =
  let plan = Codegen.array_plan [ stencil_loop ] in
  (* "a" is read at offsets 0 and +1 and the loop starts at lo=1 because
     "b" reads offset -1: size = 1 + 64 + 1. *)
  Helpers.check_int "a padded" 66 (List.assoc "a" plan);
  Helpers.check_int "b padded" 65 (List.assoc "b" plan);
  Helpers.check_int "o padded" 65 (List.assoc "o" plan)

let qcheck_analysis_footprint_le_issue =
  (* Footprint (distinct arrays) never exceeds issue bytes (all access
     instructions): oi_issue <= oi_mem always. *)
  let gen_body =
    QCheck2.Gen.(
      let arr = oneofl [ "a"; "b"; "c"; "d" ] in
      let off = int_range (-2) 2 in
      let leaf = map2 (fun a o -> Loop_ir.Load { base = a; offset = o }) arr off in
      let expr =
        sized_size (int_range 1 4) @@ fix (fun self n ->
            if n <= 0 then leaf
            else
              frequency
                [ (1, leaf);
                  (2,
                   map2
                     (fun a b -> Loop_ir.Op (Occamy_isa.Vop.Add, [ a; b ]))
                     (self (n / 2)) (self (n / 2)));
                ])
      in
      map (fun e -> [ Loop_ir.Store ({ base = "out"; offset = 0 }, e) ]) expr)
  in
  QCheck2.Test.make ~name:"oi_issue <= oi_mem on random bodies" gen_body
    (fun body ->
      let l = loop ~name:"q" ~trip_count:8 body in
      let r = Analysis.analyse l in
      r.Analysis.oi.Oi.issue <= r.Analysis.oi.Oi.mem +. 1e-9)

let suites =
  [
    ( "compiler",
      [
        Alcotest.test_case "dag cse" `Quick test_dag_cse;
        Alcotest.test_case "analysis simple (Eq 5)" `Quick test_analysis_simple;
        Alcotest.test_case "analysis stencil reuse" `Quick test_analysis_stencil_reuse;
        Alcotest.test_case "fma flops" `Quick test_analysis_fma_flops;
        Alcotest.test_case "validation" `Quick test_validate_rejects;
        Alcotest.test_case "figure 9 structure" `Quick test_codegen_figure9_structure;
        Alcotest.test_case "phase metadata" `Quick test_codegen_phase_metadata;
        Alcotest.test_case "monitor option" `Quick test_codegen_no_monitor_option;
        Alcotest.test_case "hoisting" `Quick test_codegen_hoisting;
        Alcotest.test_case "reduction lowering" `Quick test_reduction_lowering;
        Alcotest.test_case "register reuse" `Quick test_register_reuse_bounded;
        Alcotest.test_case "array plan padding" `Quick test_array_plan_padding;
      ] );
    Helpers.qsuite "compiler.qcheck" [ qcheck_analysis_footprint_le_issue ];
  ]
