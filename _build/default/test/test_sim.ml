(* Integration tests of the cycle-level simulator: the four architectures
   run real compiled workloads; lane conservation, drains and orderings are
   checked every 1024 cycles inside the simulator itself. *)

module Loop_ir = Occamy_compiler.Loop_ir
module Codegen = Occamy_compiler.Codegen
module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Metrics = Occamy_core.Metrics
module Workload = Occamy_core.Workload
module Level = Occamy_mem.Level

open Loop_ir

let mem_loop ?(tc = 4096) () =
  loop ~name:"mem_phase" ~trip_count:tc ~level:Level.L2
    [ store "mo" ((("ma".%[0] +: "mb".%[0]) +: "mc".%[0]) +: "md".%[0]) ]

let compute_loop ?(tc = 24576) () =
  let x = "ca".%[0] and y = "cb".%[0] in
  let rec chain n acc = if n = 0 then acc else chain (n - 1) (fma acc x y) in
  loop ~name:"compute_phase" ~trip_count:tc ~level:Level.Vec_cache
    [ store "co" (chain 6 (x +: y)) ]

let mem_wl ?tc () =
  Codegen.compile_workload ~name:"memWL" ~kind:Workload.Memory_intensive
    [ mem_loop ?tc () ]

let compute_wl ?tc () =
  Codegen.compile_workload ~name:"compWL" ~kind:Workload.Compute_intensive
    [ compute_loop ?tc () ]

let run arch = Sim.simulate ~arch [ mem_wl (); compute_wl () ]

let results = lazy (List.map (fun a -> (a, run a)) Arch.all)
let result arch = List.assoc arch (Lazy.force results)

let test_all_archs_complete () =
  List.iter
    (fun arch ->
      let r = result arch in
      Helpers.check_bool
        (Printf.sprintf "%s finished" (Arch.name arch))
        true
        (r.Metrics.total_cycles > 0
        && Array.for_all (fun c -> c.Metrics.finish > 0) r.Metrics.cores))
    Arch.all

let test_work_conservation () =
  (* Every architecture issues the same number of compute instructions per
     core modulo vector width: the total element work is fixed. The widths
     differ, so compare work = sum(width*instr) via flops... we check the
     weaker, width-independent invariant: everyone finishes both phases. *)
  List.iter
    (fun arch ->
      let r = result arch in
      Array.iter
        (fun c ->
          Helpers.check_bool
            (Printf.sprintf "%s core%d ran phases" (Arch.name arch) c.Metrics.core)
            true
            (List.length c.Metrics.phases >= 1))
        r.Metrics.cores)
    Arch.all

let test_occamy_reconfigures () =
  let r = result Arch.Occamy in
  Helpers.check_bool "replans happened" true (r.Metrics.replans >= 2);
  let total_reconfigs =
    Array.fold_left (fun n c -> n + c.Metrics.reconfigs) 0 r.Metrics.cores
  in
  (* At least: both prologues + both releases. *)
  Helpers.check_bool "reconfigs happened" true (total_reconfigs >= 4)

let test_private_is_static () =
  let r = result Arch.Private in
  Array.iter
    (fun c ->
      (* Private cores configure once and release once. *)
      Helpers.check_int
        (Printf.sprintf "core%d reconfig count" c.Metrics.core)
        2 c.Metrics.reconfigs)
    r.Metrics.cores

let test_compute_core_speedup_ordering () =
  let private_ = result Arch.Private in
  let occamy = result Arch.Occamy in
  let fts = result Arch.Fts in
  let vls = result Arch.Vls in
  let sp r = Metrics.speedup_vs ~baseline:private_ r ~core:1 in
  (* The headline qualitative result: Occamy speeds up the
     compute-intensive co-runner the most; all sharing schemes beat or
     match Private. *)
  Helpers.check_bool "occamy >= 1" true (sp occamy >= 1.0);
  Helpers.check_bool "occamy beats vls" true (sp occamy >= sp vls -. 0.02);
  Helpers.check_bool "occamy beats fts" true (sp occamy >= sp fts -. 0.02)

let test_memory_core_unharmed () =
  let private_ = result Arch.Private in
  let occamy = result Arch.Occamy in
  (* The paper reports ~0.98x (Fig 2(f)); with these deliberately short
     test phases the fixed reconfiguration drains weigh more, so accept a
     looser bound here. The bench harness checks the realistic-length
     workloads. *)
  let sp0 = Metrics.speedup_vs ~baseline:private_ occamy ~core:0 in
  Helpers.check_bool "memory workload roughly unharmed" true (sp0 > 0.75)

let test_utilization_ordering () =
  let u a = (result a).Metrics.simd_util in
  Helpers.check_bool "occamy most utilised" true
    (u Arch.Occamy >= u Arch.Private);
  List.iter
    (fun a ->
      let v = u a in
      Helpers.check_bool (Arch.name a ^ " util sane") true (v > 0.0 && v <= 1.0))
    Arch.all

let test_fts_rename_pressure () =
  let fts = result Arch.Fts in
  let occamy = result Arch.Occamy in
  let stalls r =
    Array.fold_left (fun n c -> n + c.Metrics.rename_stall_cycles) 0 r.Metrics.cores
  in
  Helpers.check_bool "FTS stalls dominate" true (stalls fts > 10 * (stalls occamy + 1))

let test_phase_stats_recorded () =
  let r = result Arch.Occamy in
  let c1 = r.Metrics.cores.(1) in
  (match c1.Metrics.phases with
  | [ p ] ->
    Helpers.check_bool "issue rate positive" true (Metrics.ps_issue_rate p > 0.1);
    Helpers.check_bool "avg vl sane" true
      (p.Metrics.ps_avg_vl >= 1.0 && p.Metrics.ps_avg_vl <= 8.0)
  | ps -> Alcotest.failf "expected 1 phase, got %d" (List.length ps));
  Helpers.check_bool "timeline non-empty" true
    (Array.length c1.Metrics.lanes_timeline > 0)

let test_occamy_gives_all_lanes_after_exit () =
  (* Run a short memory workload against a long compute workload: after
     the memory one exits, the compute one must reach full width. *)
  let wls = [ mem_wl ~tc:1024 (); compute_wl ~tc:16384 () ] in
  let r = Sim.simulate ~arch:Arch.Occamy wls in
  let vls = r.Metrics.cores.(1).Metrics.vl_timeline in
  let peak = Array.fold_left Float.max 0.0 vls in
  Helpers.check_bool "compute workload reached full width" true (peak > 7.0)

let test_vls_never_grows () =
  let wls = [ mem_wl ~tc:1024 (); compute_wl ~tc:16384 () ] in
  let r = Sim.simulate ~arch:Arch.Vls wls in
  let vls = r.Metrics.cores.(1).Metrics.vl_timeline in
  let peak = Array.fold_left Float.max 0.0 vls in
  (* Static spatial sharing cannot exploit the freed lanes (§2.1). *)
  Helpers.check_bool "VLS stays at its static share" true (peak <= 7.0)

let test_overhead_small () =
  let r = result Arch.Occamy in
  Array.iter
    (fun c ->
      let mon, rec_ =
        Metrics.overhead r ~frontend_width:Config.default.Config.frontend_width
          ~core:c.Metrics.core
      in
      Helpers.check_bool
        (Printf.sprintf "core%d overhead < 15%%" c.Metrics.core)
        true
        (mon +. rec_ < 0.15))
    r.Metrics.cores

let test_four_core_machine () =
  let cfg = Config.four_core in
  let wls =
    [ mem_wl ~tc:3072 (); mem_wl ~tc:3072 (); compute_wl ~tc:3072 ();
      compute_wl ~tc:3072 () ]
  in
  List.iter
    (fun arch ->
      let r = Sim.simulate ~cfg ~arch wls in
      Helpers.check_bool
        (Printf.sprintf "4-core %s completes" (Arch.name arch))
        true
        (Array.for_all (fun c -> c.Metrics.finish > 0) r.Metrics.cores))
    Arch.all

let test_workload_count_mismatch_rejected () =
  Helpers.check_bool "wrong workload count" true
    (try
       ignore (Sim.simulate ~arch:Arch.Private [ mem_wl () ]);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "sim",
      [
        Alcotest.test_case "all archs complete" `Quick test_all_archs_complete;
        Alcotest.test_case "phases complete" `Quick test_work_conservation;
        Alcotest.test_case "occamy reconfigures" `Quick test_occamy_reconfigures;
        Alcotest.test_case "private static" `Quick test_private_is_static;
        Alcotest.test_case "speedup ordering" `Quick test_compute_core_speedup_ordering;
        Alcotest.test_case "memory core unharmed" `Quick test_memory_core_unharmed;
        Alcotest.test_case "utilization ordering" `Quick test_utilization_ordering;
        Alcotest.test_case "fts rename pressure" `Quick test_fts_rename_pressure;
        Alcotest.test_case "phase stats" `Quick test_phase_stats_recorded;
        Alcotest.test_case "elastic full width after exit" `Quick
          test_occamy_gives_all_lanes_after_exit;
        Alcotest.test_case "vls never grows" `Quick test_vls_never_grows;
        Alcotest.test_case "overhead small" `Quick test_overhead_small;
        Alcotest.test_case "four-core machine" `Quick test_four_core_machine;
        Alcotest.test_case "workload count" `Quick test_workload_count_mismatch_rejected;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* OS context switches (§5)                                            *)
(* ------------------------------------------------------------------ *)

let test_context_switch_completes () =
  (* Preempt the memory workload mid-phase on every architecture: all
     workloads still finish, and the preempted one pays roughly the
     descheduled time. *)
  List.iter
    (fun arch ->
      let base = Sim.simulate ~arch [ mem_wl (); compute_wl () ] in
      let r =
        Sim.simulate ~context_switches:[ (0, 500) ] ~arch
          [ mem_wl (); compute_wl () ]
      in
      let away = Config.default.Config.cs_away_cycles in
      let slowdown =
        r.Metrics.cores.(0).Metrics.finish - base.Metrics.cores.(0).Metrics.finish
      in
      Helpers.check_bool
        (Printf.sprintf "%s: preempted core pays the away time" (Arch.name arch))
        true
        (slowdown >= away / 2 && slowdown < (3 * away));
      Helpers.check_bool
        (Printf.sprintf "%s: both finish" (Arch.name arch))
        true
        (Array.for_all (fun c -> c.Metrics.finish > 0) r.Metrics.cores))
    Arch.all

let test_context_switch_gives_lanes_away () =
  (* On the elastic machine, the descheduled task's lanes go to the
     co-runner: while core0 is away, core1 should reach full width. *)
  let r =
    Sim.simulate ~context_switches:[ (0, 500) ] ~arch:Arch.Occamy
      [ mem_wl (); compute_wl () ]
  in
  let vls = r.Metrics.cores.(1).Metrics.vl_timeline in
  let early_peak =
    Array.fold_left Float.max 0.0 (Array.sub vls 0 (min 4 (Array.length vls)))
  in
  Helpers.check_bool "co-runner reached full width while core0 was away" true
    (early_peak > 7.0);
  (* And the preempted workload resumed and finished. *)
  Helpers.check_bool "preempted workload finished" true
    (r.Metrics.cores.(0).Metrics.finish > 0)

let test_context_switch_on_halted_core_ignored () =
  let r =
    Sim.simulate ~context_switches:[ (0, 100_000_000) ] ~arch:Arch.Occamy
      [ mem_wl (); compute_wl () ]
  in
  Helpers.check_bool "late switch ignored" true (r.Metrics.total_cycles > 0)

let test_context_switch_rejects_bad_args () =
  Helpers.check_bool "bad core rejected" true
    (try
       ignore
         (Sim.simulate ~context_switches:[ (7, 100) ] ~arch:Arch.Private
            [ mem_wl (); compute_wl () ]);
       false
     with Invalid_argument _ -> true)

let cs_suite =
  ( "sim.context-switch",
    [
      Alcotest.test_case "completes on all archs" `Quick test_context_switch_completes;
      Alcotest.test_case "lanes go to co-runner" `Quick test_context_switch_gives_lanes_away;
      Alcotest.test_case "late switch ignored" `Quick test_context_switch_on_halted_core_ignored;
      Alcotest.test_case "bad args rejected" `Quick test_context_switch_rejects_bad_args;
    ] )

let suites = suites @ [ cs_suite ]
