(* Tests of the workload suite: Table 3 fidelity, structural sanity of the
   25 pairs and 4-core groups, and value-level correctness of the literal
   Figure 2(a) loops under adversarial reconfiguration schedules. *)

module Suite = Occamy_workloads.Suite
module Spec = Occamy_workloads.Spec
module Opencv = Occamy_workloads.Opencv
module Synth = Occamy_workloads.Synth
module Motivating = Occamy_workloads.Motivating
module Workload = Occamy_core.Workload
module Analysis = Occamy_compiler.Analysis
module Oi = Occamy_isa.Oi

let test_table3_oi_fidelity () =
  List.iter
    (fun (wl, phase, paper, got) ->
      let err = Float.abs (got -. paper) in
      if err > 0.1 then
        Alcotest.failf "%s/%s: paper oi %.3f, analysed %.3f" wl phase paper got)
    (Suite.table3_rows ())

let test_table3_row_count () =
  (* 22 SPEC workloads contribute 31 phase rows; 12 OpenCV workloads
     contribute 19 kernel rows (Table 3 lists 34 workloads built from 28
     SPEC loops and 14 OpenCV kernels). *)
  let rows = Suite.table3_rows () in
  Helpers.check_int "row count" 57 (List.length rows)

let test_all_spec_workloads_compile () =
  List.iter
    (fun id ->
      let wl = Spec.workload id in
      Helpers.check_bool
        (Printf.sprintf "WL%d validates" id)
        true
        (Workload.validate wl == wl))
    Spec.ids

let test_all_opencv_workloads_compile () =
  List.iter
    (fun id ->
      let wl = Opencv.workload id in
      Helpers.check_bool
        (Printf.sprintf "OCV%d validates" id)
        true
        (Workload.validate wl == wl))
    Opencv.ids

let test_pair_inventory () =
  Helpers.check_int "25 pairs" 25 (List.length Suite.pairs);
  Helpers.check_int "16 SPEC pairs" 16 (List.length Suite.spec_pairs);
  Helpers.check_int "9 OpenCV pairs" 9 (List.length Suite.opencv_pairs);
  (* §7.1: 1 <memory,memory>, 2 <compute,compute>, 22 <memory,compute>. *)
  let count cat =
    List.length (List.filter (fun p -> p.Suite.category = cat) Suite.pairs)
  in
  Helpers.check_int "mem+mem" 1 (count `Mem_mem);
  Helpers.check_int "comp+comp" 2 (count `Comp_comp);
  Helpers.check_int "mem+comp" 22 (count `Mem_comp);
  Helpers.check_int "4 groups" 4 (List.length Suite.four_core_groups);
  List.iter
    (fun g -> Helpers.check_int "group of 4" 4 (List.length g.Suite.members))
    Suite.four_core_groups

let test_case4_reuse_shape () =
  (* WL8.p1 (rho_eos2) must exhibit oi_issue < oi_mem — the Case-4 data
     reuse driving Table 5. *)
  let s = List.hd (Spec.specs_of 8) in
  let oi = Synth.analysed_oi s in
  Helpers.check_bool "reuse present" true (oi.Oi.issue < oi.Oi.mem -. 0.02)

let test_synth_search () =
  (* The (F, C) search hits representative Table-3 targets closely. *)
  List.iter
    (fun target ->
      let s = Synth.spec ~oi:target "probe" in
      let got = (Synth.analysed_oi s).Oi.mem in
      Helpers.check_bool
        (Printf.sprintf "oi %.3f -> %.3f" target got)
        true
        (Float.abs (got -. target) < 0.05))
    [ 0.06; 0.083; 0.13; 0.25; 0.32; 0.56; 0.75; 1.0 ]

let test_kind_classification () =
  let kind id = (Spec.workload id).Workload.kind in
  Helpers.check_bool "WL1 memory" true (kind 1 = Workload.Memory_intensive);
  Helpers.check_bool "WL16 compute" true (kind 16 = Workload.Compute_intensive);
  Helpers.check_bool "WL13 compute" true (kind 13 = Workload.Compute_intensive)

let test_tc_scale () =
  let full = Spec.workload 16 in
  let small = Spec.workload ~tc_scale:0.1 16 in
  let tc wl = (List.hd wl.Workload.phases).Workload.ph_trip_count in
  Helpers.check_bool "scaled down 10x" true (tc small * 9 < tc full)

(* Value-level check of the literal Figure 2(a) loops: compiled WL#0/WL#1
   against the scalar reference, under both a solo environment and an
   adversarial schedule. *)
let motivating_loops wl =
  match wl with
  | `Wl0 ->
    [ Motivating.rh3d_phase1 ~tc:301; Motivating.rho_eos_phase2 ~tc:257 ]
  | `Wl1 -> [ Motivating.wsm5_loop ~tc:413 ]

let test_motivating_semantics () =
  List.iter
    (fun wl ->
      ignore (Helpers.run_and_compare ~name:"motivating" (motivating_loops wl)))
    [ `Wl0; `Wl1 ]

let test_motivating_oi () =
  (* The literal loops must come out memory-leaning (WL#0) and with the
     wsm5 stencil's data reuse (WL#1). *)
  let wsm5 = Motivating.wsm5_loop ~tc:128 in
  let a = Analysis.analyse wsm5 in
  Helpers.check_bool "wsm5 reuse" true (Analysis.has_reuse wsm5);
  Helpers.check_int "wsm5 4 loads" 4 a.Analysis.load_instrs;
  let rh3d = Analysis.analyse (Motivating.rh3d_phase1 ~tc:128) in
  Helpers.check_int "rh3d loads" 6 rh3d.Analysis.load_instrs;
  Helpers.check_int "rh3d stores" 2 rh3d.Analysis.store_instrs

let test_opencv_reductions_semantics () =
  (* The reduction-based OpenCV kernels against the reference, with the
     trip counts shrunk. *)
  let shrink (l : Occamy_compiler.Loop_ir.t) =
    { l with Occamy_compiler.Loop_ir.trip_count = 391 }
  in
  List.iter
    (fun id ->
      let loops = List.map shrink (Opencv.loops_of id) in
      ignore (Helpers.run_and_compare ~eps:1e-4 ~name:"ocv" loops))
    [ 1; 6; 7; 9 ]

let test_opencv_pointwise_semantics () =
  let shrink (l : Occamy_compiler.Loop_ir.t) =
    { l with Occamy_compiler.Loop_ir.trip_count = 293 }
  in
  List.iter
    (fun id ->
      let loops = List.map shrink (Opencv.loops_of id) in
      ignore (Helpers.run_and_compare ~eps:1e-4 ~name:"ocv_pw" loops))
    [ 2; 3; 4; 5; 8; 10; 11; 12 ]

let suites =
  [
    ( "workloads",
      [
        Alcotest.test_case "table 3 OI fidelity" `Quick test_table3_oi_fidelity;
        Alcotest.test_case "table 3 row count" `Quick test_table3_row_count;
        Alcotest.test_case "SPEC workloads compile" `Quick test_all_spec_workloads_compile;
        Alcotest.test_case "OpenCV workloads compile" `Quick test_all_opencv_workloads_compile;
        Alcotest.test_case "pair inventory" `Quick test_pair_inventory;
        Alcotest.test_case "case 4 reuse" `Quick test_case4_reuse_shape;
        Alcotest.test_case "synth search" `Quick test_synth_search;
        Alcotest.test_case "kind classification" `Quick test_kind_classification;
        Alcotest.test_case "tc scale" `Quick test_tc_scale;
        Alcotest.test_case "motivating semantics" `Quick test_motivating_semantics;
        Alcotest.test_case "motivating OI" `Quick test_motivating_oi;
        Alcotest.test_case "opencv reductions semantics" `Quick
          test_opencv_reductions_semantics;
        Alcotest.test_case "opencv pointwise semantics" `Quick
          test_opencv_pointwise_semantics;
      ] );
  ]
