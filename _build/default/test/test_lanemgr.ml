module Roofline = Occamy_lanemgr.Roofline
module Partition = Occamy_lanemgr.Partition
module Lane_mgr = Occamy_lanemgr.Lane_mgr
module Oi = Occamy_isa.Oi
module Level = Occamy_mem.Level

let cfg = Roofline.default_cfg

let test_fp_peak_linear () =
  Helpers.check_float "one granule" 8.0 (Roofline.fp_peak cfg ~vl:1);
  Helpers.check_float "eight granules" 64.0 (Roofline.fp_peak cfg ~vl:8)

let test_issue_bw () =
  (* Equation 2 with the §5.1 example: 32B/cycle at vl = 1. *)
  Helpers.check_float "32B at vl=1" 32.0 (Roofline.simd_issue_bw cfg ~vl:1)

let test_table5_crossover () =
  (* WL8.p1: oi_issue ~ 1/6, oi_mem = 0.25, L2-resident. The paper reports
     issue-bound behaviour strictly below 12 lanes (3 granules). *)
  let oi = Oi.make ~issue:(1.0 /. 6.0) ~mem:0.25 in
  let level = Level.L2 in
  Helpers.check_bool "vl=1 issue bound" true
    (Roofline.binding cfg ~vl:1 ~oi ~level = Roofline.Issue_bound);
  Helpers.check_bool "vl=2 issue bound" true
    (Roofline.binding cfg ~vl:2 ~oi ~level = Roofline.Issue_bound);
  Helpers.check_bool "vl=3 memory bound" true
    (Roofline.binding cfg ~vl:3 ~oi ~level = Roofline.Memory_bound);
  (* Attainable performance saturates at 16 flops/cycle = L2 BW * 0.25. *)
  Helpers.check_float "saturated AP" 16.0
    (Roofline.attainable cfg ~vl:5 ~oi ~level);
  Helpers.check_int "saturation at 3 granules" 3
    (Roofline.saturation_vl cfg ~max_vl:8 ~oi ~level)

let test_attainable_monotone_bounded () =
  let oi = Oi.make ~issue:0.2 ~mem:0.3 in
  let prev = ref 0.0 in
  for vl = 1 to 8 do
    let ap = Roofline.attainable cfg ~vl ~oi ~level:Level.L2 in
    Helpers.check_bool "non-decreasing" true (ap >= !prev);
    Helpers.check_bool "below mem ceiling" true
      (ap <= (cfg.Roofline.mem_bw Level.L2 *. 0.3) +. 1e-9);
    prev := ap
  done

let test_compute_bound_kernel () =
  (* Very high intensity: compute ceiling binds at every width, so gains
     never vanish; a compute workload always wants more lanes. *)
  let oi = Oi.uniform 4.0 in
  for vl = 1 to 7 do
    Helpers.check_float "marginal gain is one ExeBU's peak" 8.0
      (Roofline.net_perf_gain cfg ~vl ~oi ~level:Level.Vec_cache)
  done

let wl key oi level = { Partition.key; oi; level }

let test_partition_compute_pair_equal () =
  (* Two compute-intensive workloads split the lanes equally (§5.2). *)
  let plan =
    Partition.plan cfg ~total:8
      [ wl 0 (Oi.uniform 4.0) Level.Vec_cache; wl 1 (Oi.uniform 4.0) Level.Vec_cache ]
  in
  Helpers.check_int "core0 half" 4 (List.assoc 0 plan);
  Helpers.check_int "core1 half" 4 (List.assoc 1 plan)

let test_partition_mem_compute () =
  (* A memory-bound workload saturates early; the compute-bound co-runner
     takes everything else. *)
  let plan =
    Partition.plan cfg ~total:8
      [ wl 0 (Oi.uniform 0.13) Level.L2; wl 1 (Oi.uniform 4.0) Level.Vec_cache ]
  in
  let m = List.assoc 0 plan and c = List.assoc 1 plan in
  Helpers.check_bool "memory workload saturated small" true (m <= 3);
  Helpers.check_int "all lanes used" 8 (m + c)

let test_partition_case4_reuse () =
  (* Case 4 (§7.4): data reuse (oi_issue < oi_mem) forces extra lanes to
     cover issue bandwidth: WL8.p1 gets 3 granules (12 lanes), not the 2
     that memory bandwidth alone would suggest. *)
  let with_reuse = Oi.make ~issue:(1.0 /. 6.0) ~mem:0.25 in
  let without = Oi.make ~issue:0.25 ~mem:0.25 in
  let compute = Oi.uniform 4.0 in
  let p1 =
    Partition.plan cfg ~total:8 [ wl 0 with_reuse Level.L2; wl 1 compute Level.Vec_cache ]
  in
  let p2 =
    Partition.plan cfg ~total:8 [ wl 0 without Level.L2; wl 1 compute Level.Vec_cache ]
  in
  Helpers.check_int "reuse kernel gets 3 granules" 3 (List.assoc 0 p1);
  Helpers.check_int "no-reuse kernel gets 2" 2 (List.assoc 0 p2)

let test_partition_solo () =
  let plan = Partition.plan cfg ~total:8 [ wl 0 (Oi.uniform 4.0) Level.Vec_cache ] in
  Helpers.check_int "solo compute takes all" 8 (List.assoc 0 plan)

let test_partition_no_starvation () =
  (* Even a workload with ~zero gain keeps one ExeBU. *)
  let plan =
    Partition.plan cfg ~total:8
      [ wl 0 (Oi.make ~issue:0.01 ~mem:0.01) Level.Dram;
        wl 1 (Oi.uniform 4.0) Level.Vec_cache ]
  in
  Helpers.check_bool "at least one" true (List.assoc 0 plan >= 1)

let test_partition_ignores_inactive () =
  let plan =
    Partition.plan cfg ~total:8
      [ wl 0 Oi.zero Level.Dram; wl 1 (Oi.uniform 4.0) Level.Vec_cache ]
  in
  Helpers.check_bool "inactive workload absent" true
    (not (List.mem_assoc 0 plan));
  Helpers.check_int "active takes all" 8 (List.assoc 1 plan)

let qcheck_partition_constraints =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 4)
        (pair (float_range 0.01 4.0) (int_range 0 2)))
  in
  QCheck2.Test.make ~name:"partition plans satisfy Equation (1)" gen
    (fun specs ->
      let workloads =
        List.mapi
          (fun i (oi, lvl) ->
            wl i (Oi.uniform oi)
              (match lvl with 0 -> Level.Vec_cache | 1 -> Level.L2 | _ -> Level.Dram))
          specs
      in
      let plan = Partition.plan cfg ~total:8 workloads in
      Partition.satisfies_constraints ~total:8 plan
      && List.length plan = List.length workloads)

let qcheck_partition_symmetry =
  QCheck2.Test.make ~name:"identical workloads get identical shares (±1)"
    QCheck2.Gen.(float_range 0.01 4.0)
    (fun x ->
      let plan =
        Partition.plan cfg ~total:8
          [ wl 0 (Oi.uniform x) Level.L2; wl 1 (Oi.uniform x) Level.L2 ]
      in
      abs (List.assoc 0 plan - List.assoc 1 plan) <= 1)

let test_lane_mgr_replan_flow () =
  let m = Lane_mgr.create ~total:8 ~cores:2 () in
  Lane_mgr.enter_phase m ~core:0 ~oi:(Oi.uniform 0.13) ~level:Level.L2;
  Helpers.check_int "solo memory workload capped" 2 (Lane_mgr.decision m ~core:0);
  Lane_mgr.enter_phase m ~core:1 ~oi:(Oi.uniform 4.0) ~level:Level.Vec_cache;
  let d0 = Lane_mgr.decision m ~core:0 and d1 = Lane_mgr.decision m ~core:1 in
  Helpers.check_bool "memory keeps its share" true (d0 >= 1 && d0 <= 3);
  Helpers.check_int "compute gets the rest" (8 - d0) d1;
  Lane_mgr.exit_phase m ~core:0;
  Helpers.check_int "compute inherits everything" 8 (Lane_mgr.decision m ~core:1);
  Helpers.check_int "exited core suggested zero" 0 (Lane_mgr.decision m ~core:0);
  Helpers.check_int "three replans" 3 (Lane_mgr.replans m)

let suites =
  [
    ( "lanemgr",
      [
        Alcotest.test_case "fp peak linear" `Quick test_fp_peak_linear;
        Alcotest.test_case "issue bw (Eq 2)" `Quick test_issue_bw;
        Alcotest.test_case "Table 5 crossover" `Quick test_table5_crossover;
        Alcotest.test_case "attainable monotone" `Quick test_attainable_monotone_bounded;
        Alcotest.test_case "compute-bound gains" `Quick test_compute_bound_kernel;
        Alcotest.test_case "compute pair equal split" `Quick test_partition_compute_pair_equal;
        Alcotest.test_case "mem+compute split" `Quick test_partition_mem_compute;
        Alcotest.test_case "case 4 reuse" `Quick test_partition_case4_reuse;
        Alcotest.test_case "solo" `Quick test_partition_solo;
        Alcotest.test_case "no starvation" `Quick test_partition_no_starvation;
        Alcotest.test_case "ignores inactive" `Quick test_partition_ignores_inactive;
        Alcotest.test_case "lane mgr flow" `Quick test_lane_mgr_replan_flow;
      ] );
    Helpers.qsuite "lanemgr.qcheck"
      [ qcheck_partition_constraints; qcheck_partition_symmetry ];
  ]

(* --- additional properties ----------------------------------------- *)

let qcheck_partition_monotone_in_total =
  (* Growing the machine never shrinks anyone's share. *)
  QCheck2.Test.make ~name:"partition monotone in total lanes"
    QCheck2.Gen.(pair (float_range 0.05 3.0) (float_range 0.05 3.0))
    (fun (a, b) ->
      let wls =
        [ wl 0 (Oi.uniform a) Level.L2; wl 1 (Oi.uniform b) Level.Vec_cache ]
      in
      let p8 = Partition.plan cfg ~total:8 wls in
      let p16 = Partition.plan cfg ~total:16 wls in
      List.for_all
        (fun (k, v8) -> List.assoc k p16 >= v8)
        p8)

let qcheck_attainable_below_every_ceiling =
  QCheck2.Test.make ~name:"AP never exceeds any individual ceiling"
    QCheck2.Gen.(
      triple (float_range 0.01 4.0) (float_range 0.01 4.0) (int_range 1 8))
    (fun (issue, mem, vl) ->
      let oi = Oi.make ~issue ~mem in
      List.for_all
        (fun level ->
          let ap = Roofline.attainable cfg ~vl ~oi ~level in
          ap <= Roofline.fp_peak cfg ~vl +. 1e-9
          && ap <= (Roofline.simd_issue_bw cfg ~vl *. issue) +. 1e-9
          && ap <= (cfg.Roofline.mem_bw level *. mem) +. 1e-9)
        Level.all)

let qcheck_saturation_is_saturated =
  QCheck2.Test.make ~name:"AP at saturation_vl equals AP at max width"
    QCheck2.Gen.(pair (float_range 0.01 4.0) (float_range 0.01 4.0))
    (fun (issue, mem) ->
      let oi = Oi.make ~issue ~mem in
      let level = Level.L2 in
      let sat = Roofline.saturation_vl cfg ~max_vl:8 ~oi ~level in
      Float.abs
        (Roofline.attainable cfg ~vl:sat ~oi ~level
        -. Roofline.attainable cfg ~vl:8 ~oi ~level)
      < 1e-6)

let qcheck_lane_mgr_decisions_feasible =
  (* Whatever phase-event sequence arrives, the published decisions stay
     collectively feasible. *)
  QCheck2.Test.make ~name:"lane manager decisions always sum within total"
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (triple (int_range 0 2) (float_range 0.0 3.0) bool))
    (fun events ->
      let m = Lane_mgr.create ~total:8 ~cores:3 () in
      List.iter
        (fun (core, oi, enter) ->
          if enter && oi > 0.0 then
            Lane_mgr.enter_phase m ~core ~oi:(Oi.uniform oi) ~level:Level.L2
          else Lane_mgr.exit_phase m ~core)
        events;
      Array.fold_left ( + ) 0 (Lane_mgr.decisions m) <= 8)

let suites =
  suites
  @ [
      Helpers.qsuite "lanemgr.qcheck2"
        [
          qcheck_partition_monotone_in_total;
          qcheck_attainable_below_every_ceiling;
          qcheck_saturation_is_saturated;
          qcheck_lane_mgr_decisions_feasible;
        ];
    ]
