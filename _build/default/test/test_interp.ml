module Instr = Occamy_isa.Instr
module Reg = Occamy_isa.Reg
module Vop = Occamy_isa.Vop
module Oi = Occamy_isa.Oi
module Sysreg = Occamy_isa.Sysreg
module Program = Occamy_isa.Program
module Interp = Occamy_isa.Interp
module B = Program.Builder

(* Build a tiny program: configure VL, load a, add a+a, store to b. *)
let build_vec_add ~elems =
  let b = B.create "vec_add" in
  let a = B.declare_array b ~name:"a" ~size:elems in
  let out = B.declare_array b ~name:"b" ~size:elems in
  let cfg = B.fresh_label b "cfg" in
  B.place_label b cfg;
  B.emit b (Instr.Mrs (Reg.x 4, Sysreg.DECISION));
  B.emit b (Instr.Msr (Sysreg.VL, Instr.Reg (Reg.x 4)));
  B.emit b (Instr.Mrs (Reg.x 3, Sysreg.STATUS));
  B.emit b (Instr.Bc (Instr.Ne, Reg.x 3, Instr.Imm 1, cfg));
  (* i = 0; n = elems; k = min(vl*4, n - i) loop *)
  B.emit b (Instr.Li (Reg.x 0, 0));
  B.emit b (Instr.Li (Reg.x 1, elems));
  B.emit b (Instr.Mrs (Reg.x 6, Sysreg.ZCR));
  B.emit b (Instr.Iop (Instr.Muli, Reg.x 6, Reg.x 6, Instr.Imm 4));
  let head = B.fresh_label b "head" in
  let done_ = B.fresh_label b "done" in
  B.place_label b head;
  B.emit b (Instr.Bc (Instr.Ge, Reg.x 0, Instr.Reg (Reg.x 1), done_));
  B.emit b (Instr.Iop (Instr.Subi, Reg.x 7, Reg.x 1, Instr.Reg (Reg.x 0)));
  B.emit b (Instr.Mov (Reg.x 5, Reg.x 6));
  B.emit b (Instr.Iop (Instr.Mini, Reg.x 5, Reg.x 5, Instr.Reg (Reg.x 7)));
  B.emit b
    (Instr.Vload { dst = Reg.v 0; arr = a; idx = Reg.x 0; cnt = Some (Reg.x 5) });
  B.emit b (Instr.Vop { op = Vop.Add; dst = Reg.v 1; srcs = [ Reg.v 0; Reg.v 0 ]; cnt = None });
  B.emit b
    (Instr.Vstore { src = Reg.v 1; arr = out; idx = Reg.x 0; cnt = Some (Reg.x 5) });
  B.emit b (Instr.Iop (Instr.Addi, Reg.x 0, Reg.x 0, Instr.Reg (Reg.x 5)));
  B.emit b (Instr.B head);
  B.place_label b done_;
  B.emit b Instr.Halt;
  (B.finish b, a, out)

let test_vec_add_full_width () =
  let elems = 37 (* deliberately not a multiple of any vector width *) in
  let p, a, out = build_vec_add ~elems in
  let t = Interp.create p in
  let input = Array.init elems (fun i -> float_of_int i *. 0.5) in
  Interp.set_memory t a input;
  let stats = Interp.run t in
  let got = Interp.memory t out in
  Array.iteri
    (fun i v -> Helpers.check_float (Printf.sprintf "b[%d]" i) (v *. 2.0) got.(i))
    input;
  Helpers.check_bool "executed instructions" true (stats.Interp.executed > 0);
  Helpers.check_int "one reconfiguration" 1 stats.Interp.reconfigs

let test_vec_add_narrow_env () =
  (* Same program, but the environment only ever grants one granule. *)
  let elems = 13 in
  let p, a, out = build_vec_add ~elems in
  let env =
    {
      (Interp.solo_env ~max_granules:8) with
      Interp.request_vl = (fun ~current:_ l -> Some (min l 1));
      decision = (fun () -> 1);
    }
  in
  let t = Interp.create ~env p in
  let input = Array.init elems (fun i -> float_of_int (i + 1)) in
  Interp.set_memory t a input;
  ignore (Interp.run t);
  let got = Interp.memory t out in
  Array.iteri
    (fun i v -> Helpers.check_float (Printf.sprintf "b[%d]" i) (v *. 2.0) got.(i))
    input

let test_poison_on_reconfig () =
  (* A register written before a reconfiguration must read as NaN after. *)
  let b = B.create "poison" in
  let out = B.declare_array b ~name:"o" ~size:4 in
  B.emit b (Instr.Msr (Sysreg.VL, Instr.Imm 2));
  B.emit b (Instr.Fli (Reg.f 0, 3.0));
  B.emit b (Instr.Vdup (Reg.v 0, Reg.f 0));
  B.emit b (Instr.Msr (Sysreg.VL, Instr.Imm 1));  (* shrink: poisons *)
  B.emit b (Instr.Li (Reg.x 0, 0));
  B.emit b (Instr.Li (Reg.x 5, 4));
  B.emit b
    (Instr.Vstore { src = Reg.v 0; arr = out; idx = Reg.x 0; cnt = Some (Reg.x 5) });
  B.emit b Instr.Halt;
  let p = B.finish b in
  let t = Interp.create p in
  ignore (Interp.run t);
  let got = Interp.memory t out in
  (* Active width after reconfig is 1 granule = 4 elems, but the data was
     poisoned: the stored values must be NaN, not the stale 3.0. *)
  Helpers.check_bool "poisoned" true (Float.is_nan got.(0))

let test_vl_zero_faults () =
  let b = B.create "novl" in
  let _ = B.declare_array b ~name:"a" ~size:4 in
  B.emit b (Instr.Vdup (Reg.v 0, Reg.f 0));
  B.emit b Instr.Halt;
  let t = Interp.create (B.finish b) in
  Helpers.check_bool "fault on VL=0" true
    (try
       ignore (Interp.run t);
       false
     with Interp.Fault _ -> true)

let test_out_of_bounds_faults () =
  let b = B.create "oob" in
  let a = B.declare_array b ~name:"a" ~size:4 in
  B.emit b (Instr.Msr (Sysreg.VL, Instr.Imm 2));
  B.emit b (Instr.Li (Reg.x 0, 2));
  B.emit b (Instr.Vload { dst = Reg.v 0; arr = a; idx = Reg.x 0; cnt = None });
  B.emit b Instr.Halt;
  let t = Interp.create (B.finish b) in
  Helpers.check_bool "fault out of bounds" true
    (try
       ignore (Interp.run t);
       false
     with Interp.Fault _ -> true)

let test_status_spin_on_refusal () =
  (* An environment refusing big requests: the program spins, then asks
     for less. *)
  let b = B.create "spin" in
  let retry = B.fresh_label b "retry" in
  B.emit b (Instr.Li (Reg.x 2, 8));
  B.place_label b retry;
  B.emit b (Instr.Msr (Sysreg.VL, Instr.Reg (Reg.x 2)));
  B.emit b (Instr.Mrs (Reg.x 3, Sysreg.STATUS));
  B.emit b (Instr.Iop (Instr.Subi, Reg.x 2, Reg.x 2, Instr.Imm 1));
  B.emit b (Instr.Bc (Instr.Ne, Reg.x 3, Instr.Imm 1, retry));
  B.emit b Instr.Halt;
  let env =
    {
      (Interp.solo_env ~max_granules:8) with
      Interp.request_vl = (fun ~current:_ l -> if l <= 3 then Some l else None);
    }
  in
  let t = Interp.create ~env (B.finish b) in
  let stats = Interp.run t in
  Helpers.check_int "settled at 3 granules" 3 (Interp.vl t);
  Helpers.check_int "five refusals" 5 stats.Interp.failed_requests

let test_reduction_semantics () =
  let b = B.create "red" in
  let a = B.declare_array b ~name:"a" ~size:8 in
  B.emit b (Instr.Msr (Sysreg.VL, Instr.Imm 2));
  B.emit b (Instr.Li (Reg.x 0, 0));
  B.emit b (Instr.Li (Reg.x 5, 8));
  B.emit b
    (Instr.Vload { dst = Reg.v 0; arr = a; idx = Reg.x 0; cnt = Some (Reg.x 5) });
  B.emit b (Instr.Vred { op = Vop.Red.Sum; dst = Reg.f 1; src = Reg.v 0 });
  B.emit b Instr.Halt;
  let t = Interp.create (B.finish b) in
  Interp.set_memory t a (Array.init 8 (fun i -> float_of_int (i + 1)));
  ignore (Interp.run t);
  Helpers.check_float "sum 1..8" 36.0 (Interp.freg t (Reg.f 1))

let test_fuel_exhaustion () =
  let b = B.create "inf" in
  let l = B.fresh_label b "l" in
  B.place_label b l;
  B.emit b (Instr.B l);
  let t = Interp.create (B.finish b) in
  Helpers.check_bool "fuel fault" true
    (try
       ignore (Interp.run ~fuel:100 t);
       false
     with Interp.Fault _ -> true)

let suites =
  [
    ( "interp",
      [
        Alcotest.test_case "vec add full width" `Quick test_vec_add_full_width;
        Alcotest.test_case "vec add narrow env" `Quick test_vec_add_narrow_env;
        Alcotest.test_case "poison on reconfig" `Quick test_poison_on_reconfig;
        Alcotest.test_case "VL=0 faults" `Quick test_vl_zero_faults;
        Alcotest.test_case "out of bounds faults" `Quick test_out_of_bounds_faults;
        Alcotest.test_case "status spin on refusal" `Quick test_status_spin_on_refusal;
        Alcotest.test_case "reduction" `Quick test_reduction_semantics;
        Alcotest.test_case "fuel" `Quick test_fuel_exhaustion;
      ] );
  ]
