module Area = Occamy_core.Area
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config

let test_two_core_totals () =
  (* Figure 12: 1.263mm² for Private/FTS/VLS, 1.265mm² for Occamy. *)
  List.iter
    (fun arch ->
      Helpers.check_bool
        (Arch.name arch ^ " total")
        true
        (Float.abs (Area.total_mm2 arch ~cores:2 -. 1.263) < 0.005))
    [ Arch.Private; Arch.Fts; Arch.Vls ];
  let occ = Area.total_mm2 Arch.Occamy ~cores:2 in
  Helpers.check_bool "occamy slightly larger" true
    (occ > 1.263 && occ < 1.27)

let test_figure12_fractions () =
  (* SIMD exe units 46%, LSU 23%, register file 15%. *)
  let frac c = Area.fraction Arch.Private ~cores:2 c in
  Helpers.check_bool "exe 46%" true
    (Float.abs (frac Area.Simd_exe_units -. 0.46) < 0.01);
  Helpers.check_bool "lsu 23%" true (Float.abs (frac Area.Lsu -. 0.23) < 0.01);
  Helpers.check_bool "rf 15%" true
    (Float.abs (frac Area.Register_file -. 0.15) < 0.01)

let test_manager_under_one_percent () =
  (* "the Manager takes less than 1% of the total area" (§7.3). *)
  let f = Area.fraction Arch.Occamy ~cores:2 Area.Manager in
  Helpers.check_bool "manager <1%" true (f > 0.0 && f < 0.01);
  (* And it does not exist on the other architectures. *)
  Helpers.check_float "no manager on FTS" 0.0
    (Area.component_mm2 Arch.Fts ~cores:2 Area.Manager)

let test_four_core_scaling () =
  (* Control-plane scaling 2 -> 4 cores costs ~3% (§4.2.1); the data path
     doubles. *)
  let r2 = Area.component_mm2 Arch.Occamy ~cores:2 Area.Rename in
  let r4 = Area.component_mm2 Arch.Occamy ~cores:4 Area.Rename in
  Helpers.check_bool "control +3%" true (Float.abs ((r4 /. r2) -. 1.03) < 0.001);
  let e2 = Area.component_mm2 Arch.Occamy ~cores:2 Area.Simd_exe_units in
  let e4 = Area.component_mm2 Arch.Occamy ~cores:4 Area.Simd_exe_units in
  Helpers.check_float "exe doubles" 2.0 (e4 /. e2)

let test_fts_four_core_overhead () =
  (* §7.6: 4-core FTS with 2-core per-core register counts costs ~33.5%
     more chip area than the other architectures. *)
  let ov = Area.fts_four_core_overhead () in
  Helpers.check_bool "about 33.5%" true (Float.abs (ov -. 0.335) < 0.01)

let test_breakdown_sums_to_total () =
  List.iter
    (fun arch ->
      List.iter
        (fun cores ->
          let sum =
            List.fold_left (fun a (_, v) -> a +. v) 0.0 (Area.breakdown arch ~cores)
          in
          Helpers.check_bool
            (Printf.sprintf "%s %d-core sum" (Arch.name arch) cores)
            true
            (Float.abs (sum -. Area.total_mm2 arch ~cores) < 1e-9))
        [ 2; 4 ])
    Arch.all

let test_config_validation () =
  Helpers.check_bool "default valid" true
    (Config.validate Config.default == Config.default);
  Helpers.check_bool "window too large rejected" true
    (try
       ignore (Config.validate { Config.default with Config.window = 200 });
       false
     with Invalid_argument _ -> true);
  Helpers.check_int "total lanes" 32 (Config.total_lanes Config.default);
  Helpers.check_int "private lanes per core" 16
    (Config.lanes_per_core_private Config.default);
  Helpers.check_int "4-core lanes" 64 (Config.total_lanes Config.four_core)

let test_table4_rows () =
  let rows = Config.table4_rows Config.default in
  Helpers.check_bool "rows present" true (List.length rows >= 8);
  Helpers.check_bool "VRF 20KB" true
    (List.exists (fun (k, v) -> k = "VRF capacity" && v = "20KB total") rows)

let suites =
  [
    ( "area+config",
      [
        Alcotest.test_case "2-core totals" `Quick test_two_core_totals;
        Alcotest.test_case "figure 12 fractions" `Quick test_figure12_fractions;
        Alcotest.test_case "manager <1%" `Quick test_manager_under_one_percent;
        Alcotest.test_case "4-core scaling" `Quick test_four_core_scaling;
        Alcotest.test_case "fts 4-core overhead" `Quick test_fts_four_core_overhead;
        Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums_to_total;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "table 4 rows" `Quick test_table4_rows;
      ] );
  ]
