test/test_semantics.ml: Alcotest Fmt Helpers List Occamy_compiler Occamy_isa Occamy_util Printexc QCheck2
