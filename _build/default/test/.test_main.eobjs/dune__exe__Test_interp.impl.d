test/test_interp.ml: Alcotest Array Float Helpers Occamy_isa Printf
