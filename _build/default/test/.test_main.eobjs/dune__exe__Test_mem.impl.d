test/test_mem.ml: Alcotest Array Float Helpers List Occamy_mem Occamy_util Option QCheck2
