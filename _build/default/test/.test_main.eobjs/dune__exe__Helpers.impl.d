test/helpers.ml: Alcotest Array Float Hashtbl List Occamy_compiler Occamy_core Occamy_isa Occamy_util QCheck_alcotest
