test/test_ordering.ml: Alcotest Array Helpers Occamy_core Occamy_isa Occamy_mem
