test/test_lanemgr.ml: Alcotest Array Float Helpers List Occamy_isa Occamy_lanemgr Occamy_mem QCheck2
