test/test_area.ml: Alcotest Float Helpers List Occamy_core Printf
