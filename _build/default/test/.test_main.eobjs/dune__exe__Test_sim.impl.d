test/test_sim.ml: Alcotest Array Float Helpers Lazy List Occamy_compiler Occamy_core Occamy_mem Printf
