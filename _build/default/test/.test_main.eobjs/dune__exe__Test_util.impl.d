test/test_util.ml: Alcotest Array Float Helpers List Occamy_util QCheck2 String
