test/test_isa.ml: Alcotest Array Helpers List Occamy_isa
