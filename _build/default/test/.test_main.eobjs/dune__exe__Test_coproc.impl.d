test/test_coproc.ml: Alcotest Helpers List Occamy_coproc Occamy_isa Printf QCheck2
