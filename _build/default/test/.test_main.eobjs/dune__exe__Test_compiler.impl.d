test/test_compiler.ml: Alcotest Array Helpers List Occamy_compiler Occamy_core Occamy_isa QCheck2
