test/test_experiments.ml: Alcotest Helpers Lazy List Occamy_core Occamy_experiments Occamy_util Occamy_workloads Option Printf String
