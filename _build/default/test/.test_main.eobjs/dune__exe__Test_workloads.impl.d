test/test_workloads.ml: Alcotest Float Helpers List Occamy_compiler Occamy_core Occamy_isa Occamy_workloads Printf
