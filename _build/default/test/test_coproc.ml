module Rtbl = Occamy_coproc.Resource_tbl
module Config_tbl = Occamy_coproc.Config_tbl
module Freelist = Occamy_coproc.Freelist
module Lsu = Occamy_coproc.Lsu
module Exebu = Occamy_coproc.Exebu
module Ordering = Occamy_coproc.Ordering
module Instr = Occamy_isa.Instr

let test_rtbl_grant_and_refuse () =
  let t = Rtbl.create ~total:8 ~cores:2 in
  Helpers.check_int "all free" 8 (Rtbl.al t);
  Helpers.check_bool "grant 5 to core0" true (Rtbl.try_set_vl t ~core:0 5);
  Helpers.check_int "al after" 3 (Rtbl.al t);
  Helpers.check_int "status set" 1 (Rtbl.status t ~core:0);
  Helpers.check_bool "refuse 4 to core1" false (Rtbl.try_set_vl t ~core:1 4);
  Helpers.check_int "status fail" 0 (Rtbl.status t ~core:1);
  Helpers.check_bool "core1 gets 3" true (Rtbl.try_set_vl t ~core:1 3);
  Helpers.check_bool "invariant" true (Rtbl.invariant_holds t)

let test_rtbl_exchange () =
  (* Growing using one's own lanes: core0 shrinks 5 -> 2, core1 grows. *)
  let t = Rtbl.create ~total:8 ~cores:2 in
  ignore (Rtbl.try_set_vl t ~core:0 5);
  ignore (Rtbl.try_set_vl t ~core:1 3);
  Helpers.check_bool "shrink always fits" true (Rtbl.try_set_vl t ~core:0 2);
  Helpers.check_bool "grow into freed lanes" true (Rtbl.try_set_vl t ~core:1 6);
  Helpers.check_int "core0 vl" 2 (Rtbl.vl t ~core:0);
  Helpers.check_int "core1 vl" 6 (Rtbl.vl t ~core:1);
  Helpers.check_int "al" 0 (Rtbl.al t);
  Helpers.check_bool "release" true (Rtbl.try_set_vl t ~core:0 0);
  Helpers.check_int "al after release" 2 (Rtbl.al t)

let qcheck_rtbl_invariant =
  QCheck2.Test.make ~name:"resource table invariant under random requests"
    QCheck2.Gen.(list_size (int_range 1 200) (pair (int_range 0 2) (int_range 0 8)))
    (fun reqs ->
      let t = Rtbl.create ~total:8 ~cores:3 in
      List.iter (fun (core, l) -> ignore (Rtbl.try_set_vl t ~core l)) reqs;
      Rtbl.invariant_holds t)

let test_config_tbl_reassign () =
  let t = Config_tbl.create ~name:"t" ~units:8 in
  Config_tbl.reassign t ~core:0 ~count:5;
  Config_tbl.reassign t ~core:1 ~count:3;
  Helpers.check_int "core0 owns 5" 5 (Config_tbl.count_owned t ~core:0);
  Helpers.check_int "core1 owns 3" 3 (Config_tbl.count_owned t ~core:1);
  Helpers.check_int "none free" 0 (Config_tbl.count_free t);
  (* Shrink core0; the freed units become available to core1. *)
  Config_tbl.reassign t ~core:0 ~count:2;
  Config_tbl.reassign t ~core:1 ~count:6;
  Helpers.check_bool "consistent" true (Config_tbl.consistent_with t [| 2; 6 |]);
  (* No unit owned twice. *)
  let all_owned =
    Config_tbl.owned_by t ~core:0 @ Config_tbl.owned_by t ~core:1
  in
  Helpers.check_int "partition covers all units" 8
    (List.length (List.sort_uniq compare all_owned))

let test_config_tbl_overcommit () =
  let t = Config_tbl.create ~name:"t" ~units:4 in
  Config_tbl.reassign t ~core:0 ~count:3;
  Helpers.check_bool "overcommit rejected" true
    (try
       Config_tbl.reassign t ~core:1 ~count:2;
       false
     with Invalid_argument _ -> true)

let test_freelist () =
  let f = Freelist.create ~name:"f" ~depth:10 ~pinned:4 in
  Helpers.check_int "capacity" 6 (Freelist.capacity f);
  for _ = 1 to 6 do
    Helpers.check_bool "alloc" true (Freelist.alloc f)
  done;
  Helpers.check_bool "exhausted" false (Freelist.alloc f);
  Helpers.check_int "one failed alloc" 1 (Freelist.failed_allocs f);
  Freelist.release f;
  Helpers.check_bool "after release" true (Freelist.alloc f);
  Helpers.check_int "peak" 6 (Freelist.peak_in_use f);
  Freelist.release_all f;
  Helpers.check_int "drained" 0 (Freelist.in_use f)

let qcheck_freelist_balance =
  QCheck2.Test.make ~name:"freelist in_use equals allocs minus releases"
    QCheck2.Gen.(list_size (int_range 1 300) bool)
    (fun ops ->
      let f = Freelist.create ~name:"q" ~depth:20 ~pinned:0 in
      let live = ref 0 in
      List.iter
        (fun do_alloc ->
          if do_alloc then begin
            if Freelist.alloc f then incr live
          end
          else if !live > 0 then begin
            Freelist.release f;
            decr live
          end)
        ops;
      Freelist.in_use f = !live)

let test_lsu () =
  let l = Lsu.create ~load_capacity:2 ~store_capacity:1 () in
  Helpers.check_bool "accept load" true (Lsu.can_accept l ~is_store:false);
  Lsu.add l ~done_at:5 ~is_store:false ~mob_id:(Some 1);
  Lsu.add l ~done_at:9 ~is_store:false ~mob_id:None;
  Helpers.check_bool "loads full" false (Lsu.can_accept l ~is_store:false);
  Helpers.check_bool "stores open" true (Lsu.can_accept l ~is_store:true);
  Lsu.add l ~done_at:7 ~is_store:true ~mob_id:(Some 2);
  Helpers.check_int "outstanding" 3 (Lsu.outstanding l);
  let retired = Lsu.retire l ~now:7 in
  Helpers.check_int "two retired with mob ids" 2 (List.length retired);
  Helpers.check_int "one left" 1 (Lsu.outstanding l);
  Helpers.check_bool "not drained" false (Lsu.is_drained l);
  ignore (Lsu.retire l ~now:100);
  Helpers.check_bool "drained" true (Lsu.is_drained l)

let test_exebu_slots () =
  let e = Exebu.create ~units:4 ~pipes_per_unit:2 in
  Exebu.begin_cycle e ~cycle:1;
  Helpers.check_bool "first uop" true (Exebu.can_issue e ~unit_ids:[ 0; 1 ]);
  Exebu.issue e ~unit_ids:[ 0; 1 ];
  Exebu.issue e ~unit_ids:[ 0; 1 ];
  Helpers.check_bool "pipes exhausted" false (Exebu.can_issue e ~unit_ids:[ 0 ]);
  Helpers.check_bool "other units free" true (Exebu.can_issue e ~unit_ids:[ 2; 3 ]);
  Exebu.begin_cycle e ~cycle:2;
  Helpers.check_bool "new cycle resets" true (Exebu.can_issue e ~unit_ids:[ 0 ]);
  Helpers.check_int "uops counted" 4 (Exebu.uops_executed e)

let test_ordering_matrix () =
  let open Instr in
  (* The nine cells of Table 2. *)
  let check older younger agent mech =
    let a, m = Ordering.policy ~older ~younger in
    Helpers.check_bool
      (Printf.sprintf "agent %s" (Ordering.agent_name agent))
      true (a = agent);
    Helpers.check_bool
      (Printf.sprintf "mechanism %s" (Ordering.mechanism_name mech))
      true (m = mech)
  in
  check Scalar Scalar Ordering.Scalar_cores Ordering.Standard;
  check Scalar Sve Ordering.Scalar_cores Ordering.Delay_transmit;
  check Scalar Em_simd Ordering.Scalar_cores Ordering.Delay_transmit;
  check Sve Scalar Ordering.Scalar_cores Ordering.Delay_issue;
  check Em_simd Scalar Ordering.Scalar_cores Ordering.Delay_issue;
  check Sve Sve Ordering.Occamy_hardware Ordering.Standard;
  check Sve Em_simd Ordering.Occamy_hardware Ordering.Vl_after_drain;
  check Em_simd Sve Ordering.Occamy_compiler Ordering.Retry_until_success;
  check Em_simd Em_simd Ordering.Occamy_hardware Ordering.Em_simd_in_order

let suites =
  [
    ( "coproc",
      [
        Alcotest.test_case "rtbl grant/refuse" `Quick test_rtbl_grant_and_refuse;
        Alcotest.test_case "rtbl exchange" `Quick test_rtbl_exchange;
        Alcotest.test_case "config tbl reassign" `Quick test_config_tbl_reassign;
        Alcotest.test_case "config tbl overcommit" `Quick test_config_tbl_overcommit;
        Alcotest.test_case "freelist" `Quick test_freelist;
        Alcotest.test_case "lsu" `Quick test_lsu;
        Alcotest.test_case "exebu slots" `Quick test_exebu_slots;
        Alcotest.test_case "ordering matrix (Table 2)" `Quick test_ordering_matrix;
      ] );
    Helpers.qsuite "coproc.qcheck" [ qcheck_rtbl_invariant; qcheck_freelist_balance ];
  ]
