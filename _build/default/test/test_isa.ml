module Instr = Occamy_isa.Instr
module Reg = Occamy_isa.Reg
module Vop = Occamy_isa.Vop
module Oi = Occamy_isa.Oi
module Sysreg = Occamy_isa.Sysreg
module Lane = Occamy_isa.Lane
module Program = Occamy_isa.Program

let test_lane_conversions () =
  Helpers.check_int "granule elems" 4 (Lane.elems_of_granules 1);
  Helpers.check_int "8 granules" 32 (Lane.elems_of_granules 8);
  Helpers.check_int "32 lanes" 8 (Lane.granules_of_lanes 32);
  Helpers.check_bool "reject non-multiple" true
    (try
       ignore (Lane.granules_of_lanes 13);
       false
     with Invalid_argument _ -> true)

let test_oi () =
  let oi = Oi.make ~issue:0.17 ~mem:0.25 in
  Helpers.check_bool "not zero" false (Oi.is_zero oi);
  Helpers.check_bool "zero is zero" true (Oi.is_zero Oi.zero);
  let u = Oi.uniform 0.5 in
  Helpers.check_float "uniform issue" 0.5 u.Oi.issue;
  Helpers.check_float "uniform mem" 0.5 u.Oi.mem;
  Helpers.check_bool "negative rejected" true
    (try
       ignore (Oi.make ~issue:(-1.0) ~mem:0.0);
       false
     with Invalid_argument _ -> true)

let test_sysreg_table1 () =
  (* Table 1 lists exactly five dedicated registers; ZCR is the standard
     SVE register mirrored on reconfiguration. *)
  Helpers.check_int "six registers" 6 (List.length Sysreg.all);
  Helpers.check_bool "<AL> is the only shared one" true
    (List.for_all
       (fun r -> Sysreg.is_shared r = (r = Sysreg.AL))
       Sysreg.all);
  Helpers.check_bool "software writes OI and VL only" true
    (List.for_all
       (fun r ->
         Sysreg.writable_by_software r = (r = Sysreg.OI || r = Sysreg.VL))
       Sysreg.all)

let test_vop_metadata () =
  List.iter
    (fun op ->
      Helpers.check_bool "latency positive" true (Vop.latency op > 0);
      Helpers.check_bool "arity in 1..3" true
        (Vop.arity op >= 1 && Vop.arity op <= 3))
    Vop.all;
  Helpers.check_int "fma counts 2 flops" 2 (Vop.flops_per_elem Vop.Fma);
  Helpers.check_float "fma semantics" 10.0
    (Vop.apply Vop.Fma [| 4.0; 2.0; 3.0 |]);
  Helpers.check_float "sub semantics" 1.5 (Vop.apply Vop.Sub [| 4.0; 2.5 |])

let test_classify () =
  let open Instr in
  Helpers.check_bool "scalar" true (classify (Li (Reg.x 0, 1)) = Scalar);
  Helpers.check_bool "mrs is EM-SIMD" true
    (classify (Mrs (Reg.x 0, Sysreg.VL)) = Em_simd);
  Helpers.check_bool "msr_oi is EM-SIMD" true
    (classify (Msr_oi Oi.zero) = Em_simd);
  Helpers.check_bool "vload is SVE" true
    (classify (Vload { dst = Reg.v 0; arr = 0; idx = Reg.x 0; cnt = None })
    = Sve);
  Helpers.check_bool "flw is scalar" true
    (classify (Flw { fdst = Reg.f 0; arr = 0; idx = Reg.x 0 }) = Scalar)

let test_builder_and_targets () =
  let open Program.Builder in
  let b = create "p" in
  let l = fresh_label b "loop" in
  let arr = declare_array b ~name:"a" ~size:16 in
  emit b (Instr.Li (Reg.x 0, 0));
  place_label b l;
  emit b (Instr.Iop (Instr.Addi, Reg.x 0, Reg.x 0, Instr.Imm 1));
  emit b (Instr.Bc (Instr.Lt, Reg.x 0, Instr.Imm 3, l));
  emit b Instr.Halt;
  let p = finish b in
  Helpers.check_int "length" 4 (Program.length p);
  Helpers.check_int "branch target resolved" 1 p.Program.targets.(2);
  Helpers.check_int "non-branch target" (-1) p.Program.targets.(0);
  Helpers.check_int "array id" 0 arr;
  Helpers.check_bool "array name" true (Program.array_name p 0 = "a")

let test_builder_unbound_label () =
  let open Program.Builder in
  let b = create "bad" in
  emit b (Instr.B "nowhere");
  Helpers.check_bool "unbound label rejected" true
    (try
       ignore (finish b);
       false
     with Invalid_argument _ -> true)

let test_builder_duplicate_label () =
  let open Program.Builder in
  let b = create "dup" in
  place_label b "l";
  Helpers.check_bool "duplicate rejected" true
    (try
       place_label b "l";
       false
     with Invalid_argument _ -> true)

let test_pretty_print () =
  let i =
    Instr.Vop { op = Vop.Fma; dst = Reg.v 3; srcs = [ Reg.v 1; Reg.v 2; Reg.v 0 ]; cnt = None }
  in
  Helpers.check_bool "fmla printed" true
    (Instr.to_string i = "fmla z3, z1, z2, z0");
  let m = Instr.Mrs (Reg.x 4, Sysreg.DECISION) in
  Helpers.check_bool "mrs printed" true
    (Instr.to_string m = "mrs x4, <decision>")

let test_class_counts () =
  let open Program.Builder in
  let b = create "p" in
  emit b (Instr.Li (Reg.x 0, 0));
  emit b (Instr.Msr_oi (Oi.uniform 1.0));
  emit b (Instr.Vdup (Reg.v 0, Reg.f 0));
  emit b Instr.Halt;
  let s, v, e = Program.class_counts (finish b) in
  Helpers.check_int "scalars" 2 s;
  Helpers.check_int "sve" 1 v;
  Helpers.check_int "em-simd" 1 e

let suites =
  [
    ( "isa",
      [
        Alcotest.test_case "lane conversions" `Quick test_lane_conversions;
        Alcotest.test_case "oi" `Quick test_oi;
        Alcotest.test_case "sysreg table1" `Quick test_sysreg_table1;
        Alcotest.test_case "vop metadata" `Quick test_vop_metadata;
        Alcotest.test_case "classification" `Quick test_classify;
        Alcotest.test_case "builder targets" `Quick test_builder_and_targets;
        Alcotest.test_case "unbound label" `Quick test_builder_unbound_label;
        Alcotest.test_case "duplicate label" `Quick test_builder_duplicate_label;
        Alcotest.test_case "pretty print" `Quick test_pretty_print;
        Alcotest.test_case "class counts" `Quick test_class_counts;
      ] );
  ]
