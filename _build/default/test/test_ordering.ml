(* Behavioural tests of the Table-2 ordering rules and the §4.2.2 drain
   semantics, at the instruction-stream level: hand-built programs that
   exercise one ordering edge each, run on the timing simulator, asserting
   the *observable* consequence (a `<VL>` change never overlaps in-flight
   SVE work; EM-SIMD instructions execute in order; reductions wait for
   the pipeline). *)

module Instr = Occamy_isa.Instr
module Reg = Occamy_isa.Reg
module Vop = Occamy_isa.Vop
module Oi = Occamy_isa.Oi
module Sysreg = Occamy_isa.Sysreg
module Program = Occamy_isa.Program
module B = Program.Builder
module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Metrics = Occamy_core.Metrics
module Workload = Occamy_core.Workload
module Profile = Occamy_mem.Profile

(* Build a raw workload around a hand-written instruction sequence. The
   phase metadata declares one phase (the Msr_oi below). *)
let raw_workload ~name ~elems emit =
  let b = B.create name in
  let arr = B.declare_array b ~name:"data" ~size:elems in
  B.emit b (Instr.Msr_oi (Oi.uniform 1.0));
  let cfg = B.fresh_label b "cfg" in
  B.place_label b cfg;
  B.emit b (Instr.Mrs (Reg.x 4, Sysreg.DECISION));
  B.emit b (Instr.Msr (Sysreg.VL, Instr.Reg (Reg.x 4)));
  B.emit b (Instr.Mrs (Reg.x 3, Sysreg.STATUS));
  B.emit b (Instr.Bc (Instr.Ne, Reg.x 3, Instr.Imm 1, cfg));
  emit b arr;
  B.emit b (Instr.Msr_oi Oi.zero);
  let rel = B.fresh_label b "rel" in
  B.place_label b rel;
  B.emit b (Instr.Msr (Sysreg.VL, Instr.Imm 0));
  B.emit b (Instr.Mrs (Reg.x 3, Sysreg.STATUS));
  B.emit b (Instr.Bc (Instr.Ne, Reg.x 3, Instr.Imm 1, rel));
  B.emit b Instr.Halt;
  let program = B.finish b in
  Workload.validate
    {
      Workload.wl_name = name;
      program;
      phases =
        [
          {
            Workload.ph_name = name;
            ph_oi = Oi.uniform 1.0;
            ph_level = Occamy_mem.Level.Vec_cache;
            ph_trip_count = elems;
            ph_oi_writes = 1;
          };
        ];
      kind = Workload.Mixed;
      profiles = [| Profile.cache_resident |];
    }

let one_core_cfg = { Config.default with Config.cores = 1 }

let run_solo wl = Sim.simulate ~cfg:one_core_cfg ~arch:Arch.Private [ wl ]

(* ⟨SVE, EM-SIMD⟩: a `<VL>` write after a burst of long-latency vector
   work must wait for the drain — its cost shows up as blocked cycles at
   least as large as the longest outstanding latency. *)
let test_vl_waits_for_drain () =
  let wl =
    raw_workload ~name:"drain" ~elems:64 (fun b arr ->
        B.emit b (Instr.Li (Reg.x 0, 0));
        for _ = 1 to 8 do
          B.emit b
            (Instr.Vload { dst = Reg.v 1; arr; idx = Reg.x 0; cnt = None })
        done;
        (* Immediately request a different vector length. *)
        B.emit b (Instr.Msr (Sysreg.VL, Instr.Imm 1));
        B.emit b (Instr.Mrs (Reg.x 3, Sysreg.STATUS)))
  in
  let r = run_solo wl in
  let c = r.Metrics.cores.(0) in
  Helpers.check_bool "drain cost visible" true
    (c.Metrics.reconfig_blocked_cycles >= 5);
  Helpers.check_int "three reconfigs (cfg, shrink, release)" 3
    c.Metrics.reconfigs

(* ⟨EM-SIMD, SVE⟩ via the compiler's status spin: a refused request must
   not let subsequent SVE instructions run at the stale width. In the
   timing sim a grant is immediate once drained, so we assert the
   accounting instead: every successful `MSR <VL>` drains first, hence
   in-flight work never spans a reconfiguration — checked every 1024
   cycles by the simulator's own invariants; here we just confirm a
   multi-reconfig program completes with consistent counters. *)
let test_reconfig_counters_consistent () =
  let wl =
    raw_workload ~name:"counters" ~elems:64 (fun b arr ->
        B.emit b (Instr.Li (Reg.x 0, 0));
        for l = 1 to 4 do
          B.emit b (Instr.Msr (Sysreg.VL, Instr.Imm l));
          B.emit b
            (Instr.Vload { dst = Reg.v 1; arr; idx = Reg.x 0; cnt = None });
          B.emit b
            (Instr.Vop
               { op = Vop.Add; dst = Reg.v 2; srcs = [ Reg.v 1; Reg.v 1 ];
                 cnt = None })
        done)
  in
  let r = run_solo wl in
  let c = r.Metrics.cores.(0) in
  (* cfg + 4 explicit changes + release; the width-1..4 loads and adds all
     execute (8 SVE instructions). *)
  Helpers.check_int "reconfig count" 6 c.Metrics.reconfigs;
  Helpers.check_int "compute issued" 4 c.Metrics.issued_compute;
  Helpers.check_int "mem issued" 4 c.Metrics.issued_mem;
  Helpers.check_int "no failures" 0 c.Metrics.failed_vl_requests

(* ⟨SVE, Scalar⟩: a reduction's scalar consumer waits for the vector
   pipeline; the Vred drain makes the dependent scalar store correct (the
   value path is tested in the interpreter; here the timing side must not
   deadlock and must account the wait). *)
let test_vred_drains () =
  let wl =
    raw_workload ~name:"vred" ~elems:64 (fun b arr ->
        B.emit b (Instr.Li (Reg.x 0, 0));
        B.emit b (Instr.Vload { dst = Reg.v 1; arr; idx = Reg.x 0; cnt = None });
        B.emit b
          (Instr.Vop
             { op = Vop.Mul; dst = Reg.v 2; srcs = [ Reg.v 1; Reg.v 1 ];
               cnt = None });
        B.emit b (Instr.Vred { op = Vop.Red.Sum; dst = Reg.f 0; src = Reg.v 2 });
        (* Scalar consumer of the reduction result. *)
        B.emit b (Instr.Fsw { fsrc = Reg.f 0; arr; idx = Reg.x 0 }))
  in
  let r = run_solo wl in
  Helpers.check_bool "completed" true (r.Metrics.total_cycles > 0)

(* Two cores hammering `MSR <VL>` concurrently: grants must conserve
   lanes (the simulator checks the ResourceTbl invariant continuously). *)
let test_concurrent_requests_conserve_lanes () =
  let mk name =
    raw_workload ~name ~elems:64 (fun b arr ->
        B.emit b (Instr.Li (Reg.x 0, 0));
        for l = 1 to 4 do
          B.emit b (Instr.Msr (Sysreg.VL, Instr.Imm l));
          B.emit b
            (Instr.Vload { dst = Reg.v 1; arr; idx = Reg.x 0; cnt = None })
        done)
  in
  let r = Sim.simulate ~arch:Arch.Occamy [ mk "a"; mk "b" ] in
  Helpers.check_bool "both completed" true
    (Array.for_all (fun c -> c.Metrics.finish > 0) r.Metrics.cores)

(* The EM-SIMD data path is in order: a program that writes <VL> twice
   back-to-back must end up at the second value's width (observable via
   the elements a following full-width store touches — value-level, so
   via the interpreter). *)
let test_em_simd_in_order () =
  let b = B.create "inorder" in
  let arr = B.declare_array b ~name:"o" ~size:16 in
  B.emit b (Instr.Msr (Sysreg.VL, Instr.Imm 4));
  B.emit b (Instr.Msr (Sysreg.VL, Instr.Imm 2));
  B.emit b (Instr.Fli (Reg.f 0, 9.0));
  B.emit b (Instr.Vdup (Reg.v 0, Reg.f 0));
  B.emit b (Instr.Li (Reg.x 0, 0));
  B.emit b (Instr.Vstore { src = Reg.v 0; arr; idx = Reg.x 0; cnt = None });
  B.emit b Instr.Halt;
  let t = Occamy_isa.Interp.create (B.finish b) in
  ignore (Occamy_isa.Interp.run t);
  let o = Occamy_isa.Interp.memory t arr in
  (* Width is 2 granules = 8 elements: o[0..8) written, o[8..) untouched. *)
  Helpers.check_float "active element" 9.0 o.(7);
  Helpers.check_float "inactive element untouched" 0.0 o.(8)

let suites =
  [
    ( "ordering",
      [
        Alcotest.test_case "VL waits for drain" `Quick test_vl_waits_for_drain;
        Alcotest.test_case "reconfig counters" `Quick test_reconfig_counters_consistent;
        Alcotest.test_case "vred drains" `Quick test_vred_drains;
        Alcotest.test_case "concurrent requests" `Quick
          test_concurrent_requests_conserve_lanes;
        Alcotest.test_case "EM-SIMD in order" `Quick test_em_simd_in_order;
      ] );
  ]
