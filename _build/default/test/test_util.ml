module Rng = Occamy_util.Rng
module Stats = Occamy_util.Stats
module Bq = Occamy_util.Bounded_queue
module Table = Occamy_util.Table

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Helpers.check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Helpers.check_bool "in [0,1)" true (x >= 0.0 && x < 1.0);
    let i = Rng.int r 17 in
    Helpers.check_bool "in [0,17)" true (i >= 0 && i < 17);
    let j = Rng.range r 3 9 in
    Helpers.check_bool "in [3,9]" true (j >= 3 && j <= 9)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:9 in
  let b = Rng.split a in
  let xa = Rng.float a and xb = Rng.float b in
  Helpers.check_bool "split streams differ" true (xa <> xb)

let test_geomean () =
  Helpers.check_float "geomean of powers" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  Helpers.check_float "singleton" 3.0 (Stats.geomean [ 3.0 ]);
  Helpers.check_float "ignores non-positive" 4.0
    (Stats.geomean [ 2.0; 8.0; 0.0; -1.0 ]);
  Helpers.check_float "empty" 0.0 (Stats.geomean [])

let test_mean_minmax () =
  Helpers.check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  let lo, hi = Stats.min_max [ 3.0; -1.0; 2.0 ] in
  Helpers.check_float "min" (-1.0) lo;
  Helpers.check_float "max" 3.0 hi

let test_acc () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 1.0; 2.0; 3.0; 4.0 ];
  Helpers.check_int "count" 4 (Stats.Acc.count acc);
  Helpers.check_float "mean" 2.5 (Stats.Acc.mean acc);
  Helpers.check_float "min" 1.0 (Stats.Acc.min acc);
  Helpers.check_float "max" 4.0 (Stats.Acc.max acc);
  Helpers.check_float "stddev" (sqrt (5.0 /. 3.0)) (Stats.Acc.stddev acc)

let test_buckets () =
  let b = Stats.Buckets.create ~width:10 in
  Stats.Buckets.add b ~cycle:0 1.0;
  Stats.Buckets.add b ~cycle:5 3.0;
  Stats.Buckets.add b ~cycle:25 10.0;
  let avgs = Stats.Buckets.averages b in
  Helpers.check_int "three buckets" 3 (Array.length avgs);
  Helpers.check_float "bucket 0 avg" 2.0 avgs.(0);
  Helpers.check_float "bucket 1 empty" 0.0 avgs.(1);
  Helpers.check_float "bucket 2 avg" 10.0 avgs.(2);
  let rates = Stats.Buckets.rates b in
  Helpers.check_float "bucket 0 rate" 0.4 rates.(0)

let test_buckets_growth () =
  let b = Stats.Buckets.create ~width:1 in
  for i = 0 to 999 do
    Stats.Buckets.add b ~cycle:i (float_of_int i)
  done;
  let avgs = Stats.Buckets.averages b in
  Helpers.check_int "1000 buckets" 1000 (Array.length avgs);
  Helpers.check_float "last" 999.0 avgs.(999)

let test_bounded_queue () =
  let q = Bq.create ~capacity:2 in
  Helpers.check_bool "push 1" true (Bq.push q 1);
  Helpers.check_bool "push 2" true (Bq.push q 2);
  Helpers.check_bool "push 3 rejected" false (Bq.push q 3);
  Helpers.check_int "length" 2 (Bq.length q);
  Helpers.check_int "fifo order" 1 (Bq.pop q);
  Helpers.check_bool "room again" true (Bq.push q 3);
  Helpers.check_int "next" 2 (Bq.pop q);
  Helpers.check_int "next" 3 (Bq.pop q);
  Helpers.check_bool "empty" true (Bq.is_empty q)

let test_table_render () =
  let t =
    Table.create ~title:"T" ~header:[ "a"; "bb" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  Helpers.check_bool "title present" true
    (String.length s > 0 && String.sub s 0 6 = "== T =");
  (* rows render first-added first *)
  let first_x = String.index s 'x' and first_y = String.index s 'y' in
  Helpers.check_bool "x before y" true (first_x < first_y)

let qcheck_geomean_bounds =
  QCheck2.Test.make ~name:"geomean between min and max"
    QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.1 100.0))
    (fun xs ->
      let g = Stats.geomean xs in
      let lo, hi = Stats.min_max xs in
      g >= lo -. 1e-9 && g <= hi +. 1e-9)

let qcheck_acc_mean =
  QCheck2.Test.make ~name:"streaming mean equals list mean"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let acc = Stats.Acc.create () in
      List.iter (Stats.Acc.add acc) xs;
      Float.abs (Stats.Acc.mean acc -. Stats.mean xs) < 1e-9)

let suites =
  [
    ( "util",
      [
        Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "rng split" `Quick test_rng_split_independent;
        Alcotest.test_case "geomean" `Quick test_geomean;
        Alcotest.test_case "mean/minmax" `Quick test_mean_minmax;
        Alcotest.test_case "acc" `Quick test_acc;
        Alcotest.test_case "buckets" `Quick test_buckets;
        Alcotest.test_case "buckets growth" `Quick test_buckets_growth;
        Alcotest.test_case "bounded queue" `Quick test_bounded_queue;
        Alcotest.test_case "table render" `Quick test_table_render;
      ] );
    Helpers.qsuite "util.qcheck" [ qcheck_geomean_bounds; qcheck_acc_mean ];
  ]
