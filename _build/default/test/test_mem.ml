module Level = Occamy_mem.Level
module Channel = Occamy_mem.Channel
module Profile = Occamy_mem.Profile
module Hierarchy = Occamy_mem.Hierarchy
module Mob = Occamy_mem.Mob

let test_channel_bandwidth () =
  let ch = Channel.create ~name:"c" ~bytes_per_cycle:64.0 in
  let t1 = Channel.request ch ~now:0.0 ~bytes:128.0 in
  Helpers.check_float "first transfer 2 cycles" 2.0 t1;
  (* Second request queues behind the first. *)
  let t2 = Channel.request ch ~now:0.0 ~bytes:64.0 in
  Helpers.check_float "queued transfer" 3.0 t2;
  (* A late request does not queue. *)
  let t3 = Channel.request ch ~now:100.0 ~bytes:64.0 in
  Helpers.check_float "idle channel" 101.0 t3;
  Helpers.check_float "bytes moved" 256.0 (Channel.bytes_moved ch)

let test_channel_utilisation () =
  let ch = Channel.create ~name:"c" ~bytes_per_cycle:32.0 in
  ignore (Channel.request ch ~now:0.0 ~bytes:320.0);
  Helpers.check_float "10 busy cycles over 20" 0.5
    (Channel.utilisation ch ~cycles:20.0)

let test_hierarchy_latencies () =
  let h = Hierarchy.create () in
  let cfg = Hierarchy.config h in
  let t_vc = Hierarchy.access h ~now:0 ~level:Level.Vec_cache ~bytes:64 in
  Helpers.check_bool "VC latency dominates small access" true
    (t_vc >= cfg.vc_latency);
  Hierarchy.reset h;
  let t_l2 = Hierarchy.access h ~now:0 ~level:Level.L2 ~bytes:64 in
  Helpers.check_bool "L2 slower than VC" true (t_l2 > t_vc);
  Hierarchy.reset h;
  let t_dram = Hierarchy.access h ~now:0 ~level:Level.Dram ~bytes:64 in
  Helpers.check_bool "DRAM slower than L2" true (t_dram > t_l2)

let test_hierarchy_contention () =
  (* Saturating DRAM: completion times must spread out at the DRAM
     bandwidth, not the VC bandwidth. *)
  let h = Hierarchy.create () in
  let n = 32 in
  let last = ref 0 in
  for _ = 1 to n do
    last := Hierarchy.access h ~now:0 ~level:Level.Dram ~bytes:64
  done;
  let cfg = Hierarchy.config h in
  let min_spread =
    float_of_int (n * 64) /. cfg.dram_bytes_per_cycle
  in
  Helpers.check_bool "DRAM bandwidth limits throughput" true
    (float_of_int !last >= min_spread);
  Helpers.check_int "accesses counted" n (Hierarchy.accesses h);
  Helpers.check_int "at dram" n (Hierarchy.accesses_at h Level.Dram)

let test_profile_classify () =
  let rng = Occamy_util.Rng.create ~seed:11 in
  let p = Profile.make ~vc:0.5 ~l2:0.3 ~dram:0.2 in
  let counts = Array.make 3 0 in
  let n = 20000 in
  for _ = 1 to n do
    let l = Profile.classify p rng in
    counts.(Level.depth l) <- counts.(Level.depth l) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Helpers.check_bool "vc fraction" true (Float.abs (frac 0 -. 0.5) < 0.02);
  Helpers.check_bool "l2 fraction" true (Float.abs (frac 1 -. 0.3) < 0.02);
  Helpers.check_bool "dram fraction" true (Float.abs (frac 2 -. 0.2) < 0.02)

let test_profile_validation () =
  Helpers.check_bool "fractions must sum to 1" true
    (try
       ignore (Profile.make ~vc:0.5 ~l2:0.1 ~dram:0.1);
       false
     with Invalid_argument _ -> true);
  Helpers.check_bool "dominant streaming" true
    (Profile.dominant Profile.streaming = Level.Dram);
  Helpers.check_bool "dominant resident" true
    (Profile.dominant Profile.cache_resident = Level.Vec_cache);
  Helpers.check_bool "dominant l2" true
    (Profile.dominant Profile.l2_resident = Level.L2)

let test_mob_overlap () =
  let m = Mob.create ~capacity:4 () in
  let id1 =
    Option.get (Mob.insert m ~core:0 ~arr:1 ~base:0 ~len:8 ~is_store:true)
  in
  (* A read overlapping an in-flight store conflicts. *)
  Helpers.check_bool "read vs store conflicts" true
    (Mob.conflicts m ~arr:1 ~base:4 ~len:4 ~is_store:false);
  (* A read overlapping an in-flight load does not. *)
  let _id2 =
    Option.get (Mob.insert m ~core:0 ~arr:2 ~base:0 ~len:8 ~is_store:false)
  in
  Helpers.check_bool "read vs load fine" false
    (Mob.conflicts m ~arr:2 ~base:0 ~len:8 ~is_store:false);
  (* A write overlapping anything conflicts. *)
  Helpers.check_bool "write vs load conflicts" true
    (Mob.conflicts m ~arr:2 ~base:7 ~len:2 ~is_store:true);
  (* Disjoint ranges never conflict. *)
  Helpers.check_bool "disjoint fine" false
    (Mob.conflicts m ~arr:1 ~base:8 ~len:8 ~is_store:true);
  Mob.remove m id1;
  Helpers.check_bool "after removal no conflict" false
    (Mob.conflicts m ~arr:1 ~base:4 ~len:4 ~is_store:false)

let test_mob_capacity () =
  let m = Mob.create ~capacity:2 () in
  ignore (Mob.insert m ~core:0 ~arr:0 ~base:0 ~len:1 ~is_store:false);
  ignore (Mob.insert m ~core:1 ~arr:0 ~base:1 ~len:1 ~is_store:false);
  Helpers.check_bool "full" true
    (Mob.insert m ~core:0 ~arr:0 ~base:2 ~len:1 ~is_store:false = None);
  Helpers.check_int "per-core outstanding" 1 (Mob.outstanding_of m ~core:1)

let qcheck_channel_monotone =
  QCheck2.Test.make ~name:"channel completions are monotone for queued requests"
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 1 512))
    (fun sizes ->
      let ch = Channel.create ~name:"q" ~bytes_per_cycle:16.0 in
      let times =
        List.map
          (fun b -> Channel.request ch ~now:0.0 ~bytes:(float_of_int b))
          sizes
      in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono times)

let qcheck_mob_no_leak =
  QCheck2.Test.make ~name:"mob insert/remove never leaks"
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 0 7))
    (fun ops ->
      let m = Mob.create ~capacity:8 () in
      let live = ref [] in
      List.iter
        (fun base ->
          if List.length !live > 4 then begin
            match !live with
            | id :: rest ->
              Mob.remove m id;
              live := rest
            | [] -> ()
          end
          else
            match Mob.insert m ~core:0 ~arr:0 ~base ~len:1 ~is_store:false with
            | Some id -> live := id :: !live
            | None -> ())
        ops;
      Mob.size m = List.length !live)

let suites =
  [
    ( "mem",
      [
        Alcotest.test_case "channel bandwidth" `Quick test_channel_bandwidth;
        Alcotest.test_case "channel utilisation" `Quick test_channel_utilisation;
        Alcotest.test_case "hierarchy latencies" `Quick test_hierarchy_latencies;
        Alcotest.test_case "hierarchy contention" `Quick test_hierarchy_contention;
        Alcotest.test_case "profile classify" `Quick test_profile_classify;
        Alcotest.test_case "profile validation" `Quick test_profile_validation;
        Alcotest.test_case "mob overlap" `Quick test_mob_overlap;
        Alcotest.test_case "mob capacity" `Quick test_mob_capacity;
      ] );
    Helpers.qsuite "mem.qcheck" [ qcheck_channel_monotone; qcheck_mob_no_leak ];
  ]

(* --- additional properties ----------------------------------------- *)

let qcheck_hierarchy_conserves_bytes =
  (* Every byte requested shows up in exactly the traversed channels. *)
  QCheck2.Test.make ~name:"hierarchy books bytes on every traversed level"
    QCheck2.Gen.(list_size (int_range 1 40) (pair (int_range 0 2) (int_range 1 256)))
    (fun reqs ->
      let h = Hierarchy.create () in
      let expected = Array.make 3 0.0 in
      List.iter
        (fun (lvl, bytes) ->
          let level =
            match lvl with 0 -> Level.Vec_cache | 1 -> Level.L2 | _ -> Level.Dram
          in
          ignore (Hierarchy.access h ~now:0 ~level ~bytes);
          for d = 0 to Level.depth level do
            expected.(d) <- expected.(d) +. float_of_int bytes
          done)
        reqs;
      List.for_all
        (fun level ->
          Float.abs
            (Channel.bytes_moved (Hierarchy.channel h level)
            -. expected.(Level.depth level))
          < 1e-9)
        Level.all)

let qcheck_prefetch_only_changes_latency =
  (* Prefetched accesses observe shorter latency but identical bandwidth
     occupancy. *)
  QCheck2.Test.make ~name:"prefetch cuts latency, keeps bandwidth"
    QCheck2.Gen.(int_range 1 512)
    (fun bytes ->
      let h1 = Hierarchy.create () and h2 = Hierarchy.create () in
      let t_norm = Hierarchy.access h1 ~now:0 ~level:Level.Dram ~bytes in
      let t_pre =
        Hierarchy.access ~prefetched:true h2 ~now:0 ~level:Level.Dram ~bytes
      in
      t_pre <= t_norm
      && Channel.bytes_moved (Hierarchy.channel h1 Level.Dram)
         = Channel.bytes_moved (Hierarchy.channel h2 Level.Dram))

let suites =
  suites
  @ [
      Helpers.qsuite "mem.qcheck2"
        [ qcheck_hierarchy_conserves_bytes; qcheck_prefetch_only_changes_latency ];
    ]
