(* Guards for the parallel sweep harness: parallel simulation must be
   bit-identical to sequential simulation, and the runners must compile
   each pair exactly once per run (not once per architecture). *)

module Arch = Occamy_core.Arch
module Sim = Occamy_core.Sim
module Suite = Occamy_workloads.Suite
module Pair_run = Occamy_experiments.Pair_run

let find_pair label =
  match Suite.find_pair label with
  | Some p -> p
  | None -> Alcotest.failf "pair %s missing from the suite" label

(* Every simulation seeds its own Rng from the config, so scheduling the
   four architecture sims across 4 domains must not change a single bit
   of the results relative to the sequential path. *)
let test_parallel_matches_sequential () =
  let p = find_pair "20+17" in
  let seq = Pair_run.run_pair ~tc_scale:0.3 ~jobs:1 p in
  let par = Pair_run.run_pair ~tc_scale:0.3 ~jobs:4 p in
  Helpers.check_bool "results bit-identical (-j 1 vs -j 4)" true
    (seq.Pair_run.results = par.Pair_run.results)

(* On hosts with few cores the elastic cap can quietly make -j 4 run
   sequentially; forcing oversubscription pins the test to a genuinely
   concurrent, stealing schedule everywhere. *)
let test_oversubscribed_matches_sequential () =
  let p = find_pair "20+17" in
  let seq = Pair_run.run_pair ~tc_scale:0.3 ~jobs:1 p in
  let par = Pair_run.run_pair ~tc_scale:0.3 ~jobs:4 ~oversubscribe:true p in
  Helpers.check_bool "results bit-identical under forced oversubscription"
    true
    (seq.Pair_run.results = par.Pair_run.results)

let test_parallel_group_matches_sequential () =
  let g = List.hd Suite.four_core_groups in
  let seq = Occamy_experiments.Fig16.run_group ~tc_scale:0.3 ~jobs:1 g in
  let par = Occamy_experiments.Fig16.run_group ~tc_scale:0.3 ~jobs:4 g in
  Helpers.check_bool "4-core results bit-identical" true
    (seq.Occamy_experiments.Fig16.results
    = par.Occamy_experiments.Fig16.results)

(* A compiled Workload.t is read-only to the simulator: simulating the
   same value twice in a row gives identical metrics (this is what lets
   run_pair hoist Suite.compile_pair out of the per-architecture loop). *)
let test_workload_reuse () =
  let wls = Suite.compile_pair ~tc_scale:0.3 (find_pair "20+17") in
  List.iter
    (fun arch ->
      let m1 = Sim.simulate ~arch wls in
      let m2 = Sim.simulate ~arch wls in
      Helpers.check_bool
        (Printf.sprintf "identical metrics on reuse (%s)" (Arch.name arch))
        true (m1 = m2))
    Arch.all

let test_compile_once_per_run () =
  let p = find_pair "1+13" in
  Suite.reset_compile_count ();
  ignore (Pair_run.run_pair ~tc_scale:0.3 ~jobs:1 p);
  Helpers.check_int "2 workload compiles for 4 architectures" 2
    (Suite.compile_count ());
  Suite.reset_compile_count ();
  ignore (Pair_run.run_pair ~tc_scale:0.3 ~jobs:4 p);
  Helpers.check_int "parallel run compiles the pair once too" 2
    (Suite.compile_count ())

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "pair -j1 == -j4" `Quick
          test_parallel_matches_sequential;
        Alcotest.test_case "pair -j1 == -j4 oversubscribed" `Quick
          test_oversubscribed_matches_sequential;
        Alcotest.test_case "group -j1 == -j4" `Slow
          test_parallel_group_matches_sequential;
        Alcotest.test_case "workload reuse" `Quick test_workload_reuse;
        Alcotest.test_case "compile once per run" `Quick
          test_compile_once_per_run;
      ] );
  ]
