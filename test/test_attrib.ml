(* Top-down cycle accounting: the conservation invariant (per core, the
   bucket counts sum to exactly the simulated cycle count) on both
   simulation loops, naive-vs-fast-forward bit-identity of the full
   attribution state, the bucket taxonomy, the OpenMetrics exporter, the
   sorted Counters JSON dump, and the zero-allocation guarantee of the
   accounting hot path. *)

module Config = Occamy_core.Config
module Arch = Occamy_core.Arch
module Sim = Occamy_core.Sim
module Metrics = Occamy_core.Metrics
module Workload = Occamy_core.Workload
module Attrib = Occamy_obs.Attrib
module Counters = Occamy_obs.Counters
module Openmetrics = Occamy_obs.Openmetrics
module Invariant = Occamy_check.Invariant
module Diff = Occamy_check.Diff
module Corpus = Occamy_check.Corpus
module Rng = Occamy_check.Rng
module Codegen = Occamy_compiler.Codegen
module Motivating = Occamy_workloads.Motivating
module Suite = Occamy_workloads.Suite

(* ---------------- taxonomy ------------------------------------------ *)

let test_taxonomy () =
  Helpers.check_int "bucket count" Attrib.num_buckets
    (List.length Attrib.all);
  List.iter
    (fun b ->
      Helpers.check_bool "index/of_index bijection" true
        (Attrib.of_index (Attrib.index b) = b))
    Attrib.all;
  let uniq f =
    let xs = List.map f Attrib.all in
    List.length (List.sort_uniq compare xs) = List.length xs
  in
  Helpers.check_bool "names unique" true (uniq Attrib.name);
  Helpers.check_bool "letters unique" true (uniq Attrib.letter);
  Helpers.check_bool "of_level covers all LSU buckets" true
    (List.sort_uniq compare
       (List.map Attrib.of_level Occamy_mem.Level.all)
    = List.sort compare [ Attrib.Lsu_vc; Attrib.Lsu_l2; Attrib.Lsu_dram ])

(* ---------------- conservation + loop equivalence ------------------- *)

(* Run both loops with accounting enabled and check:
   - per core, the bucket counts sum to exactly the final cycle count
     (the simulator also self-checks this in [Sim.run]; re-asserting
     here keeps the test meaningful if that check is ever relaxed);
   - the full attribution state — counts, ring samples and the pending
     window — is bit-identical between the naive and skipping loops;
   - the metrics-level invariant checker accepts the attribution rows.
   Returns the fast-forward recorder for extra assertions. *)
let run_both_attrib ?(cfg = Config.default) ?(context_switches = []) ~label
    ~arch wls =
  let run fast_forward =
    let attrib = Attrib.create ~cores:cfg.Config.cores () in
    let t =
      Sim.create
        ~cfg:{ cfg with Config.fast_forward }
        ~attrib ~context_switches ~arch wls
    in
    let m = Sim.run t in
    (t, m, attrib)
  in
  let t_naive, m_naive, a_naive = run false in
  let t_ff, m_ff, a_ff = run true in
  let name = Printf.sprintf "%s/%s" label (Arch.name arch) in
  List.iter
    (fun (t, a, loop) ->
      for core = 0 to cfg.Config.cores - 1 do
        Helpers.check_int
          (Printf.sprintf "%s: %s loop, core%d buckets sum to cycles" name
             loop core)
          (Sim.cycle t)
          (Attrib.core_total a ~core)
      done)
    [ (t_naive, a_naive, "naive"); (t_ff, a_ff, "ff") ];
  Helpers.check_bool
    (Printf.sprintf "%s: counts bit-identical" name)
    true
    (Attrib.counts a_naive = Attrib.counts a_ff);
  Helpers.check_bool
    (Printf.sprintf "%s: window samples bit-identical" name)
    true
    (Attrib.samples a_naive = Attrib.samples a_ff
    && Attrib.pending a_naive = Attrib.pending a_ff);
  (match Invariant.check_equivalent m_naive m_ff with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: metrics diverge: %s" name msg);
  List.iter
    (fun m ->
      match Invariant.check_metrics ~cfg m with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: invariant: %s" name msg)
    [ m_naive; m_ff ];
  a_ff

let test_motivating_pair () =
  let wls = Motivating.pair () in
  List.iter
    (fun arch -> ignore (run_both_attrib ~label:"pair" ~arch wls))
    Arch.all

let test_motivating_pair_small () =
  let wls = Motivating.pair ~tc0:512 ~tc1:1024 () in
  List.iter
    (fun arch -> ignore (run_both_attrib ~label:"pair-small" ~arch wls))
    Arch.all

let test_preemption () =
  (* Both cores descheduled for a long away window: the context-switch
     bucket must absorb at least the away cycles — on the skipping loop
     too, where they are attributed in batches across event-horizon
     jumps. Full-size pair: a halted core's switch is a no-op, and at
     cycle 200 no architecture has finished these trip counts. *)
  let wls = Motivating.pair () in
  let cfg = { Config.default with Config.cs_away_cycles = 20_000 } in
  List.iter
    (fun arch ->
      let a =
        run_both_attrib ~cfg
          ~context_switches:[ (0, 200); (1, 200) ]
          ~label:"preempt" ~arch wls
      in
      for core = 0 to cfg.Config.cores - 1 do
        Helpers.check_bool
          (Printf.sprintf "preempt/%s: core%d saw >= away ctx-switch cycles"
             (Arch.name arch) core)
          true
          (Attrib.count a ~core Attrib.Ctx_switch
          >= cfg.Config.cs_away_cycles)
      done)
    Arch.all

let test_four_core_group () =
  let cfg = Config.four_core in
  let wls = Suite.compile_group ~tc_scale:0.3 (List.hd Suite.four_core_groups) in
  List.iter
    (fun arch -> ignore (run_both_attrib ~cfg ~label:"4core" ~arch wls))
    Arch.all

let test_corpus () =
  List.iter
    (fun (e : Corpus.entry) ->
      let c = Diff.case_of_seed e.Corpus.seed in
      let wl =
        Codegen.compile_workload ~options:c.Diff.options ~name:e.Corpus.name
          ~kind:Workload.Mixed c.Diff.loops
      in
      let wls = List.init Config.default.Config.cores (fun _ -> wl) in
      List.iter
        (fun arch -> ignore (run_both_attrib ~label:e.Corpus.name ~arch wls))
        Arch.all)
    Corpus.entries

let fuzz_cases = 200

let test_fresh_fuzz_cases () =
  (* Seed base distinct from both the nightly fuzzer's and
     test_fastforward's, so this coverage is additive. *)
  for i = 0 to fuzz_cases - 1 do
    let cs = Rng.case_seed ~seed:314159 i in
    let c = Diff.case_of_seed cs in
    match
      Codegen.compile_workload ~options:c.Diff.options ~name:"attrib-fuzz"
        ~kind:Workload.Mixed c.Diff.loops
    with
    | exception e ->
      Alcotest.failf "case %d does not compile: %s" cs (Printexc.to_string e)
    | wl ->
      let wls = List.init Config.default.Config.cores (fun _ -> wl) in
      List.iter
        (fun arch ->
          ignore
            (run_both_attrib ~label:(Printf.sprintf "fuzz-%d" cs) ~arch wls))
        Arch.all
  done

(* ---------------- disabled recorder is really off -------------------- *)

let test_disabled_recorder () =
  let wls = Motivating.pair ~tc0:512 ~tc1:1024 () in
  let m = Sim.simulate ~arch:Arch.Occamy wls in
  Helpers.check_int "no attrib rows when disabled" 0
    (Array.length m.Metrics.attrib);
  Helpers.check_bool "no attrib counters when disabled" true
    (not
       (List.exists
          (fun n -> Helpers.contains n ".attrib.")
          (Counters.names (Metrics.counters m))))

(* ---------------- counters JSON dump --------------------------------- *)

let test_counters_to_json_sorted () =
  let c = Counters.create () in
  (* Insert deliberately out of name order; hash-table iteration order
     must not leak into the dump. *)
  List.iter
    (fun (k, v) -> Counters.set c k v)
    [ ("zeta", 3.0); ("alpha", 1.0); ("mid.key", 2.5); ("alpha.sub", 2.0) ];
  let kvs = Counters.to_json c in
  Helpers.check_bool "keys sorted" true
    (List.map fst kvs = [ "alpha"; "alpha.sub"; "mid.key"; "zeta" ]);
  List.iter
    (fun (k, want) ->
      match List.assoc k kvs with
      | Occamy_util.Json.Num got -> Helpers.check_float k want got
      | _ -> Alcotest.failf "%s: not a number" k)
    [ ("zeta", 3.0); ("alpha", 1.0); ("mid.key", 2.5); ("alpha.sub", 2.0) ]

(* ---------------- OpenMetrics exporter ------------------------------- *)

let test_openmetrics_sanitize () =
  List.iter
    (fun (raw, want) ->
      Alcotest.(check string) raw want (Openmetrics.sanitize raw))
    [
      ("core0.attrib.lsu_l2", "core0_attrib_lsu_l2");
      ("4core.finish", "_4core_finish");
      ("ok_name", "ok_name");
    ]

let test_openmetrics_round_trip () =
  let wls = Motivating.pair () in
  let attrib = Attrib.create ~cores:Config.default.Config.cores () in
  let m = Sim.simulate ~attrib ~arch:Arch.Occamy wls in
  let text =
    Openmetrics.render
      (Openmetrics.of_attrib attrib
      @ Openmetrics.of_counters (Metrics.counters m))
  in
  (match Openmetrics.validate text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid OpenMetrics output: %s" msg);
  Helpers.check_bool "has attrib cycle samples" true
    (Helpers.contains text "occamy_attrib_cycles_total{core=\"0\"");
  Helpers.check_bool "has shares" true
    (Helpers.contains text "occamy_attrib_share{");
  Helpers.check_bool "terminates with EOF" true
    (Helpers.contains text "# EOF")

let test_openmetrics_validate_rejects () =
  List.iter
    (fun (label, text) ->
      match Openmetrics.validate text with
      | Ok () -> Alcotest.failf "%s: accepted invalid exposition" label
      | Error _ -> ())
    [
      ("missing EOF", "# TYPE a gauge\na 1\n");
      ("sample before TYPE", "a 1\n# EOF\n");
      ( "content after EOF",
        "# TYPE a gauge\na 1\n# EOF\n# TYPE b gauge\nb 2\n" );
      ("non-numeric value", "# TYPE a gauge\na fast\n# EOF\n");
    ]

(* ---------------- zero allocation with accounting on ------------------ *)

let test_zero_alloc_with_attrib () =
  (* Same discipline as test_dod's steady-state check, with the recorder
     enabled: classification and window flushing must not allocate. *)
  let wls = Occamy_workloads.Motivating.pair () in
  let attrib = Attrib.create ~cores:Config.default.Config.cores () in
  let sim = Sim.create ~attrib ~arch:Arch.Occamy wls in
  for _ = 1 to 2000 do
    Sim.step sim
  done;
  let min_delta = ref infinity in
  for _chunk = 1 to 10 do
    let before = Gc.minor_words () in
    for _ = 1 to 1000 do
      Sim.step sim
    done;
    let delta = Gc.minor_words () -. before in
    if delta < !min_delta then min_delta := delta
  done;
  if !min_delta <> 0.0 then
    Alcotest.failf
      "accounted steady state allocates: best 1000-cycle chunk = %.0f minor \
       words"
      !min_delta

let suites =
  [
    ( "attrib",
      [
        Alcotest.test_case "bucket taxonomy" `Quick test_taxonomy;
        Alcotest.test_case "motivating pair conserves cycles" `Quick
          test_motivating_pair;
        Alcotest.test_case "motivating pair (small trips)" `Quick
          test_motivating_pair_small;
        Alcotest.test_case "preemption fills ctx-switch bucket" `Quick
          test_preemption;
        Alcotest.test_case "4-core group" `Quick test_four_core_group;
        Alcotest.test_case "regression corpus" `Quick test_corpus;
        Alcotest.test_case
          (Printf.sprintf "%d fresh fuzz cases" fuzz_cases)
          `Quick test_fresh_fuzz_cases;
        Alcotest.test_case "disabled recorder stays off" `Quick
          test_disabled_recorder;
        Alcotest.test_case "counters to_json is sorted" `Quick
          test_counters_to_json_sorted;
        Alcotest.test_case "openmetrics sanitize" `Quick
          test_openmetrics_sanitize;
        Alcotest.test_case "openmetrics round trip validates" `Quick
          test_openmetrics_round_trip;
        Alcotest.test_case "openmetrics validate rejects garbage" `Quick
          test_openmetrics_validate_rejects;
        Alcotest.test_case "zero alloc with accounting on" `Quick
          test_zero_alloc_with_attrib;
      ] );
  ]
