(* Tests for the data-oriented simulator core's packed structures:
   - Bitset vs a naive sorted-list oracle (property-tested)
   - the limb-based Rng vs a reference Int64 SplitMix64 (bit-identical)
   - Freelist exhaustion/reuse
   - zero steady-state allocation over dense cycles (Gc.minor_words) *)

open Occamy_util
module Sim = Occamy_core.Sim
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config

(* ------------------------------------------------------------------ *)
(* Reference SplitMix64 over boxed Int64 — the original [Rng]
   implementation, kept verbatim as the oracle for the limb version. *)

module Ref_rng = struct
  type t = { mutable state : int64 }

  let create ~seed = { state = Int64.of_int seed }

  let next_int64 t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let float t =
    let bits = Int64.shift_right_logical (next_int64 t) 11 in
    Int64.to_float bits *. (1.0 /. 9007199254740992.0)

  let int t bound =
    if bound <= 0 then invalid_arg "bound";
    let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
    r mod bound

  let range t lo hi = lo + int t (hi - lo + 1)
  let bool t p = float t < p

  let split t =
    let seed = Int64.to_int (next_int64 t) in
    { state = Int64.of_int (seed lxor 0x5851F42D) }
end

let seeds =
  [ 0; 1; 42; 12345; -1; -987654321; max_int; min_int; 0x5851F42D; 1 lsl 40 ]

let test_rng_matches_reference () =
  List.iter
    (fun seed ->
      let r = Rng.create ~seed and o = Ref_rng.create ~seed in
      for i = 0 to 2999 do
        (* Interleave every operation kind so state stays in lockstep. *)
        match i mod 4 with
        | 0 ->
            let a = Rng.float r and b = Ref_rng.float o in
            if a <> b then
              Alcotest.failf "float diverged (seed %d, draw %d): %h vs %h" seed
                i a b
        | 1 ->
            Helpers.check_int "int draw" (Ref_rng.int o 1000) (Rng.int r 1000)
        | 2 ->
            Helpers.check_int "range draw"
              (Ref_rng.range o (-50) 50)
              (Rng.range r (-50) 50)
        | _ ->
            Helpers.check_bool "bool draw" (Ref_rng.bool o 0.3)
              (Rng.bool r 0.3)
      done)
    seeds

let test_rng_split_matches_reference () =
  List.iter
    (fun seed ->
      let r = Rng.create ~seed and o = Ref_rng.create ~seed in
      (* Chain splits: each derived generator must continue the same
         stream, and the parent must stay in lockstep too. *)
      let r' = Rng.split r and o' = Ref_rng.split o in
      let r'' = Rng.split r' and o'' = Ref_rng.split o' in
      List.iter
        (fun (a, b) ->
          for _ = 1 to 500 do
            Helpers.check_int "split stream" (Ref_rng.int b 1_000_000)
              (Rng.int a 1_000_000)
          done)
        [ (r, o); (r', o'); (r'', o'') ])
    seeds

let test_rng_copy () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 17 do ignore (Rng.float r) done;
  let c = Rng.copy r in
  for _ = 1 to 100 do
    Helpers.check_int "copy lockstep" (Rng.int r 999983) (Rng.int c 999983)
  done

(* ------------------------------------------------------------------ *)
(* Bitset vs sorted-list oracle. *)

let oracle_next_from l i = match List.find_opt (fun x -> x >= i) l with
  | Some x -> x
  | None -> -1

let check_same_view ~cap bs oracle =
  Helpers.check_int "cardinal" (List.length oracle) (Bitset.cardinal bs);
  Helpers.check_bool "is_empty" (oracle = []) (Bitset.is_empty bs);
  Helpers.check_bool "to_list" true (Bitset.to_list bs = oracle);
  for i = 0 to cap - 1 do
    Helpers.check_bool "mem" (List.mem i oracle) (Bitset.mem bs i)
  done;
  for i = -1 to cap do
    Helpers.check_int "next_set_from" (oracle_next_from oracle i)
      (Bitset.next_set_from bs i)
  done

let test_bitset_oracle () =
  let rng = Rng.create ~seed:2024 in
  List.iter
    (fun cap ->
      let bs = Bitset.create cap in
      let oracle = ref [] in
      for _ = 1 to 400 do
        let i = Rng.int rng cap in
        (match Rng.int rng 3 with
        | 0 ->
            Bitset.add bs i;
            if not (List.mem i !oracle) then
              oracle := List.sort compare (i :: !oracle)
        | 1 ->
            Bitset.remove bs i;
            oracle := List.filter (fun x -> x <> i) !oracle
        | _ ->
            if Rng.bool rng 0.05 then begin
              Bitset.clear bs;
              oracle := []
            end);
        if Rng.bool rng 0.1 then check_same_view ~cap bs oracle.contents
      done;
      check_same_view ~cap bs !oracle)
    [ 1; 7; 31; 32; 33; 63; 64; 65; 96; 128; 200 ]

let test_bitset_edges () =
  let bs = Bitset.create 65 in
  Helpers.check_int "empty next" (-1) (Bitset.next_set_from bs 0);
  Bitset.add bs 64;
  Helpers.check_int "last bit" 64 (Bitset.next_set_from bs 0);
  Helpers.check_int "from last" 64 (Bitset.next_set_from bs 64);
  Helpers.check_int "past last" (-1) (Bitset.next_set_from bs 65);
  Bitset.add bs 64;
  Helpers.check_int "idempotent add" 1 (Bitset.cardinal bs);
  Bitset.remove bs 3;
  Helpers.check_int "idempotent remove" 1 (Bitset.cardinal bs);
  Alcotest.check_raises "oob mem" (Invalid_argument "Bitset.mem") (fun () ->
      ignore (Bitset.mem bs 65));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Bitset.create: capacity must be positive") (fun () ->
      ignore (Bitset.create 0))

(* ------------------------------------------------------------------ *)
(* Freelist exhaustion and reuse. *)

let test_freelist_exhaustion_reuse () =
  let module F = Occamy_coproc.Freelist in
  let f = F.create ~name:"t" ~depth:8 ~pinned:3 in
  Helpers.check_int "capacity" 5 (F.capacity f);
  for i = 1 to 5 do
    Helpers.check_bool "alloc ok" true (F.alloc f);
    Helpers.check_int "in_use" i (F.in_use f)
  done;
  Helpers.check_bool "exhausted" false (F.alloc f);
  Helpers.check_bool "exhausted again" false (F.alloc f);
  Helpers.check_int "failed_allocs" 2 (F.failed_allocs f);
  F.record_failures f ~count:3;
  Helpers.check_int "batched failures" 5 (F.failed_allocs f);
  Helpers.check_int "peak" 5 (F.peak_in_use f);
  F.release f;
  Helpers.check_int "freed one" 4 (F.in_use f);
  Helpers.check_bool "reuse after release" true (F.alloc f);
  Helpers.check_bool "full again" false (F.alloc f);
  F.release_all f;
  Helpers.check_int "release_all" 0 (F.in_use f);
  Helpers.check_int "peak sticky" 5 (F.peak_in_use f);
  Helpers.check_bool "reusable after release_all" true (F.alloc f)

(* ------------------------------------------------------------------ *)
(* Zero allocation in steady state: drive the dense motivating pair
   core-by-core with [Sim.step] and assert that some full 1000-cycle
   chunk allocates nothing at all. Rare events (phase boundaries,
   reconfiguration, trace-episode bookkeeping) may allocate, so the
   assertion is on the minimum chunk delta, which the dense steady
   state must bring to exactly zero. *)

let test_zero_alloc_steady_state () =
  let wls = Occamy_workloads.Motivating.pair () in
  let sim = Sim.create ~arch:Arch.Occamy wls in
  (* Warm up past compilation/startup transients. *)
  for _ = 1 to 2000 do Sim.step sim done;
  let min_delta = ref infinity in
  for _chunk = 1 to 10 do
    let before = Gc.minor_words () in
    for _ = 1 to 1000 do Sim.step sim done;
    let delta = Gc.minor_words () -. before in
    if delta < !min_delta then min_delta := delta
  done;
  if !min_delta <> 0.0 then
    Alcotest.failf
      "dense steady state allocates: best 1000-cycle chunk = %.0f minor words"
      !min_delta

let suites =
  [
    ( "dod",
      [
        Alcotest.test_case "rng matches int64 reference" `Quick
          test_rng_matches_reference;
        Alcotest.test_case "rng split matches reference" `Quick
          test_rng_split_matches_reference;
        Alcotest.test_case "rng copy lockstep" `Quick test_rng_copy;
        Alcotest.test_case "bitset vs list oracle" `Quick test_bitset_oracle;
        Alcotest.test_case "bitset edges" `Quick test_bitset_edges;
        Alcotest.test_case "freelist exhaustion/reuse" `Quick
          test_freelist_exhaustion_reuse;
        Alcotest.test_case "zero-alloc steady state" `Quick
          test_zero_alloc_steady_state;
      ] );
  ]
