(* End-to-end compiler correctness (§6.4 of the paper): for ANY schedule of
   vector-length reconfigurations — including adversarial ones that change
   the suggested length every few reads and refuse requests to force
   status-spins — the compiled vectorized program must compute exactly what
   the scalar reference computes: re-initialised loop invariants, carried
   reduction partials, intact loop tails. *)

module Loop_ir = Occamy_compiler.Loop_ir
module Codegen = Occamy_compiler.Codegen
module Interp = Occamy_isa.Interp
module Rng = Occamy_util.Rng

open Loop_ir

(* An adversarial environment: the suggested vector length changes every
   [period] reads of <decision>, and requests are randomly refused with
   probability [refuse_p] (the program must spin and retry). *)
let schedule_env ?(max_granules = 8) ?(period = 3) ?(refuse_p = 0.25) ~seed () =
  let rng = Rng.create ~seed in
  let decision = ref (1 + Rng.int rng max_granules) in
  let reads = ref 0 in
  {
    Interp.max_granules;
    request_vl =
      (fun ~current:_ l ->
        if l = 0 then Some 0
        else if l > max_granules then None
        else if Rng.bool rng refuse_p then None
        else Some l);
    decision =
      (fun () ->
        incr reads;
        if !reads mod period = 0 then decision := 1 + Rng.int rng max_granules;
        !decision);
    avail = (fun () -> max_granules);
    on_oi = (fun _ -> ());
  }

let check_with_schedules ?options ?eps ~name ~seeds loops =
  (* Solo environment first: full width, no reconfigurations. *)
  ignore (Helpers.run_and_compare ?options ?eps ~name loops);
  (* Then adversarial schedules. *)
  List.iter
    (fun seed ->
      let env = schedule_env ~seed () in
      let wl, stats =
        Helpers.run_and_compare ?options ?eps ~env ~name:(name ^ "_sched") loops
      in
      ignore wl;
      ignore stats)
    seeds

let test_axpy () =
  check_with_schedules ~name:"axpy" ~seeds:[ 1; 2; 3; 4; 5 ]
    [ Helpers.axpy ~trip_count:237 () ]

let test_reconfigs_actually_happen () =
  (* Guard against a vacuous test: the adversarial schedule must force
     actual mid-loop reconfigurations. *)
  let env = schedule_env ~seed:1 ~period:2 () in
  let _, stats =
    Helpers.run_and_compare ~env ~name:"axpy_forced"
      [ Helpers.axpy ~trip_count:509 () ]
  in
  Helpers.check_bool "several reconfigurations" true (stats.Interp.reconfigs > 3);
  Helpers.check_bool "some refusals spun" true (stats.Interp.failed_requests > 0)

let test_stencil_negative_offsets () =
  let l =
    loop ~name:"stencil" ~trip_count:301
      [
        store "o" ((("a".%[-1] +: "a".%[0]) +: "a".%[1]) *: param "w" 0.25);
        store_at "p" 1 ("b".%[0] -: "a".%[-1]);
      ]
  in
  check_with_schedules ~name:"stencil" ~seeds:[ 7; 8; 9 ] [ l ]

let test_reduction_carry () =
  (* The core §6.4 case: a reduction must survive reconfigurations via the
     scalar carry; losing a partial shows up immediately. *)
  let l =
    loop ~name:"dot" ~trip_count:351
      [ reduce_sum "dot" ("a".%[0] *: "b".%[0]) ]
  in
  check_with_schedules ~name:"dot" ~seeds:[ 11; 12; 13; 14 ] [ l ]

let test_reduction_max () =
  let l =
    loop ~name:"amax" ~trip_count:277 [ reduce_max "amax" (abs_ "a".%[0]) ]
  in
  check_with_schedules ~name:"amax" ~seeds:[ 21; 22 ] [ l ]

let test_mixed_store_and_reduction () =
  let l =
    loop ~name:"norm" ~trip_count:173
      [
        store "scaled" ("x".%[0] *: param "alpha" 3.0);
        reduce_sum "ss" ("x".%[0] *: "x".%[0]);
      ]
  in
  check_with_schedules ~name:"norm" ~seeds:[ 31; 32; 33 ] [ l ]

let test_multi_phase () =
  let p1 =
    loop ~name:"p1" ~trip_count:190 [ store "t" (fma "u".%[0] "v".%[0] (c 1.0)) ]
  in
  let p2 = loop ~name:"p2" ~trip_count:210 [ store "w" ("t".%[0] *: "t".%[0]) ] in
  check_with_schedules ~name:"two_phase" ~seeds:[ 41; 42; 43 ] [ p1; p2 ]

let test_multiversion_scalar_path () =
  (* Trip count below the threshold: the scalar variant runs; no SVE
     instruction must execute. *)
  let l = Helpers.axpy ~trip_count:17 () in
  let wl, stats = Helpers.run_and_compare ~name:"small" [ l ] in
  ignore wl;
  Helpers.check_int "no vector instructions executed" 0 stats.Interp.sve

let test_multiversion_disabled () =
  let options = { Codegen.default_options with multiversion = false } in
  let l = Helpers.axpy ~trip_count:17 () in
  let _, stats = Helpers.run_and_compare ~options ~name:"small_forced_vec" [ l ] in
  Helpers.check_bool "vector instructions executed" true (stats.Interp.sve > 0)

let test_scalar_reduction_path () =
  let l =
    loop ~name:"sdot" ~trip_count:9 [ reduce_sum "sdot" ("a".%[0] *: "b".%[0]) ]
  in
  ignore (Helpers.run_and_compare ~name:"sdot" [ l ])

let test_outer_reps_hoisted_and_not () =
  let l =
    {
      (loop ~name:"rep" ~trip_count:97
         [ store "y" (fma "y".%[0] (param "a" 0.5) "x".%[0]) ])
      with outer_reps = 3;
    }
  in
  check_with_schedules ~name:"rep_hoist" ~seeds:[ 51 ] [ l ];
  check_with_schedules
    ~options:{ Codegen.default_options with hoist = false }
    ~name:"rep_nohoist" ~seeds:[ 52 ] [ l ]

let test_monitorless_code_still_correct () =
  (* With the monitor disabled the program never changes VL mid-loop; it
     must still be correct under a solo environment. *)
  let options = { Codegen.default_options with monitor = false } in
  ignore
    (Helpers.run_and_compare ~options ~name:"nomonitor"
       [ Helpers.axpy ~trip_count:301 () ])

let test_div_sqrt_ops () =
  let l =
    loop ~name:"dsq" ~trip_count:143
      [ store "o" (sqrt_ (abs_ ("a".%[0] /: ("b".%[0] +: c 3.5)))) ]
  in
  check_with_schedules ~name:"dsq" ~seeds:[ 61; 62 ] [ l ]

(* Random loop bodies x random schedules — driven by the fuzzer's
   deterministic splittable generator under one fixed seed, so a failure
   here is a stable repro, not a lost QCheck shrink. The open-ended
   exploration this section used to do lives in `occamy-sim fuzz`;
   seeds worth keeping land in Occamy_check.Corpus (replayed by
   test_check). *)
let test_random_bodies_random_schedules () =
  let root = 20260806 in
  for i = 0 to 29 do
    let case_seed = Occamy_check.Rng.case_seed ~seed:root i in
    let rng = Occamy_check.Rng.create ~seed:case_seed in
    let loops = Occamy_check.Gen.workload rng in
    let env = schedule_env ~seed:(root + i) () in
    try
      ignore
        (Helpers.run_and_compare ~env ~eps:1e-5
           ~name:(Printf.sprintf "rand%d" i)
           loops)
    with e ->
      Alcotest.failf "case %d (replay: occamy-sim fuzz --case %d): %s@.%a" i
        case_seed (Printexc.to_string e)
        (Fmt.list Loop_ir.pp) loops
  done

let suites =
  [
    ( "semantics",
      [
        Alcotest.test_case "axpy" `Quick test_axpy;
        Alcotest.test_case "reconfigs happen" `Quick test_reconfigs_actually_happen;
        Alcotest.test_case "stencil" `Quick test_stencil_negative_offsets;
        Alcotest.test_case "reduction carry" `Quick test_reduction_carry;
        Alcotest.test_case "reduction max" `Quick test_reduction_max;
        Alcotest.test_case "store + reduction" `Quick test_mixed_store_and_reduction;
        Alcotest.test_case "multi phase" `Quick test_multi_phase;
        Alcotest.test_case "multiversion scalar" `Quick test_multiversion_scalar_path;
        Alcotest.test_case "multiversion disabled" `Quick test_multiversion_disabled;
        Alcotest.test_case "scalar reduction" `Quick test_scalar_reduction_path;
        Alcotest.test_case "outer reps / hoisting" `Quick test_outer_reps_hoisted_and_not;
        Alcotest.test_case "monitorless" `Quick test_monitorless_code_still_correct;
        Alcotest.test_case "div/sqrt" `Quick test_div_sqrt_ops;
        Alcotest.test_case "random bodies x random schedules" `Quick
          test_random_bodies_random_schedules;
      ] );
  ]
