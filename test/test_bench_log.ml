(* Tests of the bench-trajectory log: the JSONL writer (including the
   fig12 regression — no section line may record zero seconds or an
   empty worker vector), schema versioning with tolerant legacy
   parsing, the flat-JSON array round-trip, and the regression gate
   behind `bench compare`. *)

module Bench_log = Occamy_util.Bench_log
module Json = Occamy_util.Json
module Domain_pool = Occamy_util.Domain_pool

let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let tmp_path name =
  let path = Filename.temp_file ("occamy_" ^ name) ".json" in
  Sys.remove path;
  path

let with_tmp name f =
  let path = tmp_path name in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ---------------- writing ------------------------------------------ *)

(* The fig12 bug: a section that never touched the pool used to record
   `seconds:0.000, workers:0` with empty per-worker vectors. Every
   recorded line must carry positive seconds and a non-empty worker
   vector. *)
let test_recorded_line_never_zero () =
  with_tmp "sections" (fun path ->
      Domain_pool.reset_totals ();
      (* a sub-precision duration and an idle pool — the worst case *)
      Bench_log.record_section ~path ~section:"fig12" ~seconds:1e-7 ~jobs:4 ();
      let entries, warnings = Bench_log.load ~path in
      check_int "no warnings" 0 (List.length warnings);
      match entries with
      | [ e ] ->
        check_bool "seconds > 0" true (e.Bench_log.e_seconds > 0.0);
        check_int "schema stamped" Bench_log.schema_version
          e.Bench_log.e_schema;
        check_bool "workers >= 1" true
          (match Bench_log.num e "workers" with
          | Some w -> w >= 1.0
          | None -> false);
        (match List.assoc_opt "worker_tasks" e.Bench_log.e_fields with
        | Some (Json.Arr (_ :: _)) -> ()
        | Some (Json.Arr []) -> Alcotest.fail "empty worker vector"
        | _ -> Alcotest.fail "missing worker_tasks vector")
      | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l))

let test_append_accumulates () =
  with_tmp "accum" (fun path ->
      for i = 1 to 3 do
        Bench_log.record_section ~path ~section:"s"
          ~seconds:(float_of_int i) ~jobs:1 ()
      done;
      let entries, _ = Bench_log.load ~path in
      check_int "three lines" 3 (List.length entries);
      check_bool "file order preserved" true
        (List.map (fun e -> e.Bench_log.e_seconds) entries = [ 1.0; 2.0; 3.0 ]))

(* ---------------- parsing ------------------------------------------ *)

let test_legacy_line_parses () =
  (* an unversioned line from an old checkout: no schema, no arrays *)
  let line = {|{"section":"fig10","seconds":12.061,"jobs":4,"maps":26}|} in
  match Bench_log.parse_line line with
  | Ok (Some e) ->
    check_int "legacy schema is 0" 0 e.Bench_log.e_schema;
    check_bool "seconds" true (e.Bench_log.e_seconds = 12.061);
    check_int "jobs" 4 e.Bench_log.e_jobs;
    check_int "extra fields kept" 26 (Bench_log.entry_int e "maps" ~default:0)
  | Ok None -> Alcotest.fail "parsed as blank"
  | Error msg -> Alcotest.failf "legacy line rejected: %s" msg

let test_blank_and_garbage_lines () =
  check_bool "blank is Ok None" true
    (match Bench_log.parse_line "   " with Ok None -> true | _ -> false);
  List.iter
    (fun bad ->
      check_bool (Printf.sprintf "rejected: %s" bad) true
        (match Bench_log.parse_line bad with Error _ -> true | _ -> false))
    [
      "not json at all";
      {|{"seconds":1.0}|} (* no section *);
      {|{"section":"x"}|} (* no seconds *);
      {|{"section":{"nested":1},"seconds":1.0}|};
    ]

let test_load_skips_garbage_with_warning () =
  with_tmp "garbage" (fun path ->
      let oc = open_out path in
      output_string oc
        ({|{"section":"a","seconds":1.0,"jobs":1}|} ^ "\n" ^ "### corrupt ###\n"
       ^ {|{"section":"b","seconds":2.0,"jobs":1}|} ^ "\n");
      close_out oc;
      let entries, warnings = Bench_log.load ~path in
      check_int "two good entries" 2 (List.length entries);
      check_int "one warning" 1 (List.length warnings);
      check_bool "warning names the line" true
        (Helpers.contains (List.hd warnings) ":2:"))

let test_missing_file () =
  let entries, warnings = Bench_log.load ~path:"/nonexistent/bench.json" in
  check_int "no entries" 0 (List.length entries);
  check_int "one warning" 1 (List.length warnings)

let test_array_roundtrip () =
  let fields =
    [
      ("section", Json.Str "s");
      ("seconds", Json.Num 1.5);
      ("worker_tasks", Json.Arr [ Json.Num 3.0; Json.Num 4.0 ]);
      ("empty", Json.Arr []);
      ("flag", Json.Bool true);
    ]
  in
  let line = Json.obj_to_line fields in
  match Json.parse_flat_obj line with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok parsed ->
    check_bool "array survives" true
      (List.assoc_opt "worker_tasks" parsed
      = Some (Json.Arr [ Json.Num 3.0; Json.Num 4.0 ]));
    check_bool "empty array survives" true
      (List.assoc_opt "empty" parsed = Some (Json.Arr []))

(* ---------------- the regression gate ------------------------------ *)

let entry ?(section = "s") ?(jobs = 1) seconds =
  {
    Bench_log.e_schema = Bench_log.schema_version;
    e_section = section;
    e_jobs = jobs;
    e_seconds = seconds;
    e_fields = [ ("section", Json.Str section); ("seconds", Json.Num seconds) ];
  }

let test_compare_flat_trajectory_passes () =
  (* a realistic noisy-but-flat history: the latest run is within noise *)
  let entries = List.map entry [ 1.00; 1.03; 0.98; 1.01; 0.99; 1.02 ] in
  let cs = Bench_log.compare_entries entries in
  check_int "one group" 1 (List.length cs);
  check_int "no regressions" 0 (List.length (Bench_log.regressions cs))

let test_compare_catches_injected_slowdown () =
  (* same history with a synthetic 20% slowdown appended: the gate
     (default threshold 10%) must fire *)
  let entries = List.map entry [ 1.00; 1.03; 0.98; 1.01; 0.99; 1.20 ] in
  let cs = Bench_log.compare_entries entries in
  match Bench_log.regressions cs with
  | [ c ] ->
    check_bool "ratio ~ 1.2" true
      (c.Bench_log.c_ratio > 1.15 && c.Bench_log.c_ratio < 1.25);
    check_bool "baseline is the trailing median" true
      (Float.abs (c.Bench_log.c_baseline -. 1.00) < 1e-9)
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l)

let test_compare_groups_by_section_and_jobs () =
  (* -j1 and -j4 runs of one section must not gate each other: the j4
     run is 3x faster, which is parallelism, not a regression *)
  let entries =
    List.concat_map
      (fun s -> [ entry ~jobs:1 s; entry ~jobs:4 (s /. 3.0) ])
      [ 3.0; 3.0; 3.0; 3.0 ]
  in
  let cs = Bench_log.compare_entries entries in
  check_int "two groups" 2 (List.length cs);
  check_int "no cross-group regressions" 0
    (List.length (Bench_log.regressions cs))

let test_compare_ignores_fast_sections () =
  (* sub-min_seconds sections are clock noise, never gated *)
  let entries = List.map entry [ 0.001; 0.001; 0.001; 0.003 ] in
  check_int "3x on a 1ms section is not a regression" 0
    (List.length (Bench_log.regressions (Bench_log.compare_entries entries)))

let test_compare_named_baseline () =
  let baseline = List.map entry [ 1.0; 1.02; 0.98 ] in
  let current = [ entry 1.25 ] in
  let cs = Bench_log.compare_entries ~baseline current in
  (match Bench_log.regressions cs with
  | [ c ] -> check_int "all baseline samples used" 3 c.Bench_log.c_samples
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* against a matching baseline the same run passes *)
  let cs_ok = Bench_log.compare_entries ~baseline [ entry 1.01 ] in
  check_int "ok against baseline" 0
    (List.length (Bench_log.regressions cs_ok))

let test_compare_threshold_validation () =
  check_bool "non-positive threshold rejected" true
    (try
       ignore (Bench_log.compare_entries ~threshold:0.0 [ entry 1.0 ]);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "bench_log",
      [
        Alcotest.test_case "recorded line never zero (fig12)" `Quick
          test_recorded_line_never_zero;
        Alcotest.test_case "append accumulates" `Quick test_append_accumulates;
        Alcotest.test_case "legacy line parses" `Quick test_legacy_line_parses;
        Alcotest.test_case "blank and garbage lines" `Quick
          test_blank_and_garbage_lines;
        Alcotest.test_case "load skips garbage with warning" `Quick
          test_load_skips_garbage_with_warning;
        Alcotest.test_case "missing file" `Quick test_missing_file;
        Alcotest.test_case "array round-trip" `Quick test_array_roundtrip;
        Alcotest.test_case "flat trajectory passes" `Quick
          test_compare_flat_trajectory_passes;
        Alcotest.test_case "injected slowdown caught" `Quick
          test_compare_catches_injected_slowdown;
        Alcotest.test_case "groups by section and jobs" `Quick
          test_compare_groups_by_section_and_jobs;
        Alcotest.test_case "fast sections ignored" `Quick
          test_compare_ignores_fast_sections;
        Alcotest.test_case "named baseline" `Quick test_compare_named_baseline;
        Alcotest.test_case "threshold validation" `Quick
          test_compare_threshold_validation;
      ] );
  ]
