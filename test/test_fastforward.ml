(* Sim-vs-sim equivalence for event-horizon fast-forwarding: the naive
   tick loop ([Config.fast_forward = false]) and the skipping loop must
   be bit-identical on metrics, counters and trace event streams — on
   the motivating pairs, a 4-core group, OS context-switch schedules,
   the regression corpus, and a few hundred fresh fuzz workloads, across
   all four architectures. *)

module Config = Occamy_core.Config
module Arch = Occamy_core.Arch
module Sim = Occamy_core.Sim
module Workload = Occamy_core.Workload
module Trace = Occamy_obs.Trace
module Invariant = Occamy_check.Invariant
module Diff = Occamy_check.Diff
module Corpus = Occamy_check.Corpus
module Rng = Occamy_check.Rng
module Codegen = Occamy_compiler.Codegen
module Motivating = Occamy_workloads.Motivating
module Suite = Occamy_workloads.Suite

(* Run both loops on identical inputs; fail the test on any divergence
   in metrics or trace streams; hand back the fast-forwarding simulator
   so callers can also assert skip statistics. *)
let run_both ?(cfg = Config.default) ?(context_switches = []) ~label ~arch
    wls =
  let run fast_forward =
    let trace = Trace.for_sim ~cores:cfg.Config.cores () in
    let t =
      Sim.create
        ~cfg:{ cfg with Config.fast_forward }
        ~trace ~context_switches ~arch wls
    in
    let m = Sim.run t in
    (t, m, trace)
  in
  let t_naive, m_naive, trace_naive = run false in
  let t_ff, m_ff, trace_ff = run true in
  Helpers.check_int
    (Printf.sprintf "%s/%s: naive loop never skips" label (Arch.name arch))
    0 (Sim.skipped_cycles t_naive);
  (match Invariant.check_equivalent m_naive m_ff with
  | Ok () -> ()
  | Error msg ->
    Alcotest.failf "%s/%s: metrics diverge: %s" label (Arch.name arch) msg);
  (match Invariant.check_same_trace trace_naive trace_ff with
  | Ok () -> ()
  | Error msg ->
    Alcotest.failf "%s/%s: traces diverge: %s" label (Arch.name arch) msg);
  Helpers.check_int
    (Printf.sprintf "%s/%s: same final cycle" label (Arch.name arch))
    (Sim.cycle t_naive) (Sim.cycle t_ff);
  t_ff

(* ---------------- Motivating pairs ---------------------------------- *)

let test_motivating_pair () =
  let wls = Motivating.pair () in
  List.iter
    (fun arch -> ignore (run_both ~label:"pair" ~arch wls))
    Arch.all

let test_motivating_pair_small () =
  (* Different trip counts stress different drain/stall alignments. *)
  let wls = Motivating.pair ~tc0:512 ~tc1:1024 () in
  List.iter
    (fun arch -> ignore (run_both ~label:"pair-small" ~arch wls))
    Arch.all

(* ---------------- OS preemption (the §5 schedule) -------------------- *)

let test_context_switches () =
  (* Both cores descheduled: the machine is provably idle for the whole
     away window, so fast-forward MUST take jumps here — and still agree
     with the naive loop walking every idle cycle. *)
  let wls = Motivating.pair ~tc0:512 ~tc1:1024 () in
  let cfg = { Config.default with Config.cs_away_cycles = 20_000 } in
  List.iter
    (fun arch ->
      (* Preempt at cycle 200, early enough that no architecture has
         finished the small pair (a halted core's switch is a no-op). *)
      let t =
        run_both ~cfg ~context_switches:[ (0, 200); (1, 200) ]
          ~label:"preempt" ~arch wls
      in
      Helpers.check_bool
        (Printf.sprintf "preempt/%s: skip path taken" (Arch.name arch))
        true
        (Sim.skipped_cycles t > 0 && Sim.ff_jumps t > 0))
    Arch.all

let test_staggered_switches () =
  let wls = Motivating.pair ~tc0:512 ~tc1:1024 () in
  List.iter
    (fun arch ->
      ignore
        (run_both ~context_switches:[ (0, 1000); (1, 4000); (0, 7000) ]
           ~label:"preempt-staggered" ~arch wls))
    Arch.all

(* ---------------- 4-core group -------------------------------------- *)

let test_four_core_group () =
  let cfg = Config.four_core in
  let wls = Suite.compile_group ~tc_scale:0.3 (List.hd Suite.four_core_groups) in
  List.iter
    (fun arch -> ignore (run_both ~cfg ~label:"4core" ~arch wls))
    Arch.all

(* ---------------- Regression corpus --------------------------------- *)

let test_corpus () =
  List.iter
    (fun (e : Corpus.entry) ->
      let c = Diff.case_of_seed e.Corpus.seed in
      let wl =
        Codegen.compile_workload ~options:c.Diff.options ~name:e.Corpus.name
          ~kind:Workload.Mixed c.Diff.loops
      in
      let wls = List.init Config.default.Config.cores (fun _ -> wl) in
      List.iter
        (fun arch -> ignore (run_both ~label:e.Corpus.name ~arch wls))
        Arch.all)
    Corpus.entries

(* ---------------- Fresh fuzz workloads ------------------------------ *)

let fuzz_cases = 200

let test_fresh_fuzz_cases () =
  (* [fuzz_cases] fresh generator workloads nobody hand-picked: the
     acceptance bar for the equivalence proof. Seed base distinct from
     the nightly fuzzer's so this coverage is additive. *)
  for i = 0 to fuzz_cases - 1 do
    let cs = Rng.case_seed ~seed:271828 i in
    let c = Diff.case_of_seed cs in
    match
      Codegen.compile_workload ~options:c.Diff.options ~name:"ff-fuzz"
        ~kind:Workload.Mixed c.Diff.loops
    with
    | exception e ->
      Alcotest.failf "case %d does not compile: %s" cs (Printexc.to_string e)
    | wl ->
      let wls = List.init Config.default.Config.cores (fun _ -> wl) in
      List.iter
        (fun arch ->
          ignore (run_both ~label:(Printf.sprintf "fuzz-%d" cs) ~arch wls))
        Arch.all
  done

let suites =
  [
    ( "fastforward.equivalence",
      [
        Alcotest.test_case "motivating pair" `Quick test_motivating_pair;
        Alcotest.test_case "motivating pair (small trips)" `Quick
          test_motivating_pair_small;
        Alcotest.test_case "both cores preempted" `Quick test_context_switches;
        Alcotest.test_case "staggered preemptions" `Quick
          test_staggered_switches;
        Alcotest.test_case "4-core group" `Quick test_four_core_group;
        Alcotest.test_case "regression corpus" `Quick test_corpus;
        Alcotest.test_case
          (Printf.sprintf "%d fresh fuzz cases" fuzz_cases)
          `Quick test_fresh_fuzz_cases;
      ] );
  ]
