(* Property tests of the work-stealing engine itself, below the
   Domain_pool facade: whatever the worker count, task count or duration
   skew, every task runs exactly once, errors resolve to the lowest
   index, observers pair their events, and the stats add up. The pools
   here are private to each test (shutdown at the end), so forcing
   worker counts past the host's cores is fine — jobs are tiny. *)

module Ws = Occamy_util.Work_steal

let with_pool f =
  let pool = Ws.create ~minor_heap_mult:1 () in
  Fun.protect ~finally:(fun () -> Ws.shutdown pool) (fun () -> f pool)

(* Deterministic task-duration skew: a splitmix-style hash of (seed, i)
   drives a busy loop, so schedules vary across indices but the test is
   reproducible. *)
let hash ~seed i =
  let z = (seed + ((i + 1) * 0x9E3779B9)) land max_int in
  let z = z lxor (z lsr 15) in
  let z = z * 0x85EBCA77 land max_int in
  z lxor (z lsr 13)

let spin n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i
  done;
  ignore (Sys.opaque_identity !acc)

let test_all_tasks_once_all_shapes () =
  (* Task counts from 0 to 10x the worker count, workers 1..4: each index
     runs exactly once and the stats account for every task. *)
  with_pool (fun pool ->
      List.iter
        (fun workers ->
          List.iter
            (fun n ->
              let ran = Array.make (max n 1) 0 in
              let stats =
                Ws.run pool ~workers
                  (fun i -> ran.(i) <- ran.(i) + 1)
                  n
              in
              for i = 0 to n - 1 do
                if ran.(i) <> 1 then
                  Alcotest.failf "workers=%d n=%d: task %d ran %d times"
                    workers n i ran.(i)
              done;
              Helpers.check_int
                (Printf.sprintf "st_tasks (workers=%d n=%d)" workers n)
                n stats.Ws.st_tasks;
              Helpers.check_int
                (Printf.sprintf "per-worker tasks sum (workers=%d n=%d)"
                   workers n)
                n
                (Ws.sum_stats stats).Ws.ws_tasks;
              Helpers.check_int
                (Printf.sprintf "st_workers (workers=%d n=%d)" workers n)
                (if n = 0 then 0 else max 1 (min workers n))
                stats.Ws.st_workers)
            [ 0; 1; 2; 3; 5; 8; 13; 40 ])
        [ 1; 2; 3; 4 ])

let test_skewed_durations () =
  (* A few pathologically heavy tasks at the front of worker 0's range:
     without stealing the other workers would idle; with it the job still
     completes with every result present and correct. *)
  with_pool (fun pool ->
      let n = 32 in
      let out = Array.make n 0 in
      ignore
        (Ws.run pool ~workers:4
           (fun i ->
             if i < 4 then spin 200_000 else spin (hash ~seed:7 i mod 500);
             out.(i) <- (i * i) + 1)
           n);
      Array.iteri
        (fun i v ->
          Helpers.check_int (Printf.sprintf "out.(%d)" i) ((i * i) + 1) v)
        out)

let test_random_durations_repeated () =
  with_pool (fun pool ->
      for seed = 1 to 5 do
        let n = 50 in
        let count = Array.make n 0 in
        ignore
          (Ws.run pool ~workers:3
             (fun i ->
               spin (hash ~seed i mod 2_000);
               count.(i) <- count.(i) + 1)
             n);
        Array.iteri
          (fun i c ->
            if c <> 1 then
              Alcotest.failf "seed %d: task %d ran %d times" seed i c)
          count
      done)

let test_lowest_index_error_wins () =
  (* Several failing tasks scattered over the deques: whatever worker
     hits which failure in whatever order, the caller sees the lowest
     index — and every task still ran. *)
  with_pool (fun pool ->
      let n = 60 in
      let ran = Array.make n 0 in
      let failing = [ 11; 17; 43 ] in
      match
        Ws.run pool ~workers:4
          (fun i ->
            ran.(i) <- ran.(i) + 1;
            spin (hash ~seed:3 i mod 1_000);
            if List.mem i failing then failwith (Printf.sprintf "boom%d" i))
          n
      with
      | _ -> Alcotest.fail "expected the job to raise"
      | exception Failure msg ->
        Alcotest.(check string) "lowest index wins" "boom11" msg;
        Array.iteri
          (fun i c ->
            if c <> 1 then Alcotest.failf "task %d ran %d times" i c)
          ran)

let test_on_stats_fires_on_error () =
  with_pool (fun pool ->
      let got = ref None in
      (match
         Ws.run pool ~workers:2
           ~on_stats:(fun s -> got := Some s)
           (fun i -> if i = 0 then failwith "boom")
           8
       with
      | _ -> Alcotest.fail "expected the job to raise"
      | exception Failure _ -> ());
      match !got with
      | None -> Alcotest.fail "on_stats did not fire on a failing job"
      | Some s -> Helpers.check_int "stats complete despite error" 8
                    (Ws.sum_stats s).Ws.ws_tasks)

let test_observer_pairing_under_stealing () =
  (* Per-worker event logs (race-free: each worker writes only its own
     slot). Every index must get exactly one Start and one Stop, in that
     order on one worker; a Steal must name another worker's deque and
     immediately precede its Start on the same worker. *)
  with_pool (fun pool ->
      let workers = 4 and n = 40 in
      let logs = Array.init workers (fun _ -> ref []) in
      let observer ~worker ~index ~phase =
        logs.(worker) := (index, phase) :: !(logs.(worker))
      in
      let stats =
        Ws.run pool ~workers ~observer
          (fun i -> spin (if i mod 7 = 0 then 100_000 else 100))
          n
      in
      let starts = Array.make n 0 and stops = Array.make n 0 in
      let steals = ref 0 in
      Array.iteri
        (fun w log ->
          let rec walk = function
            | [] -> ()
            | (i, `Steal v) :: rest ->
              incr steals;
              Helpers.check_bool "steal victim is another worker" true
                (v <> w && v >= 0 && v < workers);
              (match rest with
              | (i', `Start) :: _ when i' = i -> ()
              | _ -> Alcotest.failf "steal of %d not followed by its start" i);
              walk rest
            | (i, `Start) :: rest ->
              starts.(i) <- starts.(i) + 1;
              (* the matching Stop must come before this worker starts
                 anything else *)
              (match rest with
              | (i', `Stop) :: _ when i' = i -> ()
              | _ -> Alcotest.failf "start of %d not directly stopped" i);
              walk rest
            | (i, `Stop) :: rest ->
              stops.(i) <- stops.(i) + 1;
              walk rest
          in
          walk (List.rev !log))
        logs;
      for i = 0 to n - 1 do
        if starts.(i) <> 1 || stops.(i) <> 1 then
          Alcotest.failf "task %d: %d starts, %d stops" i starts.(i) stops.(i)
      done;
      Helpers.check_int "observer steals match stats" !steals
        (Ws.sum_stats stats).Ws.ws_steals)

let test_pool_reuse_and_shutdown () =
  let pool = Ws.create ~minor_heap_mult:1 () in
  Helpers.check_int "no domains before first run" 1 (Ws.size pool);
  ignore (Ws.run pool ~workers:3 (fun _ -> ()) 12);
  Helpers.check_int "grown to 3" 3 (Ws.size pool);
  (* A narrower job must not shrink the pool; a wider one grows it. *)
  ignore (Ws.run pool ~workers:2 (fun _ -> ()) 12);
  Helpers.check_int "kept at 3" 3 (Ws.size pool);
  ignore (Ws.run pool ~workers:4 (fun _ -> ()) 12);
  Helpers.check_int "grown to 4" 4 (Ws.size pool);
  Ws.shutdown pool;
  Helpers.check_int "shutdown joins all" 1 (Ws.size pool);
  (* Still usable after shutdown. *)
  let out = Array.make 6 0 in
  ignore (Ws.run pool ~workers:2 (fun i -> out.(i) <- i + 1) 6);
  Helpers.check_bool "usable after shutdown" true
    (Array.to_list out = [ 1; 2; 3; 4; 5; 6 ]);
  Ws.shutdown pool

let test_invalid_args () =
  with_pool (fun pool ->
      (match Ws.run pool ~workers:0 (fun _ -> ()) 4 with
      | _ -> Alcotest.fail "workers=0 must be rejected"
      | exception Invalid_argument _ -> ());
      match Ws.run pool ~workers:2 (fun _ -> ()) (-1) with
      | _ -> Alcotest.fail "n=-1 must be rejected"
      | exception Invalid_argument _ -> ())

let suites =
  [
    ( "work_steal",
      [
        Alcotest.test_case "all tasks once, 0..10x workers" `Quick
          test_all_tasks_once_all_shapes;
        Alcotest.test_case "skewed durations" `Quick test_skewed_durations;
        Alcotest.test_case "random durations" `Quick
          test_random_durations_repeated;
        Alcotest.test_case "lowest-index error wins" `Quick
          test_lowest_index_error_wins;
        Alcotest.test_case "on_stats on error" `Quick
          test_on_stats_fires_on_error;
        Alcotest.test_case "observer pairing under stealing" `Quick
          test_observer_pairing_under_stealing;
        Alcotest.test_case "pool reuse and shutdown" `Quick
          test_pool_reuse_and_shutdown;
        Alcotest.test_case "invalid args" `Quick test_invalid_args;
      ] );
  ]
