let () =
  Alcotest.run "occamy"
    (Test_util.suites @ Test_domain_pool.suites @ Test_work_steal.suites
   @ Test_isa.suites
   @ Test_interp.suites @ Test_mem.suites
   @ Test_coproc.suites @ Test_lanemgr.suites @ Test_compiler.suites
   @ Test_semantics.suites @ Test_sim.suites @ Test_area.suites
   @ Test_workloads.suites @ Test_experiments.suites @ Test_parallel.suites
   @ Test_ordering.suites @ Test_obs.suites @ Test_histogram.suites
   @ Test_prof.suites @ Test_bench_log.suites @ Test_fastforward.suites
   @ Test_check.suites @ Test_inject.suites @ Test_dod.suites
   @ Test_attrib.suites)
