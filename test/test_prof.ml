(* Tests of the simulator self-profiler: the non-perturbation guarantee
   (metrics, counters and trace streams bit-identical with profiling on
   or off, on both the naive and fast-forwarding loops), scope
   accounting (shares partition sampled time and sum to 100%), the
   sampling mask, and the folded-stacks / JSON exporters. *)

module Prof = Occamy_obs.Prof
module Trace = Occamy_obs.Trace
module Config = Occamy_core.Config
module Arch = Occamy_core.Arch
module Sim = Occamy_core.Sim
module Invariant = Occamy_check.Invariant
module Motivating = Occamy_workloads.Motivating
module Json = Occamy_util.Json

let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

(* ---------------- non-perturbation --------------------------------- *)

(* Run the same inputs with profiling off and on (sample_every = 1: the
   most intrusive setting) and require bit-identical metrics and trace
   streams. Covers both loops: the fast-forward scan has its own scope. *)
let run_pair ~fast_forward ~arch =
  let wls = Motivating.pair () in
  let cfg = { Config.default with Config.fast_forward } in
  let run prof =
    let trace = Trace.for_sim ~cores:cfg.Config.cores () in
    let t = Sim.create ~cfg ~trace ~prof ~arch wls in
    let m = Sim.run t in
    (m, trace, t)
  in
  let m_plain, tr_plain, _ = run Prof.disabled in
  let m_prof, tr_prof, t_prof = run (Prof.create ~sample_every:1 ()) in
  (match Invariant.check_equivalent m_plain m_prof with
  | Ok () -> ()
  | Error msg ->
    Alcotest.failf "%s ff=%b: profiling changed the metrics: %s"
      (Arch.name arch) fast_forward msg);
  (match Invariant.check_same_trace tr_plain tr_prof with
  | Ok () -> ()
  | Error msg ->
    Alcotest.failf "%s ff=%b: profiling changed the trace: %s"
      (Arch.name arch) fast_forward msg);
  t_prof

let test_not_perturbing_naive () =
  List.iter (fun arch -> ignore (run_pair ~fast_forward:false ~arch)) Arch.all

let test_not_perturbing_ff () =
  List.iter (fun arch -> ignore (run_pair ~fast_forward:true ~arch)) Arch.all

(* ---------------- accounting --------------------------------------- *)

let test_shares_partition () =
  let t = run_pair ~fast_forward:true ~arch:Arch.Occamy in
  let p = Sim.prof t in
  check_bool "something sampled" true (Prof.sampled_cycles p > 0);
  check_int "sample_every=1 samples every cycle" (Prof.cycles p)
    (Prof.sampled_cycles p);
  let shares = Prof.shares p in
  let sum = List.fold_left (fun a (_, s) -> a +. s) 0.0 shares in
  if Float.abs (sum -. 100.0) > 1.0 then
    Alcotest.failf "shares sum to %.4f, want 100" sum;
  (* exclusive stage times partition the total *)
  let by_stage =
    List.fold_left
      (fun a st -> a + st.Prof.ss_ns)
      0 (Prof.stats p)
  in
  check_int "stage ns sum to the total" (Prof.total_sampled_ns p) by_stage;
  (* dense pair on the elastic machine exercises the hot stages *)
  let named =
    List.map (fun st -> Prof.stage_name st.Prof.ss_stage) (Prof.stats p)
  in
  List.iter
    (fun s ->
      check_bool (s ^ " present") true (List.mem s named))
    [ "frontend"; "dispatch"; "lsu_retire"; "other" ]

let test_sampling_mask () =
  let p = Prof.create ~sample_every:4 () in
  let sampled = ref 0 in
  for _ = 1 to 32 do
    Prof.begin_cycle p;
    if Prof.sampled p then incr sampled;
    Prof.end_cycle p
  done;
  check_int "1 in 4 cycles sampled" 8 !sampled;
  check_int "cycles counted" 32 (Prof.cycles p);
  check_int "sampled counted" 8 (Prof.sampled_cycles p)

let test_sample_every_must_be_pow2 () =
  check_bool "rejects 3" true
    (try
       ignore (Prof.create ~sample_every:3 ());
       false
     with Invalid_argument _ -> true)

let test_disabled_inert () =
  let p = Prof.disabled in
  check_bool "not enabled" false (Prof.enabled p);
  for _ = 1 to 10 do
    Prof.begin_cycle p;
    check_bool "never sampled" false (Prof.sampled p);
    Prof.end_cycle p
  done;
  check_int "no cycles recorded" 0 (Prof.cycles p);
  check_int "no time" 0 (Prof.total_sampled_ns p)

let test_unbalanced_scopes_raise () =
  let p = Prof.create ~sample_every:1 () in
  Prof.begin_cycle p;
  Prof.enter p Prof.Frontend;
  check_bool "unbalanced end_cycle raises" true
    (try
       Prof.end_cycle p;
       false
     with Invalid_argument _ -> true)

(* ---------------- exporters ---------------------------------------- *)

let test_folded_output () =
  let t = run_pair ~fast_forward:true ~arch:Arch.Occamy in
  let p = Sim.prof t in
  let lines = String.split_on_char '\n' (String.trim (Prof.folded p)) in
  check_bool "has lines" true (List.length lines > 2);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "folded line without count: %S" line
      | Some i ->
        let stack = String.sub line 0 i in
        let count =
          String.sub line (i + 1) (String.length line - i - 1)
        in
        check_bool
          (Printf.sprintf "stack rooted at occamy: %S" line)
          true
          (String.length stack > 7 && String.sub stack 0 7 = "occamy;");
        check_bool
          (Printf.sprintf "count is a positive int: %S" line)
          true
          (match int_of_string_opt count with
          | Some n -> n > 0
          | None -> false))
    lines

let test_json_fields () =
  let t = run_pair ~fast_forward:true ~arch:Arch.Occamy in
  let p = Sim.prof t in
  let fields = Prof.json_fields p in
  let num k =
    match List.assoc_opt k fields with
    | Some (Json.Num f) -> f
    | _ -> Alcotest.failf "missing numeric field %s" k
  in
  check_bool "shares_sum ~ 100" true (Float.abs (num "shares_sum" -. 100.0) < 1.0);
  check_bool "cycles positive" true (num "cycles" > 0.0);
  check_bool "per-stage share present" true
    (List.mem_assoc "stage.dispatch.share" fields);
  (* the flat fields must round-trip through the JSONL writer/parser *)
  let line = Json.obj_to_line fields in
  match Json.parse_flat_obj line with
  | Error msg -> Alcotest.failf "fields do not round-trip: %s" msg
  | Ok parsed ->
    check_bool "round-trips" true
      (match List.assoc_opt "stage.dispatch.share" parsed with
      | Some (Json.Num _) -> true
      | _ -> false)

let suites =
  [
    ( "prof",
      [
        Alcotest.test_case "not perturbing (naive loop)" `Quick
          test_not_perturbing_naive;
        Alcotest.test_case "not perturbing (fast-forward)" `Quick
          test_not_perturbing_ff;
        Alcotest.test_case "shares partition sampled time" `Quick
          test_shares_partition;
        Alcotest.test_case "sampling mask" `Quick test_sampling_mask;
        Alcotest.test_case "sample_every power of two" `Quick
          test_sample_every_must_be_pow2;
        Alcotest.test_case "disabled inert" `Quick test_disabled_inert;
        Alcotest.test_case "unbalanced scopes raise" `Quick
          test_unbalanced_scopes_raise;
        Alcotest.test_case "folded stacks" `Quick test_folded_output;
        Alcotest.test_case "json fields" `Quick test_json_fields;
      ] );
  ]
