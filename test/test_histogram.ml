(* Tests of the log-bucketed latency histogram behind the self-profiler:
   percentiles against a sorted-array oracle, merge associativity and
   commutativity on random shards, the exact low range, and the zero /
   overflow buckets. *)

module Histogram = Occamy_obs.Histogram
module Rng = Occamy_util.Rng

let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let of_list vs =
  let h = Histogram.create () in
  List.iter (Histogram.add h) vs;
  h

(* ---------------- basics ------------------------------------------- *)

let test_empty () =
  let h = Histogram.create () in
  check_bool "empty" true (Histogram.is_empty h);
  check_int "count" 0 (Histogram.count h);
  check_int "p50 of empty" 0 (Histogram.percentile h 50.0);
  check_int "min" 0 (Histogram.min_value h);
  check_int "max" 0 (Histogram.max_value h)

let test_exact_low_range () =
  (* Values below 2 * 2^sub_bits land in single-value buckets, so any
     percentile of small samples is exact. *)
  let h = of_list [ 5; 1; 3; 2; 4 ] in
  check_int "count" 5 (Histogram.count h);
  check_int "min" 1 (Histogram.min_value h);
  check_int "max" 5 (Histogram.max_value h);
  check_int "p0" 1 (Histogram.percentile h 0.0);
  check_int "p50" 3 (Histogram.percentile h 50.0);
  check_int "p100" 5 (Histogram.percentile h 100.0)

let test_zero_bucket () =
  let h = of_list [ 0; 0; 0; 7 ] in
  check_int "zeros" 3 (Histogram.zeros h);
  check_int "count" 4 (Histogram.count h);
  check_int "p50" 0 (Histogram.percentile h 50.0);
  check_int "p100" 7 (Histogram.percentile h 100.0);
  check_int "min" 0 (Histogram.min_value h)

let test_overflow_clamps () =
  let h = Histogram.create ~max_value:1000 () in
  Histogram.add h 999;
  Histogram.add h 5_000_000;
  Histogram.add h max_int;
  check_int "count includes clamped" 3 (Histogram.count h);
  check_int "overflow" 2 (Histogram.overflow h);
  check_bool "max clamped to max_value" true (Histogram.max_value h <= 1000);
  check_bool "p100 clamped" true (Histogram.percentile h 100.0 <= 1000)

let test_negative_rejected () =
  let h = Histogram.create () in
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Histogram.add: negative value") (fun () ->
      Histogram.add h (-1))

let test_add_n_matches_add () =
  let a = Histogram.create () in
  let b = Histogram.create () in
  List.iter
    (fun v ->
      Histogram.add_n a v ~count:3;
      Histogram.add b v;
      Histogram.add b v;
      Histogram.add b v)
    [ 0; 17; 90_000; 123_456_789 ];
  check_int "count" (Histogram.count b) (Histogram.count a);
  check_bool "buckets" true (Histogram.buckets a = Histogram.buckets b)

(* ---------------- percentile vs sorted-array oracle ----------------- *)

(* The documented contract: an upper bound of the ceil(p/100*n)-th
   smallest sample, within relative 2^-sub_bits. *)
let check_against_oracle ~label h sorted =
  let n = Array.length sorted in
  List.iter
    (fun p ->
      let got = Histogram.percentile h p in
      let rank = max 1 (min n (int_of_float (ceil (p /. 100.0 *. float n)))) in
      let want = sorted.(rank - 1) in
      let slack =
        (* one sub-bucket of relative error at this magnitude *)
        float want /. float (1 lsl Histogram.sub_bits h)
      in
      if float got < float want -. 0.5 then
        Alcotest.failf "%s: p%.0f=%d below oracle %d" label p got want;
      if float got > float want +. slack +. 0.5 then
        Alcotest.failf "%s: p%.0f=%d above oracle %d (+%.0f allowed)" label p
          got want slack)
    [ 1.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ]

let test_percentile_oracle () =
  let rng = Rng.create ~seed:42 in
  List.iter
    (fun (label, gen) ->
      let vs = Array.init 2000 (fun _ -> gen ()) in
      let h = Histogram.create () in
      Array.iter (Histogram.add h) vs;
      let sorted = Array.copy vs in
      Array.sort compare sorted;
      check_against_oracle ~label h sorted)
    [
      ("uniform small", fun () -> Rng.int rng 64);
      ("uniform wide", fun () -> Rng.int rng 10_000_000);
      ( "log-spread",
        fun () -> 1 lsl Rng.int rng 30 + Rng.int rng 1000 );
      ("constant", fun () -> 777);
    ]

(* ---------------- merge algebra ------------------------------------ *)

let random_hist rng =
  let h = Histogram.create () in
  for _ = 1 to 100 + Rng.int rng 200 do
    Histogram.add h (Rng.int rng 1_000_000)
  done;
  h

let hist_equal a b =
  Histogram.count a = Histogram.count b
  && Histogram.min_value a = Histogram.min_value b
  && Histogram.max_value a = Histogram.max_value b
  && Histogram.sum a = Histogram.sum b
  && Histogram.buckets a = Histogram.buckets b

let test_merge_commutative () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 20 do
    let a = random_hist rng and b = random_hist rng in
    check_bool "a+b = b+a" true
      (hist_equal (Histogram.merge a b) (Histogram.merge b a))
  done

let test_merge_associative () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 20 do
    let a = random_hist rng
    and b = random_hist rng
    and c = random_hist rng in
    check_bool "(a+b)+c = a+(b+c)" true
      (hist_equal
         (Histogram.merge (Histogram.merge a b) c)
         (Histogram.merge a (Histogram.merge b c)))
  done

let test_merge_mismatched_rejected () =
  let a = Histogram.create ~sub_bits:4 () in
  let b = Histogram.create ~sub_bits:5 () in
  check_bool "mismatched sub_bits rejected" true
    (try
       Histogram.merge_into ~into:a b;
       false
     with Invalid_argument _ -> true)

(* ---------------- shards ------------------------------------------- *)

let test_sharded_record_and_merge () =
  let s = Histogram.Sharded.create ~workers:4 () in
  check_int "workers" 4 (Histogram.Sharded.workers s);
  for w = 0 to 3 do
    for i = 1 to 10 do
      Histogram.Sharded.record s ~worker:w ((w * 100) + i)
    done
  done;
  (* out-of-range worker ids fold into the last shard, not lost *)
  Histogram.Sharded.record s ~worker:99 7;
  let m = Histogram.Sharded.merged s in
  check_int "all samples survive the merge" 41 (Histogram.count m);
  check_int "own shard count" 10
    (Histogram.count (Histogram.Sharded.shard s ~worker:0));
  check_int "folded stray" 11
    (Histogram.count (Histogram.Sharded.shard s ~worker:3))

let test_sharded_observer () =
  let s = Histogram.Sharded.create ~workers:2 () in
  Histogram.Sharded.task_observer s ~worker:1 ~index:0 ~phase:`Start;
  Histogram.Sharded.task_observer s ~worker:1 ~index:0 ~phase:`Stop;
  Histogram.Sharded.task_observer s ~worker:0 ~index:1 ~phase:(`Steal 1);
  let m = Histogram.Sharded.merged s in
  check_int "one latency recorded" 1 (Histogram.count m);
  check_int "stop without start ignored" 1
    (let s2 = Histogram.Sharded.create ~workers:1 () in
     Histogram.Sharded.task_observer s2 ~worker:0 ~index:0 ~phase:`Stop;
     Histogram.Sharded.task_observer s2 ~worker:0 ~index:0 ~phase:`Start;
     Histogram.Sharded.task_observer s2 ~worker:0 ~index:0 ~phase:`Stop;
     Histogram.count (Histogram.Sharded.merged s2))

let suites =
  [
    ( "histogram",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "exact low range" `Quick test_exact_low_range;
        Alcotest.test_case "zero bucket" `Quick test_zero_bucket;
        Alcotest.test_case "overflow clamps" `Quick test_overflow_clamps;
        Alcotest.test_case "negative rejected" `Quick test_negative_rejected;
        Alcotest.test_case "add_n = repeated add" `Quick test_add_n_matches_add;
        Alcotest.test_case "percentile vs oracle" `Quick test_percentile_oracle;
        Alcotest.test_case "merge commutative" `Quick test_merge_commutative;
        Alcotest.test_case "merge associative" `Quick test_merge_associative;
        Alcotest.test_case "merge mismatch rejected" `Quick
          test_merge_mismatched_rejected;
        Alcotest.test_case "sharded record/merge" `Quick
          test_sharded_record_and_merge;
        Alcotest.test_case "sharded observer" `Quick test_sharded_observer;
      ] );
  ]
