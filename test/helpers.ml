(** Shared helpers for the test suites. *)

module Loop_ir = Occamy_compiler.Loop_ir
module Codegen = Occamy_compiler.Codegen
module Reference = Occamy_compiler.Reference
module Interp = Occamy_isa.Interp
module Program = Occamy_isa.Program

let check_float = Alcotest.(check (float 1e-6))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(** Substring check, for asserting on diagnostic messages. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  nn = 0
  ||
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(** Allocate the memory image a loop list needs, filled deterministically
    from [seed]; returns both a lookup function and the raw table. *)
let fresh_memory ?(seed = 7) loops =
  let rng = Occamy_util.Rng.create ~seed in
  let plan = Codegen.array_plan loops in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, size) ->
      let a =
        Array.init size (fun _ -> Occamy_util.Rng.float rng *. 4.0 -. 2.0)
      in
      Hashtbl.replace tbl name a)
    plan;
  let mem name =
    match Hashtbl.find_opt tbl name with
    | Some a -> a
    | None -> Alcotest.failf "no array %s" name
  in
  (mem, tbl)

(** Load a memory image into a functional-interpreter state by array name. *)
let load_memory interp (program : Program.t) mem =
  Array.iter
    (fun d ->
      Interp.set_memory interp d.Program.arr_id
        (Array.copy (mem d.Program.arr_name)))
    program.Program.arrays

(** Compare every array of the interpreter against the reference image.
    [eps] tolerates reduction reassociation. *)
let check_memory ?(eps = 1e-4) interp (program : Program.t) mem =
  Array.iter
    (fun d ->
      let got = Interp.memory interp d.Program.arr_id in
      let want = mem d.Program.arr_name in
      Array.iteri
        (fun i w ->
          let g = got.(i) in
          if Float.is_nan g then
            Alcotest.failf "%s[%d] is NaN (poisoned value leaked)"
              d.Program.arr_name i;
          let scale = Float.max 1.0 (Float.abs w) in
          if Float.abs (g -. w) /. scale > eps then
            Alcotest.failf "%s[%d]: got %.9g, want %.9g" d.Program.arr_name i
              g w)
        want)
    program.Program.arrays

(** Run [loops] through the reference and through the compiled program
    under [env], and compare memories. *)
let run_and_compare ?options ?env ?eps ~name loops =
  let wl =
    Codegen.compile_workload ?options ~name ~kind:Occamy_core.Workload.Mixed
      loops
  in
  let mem, _ = fresh_memory loops in
  let interp = Interp.create ?env wl.Occamy_core.Workload.program in
  load_memory interp wl.Occamy_core.Workload.program mem;
  let stats = Interp.run interp in
  Reference.run ~mem loops;
  check_memory ?eps interp wl.Occamy_core.Workload.program mem;
  (wl, stats)

(** A simple axpy-like loop usable across tests. *)
let axpy ?(name = "axpy") ?(trip_count = 100) () =
  let open Loop_ir in
  loop ~name ~trip_count
    [ store "y" (fma "y".%[0] (param "alpha" 1.5) "x".%[0]) ]

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
