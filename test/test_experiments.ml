(* Shape tests of the evaluation experiments: these assert the *paper's
   qualitative claims* on scaled-down runs, so the reproduction cannot
   silently drift while the unit tests stay green. *)

module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module Metrics = Occamy_core.Metrics
module Sim = Occamy_core.Sim
module Suite = Occamy_workloads.Suite
module Pair_run = Occamy_experiments.Pair_run
module Fig14 = Occamy_experiments.Fig14
module Fig2 = Occamy_experiments.Fig2
module Table3 = Occamy_experiments.Table3

(* A representative subset of pairs at reduced trip counts. *)
let sample_runs =
  lazy
    (List.filter_map
       (fun label ->
         Option.map
           (fun p -> Pair_run.run_pair ~tc_scale:0.5 p)
           (Suite.find_pair label))
       [ "1+13"; "20+17"; "8+17"; "9+13"; "12+19" ])

let geo arch core =
  Pair_run.geomean_speedup (Lazy.force sample_runs) arch ~core

let test_headline_ordering () =
  (* Occamy > FTS and Occamy > VLS on the compute cores; everyone >=
     Private within noise. *)
  let occ = geo Arch.Occamy 1 and fts = geo Arch.Fts 1 and vls = geo Arch.Vls 1 in
  Helpers.check_bool "occamy fastest" true (occ > fts && occ > vls);
  Helpers.check_bool "sharing helps" true (fts > 0.95 && vls > 0.95);
  Helpers.check_bool "occamy materially faster" true (occ > 1.2)

let test_memory_core_preserved () =
  let occ0 = geo Arch.Occamy 0 in
  Helpers.check_bool "core0 within 15% of private" true (occ0 > 0.85)

let test_utilization_ordering () =
  let u arch = Pair_run.geomean_util (Lazy.force sample_runs) arch in
  Helpers.check_bool "occamy > private" true (u Arch.Occamy > u Arch.Private);
  Helpers.check_bool "fts > private" true (u Arch.Fts > u Arch.Private);
  Helpers.check_bool "vls > private" true (u Arch.Vls > u Arch.Private)

let test_fts_stall_shape () =
  (* Figure 13: FTS stalls heavily on the mem+compute pairs, the spatial
     architectures do not. *)
  let runs = Lazy.force sample_runs in
  let r = List.hd runs in
  Helpers.check_bool "fts stalls" true (Pair_run.fts_stall_fraction r ~core:1 > 0.2);
  Helpers.check_bool "occamy does not" true
    (Metrics.rename_stall_fraction (Pair_run.result r Arch.Occamy) ~core:1
     < 0.01)

let test_mem_mem_pair_flat () =
  (* §7.4 Case 3: <memory, memory> shows ~no speedups anywhere. *)
  let r =
    List.find
      (fun r -> r.Pair_run.pair.Suite.label = "12+19")
      (Lazy.force sample_runs)
  in
  List.iter
    (fun arch ->
      List.iter
        (fun core ->
          let s = Pair_run.speedup r arch ~core in
          Helpers.check_bool
            (Printf.sprintf "%s core%d ~1.0" (Arch.name arch) core)
            true
            (s > 0.8 && s < 1.25))
        [ 0; 1 ])
    [ Arch.Vls; Arch.Occamy ]

let test_comp_comp_pair () =
  (* §7.4 Case 2: <compute, compute> — FTS/Occamy let the survivor take
     the freed lanes, VLS cannot, so Occamy >= VLS there. *)
  let r =
    List.find
      (fun r -> r.Pair_run.pair.Suite.label = "9+13")
      (Lazy.force sample_runs)
  in
  Helpers.check_bool "occamy >= vls on survivor" true
    (Pair_run.speedup r Arch.Occamy ~core:1
     >= Pair_run.speedup r Arch.Vls ~core:1 -. 0.05)

let test_lane_sweep_shape () =
  (* Figure 14(a): the memory phase flattens; the compute phase keeps
     gaining. *)
  let phases = Fig14.sweep_phases () in
  (* compile once per phase, as lane_sweep_table itself now does *)
  let solo wl g = Fig14.solo_time wl ~granules:g in
  let _, mem_phase = List.hd phases in
  let _, comp_phase = List.nth phases 2 in
  let mem_phase = Fig14.compile_solo mem_phase
  and comp_phase = Fig14.compile_solo comp_phase in
  let mem8 = solo mem_phase 2 and mem28 = solo mem_phase 7 in
  Helpers.check_bool "memory phase flat beyond 8 lanes" true
    (float_of_int mem28 > 0.85 *. float_of_int mem8);
  let comp8 = solo comp_phase 2 and comp28 = solo comp_phase 7 in
  Helpers.check_bool "compute phase keeps gaining" true
    (float_of_int comp28 < 0.45 *. float_of_int comp8)

let test_fig2_stats_table_builds () =
  let t = Fig2.run () in
  let tbl = Fig2.stats_table t in
  let s = Occamy_util.Table.render tbl in
  Helpers.check_bool "table mentions all archs" true
    (List.for_all
       (fun a ->
         let re = Arch.name a in
         let found = ref false in
         let n = String.length s and m = String.length re in
         for i = 0 to n - m do
           if String.sub s i m = re then found := true
         done;
         !found)
       Arch.all);
  (* And the elastic machine wins the motivating example. *)
  let base = Fig2.result t Arch.Private in
  let occ = Fig2.result t Arch.Occamy in
  Helpers.check_bool "fig2 occamy core1 speedup" true
    (Metrics.speedup_vs ~baseline:base occ ~core:1 > 1.3)

let test_table3_error_bound () =
  Helpers.check_bool "max OI error < 0.1" true (Table3.max_oi_error () < 0.1)

let test_four_core_group_shape () =
  (* Figure 16: on 4 cores, Occamy beats VLS on the compute cores
     (geomean over the groups). *)
  let runs = Occamy_experiments.Fig16.run ~tc_scale:0.5 () in
  let gm arch core =
    Occamy_util.Stats.geomean
      (List.map
         (fun gr ->
           let base = List.assoc Arch.Private gr.Occamy_experiments.Fig16.results in
           Metrics.speedup_vs ~baseline:base
             (List.assoc arch gr.Occamy_experiments.Fig16.results)
             ~core)
         runs)
  in
  Helpers.check_bool "occamy > vls on core3" true
    (gm Arch.Occamy 3 > gm Arch.Vls 3);
  Helpers.check_bool "occamy gains on core3" true (gm Arch.Occamy 3 > 1.2)

(* ---------------- Export golden shapes ----------------------------- *)

let csv_lines csv =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)

let columns line = List.length (String.split_on_char ',' line)

let test_timeline_csv_shape () =
  let r = List.hd (Lazy.force sample_runs) in
  let m = Pair_run.result r Arch.Occamy in
  let lines = csv_lines (Occamy_experiments.Export.timeline_csv m) in
  Alcotest.(check string) "header" "kcycle,core,busy_lanes,held_lanes"
    (List.hd lines);
  List.iter
    (fun l -> Helpers.check_int ("columns of " ^ l) 4 (columns l))
    lines;
  let expected_rows =
    Array.fold_left
      (fun acc c ->
        acc
        + max
            (Array.length c.Metrics.lanes_timeline)
            (Array.length c.Metrics.vl_timeline))
      0 m.Metrics.cores
  in
  Helpers.check_int "one row per (bucket, core)" expected_rows
    (List.length lines - 1)

let test_pairs_csv_shape () =
  let r = List.hd (Lazy.force sample_runs) in
  let t = { Occamy_experiments.Fig10.runs = [ r ] } in
  let lines = csv_lines (Occamy_experiments.Export.pairs_csv t) in
  Alcotest.(check string) "header"
    "pair,fts_s1,vls_s1,occamy_s1,fts_s0,vls_s0,occamy_s0,util_private,util_fts,util_vls,util_occamy,fts_stall_c0,fts_stall_c1"
    (List.hd lines);
  Helpers.check_int "one data row per run" 2 (List.length lines);
  List.iter
    (fun l -> Helpers.check_int ("columns of " ^ l) 13 (columns l))
    lines;
  (* The data row carries the pair's label in column one. *)
  match String.split_on_char ',' (List.nth lines 1) with
  | label :: _ ->
    Alcotest.(check string) "label" r.Pair_run.pair.Suite.label label
  | [] -> Alcotest.fail "empty data row"

let test_reliability_shape () =
  (* Scaled-down reliability axis: TMR must cost cycles (replicated
     issue stream) but never leak a fault; the plain lowering must let
     at least one flip through, or the fault model is vacuous. *)
  let r =
    Occamy_experiments.Reliability.run ~tc0:512 ~tc1:2048 ~trials:4 ()
  in
  let module R = Occamy_experiments.Reliability in
  Helpers.check_int "no silent corruption" 0 (R.silent r);
  Helpers.check_int "all TMR trials masked" r.R.tmr_faults.R.trials
    r.R.tmr_faults.R.masked;
  Helpers.check_bool "TMR trials ran" true (r.R.tmr_faults.R.trials > 0);
  Helpers.check_bool "plain detects at least one flip" true
    (r.R.plain_faults.R.detected > 0);
  List.iter
    (fun s ->
      Helpers.check_bool
        (Printf.sprintf "TMR slows %s down" (Arch.name s.R.arch))
        true
        (R.slowdown s > 1.0))
    r.R.costs;
  Helpers.check_bool "json entries non-empty" true (R.json_entries r <> [])

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "headline ordering" `Quick test_headline_ordering;
        Alcotest.test_case "memory core preserved" `Quick test_memory_core_preserved;
        Alcotest.test_case "utilization ordering" `Quick test_utilization_ordering;
        Alcotest.test_case "fts stall shape" `Quick test_fts_stall_shape;
        Alcotest.test_case "mem+mem flat" `Quick test_mem_mem_pair_flat;
        Alcotest.test_case "comp+comp survivor" `Quick test_comp_comp_pair;
        Alcotest.test_case "lane sweep shape" `Quick test_lane_sweep_shape;
        Alcotest.test_case "fig2 table" `Quick test_fig2_stats_table_builds;
        Alcotest.test_case "table3 error bound" `Quick test_table3_error_bound;
        Alcotest.test_case "timeline csv shape" `Quick test_timeline_csv_shape;
        Alcotest.test_case "pairs csv shape" `Quick test_pairs_csv_shape;
        Alcotest.test_case "four-core shape" `Slow test_four_core_group_shape;
        Alcotest.test_case "reliability shape" `Quick test_reliability_shape;
      ] );
  ]
